#!/usr/bin/env python3
"""Portability audit: the paper's intended use-case.

A research group maintains three codes and needs to know where each can
run — the §1 scenario ("it is hard for scientific programmers to
navigate this abundance of choices and limits").  The
:class:`~repro.core.advisor.Advisor` answers over the derived matrix:

* a CUDA C++ molecular-dynamics code heading to Frontier (AMD) and
  Aurora (Intel);
* a Fortran climate kernel suite that must stay in Fortran;
* a Python analysis pipeline.

Run:  python examples/portability_audit.py
"""

from repro.core.advisor import Advisor
from repro.core.matrix import build_matrix
from repro.enums import Language, Model, SupportCategory, Vendor


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    print("probing all routes to build the advisor's evidence base...")
    advisor = Advisor(build_matrix(), minimum=SupportCategory.LIMITED)

    banner("Code 1: CUDA C++ molecular dynamics — where can it run?")
    for rec in advisor.platforms_for_model(Model.CUDA, Language.CPP):
        print(f"  {rec}")
    print("\n  migration plan to AMD (Frontier):")
    for step in advisor.migration_plan(Model.CUDA, Language.CPP, Vendor.AMD):
        print(f"    {step}")
    print("\n  migration plan to Intel (Aurora):")
    for step in advisor.migration_plan(Model.CUDA, Language.CPP, Vendor.INTEL):
        print(f"    {step}")

    banner("Code 2: Fortran climate kernels — the Fortran landscape")
    for vendor in (Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL):
        print(f"\n  on {vendor.value} GPUs:")
        recs = advisor.models_for_platform(vendor, Language.FORTRAN)
        if not recs:
            print("    (nothing usable)")
        for rec in recs:
            print(f"    {rec.model.value:9s} [{rec.category.label}] via {rec.via}")
    portable = advisor.portable_models(Language.FORTRAN, SupportCategory.SOME)
    print(f"\n  models usable on ALL three platforms (at least 'some "
          f"support'): {', '.join(m.value for m in portable) or 'none'}")
    print("  -> the paper's conclusion: for Fortran, OpenMP is the only "
          "model natively supported everywhere.")

    banner("Code 3: Python analysis pipeline")
    for vendor in (Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL):
        rec = advisor.platforms_for_model(Model.PYTHON, Language.PYTHON)
        row = next(r for r in rec if r.vendor is vendor)
        print(f"  {vendor.value:7s}: [{row.category.label}] via {row.via}")

    banner("Cross-vendor summary: models usable everywhere")
    for language in (Language.CPP, Language.FORTRAN):
        for bar in (SupportCategory.NONVENDOR, SupportCategory.LIMITED):
            models = advisor.portable_models(language, bar)
            print(f"  {language.value:8s} (bar: {bar.label:24s}): "
                  f"{', '.join(m.value for m in models) or 'none'}")


if __name__ == "__main__":
    main()
