#!/usr/bin/env python3
"""The Fortran situation — "severely different" (paper conclusion).

The paper closes with the observation that while C++ support converges
nicely, for Fortran "the only natively supported programming model on
all three platforms is OpenMP".  This example demonstrates that
conclusion executably:

* SYCL and Alpaka reject Fortran outright (language gate);
* CUDA Fortran runs on NVIDIA, is research-translated on AMD
  (GPUFORT), and has no Intel route;
* hipfort covers part of HIP on both HIP platforms;
* OpenMP Fortran runs a real kernel on all three vendors through each
  platform's own compiler;
* ``do concurrent`` offloads on NVIDIA (nvfortran) and Intel (ifx) but
  has no AMD route.

Run:  python examples/fortran_landscape.py
"""

import numpy as np

from repro import kernels as KL
from repro.enums import Language, Model, Vendor
from repro.errors import LanguageError, ReproError
from repro.gpu import System
from repro.models.cuda import Cuda
from repro.models.hip import Hip
from repro.models.openmp import OpenMP
from repro.models.stdpar import DoConcurrent
from repro.models.sycl import SyclQueue
from repro.core.routes import routes_for


def main() -> None:
    system = System.default()
    nv = system.device(Vendor.NVIDIA)
    amd = system.device(Vendor.AMD)
    intel = system.device(Vendor.INTEL)
    n = 1 << 14
    x_h = np.linspace(0.0, 1.0, n)

    print("1) Language gates: C++-only models reject Fortran\n")
    for cls, dev in ((SyclQueue, intel),):
        try:
            cls(dev, language=Language.FORTRAN)
        except LanguageError as exc:
            print(f"   SYCL: {exc}")
    print("   Alpaka/Kokkos: C++ models; Fortran reaches Kokkos only "
          "through FLCL (see description 14)")

    print("\n2) OpenMP Fortran: one source, three vendors\n")
    for device, toolchain in ((nv, "nvhpc"), (amd, "aomp"), (intel, "ifx")):
        omp = OpenMP(device, toolchain, language=Language.FORTRAN)
        x_host, y_host = x_h.copy(), np.ones(n)
        with omp.target_data(to=[x_host], tofrom=[y_host]) as region:
            omp.target_loop(n, KL.axpy,
                            [n, 2.0, region.device(x_host), region.device(y_host)])
        ok = np.allclose(y_host, 2.0 * x_h + 1.0)
        print(f"   {device.vendor.value:7s} ({toolchain:5s} on "
              f"{device.spec.name}): {'ok' if ok else 'WRONG'}")

    print("\n3) CUDA Fortran: full on NVIDIA, research on AMD, absent on Intel\n")
    cf = Cuda(nv, language=Language.FORTRAN)  # nvfortran -cuda
    x = cf.to_device(x_h)
    cf.cuf_kernel_do(KL.scale_inplace, n, [n, 3.0, x])
    print(f"   NVIDIA: !$cuf kernel do ran "
          f"({'ok' if np.allclose(x.copy_to_host(), 3.0 * x_h) else 'WRONG'})")
    x.free()
    print(f"   AMD routes:   "
          f"{[r.via for r in routes_for(Vendor.AMD, Model.CUDA, Language.FORTRAN)]}")
    print(f"   Intel routes: "
          f"{[r.via for r in routes_for(Vendor.INTEL, Model.CUDA, Language.FORTRAN)] or 'none'}")

    print("\n4) hipfort: the HIP C API from Fortran (but not all of it)\n")
    for device in (amd, nv):
        hf = Hip(device, language=Language.FORTRAN)  # hipfort
        x = hf.to_device(x_h)
        hf.launch_1d(KL.scale_inplace, n, [n, 2.0, x])
        ok = np.allclose(x.copy_to_host(), 2.0 * x_h)
        x.free()
        events = "no"
        try:
            Hip(device, language=Language.FORTRAN).probe_events()
            events = "yes"
        except ReproError:
            pass
        print(f"   {device.vendor.value:7s}: kernels {'ok' if ok else 'WRONG'}, "
              f"event API exposed: {events}")

    print("\n5) do concurrent: NVIDIA and Intel only\n")
    for device, toolchain in ((nv, "nvhpc"), (intel, "ifx")):
        dc = DoConcurrent(device, toolchain)
        x = dc.to_device(np.full(n, 0.5))
        total = dc.reduce_sum(n, x)
        x.free()
        print(f"   {device.vendor.value:7s} ({toolchain}): "
              f"reduce(+) -> {total:.1f} "
              f"({'ok' if np.isclose(total, 0.5 * n) else 'WRONG'})")
    amd_routes = routes_for(Vendor.AMD, Model.STANDARD, Language.FORTRAN)
    print(f"   AMD: {len(amd_routes)} routes — 'no (known) way' "
          "(description 27)")

    print("\nConclusion reproduced: OpenMP is the only model running Fortran "
          "kernels natively on all three vendors.")


if __name__ == "__main__":
    main()
