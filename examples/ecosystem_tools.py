#!/usr/bin/env python3
"""Ecosystem tooling: conformance tables, the living table, profiling,
and multi-GPU Python.

Four extension features grounded in the paper's own references:

1. **Compiler conformance tables** — the SOLLVE/OpenACC-V&V-style
   per-compiler, per-standard-version reports the paper cites ([7-9],
   [50-51]).
2. **The living overview** — the table "evolves swiftly"; diff the
   October 2022 workshop snapshot against the paper and print the §5
   Topicality changelog.
3. **Timeline tracing** — a Chrome-trace profile of simulated device
   activity (streams overlapping, copies vs. kernels).
4. **cuNumeric-style multi-GPU** — description 17's "transparently
   scale to multiple GPUs", with the simulated speedup to prove it.

Run:  python examples/ecosystem_tools.py
"""

import numpy as np

from repro.core.evolution import changelog
from repro.core.validation import compiler_table, render_compiler_table
from repro.data.snapshots import SNAPSHOT_2022, SNAPSHOT_2023
from repro.enums import Language, Model, Vendor
from repro.gpu import System, get_device
from repro.gpu.trace import attach_tracer, detach_tracer
from repro.models.cuda import Cuda
from repro.models.cunumeric import LegateRuntime
from repro import kernels as KL


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    banner("1) OpenMP offload conformance (ECP-BoF-style compiler table)")
    print(render_compiler_table(
        compiler_table(Model.OPENMP, Language.CPP)))
    print()
    print("   Fortran:")
    print(render_compiler_table(
        compiler_table(Model.OPENMP, Language.FORTRAN)))

    banner("2) OpenACC conformance")
    print(render_compiler_table(
        compiler_table(Model.OPENACC, Language.CPP)))

    banner("3) The living table: October 2022 workshop -> SC-W 2023 paper")
    print(changelog(SNAPSHOT_2022, SNAPSHOT_2023))

    banner("4) Timeline tracing (Chrome-trace export)")
    device = get_device(Vendor.NVIDIA)
    tracer = attach_tracer(device)
    rt = Cuda(device)
    s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
    n = 1 << 18
    x, y = rt.to_device(np.ones(n)), rt.to_device(np.ones(n))
    for _ in range(3):
        rt.launch_1d(KL.scale_inplace, n, [n, 2.0, x], stream=s1,
                     extra_features=("cuda:streams",))
        rt.launch_1d(KL.scale_inplace, n, [n, 3.0, y], stream=s2,
                     extra_features=("cuda:streams",))
    rt.cudaDeviceSynchronize()
    print(f"   recorded {len(tracer.events)} events "
          f"({len(tracer.kernels())} kernels, {len(tracer.copies())} copies)")
    print(f"   busy time {tracer.busy_time()*1e6:.1f} sim-µs over a span of "
          f"{tracer.span()*1e6:.1f} sim-µs (two streams overlapping)")
    tracer.save("/tmp/gpu_compat_trace.json")
    print("   Chrome-trace written to /tmp/gpu_compat_trace.json "
          "(open in chrome://tracing or Perfetto)")
    detach_tracer(device)

    banner("5) cuNumeric-style multi-GPU scaling (description 17)")
    n = 1 << 21
    for n_devices in (1, 2, 4):
        system = System.of(*["H100-SXM5"] * n_devices,
                           backing_bytes=1 << 26)
        legate = LegateRuntime(list(system))
        arr = legate.array(np.ones(n))
        t0 = legate.synchronize()
        for _ in range(4):
            arr = 2.0 * arr + arr
        elapsed = legate.synchronize() - t0
        total = arr.sum()
        print(f"   {n_devices} x H100: {elapsed*1e6:8.1f} sim-µs  "
              f"(checksum {total:.3e}, shards {arr.shard_sizes})")


if __name__ == "__main__":
    main()
