#!/usr/bin/env python3
"""BabelStream across every model and vendor — the §5 extension.

The paper explicitly does *not* evaluate performance and names
BabelStream as the closest existing performance overview; this example
runs that exact suite through every programming model on all three
simulated flagship GPUs and prints the GB/s table, with the per-vendor
datasheet bandwidth for reference.

Run:  python examples/babelstream_sweep.py [N_elements]
"""

import sys

from repro.enums import Vendor
from repro.gpu import System
from repro.workloads import available_models, run_babelstream


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 21
    system = System.default()
    print(f"BabelStream, {n} float64 elements per array "
          f"({n * 8 / 1e6:.0f} MB), best of 3 repetitions\n")
    for vendor in (Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL):
        device = system.device(vendor)
        peak = device.spec.bandwidth_gbs
        print(f"--- {device.spec.name} ({vendor.value}), "
              f"datasheet {peak:.0f} GB/s ---")
        for model in available_models(vendor):
            result = run_babelstream(device, model, n=n, reps=3)
            triad = result.bandwidth_gbs("triad")
            frac = triad / peak
            print(f"  {result.row()}   triad {frac:5.1%} of peak")
        print()


if __name__ == "__main__":
    main()
