#!/usr/bin/env python3
"""Quickstart: the compatibility overview in five minutes.

Walks the public API end to end:

1. render the reconstructed Figure 1;
2. derive the matrix *empirically* by probing every route on the
   simulated AMD/Intel/NVIDIA devices, and compare;
3. look up one cell's encyclopedic description;
4. run a kernel through a programming model on a simulated GPU.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.matrix import build_matrix
from repro.core.render import matrix_lookup, paper_lookup, render_text
from repro.core.report import compare
from repro.core.descriptions import describe_cell
from repro.enums import Language, Model, Vendor
from repro.gpu import System
from repro.models.cuda import Cuda
from repro import kernels as KL


def main() -> None:
    # 1. The published table (reconstructed from the paper's text).
    print(render_text(paper_lookup(), title="Figure 1 — published ratings"))
    print()

    # 2. Derive it empirically: every route in the §4 registry is probed
    #    on a simulated H100 / MI250X-GCD / Ponte Vecchio system.
    print("deriving the matrix by probing all routes (takes a few seconds)...")
    matrix = build_matrix()
    print(render_text(matrix_lookup(matrix),
                      title="Figure 1 — derived on the simulated system"))
    print()
    report = compare(matrix)
    print(f"agreement with the published ratings: "
          f"{report.n_primary_matches}/{report.n_cells} cells")
    print()

    # 3. Why is a cell rated the way it is?
    desc = describe_cell(Vendor.AMD, Model.CUDA, Language.CPP)
    print(f"[{desc.number}] {desc.title}: {desc.text}")
    print()

    # 4. And the substrate is real: run SAXPY through the CUDA model on
    #    the simulated H100.
    system = System.default()
    cuda = Cuda(system.device(Vendor.NVIDIA))
    n = 1 << 16
    x = cuda.to_device(np.linspace(0.0, 1.0, n))
    y = cuda.to_device(np.ones(n))
    timing = cuda.launch_1d(KL.axpy, n, [n, 2.0, x, y])
    result = y.copy_to_host()
    assert np.allclose(result, 2.0 * np.linspace(0.0, 1.0, n) + 1.0)
    print(f"SAXPY on {cuda.device.spec.name}: {n} elements in "
          f"{timing.seconds * 1e6:.1f} simulated µs ({timing.bound}-bound)")


if __name__ == "__main__":
    main()
