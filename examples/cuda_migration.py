#!/usr/bin/env python3
"""Migrating a CUDA application to AMD and Intel GPUs.

Demonstrates the two translation routes the paper describes end to end,
at both levels the tools operate on:

* **string level** — the real CUDA source of a small app goes through
  HIPIFY (→ HIP source) and SYCLomatic (→ SYCL source), with
  replacement counts and unconverted-identifier warnings;
* **execution level** — the same application, written against the
  embedded CUDA runtime, is compiled *through* the translators for a
  simulated MI250X and Ponte Vecchio and runs there, while the
  untranslatable features (cooperative groups on both, graphs for
  SYCLomatic) fail exactly as §4 predicts.

Run:  python examples/cuda_migration.py
"""

import numpy as np

from repro import kernels as KL
from repro.enums import Vendor
from repro.errors import TranslationError
from repro.gpu import System
from repro.models.cuda import Cuda
from repro.translate import Hipify, Syclomatic
from repro.workloads.miniapps import CUDA_MINIAPP_SOURCES


def string_level() -> None:
    print("=" * 72)
    print("String-level translation of the mini-app corpus")
    print("=" * 72)
    for tool in (Hipify(), Syclomatic()):
        print(f"\n--- {tool.NAME} ---")
        for name, source in CUDA_MINIAPP_SOURCES.items():
            translated, report = tool.translate_source(source)
            leftovers = len(report.warnings)
            print(f"  {name:10s}: {report.replacements:3d} replacements, "
                  f"{leftovers} unconverted identifiers")
        sample, _ = tool.translate_source(CUDA_MINIAPP_SOURCES["saxpy"])
        print("  translated saxpy (excerpt):")
        for line in sample.strip().splitlines()[:6]:
            print(f"    {line}")


def execution_level() -> None:
    print()
    print("=" * 72)
    print("Execution-level migration: the same CUDA program on all vendors")
    print("=" * 72)
    system = System.default()
    n = 1 << 18
    x_h = np.linspace(0.0, 1.0, n)

    routes = [
        (Vendor.NVIDIA, "nvcc", None, "native CUDA"),
        (Vendor.AMD, "hipcc", Hipify, "HIPIFY -> hipcc (HIP_PLATFORM=amd)"),
        (Vendor.INTEL, "dpcpp", Syclomatic, "SYCLomatic -> icpx -fsycl"),
    ]
    for vendor, toolchain, translator_cls, label in routes:
        device = system.device(vendor)
        rt = Cuda(device, toolchain)
        if translator_cls is not None:
            rt.translator = translator_cls()
        x = rt.to_device(x_h)
        y = rt.to_device(np.ones(n))
        timing = rt.launch_1d(KL.axpy, n, [n, 2.0, x, y])
        ok = np.allclose(y.copy_to_host(), 2.0 * x_h + 1.0)
        print(f"  {vendor.value:7s} via {label:40s} "
              f"{'ok' if ok else 'WRONG'} "
              f"({timing.seconds * 1e6:6.1f} sim-µs on {device.spec.name})")

        # The features §4 says do not translate really do not:
        if translator_cls is not None:
            try:
                rt2 = Cuda(device, toolchain)
                rt2.translator = translator_cls()
                rt2.probe_cooperative()
                print("           cooperative groups: unexpectedly passed!")
            except TranslationError as exc:
                print(f"           cooperative groups: fails as documented "
                      f"({exc})")
        x.free()
        y.free()


if __name__ == "__main__":
    string_level()
    execution_level()
