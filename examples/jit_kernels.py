#!/usr/bin/env python3
"""The ``@kernel`` corpus: bring-your-own-kernel, end to end.

Four user-authored kernels exercising the restricted-Python subset the
jit frontend admits — a guarded elementwise update, an edge-clamped
stencil, a divergent grid-stride loop, and a shared-memory tree
reduction with barriers and an atomic — plus two deliberately rejected
kernels demonstrating the typed diagnostics.  The same corpus backs the
docs walkthrough, ``tests/test_jit.py``'s differential suite, and the
CI jit smoke gate.

Run:  python examples/jit_kernels.py
"""

import numpy as np

from repro.enums import ISA
from repro.errors import JitTypeError
from repro.jit import kernel, reference_run


@kernel("void(i64, f64, f64[:], f64[:])")
def saxpy(n, a, x, y):
    """y = a*x + y with a bounds guard (the explicit-signature path)."""
    i = gid(0)
    if i < n:
        y[i] = a * x[i] + y[i]


@kernel
def stencil3(n: "i64", x: "f64[:]", out: "f64[:]"):
    """Three-point stencil with clamped edges (the autojit path).

    Edge handling uses if/else statements, not conditional expressions:
    the DSL lowers ``a if c else b`` to a select that evaluates *both*
    arms, so ``x[i - 1] if i > 0 else x[i]`` would read out of bounds
    in the guarded lane.  Statement-level branches predicate the loads.
    """
    i = gid(0)
    if i < n:
        left = x[i]
        right = x[i]
        if i > 0:
            left = x[i - 1]
        if i < n - 1:
            right = x[i + 1]
        out[i] = (left + x[i] + right) / 3.0


@kernel
def branchy(n: "i64", x: "f64[:]", out: "f64[:]"):
    """Divergent control flow: grid-stride for/while, casts, math."""
    i = gid(0)
    stride = gsize(0)
    while i < n:
        v = x[i]
        if v > 0.5:
            acc = 0.0
            for k in range(3):
                acc = acc + v * f64(k + 1)
            out[i] = sqrt(acc)
        else:
            out[i] = v * v
        i = i + stride


@kernel
def block_sum(n: "i64", x: "f64[:]", out: "f64[:]"):
    """Shared-memory tree reduction + one atomic per block."""
    tile = shared(f64, 256)
    i = gid(0)
    t = lid(0)
    stride = gsize(0)
    acc = 0.0
    while i < n:
        acc = acc + x[i]
        i = i + stride
    tile[t] = acc
    barrier()
    s = 128
    while s > 0:
        if t < s:
            tile[t] = tile[t] + tile[t + s]
        barrier()
        s = s // 2
    if t == 0:
        atomic_add(out, 0, tile[0])


#: Every accepted corpus kernel, in a stable order for tests and CI.
CORPUS = (saxpy, stencil3, branchy, block_sum)


def rejected_value_return():
    """A kernel the signature normalizer rejects: non-void return type.

    Wrapped in a factory because the rejection happens at decoration
    time — the void-return rule mirrors numba-dppy's ``@kernel``.
    """

    @kernel("f64(i64, f64[:])")
    def dot_partial(n, x):
        return x[0]

    return dot_partial


def rejected_return_statement():
    """A kernel the DSL compiler rejects: ``return <value>`` in the body.

    Decoration succeeds (autojit defers compilation); touching ``.ir``
    raises a JitTypeError naming the construct and its source line.
    """

    @kernel
    def first(n: "i64", x: "f64[:]"):
        return x[0]

    return first.kernelfn


def main() -> None:
    n = 4096
    rng = np.random.default_rng(2024)

    print(f"@kernel corpus: {len(CORPUS)} kernels, n={n}\n")
    for jk in CORPUS:
        print(f"  {jk.name:<10} {jk.signature}")
        for isa in (ISA.PTX, ISA.AMDGCN, ISA.SPIRV):
            result = jk.compile(isa)
            lines = len(result.disassemble().splitlines())
            print(f"    {isa.value:<8} via {result.toolchain:<6} "
                  f"{lines} asm lines")

    x = rng.random(n)
    out = reference_run(saxpy, ((n + 255) // 256,), (256,),
                        (n, 2.0, x, np.zeros(n)))
    print(f"\nreference saxpy(2.0, x, 0)[:3] = {out[3][:3]}")

    print("\nrejections carry the construct and the source line:")
    try:
        rejected_value_return()
    except JitTypeError as exc:
        print(f"  void-return rule: {exc}")
    try:
        rejected_return_statement()
    except JitTypeError as exc:
        print(f"  body rejection:   {exc} (line {exc.source_line})")


if __name__ == "__main__":
    main()
