"""The §3 classifier: every rule branch, threshold behaviour."""

import pytest

from repro.core.classifier import (
    DEFAULT_THRESHOLDS,
    Thresholds,
    classify_route,
    provider_class,
)
from repro.core.routes import Route
from repro.enums import (
    Language,
    Maturity,
    Mechanism,
    Model,
    Provider,
    SupportCategory,
    Vendor,
)

C = SupportCategory


def _route(provider=Provider.NVIDIA, mechanism=Mechanism.NATIVE,
           maturity=Maturity.PRODUCTION, vendor=Vendor.NVIDIA):
    return Route(
        route_id="t", vendor=vendor, model=Model.CUDA, language=Language.CPP,
        provider=provider, mechanism=mechanism, maturity=maturity,
        label="t", via="t", probe_suite="cuda_cpp",
        runtime_factory=lambda d: None, description_id=1,
    )


def test_zero_coverage_is_none():
    assert classify_route(_route(), 0.0) is C.NONE


@pytest.mark.parametrize("maturity", [Maturity.EXPERIMENTAL,
                                      Maturity.RESEARCH,
                                      Maturity.UNMAINTAINED])
def test_non_production_caps_at_limited(maturity):
    route = _route(maturity=maturity)
    assert classify_route(route, 1.0) is C.LIMITED


def test_low_coverage_is_limited_regardless_of_provider():
    for provider in Provider:
        route = _route(provider=provider)
        assert classify_route(route, 0.3) is C.LIMITED


def test_vendor_native_full_vs_some():
    route = _route()  # NVIDIA on NVIDIA, native
    assert classify_route(route, 1.0) is C.FULL
    assert classify_route(route, 0.92) is C.FULL
    assert classify_route(route, 0.89) is C.SOME
    assert classify_route(route, 0.55) is C.SOME


def test_vendor_layered_counts_as_direct():
    route = _route(mechanism=Mechanism.LAYERED)
    assert classify_route(route, 0.95) is C.FULL
    assert classify_route(route, 0.8) is C.SOME


def test_vendor_translation_indirect_vs_some():
    route = _route(mechanism=Mechanism.TRANSLATION)
    assert classify_route(route, 0.86) is C.INDIRECT
    assert classify_route(route, 0.71) is C.INDIRECT
    assert classify_route(route, 0.65) is C.SOME


def test_other_vendor_mapping_is_indirect():
    # AMD's hipcc mapping HIP onto NVIDIA's CUDA stack:
    route = _route(provider=Provider.AMD, mechanism=Mechanism.MAPPING,
                   vendor=Vendor.NVIDIA)
    assert classify_route(route, 1.0) is C.INDIRECT
    assert classify_route(route, 0.6) is C.SOME


def test_other_vendor_native_is_nonvendor():
    # Intel's DPC++ implementing SYCL natively for NVIDIA GPUs:
    route = _route(provider=Provider.INTEL, mechanism=Mechanism.NATIVE,
                   vendor=Vendor.NVIDIA)
    assert classify_route(route, 0.9) is C.NONVENDOR
    assert classify_route(route, 0.7) is C.LIMITED


def test_community_routes():
    route = _route(provider=Provider.COMMUNITY)
    assert classify_route(route, 1.0) is C.NONVENDOR
    assert classify_route(route, 0.86) is C.NONVENDOR
    assert classify_route(route, 0.8) is C.LIMITED
    bindings = _route(provider=Provider.COMMUNITY,
                      mechanism=Mechanism.BINDINGS)
    assert classify_route(bindings, 0.9) is C.NONVENDOR
    assert classify_route(bindings, 0.6) is C.LIMITED


def test_hpe_counts_as_non_vendor():
    route = _route(provider=Provider.HPE)
    assert classify_route(route, 1.0) is C.NONVENDOR
    assert provider_class(route) == "community"


def test_provider_class_split():
    assert provider_class(_route(provider=Provider.AMD)) == "vendor"
    assert provider_class(_route(provider=Provider.INTEL)) == "vendor"
    assert provider_class(_route(provider=Provider.COMMUNITY)) == "community"


def test_custom_thresholds():
    strict = Thresholds(full=0.99)
    route = _route()
    assert classify_route(route, 0.95, strict) is C.SOME
    assert classify_route(route, 0.95, DEFAULT_THRESHOLDS) is C.FULL
    lax = Thresholds(usable=0.2)
    assert classify_route(route, 0.3, lax) is C.SOME


def test_default_thresholds_values():
    t = DEFAULT_THRESHOLDS
    assert t.full == 0.90
    assert t.comprehensive == 0.85
    assert t.indirect == 0.70
    assert t.usable == 0.50
    assert t.full > t.comprehensive > t.indirect > t.usable


def test_boundary_values_inclusive():
    """Thresholds are >= comparisons."""
    assert classify_route(_route(), 0.90) is C.FULL
    assert classify_route(_route(provider=Provider.COMMUNITY), 0.85) is C.NONVENDOR
    assert classify_route(_route(mechanism=Mechanism.TRANSLATION), 0.70) is C.INDIRECT
    assert classify_route(_route(), 0.50) is C.SOME
