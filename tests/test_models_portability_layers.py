"""Kokkos and Alpaka: views, policies, backends, FLCL."""

import numpy as np
import pytest

from repro import kernels as KL
from repro.enums import ISA, Vendor
from repro.errors import ApiError
from repro.models.alpaka import Alpaka, WorkDiv
from repro.models.kokkos import (
    FLCL,
    Kokkos,
    MDRangePolicy,
    RangePolicy,
    TeamPolicy,
    deep_copy,
)


def test_kokkos_default_backend_follows_vendor(nvidia, amd, intel):
    assert Kokkos(nvidia).backend == "cuda"
    assert Kokkos(amd).backend == "hip"
    assert Kokkos(intel).backend == "sycl"
    assert Kokkos(intel).experimental_backend
    assert not Kokkos(nvidia).experimental_backend


def test_kokkos_unknown_backend(nvidia):
    with pytest.raises(ApiError, match="unknown Kokkos backend"):
        Kokkos(nvidia, backend="metal")


def test_view_lifecycle_and_deep_copy(nvidia, rng):
    kk = Kokkos(nvidia)
    v = kk.view("data", 128)
    host = rng.random(128)
    deep_copy(v, host)
    mirror = v.create_mirror_view()
    assert (mirror == 0).all()  # mirrors start zeroed
    deep_copy(mirror, v)
    np.testing.assert_array_equal(mirror, host)
    v.free()


def test_deep_copy_requires_a_view():
    with pytest.raises(ApiError, match="deep_copy needs"):
        deep_copy(np.ones(4), np.ones(4))


def test_parallel_for_int_policy_sugar(nvidia):
    kk = Kokkos(nvidia)
    v = kk.view("x", 256)
    deep_copy(v, np.ones(256))
    kk.parallel_for("scale", 256, KL.scale_inplace, [256, 2.0, v])
    kk.fence()
    out = v.create_mirror_view()
    deep_copy(out, v)
    assert (out == 2.0).all()


def test_range_policy_with_begin(nvidia):
    policy = RangePolicy(100, begin=10)
    assert policy.extent == 90


@pytest.mark.parametrize("backend,device_fixture", [
    ("cuda", "nvidia"), ("hip", "amd"), ("sycl", "intel"),
    ("openmp", "nvidia"),
])
def test_kokkos_backends_run_reductions(backend, device_fixture, request):
    device = request.getfixturevalue(device_fixture)
    kk = Kokkos(device, backend=backend)
    v = kk.view("x", 4096)
    deep_copy(v, np.full(4096, 0.25))
    assert np.isclose(kk.parallel_reduce("sum", 4096, v), 1024.0)
    v.free()


def test_kokkos_really_compiles_through_backend(amd):
    kk = Kokkos(amd, backend="hip")
    binary = kk._rt.compile([KL.scale_inplace], kk._rt._kernel_tags())
    assert binary.isa is ISA.AMDGCN
    assert binary.producer.startswith("hipcc")


def test_mdrange_stencil(nvidia):
    kk = Kokkos(nvidia)
    nx = ny = 32
    host = np.zeros((ny, nx))
    host[0, :] = 8.0
    inp, out = kk.view("in", nx * ny), kk.view("out", nx * ny)
    deep_copy(inp, host)
    deep_copy(out, host)
    kk.parallel_for("jacobi", MDRangePolicy((ny, nx)), KL.jacobi2d,
                    [nx, ny, inp, out])
    kk.fence()
    mirror = out.create_mirror_view()
    deep_copy(mirror, out)
    assert mirror.reshape(ny, nx)[1, 5] == 2.0


def test_team_policy_scratch_reduction(amd):
    kk = Kokkos(amd)
    n = 2048
    v, total = kk.view("x", n), kk.view("sum", 1)
    deep_copy(v, np.ones(n))
    kk.parallel_for("teams", TeamPolicy(8, 256), KL.reduce_sum,
                    [n, v, total])
    kk.fence()
    mirror = total.create_mirror_view()
    deep_copy(mirror, total)
    assert mirror[0] == n


def test_parallel_scan(intel, rng):
    kk = Kokkos(intel)
    data = rng.random(512)
    v = kk.view("x", 512)
    deep_copy(v, data)
    kk.parallel_scan("scan", v)
    kk.fence()
    mirror = v.create_mirror_view()
    deep_copy(mirror, v)
    np.testing.assert_allclose(mirror, np.cumsum(data))


def test_flcl_subset(nvidia):
    flcl = FLCL(nvidia)
    v = flcl.view("x", 128)
    deep_copy(v, np.ones(128))
    flcl.parallel_for("ok", RangePolicy(128), KL.scale_inplace,
                      [128, 2.0, v])
    with pytest.raises(ApiError, match="FLCL"):
        flcl.parallel_for("no", MDRangePolicy((8, 8)), KL.jacobi2d, [])
    with pytest.raises(ApiError, match="FLCL"):
        flcl.parallel_for("no", TeamPolicy(2, 64), KL.reduce_sum, [])
    with pytest.raises(ApiError, match="FLCL"):
        flcl.parallel_scan("no", v)


# -- Alpaka -----------------------------------------------------------------


def test_alpaka_default_accelerators(nvidia, amd, intel):
    assert Alpaka(nvidia).accelerator == "AccGpuCudaRt"
    assert Alpaka(amd).accelerator == "AccGpuHipRt"
    assert Alpaka(intel).accelerator == "AccGpuSyclIntel"
    assert Alpaka(intel).experimental_backend


def test_alpaka_unknown_accelerator(nvidia):
    with pytest.raises(ApiError, match="unknown accelerator"):
        Alpaka(nvidia, accelerator="AccFpga")


def test_workdiv_extent():
    wd = WorkDiv(blocks=4, threads_per_block=128)
    assert wd.extent == 512


def test_alpaka_exec_with_explicit_workdiv(amd, rng):
    acc = Alpaka(amd)
    n = 1024
    data = rng.random(n)
    buf = acc.alloc_buf(n)
    acc.memcpy_to(buf, data)
    acc.exec(WorkDiv(8, 128), KL.scale_inplace, [n, 3.0, buf])
    acc.wait()
    np.testing.assert_allclose(acc.memcpy_from(buf), 3.0 * data)


def test_alpaka_openmp_fallback(nvidia):
    acc = Alpaka(nvidia, accelerator="AccOmp5")
    buf = acc.alloc_buf(256)
    acc.memcpy_to(buf, np.ones(256))
    acc.exec_elements(256, KL.scale_inplace, [256, 2.0, buf])
    acc.wait()
    assert (acc.memcpy_from(buf) == 2.0).all()
