"""Differential tests for the abstract cost interpreter.

The load-bearing property: for every library kernel at its canonical
launch geometry, :func:`repro.analysis.costmodel.cost_kernel` produces
a :class:`LaunchStats` **bit-equal** to what a live metered
:class:`~repro.isa.interpreter.KernelExecutor` run reports — without
touching any memory values.  The one exception, ``bitonic_step``,
branches on a data-dependent comparison; there the model degrades to a
declared conservative upper bound (``exact=False`` + a note), never to
a silent wrong number.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.costmodel import cost_kernel
from repro.analysis.perfstat import STATIC_LAUNCHES, stream_kernel_costs
from repro.isa.interpreter import KernelExecutor
from repro.kernels import BLOCK, KERNEL_LIBRARY

STATS_FIELDS = ("threads", "instructions", "flops", "bytes_loaded",
                "bytes_stored", "atomic_ops", "barriers", "batches")

#: The one kernel whose control flow depends on loaded data: the model
#: charges both arms of the compare-and-swap branch (an upper bound).
INEXACT = {"bitonic_step"}


def _live_stats(name: str, grid, block, scalars):
    """Run the kernel for real on synthetic buffers; return LaunchStats."""
    kernel = KERNEL_LIBRARY[name].ir
    mem = np.zeros(64 << 20, dtype=np.uint8)
    rng = np.random.default_rng(7)
    addr = 0
    args = []
    for p in kernel.params:
        if p.is_pointer:
            nelem = 1 << 17
            if p.dtype.np_dtype.kind in "iu":
                raw = rng.integers(0, 64, nelem).astype(p.dtype.np_dtype)
            else:
                raw = (rng.random(nelem) + 0.5).astype(p.dtype.np_dtype)
            view = raw.view(np.uint8)
            mem[addr:addr + view.size] = view
            args.append(addr)
            addr += (view.size + 63) // 64 * 64
        else:
            args.append(scalars[p.name])
    return KernelExecutor(kernel, 32, mem).launch(grid, block, args)


@pytest.mark.parametrize("name", sorted(set(KERNEL_LIBRARY) - INEXACT))
def test_cost_matches_live_interpreter_bit_exactly(name):
    grid, block, scalars = STATIC_LAUNCHES[name]
    cost = cost_kernel(KERNEL_LIBRARY[name].ir, grid, block, scalars)
    assert cost.exact, cost.notes
    live = _live_stats(name, grid, block, scalars)
    for f in STATS_FIELDS:
        assert getattr(cost.stats, f) == getattr(live, f), f


def test_every_library_kernel_has_a_canonical_launch():
    assert set(STATIC_LAUNCHES) == set(KERNEL_LIBRARY)


def test_bitonic_step_is_a_declared_conservative_bound():
    grid, block, scalars = STATIC_LAUNCHES["bitonic_step"]
    cost = cost_kernel(KERNEL_LIBRARY["bitonic_step"].ir, grid, block,
                       scalars)
    assert not cost.exact
    assert any("data-dependent" in n for n in cost.notes)
    live = _live_stats("bitonic_step", grid, block, scalars)
    # Upper bound: the model charges both arms, a real run takes one.
    assert cost.stats.instructions >= live.instructions
    assert cost.stats.bytes_stored >= live.bytes_stored
    # Value-independent counters still agree exactly.
    assert cost.stats.threads == live.threads
    assert cost.stats.bytes_loaded == live.bytes_loaded


def test_stream_costs_at_perf_geometry_match_known_totals():
    """The five kernels perfstat times, at the perf-matrix shape
    (n=65536, block=256): totals pinned against live metered runs."""
    costs = stream_kernel_costs(1 << 16)
    want = {
        "copy": dict(instructions=1245184, flops=0,
                     bytes_loaded=524288, bytes_stored=524288),
        "mul": dict(instructions=1310720, flops=65536,
                    bytes_loaded=524288, bytes_stored=524288),
        "add": dict(instructions=1572864, flops=65536,
                    bytes_loaded=1048576, bytes_stored=524288),
        "triad": dict(instructions=1638400, flops=131072,
                      bytes_loaded=1048576, bytes_stored=524288),
        "dot": dict(instructions=7075840, flops=196352,
                    bytes_loaded=2095104, bytes_stored=1046528,
                    atomic_ops=256, barriers=2304, batches=1),
    }
    for kernel, fields in want.items():
        cost = costs[kernel]
        assert cost.exact
        for f, v in fields.items():
            assert getattr(cost.stats, f) == v, (kernel, f)


def test_stream_kernels_are_fully_coalesced():
    costs = stream_kernel_costs(1 << 12)
    for kernel in ("copy", "mul", "add", "triad"):
        assert costs[kernel].coalesced_fraction() == pytest.approx(1.0)
    # dot's grid-stride index is loop-carried, so the classifier
    # conservatively calls its global loads "unknown", never coalesced.
    dot = {k[1:]: v for k, v in costs["dot"].traffic.items()
           if k[0] == "global"}
    assert set(dot) == {("load", "unknown")}


def test_batches_follow_the_interpreter_chunking():
    # 2048 blocks x 256 threads = 524288 lanes; the interpreter chunks
    # at 2^18 lanes -> 1024 blocks per batch -> 2 batches.
    cost = cost_kernel(KERNEL_LIBRARY["stream_copy"].ir, (2048,), (BLOCK,),
                       {"n": 1 << 19})
    assert cost.stats.batches == 2
    live = _live_stats("stream_copy", (2048,), (BLOCK,), {"n": 1 << 19})
    assert cost.stats.batches == live.batches


def test_to_dict_round_trips_traffic_keys():
    cost = cost_kernel(KERNEL_LIBRARY["stream_copy"].ir, (4,), (BLOCK,),
                       {"n": 1024})
    d = cost.to_dict()
    assert d["kernel"] == "stream_copy"
    assert d["exact"] is True
    assert all("/" in k for k in d["traffic"])
    assert sum(d["traffic"].values()) == sum(cost.traffic.values())
