"""The extension models: RAJA and OpenCL (§5's notable exclusions)."""

import numpy as np
import pytest

from repro import kernels as KL
from repro.enums import (
    MODEL_ORDER,
    Language,
    Model,
    SupportCategory,
    Vendor,
    all_cells,
)
from repro.errors import ApiError, UnsupportedFeatureError
from repro.models.opencl import ClContext
from repro.models.raja import Raja, ReduceSum


def test_extension_models_not_in_figure1():
    assert Model.RAJA not in MODEL_ORDER
    assert Model.OPENCL not in MODEL_ORDER
    assert len(all_cells()) == 51  # Figure 1 untouched


# -- RAJA -----------------------------------------------------------------


def test_raja_default_policies(nvidia, amd, intel):
    assert Raja(nvidia).policy == "cuda_exec"
    assert Raja(amd).policy == "hip_exec"
    assert Raja(intel).policy == "sycl_exec"
    assert Raja(intel).experimental_backend
    with pytest.raises(ApiError, match="unknown execution policy"):
        Raja(nvidia, policy="omp_target_exec")


def test_raja_forall(nvidia, rng):
    raja = Raja(nvidia)
    data = rng.random(2048)
    x = raja.to_device(data)
    raja.forall(2048, KL.scale_inplace, [2048, 3.0, x])
    raja.synchronize()
    np.testing.assert_allclose(x.copy_to_host(), 3.0 * data)
    x.free()


def test_raja_reduce_sum(amd, rng):
    raja = Raja(amd)
    data = rng.random(5000)
    x = raja.to_device(data)
    reducer = ReduceSum(raja)
    total = raja.forall_reduce(5000, KL.reduce_sum, [5000, x], reducer)
    assert np.isclose(total, data.sum())
    x.free()
    reducer.free()


def test_raja_reducer_initial_value(nvidia):
    raja = Raja(nvidia)
    x = raja.to_device(np.ones(100))
    reducer = ReduceSum(raja, initial=10.0)
    total = raja.forall_reduce(100, KL.reduce_sum, [100, x], reducer)
    assert np.isclose(total, 110.0)
    x.free()
    reducer.free()


def test_raja_nested_kernel(intel):
    Raja(intel).probe_kernel_nested()


def test_raja_exclusive_scan(nvidia, rng):
    raja = Raja(nvidia)
    data = rng.random(300)
    x = raja.to_device(data)
    raja.exclusive_scan_inplace(x)
    expected = np.concatenate(([0.0], np.cumsum(data)[:-1]))
    np.testing.assert_allclose(x.copy_to_host(), expected)
    x.free()


def test_raja_probes_pass_on_all_vendors(nvidia, amd, intel):
    for device in (nvidia, amd, intel):
        for method in ("probe_forall", "probe_reduce",
                       "probe_kernel_nested", "probe_scan"):
            getattr(Raja(device), method)()


# -- OpenCL ---------------------------------------------------------------


def test_opencl_driver_selection(nvidia, amd, intel):
    assert ClContext(nvidia).driver == "nvidia-opencl"
    assert ClContext(amd).driver == "amd-opencl"
    assert ClContext(intel).driver == "intel-opencl"


def test_opencl_program_queue_buffer_flow(intel, rng):
    ctx = ClContext(intel)
    n = 1024
    data = rng.random(n)
    program = ctx.program([KL.scale_inplace, KL.stream_copy])
    queue = ctx.queue()
    src, dst = ctx.buffer(n), ctx.buffer(n)
    queue.enqueue_write(src, data)
    queue.enqueue_nd_range(program, "scale_inplace", n, args=[n, 2.0, src])
    queue.enqueue_nd_range(program, "stream_copy", n, args=[n, src, dst])
    out = queue.enqueue_read(dst)
    queue.finish()
    np.testing.assert_allclose(out, 2.0 * data)
    src.free(); dst.free()


def test_opencl_unknown_kernel(intel):
    ctx = ClContext(intel)
    program = ctx.program([KL.fill])
    with pytest.raises(ApiError, match="no kernel"):
        program.kernel("ghost")


def test_opencl_feature_ladder(nvidia, amd, intel):
    """NVIDIA 1.2 < AMD 2.0 < Intel 2.1+, per driver capability."""
    # Everyone runs the 1.2 core.
    for device in (nvidia, amd, intel):
        ClContext(device).probe_kernels()
        ClContext(device).probe_events()
    # SVM (2.0): AMD and Intel only.
    ClContext(amd).probe_svm()
    ClContext(intel).probe_svm()
    with pytest.raises(UnsupportedFeatureError):
        ClContext(nvidia).probe_svm()
    # Sub-groups (2.1): Intel only.
    ClContext(intel).probe_subgroups()
    for device in (nvidia, amd):
        with pytest.raises(UnsupportedFeatureError):
            ClContext(device).probe_subgroups()


def test_opencl_profiling_events(amd):
    ctx = ClContext(amd)
    program = ctx.program([KL.scale_inplace])
    queue = ctx.queue(profiling=True)
    buf = ctx.buffer(512)
    queue.enqueue_write(buf, np.ones(512))
    event = queue.enqueue_nd_range(program, "scale_inplace", 512,
                                   args=[512, 2.0, buf])
    queue.finish()
    assert event.profiling_seconds() > 0
    buf.free()


# -- the extended matrix ------------------------------------------------------


@pytest.fixture(scope="module")
def extended_matrix(system):
    from repro.core.extended import build_extended_matrix

    return build_extended_matrix(system)


def test_extended_matrix_matches_expectations(extended_matrix):
    from repro.core.extended import compare_extended

    assert compare_extended(extended_matrix) == []


def test_extended_matrix_shape(extended_matrix):
    from repro.core.extended import EXTENDED_EXPECTED, extended_cells

    assert len(extended_cells()) == 6
    assert set(EXTENDED_EXPECTED) == set(extended_cells())
    # The §5 'lukewarm' claim, measured:
    nv_ocl = extended_matrix.cell(Vendor.NVIDIA, Model.OPENCL, Language.CPP)
    assert nv_ocl.primary is SupportCategory.SOME
    assert nv_ocl.best_route().coverage == 0.6
    intel_ocl = extended_matrix.cell(Vendor.INTEL, Model.OPENCL, Language.CPP)
    assert intel_ocl.primary is SupportCategory.FULL
    # RAJA mirrors Kokkos's shape:
    assert (extended_matrix.cell(Vendor.NVIDIA, Model.RAJA, Language.CPP)
            .primary is SupportCategory.NONVENDOR)
    assert (extended_matrix.cell(Vendor.INTEL, Model.RAJA, Language.CPP)
            .primary is SupportCategory.LIMITED)


def test_extended_render(extended_matrix):
    from repro.core.extended import render_extended_text

    text = render_extended_text(extended_matrix)
    assert "RAJA" in text and "OpenCL" in text
    assert "not Figure 1" in text


def test_raja_tracks_kokkos(extended_matrix, system):
    """§5's stated reason for excluding RAJA: 'similar in spirit to
    Kokkos'. Measured: identical ratings on every platform."""
    from repro.core.matrix import evaluate_route
    from repro.core.routes import routes_for

    for vendor in Vendor:
        raja = extended_matrix.cell(vendor, Model.RAJA, Language.CPP).primary
        kokkos_routes = routes_for(vendor, Model.KOKKOS, Language.CPP)
        kokkos = max(
            (evaluate_route(r, system).category for r in kokkos_routes),
            key=lambda c: c.rank,
        )
        assert raja is kokkos, vendor
