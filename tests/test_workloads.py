"""Workloads: BabelStream harness and mini-applications."""

import numpy as np
import pytest

from repro.enums import Vendor
from repro.errors import ApiError
from repro.models.cuda import Cuda
from repro.models.hip import Hip
from repro.models.openacc import OpenACC
from repro.models.sycl import SyclQueue
from repro.workloads import available_models, run_babelstream
from repro.workloads.babelstream import BABELSTREAM_MODELS, _verify
from repro.workloads.miniapps import (
    CUDA_MINIAPP_SOURCES,
    OPENACC_MINIAPP_SOURCES,
    jacobi_solve,
    nbody_step,
    run_histogram,
)


def test_available_models_per_vendor():
    assert "CUDA" in available_models(Vendor.NVIDIA)
    assert "CUDA" not in available_models(Vendor.AMD)
    assert "CUDA-hipified" in available_models(Vendor.AMD)
    assert "HIP" in available_models(Vendor.NVIDIA)
    assert "OpenACC" not in available_models(Vendor.INTEL)
    assert set(available_models(Vendor.INTEL)) >= {
        "SYCL", "OpenMP", "stdpar", "Kokkos", "Alpaka", "Python"}


def test_unknown_model_or_vendor_rejected(nvidia, intel):
    with pytest.raises(ApiError, match="unknown BabelStream model"):
        run_babelstream(nvidia, "RAJA")
    with pytest.raises(ApiError, match="not available"):
        run_babelstream(intel, "OpenACC")


def test_stream_result_verified_and_positive(nvidia):
    result = run_babelstream(nvidia, "CUDA", n=1 << 16, reps=2)
    assert result.verified
    for kernel in ("copy", "mul", "add", "triad", "dot"):
        assert result.best_seconds[kernel] > 0
        assert result.bandwidth_gbs(kernel) > 0
    assert "CUDA" in result.row()
    assert result.device == "H100-SXM5"


def test_stream_bandwidth_formula(nvidia):
    result = run_babelstream(nvidia, "CUDA", n=1 << 16, reps=1)
    copy_bytes = 2 * (1 << 16) * 8
    expected = copy_bytes / result.best_seconds["copy"] / 1e9
    assert result.bandwidth_gbs("copy") == pytest.approx(expected)


def test_host_verification_logic():
    n, reps = 64, 2
    a = np.full(n, 0.1)
    b = np.full(n, 0.2)
    c = np.full(n, 0.0)
    dot = 0.0
    for _ in range(reps):
        c[:] = a
        b[:] = 0.4 * c
        c[:] = a + b
        a[:] = b + 0.4 * c
        dot = float(a @ b)
    assert _verify(n, reps, (a, b, c), dot)
    assert not _verify(n, reps, (a + 1e-3, b, c), dot)
    assert not _verify(n, reps, (a, b, c), dot + 1.0)


def test_bigger_n_scales_toward_peak(nvidia):
    small = run_babelstream(nvidia, "CUDA", n=1 << 14, reps=1)
    big = run_babelstream(nvidia, "CUDA", n=1 << 21, reps=1)
    assert big.bandwidth_gbs("triad") > small.bandwidth_gbs("triad")


def test_all_model_adapters_registered():
    assert len(BABELSTREAM_MODELS) == 10
    for name, (_cls, vendors) in BABELSTREAM_MODELS.items():
        assert vendors, name


# -- miniapps -----------------------------------------------------------------


def test_jacobi_converges_toward_boundary(nvidia):
    grid = jacobi_solve(Cuda(nvidia), 32, 32, iterations=500)
    # Hot top row diffuses downward: rows monotone decreasing from top.
    assert grid[0, 16] == 100.0
    assert grid[1, 16] > grid[5, 16] > grid[20, 16] >= 0.0


def test_jacobi_same_result_across_models(nvidia, amd, intel):
    results = [
        jacobi_solve(Cuda(nvidia), 24, 24, 50),
        jacobi_solve(Hip(amd), 24, 24, 50),
        jacobi_solve(SyclQueue(intel), 24, 24, 50),
        jacobi_solve(OpenACC(nvidia, "nvhpc"), 24, 24, 50),
    ]
    for other in results[1:]:
        np.testing.assert_allclose(results[0], other)


def test_nbody_symmetry(intel):
    """Two bodies attract each other with equal and opposite force."""
    acc = nbody_step(SyclQueue(intel), n=128)
    assert acc.shape == (128, 2)
    total = acc.sum(axis=0)
    np.testing.assert_allclose(total, [0.0, 0.0], atol=1e-9)


def test_histogram_self_checks(amd):
    bins = run_histogram(Hip(amd), n=20_000, nbins=32)
    assert bins.sum() == 20_000
    assert bins.shape == (32,)


def test_miniapp_sources_are_real_cuda():
    for name, source in CUDA_MINIAPP_SOURCES.items():
        low = source.lower()
        assert "cuda" in low or "cublas" in low, name
    assert "__global__" in CUDA_MINIAPP_SOURCES["saxpy"]
    for name, source in OPENACC_MINIAPP_SOURCES.items():
        assert "acc" in source, name
