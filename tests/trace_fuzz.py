"""Shared seeded fuzz corpus for the trace tier and its validator.

One deterministic population of randomized IRBuilder kernels, consumed
by **two** independent suites:

* ``test_tracing.py`` runs every case through the traced and the
  batched interpreter tiers and asserts bit-identical results
  (the *dynamic* differential oracle);
* ``test_tracesan.py`` statically validates the generated program of
  every case against its IR without executing anything (the *static*
  oracle), and asserts the two oracles agree.

Every case fixes its own seed, so both suites see byte-identical
kernels, geometries, and memory images.  Cases cover the grammar the
trace compiler actually emits: straight-line elementwise chains,
data-dependent divergence (if/else, nesting, varying loops), shared
memory with barriers, atomics — plus a handful of kernels built to
*bail out* (shuffle, Exit, CAS), which must be reported as
nothing-to-validate, never validated.

All kernels share one signature ``(n: i64, a: *f64, b: *f64,
out: *f64)`` and one memory layout (``a`` at 0, ``b`` at ``n*8``,
``out`` at ``2*n*8``, slack after) so the harnesses stay trivial.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.isa import IRBuilder, dtypes

BLOCK = 128


@dataclass(frozen=True)
class FuzzCase:
    """One corpus kernel plus its canonical launch."""

    name: str
    ir: object
    n: int
    expect_bailout: bool = False
    bailout_reason: str | None = None

    @property
    def grid(self) -> tuple:
        return ((self.n + BLOCK - 1) // BLOCK,)

    @property
    def block(self) -> tuple:
        return (BLOCK,)

    @property
    def args(self) -> list:
        return [self.n, 0, self.n * 8, 2 * self.n * 8]

    def image(self) -> np.ndarray:
        gen = np.random.default_rng(hash(self.name) % (1 << 32))
        mem = np.zeros(3 * self.n * 8 + 4096, dtype=np.uint8)
        mem[: self.n * 8] = gen.random(self.n).view(np.uint8)
        mem[self.n * 8: 2 * self.n * 8] = gen.random(self.n).view(np.uint8)
        return mem


def _sig(b: IRBuilder):
    n = b.param("n", dtypes.I64)
    a = b.param("a", dtypes.F64, pointer=True)
    bb = b.param("b", dtypes.F64, pointer=True)
    out = b.param("out", dtypes.F64, pointer=True)
    return n, a, bb, out


def _elementwise(i: int, gen: np.random.Generator) -> IRBuilder:
    """Bounds-guarded straight-line op chain (the trace fast path)."""
    b = IRBuilder(f"fz_ew{i}")
    n, a, bb, out = _sig(b)
    t = b.global_id()
    with b.if_(b.lt(t, n)):
        x = b.load_elem(a, t, dtypes.F64)
        y = b.load_elem(bb, t, dtypes.F64)
        v = x
        for _ in range(int(gen.integers(3, 9))):
            op = gen.choice(["add", "sub", "mul", "div", "min", "max",
                             "select", "cvt"])
            other = y if gen.random() < 0.5 else x
            if op == "select":
                v = b.select(b.lt(v, other), other, v)
            elif op == "cvt":
                v = b.cvt(b.cvt(v, dtypes.F32), dtypes.F64)
            else:
                v = b.binop(op, v, other)
        b.store_elem(out, t, v, dtypes.F64)
    return b


def _divergent(i: int, gen: np.random.Generator) -> IRBuilder:
    """Data-dependent control flow inside the bounds guard."""
    b = IRBuilder(f"fz_div{i}")
    n, a, bb, out = _sig(b)
    t = b.global_id()
    thr = float(gen.random())
    with b.if_(b.lt(t, n)):
        x = b.load_elem(a, t, dtypes.F64)
        y = b.load_elem(bb, t, dtypes.F64)
        if i == 0:        # one-sided varying if
            with b.if_(b.lt(x, thr)):
                b.store_elem(out, t, b.mul(x, 2.0), dtypes.F64)
        elif i == 1:      # if/else
            with b.if_(b.lt(x, thr)) as br:
                b.store_elem(out, t, b.mul(x, 2.0), dtypes.F64)
            with b.orelse(br):
                b.store_elem(out, t, b.add(x, y), dtypes.F64)
        elif i == 2:      # nested divergence in both arms
            with b.if_(b.lt(x, thr)) as br:
                with b.if_(b.lt(y, thr)):
                    b.store_elem(out, t, b.mul(x, y), dtypes.F64)
            with b.orelse(br):
                b.store_elem(out, t, b.sub(x, y), dtypes.F64)
        elif i == 3:      # uniform branch nested under a varying one
            with b.if_(b.gt(n, 100)) as br:
                b.store_elem(out, t, b.add(x, 1.0), dtypes.F64)
            with b.orelse(br):
                b.store_elem(out, t, y, dtypes.F64)
        elif i == 4:      # thread-dependent trip count
            v = b.named("v", dtypes.F64)
            b.mov(v, x)
            idx = b.named("idx", dtypes.I64)
            b.mov(idx, b.rem(t, 4))
            with b.while_() as loop:
                with loop.cond():
                    loop.set_cond(b.gt(idx, 0))
                b.mov(v, b.add(b.mul(v, 0.5), y))
                b.mov(idx, b.sub(idx, 1))
            b.store_elem(out, t, v, dtypes.F64)
        else:             # uniform counted loop (fma chain)
            v = b.named("v", dtypes.F64)
            b.mov(v, x)
            with b.for_range(0, 6):
                b.mov(v, b.add(b.mul(v, y), x))
            b.store_elem(out, t, v, dtypes.F64)
    return b


def _shared(i: int, gen: np.random.Generator) -> IRBuilder:
    """Shared-memory staging with barriers (full-width launches only)."""
    b = IRBuilder(f"fz_sh{i}")
    n, a, bb, out = _sig(b)
    sh = b.shared_alloc(dtypes.F64, BLOCK)
    t = b.global_id()
    tid = b.cvt(b.special("tid.x"), dtypes.I64)
    x = b.load_elem(a, t, dtypes.F64)
    b.store_elem(sh, tid, x, dtypes.F64, space="shared")
    b.barrier()
    if i == 0:            # reversed neighbour
        rev = b.sub(BLOCK - 1, tid)
        v = b.load_elem(sh, rev, dtypes.F64, space="shared")
    elif i == 1:          # rotated neighbour
        rot = b.rem(b.add(tid, 1), BLOCK)
        v = b.load_elem(sh, rot, dtypes.F64, space="shared")
    elif i == 2:          # strided neighbour pair
        s1 = b.rem(b.add(tid, 7), BLOCK)
        v = b.add(b.load_elem(sh, s1, dtypes.F64, space="shared"),
                  b.load_elem(sh, tid, dtypes.F64, space="shared"))
    else:                 # two barrier intervals
        rev = b.sub(BLOCK - 1, tid)
        v0 = b.load_elem(sh, rev, dtypes.F64, space="shared")
        b.barrier()
        b.store_elem(sh, tid, b.add(v0, 1.0), dtypes.F64, space="shared")
        b.barrier()
        v = b.load_elem(sh, tid, dtypes.F64, space="shared")
    b.store_elem(out, t, v, dtypes.F64)
    return b


def _atomic(i: int, gen: np.random.Generator) -> IRBuilder:
    """Atomics into the output region."""
    b = IRBuilder(f"fz_at{i}")
    n, a, bb, out = _sig(b)
    t = b.global_id()
    with b.if_(b.lt(t, n)):
        if i == 0:        # contended integer histogram
            slot = b.rem(t, 16)
            b.atomic("add", b.elem_addr(out, slot, dtypes.I64), 1,
                     dtype=dtypes.I64)
        elif i == 1:      # single float accumulator
            x = b.load_elem(a, t, dtypes.F64)
            b.atomic("add", b.elem_addr(out, 0, dtypes.F64), x)
        else:             # atomic max with captured old value
            x = b.load_elem(a, t, dtypes.F64)
            old = b.atomic("max", b.elem_addr(out, 0, dtypes.F64), x,
                           want_old=True)
            b.store_elem(out, b.add(b.rem(t, 8), 1), old, dtypes.F64)
    return b


def _bailing(i: int, gen: np.random.Generator) -> tuple[IRBuilder, str]:
    """Kernels the trace compiler must refuse, with the refusal reason."""
    b = IRBuilder(f"fz_bail{i}")
    n, a, bb, out = _sig(b)
    t = b.global_id()
    with b.if_(b.lt(t, n)):
        x = b.load_elem(a, t, dtypes.F64)
        if i == 0:        # cross-lane shuffle
            v = b.shuffle("down", x, 1)
            b.store_elem(out, t, v, dtypes.F64)
            return b, "shuffle"
        if i == 1:        # lane-retiring Exit
            with b.if_(b.lt(x, 0.5)):
                b.exit()
            b.store_elem(out, t, x, dtypes.F64)
            return b, "exit"
        # first-lane-wins CAS schedule
        b.atomic("cas", b.elem_addr(out, 0, dtypes.F64), x, compare=0.0)
        return b, "atomic_cas"


def _build() -> list[FuzzCase]:
    cases: list[FuzzCase] = []
    for i in range(8):
        gen = np.random.default_rng(7000 + i)
        n = int(gen.integers(1, 3000))
        cases.append(FuzzCase(f"fz_ew{i}", _elementwise(i, gen).build(), n))
    for i in range(6):
        gen = np.random.default_rng(7100 + i)
        n = int(gen.integers(1, 3000))
        cases.append(FuzzCase(f"fz_div{i}", _divergent(i, gen).build(), n))
    for i in range(4):
        gen = np.random.default_rng(7200 + i)
        # Barriered kernels launch full blocks so the barrier is uniform.
        n = int(gen.integers(1, 8)) * BLOCK
        cases.append(FuzzCase(f"fz_sh{i}", _shared(i, gen).build(), n))
    for i in range(3):
        gen = np.random.default_rng(7300 + i)
        n = int(gen.integers(1, 2000))
        cases.append(FuzzCase(f"fz_at{i}", _atomic(i, gen).build(), n))
    for i in range(3):
        gen = np.random.default_rng(7400 + i)
        n = int(gen.integers(1, 2000))
        builder, reason = _bailing(i, gen)
        cases.append(FuzzCase(f"fz_bail{i}", builder.build(), n,
                              expect_bailout=True, bailout_reason=reason))
    return cases


#: The corpus, built once at import; 24 cases, 3 of which must bail out.
FUZZ_CORPUS: list[FuzzCase] = _build()

TRACEABLE_CASES = [c for c in FUZZ_CORPUS if not c.expect_bailout]
BAILING_CASES = [c for c in FUZZ_CORPUS if c.expect_bailout]
