"""End-to-end integration scenarios spanning the whole stack."""

import numpy as np
import pytest

from repro import kernels as KL
from repro.core.matrix import build_matrix
from repro.core.report import compare
from repro.enums import Language, Model, SupportCategory, Vendor


@pytest.fixture(scope="module")
def full_matrix(system):
    return build_matrix(system)


def test_full_pipeline_reproduces_figure1(full_matrix):
    """The headline result: 51/51 primary ratings match the paper."""
    report = compare(full_matrix)
    assert report.agreement == 1.0
    assert report.n_full_matches == 51


def test_matrix_internal_consistency(full_matrix):
    for cell in full_matrix:
        for rr in cell.routes:
            # Categories must be re-derivable from the measured coverage.
            from repro.core.classifier import classify_route

            assert classify_route(rr.route, rr.coverage) is rr.category
        assert cell.primary in cell.categories


def test_route_failures_are_feature_gaps_not_crashes(full_matrix):
    """Every probe failure across all 89 routes is a typed gap."""
    allowed = ("UnsupportedFeatureError", "UnsupportedRouteError",
               "UnsupportedTargetError", "TranslationError", "ApiError",
               "LanguageError", "not exposed")
    for cell in full_matrix:
        for rr in cell.routes:
            for outcome in rr.suite.failures:
                assert any(tag in outcome.error for tag in allowed), (
                    rr.route.route_id, outcome.probe.label, outcome.error)


def test_one_kernel_source_runs_via_six_models(nvidia, rng):
    """The portability pitch: one DSL kernel, six model frontends."""
    from repro.models.cuda import Cuda
    from repro.models.hip import Hip
    from repro.models.kokkos import Kokkos, RangePolicy, deep_copy
    from repro.models.openacc import OpenACC
    from repro.models.openmp import OpenMP
    from repro.models.sycl import Range, SyclQueue

    n = 1024
    x_h = rng.random(n)
    expected = 2.0 * x_h

    def cuda_run():
        rt = Cuda(nvidia)
        x = rt.to_device(x_h)
        rt.launch_1d(KL.scale_inplace, n, [n, 2.0, x])
        return x.copy_to_host()

    def hip_run():
        rt = Hip(nvidia)  # HIP on NVIDIA via the CUDA backend
        x = rt.to_device(x_h)
        rt.launch_1d(KL.scale_inplace, n, [n, 2.0, x])
        return x.copy_to_host()

    def sycl_run():
        q = SyclQueue(nvidia)
        x = q.to_device(x_h)
        q.parallel_for(Range(n), KL.scale_inplace, [n, 2.0, x])
        q.wait()
        return x.copy_to_host()

    def omp_run():
        omp = OpenMP(nvidia, "nvhpc")
        x = omp.to_device(x_h)
        omp.target_loop(n, KL.scale_inplace, [n, 2.0, x])
        return x.copy_to_host()

    def acc_run():
        acc = OpenACC(nvidia, "nvhpc")
        x = acc.to_device(x_h)
        acc.parallel_loop(n, KL.scale_inplace, [n, 2.0, x])
        return x.copy_to_host()

    def kokkos_run():
        kk = Kokkos(nvidia)
        v = kk.view("x", n)
        deep_copy(v, x_h)
        kk.parallel_for("scale", RangePolicy(n), KL.scale_inplace,
                        [n, 2.0, v])
        kk.fence()
        out = v.create_mirror_view()
        deep_copy(out, v)
        return out

    for runner in (cuda_run, hip_run, sycl_run, omp_run, acc_run, kokkos_run):
        np.testing.assert_allclose(runner(), expected, err_msg=runner.__name__)


def test_simulated_timelines_accumulate(nvidia):
    from repro.models.cuda import Cuda

    rt = Cuda(nvidia)
    t0 = nvidia.synchronize()
    x = rt.to_device(np.ones(1 << 18))
    for _ in range(5):
        rt.launch_1d(KL.scale_inplace, 1 << 18, [1 << 18, 1.0, x])
    t1 = nvidia.synchronize()
    assert t1 > t0


def test_memory_is_reclaimed_across_probe_sweeps(system):
    """A full matrix build must not leak device allocations."""
    device = system.device(Vendor.NVIDIA)
    before = device.memory.bytes_in_use
    build_matrix(system, probe_filter=lambda p: p.method in (
        "probe_kernels", "probe_queues", "probe_parallel", "probe_target",
        "probe_for_each", "probe_do_concurrent", "probe_range_for",
        "probe_exec", "probe_ufuncs"))
    after = device.memory.bytes_in_use
    assert after == before


def test_derived_matrix_shape_claims(full_matrix):
    """The §6 conclusion claims, from the derived (not expected) matrix."""
    # OpenACC has no Intel support beyond the migration tool:
    acc_intel = full_matrix.cell(Vendor.INTEL, Model.OPENACC, Language.CPP)
    assert acc_intel.primary is SupportCategory.LIMITED
    # SYCL reaches all three platforms:
    for vendor in Vendor:
        assert full_matrix.cell(vendor, Model.SYCL,
                                Language.CPP).primary.is_usable
    # Fortran is 'severely different': count usable cells per language.
    usable = {Language.CPP: 0, Language.FORTRAN: 0}
    for cell in full_matrix:
        if cell.language in usable and cell.primary.is_usable:
            usable[cell.language] += 1
    assert usable[Language.CPP] >= 1.5 * usable[Language.FORTRAN]
