"""ISA targets: legalization, capability gates, disassembly."""

import pytest

from repro.enums import ISA
from repro.errors import LegalizationError
from repro.isa import IRBuilder, ModuleIR, dtypes, get_target, legalize
from repro.isa.assembly import disassemble, disassemble_kernel
from repro.isa.instructions import Imm, Mov, SpecialRead, walk


def _module_with(build_fn, name="k"):
    b = IRBuilder(name)
    build_fn(b)
    mod = ModuleIR("m")
    mod.add(b.build())
    return mod


def test_target_widths():
    assert get_target(ISA.PTX).warp_size == 32
    assert get_target(ISA.AMDGCN).warp_size == 64
    assert get_target(ISA.SPIRV).warp_size == 16


def test_legalize_tags_module():
    mod = _module_with(lambda b: b.mov(b.named("x", dtypes.F64), 1.0))
    for isa in ISA:
        binary = legalize(mod, isa, producer="test-1.0")
        assert binary.isa is isa
        assert binary.warp_size == get_target(isa).warp_size
        assert binary.producer == "test-1.0"
        assert "k" in binary


def test_warpsize_constant_folded_per_target():
    def build(b):
        w = b.special("warpsize")
        b.mov(b.named("keep", dtypes.U32), w)

    mod = _module_with(build)
    for isa, width in ((ISA.PTX, 32), (ISA.AMDGCN, 64), (ISA.SPIRV, 16)):
        binary = legalize(mod, isa)
        body = binary.kernel("k").body
        assert not any(
            isinstance(i, SpecialRead) and i.which == "warpsize"
            for i in walk(body)
        )
        folded = [i for i in walk(body)
                  if isinstance(i, Mov) and isinstance(i.src, Imm)
                  and i.src.value == width]
        assert folded, f"warp width {width} not folded for {isa}"


def test_legalize_does_not_mutate_source_module():
    def build(b):
        b.mov(b.named("w", dtypes.U32), b.special("warpsize"))

    mod = _module_with(build)
    before = sum(1 for i in walk(mod["k"].body) if isinstance(i, SpecialRead))
    legalize(mod, ISA.PTX)
    after = sum(1 for i in walk(mod["k"].body) if isinstance(i, SpecialRead))
    assert before == after == 1  # warpsize read still abstract in source


def test_shared_memory_capacity_gate():
    def build(b):
        b.shared_alloc(dtypes.F64, 100 * 1024)  # 800 KB

    mod = _module_with(build)
    for isa in ISA:
        with pytest.raises(LegalizationError, match="shared"):
            legalize(mod, isa)


def test_shared_fits_larger_targets_only():
    def build(b):
        b.shared_alloc(dtypes.F64, 12 * 1024)  # 96 KB

    mod = _module_with(build)
    legalize(mod, ISA.PTX)  # 228 KB limit: fine
    legalize(mod, ISA.SPIRV)  # 128 KB: fine
    with pytest.raises(LegalizationError):
        legalize(mod, ISA.AMDGCN)  # 64 KB LDS: too small


def test_duplicate_kernel_names_rejected():
    mod = ModuleIR("m")
    b = IRBuilder("same")
    mod.add(b.build())
    b2 = IRBuilder("same")
    with pytest.raises(ValueError, match="duplicate kernel"):
        mod.add(b2.build())


@pytest.mark.parametrize("isa,marker", [
    (ISA.PTX, ".visible .entry"),
    (ISA.AMDGCN, ".amdgcn_kernel"),
    (ISA.SPIRV, "OpEntryPoint"),
])
def test_disassembly_flavours(isa, marker):
    def build(b):
        n = b.param("n", dtypes.I64)
        x = b.param("x", dtypes.F64, pointer=True)
        i = b.global_id()
        with b.if_(b.lt(i, n)):
            v = b.load_elem(x, i, dtypes.F64)
            b.store_elem(x, i, b.mul(v, 2.0), dtypes.F64)

    mod = _module_with(build)
    binary = legalize(mod, isa)
    text = disassemble(binary)
    assert marker in text
    assert f"isa={isa.value}" in text


def test_ptx_disassembly_mnemonics():
    def build(b):
        x = b.param("x", dtypes.F64, pointer=True)
        i = b.global_id()
        v = b.load_elem(x, i, dtypes.F64)
        b.store_elem(x, i, b.add(v, 1.0), dtypes.F64)
        b.barrier()

    mod = _module_with(build)
    text = disassemble_kernel(legalize(mod, ISA.PTX).kernel("k"), ISA.PTX)
    assert "ld.global.f64" in text
    assert "st.global.f64" in text
    assert "add.f64" in text
    assert "bar.sync 0;" in text
    assert "mov.u32" in text  # special register reads


def test_amdgcn_disassembly_mnemonics():
    def build(b):
        x = b.param("x", dtypes.F64, pointer=True)
        v = b.load_elem(x, 0, dtypes.F64)
        b.store_elem(x, 0, b.mul(v, 2.0), dtypes.F64)
        b.barrier()

    mod = _module_with(build)
    text = disassemble_kernel(legalize(mod, ISA.AMDGCN).kernel("k"), ISA.AMDGCN)
    assert "global_load_f64" in text
    assert "global_store_f64" in text
    assert "s_barrier" in text
    assert "s_endpgm" in text


def test_spirv_disassembly_mnemonics():
    def build(b):
        x = b.param("x", dtypes.F64, pointer=True)
        v = b.load_elem(x, 0, dtypes.F64)
        b.store_elem(x, 0, b.add(v, 1.0), dtypes.F64)

    mod = _module_with(build)
    text = disassemble_kernel(legalize(mod, ISA.SPIRV).kernel("k"), ISA.SPIRV)
    assert "OpLoad" in text
    assert "OpStore" in text
    assert "OpFAdd" in text
    assert "OpFunctionEnd" in text


def test_structured_control_flow_rendered():
    def build(b):
        x = b.param("x", dtypes.I64)
        with b.if_(b.gt(x, 0)) as iff:
            b.mov(b.named("v", dtypes.I64), 1)
        with b.orelse(iff):
            b.mov(b.named("v", dtypes.I64), 2)
        acc = b.named("acc", dtypes.I64)
        b.mov(acc, 0)
        with b.for_range(0, 3):
            b.mov(acc, b.add(acc, 1))

    mod = _module_with(build)
    text = disassemble_kernel(legalize(mod, ISA.PTX).kernel("k"), ISA.PTX)
    assert "// if" in text
    assert "} else {" in text
    assert "loop {" in text
    assert "break;" in text
