"""The Python layer: GpuArray expressions, packages, feature gating."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels as KL
from repro.enums import Maturity, Provider, Vendor
from repro.errors import ApiError, UnsupportedFeatureError
from repro.models.pymodels import PACKAGES_BY_VENDOR, GpuArray, make_package


def test_package_vendor_matching(nvidia, amd, intel):
    assert make_package("cupy", nvidia).backend == "cuda"
    assert make_package("cupy-rocm", amd).backend == "hip"
    assert make_package("dpnp", intel).backend == "sycl"
    with pytest.raises(ApiError, match="targets NVIDIA"):
        make_package("cupy", amd)
    with pytest.raises(ApiError, match="unknown Python package"):
        make_package("tensorflow", nvidia)


def test_packages_by_vendor_table():
    assert set(PACKAGES_BY_VENDOR) == set(Vendor)
    assert "cuda-python" in PACKAGES_BY_VENDOR[Vendor.NVIDIA]
    assert "pyhip" in PACKAGES_BY_VENDOR[Vendor.AMD]
    assert "dpnp" in PACKAGES_BY_VENDOR[Vendor.INTEL]


def test_package_metadata(nvidia, amd):
    cupy = make_package("cupy", nvidia)
    assert cupy.provider is Provider.COMMUNITY
    assert cupy.maturity is Maturity.PRODUCTION
    cupy_rocm = make_package("cupy-rocm", amd)
    assert cupy_rocm.maturity is Maturity.EXPERIMENTAL
    assert make_package("numba-amd", amd).maturity is Maturity.UNMAINTAINED
    assert make_package("cuda-python", nvidia).provider is Provider.NVIDIA


def test_array_expression_chain(nvidia, rng):
    pkg = make_package("cupy", nvidia)
    x_h, y_h = rng.random(512), rng.random(512)
    x, y = pkg.asarray(x_h), pkg.asarray(y_h)
    z = (2.0 * x + y) * x - y
    np.testing.assert_allclose(z.get(), (2.0 * x_h + y_h) * x_h - y_h)


def test_scalar_and_division_ops(nvidia, rng):
    pkg = make_package("cupy", nvidia)
    x_h = rng.random(128) + 1.0
    y_h = rng.random(128) + 1.0
    x, y = pkg.asarray(x_h), pkg.asarray(y_h)
    np.testing.assert_allclose((x + 1.5).get(), x_h + 1.5)
    np.testing.assert_allclose((x / y).get(), x_h / y_h)
    np.testing.assert_allclose((x - y).get(), x_h - y_h)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                min_size=1, max_size=200),
       st.floats(min_value=-10, max_value=10, allow_nan=False))
def test_expression_property(values, scalar):
    """Property: GpuArray expressions equal their NumPy counterparts."""
    from repro.gpu import get_device

    pkg = make_package("cupy", get_device(Vendor.NVIDIA))
    data = np.array(values)
    x = pkg.asarray(data)
    result = (scalar * x + x).get()
    np.testing.assert_allclose(result, scalar * data + data, rtol=1e-12)
    x.free()


def test_reductions_and_dot(nvidia, rng):
    pkg = make_package("cuda-python", nvidia)
    a_h, b_h = rng.random(5000), rng.random(5000)
    a, b = pkg.asarray(a_h), pkg.asarray(b_h)
    assert np.isclose(a.sum(), a_h.sum())
    assert np.isclose(a.dot(b), a_h @ b_h)


def test_numba_like_jit_decorator(nvidia):
    pkg = make_package("numba", nvidia)

    def my_kernel(n: "i64", x: "f64[:]"):  # noqa: F821
        i = gid(0)  # noqa: F821
        if i < n:
            x[i] = x[i] * x[i]

    launcher = pkg.jit(my_kernel)
    x = pkg.asarray(np.arange(8.0))
    launcher(8, [8, x])
    np.testing.assert_array_equal(x.get(), np.arange(8.0) ** 2)


def test_feature_gating_pyhip(amd):
    """PyHIP is low-level bindings: kernels yes, ufuncs/blas no."""
    make_package("pyhip", amd).probe_custom_kernel()
    with pytest.raises(UnsupportedFeatureError):
        make_package("pyhip", amd).probe_ufuncs()
    with pytest.raises(UnsupportedFeatureError):
        make_package("pyhip", amd).probe_blas()
    with pytest.raises(UnsupportedFeatureError):
        make_package("pyhip", amd).probe_reduction()


def test_feature_gating_numba_no_blas(nvidia):
    with pytest.raises(UnsupportedFeatureError):
        make_package("numba", nvidia).probe_blas()


def test_intel_stack_full_coverage(intel):
    for name in ("dpnp", "numba-dpex"):
        for method in ("probe_ufuncs", "probe_custom_kernel",
                       "probe_reduction", "probe_streams", "probe_blas",
                       "probe_numpy_interop"):
            getattr(make_package(name, intel), method)()


def test_gpu_array_size_and_free(nvidia):
    pkg = make_package("cupy", nvidia)
    x = pkg.asarray(np.ones(77))
    assert x.size == 77
    x.free()
    with pytest.raises(ApiError):
        x.get()


def test_blas_layer_on_sycl_backend(intel, rng):
    pkg = make_package("dpnp", intel)
    x_h, y_h = rng.random(300), rng.random(300)
    x, y = pkg.asarray(x_h), pkg.asarray(y_h)
    pkg.blas_axpy(2.0, x, y)
    np.testing.assert_allclose(y.get(), 2.0 * x_h + y_h)
