"""SYCL model: queues, buffers, USM, nd_range, implementations."""

import numpy as np
import pytest

from repro import kernels as KL
from repro.enums import ISA, Language
from repro.errors import ApiError, LanguageError
from repro.models.sycl import NdRange, Range, SyclBuffer, SyclQueue


def test_fortran_rejected_at_construction(intel):
    with pytest.raises(LanguageError, match="SYCL is not available"):
        SyclQueue(intel, language=Language.FORTRAN)


def test_usm_device_and_parallel_for(intel, rng):
    q = SyclQueue(intel)
    n = 1024
    x_h = rng.random(n)
    x = q.malloc_device(np.float64, n)
    q.memcpy(x, x_h)
    q.parallel_for(Range(n), KL.scale_inplace, [n, 2.0, x])
    q.wait()
    np.testing.assert_allclose(x.copy_to_host(), 2.0 * x_h)


def test_buffer_write_back_on_close(intel):
    q = SyclQueue(intel)
    host = np.ones(256)
    with q.buffer(host) as buf:
        q.parallel_for(Range(256), KL.scale_inplace, [256, 5.0, buf])
        q.wait()
        # Not yet written back inside the scope:
        assert (host == 1.0).all()
    assert (host == 5.0).all()


def test_buffer_no_write_back_on_exception(intel):
    q = SyclQueue(intel)
    host = np.ones(64)
    with pytest.raises(RuntimeError):
        with q.buffer(host) as buf:
            q.parallel_for(Range(64), KL.scale_inplace, [64, 9.0, buf])
            raise RuntimeError("user code failed")
    assert (host == 1.0).all()


def test_buffer_use_after_close(intel):
    q = SyclQueue(intel)
    buf = q.buffer(np.ones(16))
    buf.close()
    with pytest.raises(ApiError, match="after close"):
        buf.addr


def test_nd_range_divisibility(intel):
    with pytest.raises(ApiError, match="multiple"):
        NdRange(1000, 256)
    nd = NdRange(1024, 256)
    assert nd.global_size // nd.local_size == 4


def test_nd_range_local_memory_reduction(intel):
    q = SyclQueue(intel)
    n = 2048
    x = q.malloc_device(np.float64, n)
    q.memcpy(x, np.full(n, 2.0))
    out = q.malloc_device(np.float64, 1)
    q.parallel_for(NdRange(2048, 256), KL.reduce_sum, [n, x, out])
    q.wait()
    assert out.copy_to_host()[0] == 2.0 * n


def test_malloc_shared_host_visible(intel):
    q = SyclQueue(intel)
    arr = q.malloc_shared(np.float64, 128)
    arr.view()[:] = 3.0
    q.parallel_for(Range(128), KL.scale_inplace, [128, 2.0, arr])
    q.wait()
    assert (arr.view() == 6.0).all()


def test_profiling_events(intel):
    q = SyclQueue(intel)
    x = q.to_device(np.ones(4096))
    ev = q.parallel_for(Range(4096), KL.scale_inplace, [4096, 2.0, x],
                        profile=True)
    q.wait()
    assert ev.elapsed_seconds() > 0


def test_reduction_object(intel, rng):
    q = SyclQueue(intel)
    data = rng.random(5000)
    x = q.to_device(data)
    assert np.isclose(q.parallel_reduce_sum(5000, x), data.sum())


@pytest.mark.parametrize("toolchain,device_fixture,isa", [
    ("dpcpp", "intel", ISA.SPIRV),
    ("dpcpp", "nvidia", ISA.PTX),
    ("dpcpp", "amd", ISA.AMDGCN),
    ("opensycl", "intel", ISA.SPIRV),
    ("opensycl", "nvidia", ISA.PTX),
    ("opensycl", "amd", ISA.AMDGCN),
])
def test_sycl_implementations_cover_all_platforms(toolchain, device_fixture,
                                                  isa, request):
    """Descriptions 5/21/35: DPC++ and Open SYCL reach every vendor."""
    device = request.getfixturevalue(device_fixture)
    q = SyclQueue(device, toolchain)
    x = q.to_device(np.ones(512))
    q.parallel_for(Range(512), KL.scale_inplace, [512, 2.0, x])
    q.wait()
    assert (x.copy_to_host() == 2.0).all()
    binary = q.compile([KL.scale_inplace], [q.tag("queues")])
    assert binary.isa is isa


def test_computecpp_lacks_usm(nvidia):
    """The retired ComputeCpp was pre-USM SYCL."""
    from repro.errors import UnsupportedFeatureError

    q = SyclQueue(nvidia, "computecpp")
    with pytest.raises(UnsupportedFeatureError):
        q.probe_usm_shared()
    SyclQueue(nvidia, "computecpp").probe_buffers()
