"""kernelsan: table-driven positive/negative cases per analysis family,
plus differential tests that confirm static verdicts against observed
interpreter behavior (schedules, divergence faults, memory faults, and
warp-width sensitivity).
"""

import numpy as np
import pytest

from repro.analysis import (
    AnalysisOptions,
    LaunchBounds,
    analyze_kernel,
    analyze_module,
)
from repro.analysis.crosscheck import compare_schedules
from repro.errors import DivergentBarrierError, MemoryFaultError
from repro.frontends import f64, i32, i64, kernel  # noqa: F401 (annotations)
from repro.isa.interpreter import KernelExecutor
from repro.isa.module import ModuleIR

BOUNDS = LaunchBounds.of(block=(256, 1, 1), grid=(64, 1, 1))
OPTS = AnalysisOptions(bounds=BOUNDS)


def codes(kernelfn, options=OPTS):
    return sorted(d.code for d in analyze_kernel(kernelfn.ir, options))


# ---------------------------------------------------------------------------
# Race family
# ---------------------------------------------------------------------------


@kernel
def race_store_load(x: f64[:], out: f64[:]):
    i = gid(0)
    t = lid(0)
    tile = shared(f64, 256)
    tile[t] = x[i]
    out[i] = tile[255 - t]


@kernel
def race_fixed_by_barrier(x: f64[:], out: f64[:]):
    i = gid(0)
    t = lid(0)
    tile = shared(f64, 256)
    tile[t] = x[i]
    barrier()
    out[i] = tile[255 - t]


@kernel
def race_store_store(x: f64[:]):
    t = lid(0)
    tile = shared(f64, 256)
    tile[t] = 1.0
    tile[255 - t] = 2.0
    barrier()
    x[gid(0)] = tile[t]


@kernel
def race_store_atomic(x: f64[:]):
    i = gid(0)
    t = lid(0)
    tile = shared(f64, 256)
    tile[t] = x[i]
    atomic_add(tile, 255 - t, 1.0)
    barrier()
    x[i] = tile[t]


@kernel
def race_same_thread_only(x: f64[:]):
    t = lid(0)
    tile = shared(f64, 256)
    tile[t] = x[gid(0)]
    x[gid(0)] = tile[t]


@kernel
def race_guarded_reduction(x: f64[:], out: f64[:]):
    t = lid(0)
    tile = shared(f64, 256)
    tile[t] = x[gid(0)]
    barrier()
    s = 128
    while s > 0:
        if t < s:
            tile[t] = tile[t] + tile[t + s]
        barrier()
        s = s // 2
    if t == 0:
        atomic_add(out, 0, tile[0])


@kernel
def race_reduction_missing_barrier(x: f64[:], out: f64[:]):
    t = lid(0)
    tile = shared(f64, 256)
    tile[t] = x[gid(0)]
    barrier()
    s = 128
    while s > 0:
        if t < s:
            tile[t] = tile[t] + tile[t + s]
        s = s // 2
    if t == 0:
        atomic_add(out, 0, tile[0])


@kernel
def race_benign_waw(x: f64[:]):
    tile = shared(f64, 256)
    tile[0] = 3.0
    barrier()
    x[gid(0)] = tile[0]


@kernel
def race_neighbor(x: f64[:]):
    t = lid(0)
    tile = shared(f64, 256)
    tile[t] = x[gid(0)]
    x[gid(0)] = tile[t + 1]


@kernel
def race_parity_disjoint(x: f64[:]):
    t = lid(0)
    tile = shared(f64, 512)
    tile[2 * t] = x[gid(0)]
    x[gid(0)] = tile[2 * t + 1]


@kernel
def race_single_writer(x: f64[:]):
    t = lid(0)
    tile = shared(f64, 256)
    if t == 0:
        tile[0] = 1.0
    x[gid(0)] = tile[0]


@kernel
def race_disjoint_allocs(x: f64[:]):
    t = lid(0)
    tile_a = shared(f64, 256)
    tile_b = shared(f64, 256)
    tile_a[t] = x[gid(0)]
    x[gid(0)] = tile_b[t]


@kernel
def race_no_shared(n: i64, x: f64[:]):
    i = gid(0)
    if i < n:
        x[i] = x[i] * 2.0


RACE_CASES = [
    (race_store_load, {"RACE01"}),
    (race_fixed_by_barrier, set()),
    (race_store_store, {"RACE01"}),
    (race_store_atomic, {"RACE01"}),
    (race_same_thread_only, set()),
    (race_guarded_reduction, set()),
    (race_reduction_missing_barrier, {"RACE02"}),
    (race_benign_waw, {"RACE02"}),
    (race_neighbor, {"RACE01"}),
    (race_parity_disjoint, set()),
    (race_single_writer, {"RACE01"}),
    (race_disjoint_allocs, set()),
    (race_no_shared, set()),
]


@pytest.mark.parametrize("fn,expected", RACE_CASES,
                         ids=[f.ir.name for f, _ in RACE_CASES])
def test_race_family(fn, expected):
    got = {c for c in codes(fn) if c.startswith("RACE")}
    assert got == expected


# A tid.x-only shared index does not identify the thread in a 2-D block:
# threads (t, 0) and (t, 1) collide on tile[t].


@kernel
def race2d_cross_dim(x: "f64[:]", out: "f64[:]"):
    tile = shared(f64, 256)
    t = lid(0)
    y = lid(1)
    tile[t] = x[y]
    barrier()
    out[gid(0)] = tile[t]


@kernel
def race2d_pinned_ok(x: "f64[:]", out: "f64[:]"):
    tile = shared(f64, 256)
    t = lid(0)
    y = lid(1)
    if y == 0:
        tile[t] = x[t]
    barrier()
    if y == 0:
        out[gid(0)] = tile[t]


OPTS_2D = AnalysisOptions(bounds=LaunchBounds.of(block=(16, 16, 1),
                                                 grid=(64, 1, 1)))


def test_race_2d_block_cross_dimension_collision():
    got = {c for c in codes(race2d_cross_dim, OPTS_2D) if c.startswith("RACE")}
    assert got == {"RACE01"}


def test_race_2d_block_pinned_second_dimension_is_clean():
    got = {c for c in codes(race2d_pinned_ok, OPTS_2D) if c.startswith("RACE")}
    assert got == set()


def test_race_2d_kernel_clean_under_1d_block():
    # With a 1-D block tid.x alone is the thread identity.
    got = {c for c in codes(race2d_cross_dim) if c.startswith("RACE")}
    assert got == set()


# ---------------------------------------------------------------------------
# Divergence family
# ---------------------------------------------------------------------------


@kernel
def div_tid_guard(x: f64[:]):
    t = lid(0)
    if t < 16:
        barrier()
    x[gid(0)] = 1.0


@kernel
def div_block_guard_ok(x: f64[:]):
    if bid(0) == 0:
        barrier()
    x[gid(0)] = 1.0


@kernel
def div_param_guard_ok(n: i64, x: f64[:]):
    if n > 5:
        barrier()
    x[gid(0)] = 1.0


@kernel
def div_top_level_ok(x: f64[:]):
    barrier()
    x[gid(0)] = 1.0


@kernel
def div_uniform_loop_ok(n: i64, x: f64[:]):
    for it in range(n):
        barrier()
    x[gid(0)] = 1.0


@kernel
def div_variant_loop(x: f64[:]):
    t = lid(0)
    s = t
    while s > 0:
        barrier()
        s = s // 2
    x[gid(0)] = 1.0


@kernel
def div_lane_guard(x: f64[:]):
    if lane() < 8:
        barrier()
    x[gid(0)] = 1.0


@kernel
def div_nested_uniform_ok(n: i64, x: f64[:]):
    if n > 1:
        if n > 2:
            barrier()
    x[gid(0)] = 1.0


@kernel
def div_variant_outer(n: i64, x: f64[:]):
    t = lid(0)
    if t < 16:
        if n > 0:
            barrier()
    x[gid(0)] = 1.0


@kernel
def div_after_branch_ok(x: f64[:]):
    t = lid(0)
    if t < 16:
        x[gid(0)] = 2.0
    barrier()
    x[gid(0)] = 1.0


@kernel
def div_variance_through_binop(x: f64[:]):
    t = lid(0)
    if 2 * t < 30:
        barrier()
    x[gid(0)] = 1.0


@kernel
def div_variance_through_cvt(x: f64[:]):
    t = lid(0)
    c = t / 2
    if c < 8.0:
        barrier()
    x[gid(0)] = 1.0


DIV_CASES = [
    (div_tid_guard, {"DIV01"}),
    (div_block_guard_ok, set()),
    (div_param_guard_ok, set()),
    (div_top_level_ok, set()),
    (div_uniform_loop_ok, set()),
    (div_variant_loop, {"DIV02"}),
    (div_lane_guard, {"DIV01"}),
    (div_nested_uniform_ok, set()),
    (div_variant_outer, {"DIV01"}),
    (div_after_branch_ok, set()),
    (div_variance_through_binop, {"DIV01"}),
    (div_variance_through_cvt, {"DIV01"}),
]


@pytest.mark.parametrize("fn,expected", DIV_CASES,
                         ids=[f.ir.name for f, _ in DIV_CASES])
def test_divergence_family(fn, expected):
    got = {c for c in codes(fn) if c.startswith("DIV")}
    assert got == expected


# ---------------------------------------------------------------------------
# Bounds family
# ---------------------------------------------------------------------------


@kernel
def oob_guarded_ok(n: i64, x: f64[:]):
    i = gid(0)
    if i < n:
        x[i] = 1.0


@kernel
def oob_off_by_one(n: i64, x: f64[:]):
    i = gid(0)
    if i < n:
        x[i + 1] = 1.0


@kernel
def oob_negative(n: i64, x: f64[:]):
    t = lid(0)
    x[t - 1] = 1.0


@kernel
def oob_scalar_index(n: i64, k: i64, x: f64[:]):
    x[k] = 1.0


@kernel
def oob_numeric_ok(x: f64[:]):
    t = lid(0)
    x[t] = 1.0


@kernel
def oob_numeric_overrun(x: f64[:]):
    t = lid(0)
    x[t + 1] = 1.0


@kernel
def oob_unbounded_gid(n: i64, x: f64[:]):
    x[gid(0)] = 1.0


@kernel
def oob_on_load(x: f64[:], y: f64[:]):
    t = lid(0)
    y[t] = x[t + 300]


@kernel
def oob_shared_ok(x: f64[:]):
    t = lid(0)
    tile = shared(f64, 256)
    tile[t] = x[gid(0)]
    x[gid(0)] = tile[t]


@kernel
def oob_shared_small_tile(x: f64[:]):
    t = lid(0)
    tile = shared(f64, 128)
    tile[t] = 1.0
    x[gid(0)] = tile[0]


@kernel
def oob_shared_const_index(x: f64[:]):
    tile = shared(f64, 256)
    tile[256] = 1.0
    x[gid(0)] = tile[0]


@kernel
def oob_shared_region_cross(x: f64[:]):
    t = lid(0)
    tile = shared(f64, 128)
    scratch = shared(f64, 128)
    tile[t] = 1.0
    x[gid(0)] = scratch[0]


OOB_CASES = [
    # (kernel, extents, expected OOB codes)
    (oob_guarded_ok, {"x": "n"}, set()),
    (oob_off_by_one, {"x": "n"}, {"OOB01"}),
    (oob_negative, {"x": "n"}, {"OOB01"}),
    (oob_scalar_index, {"x": "n"}, {"OOB02"}),
    (oob_numeric_ok, {"x": 256}, set()),
    (oob_numeric_overrun, {"x": 256}, {"OOB01"}),
    (oob_unbounded_gid, {"x": "n"}, set()),  # conservative top: silent
    (oob_on_load, {"x": 256, "y": 256}, {"OOB01"}),
    (oob_guarded_ok, None, set()),  # no extents: global check skipped
    (oob_shared_ok, None, set()),
    (oob_shared_small_tile, None, {"OOB03"}),
    (oob_shared_const_index, None, {"OOB03"}),
    (oob_shared_region_cross, None, {"OOB03"}),
]


@pytest.mark.parametrize(
    "fn,extents,expected", OOB_CASES,
    ids=[f"{f.ir.name}-{i}" for i, (f, _e, _x) in enumerate(OOB_CASES)])
def test_bounds_family(fn, extents, expected):
    options = AnalysisOptions(bounds=BOUNDS, extents=extents)
    got = {c for c in codes(fn, options) if c.startswith("OOB")}
    assert got == expected


# ---------------------------------------------------------------------------
# Shared-memory hygiene + portability family
# ---------------------------------------------------------------------------


@kernel
def hyg_uninit_read(x: f64[:]):
    t = lid(0)
    tile = shared(f64, 256)
    x[gid(0)] = tile[t]


@kernel
def hyg_init_then_read_ok(x: f64[:]):
    t = lid(0)
    tile = shared(f64, 256)
    tile[t] = x[gid(0)]
    barrier()
    x[gid(0)] = tile[t]


@kernel
def hyg_dead_store(x: f64[:]):
    t = lid(0)
    tile = shared(f64, 256)
    tile[t] = 1.0
    x[gid(0)] = 2.0


@kernel
def hyg_loop_read_write_ok(n: i64, x: f64[:]):
    t = lid(0)
    tile = shared(f64, 256)
    tile[t] = 0.0
    for it in range(n):
        tile[t] = tile[t] + 1.0
    x[gid(0)] = tile[t]


@kernel
def hyg_atomic_uninit(x: i32[:]):
    # An atomic RMW on never-written shared memory reads undefined bits,
    # and its accumulated value is never read back: both lints apply.
    t = lid(0)
    hist = shared(i32, 256)
    old = atomic_add(hist, t, 1)
    x[gid(0)] = old


@kernel
def hyg_atomic_initialized_ok(x: i32[:]):
    t = lid(0)
    hist = shared(i32, 256)
    hist[t] = 0
    barrier()
    old = atomic_add(hist, t, 1)
    barrier()
    x[gid(0)] = hist[t]


@kernel
def hyg_unknown_index_silent(x: f64[:]):
    t = lid(0)
    tile = shared(f64, 256)
    x[gid(0)] = tile[(t * t) % 256]


@kernel
def port_wide_shuffle(x: f64[:]):
    v = x[gid(0)]
    w = shfl_down(v, 16)
    x[gid(0)] = v + w


@kernel
def port_narrow_shuffle_ok(x: f64[:]):
    v = x[gid(0)]
    w = shfl_down(v, 8)
    x[gid(0)] = v + w


@kernel
def port_broadcast_ok(x: f64[:]):
    v = x[gid(0)]
    w = shfl_idx(v, 0)
    x[gid(0)] = v + w


@kernel
def port_warpsize_derived_ok(x: f64[:]):
    v = x[gid(0)]
    w = shfl_down(v, warpsize() - 1)
    x[gid(0)] = v + w


@kernel
def port_cas_loop(n: i64, x: i32[:]):
    for it in range(n):
        old = atomic_cas(x, 0, 0, 1)


@kernel
def port_cas_once_ok(x: i32[:]):
    old = atomic_cas(x, 0, 0, 1)
    x[gid(0)] = old


@kernel
def port_big_shared(x: f64[:]):
    t = lid(0)
    tile = shared(f64, 8200)
    tile[t] = x[gid(0)]
    x[gid(0)] = tile[t]


HYG_PORT_CASES = [
    (hyg_uninit_read, {"UNINIT01"}),
    (hyg_init_then_read_ok, set()),
    (hyg_dead_store, {"DEAD01"}),
    (hyg_loop_read_write_ok, set()),
    (hyg_atomic_uninit, {"UNINIT01", "DEAD01"}),
    (hyg_atomic_initialized_ok, set()),
    (hyg_unknown_index_silent, set()),
    (port_wide_shuffle, {"PORT01"}),
    (port_narrow_shuffle_ok, set()),
    (port_broadcast_ok, set()),
    (port_warpsize_derived_ok, set()),
    (port_cas_loop, {"PORT02"}),
    (port_cas_once_ok, set()),
    (port_big_shared, {"PORT03"}),
]


@pytest.mark.parametrize("fn,expected", HYG_PORT_CASES,
                         ids=[f.ir.name for f, _ in HYG_PORT_CASES])
def test_hygiene_portability_family(fn, expected):
    got = {c for c in codes(fn)
           if c.startswith(("UNINIT", "DEAD", "PORT"))}
    assert got == expected


# ---------------------------------------------------------------------------
# Diagnostics surface
# ---------------------------------------------------------------------------


def test_diagnostics_are_structured():
    diags = analyze_kernel(race_store_load.ir, OPTS)
    assert diags, "seeded racy kernel must produce findings"
    d = diags[0]
    assert d.code == "RACE01"
    assert d.is_error
    assert d.kernel == "race_store_load"
    assert d.path.startswith("body[")
    assert d.hint
    rendered = d.render()
    assert "RACE01" in rendered and "hint:" in rendered


def test_multiple_findings_reported_not_raised():
    @kernel
    def many_problems(x: f64[:]):
        t = lid(0)
        tile = shared(f64, 128)
        if t < 16:
            barrier()
        tile[t] = x[gid(0)]
        x[gid(0)] = tile[255 - t]

    got = codes(many_problems)
    assert "DIV01" in got and "OOB03" in got


def test_report_aggregation_and_severity_order():
    module = ModuleIR(name="m")
    module.add(race_store_load.ir)
    module.add(hyg_dead_store.ir)
    report = analyze_module(module, OPTS)
    assert len(report.diagnostics) == 2
    assert len(report.errors) == 1
    assert "1 error(s)" in report.summary_line()
    by_kernel = report.by_kernel()
    assert set(by_kernel) == {"race_store_load", "hyg_dead_store"}


# ---------------------------------------------------------------------------
# Differential tests: static verdict vs observed interpreter behavior
# ---------------------------------------------------------------------------


def _buffers(n=256):
    return {"x": np.arange(n, dtype=np.float64),
            "out": np.zeros(n, dtype=np.float64)}


def test_differential_race_detected_and_observed():
    """Static RACE01 <-> outputs differ across thread schedules."""
    assert "RACE01" in codes(race_store_load)
    cmp = compare_schedules(race_store_load.ir, grid=(1, 1, 1),
                            block=(256, 1, 1), buffers=_buffers())
    assert not cmp.errors
    assert not cmp.deterministic


def test_differential_race_clean_and_deterministic():
    assert codes(race_fixed_by_barrier) == []
    cmp = compare_schedules(race_fixed_by_barrier.ir, grid=(1, 1, 1),
                            block=(256, 1, 1), buffers=_buffers())
    assert not cmp.errors
    assert cmp.deterministic
    out = cmp.outputs["lockstep"]["out"]
    assert np.array_equal(out, np.arange(256, dtype=np.float64)[::-1])


def test_differential_divergence_faults_lockstep():
    """Static DIV01 <-> lockstep interpreter raises DivergentBarrierError."""
    assert "DIV01" in codes(div_tid_guard)
    gmem = np.zeros(64 + 256 * 8, dtype=np.uint8)
    with pytest.raises(DivergentBarrierError):
        KernelExecutor(div_tid_guard.ir, 32, gmem).launch(
            (1, 1, 1), (256, 1, 1), (64,))


def test_differential_divergence_clean_runs():
    assert codes(div_top_level_ok) == []
    gmem = np.zeros(64 + 256 * 8, dtype=np.uint8)
    KernelExecutor(div_top_level_ok.ir, 32, gmem).launch(
        (1, 1, 1), (256, 1, 1), (64,))
    assert np.all(gmem[64:].view(np.float64) == 1.0)


def test_differential_oob_faults_interpreter():
    """Static OOB01 <-> tight buffer faults in the interpreter."""
    opts = AnalysisOptions(bounds=LaunchBounds.of(block=(256, 1, 1),
                                                  grid=(1, 1, 1)),
                           extents={"x": "n"})
    got = {c for c in codes(oob_off_by_one, opts) if c.startswith("OOB")}
    assert got == {"OOB01"}
    n = 256
    gmem = np.zeros(64 + n * 8, dtype=np.uint8)  # x occupies the tail
    with pytest.raises(MemoryFaultError):
        KernelExecutor(oob_off_by_one.ir, 32, gmem).launch(
            (1, 1, 1), (256, 1, 1), (n, 64))


def test_differential_oob_clean_in_bounds():
    opts = AnalysisOptions(bounds=BOUNDS, extents={"x": "n"})
    assert codes(oob_guarded_ok, opts) == []
    n = 256
    gmem = np.zeros(64 + n * 8, dtype=np.uint8)
    KernelExecutor(oob_guarded_ok.ir, 32, gmem).launch(
        (1, 1, 1), (256, 1, 1), (n, 64))
    assert np.all(gmem[64:].view(np.float64) == 1.0)


def test_differential_warp_width_sensitivity():
    """Static PORT01 <-> output depends on the execution width."""
    assert "PORT01" in codes(port_wide_shuffle)
    outs = {}
    for width in (32, 16):
        gmem = np.zeros(64 + 256 * 8, dtype=np.uint8)
        gmem[64:] = np.frombuffer(
            np.arange(256, dtype=np.float64).tobytes(), dtype=np.uint8)
        KernelExecutor(port_wide_shuffle.ir, width, gmem).launch(
            (1, 1, 1), (256, 1, 1), (64,))
        outs[width] = gmem[64:].view(np.float64).copy()
    assert not np.array_equal(outs[32], outs[16])


def test_differential_warp_width_clean_kernel_stable():
    assert codes(race_no_shared) == []
    outs = {}
    for width in (32, 16):
        gmem = np.zeros(64 + 256 * 8, dtype=np.uint8)
        gmem[64:] = np.frombuffer(
            np.arange(256, dtype=np.float64).tobytes(), dtype=np.uint8)
        KernelExecutor(race_no_shared.ir, width, gmem).launch(
            (1, 1, 1), (256, 1, 1), (256, 64))
        outs[width] = gmem[64:].view(np.float64).copy()
    assert np.array_equal(outs[32], outs[16])


# ---------------------------------------------------------------------------
# Toolchain + CLI integration
# ---------------------------------------------------------------------------


def test_toolchain_sanitize_attaches_report():
    from repro.compilers import get_toolchain
    from repro.enums import ISA, Language, Model
    from repro.frontends import TranslationUnit
    from repro import kernels as KL

    tu = TranslationUnit("t", Model.CUDA, Language.CPP)
    tu.add(KL.reduce_sum)
    res = get_toolchain("nvcc").compile(
        tu, ISA.PTX, sanitize=True, sanitize_options=OPTS)
    assert res.diagnostics is not None
    assert not res.diagnostics.diagnostics

    res_plain = get_toolchain("nvcc").compile(tu, ISA.PTX)
    assert res_plain.diagnostics is None


def test_cli_lint_library_is_clean(capsys):
    from repro.cli import main

    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_lint_flags_racy_module(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    mod = tmp_path / "racy_mod.py"
    mod.write_text(
        "from repro.frontends import kernel, f64\n"
        "\n"
        "@kernel\n"
        "def racy(x: f64[:], out: f64[:]):\n"
        "    i = gid(0)\n"
        "    t = lid(0)\n"
        "    tile = shared(f64, 256)\n"
        "    tile[t] = x[i]\n"
        "    out[i] = tile[255 - t]\n"
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    assert main(["lint", "--module", "racy_mod"]) == 1
    out = capsys.readouterr().out
    assert "RACE01" in out


def test_cli_lint_unknown_kernel_is_usage_error(capsys):
    from repro.cli import main

    assert main(["lint", "--kernel", "no_such_kernel"]) == 2
    assert "unknown kernel" in capsys.readouterr().err


def test_cli_lint_rejected_input_exits_3(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    mod = tmp_path / "broken_mod.py"
    mod.write_text(
        "from repro.frontends import kernel, f64\n"
        "from repro.isa import dtypes\n"
        "from repro.isa.instructions import Mov, Register\n"
        "\n"
        "@kernel\n"
        "def broken(x: f64[:]):\n"
        "    x[gid(0)] = 1.0\n"
        "\n"
        "broken.ir.body.append(\n"
        "    Mov(Register('a', dtypes.F64), Register('ghost', dtypes.F64)))\n"
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    assert main(["lint", "--module", "broken_mod"]) == 3
    assert "VerificationError" in capsys.readouterr().err


def test_cli_lint_pass_selection(capsys):
    from repro.cli import main

    # Only the portability pass: library kernels stay silent, and the
    # race pass never runs (so the racy corpus check is pass-scoped).
    assert main(["lint", "--pass", "port", "--kernel", "axpy"]) == 0
