"""Standard parallelism: pSTL algorithms and do concurrent."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enums import Language
from repro.errors import ApiError, LanguageError, UnsupportedFeatureError
from repro.models.stdpar import DoConcurrent, StdPar


def test_policies_gate_offload(nvidia):
    par = StdPar(nvidia, "nvhpc")
    x = par.to_device(np.ones(64))
    par.for_each_scale(x, 2.0, policy="par")
    par.for_each_scale(x, 2.0, policy="par_unseq")
    with pytest.raises(ApiError, match="does not offload"):
        par.for_each_scale(x, 2.0, policy="seq")


def test_transform_unary_and_binary(nvidia, rng):
    par = StdPar(nvidia, "nvhpc")
    a_h = rng.random(256) + 0.1
    b_h = rng.random(256)
    a, b = par.to_device(a_h), par.to_device(b_h)
    out = par.alloc(np.float64, 256)
    par.transform(a, None, out, "sqrt")
    np.testing.assert_allclose(out.copy_to_host(), np.sqrt(a_h))
    par.transform(a, b, out, "mul")
    np.testing.assert_allclose(out.copy_to_host(), a_h * b_h)
    with pytest.raises(ApiError, match="unknown binary"):
        par.transform(a, b, out, "hypot")


def test_reduce_and_transform_reduce(nvidia, rng):
    par = StdPar(nvidia, "nvhpc")
    a_h, b_h = rng.random(3000), rng.random(3000)
    a, b = par.to_device(a_h), par.to_device(b_h)
    assert np.isclose(par.reduce(a), a_h.sum())
    assert np.isclose(par.transform_reduce(a, b), a_h @ b_h)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                min_size=1, max_size=300))
def test_sort_property(values):
    """Property: device bitonic sort == np.sort for any float list."""
    from repro.gpu import get_device
    from repro.enums import Vendor

    par = StdPar(get_device(Vendor.NVIDIA), "nvhpc")
    data = np.array(values)
    x = par.to_device(data)
    par.sort(x)
    np.testing.assert_array_equal(x.copy_to_host(), np.sort(data))
    x.free()


@settings(max_examples=15, deadline=None)
@given(st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False),
                min_size=1, max_size=300))
def test_scan_property(values):
    """Property: device inclusive scan == np.cumsum."""
    from repro.gpu import get_device
    from repro.enums import Vendor

    par = StdPar(get_device(Vendor.NVIDIA), "nvhpc")
    data = np.array(values)
    x = par.to_device(data)
    par.inclusive_scan(x)
    np.testing.assert_allclose(x.copy_to_host(), np.cumsum(data),
                               rtol=1e-9, atol=1e-9)
    x.free()


def test_sort_power_of_two_and_padding(nvidia, rng):
    par = StdPar(nvidia, "nvhpc")
    for n in (256, 257, 1000, 1):
        data = rng.random(n)
        x = par.to_device(data)
        par.sort(x)
        np.testing.assert_array_equal(x.copy_to_host(), np.sort(data))
        x.free()


def test_namespace_semantics(nvidia, intel):
    assert StdPar(nvidia, "nvhpc").namespace == "std"
    assert StdPar(intel, "onedpl").namespace == "oneapi::dpl"
    StdPar(nvidia, "nvhpc").probe_std_namespace()
    with pytest.raises(UnsupportedFeatureError):
        StdPar(intel, "onedpl").probe_std_namespace()


def test_onedpl_runs_everything_else(intel):
    for method in ("probe_for_each", "probe_transform", "probe_reduce",
                   "probe_transform_reduce", "probe_scan", "probe_sort"):
        getattr(StdPar(intel, "onedpl"), method)()


def test_do_concurrent_is_fortran_only(nvidia):
    with pytest.raises(LanguageError):
        DoConcurrent(nvidia, "nvhpc", language=Language.CPP)


def test_do_concurrent_reduce(nvidia, rng):
    dc = DoConcurrent(nvidia, "nvhpc")
    data = rng.random(4096)
    x = dc.to_device(data)
    assert np.isclose(dc.reduce_sum(4096, x), data.sum())


def test_do_concurrent_on_intel_via_ifx(intel):
    from repro import kernels as KL

    dc = DoConcurrent(intel, "ifx")
    x = dc.to_device(np.ones(512))
    dc.do_concurrent(512, KL.scale_inplace, [512, 2.0, x],
                     locality=("local(tmp)",))
    assert (x.copy_to_host() == 2.0).all()


def test_do_concurrent_has_no_amd_route(amd):
    """Description 27, enforced at the toolchain layer."""
    from repro.errors import UnsupportedRouteError, UnsupportedTargetError
    from repro import kernels as KL

    for toolchain in ("nvhpc", "ifx"):
        dc = DoConcurrent(amd, toolchain)
        with pytest.raises((UnsupportedRouteError, UnsupportedTargetError)):
            dc.do_concurrent(64, KL.scale_inplace,
                             [64, 2.0, dc.alloc(np.float64, 64)])
