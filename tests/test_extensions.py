"""Extension layers: tracing, conformance suites, evolution, cuNumeric."""

import json

import numpy as np
import pytest

from repro import kernels as KL
from repro.enums import Language, Model, SupportCategory, Vendor
from repro.errors import ApiError
from repro.gpu import Device, System
from repro.gpu.specs import default_spec
from repro.gpu.trace import Tracer, attach_tracer, detach_tracer
from repro.models.cuda import Cuda


# -- timeline tracing ---------------------------------------------------------


@pytest.fixture
def traced_device():
    device = Device(default_spec(Vendor.NVIDIA), backing_bytes=1 << 22)
    tracer = attach_tracer(device)
    return device, tracer


def test_tracer_records_kernels_and_copies(traced_device):
    device, tracer = traced_device
    rt = Cuda(device)
    x = rt.to_device(np.ones(1 << 14))
    rt.launch_1d(KL.scale_inplace, 1 << 14, [1 << 14, 2.0, x])
    x.copy_to_host()
    names = [e.name for e in tracer.events]
    assert any("H2D" in n for n in names)
    assert "scale_inplace" in names
    assert any("D2H" in n for n in names)
    assert len(tracer.kernels()) == 1
    assert len(tracer.copies()) == 2


def test_trace_events_are_ordered_and_positive(traced_device):
    device, tracer = traced_device
    rt = Cuda(device)
    x = rt.to_device(np.ones(4096))
    for _ in range(3):
        rt.launch_1d(KL.scale_inplace, 4096, [4096, 2.0, x])
    kernels = tracer.kernels()
    assert len(kernels) == 3
    for e in kernels:
        assert e.end_s > e.start_s >= 0
    # FIFO on one stream: each kernel starts at/after the previous end.
    for first, second in zip(kernels, kernels[1:]):
        assert second.start_s >= first.end_s


def test_trace_busy_time_and_span(traced_device):
    device, tracer = traced_device
    rt = Cuda(device)
    x = rt.to_device(np.ones(4096))
    rt.launch_1d(KL.scale_inplace, 4096, [4096, 2.0, x])
    assert tracer.busy_time() > 0
    assert tracer.span() >= tracer.busy_time() - 1e-12
    assert tracer.busy_time(stream_id=0) == tracer.busy_time()


def test_chrome_trace_export(traced_device, tmp_path):
    device, tracer = traced_device
    rt = Cuda(device)
    x = rt.to_device(np.ones(1024))
    rt.launch_1d(KL.scale_inplace, 1024, [1024, 2.0, x])
    path = tmp_path / "trace.json"
    tracer.save(str(path))
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    assert events and all(e["ph"] == "X" for e in events)
    assert any(e["name"] == "scale_inplace" for e in events)
    assert all(e["pid"] == device.spec.name for e in events)


def test_detach_tracer(traced_device):
    device, tracer = traced_device
    assert detach_tracer(device) is tracer
    rt = Cuda(device)
    x = rt.to_device(np.ones(64))
    rt.launch_1d(KL.scale_inplace, 64, [64, 2.0, x])
    assert len(tracer.kernels()) == 0  # no longer recording


def test_multi_stream_trace(traced_device):
    device, tracer = traced_device
    rt = Cuda(device)
    s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
    x = rt.to_device(np.ones(1 << 16))
    y = rt.to_device(np.ones(1 << 16))
    rt.launch_1d(KL.scale_inplace, 1 << 16, [1 << 16, 2.0, x], stream=s1,
                 extra_features=("cuda:streams",))
    rt.launch_1d(KL.scale_inplace, 1 << 16, [1 << 16, 3.0, y], stream=s2,
                 extra_features=("cuda:streams",))
    streams = {e.stream_id for e in tracer.kernels()}
    assert len(streams) == 2
    # Overlap: the two kernels start at the same simulated time.
    k1, k2 = tracer.kernels()
    assert k1.start_s == k2.start_s


# -- conformance suites ------------------------------------------------------


def test_openmp_conformance_report(system):
    from repro.core.validation import run_conformance

    nvhpc = run_conformance(Model.OPENMP, Language.CPP, "nvhpc",
                            system.device(Vendor.NVIDIA))
    assert nvhpc.version_verdict("4.5") == "full"
    assert nvhpc.version_verdict("5.0").startswith("partial")
    assert nvhpc.version_verdict("5.1") == "none"
    assert nvhpc.conforms_to() == "4.5"

    intel = run_conformance(Model.OPENMP, Language.CPP, "dpcpp",
                            system.device(Vendor.INTEL))
    assert intel.conforms_to() == "5.1"
    assert "5.1: full" in intel.summary()


def test_openacc_conformance_report(system):
    from repro.core.validation import run_conformance

    gcc = run_conformance(Model.OPENACC, Language.CPP, "gcc",
                          system.device(Vendor.AMD))
    assert gcc.version_verdict("2.6") == "full"
    assert gcc.version_verdict("2.7") == "none"
    assert gcc.conforms_to() == "2.6"
    nvhpc = run_conformance(Model.OPENACC, Language.CPP, "nvhpc",
                            system.device(Vendor.NVIDIA))
    assert nvhpc.conforms_to() == "3.0"


def test_compiler_table_shape(system):
    from repro.core.validation import compiler_table, render_compiler_table

    reports = compiler_table(Model.OPENMP, Language.FORTRAN, system)
    toolchains = {r.toolchain for r in reports}
    assert {"nvhpc", "aomp", "gcc", "flang", "cray-ce", "ifx"} <= toolchains
    # A toolchain appears once per platform it can target:
    gcc_rows = [r for r in reports if r.toolchain == "gcc"]
    assert {r.device for r in gcc_rows} == {"H100-SXM5", "MI250X-GCD"}
    text = render_compiler_table(reports)
    assert "4.5" in text and "ifx" in text


def test_conformance_unknown_model(system):
    from repro.core.validation import run_conformance

    with pytest.raises(KeyError):
        run_conformance(Model.SYCL, Language.CPP, "dpcpp",
                        system.device(Vendor.INTEL))


# -- evolution ----------------------------------------------------------------


def test_snapshot_diff_matches_topicality():
    from repro.core.evolution import changelog, diff, stability
    from repro.data.snapshots import SNAPSHOT_2022, SNAPSHOT_2023

    changes = diff(SNAPSHOT_2022, SNAPSHOT_2023)
    changed = {(c.vendor, c.model, c.language) for c in changes}
    assert (Vendor.AMD, Model.STANDARD, Language.CPP) in changed
    assert (Vendor.INTEL, Model.CUDA, Language.CPP) in changed
    assert (Vendor.INTEL, Model.HIP, Language.CPP) in changed
    assert (Vendor.INTEL, Model.STANDARD, Language.FORTRAN) in changed
    assert len(changes) == 4
    # Three cells improved; Intel CUDA C++ kept its primary rating and
    # gained the chipStar second rating (a re-rate, not a rank change).
    directions = {(c.vendor, c.model): c.direction for c in changes}
    assert directions[(Vendor.INTEL, Model.CUDA)] == "re-rated"
    assert sum(1 for c in changes if c.direction == "improved") == 3
    assert stability(SNAPSHOT_2022, SNAPSHOT_2023) == pytest.approx(47 / 51)
    log = changelog(SNAPSHOT_2022, SNAPSHOT_2023)
    assert "improved: 3, regressed: 0, re-rated: 1" in log
    assert "roc-stdpar" in log or "progress" in log


def test_snapshot_self_diff_empty():
    from repro.core.evolution import diff
    from repro.data.snapshots import SNAPSHOT_2023

    assert diff(SNAPSHOT_2023, SNAPSHOT_2023) == []


def test_snapshot_2022_values():
    from repro.data.snapshots import SNAPSHOT_2022

    cell = SNAPSHOT_2022.cell(Vendor.AMD, Model.STANDARD, Language.CPP)
    assert cell.primary is SupportCategory.NONE
    cell = SNAPSHOT_2022.cell(Vendor.INTEL, Model.CUDA, Language.CPP)
    assert cell.primary is SupportCategory.INDIRECT
    assert cell.secondary is None  # the dual rating arrives with chipStar


# -- cuNumeric / Legate ---------------------------------------------------------


@pytest.fixture
def legate():
    from repro.models.cunumeric import LegateRuntime

    system = System.of("H100-SXM5", "H100-SXM5", "H100-SXM5",
                       backing_bytes=1 << 22)
    return LegateRuntime(list(system))


def test_legate_rejects_mixed_vendors():
    from repro.models.cunumeric import LegateRuntime

    system = System.default()
    with pytest.raises(ApiError, match="NVIDIA"):
        LegateRuntime(list(system))
    with pytest.raises(ApiError, match="at least one"):
        LegateRuntime([])


def test_legate_sharding(legate):
    arr = legate.array(np.arange(10.0))
    assert arr.shard_sizes == [4, 3, 3]
    np.testing.assert_array_equal(arr.get(), np.arange(10.0))


def test_legate_tiny_array_skips_devices(legate):
    arr = legate.array(np.ones(2))
    assert arr.shard_sizes == [1, 1]
    assert arr.get().size == 2


def test_legate_elementwise_and_reduction(legate, rng):
    x_h, y_h = rng.random(1000), rng.random(1000)
    x, y = legate.array(x_h), legate.array(y_h)
    z = 2.0 * x + y
    np.testing.assert_allclose(z.get(), 2.0 * x_h + y_h)
    assert np.isclose(z.sum(), (2.0 * x_h + y_h).sum())
    assert np.isclose(x.dot(y), x_h @ y_h)


def test_legate_shape_mismatch(legate):
    x = legate.array(np.ones(10))
    y = legate.array(np.ones(12))
    with pytest.raises(ApiError, match="shape mismatch"):
        _ = x + y


def test_legate_transparent_scaling():
    """More devices -> less simulated time for the same problem."""
    from repro.models.cunumeric import LegateRuntime

    n = 1 << 22  # large enough to amortize per-launch latency

    def run(n_devices: int) -> float:
        system = System.of(*["H100-SXM5"] * n_devices,
                           backing_bytes=1 << 27)
        runtime = LegateRuntime(list(system))
        x = runtime.array(np.ones(n))
        t0 = runtime.synchronize()
        for _ in range(4):
            x = 2.0 * x + x
        return runtime.synchronize() - t0

    t1, t4 = run(1), run(4)
    assert t4 < t1 * 0.5, (t1, t4)
