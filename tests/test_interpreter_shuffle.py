"""Cross-lane shuffles under the three execution widths."""

import numpy as np
import pytest

from repro.isa import IRBuilder, KernelExecutor, dtypes


def _shuffle_kernel(mode):
    b = IRBuilder("k")
    x = b.param("x", dtypes.F64, pointer=True)
    out = b.param("out", dtypes.F64, pointer=True)
    lane_arg = b.param("lane", dtypes.I64)
    i = b.global_id()
    v = b.load_elem(x, i, dtypes.F64)
    shuffled = b.shuffle(mode, v, b.cvt(lane_arg, dtypes.U32))
    b.store_elem(out, i, shuffled, dtypes.F64)
    return b.build()


def _run(kernel, n, lane, warp_size, block=None):
    block = block or n
    mem = np.zeros(1 << 14, dtype=np.uint8)
    mem[:n * 8] = np.arange(n, dtype=np.float64).view(np.uint8)
    ex = KernelExecutor(kernel, warp_size, mem)
    ex.launch(((n + block - 1) // block,), (block,), [0, n * 8, lane])
    return mem[n * 8:2 * n * 8].view(np.float64)


@pytest.mark.parametrize("warp", [16, 32, 64])
def test_shfl_down(warp):
    n = warp * 2
    out = _run(_shuffle_kernel("down"), n, 1, warp)
    lanes = np.arange(n)
    in_warp = lanes % warp
    expected = np.where(in_warp + 1 < warp, lanes + 1, lanes).astype(float)
    np.testing.assert_array_equal(out, expected)


@pytest.mark.parametrize("warp", [16, 32, 64])
def test_shfl_up(warp):
    n = warp * 2
    out = _run(_shuffle_kernel("up"), n, 1, warp)
    lanes = np.arange(n)
    in_warp = lanes % warp
    expected = np.where(in_warp >= 1, lanes - 1, lanes).astype(float)
    np.testing.assert_array_equal(out, expected)


@pytest.mark.parametrize("warp", [16, 32, 64])
def test_shfl_xor_butterfly(warp):
    n = warp
    out = _run(_shuffle_kernel("xor"), n, 1, warp)
    expected = (np.arange(n) ^ 1).astype(float)
    np.testing.assert_array_equal(out, expected)


def test_shfl_idx_broadcast():
    """idx mode broadcasts one lane's value across the warp."""
    warp = 32
    out = _run(_shuffle_kernel("idx"), warp, 5, warp)
    np.testing.assert_array_equal(out, np.full(warp, 5.0))


def test_partial_warp_clamps_to_own_value():
    """The trailing partial warp keeps own values for OOB targets."""
    warp = 32
    block = 40  # one full warp + 8-lane partial warp
    out = _run(_shuffle_kernel("down"), block, 1, warp, block=block)
    lanes = np.arange(block)
    in_warp = lanes % warp
    warp_len = np.where(lanes < 32, 32, 8)
    expected = np.where(in_warp + 1 < warp_len, lanes + 1, lanes).astype(float)
    np.testing.assert_array_equal(out, expected)


def test_warps_do_not_cross_blocks():
    """Lane 31 of block 0 must not read lane 0 of block 1."""
    warp = 32
    kernel = _shuffle_kernel("down")
    out = _run(kernel, 64, 1, warp, block=32)  # two single-warp blocks
    # last lane of each block keeps its own value
    assert out[31] == 31.0
    assert out[63] == 63.0


def test_warp_reduction_via_shuffles():
    """The classic shfl_down tree reduces a warp to lane 0."""
    warp = 32
    b = IRBuilder("k")
    x = b.param("x", dtypes.F64, pointer=True)
    out = b.param("out", dtypes.F64, pointer=True)
    i = b.global_id()
    acc = b.named("acc", dtypes.F64)
    b.mov(acc, b.load_elem(x, i, dtypes.F64))
    offset = b.named("off", dtypes.I64)
    b.mov(offset, 16)
    with b.while_() as loop:
        with loop.cond():
            loop.set_cond(b.gt(offset, 0))
        b.mov(acc, b.add(acc, b.shuffle("down", acc, b.cvt(offset, dtypes.U32))))
        b.mov(offset, b.div(offset, b.operand(2, dtypes.I64)))
    with b.if_(b.eq(b.cvt(b.special("laneid"), dtypes.I64), 0)):
        b.store_elem(out, b.div(i, b.operand(32, dtypes.I64)), acc, dtypes.F64)
    kernel = b.build()
    n = 128
    mem = np.zeros(1 << 14, dtype=np.uint8)
    values = np.arange(n, dtype=np.float64)
    mem[:n * 8] = values.view(np.uint8)
    ex = KernelExecutor(kernel, warp, mem)
    ex.launch((1,), (n,), [0, n * 8])
    got = mem[n * 8:n * 8 + 4 * 8].view(np.float64)
    expected = values.reshape(4, 32).sum(axis=1)
    np.testing.assert_array_equal(got, expected)


def test_laneid_and_warpsize_specials():
    b = IRBuilder("k")
    lanes = b.param("lanes", dtypes.I64, pointer=True)
    sizes = b.param("sizes", dtypes.I64, pointer=True)
    i = b.global_id()
    b.store_elem(lanes, i, b.cvt(b.special("laneid"), dtypes.I64), dtypes.I64)
    b.store_elem(sizes, i, b.cvt(b.special("warpsize"), dtypes.I64), dtypes.I64)
    kernel = b.build()
    mem = np.zeros(1 << 14, dtype=np.uint8)
    ex = KernelExecutor(kernel, 64, mem)
    ex.launch((1,), (128,), [0, 128 * 8])
    np.testing.assert_array_equal(mem[:128 * 8].view(np.int64),
                                  np.arange(128) % 64)
    assert (mem[128 * 8:256 * 8].view(np.int64) == 64).all()
