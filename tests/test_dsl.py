"""Kernel DSL: supported constructs, typing, and rejection of the rest."""

import numpy as np
import pytest

from repro.enums import ISA
from repro.errors import KernelSyntaxError
from repro.frontends import compile_kernel, f32, f64, i32, i64, kernel, u64
from repro.isa import KernelExecutor, ModuleIR, legalize

_CAPTURED = 17


def _run(kernelfn, n_threads, args, mem_bytes=1 << 16, block=64):
    mem = np.zeros(mem_bytes, dtype=np.uint8)
    ex = KernelExecutor(kernelfn.ir, 32, mem)
    ex.launch(((n_threads + block - 1) // block,), (block,), args)
    return mem


def test_kernel_metadata():
    @kernel
    def k(n: i64, a: f64, x: f64[:], out: f64[:]):
        i = gid(0)
        if i < n:
            out[i] = a * x[i]

    assert k.name == "k"
    assert k.arg_is_pointer == (False, False, True, True)
    assert [t.name for t in k.arg_dtypes] == ["i64", "f64", "f64", "f64"]


def test_missing_annotation_rejected():
    with pytest.raises(KernelSyntaxError, match="needs a type annotation"):
        @kernel
        def k(n, x: f64[:]):  # noqa: ANN001
            pass


def test_bad_annotation_rejected():
    with pytest.raises(KernelSyntaxError, match="must be a DSL type"):
        @kernel
        def k(n: int, x: f64[:]):
            pass


def test_captured_numeric_constant():
    @kernel
    def k(out: i64[:]):
        i = gid(0)
        out[i] = _CAPTURED

    mem = _run(k, 32, [0])
    assert (mem[:32 * 8].view(np.int64) == 17).all()


def test_captured_nonnumeric_rejected():
    helper = [1, 2, 3]
    with pytest.raises(KernelSyntaxError, match="numeric constant"):
        @kernel
        def k(out: i64[:]):
            out[0] = helper  # noqa: F821


def test_unknown_name_rejected():
    with pytest.raises(KernelSyntaxError, match="unknown name"):
        @kernel
        def k(out: i64[:]):
            out[0] = totally_undefined  # noqa: F821


def test_while_and_augmented_assignment():
    @kernel
    def k(n: i64, out: f64[:]):
        i = gid(0)
        if i >= n:
            return
        acc = 0.0
        j = 0
        while j < 10:
            acc += 2.0
            j += 1
        out[i] = acc

    mem = _run(k, 16, [16, 0])
    assert (mem[:16 * 8].view(np.float64) == 20.0).all()


def test_for_range_variants():
    @kernel
    def k(out: i64[:]):
        i = gid(0)
        a = 0
        for j in range(5):
            a += j
        b = 0
        for j in range(2, 8):
            b += j
        c = 0
        for j in range(10, 0, -2):
            c += j
        out[3 * i] = a
        out[3 * i + 1] = b
        out[3 * i + 2] = c

    mem = _run(k, 1, [0], block=1)
    got = mem[:24].view(np.int64)
    assert list(got) == [10, 27, 30]


def test_chained_comparison():
    @kernel
    def k(n: i64, out: f64[:]):
        i = gid(0)
        if 2 <= i < n:
            out[i] = 1.0

    mem = _run(k, 32, [8, 0])
    got = mem[:32 * 8].view(np.float64)
    assert got.sum() == 6  # i in {2..7}


def test_boolean_operators_and_ifexp():
    @kernel
    def k(out: f64[:]):
        i = gid(0)
        flag = (i > 2 and i < 6) or i == 0
        out[i] = 1.0 if flag else 0.0

    mem = _run(k, 8, [0])
    got = mem[:8 * 8].view(np.float64)
    assert list(got) == [1.0, 0, 0, 1.0, 1.0, 1.0, 0, 0]


def test_integer_true_division_yields_float():
    @kernel
    def k(out: f64[:]):
        i = gid(0)
        out[i] = (i + 1) / 2

    mem = _run(k, 4, [0])
    assert list(mem[:32].view(np.float64)) == [0.5, 1.0, 1.5, 2.0]


def test_floor_division_stays_integer():
    @kernel
    def k(out: i64[:]):
        i = gid(0)
        out[i] = (i + 10) // 3

    mem = _run(k, 4, [0])
    assert list(mem[:32].view(np.int64)) == [3, 3, 4, 4]


def test_math_intrinsics():
    @kernel
    def k(x: f64[:], out: f64[:]):
        i = gid(0)
        out[i] = sqrt(x[i]) + abs(-1.0) + min(x[i], 2.0) + max(x[i], 0.5)

    xs = np.array([1.0, 4.0, 9.0])
    mem = np.zeros(1 << 12, dtype=np.uint8)
    mem[:24] = xs.view(np.uint8)
    KernelExecutor(k.ir, 32, mem).launch((1,), (3,), [0, 64])
    got = mem[64:64 + 24].view(np.float64)
    expected = np.sqrt(xs) + 1.0 + np.minimum(xs, 2.0) + np.maximum(xs, 0.5)
    np.testing.assert_allclose(got, expected)


def test_type_cast_intrinsics():
    @kernel
    def k(out: i32[:]):
        i = gid(0)
        out[i] = i32(f64(i) * 2.5)

    mem = _run(k, 4, [0])
    assert list(mem[:16].view(np.int32)) == [0, 2, 5, 7]


def test_shared_and_barrier_feature_tags():
    @kernel
    def k(n: i64, x: f64[:], out: f64[:]):
        tile = shared(f64, 64)
        t = lid(0)
        tile[t] = x[t]
        barrier()
        out[t] = tile[63 - t]

    assert {"shared_memory", "barrier"} <= set(k.features)
    xs = np.arange(64, dtype=np.float64)
    mem = np.zeros(1 << 12, dtype=np.uint8)
    mem[:64 * 8] = xs.view(np.uint8)
    KernelExecutor(k.ir, 32, mem).launch((1,), (64,), [64, 0, 64 * 8])
    got = mem[64 * 8:128 * 8].view(np.float64)
    np.testing.assert_array_equal(got, xs[::-1])


def test_shared_size_from_captured_constant():
    @kernel
    def k(out: f64[:]):
        tile = shared(f64, _CAPTURED)
        t = lid(0)
        if t < _CAPTURED:
            tile[t] = 1.0
        out[t] = 0.0

    assert k.ir.shared_bytes == _CAPTURED * 8


def test_atomics_return_values():
    @kernel
    def k(counter: i64[:], out: i64[:]):
        i = gid(0)
        old = atomic_add(counter, 0, i64(1))
        out[i] = old

    mem = _run(k, 64, [0, 64])
    olds = mem[64:64 + 64 * 8].view(np.int64)
    np.testing.assert_array_equal(np.sort(olds), np.arange(64))


def test_atomic_cas_intrinsic():
    @kernel
    def k(slot: i64[:], wins: i64[:]):
        i = gid(0)
        old = atomic_cas(slot, 0, i64(0), i + 1)
        if old == 0:
            atomic_add(wins, 0, i64(1))

    mem = _run(k, 64, [0, 64])
    assert mem[64:72].view(np.int64)[0] == 1


def test_unsupported_constructs_rejected():
    with pytest.raises(KernelSyntaxError, match="break/continue"):
        @kernel
        def k1(out: f64[:]):
            for j in range(10):
                break

    with pytest.raises(KernelSyntaxError, match="cannot return values"):
        @kernel
        def k2(out: f64[:]):
            return 1

    with pytest.raises(KernelSyntaxError, match="range"):
        @kernel
        def k3(out: f64[:]):
            for j in [1, 2, 3]:
                out[j] = 1.0

    with pytest.raises(KernelSyntaxError, match="unknown intrinsic"):
        @kernel
        def k4(out: f64[:]):
            out[0] = print(1)  # noqa: T201

    with pytest.raises(KernelSyntaxError, match="chained assignment"):
        @kernel
        def k5(out: f64[:]):
            a = b = 1.0  # noqa: F841


def test_keyword_args_to_intrinsics_rejected():
    with pytest.raises(KernelSyntaxError, match="positional"):
        @kernel
        def k(out: f64[:]):
            out[gid(dim=0)] = 1.0


def test_docstring_allowed():
    @kernel
    def k(out: f64[:]):
        """This docstring is ignored by the compiler."""
        out[gid(0)] = 1.0

    _run(k, 4, [0])


def test_annotated_local_assignment():
    @kernel
    def k(out: f32[:]):
        i = gid(0)
        v: f32 = 1.5
        out[i] = v

    mem = _run(k, 4, [0])
    assert (mem[:16].view(np.float32) == 1.5).all()


def test_lid_bid_bdim_gdim():
    @kernel
    def k(out: i64[:]):
        i = gid(0)
        out[i] = lid(0) + 1000 * bid(0) + 1000000 * bdim(0) + 1000000000 * gdim(0)

    mem = _run(k, 128, [0], block=64)
    got = mem[:128 * 8].view(np.int64)
    lanes = np.arange(128)
    expected = (lanes % 64 + 1000 * (lanes // 64) + 1000000 * 64
                + 1000000000 * 2)
    np.testing.assert_array_equal(got, expected)


def test_kernels_run_on_all_isas():
    @kernel
    def k(n: i64, x: f64[:]):
        i = gid(0)
        if i < n:
            x[i] = x[i] * 3.0

    mod = ModuleIR("m")
    mod.add(k.ir)
    for isa in ISA:
        binary = legalize(mod, isa)
        mem = np.zeros(1 << 12, dtype=np.uint8)
        mem[:80] = np.ones(10).view(np.uint8)
        KernelExecutor(binary.kernel("k"), binary.warp_size, mem).launch(
            (1,), (32,), [10, 0])
        assert (mem[:80].view(np.float64) == 3.0).all()
