"""Tests for the transval translation validator (TV01–TV06)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels as KL
from repro.analysis.transval import (
    kernel_signature,
    shipped_translators,
    validate_all,
    validate_translation,
    validate_translator,
)
from repro.enums import Language, Model
from repro.frontends.source import TranslationUnit
from repro.translate.base import SourceTranslator
from repro.translate.hipify import Hipify
from repro.translate.syclomatic import Syclomatic


def _codes(diags):
    return sorted(d.code for d in diags)


def _cuda_unit(*features):
    tu = TranslationUnit(name="tv_unit", model=Model.CUDA,
                        language=Language.CPP)
    tu.add(KL.stream_dot)
    tu.require("cuda:kernels", "cuda:memcpy", *features)
    return tu


# ---------------------------------------------------------------------------
# The shipped translators must validate clean
# ---------------------------------------------------------------------------


def test_shipped_translators_validate_clean():
    report = validate_all()
    assert report.diagnostics == [], report.render()


def test_shipped_translators_cover_the_registry():
    names = [(t.NAME, t.SOURCE_MODEL) for t in shipped_translators()]
    assert ("hipify", Model.CUDA) in names
    assert ("syclomatic", Model.CUDA) in names
    assert ("gpufort", Model.CUDA) in names
    assert ("gpufort", Model.OPENACC) in names
    assert ("acc2omp", Model.OPENACC) in names


def test_translated_unit_validates_clean():
    tu = _cuda_unit("cuda:streams")
    out = Hipify().translate_unit(tu)
    assert validate_translation(out) == []


def test_unit_without_origin_validates_vacuously():
    assert validate_translation(_cuda_unit()) == []


# ---------------------------------------------------------------------------
# Seeded faults — the acceptance-criterion tests
# ---------------------------------------------------------------------------


def test_deleted_hipify_identifier_fires_tv04():
    """Deleting one IDENTIFIER_MAP entry must surface as TV04.

    ``cudaDeviceSynchronize`` has no shorter map entry as a prefix, so
    the stale identifier survives the witness translation verbatim and
    the leftover scanner reports it.
    """
    t = Hipify()
    t.IDENTIFIER_MAP = dict(t.IDENTIFIER_MAP)
    del t.IDENTIFIER_MAP["cudaDeviceSynchronize"]
    diags = validate_translator(t)
    assert "TV04" in _codes(diags)
    assert any("cudaDeviceSynchronize" in d.message for d in diags)


def test_deleted_syclomatic_tag_fires_tv01():
    """Deleting one TAG_MAP entry must surface as TV01 (unmapped tag)."""
    t = Syclomatic()
    t.TAG_MAP = dict(t.TAG_MAP)
    del t.TAG_MAP["cuda:streams"]
    diags = validate_translator(t)
    tv01 = [d for d in diags if d.code == "TV01"]
    assert tv01, _codes(diags)
    assert any("cuda:streams" in d.message for d in tv01)
    assert all(d.is_error for d in tv01)


def test_tag_mapped_outside_vocabulary_fires_tv02():
    t = Hipify()
    t.TAG_MAP = dict(t.TAG_MAP)
    t.TAG_MAP["cuda:streams"] = ("hip:not_a_real_tag",)
    diags = validate_translator(t)
    tv02 = [d for d in diags if d.code == "TV02"]
    assert tv02, _codes(diags)
    assert any("hip:not_a_real_tag" in d.message for d in tv02)


def test_dead_pattern_rule_fires_tv05():
    t = Hipify()
    t.PATTERN_RULES = t.PATTERN_RULES + (
        (r"zz_never_in_the_witness_zz", "unreachable"),
    )
    diags = validate_translator(t)
    tv05 = [d for d in diags if d.code == "TV05"]
    assert tv05, _codes(diags)
    assert any("zz_never_in_the_witness_zz" in d.message for d in tv05)


class _SilentTodoDropper(SourceTranslator):
    """A translator that buries dropped constructs in TODO comments.

    Models the behaviour transval exists to catch: the rewrite fires,
    the output text says TODO, but no structured warning is issued.
    """

    NAME = "silent-dropper"
    SOURCE_MODEL = Model.CUDA
    TARGET_MODEL = Model.HIP
    TAG_MAP = dict(Hipify.TAG_MAP)
    SOURCE_TAG_DOMAIN = Hipify.SOURCE_TAG_DOMAIN
    PATTERN_RULES = ((r"special_construct\(\)", "/* TODO: port this */"),)
    WITNESS_SOURCE = "int f() { special_construct(); return 0; }\n"

    def translate_source(self, text):
        out, report = super().translate_source(text)
        report.warnings = [w for w in report.warnings if "TODO" not in w]
        return out, report


def test_silent_todo_drop_fires_tv06():
    diags = validate_translator(_SilentTodoDropper())
    tv06 = [d for d in diags if d.code == "TV06"]
    assert tv06, _codes(diags)
    assert "structured warning" in tv06[0].message


# ---------------------------------------------------------------------------
# Unit-level tag conservation and IR equivalence
# ---------------------------------------------------------------------------


def test_dropped_mapped_tag_fires_tv01():
    out = Hipify().translate_unit(_cuda_unit("cuda:streams"))
    out.features.discard("hip:streams")
    diags = validate_translation(out)
    assert "TV01" in _codes(diags)
    assert any("hip:streams" in d.message for d in diags)


def test_invented_tag_fires_tv02():
    out = Hipify().translate_unit(_cuda_unit())
    out.features.add("hip:graphs")  # legal HIP tag, but from no source tag
    diags = validate_translation(out)
    tv02 = [d for d in diags if d.code == "TV02"]
    assert tv02, _codes(diags)
    assert any("hip:graphs" in d.message for d in tv02)


def test_out_of_vocabulary_tag_fires_tv02_twice():
    out = Hipify().translate_unit(_cuda_unit())
    out.features.add("hip:bogus")
    codes = _codes(validate_translation(out))
    # unmotivated AND outside the vocabulary: both TV02 findings apply
    assert codes.count("TV02") == 2


def test_added_kernel_fires_tv03():
    out = Hipify().translate_unit(_cuda_unit())
    out.add(KL.axpy)
    diags = validate_translation(out)
    tv03 = [d for d in diags if d.code == "TV03"]
    assert tv03, _codes(diags)
    assert any("axpy" in d.message for d in tv03)


def test_missing_kernel_fires_tv03():
    out = Hipify().translate_unit(_cuda_unit())
    out.kernels = [k for k in out.kernels if k.name != "stream_dot"]
    diags = validate_translation(out)
    tv03 = [d for d in diags if d.code == "TV03"]
    assert tv03, _codes(diags)
    assert any("missing" in d.message for d in tv03)


# ---------------------------------------------------------------------------
# Structural signatures
# ---------------------------------------------------------------------------


def test_kernel_signature_is_stable_across_translation():
    src = _cuda_unit()
    out = Hipify().translate_unit(src)
    assert (kernel_signature(src.kernels[0].ir)
            == kernel_signature(out.kernels[0].ir))


def test_kernel_signature_distinguishes_memory_shapes():
    sigs = {name: kernel_signature(fn.ir)
            for name, fn in KL.KERNEL_LIBRARY.items()}
    # axpy and scale_inplace differ in loads; reduce_sum and stream_dot
    # share their reduction skeleton but differ in parameter shape.
    assert sigs["axpy"] != sigs["scale_inplace"]
    assert sigs["reduce_sum"] != sigs["stream_dot"]
    # the signature ignores names: two structurally identical
    # elementwise kernels collide, which is exactly the point
    assert sigs["ew_add"] == sigs["ew_sub"]


def test_validate_all_accepts_explicit_list():
    t = Syclomatic()
    t.TAG_MAP = dict(t.TAG_MAP)
    del t.TAG_MAP["cuda:events"]
    report = validate_all([t])
    assert [d.code for d in report.errors] == ["TV01"]
