"""Interpreter control flow: divergence masks, loops, early exit."""

import numpy as np
import pytest

from repro.enums import ISA
from repro.errors import IRError, LaunchError
from repro.isa import IRBuilder, KernelExecutor, ModuleIR, dtypes


def _exec(kernel, n_threads, args, mem_bytes=1 << 16, block=64,
          warp_size=32, chunk_lanes=1 << 18):
    mem = np.zeros(mem_bytes, dtype=np.uint8)
    ex = KernelExecutor(kernel, warp_size, mem, chunk_lanes=chunk_lanes)
    grid = (n_threads + block - 1) // block
    stats = ex.launch((grid,), (block,), args)
    return mem, stats


def test_if_else_divergence():
    """Odd and even lanes take different arms; both produce values."""
    b = IRBuilder("k")
    out = b.param("out", dtypes.F64, pointer=True)
    i = b.global_id()
    parity = b.binop("rem", i, b.operand(2, dtypes.I64))
    with b.if_(b.eq(parity, 0)) as iff:
        b.store_elem(out, i, 100.0, dtypes.F64)
    with b.orelse(iff):
        b.store_elem(out, i, 200.0, dtypes.F64)
    mem, _ = _exec(b.build(), 128, [0])
    got = mem[:128 * 8].view(np.float64)
    expected = np.where(np.arange(128) % 2 == 0, 100.0, 200.0)
    np.testing.assert_array_equal(got, expected)


def test_nested_divergence():
    """Two nested ifs partition lanes four ways."""
    b = IRBuilder("k")
    out = b.param("out", dtypes.I64, pointer=True)
    i = b.global_id()
    bit0 = b.binop("and", i, b.operand(1, dtypes.I64))
    bit1 = b.binop("and", i, b.operand(2, dtypes.I64))
    code = b.named("code", dtypes.I64)
    b.mov(code, 0)
    with b.if_(b.ne(bit0, 0)) as outer:
        with b.if_(b.ne(bit1, 0)) as inner:
            b.mov(code, 3)
        with b.orelse(inner):
            b.mov(code, 1)
    with b.orelse(outer):
        with b.if_(b.ne(bit1, 0)) as inner2:
            b.mov(code, 2)
        with b.orelse(inner2):
            b.mov(code, 0)
    b.store_elem(out, i, code, dtypes.I64)
    mem, _ = _exec(b.build(), 64, [0])
    got = mem[:64 * 8].view(np.int64)
    np.testing.assert_array_equal(got, np.arange(64) % 4)


def test_per_lane_loop_trip_counts():
    """Each lane loops i times: triangular-number output."""
    b = IRBuilder("k")
    out = b.param("out", dtypes.I64, pointer=True)
    i = b.global_id()
    acc = b.named("acc", dtypes.I64)
    b.mov(acc, 0)
    with b.for_range(0, i) as k:
        b.mov(acc, b.add(acc, k))
    b.store_elem(out, i, acc, dtypes.I64)
    mem, _ = _exec(b.build(), 100, [0])
    got = mem[:100 * 8].view(np.int64)
    expected = np.array([sum(range(i)) for i in range(100)])
    np.testing.assert_array_equal(got, expected)


def test_early_return_masks_lanes():
    b = IRBuilder("k")
    n = b.param("n", dtypes.I64)
    out = b.param("out", dtypes.F64, pointer=True)
    i = b.global_id()
    with b.if_(b.ge(i, n)):
        b.exit()
    b.store_elem(out, i, 1.0, dtypes.F64)
    mem, _ = _exec(b.build(), 128, [50, 0])
    got = mem[:128 * 8].view(np.float64)
    assert got[:50].sum() == 50
    assert got[50:].sum() == 0


def test_exit_inside_loop():
    """Lanes retire from inside a loop at different trip counts."""
    b = IRBuilder("k")
    out = b.param("out", dtypes.I64, pointer=True)
    i = b.global_id()
    count = b.named("count", dtypes.I64)
    b.mov(count, 0)
    with b.while_() as loop:
        with loop.cond():
            loop.set_cond(b.lt(count, 1000))
        b.store_elem(out, i, count, dtypes.I64)
        with b.if_(b.ge(count, i)):
            b.exit()
        b.mov(count, b.add(count, b.operand(1, dtypes.I64)))
    mem, _ = _exec(b.build(), 64, [0])
    got = mem[:64 * 8].view(np.int64)
    np.testing.assert_array_equal(got, np.arange(64))


def test_zero_trip_loop():
    b = IRBuilder("k")
    out = b.param("out", dtypes.F64, pointer=True)
    i = b.global_id()
    b.store_elem(out, i, 5.0, dtypes.F64)
    with b.for_range(10, 5) as _k:  # empty range
        b.store_elem(out, i, -1.0, dtypes.F64)
    mem, _ = _exec(b.build(), 32, [0])
    assert (mem[:32 * 8].view(np.float64) == 5.0).all()


def test_runaway_loop_guard():
    b = IRBuilder("k")
    b.param("out", dtypes.F64, pointer=True)
    flag = b.named("flag", dtypes.PRED)
    b.mov(flag, True)
    with b.while_() as loop:
        with loop.cond():
            loop.set_cond(flag)
        b.mov(b.named("x", dtypes.F64), 1.0)
    from repro.isa import interpreter

    original = interpreter._MAX_LOOP_TRIPS
    interpreter._MAX_LOOP_TRIPS = 1000
    try:
        with pytest.raises(IRError, match="runaway"):
            _exec(b.build(), 32, [0])
    finally:
        interpreter._MAX_LOOP_TRIPS = original


def test_uniform_condition_scalar_broadcast():
    """A condition uniform across lanes still branches correctly."""
    b = IRBuilder("k")
    flag = b.param("flag", dtypes.I64)
    out = b.param("out", dtypes.F64, pointer=True)
    i = b.global_id()
    with b.if_(b.gt(flag, 0)) as iff:
        b.store_elem(out, i, 1.0, dtypes.F64)
    with b.orelse(iff):
        b.store_elem(out, i, 2.0, dtypes.F64)
    kernel = b.build()
    mem, _ = _exec(kernel, 32, [1, 8])
    assert (mem[8:8 + 32 * 8].view(np.float64) == 1.0).all()
    mem, _ = _exec(kernel, 32, [0, 8])
    assert (mem[8:8 + 32 * 8].view(np.float64) == 2.0).all()


def test_launch_config_validation():
    b = IRBuilder("k")
    b.param("out", dtypes.F64, pointer=True)
    kernel = b.build()
    mem = np.zeros(1 << 12, dtype=np.uint8)
    ex = KernelExecutor(kernel, 32, mem, max_block_threads=1024)
    with pytest.raises(LaunchError, match="exceeds device limit"):
        ex.launch((1,), (2048,), [0])
    with pytest.raises(LaunchError, match="non-positive"):
        ex.launch((0,), (256,), [0])
    with pytest.raises(LaunchError, match="takes 1 arguments"):
        ex.launch((1,), (32,), [])


def test_stats_metering():
    b = IRBuilder("k")
    n = b.param("n", dtypes.I64)
    x = b.param("x", dtypes.F64, pointer=True)
    i = b.global_id()
    with b.if_(b.lt(i, n)):
        v = b.load_elem(x, i, dtypes.F64)
        b.store_elem(x, i, b.mul(v, 2.0), dtypes.F64)
    _mem, stats = _exec(b.build(), 128, [100, 0])
    assert stats.threads == 128
    assert stats.bytes_loaded == 100 * 8
    assert stats.bytes_stored == 100 * 8
    assert stats.flops == 100  # one multiply per active lane
    assert stats.instructions > 0


def test_chunking_boundaries_consistent():
    """Results do not depend on the interpreter's batch size."""
    b = IRBuilder("k")
    n = b.param("n", dtypes.I64)
    out = b.param("out", dtypes.I64, pointer=True)
    i = b.global_id()
    with b.if_(b.lt(i, n)):
        b.store_elem(out, i, b.mul(i, i), dtypes.I64)
    kernel = b.build()
    results = []
    for chunk in (64, 257, 1 << 18):
        mem, _ = _exec(kernel, 1000, [1000, 0], chunk_lanes=chunk,
                       mem_bytes=1 << 14)
        results.append(mem[:1000 * 8].view(np.int64).copy())
    np.testing.assert_array_equal(results[0], results[1])
    np.testing.assert_array_equal(results[1], results[2])
