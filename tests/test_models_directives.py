"""OpenMP and OpenACC models: directive parsing and offload semantics."""

import numpy as np
import pytest

from repro import kernels as KL
from repro.enums import Language
from repro.errors import ApiError, DirectiveError, UnsupportedFeatureError
from repro.models.openacc import OpenACC, parse_acc_directive
from repro.models.openmp import OpenMP, parse_directive

F = Language.FORTRAN


# -- OpenMP directive parser -------------------------------------------------


def test_parse_combined_construct():
    d = parse_directive("target teams distribute parallel for "
                        "map(to: x) reduction(+: acc) collapse(2)")
    assert d.constructs == ["target", "teams", "distribute", "parallel", "for"]
    assert d.clauses["map"] == "to: x"
    assert d.clauses["collapse"] == "2"
    assert {"omp:target", "omp:teams", "omp:distribute", "omp:parallel_for",
            "omp:map", "omp:reduction", "omp:collapse"} == set(d.tags)


def test_parse_fortran_spelling():
    d = parse_directive("target teams distribute parallel do")
    assert "omp:parallel_for" in d.tags


def test_parse_50_51_constructs():
    assert "omp:loop" in parse_directive("target teams loop").tags
    assert "omp:metadirective" in parse_directive(
        "metadirective when(device: target) default(parallel)").tags
    assert "omp:masked" in parse_directive("target teams masked").tags
    assert "omp:assume" in parse_directive("assume").tags


def test_parse_rejects_unknown():
    with pytest.raises(DirectiveError, match="unknown OpenMP construct"):
        parse_directive("target banana")
    with pytest.raises(DirectiveError, match="unknown OpenMP clause"):
        parse_directive("target banana(7)")
    with pytest.raises(DirectiveError, match="no construct"):
        parse_directive("map(to: x)")


# -- OpenMP offload semantics -----------------------------------------------


def test_target_data_mapping_semantics(nvidia, rng):
    omp = OpenMP(nvidia, "nvhpc")
    n = 512
    x_h = rng.random(n)
    y_h = np.ones(n)
    x_before = x_h.copy()
    with omp.target_data(to=[x_h], tofrom=[y_h]) as region:
        omp.target_loop(n, KL.axpy, [n, 3.0, region.device(x_h),
                                     region.device(y_h)])
    np.testing.assert_array_equal(x_h, x_before)  # map(to:) not written back
    np.testing.assert_allclose(y_h, 3.0 * x_h + 1.0)  # map(tofrom:) is


def test_target_data_unmapped_array_rejected(nvidia):
    omp = OpenMP(nvidia, "nvhpc")
    other = np.ones(4)
    with omp.target_data(to=[np.ones(4)]) as region:
        with pytest.raises(ApiError, match="not mapped"):
            region.device(other)


def test_usm_requires_declaration(nvidia):
    omp = OpenMP(nvidia, "nvhpc")
    with pytest.raises(ApiError, match="requires_unified_shared_memory"):
        omp.shared_alloc(np.float64, 16)


def test_openmp_feature_coverage_by_compiler(nvidia, amd, intel):
    """The §4 coverage ordering: Intel > NVHPC/AOMP/Cray > GCC/Flang."""
    suites = {
        ("nvhpc", nvidia): 6, ("aomp", amd): 6, ("dpcpp", intel): 10,
        ("gcc", nvidia): 5, ("clang", amd): 6, ("cray-ce", amd): 6,
    }
    probe_methods = [
        "probe_target", "probe_reduction", "probe_collapse", "probe_simd",
        "probe_loop_construct", "probe_metadirective",
        "probe_declare_variant", "probe_usm", "probe_assume", "probe_masked",
    ]
    for (toolchain, device), expected in suites.items():
        passed = 0
        for method in probe_methods:
            try:
                getattr(OpenMP(device, toolchain), method)()
                passed += 1
            except UnsupportedFeatureError:
                pass
        assert passed == expected, (toolchain, passed)


def test_openmp_fortran_same_coverage_as_cpp(nvidia):
    """Description 10: 'nearly identical to C/C++'."""
    for method in ("probe_target", "probe_reduction", "probe_loop_construct"):
        getattr(OpenMP(nvidia, "nvhpc", language=F), method)()
    with pytest.raises(UnsupportedFeatureError):
        OpenMP(nvidia, "nvhpc", language=F).probe_metadirective()


def test_declare_variant_picks_device_flavour(amd):
    omp = OpenMP(amd, "aomp")
    marker = {}
    variants = {"amd": KL.scale_inplace}
    chosen = omp.declare_variant(KL.fill, variants)
    assert chosen is KL.scale_inplace
    chosen = omp.declare_variant(KL.fill, {})
    assert chosen is KL.fill
    assert not marker


def test_sentinel_per_language(nvidia):
    assert OpenMP(nvidia, "nvhpc").sentinel == "#pragma omp"
    assert OpenMP(nvidia, "nvhpc", language=F).sentinel == "!$omp"


# -- OpenACC ---------------------------------------------------------------


def test_parse_acc_directive_tags():
    tags = parse_acc_directive(
        "parallel loop copyin(x) reduction(+: s) gang vector_length(128) "
        "async(2)")
    assert {"acc:parallel", "acc:loop", "acc:copyin_copyout",
            "acc:reduction", "acc:gang_worker_vector", "acc:async"} == set(tags)


def test_parse_acc_rejects_unknown():
    with pytest.raises(DirectiveError, match="unknown OpenACC token"):
        parse_acc_directive("parallel whatever")
    with pytest.raises(DirectiveError, match="no construct"):
        parse_acc_directive("copyin(x)")


def test_acc_data_region_clauses(nvidia, rng):
    acc = OpenACC(nvidia, "nvhpc")
    n = 256
    a_h = rng.random(n)
    b_h = np.zeros(n)
    c_h = np.full(n, -1.0)
    with acc.data(copyin=[a_h], copyout=[b_h], create=[c_h]) as region:
        acc.parallel_loop(n, KL.stream_copy,
                          [n, region.device(a_h), region.device(b_h)])
    np.testing.assert_array_equal(b_h, a_h)  # copyout materialized
    assert (c_h == -1.0).all()  # create is device-only scratch


def test_acc_async_queues_are_streams(nvidia):
    acc = OpenACC(nvidia, "nvhpc")
    n = 1 << 14
    x = acc.to_device(np.ones(n))
    acc.parallel_loop(n, KL.scale_inplace, [n, 2.0, x], async_=3)
    q3 = acc._queue(3)
    assert q3 is acc._queue(3)  # stable per id
    acc.wait(3)
    assert (x.copy_to_host() == 2.0).all()


def test_acc_serial_single_thread(nvidia):
    acc = OpenACC(nvidia, "nvhpc")
    out = acc.alloc(np.float64, 16)
    acc.serial_region(KL.fill, [1, 2.5, out])
    got = out.copy_to_host()
    assert got[0] == 2.5 and (got[1:] == 0).all()


def test_acc_gcc_misses_27_and_30_features(amd):
    """Description 22: GCC supports OpenACC 2.6."""
    OpenACC(amd, "gcc").probe_parallel()
    OpenACC(amd, "gcc").probe_data_region()
    with pytest.raises(UnsupportedFeatureError):
        OpenACC(amd, "gcc").probe_async_wait()
    with pytest.raises(UnsupportedFeatureError):
        OpenACC(amd, "gcc").probe_serial()


def test_acc_clacc_covers_30_features(amd):
    for method in ("probe_parallel", "probe_async_wait", "probe_serial",
                   "probe_gang_vector"):
        getattr(OpenACC(amd, "clacc"), method)()


def test_acc_fortran_through_cray(amd, rng):
    acc = OpenACC(amd, "cray-ce", language=F)
    n = 512
    x_h = rng.random(n)
    x = acc.to_device(x_h)
    acc.parallel_loop(n, KL.scale_inplace, [n, 2.0, x])
    np.testing.assert_allclose(x.copy_to_host(), 2.0 * x_h)
    assert acc.sentinel == "!$acc"
