"""Optimization passes: folding, DCE, and semantic preservation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compilers.passes import (
    eliminate_dead_code,
    fold_constants,
    optimize_kernel,
    optimize_module,
)
from repro.isa import IRBuilder, KernelExecutor, ModuleIR, dtypes
from repro.isa.instructions import BinOp, Imm, Mov, While, walk


def test_fold_simple_arithmetic():
    b = IRBuilder("k")
    out = b.param("out", dtypes.I64, pointer=True)
    value = b.add(b.mul(b.operand(6, dtypes.I64), b.operand(7, dtypes.I64)),
                  b.operand(0, dtypes.I64))
    b.store_elem(out, 0, value, dtypes.I64)
    opt, report = optimize_kernel(b.build(), level=1)
    assert report["folds"] >= 2
    movs = [i for i in walk(opt.body)
            if isinstance(i, Mov) and isinstance(i.src, Imm)]
    assert any(m.src.value == 42 for m in movs)


def test_fold_through_mov_chain():
    """Constants propagate through intermediate movs."""
    b = IRBuilder("k")
    out = b.param("out", dtypes.F64, pointer=True)
    a = b.named("a", dtypes.F64)
    b.mov(a, 2.0)
    c = b.named("c", dtypes.F64)
    b.mov(c, a)
    b.store_elem(out, 0, b.mul(c, 3.0), dtypes.F64)
    opt, report = optimize_kernel(b.build(), level=1)
    assert report["folds"] >= 1  # 2.0 * 3.0 folded to 6.0


def test_fold_comparison_and_select():
    b = IRBuilder("k")
    out = b.param("out", dtypes.F64, pointer=True)
    pred = b.lt(b.operand(1, dtypes.I64), b.operand(2, dtypes.I64))
    value = b.select(pred, 10.0, 20.0)
    b.store_elem(out, 0, value, dtypes.F64)
    opt, report = optimize_kernel(b.build(), level=1)
    assert report["folds"] >= 2
    stores = [i for i in walk(opt.body) if type(i).__name__ == "Store"]
    assert isinstance(stores[0].src, Imm) and stores[0].src.value == 10.0


def test_no_fold_across_loop_redefinition():
    """The loop-carried variable must NOT be folded to its init value."""
    b = IRBuilder("k")
    out = b.param("out", dtypes.I64, pointer=True)
    acc = b.named("acc", dtypes.I64)
    b.mov(acc, 0)
    with b.for_range(0, 5):
        b.mov(acc, b.add(acc, b.operand(1, dtypes.I64)))
    b.store_elem(out, 0, acc, dtypes.I64)
    opt, _ = optimize_kernel(b.build(), level=2)
    mem = np.zeros(64, dtype=np.uint8)
    KernelExecutor(opt, 32, mem).launch((1,), (1,), [0])
    assert mem[:8].view(np.int64)[0] == 5


def test_branch_constants_do_not_leak():
    """A value constant in only one branch stays unfolded after the join."""
    b = IRBuilder("k")
    flag = b.param("flag", dtypes.I64)
    out = b.param("out", dtypes.I64, pointer=True)
    v = b.named("v", dtypes.I64)
    b.mov(v, 7)
    with b.if_(b.gt(flag, 0)):
        b.mov(v, 9)
    b.store_elem(out, 0, v, dtypes.I64)
    opt, _ = optimize_kernel(b.build(), level=2)
    for flag_val, expected in ((1, 9), (0, 7)):
        mem = np.zeros(64, dtype=np.uint8)
        KernelExecutor(opt, 32, mem).launch((1,), (1,), [flag_val, 0])
        assert mem[:8].view(np.int64)[0] == expected


def test_dce_removes_unused_pure_ops():
    b = IRBuilder("k")
    x = b.param("x", dtypes.F64)
    out = b.param("out", dtypes.F64, pointer=True)
    b.mul(x, 3.0)  # dead
    b.add(x, 1.0)  # dead
    b.store_elem(out, 0, x, dtypes.F64)
    kernel = b.build()
    removed = eliminate_dead_code(kernel)
    assert removed >= 2
    # No float arithmetic survives (the remaining mul is address math).
    assert not any(isinstance(i, BinOp) and i.dst.dtype.is_float
                   for i in walk(kernel.body))


def test_dce_keeps_memory_and_atomics():
    b = IRBuilder("k")
    x = b.param("x", dtypes.F64, pointer=True)
    b.store_elem(x, 0, 1.0, dtypes.F64)
    b.atomic("add", b.elem_addr(x, 1, dtypes.F64), 1.0, dtype=dtypes.F64)
    kernel = b.build()
    count_before = kernel.instruction_count()
    eliminate_dead_code(kernel)
    stores = [i for i in walk(kernel.body) if type(i).__name__ == "Store"]
    atomics = [i for i in walk(kernel.body) if type(i).__name__ == "AtomicOp"]
    assert stores and atomics
    assert kernel.instruction_count() <= count_before


def test_dce_iterates_to_fixed_point():
    """Removing one dead op orphans its operand's producer."""
    b = IRBuilder("k")
    x = b.param("x", dtypes.F64)
    b.param("out", dtypes.F64, pointer=True)
    t1 = b.mul(x, 2.0)
    t2 = b.add(t1, 1.0)
    b.mul(t2, 3.0)  # whole chain dead
    kernel = b.build()
    removed = eliminate_dead_code(kernel)
    assert removed == 3


def test_fold_constants_returns_count():
    b = IRBuilder("k")
    out = b.param("out", dtypes.I64, pointer=True)
    b.store_elem(out, 0,
                 b.add(b.operand(1, dtypes.I64), b.operand(2, dtypes.I64)),
                 dtypes.I64)
    kernel = b.build()
    # the 1+2 add folds; the constant address math may fold too
    assert fold_constants(kernel) >= 1


def test_optimize_module_aggregates():
    mod = ModuleIR("m")
    for name in ("a", "b"):
        b = IRBuilder(name)
        out = b.param("out", dtypes.I64, pointer=True)
        b.store_elem(out, 0, b.add(b.operand(2, dtypes.I64),
                                   b.operand(3, dtypes.I64)), dtypes.I64)
        mod.add(b.build())
    opt, report = optimize_module(mod, level=2)
    assert report["folds"] >= 2
    assert set(opt.kernels) == {"a", "b"}


def test_level_zero_is_identity():
    b = IRBuilder("k")
    out = b.param("out", dtypes.I64, pointer=True)
    b.store_elem(out, 0, b.add(b.operand(2, dtypes.I64),
                               b.operand(3, dtypes.I64)), dtypes.I64)
    kernel = b.build()
    opt, report = optimize_kernel(kernel, level=0)
    assert report == {"folds": 0, "dce": 0}
    assert opt.instruction_count() == kernel.instruction_count()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(-50, 50), min_size=1, max_size=30),
       st.integers(-5, 5), st.integers(1, 4))
def test_optimization_preserves_semantics(values, offset, scale):
    """Property: optimized kernels compute the same results.

    Kernel mixes foldable constants, divergence, and a loop so both
    passes have something to chew on.
    """
    n = len(values)
    b = IRBuilder("prop")
    n_reg = b.param("n", dtypes.I64)
    x = b.param("x", dtypes.I64, pointer=True)
    out = b.param("out", dtypes.I64, pointer=True)
    i = b.global_id()
    with b.if_(b.lt(i, n_reg)):
        v = b.load_elem(x, i, dtypes.I64)
        const = b.add(b.operand(offset, dtypes.I64),
                      b.operand(0, dtypes.I64))  # foldable
        b.mul(v, b.operand(99, dtypes.I64))  # dead
        acc = b.named("acc", dtypes.I64)
        b.mov(acc, v)
        with b.for_range(0, scale):
            b.mov(acc, b.add(acc, const))
        with b.if_(b.gt(acc, 0)) as iff:
            b.store_elem(out, i, acc, dtypes.I64)
        with b.orelse(iff):
            b.store_elem(out, i, b.unary("neg", acc), dtypes.I64)
    kernel = b.build()
    opt, _ = optimize_kernel(kernel, level=2)

    def run(k):
        mem = np.zeros(1 << 12, dtype=np.uint8)
        mem[:n * 8] = np.array(values, dtype=np.int64).view(np.uint8)
        KernelExecutor(k, 32, mem).launch((1,), (64,), [n, 0, 512])
        return mem[512:512 + n * 8].view(np.int64).copy()

    np.testing.assert_array_equal(run(kernel), run(opt))
    assert opt.instruction_count() <= kernel.instruction_count()
