"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.enums import Vendor
from repro.gpu import Device, System
from repro.gpu.specs import SPEC_CATALOG


@pytest.fixture(scope="session")
def system() -> System:
    """One flagship device per vendor, shared across the session."""
    return System.default()


@pytest.fixture(scope="session")
def nvidia(system) -> Device:
    return system.device(Vendor.NVIDIA)


@pytest.fixture(scope="session")
def amd(system) -> Device:
    return system.device(Vendor.AMD)


@pytest.fixture(scope="session")
def intel(system) -> Device:
    return system.device(Vendor.INTEL)


@pytest.fixture
def small_device() -> Device:
    """A fresh small-memory device for allocation/fault tests."""
    return Device(SPEC_CATALOG["A100-SXM4-80GB"], backing_bytes=1 << 20)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
