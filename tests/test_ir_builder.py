"""IR builder: emission, operand coercion, structured control flow."""

import pytest

from repro.errors import IRError
from repro.isa import IRBuilder
from repro.isa import dtypes
from repro.isa.instructions import (
    BinOp, Cmp, Cvt, If, Imm, Mov, SharedAlloc, While, walk,
)


def test_param_registers():
    b = IRBuilder("k")
    n = b.param("n", dtypes.I64)
    p = b.param("x", dtypes.F64, pointer=True)
    assert n.dtype is dtypes.I64
    # Pointer params carry addresses, so their register is u64.
    assert p.dtype is dtypes.U64
    kernel = b.build()
    assert [prm.name for prm in kernel.params] == ["n", "x"]
    assert kernel.params[1].is_pointer


def test_duplicate_param_rejected():
    b = IRBuilder("k")
    b.param("n", dtypes.I64)
    with pytest.raises(IRError, match="duplicate parameter"):
        b.param("n", dtypes.F64)


def test_fresh_registers_unique():
    b = IRBuilder("k")
    regs = {b.fresh(dtypes.F64).name for _ in range(100)}
    assert len(regs) == 100


def test_binop_promotes_mixed_operands():
    b = IRBuilder("k")
    i = b.param("i", dtypes.I32)
    f = b.param("f", dtypes.F64)
    out = b.add(i, f)
    assert out.dtype is dtypes.F64
    # A Cvt must have been inserted for the i32 operand.
    kernel = b.build()
    assert any(isinstance(instr, Cvt) for instr in walk(kernel.body))


def test_python_number_takes_other_operands_dtype():
    b = IRBuilder("k")
    x = b.param("x", dtypes.F32)
    out = b.mul(x, 2)
    assert out.dtype is dtypes.F32
    binop = next(i for i in b.build().body if isinstance(i, BinOp))
    assert isinstance(binop.b, Imm)
    assert binop.b.dtype is dtypes.F32


def test_imm_normalizes_through_numpy():
    assert Imm(3, dtypes.F64).value == 3.0
    assert isinstance(Imm(3, dtypes.F64).value, float)
    assert Imm(2**32 + 5, dtypes.U32).value == 5  # wraps like the hardware


def test_unknown_ops_rejected():
    b = IRBuilder("k")
    x = b.param("x", dtypes.F64)
    with pytest.raises(IRError):
        b.binop("bogus", x, x)
    with pytest.raises(IRError):
        b.unary("bogus", x)
    with pytest.raises(IRError):
        b.cmp("bogus", x, x)
    with pytest.raises(IRError):
        b.shuffle("bogus", x, 0)


def test_cmp_produces_predicate():
    b = IRBuilder("k")
    x = b.param("x", dtypes.F64)
    p = b.lt(x, 1.0)
    assert p.dtype is dtypes.PRED


def test_transcendental_int_operand_widens_to_f64():
    b = IRBuilder("k")
    i = b.param("i", dtypes.I64)
    out = b.unary("sqrt", i)
    assert out.dtype is dtypes.F64


def test_elem_addr_scales_by_itemsize():
    b = IRBuilder("k")
    base = b.param("x", dtypes.F64, pointer=True)
    addr = b.elem_addr(base, 3, dtypes.F64)
    assert addr.dtype is dtypes.U64
    muls = [i for i in b.build().body if isinstance(i, BinOp) and i.op == "mul"]
    assert any(isinstance(m.b, Imm) and m.b.value == 8 for m in muls)


def test_if_orelse_structure():
    b = IRBuilder("k")
    x = b.param("x", dtypes.F64)
    with b.if_(b.gt(x, 0.0)) as iff:
        b.mov(b.named("v", dtypes.F64), 1.0)
    with b.orelse(iff):
        b.mov(b.named("v", dtypes.F64), 2.0)
    kernel = b.build()
    ifs = [i for i in kernel.body if isinstance(i, If)]
    assert len(ifs) == 1
    assert len(ifs[0].then_body) == 1
    assert len(ifs[0].else_body) == 1


def test_while_requires_condition():
    b = IRBuilder("k")
    b.param("x", dtypes.F64)
    with pytest.raises(IRError, match="set_cond"):
        with b.while_():
            pass


def test_while_condition_must_be_pred():
    b = IRBuilder("k")
    x = b.param("x", dtypes.F64)
    with pytest.raises(IRError, match="predicate"):
        with b.while_() as loop:
            with loop.cond():
                loop.set_cond(x)  # not a predicate


def test_for_range_desugars_to_while():
    b = IRBuilder("k")
    acc = b.named("acc", dtypes.I64)
    b.mov(acc, 0)
    with b.for_range(0, 10) as i:
        b.mov(acc, b.add(acc, i))
    kernel = b.build()
    assert any(isinstance(instr, While) for instr in kernel.body)


def test_shared_alloc_top_level_only():
    b = IRBuilder("k")
    x = b.param("x", dtypes.F64)
    with b.if_(b.gt(x, 0.0)):
        with pytest.raises(IRError, match="top level"):
            b.shared_alloc(dtypes.F64, 16)


def test_shared_alloc_feature_tag():
    b = IRBuilder("k")
    b.shared_alloc(dtypes.F64, 16)
    assert "shared_memory" in b.build().features


def test_feature_tags_collected():
    b = IRBuilder("k")
    x = b.param("x", dtypes.F64, pointer=True)
    b.barrier()
    b.atomic("add", b.elem_addr(x, 0, dtypes.F64), 1.0, dtype=dtypes.F64)
    b.shuffle("down", b.load_elem(x, 0, dtypes.F64), 1)
    features = b.build().features
    assert {"barrier", "atomics", "shuffle"} <= features


def test_cas_requires_compare_value():
    b = IRBuilder("k")
    x = b.param("x", dtypes.F64, pointer=True)
    addr = b.elem_addr(x, 0, dtypes.F64)
    old = b.atomic("cas", addr, 1.0, dtype=dtypes.F64, compare=0.0)
    assert old is not None
    assert old.dtype is dtypes.F64


def test_mov_auto_converts():
    b = IRBuilder("k")
    dst = b.named("v", dtypes.F32)
    b.mov(dst, Imm(1, dtypes.I64))
    movs = [i for i in b.build().body if isinstance(i, Mov)]
    assert movs[-1].src.dtype is dtypes.F32


def test_build_runs_verifier():
    b = IRBuilder("k")
    undefined = b.named("ghost", dtypes.F64)
    b.emit(Mov(b.fresh(dtypes.F64), undefined))
    from repro.errors import VerificationError

    with pytest.raises(VerificationError):
        b.build()


def test_instruction_count_and_repr():
    b = IRBuilder("k")
    x = b.param("x", dtypes.F64)
    with b.if_(b.gt(x, 0.0)):
        b.mov(b.named("y", dtypes.F64), x)
    kernel = b.build()
    assert kernel.instruction_count() >= 3
    assert "k(" in repr(kernel)
