"""IR verifier: each violation class is caught."""

import pytest

from repro.errors import VerificationError
from repro.isa import dtypes
from repro.isa.instructions import (
    AtomicOp, Barrier, BinOp, Cmp, Cvt, If, Imm, Load, MemSpace, Mov,
    Param, Register, Select, SharedAlloc, Shuffle, SpecialRead, Store,
    UnaryOp, While,
)
from repro.isa.module import KernelIR, ModuleIR
from repro.isa.verifier import verify_kernel, verify_module


def _kernel(body, params=()):
    return KernelIR(name="k", params=list(params), body=body)


def _r(name, dtype):
    return Register(name, dtype)


F64, I64, U64, PRED, U32 = (dtypes.F64, dtypes.I64, dtypes.U64, dtypes.PRED,
                            dtypes.U32)


def test_use_before_definition():
    body = [Mov(_r("a", F64), _r("ghost", F64))]
    with pytest.raises(VerificationError, match="used before definition"):
        verify_kernel(_kernel(body))


def test_register_retyping_rejected():
    body = [
        Mov(_r("a", F64), Imm(1.0, F64)),
        Mov(_r("a", I64), Imm(1, I64)),
    ]
    with pytest.raises(VerificationError, match="retyped"):
        verify_kernel(_kernel(body))


def test_binop_operand_mismatch():
    body = [
        Mov(_r("a", F64), Imm(1.0, F64)),
        BinOp("add", _r("c", F64), _r("a", F64), Imm(1, I64)),
    ]
    with pytest.raises(VerificationError, match="disagree"):
        verify_kernel(_kernel(body))


def test_shift_requires_integers():
    body = [BinOp("shl", _r("c", F64), Imm(1.0, F64), Imm(1.0, F64))]
    with pytest.raises(VerificationError, match="integer"):
        verify_kernel(_kernel(body))


def test_predicate_arithmetic_rejected():
    body = [BinOp("add", _r("c", PRED), Imm(True, PRED), Imm(False, PRED))]
    with pytest.raises(VerificationError, match="not defined on predicates"):
        verify_kernel(_kernel(body))


def test_predicate_logic_allowed():
    body = [BinOp("and", _r("c", PRED), Imm(True, PRED), Imm(False, PRED))]
    verify_kernel(_kernel(body))


def test_cmp_dst_must_be_pred():
    body = [Cmp("lt", _r("c", F64), Imm(1.0, F64), Imm(2.0, F64))]
    with pytest.raises(VerificationError, match="pred"):
        verify_kernel(_kernel(body))


def test_float_only_unary():
    body = [UnaryOp("sqrt", _r("c", I64), Imm(4, I64))]
    with pytest.raises(VerificationError, match="float"):
        verify_kernel(_kernel(body))


def test_load_address_must_be_u64():
    body = [Load(_r("v", F64), MemSpace.GLOBAL, Imm(0, I64))]
    with pytest.raises(VerificationError, match="u64"):
        verify_kernel(_kernel(body))


def test_bad_memory_space():
    body = [Load(_r("v", F64), "texture", Imm(0, U64))]
    with pytest.raises(VerificationError, match="bad space"):
        verify_kernel(_kernel(body))


def test_special_read_rules():
    body = [SpecialRead(_r("t", U32), "tid.w")]
    with pytest.raises(VerificationError, match="bad special register"):
        verify_kernel(_kernel(body))
    body = [SpecialRead(_r("t", I64), "tid.x")]
    with pytest.raises(VerificationError, match="u32"):
        verify_kernel(_kernel(body))


def test_cas_needs_compare():
    body = [AtomicOp("cas", _r("old", F64), MemSpace.GLOBAL,
                     Imm(0, U64), Imm(1.0, F64), compare=None)]
    with pytest.raises(VerificationError, match="cas requires"):
        verify_kernel(_kernel(body))


def test_shuffle_lane_must_be_u32():
    body = [Shuffle("down", _r("v", F64), Imm(1.0, F64), Imm(1, I64))]
    with pytest.raises(VerificationError, match="u32"):
        verify_kernel(_kernel(body))


def test_shared_alloc_only_top_level():
    inner = SharedAlloc(_r("s", U64), F64, 8)
    body = [If(Imm(True, PRED), then_body=[inner])]
    with pytest.raises(VerificationError, match="top level"):
        verify_kernel(_kernel(body))


def test_shared_alloc_positive_count():
    body = [SharedAlloc(_r("s", U64), F64, 0)]
    with pytest.raises(VerificationError, match="positive"):
        verify_kernel(_kernel(body))


def test_if_condition_must_be_pred():
    body = [If(Imm(1, I64))]
    with pytest.raises(VerificationError, match="pred"):
        verify_kernel(_kernel(body))


def test_branch_definitions_need_both_paths():
    """A register defined in only one branch is unusable afterwards."""
    define = Mov(_r("v", F64), Imm(1.0, F64))
    body = [
        If(Imm(True, PRED), then_body=[define], else_body=[]),
        Mov(_r("w", F64), _r("v", F64)),
    ]
    with pytest.raises(VerificationError, match="used before definition"):
        verify_kernel(_kernel(body))


def test_branch_definitions_on_both_paths_survive():
    body = [
        If(Imm(True, PRED),
           then_body=[Mov(_r("v", F64), Imm(1.0, F64))],
           else_body=[Mov(_r("v", F64), Imm(2.0, F64))]),
        Mov(_r("w", F64), _r("v", F64)),
    ]
    verify_kernel(_kernel(body))


def test_loop_body_definitions_do_not_escape():
    """Zero-trip loops may never define their body registers."""
    cond = _r("p", PRED)
    body = [
        While(cond_body=[Cmp("lt", cond, Imm(0, I64), Imm(0, I64))],
              cond=cond,
              body=[Mov(_r("v", F64), Imm(1.0, F64))]),
        Mov(_r("w", F64), _r("v", F64)),
    ]
    with pytest.raises(VerificationError, match="used before definition"):
        verify_kernel(_kernel(body))


def test_select_rules():
    body = [Select(_r("v", F64), Imm(1, I64), Imm(1.0, F64), Imm(2.0, F64))]
    with pytest.raises(VerificationError, match="pred"):
        verify_kernel(_kernel(body))


def test_params_are_predefined():
    params = [Param("n", I64), Param("x", F64, is_pointer=True)]
    body = [
        Mov(_r("m", I64), _r("n", I64)),
        Mov(_r("addr", U64), _r("x", U64)),  # pointer param reads as u64
    ]
    verify_kernel(_kernel(body, params))


def test_verify_module_covers_all_kernels():
    good = _kernel([Mov(_r("a", F64), Imm(1.0, F64))])
    bad = KernelIR("bad", [], [Mov(_r("a", F64), _r("ghost", F64))])
    module = ModuleIR("m")
    module.add(good)
    module.add(bad)
    with pytest.raises(VerificationError):
        verify_module(module)


def test_barrier_and_exit_are_always_wellformed():
    from repro.isa.instructions import Exit

    verify_kernel(_kernel([Barrier(), Exit()]))


def test_store_type_checks():
    body = [Store(MemSpace.GLOBAL, Imm(0, U64), Imm(1.0, F64))]
    verify_kernel(_kernel(body))
    body = [Store(MemSpace.GLOBAL, Imm(0.0, F64), Imm(1.0, F64))]
    with pytest.raises(VerificationError, match="u64"):
        verify_kernel(_kernel(body))


def test_cvt_numeric_conversions_allowed():
    body = [
        Mov(_r("a", I64), Imm(3, I64)),
        Cvt(_r("f", F64), _r("a", I64)),
        Cvt(_r("u", U32), _r("f", F64)),
    ]
    verify_kernel(_kernel(body))


def test_cvt_from_pred_rejected():
    body = [
        Cmp("lt", _r("p", PRED), Imm(0, I64), Imm(1, I64)),
        Cvt(_r("v", I64), _r("p", PRED)),
    ]
    with pytest.raises(VerificationError, match="not convertible"):
        verify_kernel(_kernel(body))


def test_cvt_to_pred_rejected():
    body = [
        Mov(_r("a", I64), Imm(1, I64)),
        Cvt(_r("p", PRED), _r("a", I64)),
    ]
    with pytest.raises(VerificationError, match="not convertible"):
        verify_kernel(_kernel(body))


def test_cvt_checks_source_dtype_against_definition():
    body = [
        Mov(_r("a", I64), Imm(3, I64)),
        Cvt(_r("f", F64), _r("a", U32)),  # 'a' is i64, not u32
    ]
    with pytest.raises(VerificationError, match="used as u32"):
        verify_kernel(_kernel(body))


def test_branch_local_types_do_not_leak_to_sibling_arm():
    """Exclusive arms may bind the same scratch name with different dtypes.

    Regression: `_Scope.clone()` used to share one global type map, so
    the else-arm saw the then-arm's binding and raised a spurious
    "retyped" error across paths that can never both execute.
    """
    body = [
        If(Imm(True, PRED),
           then_body=[Mov(_r("tmp", F64), Imm(1.0, F64))],
           else_body=[Mov(_r("tmp", I64), Imm(2, I64))]),
    ]
    verify_kernel(_kernel(body))


def test_branch_local_types_do_not_leak_to_outer_scope():
    body = [
        If(Imm(True, PRED),
           then_body=[Mov(_r("tmp", F64), Imm(1.0, F64))],
           else_body=[]),
        # Unrelated later binding of the same name with another dtype:
        # legal, because the branch definition did not survive the join.
        Mov(_r("tmp", I64), Imm(2, I64)),
        Mov(_r("w", I64), _r("tmp", I64)),
    ]
    verify_kernel(_kernel(body))


def test_branch_join_with_conflicting_types_stays_undefined():
    body = [
        If(Imm(True, PRED),
           then_body=[Mov(_r("v", F64), Imm(1.0, F64))],
           else_body=[Mov(_r("v", I64), Imm(2, I64))]),
        Mov(_r("w", F64), _r("v", F64)),
    ]
    with pytest.raises(VerificationError, match="used before definition"):
        verify_kernel(_kernel(body))


def test_retype_within_one_path_still_rejected():
    body = [
        If(Imm(True, PRED),
           then_body=[Mov(_r("tmp", F64), Imm(1.0, F64)),
                      Mov(_r("tmp", I64), Imm(2, I64))]),
    ]
    with pytest.raises(VerificationError, match="retyped"):
        verify_kernel(_kernel(body))


def test_outer_binding_cannot_be_retyped_inside_branch():
    body = [
        Mov(_r("v", F64), Imm(1.0, F64)),
        If(Imm(True, PRED),
           then_body=[Mov(_r("v", I64), Imm(2, I64))]),
    ]
    with pytest.raises(VerificationError, match="retyped"):
        verify_kernel(_kernel(body))


def test_loop_body_types_do_not_leak():
    cond = _r("p", PRED)
    body = [
        While(cond_body=[Cmp("lt", cond, Imm(0, I64), Imm(1, I64))],
              cond=cond,
              body=[Mov(_r("tmp", F64), Imm(1.0, F64))]),
        Mov(_r("tmp", I64), Imm(2, I64)),
    ]
    verify_kernel(_kernel(body))
