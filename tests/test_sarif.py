"""Tests for the shared SARIF 2.1.0 serializer and its CLI surfaces.

One serializer (:func:`repro.analysis.diagnostics.to_sarif`) backs all
three ``gpu-compat lint --format sarif`` paths; these tests pin the
document shape GitHub code-scanning expects and check each CLI path
emits a well-formed run under its own driver name.
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.analysis.diagnostics import (
    DIAGNOSTIC_CODES,
    SARIF_VERSION,
    LintReport,
    Severity,
    make,
    to_sarif,
    to_sarif_json,
)


@pytest.fixture()
def report() -> LintReport:
    r = LintReport()
    r.add(make("RACE01", "k_race", "body[2] Store(shared)",
               "write-write race on s[tid.x]"))
    r.add(make("OOB02", "k_oob", "body[0] Load(global)",
               "index may exceed buffer", hint="guard with n"))
    r.add(make("PS03", "stream_triad", "",
               "prediction within tolerance"))
    r.add(make("RACE01", "k_race2", "body[4] Load(shared)",
               "read-write race"))
    return r


def test_sarif_document_shape(report):
    doc = to_sarif(report)
    assert doc["version"] == SARIF_VERSION
    assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = doc["runs"]
    assert run["tool"]["driver"]["name"] == "kernelsan"
    assert len(run["results"]) == len(report.diagnostics)


def test_rules_are_only_the_fired_codes_and_indices_align(report):
    run = to_sarif(report)["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == ["OOB02", "PS03", "RACE01"]
    for rule in rules:
        assert rule["shortDescription"]["text"] == \
            DIAGNOSTIC_CODES[rule["id"]][1]
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]


def test_levels_map_severities_to_sarif_labels(report):
    run = to_sarif(report)["runs"][0]
    levels = {r["ruleId"]: r["level"] for r in run["results"]}
    assert levels == {"RACE01": "error", "OOB02": "warning", "PS03": "note"}
    # A severity override on one diagnostic moves its level, not the rule's.
    r = LintReport()
    r.add(make("RE03", "cell", "", "suppressed", severity=Severity.WARNING))
    run2 = to_sarif(r)["runs"][0]
    assert run2["results"][0]["level"] == "warning"
    assert run2["tool"]["driver"]["rules"][0][
        "defaultConfiguration"]["level"] == "note"


def test_logical_locations_and_hint_folding(report):
    run = to_sarif(report)["runs"][0]
    by_rule = {r["ruleId"]: r for r in run["results"]}
    loc = by_rule["OOB02"]["locations"][0]["logicalLocations"][0]
    assert loc["name"] == "k_oob"
    assert loc["fullyQualifiedName"] == "k_oob::body[0] Load(global)"
    assert loc["kind"] == "function"
    assert by_rule["OOB02"]["message"]["text"].endswith("(hint: guard with n)")
    # Pathless diagnostics fall back to the bare kernel/cell name.
    ps03 = by_rule["PS03"]["locations"][0]["logicalLocations"][0]
    assert ps03["fullyQualifiedName"] == "stream_triad"


def test_empty_report_serializes_to_an_empty_run():
    run = to_sarif(LintReport())["runs"][0]
    assert run["results"] == []
    assert run["tool"]["driver"]["rules"] == []


def test_to_sarif_json_round_trips(report):
    doc = json.loads(to_sarif_json(report, tool_name="custom"))
    assert doc["runs"][0]["tool"]["driver"]["name"] == "custom"


# -- CLI surfaces ------------------------------------------------------------


def test_cli_kernel_lint_sarif(capsys):
    rc = cli.main(["lint", "--format", "sarif"])
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == SARIF_VERSION
    assert doc["runs"][0]["tool"]["driver"]["name"] == "kernelsan"
    # The library is lint-clean: exit 0, and any results are notes.
    assert rc == 0
    assert all(r["level"] == "note" for r in doc["runs"][0]["results"])


def test_cli_routes_lint_sarif(capsys):
    rc = cli.main(["lint", "--routes", "--format", "sarif"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["runs"][0]["tool"]["driver"]["name"] == "routes-evidence"
