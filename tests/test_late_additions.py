"""Late additions: Flang CUDA Fortran, PyOpenCL, MI300A."""

import numpy as np
import pytest

from repro import kernels as KL
from repro.core.matrix import evaluate_route
from repro.core.routes import all_routes, routes_for
from repro.enums import Language, Maturity, Model, SupportCategory, Vendor


def test_flang_cuda_fortran_route(system):
    """Description 2: 'CUDA Fortran support was also merged into Flang'."""
    routes = routes_for(Vendor.NVIDIA, Model.CUDA, Language.FORTRAN)
    ids = {r.route_id for r in routes}
    assert ids == {"nv-cuda-f-nvhpc", "nv-cuda-f-flang"}
    flang = next(r for r in routes if r.route_id == "nv-cuda-f-flang")
    assert flang.maturity is Maturity.EXPERIMENTAL
    result = evaluate_route(flang, system)
    # Young upstream support: kernels work, !$cuf/streams/events do not.
    assert 0 < result.coverage < 1.0
    assert result.category is SupportCategory.LIMITED
    # The cell's primary rating is still NVHPC's full support.
    nvhpc = next(r for r in routes if r.route_id == "nv-cuda-f-nvhpc")
    assert evaluate_route(nvhpc, system).category is SupportCategory.FULL


def test_flang_cuda_runs_basic_kernels(nvidia):
    from repro.models.cuda import Cuda

    rt = Cuda(nvidia, "flang-cuda", language=Language.FORTRAN)
    x = rt.to_device(np.ones(256))
    rt.launch_1d(KL.scale_inplace, 256, [256, 2.0, x])
    assert (x.copy_to_host() == 2.0).all()
    from repro.errors import UnsupportedFeatureError

    with pytest.raises(UnsupportedFeatureError):
        Cuda(nvidia, "flang-cuda", language=Language.FORTRAN).probe_cuf_kernels()


def test_pyopencl_package(amd, rng):
    """Description 30: 'Bindings to OpenCL also exist (PyOpenCL)'."""
    from repro.models.pymodels import PACKAGES_BY_VENDOR, make_package

    assert "pyopencl" in PACKAGES_BY_VENDOR[Vendor.AMD]
    pkg = make_package("pyopencl", amd)
    assert pkg.backend == "opencl"
    x_h = rng.random(512)
    x = pkg.asarray(x_h)
    y = 2.0 * x + x
    np.testing.assert_allclose(y.get(), 3.0 * x_h)
    assert np.isclose(y.sum(), 3.0 * x_h.sum())


def test_pyopencl_route_stays_limited(system):
    route = next(r for r in all_routes() if r.route_id == "amd-py-pyopencl")
    result = evaluate_route(route, system)
    assert result.category is SupportCategory.LIMITED  # 4/6 bindings
    assert result.coverage == pytest.approx(4 / 6)


def test_mi300a_in_catalog():
    from repro.gpu.specs import SPEC_CATALOG

    spec = SPEC_CATALOG["MI300A"]
    assert spec.vendor is Vendor.AMD
    assert spec.bandwidth_gbs > SPEC_CATALOG["MI250X-GCD"].bandwidth_gbs
    assert spec.fp64_gflops > SPEC_CATALOG["MI250X-GCD"].fp64_gflops


def test_matrix_agreement_still_perfect_after_additions(system):
    """The new routes must not disturb any Figure 1 rating."""
    from repro.core.matrix import build_matrix
    from repro.core.report import compare

    report = compare(build_matrix(system))
    assert report.agreement == 1.0
    assert report.n_full_matches == 51
