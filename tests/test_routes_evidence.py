"""Tests for the static route-evidence analyzer (RE01–RE03)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis import routes_evidence as re_mod
from repro.analysis.routes_evidence import (
    check_tables,
    cross_check,
    derive_matrix,
    derive_route,
)
from repro.core.matrix import evaluate_route
from repro.core.routes import all_routes
from repro.data.paper_matrix import KNOWN_DIVERGENCES, PAPER_MATRIX
from repro.enums import SupportCategory, all_cells
from repro.gpu.runtime import System


@pytest.fixture(scope="module")
def derived():
    return derive_matrix()


# ---------------------------------------------------------------------------
# Table hygiene and full-matrix derivation
# ---------------------------------------------------------------------------


def test_requirement_tables_match_probe_suites():
    check_tables()  # raises on drift


def test_stale_table_entry_raises(monkeypatch):
    table = dict(re_mod.PROBE_REQUIREMENTS["cuda_cpp"])
    del table["probe_graphs"]
    monkeypatch.setitem(re_mod.PROBE_REQUIREMENTS, "cuda_cpp", table)
    with pytest.raises(RuntimeError, match="cuda_cpp"):
        check_tables()


def test_derives_all_51_cells(derived):
    assert set(derived) == set(all_cells())
    assert len(derived) == 51


def test_every_route_contributes_evidence(derived):
    n_evidence = sum(len(c.evidence) for c in derived.values())
    assert n_evidence == len(all_routes())


def test_derived_primaries_match_the_paper(derived):
    mismatches = {
        key: (cell.primary.label, PAPER_MATRIX[key].primary.label)
        for key, cell in derived.items()
        if cell.primary is not PAPER_MATRIX[key].primary
    }
    assert mismatches == {}


def test_cross_check_is_clean_on_shipped_data():
    report = cross_check()
    assert report.diagnostics == [], report.render()


def test_shipped_divergence_ledger_is_empty():
    # every derived primary matches, so nothing may be documented away
    assert KNOWN_DIVERGENCES == {}


# ---------------------------------------------------------------------------
# Static derivation agrees with the dynamic probes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("route_id", [
    "nv-cuda-cpp-nvcc",        # direct native
    "amd-cuda-cpp-hipify",     # translated
    "intel-kokkos-cpp-sycl",   # layered
    "amd-py-cupyrocm",         # python package
    "nv-acc-cpp-gcc",          # partial-coverage direct
])
def test_static_matches_dynamic(route_id):
    system = System.default()
    route = next(r for r in all_routes() if r.route_id == route_id)
    static = derive_route(route, system)
    dynamic = evaluate_route(route, system)
    assert static.coverage == pytest.approx(dynamic.suite.coverage)
    assert static.category is dynamic.category


def test_failure_reasons_are_explanatory(derived):
    # NVIDIA CUDA C++: nvcc compiles everything => no failure reasons
    ev = derived[next(k for k in derived
                      if k[0].value == "NVIDIA" and k[1].value == "CUDA"
                      and k[2].value == "C++")].evidence
    nvcc = next(e for e in ev if e.route.route_id == "nv-cuda-cpp-nvcc")
    assert nvcc.failures() == {}
    assert nvcc.coverage == 1.0
    # hipify on AMD rejects cooperative groups with a named reason
    amd_key = next(k for k in derived
                   if k[0].value == "AMD" and k[1].value == "CUDA"
                   and k[2].value == "C++")
    hipify = next(e for e in derived[amd_key].evidence
                  if "hipify" in e.route.route_id)
    reasons = hipify.failures()
    assert "probe_cooperative" in reasons
    assert "does not translate" in reasons["probe_cooperative"]


# ---------------------------------------------------------------------------
# RE01/RE02/RE03 — seeded divergences
# ---------------------------------------------------------------------------


def _seed_paper_primary(monkeypatch, key, category):
    cell = dataclasses.replace(PAPER_MATRIX[key], primary=category)
    monkeypatch.setitem(PAPER_MATRIX, key, cell)


def test_contradiction_fires_re01(monkeypatch):
    key = next(k for k in PAPER_MATRIX
               if PAPER_MATRIX[k].primary is SupportCategory.FULL)
    _seed_paper_primary(monkeypatch, key, SupportCategory.NONE)
    report = cross_check()
    re01 = [d for d in report.diagnostics if d.code == "RE01"]
    assert len(re01) == 1
    assert re01[0].is_error
    assert "contradicts" in re01[0].message
    assert "KNOWN_DIVERGENCES" in re01[0].hint


def test_documented_divergence_downgrades_to_re03(monkeypatch):
    key = next(k for k in PAPER_MATRIX
               if PAPER_MATRIX[k].primary is SupportCategory.FULL)
    _seed_paper_primary(monkeypatch, key, SupportCategory.NONE)
    monkeypatch.setitem(KNOWN_DIVERGENCES, key,
                        "seeded for the RE03 test")
    report = cross_check()
    codes = [d.code for d in report.diagnostics]
    assert codes == ["RE03"]
    assert not report.errors
    assert "seeded for the RE03 test" in report.diagnostics[0].message


def test_dual_rating_disagreement_fires_re02(monkeypatch, derived):
    key = next(k for k in PAPER_MATRIX
               if PAPER_MATRIX[k].secondary is not None)
    # keep the primary agreeing; bend only the annotated dual rating to
    # something the derivation cannot produce for this cell
    wrong = (SupportCategory.SOME
             if derived[key].secondary is not SupportCategory.SOME
             else SupportCategory.LIMITED)
    cell = dataclasses.replace(PAPER_MATRIX[key], secondary=wrong)
    monkeypatch.setitem(PAPER_MATRIX, key, cell)
    report = cross_check()
    re02 = [d for d in report.diagnostics if d.code == "RE02"]
    assert len(re02) == 1
    assert not re02[0].is_error
    assert "dual rating" in re02[0].message


def test_derived_only_secondary_is_not_a_finding(derived):
    # cells where the derivation yields a secondary but Figure 1 shows a
    # single rating must stay silent (the repo-wide convention)
    extra = [k for k, cell in derived.items()
             if cell.secondary is not None
             and PAPER_MATRIX[k].secondary is None]
    assert extra, "expected some derived-only secondaries"
    assert cross_check().diagnostics == []


def test_capability_drift_is_caught(monkeypatch):
    """Weakening a capability table must contradict the paper."""
    from repro.compilers.registry import get_toolchain

    nvcc = get_toolchain("nvcc")
    key = next(iter(nvcc._caps))
    crippled = {
        k: (dataclasses.replace(c, targets=frozenset()) if k == key else c)
        for k, c in nvcc._caps.items()
    }
    monkeypatch.setattr(nvcc, "_caps", crippled)
    report = cross_check()
    assert any(d.code == "RE01" for d in report.diagnostics)
