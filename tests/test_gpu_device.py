"""Devices, streams, events, perf model, and the system registry."""

import numpy as np
import pytest

from repro import kernels as KL
from repro.enums import ISA, Vendor
from repro.errors import ApiError, InvalidBinaryError, LaunchError, StreamError
from repro.gpu import Device, System
from repro.gpu.perfmodel import PerfModel
from repro.gpu.specs import SPEC_CATALOG, default_spec
from repro.isa import ModuleIR, legalize
from repro.isa.interpreter import LaunchStats


def _binary(isa, kernelfn=KL.axpy):
    mod = ModuleIR("m")
    mod.add(kernelfn.ir)
    return legalize(mod, isa, "test")


# -- specs --------------------------------------------------------------------


def test_catalog_contents():
    assert {"A100-SXM4-80GB", "H100-SXM5", "MI100", "MI250X-GCD",
            "DataCenterMax-1550"} <= set(SPEC_CATALOG)
    for spec in SPEC_CATALOG.values():
        assert spec.bandwidth_gbs > 0
        assert spec.warp_size in (16, 32, 64)
        assert spec.max_resident_threads == spec.compute_units * 2048


def test_default_specs_are_flagships():
    assert default_spec(Vendor.NVIDIA).name == "H100-SXM5"
    assert default_spec(Vendor.AMD).name == "MI250X-GCD"
    assert default_spec(Vendor.INTEL).name == "DataCenterMax-1550"


# -- device -------------------------------------------------------------------


def test_isa_gate_is_strict(system):
    ptx = _binary(ISA.PTX)
    amdgcn = _binary(ISA.AMDGCN)
    spirv = _binary(ISA.SPIRV)
    table = {
        Vendor.NVIDIA: (ptx, amdgcn),
        Vendor.AMD: (amdgcn, spirv),
        Vendor.INTEL: (spirv, ptx),
    }
    for vendor, (good, bad) in table.items():
        device = system.device(vendor)
        device.load_module(good)
        with pytest.raises(InvalidBinaryError, match="cannot load"):
            device.load_module(bad)


def test_launch_unknown_kernel(nvidia):
    binary = _binary(ISA.PTX)
    with pytest.raises(LaunchError, match="no kernel"):
        nvidia.launch(binary, "ghost", (1,), (32,), [])


def test_launch_and_counters():
    device = Device(default_spec(Vendor.NVIDIA), backing_bytes=1 << 20)
    binary = _binary(ISA.PTX)
    n = 1000
    x = device.alloc(n * 8)
    y = device.alloc(n * 8)
    device.memcpy_h2d(x, np.ones(n))
    device.memcpy_h2d(y, np.zeros(n))
    timing = device.launch(binary, "axpy", ((n + 255) // 256,), (256,),
                           [n, 2.0, x, y])
    out = device.memcpy_d2h(y, np.float64, n)
    np.testing.assert_array_equal(out, np.full(n, 2.0))
    assert timing.seconds > 0
    assert device.counters.launches == 1
    assert device.counters.h2d_copies == 2
    assert device.counters.d2h_copies == 1
    assert device.counters.stats.threads >= n


def test_simulated_capacity_limit():
    device = Device(default_spec(Vendor.NVIDIA), backing_bytes=1 << 20)
    with pytest.raises(LaunchError, match="simulated capacity"):
        device.alloc(100 * 1024**3)  # beyond even the H100's 80 GB


def test_d2d_copy():
    device = Device(default_spec(Vendor.AMD), backing_bytes=1 << 20)
    a = device.alloc(80)
    b = device.alloc(80)
    device.memory.upload(a, np.arange(10, dtype=np.float64))
    device.memcpy_d2d(b, a, 80)
    np.testing.assert_array_equal(
        device.memory.download(b, np.float64, 10), np.arange(10))


# -- streams and events -----------------------------------------------------


def test_stream_fifo_ordering():
    device = Device(default_spec(Vendor.NVIDIA), backing_bytes=1 << 20)
    s = device.create_stream()
    t1 = s.push(1e-3)
    t2 = s.push(1e-3)
    assert t2 == pytest.approx(t1 + 1e-3)


def test_streams_overlap():
    device = Device(default_spec(Vendor.NVIDIA), backing_bytes=1 << 20)
    s1, s2 = device.create_stream(), device.create_stream()
    s1.push(5e-3)
    s2.push(5e-3)
    # Independent streams overlap: device drains at ~5 ms, not 10 ms.
    assert device.synchronize() == pytest.approx(5e-3)


def test_events_measure_elapsed():
    device = Device(default_spec(Vendor.NVIDIA), backing_bytes=1 << 20)
    s = device.create_stream()
    e1, e2 = device.create_event(), device.create_event()
    s.record(e1)
    s.push(2e-3)
    s.record(e2)
    assert e2.elapsed_since(e1) == pytest.approx(2e-3)


def test_unrecorded_event_errors():
    device = Device(default_spec(Vendor.NVIDIA), backing_bytes=1 << 20)
    e1, e2 = device.create_event(), device.create_event()
    with pytest.raises(StreamError, match="unrecorded"):
        e2.elapsed_since(e1)


def test_cross_stream_event_wait():
    device = Device(default_spec(Vendor.NVIDIA), backing_bytes=1 << 20)
    s1, s2 = device.create_stream(), device.create_stream()
    s1.push(4e-3)
    event = device.create_event()
    s1.record(event)
    s2.wait_event(event)
    end = s2.push(1e-3)
    assert end == pytest.approx(5e-3)  # serialized behind s1's work


def test_destroyed_stream_rejects_work():
    device = Device(default_spec(Vendor.NVIDIA), backing_bytes=1 << 20)
    s = device.create_stream()
    s.destroy()
    with pytest.raises(StreamError, match="destroyed"):
        s.push(1e-3)
    with pytest.raises(StreamError, match="default"):
        device.default_stream.destroy()


# -- perf model ---------------------------------------------------------------


def test_roofline_memory_bound():
    model = PerfModel(default_spec(Vendor.NVIDIA))
    stats = LaunchStats(threads=1 << 20, instructions=1 << 22,
                        flops=1 << 20, bytes_loaded=1 << 28,
                        bytes_stored=1 << 27)
    timing = model.time_launch(stats)
    assert timing.bound == "memory"
    assert timing.seconds > timing.overhead_s


def test_roofline_compute_bound():
    model = PerfModel(default_spec(Vendor.NVIDIA))
    stats = LaunchStats(threads=1 << 20, instructions=1 << 20,
                        flops=10**12, bytes_loaded=1 << 10, bytes_stored=0)
    timing = model.time_launch(stats)
    assert timing.bound == "compute"


def test_latency_bound_for_tiny_launches():
    model = PerfModel(default_spec(Vendor.NVIDIA))
    stats = LaunchStats(threads=32, instructions=320, flops=32,
                        bytes_loaded=256, bytes_stored=256)
    timing = model.time_launch(stats)
    assert timing.bound == "latency"


def test_occupancy_penalty():
    model = PerfModel(default_spec(Vendor.NVIDIA))
    base = dict(instructions=1 << 24, flops=1 << 24,
                bytes_loaded=1 << 28, bytes_stored=0)
    full = model.time_launch(LaunchStats(threads=1 << 20, **base))
    tiny = model.time_launch(LaunchStats(threads=1 << 10, **base))
    assert tiny.seconds > full.seconds


def test_transfer_time_scales():
    model = PerfModel(default_spec(Vendor.AMD))
    t_small = model.time_transfer(1 << 10)
    t_big = model.time_transfer(1 << 30)
    assert t_big > t_small > 0
    assert model.time_transfer(1 << 20, peer_to_peer=True) < \
        model.time_transfer(1 << 20)


def test_bandwidth_only_variant():
    spec = default_spec(Vendor.NVIDIA)
    stats = LaunchStats(threads=1 << 20, instructions=1 << 20, flops=10**12,
                        bytes_loaded=1 << 20, bytes_stored=0)
    roofline = PerfModel(spec).time_launch(stats)
    bw_only = PerfModel(spec, bandwidth_only=True).time_launch(stats)
    assert bw_only.seconds < roofline.seconds  # ignores the flops wall


# -- system -------------------------------------------------------------------


def test_default_system_has_one_device_per_vendor(system):
    assert len(system) == 3
    vendors = {d.vendor for d in system}
    assert vendors == {Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL}


def test_system_of_names():
    s = System.of("MI100", "MI250X-GCD", backing_bytes=1 << 20)
    assert len(s) == 2
    assert all(d.vendor is Vendor.AMD for d in s)
    assert s.device(1).spec.name == "MI250X-GCD"


def test_system_selector_errors(system):
    with pytest.raises(ApiError, match="out of range"):
        system.device(99)
    single = System.of("H100-SXM5", backing_bytes=1 << 20)
    with pytest.raises(ApiError, match="no AMD device"):
        single.device(Vendor.AMD)


def test_default_system_is_cached_and_resettable():
    from repro.gpu import default_system, get_device, reset_system

    reset_system()
    first = default_system()
    assert default_system() is first
    assert get_device(Vendor.AMD) is first.device(Vendor.AMD)
    reset_system()
    assert default_system() is not first
