"""Interpreter arithmetic semantics, checked against NumPy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import IRBuilder, KernelExecutor, ModuleIR, dtypes, legalize
from repro.enums import ISA


def _run_elementwise(build_fn, inputs: dict[str, np.ndarray],
                     out_dtype=np.float64, n=None):
    """Build a kernel with one output array and the given input arrays."""
    n = n if n is not None else len(next(iter(inputs.values())))
    b = IRBuilder("k")
    n_reg = b.param("n", dtypes.I64)
    in_regs = {}
    for name, arr in inputs.items():
        in_regs[name] = b.param(name, dtypes.from_numpy(arr.dtype), pointer=True)
    out_reg = b.param("out", dtypes.from_numpy(np.dtype(out_dtype)),
                      pointer=True)
    i = b.global_id()
    with b.if_(b.lt(i, n_reg)):
        loaded = {
            name: b.load_elem(reg, i, dtypes.from_numpy(inputs[name].dtype))
            for name, reg in in_regs.items()
        }
        result = build_fn(b, loaded)
        b.store_elem(out_reg, i, b.cvt(result, dtypes.from_numpy(np.dtype(out_dtype))),
                     dtypes.from_numpy(np.dtype(out_dtype)))
    kernel = b.build()
    mod = ModuleIR("m")
    mod.add(kernel)
    binary = legalize(mod, ISA.PTX, "test")

    mem = np.zeros(1 << 20, dtype=np.uint8)
    addr = 0
    addrs = []
    for arr in inputs.values():
        raw = arr.view(np.uint8)
        mem[addr:addr + raw.size] = raw
        addrs.append(addr)
        addr += (raw.size + 7) // 8 * 8
    out_addr = addr
    ex = KernelExecutor(kernel, 32, mem)
    ex.launch(((n + 255) // 256,), (256,), [n] + addrs + [out_addr])
    itemsize = np.dtype(out_dtype).itemsize
    return mem[out_addr:out_addr + n * itemsize].view(out_dtype)


@pytest.mark.parametrize("op,ref", [
    ("add", np.add), ("sub", np.subtract), ("mul", np.multiply),
    ("div", np.divide), ("min", np.minimum), ("max", np.maximum),
])
def test_float_binops(op, ref, rng):
    a = rng.random(500) + 0.5
    b_arr = rng.random(500) + 0.5
    out = _run_elementwise(
        lambda b, v: b.binop(op, v["a"], v["b"]), {"a": a, "b": b_arr}
    )
    np.testing.assert_allclose(out, ref(a, b_arr))


@pytest.mark.parametrize("op,ref", [
    ("neg", np.negative), ("abs", np.abs), ("sqrt", np.sqrt),
    ("exp", np.exp), ("log", np.log), ("sin", np.sin), ("cos", np.cos),
    ("tanh", np.tanh), ("floor", np.floor), ("ceil", np.ceil),
])
def test_float_unary(op, ref, rng):
    a = rng.random(300) + 0.1
    out = _run_elementwise(lambda b, v: b.unary(op, v["a"]), {"a": a})
    np.testing.assert_allclose(out, ref(a), rtol=1e-12)


def test_rsqrt(rng):
    a = rng.random(100) + 0.1
    out = _run_elementwise(lambda b, v: b.unary("rsqrt", v["a"]), {"a": a})
    np.testing.assert_allclose(out, 1.0 / np.sqrt(a))


def test_integer_division_truncates_toward_zero(rng):
    """C semantics, not Python floor semantics."""
    a = rng.integers(-100, 100, 400).astype(np.int64)
    b_arr = rng.integers(1, 10, 400).astype(np.int64)
    b_arr *= rng.choice([-1, 1], 400)
    out = _run_elementwise(
        lambda b, v: b.binop("div", v["a"], v["b"]),
        {"a": a, "b": b_arr}, out_dtype=np.int64,
    )
    expected = (np.abs(a) // np.abs(b_arr)) * np.sign(a) * np.sign(b_arr)
    np.testing.assert_array_equal(out, expected)


def test_integer_remainder_sign_of_dividend(rng):
    a = rng.integers(-100, 100, 400).astype(np.int64)
    b_arr = rng.integers(1, 10, 400).astype(np.int64)
    out = _run_elementwise(
        lambda b, v: b.binop("rem", v["a"], v["b"]),
        {"a": a, "b": b_arr}, out_dtype=np.int64,
    )
    expected = np.fmod(a, b_arr)  # fmod keeps the dividend's sign
    np.testing.assert_array_equal(out, expected)


def test_integer_division_by_zero_yields_zero():
    a = np.array([7, -7, 0, 5], dtype=np.int64)
    b_arr = np.array([0, 0, 0, 0], dtype=np.int64)
    out = _run_elementwise(
        lambda b, v: b.binop("div", v["a"], v["b"]),
        {"a": a, "b": b_arr}, out_dtype=np.int64,
    )
    np.testing.assert_array_equal(out, np.zeros(4, dtype=np.int64))


@pytest.mark.parametrize("op", ["and", "or", "xor", "shl", "shr"])
def test_integer_bitops(op, rng):
    a = rng.integers(0, 1 << 20, 200).astype(np.int64)
    b_arr = rng.integers(0, 8, 200).astype(np.int64)
    refs = {"and": np.bitwise_and, "or": np.bitwise_or,
            "xor": np.bitwise_xor, "shl": np.left_shift,
            "shr": np.right_shift}
    out = _run_elementwise(
        lambda b, v: b.binop(op, v["a"], v["b"]),
        {"a": a, "b": b_arr}, out_dtype=np.int64,
    )
    np.testing.assert_array_equal(out, refs[op](a, b_arr))


@pytest.mark.parametrize("op,ref", [
    ("eq", np.equal), ("ne", np.not_equal), ("lt", np.less),
    ("le", np.less_equal), ("gt", np.greater), ("ge", np.greater_equal),
])
def test_comparisons_via_select(op, ref, rng):
    a = rng.integers(0, 5, 300).astype(np.int64)
    b_arr = rng.integers(0, 5, 300).astype(np.int64)
    out = _run_elementwise(
        lambda b, v: b.select(b.cmp(op, v["a"], v["b"]), 1.0, 0.0),
        {"a": a, "b": b_arr},
    )
    np.testing.assert_array_equal(out, ref(a, b_arr).astype(np.float64))


def test_conversions_round_trip(rng):
    a = rng.integers(-1000, 1000, 200).astype(np.int64)
    out = _run_elementwise(
        lambda b, v: b.cvt(b.cvt(v["a"], dtypes.F64), dtypes.I64),
        {"a": a}, out_dtype=np.int64,
    )
    np.testing.assert_array_equal(out, a)


def test_float_to_int_truncation():
    a = np.array([1.9, -1.9, 0.5, -0.5], dtype=np.float64)
    out = _run_elementwise(
        lambda b, v: b.cvt(v["a"], dtypes.I64), {"a": a}, out_dtype=np.int64,
    )
    np.testing.assert_array_equal(out, np.array([1, -1, 0, 0]))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=200),
       st.floats(min_value=-100, max_value=100, allow_nan=False))
def test_fma_matches_numpy(values, scalar):
    """Property: a*x + x for arbitrary float inputs matches NumPy."""
    a = np.array(values, dtype=np.float64)
    out = _run_elementwise(
        lambda b, v: b.add(b.mul(b.operand(scalar, dtypes.F64), v["a"]),
                           v["a"]),
        {"a": a},
    )
    np.testing.assert_allclose(out, scalar * a + a, rtol=1e-12)


def test_special_registers(rng):
    """gid = ctaid*ntid+tid over a multi-block launch."""
    n = 1000
    b = IRBuilder("ids")
    n_reg = b.param("n", dtypes.I64)
    out = b.param("out", dtypes.I64, pointer=True)
    i = b.global_id()
    with b.if_(b.lt(i, n_reg)):
        b.store_elem(out, i, i, dtypes.I64)
    kernel = b.build()
    mem = np.zeros(1 << 14, dtype=np.uint8)
    ex = KernelExecutor(kernel, 32, mem)
    ex.launch(((n + 63) // 64,), (64,), [n, 0])
    np.testing.assert_array_equal(mem[:n * 8].view(np.int64), np.arange(n))


def test_gsize_and_grid_stride():
    n = 10_000
    b = IRBuilder("gs")
    n_reg = b.param("n", dtypes.I64)
    out = b.param("out", dtypes.F64, pointer=True)
    i = b.global_id()
    stride = b.global_size()
    cursor = b.named("c", dtypes.I64)
    b.mov(cursor, i)
    with b.while_() as loop:
        with loop.cond():
            loop.set_cond(b.lt(cursor, n_reg))
        b.store_elem(out, cursor, 1.0, dtypes.F64)
        b.mov(cursor, b.add(cursor, stride))
    kernel = b.build()
    mem = np.zeros(n * 8 + 64, dtype=np.uint8)
    ex = KernelExecutor(kernel, 32, mem)
    ex.launch((4,), (128,), [n, 0])  # far fewer threads than elements
    np.testing.assert_array_equal(mem[:n * 8].view(np.float64), np.ones(n))


def test_2d_and_3d_launch_geometry():
    b = IRBuilder("geo")
    out = b.param("out", dtypes.I64, pointer=True)
    x = b.global_id(0)
    y = b.global_id(1)
    z = b.global_id(2)
    ny = b.cvt(b.mul(b.special("nctaid.y"), b.cvt(b.special("ntid.y"),
                                                  dtypes.U32)), dtypes.I64)
    nx = b.cvt(b.mul(b.special("nctaid.x"), b.cvt(b.special("ntid.x"),
                                                  dtypes.U32)), dtypes.I64)
    linear = b.add(b.mul(b.add(b.mul(z, ny), y), nx), x)
    b.store_elem(out, linear, linear, dtypes.I64)
    kernel = b.build()
    total = 4 * 4 * 4  # (2 blocks x 2 threads) per dimension
    mem = np.zeros(total * 8 + 64, dtype=np.uint8)
    ex = KernelExecutor(kernel, 32, mem)
    ex.launch((2, 2, 2), (2, 2, 2), [0])
    np.testing.assert_array_equal(mem[:total * 8].view(np.int64),
                                  np.arange(total))
