"""Device memory: allocator behaviour, validation, data movement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, MemoryFaultError
from repro.gpu.memory import DeviceMemory


def test_alloc_alignment_and_zeroing():
    mem = DeviceMemory(1 << 16)
    a = mem.alloc(100)
    b = mem.alloc(100)
    assert a.addr % 256 == 0
    assert b.addr % 256 == 0
    assert b.addr >= a.addr + 256
    assert (mem.buffer[a.addr:a.addr + 100] == 0).all()


def test_oom():
    mem = DeviceMemory(1 << 12)
    mem.alloc(2048)
    with pytest.raises(AllocationError, match="out of device memory"):
        mem.alloc(4096)


def test_invalid_sizes():
    mem = DeviceMemory(1 << 12)
    with pytest.raises(AllocationError):
        mem.alloc(0)
    with pytest.raises(AllocationError):
        mem.alloc(-8)


def test_free_and_reuse():
    mem = DeviceMemory(1 << 12)
    a = mem.alloc(1024)
    addr = a.addr
    mem.free(a)
    b = mem.alloc(1024)
    assert b.addr == addr  # first fit reuses the hole


def test_double_free_rejected():
    mem = DeviceMemory(1 << 12)
    a = mem.alloc(64)
    mem.free(a)
    with pytest.raises(MemoryFaultError, match="already-freed"):
        mem.free(a)


def test_free_coalescing():
    """Three adjacent frees coalesce into one block big enough to reuse."""
    mem = DeviceMemory(3 * 256 + 256)
    blocks = [mem.alloc(256) for _ in range(3)]
    for blk in blocks:
        mem.free(blk)
    big = mem.alloc(3 * 256)  # only satisfiable if coalesced
    assert big.addr == blocks[0].addr


def test_counters():
    mem = DeviceMemory(1 << 14)
    a = mem.alloc(1000)
    assert mem.n_allocs == 1
    assert mem.bytes_in_use == 1024  # rounded to granules
    assert mem.peak_bytes == 1024
    mem.free(a)
    assert mem.bytes_in_use == 0
    assert mem.peak_bytes == 1024


def test_upload_download_roundtrip(rng):
    mem = DeviceMemory(1 << 14)
    a = mem.alloc(800)
    data = rng.random(100)
    mem.upload(a, data)
    out = mem.download(a, np.float64, 100)
    np.testing.assert_array_equal(out, data)
    assert out.base is None  # download copies


def test_upload_outside_allocation_faults():
    mem = DeviceMemory(1 << 14)
    a = mem.alloc(64)
    with pytest.raises(MemoryFaultError, match="upload"):
        mem.upload(a, np.zeros(100))  # 800 bytes into a 64-byte block


def test_view_is_zero_copy():
    mem = DeviceMemory(1 << 14)
    a = mem.alloc(80)
    view = mem.view(a, np.float64, 10)
    view[:] = 7.0
    assert (mem.download(a, np.float64, 10) == 7.0).all()


def test_view_misalignment_rejected():
    mem = DeviceMemory(1 << 14)
    a = mem.alloc(128)
    with pytest.raises(MemoryFaultError, match="misaligned"):
        mem.view(a, np.float64, 4, byte_offset=4)


def test_copy_within():
    mem = DeviceMemory(1 << 14)
    a = mem.alloc(80)
    b = mem.alloc(80)
    mem.upload(a, np.arange(10, dtype=np.float64))
    mem.copy_within(b, a, 80)
    np.testing.assert_array_equal(mem.download(b, np.float64, 10),
                                  np.arange(10))


def test_validate_catches_oob_and_freed():
    mem = DeviceMemory(1 << 14)
    a = mem.alloc(64)
    addrs = np.array([a.addr, a.addr + 56], dtype=np.uint64)
    mem.validate(addrs, 8, write=False)  # in bounds
    with pytest.raises(MemoryFaultError, match="out-of-bounds"):
        mem.validate(np.array([a.addr + 64], dtype=np.uint64), 8, False)
    # straddles the end of the allocation
    with pytest.raises(MemoryFaultError):
        mem.validate(np.array([a.addr + 60], dtype=np.uint64), 8, False)
    mem.free(a)
    with pytest.raises(MemoryFaultError):
        mem.validate(addrs, 8, False)


def test_validate_between_allocations():
    mem = DeviceMemory(1 << 14)
    a = mem.alloc(64)
    b = mem.alloc(64)
    mem.free(a)
    # b is alive, the hole where a was is not
    mem.validate(np.array([b.addr], dtype=np.uint64), 8, False)
    with pytest.raises(MemoryFaultError):
        mem.validate(np.array([a.addr], dtype=np.uint64), 8, False)


def test_validate_reports_faulting_lane_count():
    mem = DeviceMemory(1 << 14)
    mem.alloc(64)
    bad = np.full(5, 1 << 13, dtype=np.uint64)
    with pytest.raises(MemoryFaultError, match="5 faulting lanes"):
        mem.validate(bad, 8, True)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=8, max_value=2000), min_size=1,
                max_size=30))
def test_allocator_invariants(sizes):
    """Property: live allocations never overlap and stay in bounds."""
    mem = DeviceMemory(1 << 16)
    live = []
    for k, size in enumerate(sizes):
        try:
            a = mem.alloc(size)
        except AllocationError:
            if live:
                mem.free(live.pop(0))
            continue
        live.append(a)
        if k % 3 == 2 and live:
            mem.free(live.pop(0))
    intervals = sorted((a.addr, a.end) for a in live)
    for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
        assert e1 <= s2, "allocations overlap"
    for s, e in intervals:
        assert 0 <= s < e <= mem.buffer.size


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 100), st.integers(0, 50))
def test_upload_download_property(count, offset_elems):
    mem = DeviceMemory(1 << 14)
    a = mem.alloc((count + offset_elems) * 8)
    data = np.arange(count, dtype=np.float64)
    mem.upload(a, data, byte_offset=offset_elems * 8)
    out = mem.download(a, np.float64, count, byte_offset=offset_elems * 8)
    np.testing.assert_array_equal(out, data)
