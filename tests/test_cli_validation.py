"""CLI argument-validation tests.

Nonsensical numeric arguments (``--jobs 0``, negative ``--n``, textual
``--reps``) must be rejected at parse time with exit code 2 and a clear
message — never forwarded into the scheduler or the workload layer.
"""

import pytest

from repro import cli


@pytest.mark.parametrize("argv", [
    ["eval", "--jobs", "0"],
    ["eval", "--jobs", "-3"],
    ["perf", "--jobs", "0"],
    ["perf", "--jobs", "-1"],
    ["perf", "--n", "0"],
    ["perf", "--n", "-5"],
    ["perf", "--reps", "0"],
    ["perf", "--reps", "x"],
    ["serve", "--jobs", "0"],
    ["lint", "--perf", "--jobs", "-2"],
    ["lint", "--perf", "--n", "nope"],
    ["lint", "--perf", "--reps", "-1"],
])
def test_nonsensical_counts_exit_2(argv, capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli.main(argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "usage:" in err
    assert "must be >= 1" in err or "expected a positive integer" in err


def test_error_message_names_the_bad_value(capsys):
    with pytest.raises(SystemExit):
        cli.main(["perf", "--jobs", "0"])
    assert "must be >= 1, got 0" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        cli.main(["perf", "--reps", "fast"])
    assert "expected a positive integer, got 'fast'" in \
        capsys.readouterr().err


@pytest.mark.parametrize("command", ["eval", "perf", "serve"])
def test_unknown_execution_backend_exits_2(command, capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli.main([command, "--execution", "fibers"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_execution_backends_parse(capsys):
    """Both backends parse on every fleet subcommand (no run needed:
    a bad --port value aborts serve after parsing succeeds)."""
    for backend in ("thread", "process"):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["serve", "--execution", backend, "--port", "nope"])
        assert excinfo.value.code == 2
        assert "invalid int value" in capsys.readouterr().err


def test_trace_mode_flag_rejects_unknown_value(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["--trace-mode", "sometimes", "report"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_trace_mode_flag_accepted(capsys):
    """--trace-mode parses and the run completes (cheap subcommand)."""
    from repro.isa.tracing import default_trace_mode, set_default_trace_mode

    try:
        assert cli.main(["--trace-mode", "off", "routes"]) == 0
        assert default_trace_mode() is False
        assert cli.main(["--trace-mode", "on", "routes"]) == 0
        assert default_trace_mode() is True
    finally:
        set_default_trace_mode(None)
    capsys.readouterr()
