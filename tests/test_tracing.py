"""Differential tests for the trace-compiled interpreter path.

The contract of :mod:`repro.isa.tracing` is absolute: a traced launch
must be **bit-identical** to the batched interpreter — memory image and
every work counter — or the kernel must bail out and fall back.  These
tests drive every library kernel and a randomized population of
generated straight-line kernels through all three execution tiers
(traced, batched, block-isolated) and assert the tiers are mutually
indistinguishable except through the trace totals.
"""

import numpy as np
import pytest

from repro.errors import DivergentBarrierError
from repro.isa import IRBuilder, KernelExecutor, dtypes
from repro.isa.interpreter import snapshot_interpreter_totals
from repro.isa.tracing import (
    cached_bailout_reason,
    clear_trace_cache,
    trace_cache_size,
)
from repro.kernels import BLOCK, KERNEL_LIBRARY

N = 4096


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    """Each test sees an empty trace cache (totals are read as deltas)."""
    clear_trace_cache()
    yield
    clear_trace_cache()


def _setup(name, n, rng):
    """Return (kernel_ir, grid, block, args, initial_memory_image)."""
    mem = np.zeros(n * 8 * 3 + (1 << 16), dtype=np.uint8)
    grid = (n + BLOCK - 1) // BLOCK
    if name in ("reduce_sum", "reduce_max", "warp_reduce_sum"):
        x = rng.random(n)
        mem[: n * 8] = x.view(np.uint8)
        if name == "reduce_max":
            mem[n * 8 : n * 8 + 8] = np.array([-1.0e308]).view(np.uint8)
        args = [n, 0, n * 8]
    elif name in ("stream_dot", "ew_mul"):
        a, b = rng.random(n), rng.random(n)
        mem[: n * 8] = a.view(np.uint8)
        mem[n * 8 : 2 * n * 8] = b.view(np.uint8)
        args = [n, 0, n * 8, 2 * n * 8]
    elif name == "stream_triad":
        a, b = rng.random(n), rng.random(n)
        mem[: n * 8] = a.view(np.uint8)
        mem[n * 8 : 2 * n * 8] = b.view(np.uint8)
        args = [n, 1.5, n * 8, 2 * n * 8, 0]
    elif name == "histogram":
        data = rng.integers(0, 1 << 20, n, dtype=np.int32)
        mem[: n * 4] = data.view(np.uint8)
        args = [n, 97, 0, n * 4]
    else:  # pragma: no cover - parametrization mismatch
        raise AssertionError(name)
    return KERNEL_LIBRARY[name].ir, (grid,), (BLOCK,), args, mem


def _counters(stats):
    """Work counters that must not depend on the execution tier."""
    return (stats.threads, stats.instructions, stats.flops,
            stats.bytes_loaded, stats.bytes_stored,
            stats.atomic_ops, stats.barriers)


def _run(ir, grid, block, args, image, *, trace, width=None):
    mem = image.copy()
    ex = KernelExecutor(ir, 32, mem, max_blocks_per_batch=width,
                        trace_mode=trace)
    stats = ex.launch(grid, block, args)
    return mem, stats


def _trace_delta(fn):
    """Run ``fn`` and return the change in the process trace totals."""
    before = snapshot_interpreter_totals().trace
    out = fn()
    after = snapshot_interpreter_totals().trace
    delta = {
        "hits": after.hits - before.hits,
        "misses": after.misses - before.misses,
        "bailouts": after.bailouts - before.bailouts,
        "traced_launches": after.traced_launches - before.traced_launches,
        "traced_batches": after.traced_batches - before.traced_batches,
        "reasons": {k: after.reasons.get(k, 0) - before.reasons.get(k, 0)
                    for k in after.reasons},
    }
    return out, delta


# -- library kernels ----------------------------------------------------------


@pytest.mark.parametrize("n", [1, 257, 4096])
@pytest.mark.parametrize(
    "name",
    ["stream_triad", "ew_mul", "stream_dot", "reduce_sum", "reduce_max",
     "warp_reduce_sum", "histogram"],
)
def test_library_kernel_tiers_bit_identical(name, n, rng):
    """Traced, batched, and block-isolated runs are indistinguishable."""
    ir, grid, block, args, image = _setup(name, n, rng)
    (mem_t, st_t), delta = _trace_delta(
        lambda: _run(ir, grid, block, args, image, trace=True))
    mem_i, st_i = _run(ir, grid, block, args, image, trace=False)
    mem_1, st_1 = _run(ir, grid, block, args, image, trace=False, width=1)

    np.testing.assert_array_equal(mem_t, mem_i)
    np.testing.assert_array_equal(mem_t, mem_1)
    assert _counters(st_t) == _counters(st_i) == _counters(st_1)
    if name == "warp_reduce_sum":
        # Shuffle is untraceable: the launch must fall back (and the
        # fallback is what the equality above just validated).
        assert delta["traced_launches"] == 0
        assert delta["reasons"].get("shuffle", 0) >= 1
    else:
        assert delta["traced_launches"] == 1
        assert delta["traced_batches"] == st_t.batches


# -- randomized straight-line kernels -----------------------------------------


def _random_kernel(trial, gen):
    """A random bounds-guarded elementwise kernel over two f64 inputs."""
    b = IRBuilder(f"rand{trial}")
    n_p = b.param("n", dtypes.I64)
    a_p = b.param("a", dtypes.F64, pointer=True)
    b_p = b.param("b", dtypes.F64, pointer=True)
    o_p = b.param("out", dtypes.F64, pointer=True)
    t = b.global_id()
    with b.if_(b.lt(t, n_p)):
        x = b.load_elem(a_p, t, dtypes.F64)
        y = b.load_elem(b_p, t, dtypes.F64)
        v = x
        for _ in range(int(gen.integers(3, 9))):
            op = gen.choice(["add", "sub", "mul", "min", "max",
                             "select", "cvt"])
            other = y if gen.random() < 0.5 else x
            if op == "select":
                v = b.select(b.lt(v, other), other, v)
            elif op == "cvt":
                v = b.cvt(b.cvt(v, dtypes.F32), dtypes.F64)
            else:
                v = b.binop(op, v, other)
        b.store_elem(o_p, t, v, dtypes.F64)
    return b.build()


@pytest.mark.parametrize("trial", range(8))
def test_randomized_kernels_tiers_bit_identical(trial, rng):
    gen = np.random.default_rng(1000 + trial)
    ir = _random_kernel(trial, gen)
    n = int(gen.integers(1, 3000))
    image = np.zeros(3 * n * 8 + 64, dtype=np.uint8)
    image[: n * 8] = gen.random(n).view(np.uint8)
    image[n * 8 : 2 * n * 8] = gen.random(n).view(np.uint8)
    grid = ((n + BLOCK - 1) // BLOCK,)
    args = [n, 0, n * 8, 2 * n * 8]

    (mem_t, st_t), delta = _trace_delta(
        lambda: _run(ir, grid, (BLOCK,), args, image, trace=True))
    mem_i, st_i = _run(ir, grid, (BLOCK,), args, image, trace=False)
    mem_1, st_1 = _run(ir, grid, (BLOCK,), args, image, trace=False, width=1)

    np.testing.assert_array_equal(mem_t, mem_i)
    np.testing.assert_array_equal(mem_t, mem_1)
    assert _counters(st_t) == _counters(st_i) == _counters(st_1)
    # Straight-line kernels must actually take the traced path.
    assert delta["traced_launches"] == 1
    assert delta["bailouts"] == 0


def test_runtime_divergence_stays_traced(rng):
    """Data-dependent branching is handled inside the trace, not bailed."""
    b = IRBuilder("diverge")
    n_p = b.param("n", dtypes.I64)
    a_p = b.param("a", dtypes.F64, pointer=True)
    o_p = b.param("out", dtypes.F64, pointer=True)
    t = b.global_id()
    with b.if_(b.lt(t, n_p)):
        x = b.load_elem(a_p, t, dtypes.F64)
        with b.if_(b.lt(x, 0.5)):
            b.store_elem(o_p, t, b.mul(x, 2.0), dtypes.F64)
    ir = b.build()

    n = 1000
    image = np.zeros(2 * n * 8 + 64, dtype=np.uint8)
    image[: n * 8] = rng.random(n).view(np.uint8)
    grid = ((n + BLOCK - 1) // BLOCK,)
    args = [n, 0, n * 8]

    (mem_t, st_t), delta = _trace_delta(
        lambda: _run(ir, grid, (BLOCK,), args, image, trace=True))
    mem_i, st_i = _run(ir, grid, (BLOCK,), args, image, trace=False)
    np.testing.assert_array_equal(mem_t, mem_i)
    assert _counters(st_t) == _counters(st_i)
    assert delta["traced_launches"] == 1
    assert delta["bailouts"] == 0


# -- shared fuzz corpus, dynamic half + static agreement ----------------------
#
# The same seeded corpus test_tracesan.py validates statically runs here
# through the traced and batched tiers; the observed bit-equality and
# the static verdict must agree.


from tests.trace_fuzz import BAILING_CASES, TRACEABLE_CASES


@pytest.mark.parametrize("case", TRACEABLE_CASES, ids=lambda c: c.name)
def test_fuzz_corpus_tiers_bit_identical_and_statically_agreed(case):
    from repro.analysis.tracesan import TraceVerdict
    from repro.isa.tracing import lookup

    image = case.image()
    (mem_t, st_t), delta = _trace_delta(
        lambda: _run(case.ir, case.grid, case.block, case.args, image,
                     trace=True))
    mem_i, st_i = _run(case.ir, case.grid, case.block, case.args, image,
                       trace=False)
    np.testing.assert_array_equal(mem_t, mem_i)
    assert _counters(st_t) == _counters(st_i)
    assert delta["traced_launches"] == 1
    assert delta["bailouts"] == 0

    # Static translation validation must agree with the observed
    # bit-equality: the verdict of the cached program is "validated".
    ex = KernelExecutor(case.ir, 32, image.copy(), trace_mode=True)
    bpb = max(1, ex.chunk_lanes // case.block[0])
    grid3 = (case.grid[0], 1, 1)
    block3 = (case.block[0], 1, 1)
    program = lookup(ex, grid3, block3, bpb, validate=True)
    assert program is not None
    assert isinstance(program.verdict, TraceVerdict)
    assert program.verdict.validated, \
        [d.render() for d in program.verdict.diagnostics]


@pytest.mark.parametrize("case", BAILING_CASES, ids=lambda c: c.name)
def test_fuzz_bailing_cases_fall_back_bit_identical(case):
    """Bailed kernels run on the interpreter tier — and still match it."""
    image = case.image()
    (mem_t, st_t), delta = _trace_delta(
        lambda: _run(case.ir, case.grid, case.block, case.args, image,
                     trace=True))
    mem_i, st_i = _run(case.ir, case.grid, case.block, case.args, image,
                       trace=False)
    np.testing.assert_array_equal(mem_t, mem_i)
    assert _counters(st_t) == _counters(st_i)
    assert delta["traced_launches"] == 0
    assert delta["reasons"].get(case.bailout_reason, 0) >= 1


# -- bailouts are localized ---------------------------------------------------


def test_bailout_localized_to_bailing_kernel(rng):
    """One untraceable kernel must not de-trace its neighbors."""
    ir_w, grid_w, block_w, args_w, image_w = _setup(
        "warp_reduce_sum", 4096, rng)
    (mem_w, _), delta_w = _trace_delta(
        lambda: _run(ir_w, grid_w, block_w, args_w, image_w, trace=True))
    assert delta_w["traced_launches"] == 0
    assert delta_w["reasons"].get("shuffle", 0) == 1

    # The bailout is cached under the bailing kernel's key only ...
    ex = KernelExecutor(ir_w, 32, image_w.copy(), trace_mode=True)
    bpb = max(1, ex.chunk_lanes // BLOCK)
    assert cached_bailout_reason(
        ir_w, 32, (grid_w[0], 1, 1), (BLOCK, 1, 1), bpb) == "shuffle"

    # ... and a different kernel in the same process still traces.
    ir_t, grid_t, block_t, args_t, image_t = _setup("stream_triad", 4096, rng)
    _, delta_t = _trace_delta(
        lambda: _run(ir_t, grid_t, block_t, args_t, image_t, trace=True))
    assert delta_t["traced_launches"] == 1
    assert delta_t["bailouts"] == 0

    # The bailing kernel still computed the right answer (fallback ran).
    mem_ref, _ = _run(ir_w, grid_w, block_w, args_w, image_w, trace=False)
    np.testing.assert_array_equal(mem_w, mem_ref)


def test_cached_bailout_not_retried(rng):
    """A second launch of a bailing kernel reuses the cached verdict."""
    ir, grid, block, args, image = _setup("warp_reduce_sum", 257, rng)
    _, d1 = _trace_delta(
        lambda: _run(ir, grid, block, args, image, trace=True))
    _, d2 = _trace_delta(
        lambda: _run(ir, grid, block, args, image, trace=True))
    assert d1["reasons"].get("shuffle", 0) == 1
    assert d2["reasons"].get("shuffle", 0) == 1  # counted, served from cache
    assert trace_cache_size() == 1  # one negative entry, not one per launch


# -- trace_mode=off is inert --------------------------------------------------


def test_trace_off_touches_nothing(rng):
    """trace_mode=False must leave every trace counter and cache alone."""
    ir, grid, block, args, image = _setup("stream_triad", 4096, rng)
    _, delta = _trace_delta(
        lambda: _run(ir, grid, block, args, image, trace=False))
    assert delta["hits"] == delta["misses"] == delta["bailouts"] == 0
    assert delta["traced_launches"] == delta["traced_batches"] == 0
    assert trace_cache_size() == 0


# -- cache behaviour ----------------------------------------------------------


def test_trace_cache_hit_on_relaunch(rng):
    ir, grid, block, args, image = _setup("stream_triad", 4096, rng)
    ex = KernelExecutor(ir, 32, image.copy(), trace_mode=True)
    _, d1 = _trace_delta(lambda: ex.launch(grid, block, args))
    _, d2 = _trace_delta(lambda: ex.launch(grid, block, args))
    assert (d1["misses"], d1["hits"]) == (1, 0)
    assert (d2["misses"], d2["hits"]) == (0, 1)
    assert trace_cache_size() == 1


def test_distinct_shapes_get_distinct_programs(rng):
    """The trace key covers geometry: a new grid is a new program."""
    ir, grid, block, args, image = _setup("stream_triad", 4096, rng)
    _run(ir, grid, block, args, image, trace=True)
    assert trace_cache_size() == 1
    ir2, grid2, block2, args2, image2 = _setup("stream_triad", 257, rng)
    _run(ir2, grid2, block2, args2, image2, trace=True)
    assert trace_cache_size() == 2


# -- errors surface identically -----------------------------------------------


@pytest.mark.parametrize("trace", [True, False])
def test_divergent_barrier_raises_in_both_modes(trace):
    b = IRBuilder("k")
    b.param("out", dtypes.F64, pointer=True)
    t = b.cvt(b.special("tid.x"), dtypes.I64)
    with b.if_(b.lt(t, 16)):
        b.barrier()
    mem = np.zeros(1 << 12, dtype=np.uint8)
    ex = KernelExecutor(b.build(), 32, mem, trace_mode=trace)
    with pytest.raises(DivergentBarrierError, match="16 of 64"):
        ex.launch((4,), (64,), [0])


# -- metrics surface ----------------------------------------------------------


def test_metrics_snapshot_exposes_trace_section(rng):
    from repro.service.metrics import MetricsRegistry

    ir, grid, block, args, image = _setup("ew_mul", 257, rng)
    _run(ir, grid, block, args, image, trace=True)
    snap = MetricsRegistry().snapshot()
    trace = snap["trace"]
    for key in ("hits", "misses", "bailouts", "traced_launches",
                "traced_batches", "bailout_reasons"):
        assert key in trace
    assert trace["misses"] >= 1
    assert trace["traced_launches"] >= 1
