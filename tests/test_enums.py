"""Shared vocabulary: vendors, models, languages, categories."""

import pytest

from repro.enums import (
    CATEGORY_ORDER,
    ISA,
    ISA_VENDOR,
    MODEL_LANGUAGES,
    MODEL_ORDER,
    VENDOR_ISA,
    VENDOR_ORDER,
    Language,
    Maturity,
    Model,
    Provider,
    SupportCategory,
    Vendor,
    all_cells,
)


def test_three_vendors_alphabetical():
    assert [v.value for v in VENDOR_ORDER] == ["AMD", "Intel", "NVIDIA"]


def test_model_column_order_matches_figure1():
    assert [m.value for m in MODEL_ORDER] == [
        "CUDA", "HIP", "SYCL", "OpenACC", "OpenMP", "Standard",
        "Kokkos", "Alpaka", "Python",
    ]


def test_model_languages():
    for model in MODEL_ORDER:
        langs = MODEL_LANGUAGES[model]
        if model is Model.PYTHON:
            assert langs == (Language.PYTHON,)
        else:
            assert langs == (Language.CPP, Language.FORTRAN)


def test_all_cells_is_51():
    cells = all_cells()
    assert len(cells) == 51
    assert len(set(cells)) == 51


def test_vendor_isa_bijection():
    assert VENDOR_ISA[Vendor.NVIDIA] is ISA.PTX
    assert VENDOR_ISA[Vendor.AMD] is ISA.AMDGCN
    assert VENDOR_ISA[Vendor.INTEL] is ISA.SPIRV
    for isa, vendor in ISA_VENDOR.items():
        assert VENDOR_ISA[vendor] is isa


def test_category_ranks_strictly_ordered():
    ranks = [c.rank for c in CATEGORY_ORDER]
    assert ranks == sorted(ranks, reverse=True)
    assert len(set(ranks)) == 6


def test_category_symbols_unique():
    symbols = [c.symbol for c in SupportCategory]
    assert len(set(symbols)) == 6


def test_category_usability_split():
    usable = {c for c in SupportCategory if c.is_usable}
    assert usable == {SupportCategory.FULL, SupportCategory.INDIRECT,
                      SupportCategory.SOME, SupportCategory.NONVENDOR}


@pytest.mark.parametrize("provider,vendor,expected", [
    (Provider.NVIDIA, Vendor.NVIDIA, True),
    (Provider.NVIDIA, Vendor.AMD, False),
    (Provider.AMD, Vendor.AMD, True),
    (Provider.INTEL, Vendor.INTEL, True),
    (Provider.COMMUNITY, Vendor.NVIDIA, False),
    (Provider.HPE, Vendor.AMD, False),
])
def test_provider_device_vendor(provider, vendor, expected):
    assert provider.is_device_vendor(vendor) is expected


def test_maturity_dependability():
    assert Maturity.PRODUCTION.is_dependable
    for m in (Maturity.EXPERIMENTAL, Maturity.RESEARCH, Maturity.UNMAINTAINED):
        assert not m.is_dependable
