"""Round-trip translation tests over the whole kernel library.

Every library kernel is run three ways — natively (CUDA on NVIDIA via
nvcc), through hipify (CUDA source, AMD device via hipcc) and through
SYCLomatic (CUDA source, Intel device via DPC++) — and the results must
be *bit-identical*.  The translators rewrite the unit metadata, never
the kernel IR, so any observable difference is a translation bug.

Reduction kernels accumulate through atomics whose combination order
differs across execution widths (warp-32 vs wave-64); the inputs are
integer-valued doubles so every partial sum is exact and the order
cannot change the result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import KERNEL_LIBRARY
from repro.models.cuda import Cuda
from repro.translate.hipify import Hipify
from repro.translate.syclomatic import Syclomatic

SEED = 20240806
N = 1000


def _ints(rng, n, lo=0, hi=9):
    """Integer-valued doubles: exact under any FP summation order."""
    return rng.integers(lo, hi, n).astype(np.float64)


def _zeros(n):
    return np.zeros(n, dtype=np.float64)


# Each case: callable(rt, rng) -> list of host output arrays.  All
# inputs come from the caller-seeded rng, so every backend sees the
# same data.
def _case_stream_copy(rt, rng):
    a = rt.to_device(_ints(rng, N))
    c = rt.to_device(_zeros(N))
    rt.launch_1d(KERNEL_LIBRARY["stream_copy"], N, [N, a, c])
    return [c.copy_to_host()]


def _case_stream_mul(rt, rng):
    b = rt.to_device(_zeros(N))
    c = rt.to_device(_ints(rng, N))
    rt.launch_1d(KERNEL_LIBRARY["stream_mul"], N, [N, 3.0, b, c])
    return [b.copy_to_host()]


def _case_stream_add(rt, rng):
    a = rt.to_device(_ints(rng, N))
    b = rt.to_device(_ints(rng, N))
    c = rt.to_device(_zeros(N))
    rt.launch_1d(KERNEL_LIBRARY["stream_add"], N, [N, a, b, c])
    return [c.copy_to_host()]


def _case_stream_triad(rt, rng):
    a = rt.to_device(_zeros(N))
    b = rt.to_device(_ints(rng, N))
    c = rt.to_device(_ints(rng, N))
    rt.launch_1d(KERNEL_LIBRARY["stream_triad"], N, [N, 2.0, a, b, c])
    return [a.copy_to_host()]


def _case_stream_dot(rt, rng):
    a = rt.to_device(_ints(rng, N))
    b = rt.to_device(_ints(rng, N))
    out = rt.to_device(_zeros(1))
    rt.launch_1d(KERNEL_LIBRARY["stream_dot"], N, [N, a, b, out])
    return [out.copy_to_host()]


def _case_axpy(rt, rng):
    x = rt.to_device(_ints(rng, N))
    y = rt.to_device(_ints(rng, N))
    rt.launch_1d(KERNEL_LIBRARY["axpy"], N, [N, 2.0, x, y])
    return [y.copy_to_host()]


def _case_gemv(rt, rng):
    m = n = 32
    a = rt.to_device(_ints(rng, m * n))
    x = rt.to_device(_ints(rng, n))
    y = rt.to_device(_ints(rng, m))
    rt.launch_1d(KERNEL_LIBRARY["gemv"], m, [m, n, 2.0, a, x, 3.0, y])
    return [y.copy_to_host()]


def _case_fill(rt, rng):
    x = rt.to_device(_zeros(N))
    rt.launch_1d(KERNEL_LIBRARY["fill"], N, [N, 7.5, x])
    return [x.copy_to_host()]


def _case_scale_inplace(rt, rng):
    x = rt.to_device(_ints(rng, N))
    rt.launch_1d(KERNEL_LIBRARY["scale_inplace"], N, [N, 2.0, x])
    return [x.copy_to_host()]


def _binary_ew(name, lo_b=0):
    def run(rt, rng):
        a = rt.to_device(_ints(rng, N))
        b = rt.to_device(_ints(rng, N, lo=lo_b))
        out = rt.to_device(_zeros(N))
        rt.launch_1d(KERNEL_LIBRARY[name], N, [N, a, b, out])
        return [out.copy_to_host()]

    return run


def _scalar_ew(name):
    def run(rt, rng):
        a = rt.to_device(_ints(rng, N))
        out = rt.to_device(_zeros(N))
        rt.launch_1d(KERNEL_LIBRARY[name], N, [N, 2.5, a, out])
        return [out.copy_to_host()]

    return run


def _unary_ew(name, hi=9):
    def run(rt, rng):
        a = rt.to_device(_ints(rng, N, hi=hi))
        out = rt.to_device(_zeros(N))
        rt.launch_1d(KERNEL_LIBRARY[name], N, [N, a, out])
        return [out.copy_to_host()]

    return run


def _case_flops_burner(rt, rng):
    x = rt.to_device(_ints(rng, N))
    rt.launch_1d(KERNEL_LIBRARY["flops_burner"], N, [N, 10, x])
    return [x.copy_to_host()]


def _case_reduce_sum(rt, rng):
    x = rt.to_device(_ints(rng, N))
    out = rt.to_device(_zeros(1))
    rt.launch_1d(KERNEL_LIBRARY["reduce_sum"], N, [N, x, out])
    return [out.copy_to_host()]


def _case_reduce_max(rt, rng):
    x = rt.to_device(_ints(rng, N))
    out = rt.to_device(np.array([-1.0e308]))
    rt.launch_1d(KERNEL_LIBRARY["reduce_max"], N, [N, x, out])
    return [out.copy_to_host()]


def _case_warp_reduce_sum(rt, rng):
    # warpsize()/lane() adapt to the device width, so the same kernel
    # is correct on warp-32 and wave-64 hardware.
    x = rt.to_device(_ints(rng, N))
    out = rt.to_device(_zeros(1))
    rt.launch_1d(KERNEL_LIBRARY["warp_reduce_sum"], N, [N, x, out])
    return [out.copy_to_host()]


def _case_histogram(rt, rng):
    nbins = 16
    data = rt.to_device(rng.integers(0, 1000, N).astype(np.int32))
    bins = rt.to_device(np.zeros(nbins, dtype=np.int32))
    rt.launch_1d(KERNEL_LIBRARY["histogram"], N, [N, nbins, data, bins])
    return [bins.copy_to_host()]


def _case_bitonic_step(rt, rng):
    n = 1024
    data = rt.to_device(_ints(rng, n, hi=100))
    rt.launch_1d(KERNEL_LIBRARY["bitonic_step"], n, [n, 2, 4, data])
    return [data.copy_to_host()]


def _case_scan_step(rt, rng):
    src = rt.to_device(_ints(rng, N))
    dst = rt.to_device(_zeros(N))
    rt.launch_1d(KERNEL_LIBRARY["scan_step"], N, [N, 4, src, dst])
    return [dst.copy_to_host()]


def _case_jacobi2d(rt, rng):
    nx = ny = 32
    inp = rt.to_device(_ints(rng, nx * ny))
    out = rt.to_device(_zeros(nx * ny))
    rt.launch_kernel(KERNEL_LIBRARY["jacobi2d"], (2, 2), (16, 16),
                     [nx, ny, inp, out])
    return [out.copy_to_host()]


def _case_nbody_forces(rt, rng):
    n = 96
    pos = rt.to_device(_ints(rng, 2 * n, hi=50))
    acc = rt.to_device(_zeros(2 * n))
    rt.launch_1d(KERNEL_LIBRARY["nbody_forces"], n, [n, 0.5, pos, acc])
    return [acc.copy_to_host()]


CASES = {
    "stream_copy": _case_stream_copy,
    "stream_mul": _case_stream_mul,
    "stream_add": _case_stream_add,
    "stream_triad": _case_stream_triad,
    "stream_dot": _case_stream_dot,
    "axpy": _case_axpy,
    "gemv": _case_gemv,
    "fill": _case_fill,
    "scale_inplace": _case_scale_inplace,
    "ew_add": _binary_ew("ew_add"),
    "ew_sub": _binary_ew("ew_sub"),
    "ew_mul": _binary_ew("ew_mul"),
    "ew_div": _binary_ew("ew_div", lo_b=1),
    "ew_scalar_add": _scalar_ew("ew_scalar_add"),
    "ew_scalar_mul": _scalar_ew("ew_scalar_mul"),
    "ew_sqrt": _unary_ew("ew_sqrt"),
    "ew_exp": _unary_ew("ew_exp", hi=4),
    "ew_maximum": _binary_ew("ew_maximum"),
    "flops_burner": _case_flops_burner,
    "reduce_sum": _case_reduce_sum,
    "reduce_max": _case_reduce_max,
    "warp_reduce_sum": _case_warp_reduce_sum,
    "histogram": _case_histogram,
    "bitonic_step": _case_bitonic_step,
    "scan_step": _case_scan_step,
    "jacobi2d": _case_jacobi2d,
    "nbody_forces": _case_nbody_forces,
}


def _run(make_rt, name):
    rt = make_rt()
    rng = np.random.default_rng(SEED)
    return CASES[name](rt, rng)


@pytest.mark.parametrize("name", sorted(KERNEL_LIBRARY))
def test_hipify_roundtrip_bit_identical(name, nvidia, amd):
    """CUDA source → hipify → AMD matches native CUDA bit-for-bit."""
    assert name in CASES, f"no round-trip case covers kernel {name!r}"
    native = _run(lambda: Cuda(nvidia), name)

    def make_hip():
        rt = Cuda(amd, "hipcc")
        rt.translator = Hipify()
        return rt

    translated = _run(make_hip, name)
    assert len(native) == len(translated)
    for ref, got in zip(native, translated):
        assert ref.dtype == got.dtype
        assert ref.tobytes() == got.tobytes()


@pytest.mark.parametrize("name", sorted(KERNEL_LIBRARY))
def test_syclomatic_roundtrip_bit_identical(name, nvidia, intel):
    """CUDA source → SYCLomatic → Intel matches native CUDA bit-for-bit."""
    assert name in CASES, f"no round-trip case covers kernel {name!r}"
    native = _run(lambda: Cuda(nvidia), name)

    def make_sycl():
        rt = Cuda(intel, "dpcpp")
        rt.translator = Syclomatic()
        return rt

    translated = _run(make_sycl, name)
    assert len(native) == len(translated)
    for ref, got in zip(native, translated):
        assert ref.dtype == got.dtype
        assert ref.tobytes() == got.tobytes()
