"""Tests for the performance-portability matrix subsystem.

The load-bearing properties, in order:

1. the scheduled perf build is **bit-identical** to the sequential
   reference loop at every worker count;
2. a warm store serves every perf cell with **zero stream-kernel
   executions**, and the reloaded matrix is bit-identical to the
   evaluated one;
3. the Pennycook ⫫ metric is the harmonic mean of the per-vendor
   achieved fractions of peak, and **any unsupported vendor forces
   ⫫ = 0** for that (model, language) row.

Perf params are kept tiny (n = 4096) — the invariants are
size-independent and the tier-1 suite has a time budget.
"""

from __future__ import annotations

import pytest

from repro.core.matrix import build_matrix
from repro.enums import VENDOR_ORDER, Language, Model, Vendor, all_cells
from repro.perfport import (
    PerfParams,
    PerfScheduler,
    PerfStore,
    build_perf_matrix,
    pennycook_metric,
    perf_fingerprint,
    portability_report,
    run_perf_matrix,
    viable_routes,
)
from repro.service.metrics import MetricsRegistry
from repro.workloads.babelstream import reset_stream_totals, stream_totals

PARAMS = PerfParams(n=1 << 12, reps=2)


@pytest.fixture(scope="module")
def compat():
    """The compatibility matrix perf viability is read from."""
    return build_matrix()


@pytest.fixture(scope="module")
def seq_perf(compat):
    """The sequential ground truth every concurrency test compares to."""
    return build_perf_matrix(compat, params=PARAMS)


# -- determinism --------------------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 4])
def test_scheduled_build_bit_identical(jobs, compat, seq_perf):
    report = PerfScheduler(jobs, compat=compat, params=PARAMS).build()
    assert report.jobs == jobs
    assert report.cells_evaluated == 51
    # Dataclass equality compares every route's best-of timings exactly.
    assert report.matrix.cells == seq_perf.cells
    assert report.matrix == seq_perf


def test_every_cell_has_exactly_its_viable_routes(compat, seq_perf):
    for cell in all_cells():
        expected = [r.route_id for r in viable_routes(compat, cell)]
        got = [r.route_id for r in seq_perf.cells[cell].routes]
        assert got == expected  # registry order, no drops, no extras


# -- the persistent store -----------------------------------------------------


def test_warm_store_rerun_executes_zero_stream_kernels(tmp_path, seq_perf):
    metrics = MetricsRegistry()
    cold = run_perf_matrix(4, store=str(tmp_path), params=PARAMS,
                           metrics=metrics)
    assert cold.cells_evaluated == 51 and cold.cells_from_store == 0
    assert cold.matrix == seq_perf

    reset_stream_totals()
    warm_metrics = MetricsRegistry()
    warm = run_perf_matrix(4, store=str(tmp_path), params=PARAMS,
                           metrics=warm_metrics)
    totals = stream_totals()
    assert totals == {"runs": 0, "kernels": 0}
    assert warm_metrics.counter("stream_runs").get() == 0
    assert warm_metrics.counter("probes_executed").get() == 0
    assert warm.cells_from_store == 51 and warm.cells_evaluated == 0
    # Reloaded cells are bit-identical (JSON floats round-trip repr).
    assert warm.matrix == cold.matrix


def test_fingerprint_changes_invalidate_the_store(tmp_path, seq_perf):
    run_perf_matrix(1, store=str(tmp_path), params=PARAMS)
    other = PerfParams(n=PARAMS.n * 2, reps=PARAMS.reps)
    assert perf_fingerprint(other) != perf_fingerprint(PARAMS)
    store = PerfStore(tmp_path, params=other)
    assert all(store.load(cell) is None for cell in all_cells())


def test_corrupt_store_entry_is_a_miss(tmp_path, compat):
    metrics = MetricsRegistry()
    store = PerfStore(tmp_path, params=PARAMS)
    cell = (Vendor.NVIDIA, Model.CUDA, Language.CPP)
    sched = PerfScheduler(1, compat=compat, params=PARAMS, store=store,
                          metrics=metrics)
    report = sched.build()
    path = store._path(cell)
    path.write_text("{not json")
    fresh = PerfStore(tmp_path, params=PARAMS)
    assert fresh.load(cell) is None
    assert fresh.stats.as_dict()["invalid"] == 1
    # Every other cell still loads, bit-identical.
    other = (Vendor.AMD, Model.HIP, Language.CPP)
    assert fresh.load(other) == report.matrix.cells[other]


# -- the sanitizer riding along -----------------------------------------------


def test_perf_build_is_sanitizer_clean(seq_perf):
    """Perf routes compile with ``sanitize=True``; the stream kernels
    must produce zero kernelsan errors or warnings on every route."""
    for cell in seq_perf.cells.values():
        for route in cell.routes:
            assert route.lint_errors == 0, route.route_id
            assert route.lint_warnings == 0, route.route_id


def test_store_round_trips_the_lint_rollup(seq_perf):
    from repro.perfport.store import perf_cell_from_dict, perf_cell_to_dict

    cell = seq_perf.cells[(Vendor.NVIDIA, Model.CUDA, Language.CPP)]
    payload = perf_cell_to_dict(cell)
    assert all("lint_errors" in r and "lint_warnings" in r
               for r in payload["routes"])
    assert perf_cell_from_dict(payload) == cell
    # A schema-v1 payload (no lint keys) still loads, with zero rollups.
    for entry in payload["routes"]:
        del entry["lint_errors"], entry["lint_warnings"]
    legacy = perf_cell_from_dict(payload)
    assert legacy == cell  # rollups default to 0 == the clean build's


# -- the ⫫ metric -------------------------------------------------------------


def test_pennycook_metric_definition():
    assert pennycook_metric([]) == 0.0
    assert pennycook_metric([0.5, 0.5, 0.5]) == pytest.approx(0.5)
    # Harmonic mean: dominated by the worst platform.
    assert pennycook_metric([1.0, 0.25]) == pytest.approx(0.4)
    # Any unsupported platform (efficiency 0) zeroes the metric.
    assert pennycook_metric([0.9, 0.9, 0.0]) == 0.0


def test_portability_rows_cover_vendor_set_and_zero_unsupported(seq_perf):
    rows = {(r.model, r.language): r for r in portability_report(seq_perf)}
    # Every Figure-1 (model, language) column appears.
    assert set(rows) == {(m, l) for _, m, l in all_cells()}
    for row in rows.values():
        assert [e.vendor for e in row.cascade] != []
        assert {e.vendor for e in row.cascade} == set(VENDOR_ORDER)
        # Cascade is sorted best-first.
        effs = [e.efficiency for e in row.cascade]
        assert effs == sorted(effs, reverse=True)
        if row.supported_everywhere:
            assert row.metric == pytest.approx(pennycook_metric(effs))
            assert row.metric > 0.0
        else:
            assert row.metric == 0.0
    # SYCL from Fortran has no route anywhere: an all-zero cascade.
    sycl_f = rows[(Model.SYCL, Language.FORTRAN)]
    assert all(e.efficiency == 0.0 for e in sycl_f.cascade)
    assert sycl_f.metric == 0.0
    # CUDA C++ runs everywhere (natively or translated): ⫫ > 0.
    assert rows[(Model.CUDA, Language.CPP)].metric > 0.0


def test_translated_routes_are_marked_and_contribute(seq_perf):
    amd_cuda = seq_perf.cells[(Vendor.AMD, Model.CUDA, Language.CPP)]
    assert amd_cuda.supported
    translated = [r for r in amd_cuda.routes if r.translated]
    assert translated, "hipify route must be evaluated on AMD"
    assert any(r.ok and r.verified for r in translated)


def test_efficiency_requires_verification(seq_perf):
    params = seq_perf.params
    for cell in seq_perf.cells.values():
        for route in cell.routes:
            eff = route.efficiency(params, cell.peak_gbs)
            if route.ok and route.verified:
                assert 0.0 < eff < 1.0
            else:
                assert eff == 0.0
