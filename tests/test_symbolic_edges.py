"""Table-driven edge-case tests for the affine symbolic layer.

Two layers under test:

* :mod:`repro.analysis.symbolic` directly — the affine lattice must
  degrade to ``None`` (unknown) on every non-affine construction and
  never invent a bound it cannot prove;
* the stride classifier built on it
  (:func:`repro.analysis.costmodel.classify_stride` via
  :func:`cost_kernel`) — mixed ``tid.x``/``tid.y`` indexing is
  *strided*, and anything routed through modulo, shifts, or a loaded
  value is conservatively *unknown*, never coalesced.
"""

from __future__ import annotations

import pytest

from repro.analysis.costmodel import cost_kernel
from repro.analysis.symbolic import Affine, BoundEnv, add, mul, sub
from repro.frontends import f64, i64, kernel

# -- kernels exercising one indexing edge case each --------------------------


@kernel
def idx_coalesced(n: i64, a: f64[:], c: f64[:]):
    i = gid(0)
    if i < n:
        c[i] = a[i]


@kernel
def idx_strided(n: i64, a: f64[:], c: f64[:]):
    i = gid(0) * 2
    if i < n:
        c[i] = a[i]


@kernel
def idx_mixed_tids(n: i64, a: f64[:], c: f64[:]):
    i = lid(0) + lid(1) * 16
    if i < n:
        c[i] = a[i]


@kernel
def idx_modulo(n: i64, a: f64[:], c: f64[:]):
    i = gid(0)
    j = i % 7
    if i < n:
        c[i] = a[j]


@kernel
def idx_shift(n: i64, a: f64[:], c: f64[:]):
    i = gid(0)
    j = i >> 1
    if i < n:
        c[i] = a[j]


@kernel
def idx_uniform(n: i64, s: f64[:], c: f64[:]):
    i = gid(0)
    if i < n:
        c[i] = s[0]


@kernel
def idx_gather(n: i64, idx: i64[:], a: f64[:], c: f64[:]):
    i = gid(0)
    if i < n:
        c[i] = a[idx[i]]


#: kernel, block shape, expected {(kind, class)} of the *global* traffic.
STRIDE_TABLE = [
    (idx_coalesced, (256,),
     {("load", "coalesced"), ("store", "coalesced")}),
    # tid.x coefficient 16 bytes != itemsize: strided, both directions.
    (idx_strided, (256,),
     {("load", "strided"), ("store", "strided")}),
    # Mixed tid.x/tid.y: the tid.x coefficient alone looks unit-stride,
    # but the nonzero tid.y coefficient must demote it to strided.
    (idx_mixed_tids, (16, 16),
     {("load", "strided"), ("store", "strided")}),
    # Modulo is not affine: the load degrades to unknown; the store
    # (still a plain gid index) stays coalesced.
    (idx_modulo, (256,),
     {("load", "unknown"), ("store", "coalesced")}),
    # Shifts are not affine either (the walk does not model division).
    (idx_shift, (256,),
     {("load", "unknown"), ("store", "coalesced")}),
    # Constant index: uniform (one value per block), not coalesced.
    (idx_uniform, (256,),
     {("load", "uniform"), ("store", "coalesced")}),
    # Index loaded from memory: data-dependent, unknown — but the
    # index-vector load itself is a clean unit-stride access.
    (idx_gather, (256,),
     {("load", "coalesced"), ("load", "unknown"),
      ("store", "coalesced")}),
]


@pytest.mark.parametrize(
    "fn,block,expected", STRIDE_TABLE,
    ids=[fn.ir.name for fn, _b, _e in STRIDE_TABLE])
def test_stride_classification(fn, block, expected):
    cost = cost_kernel(fn.ir, (4,), block, {"n": 512})
    classes = {(k[1], k[2]) for k in cost.traffic if k[0] == "global"}
    assert classes == expected


def test_non_affine_never_classifies_as_coalesced():
    for fn, block in [(idx_modulo, (256,)), (idx_shift, (256,)),
                      (idx_gather, (256,))]:
        cost = cost_kernel(fn.ir, (4,), block, {"n": 512})
        loads = {k[2] for k in cost.traffic
                 if k[0] == "global" and k[1] == "load"
                 and k[2] == "unknown"}
        assert loads == {"unknown"}, fn.ir.name


# -- the affine lattice directly ---------------------------------------------


def test_affine_product_of_two_variables_is_unknown():
    t = Affine.of_atom("sr:tid.x")
    n = Affine.of_atom("param:n")
    assert mul(t, n) is None  # non-affine: falls to the lattice top
    assert mul(t, Affine.of_const(3)) == Affine.of_atom("sr:tid.x", 3)
    assert mul(Affine.of_const(0), t) == Affine()


def test_unknown_poisons_every_operation():
    t = Affine.of_atom("sr:tid.x")
    assert add(None, t) is None
    assert add(t, None) is None
    assert sub(None, None) is None
    assert mul(None, Affine.of_const(2)) is None


def test_affine_arithmetic_cancels_and_substitutes():
    t = Affine.of_atom("sr:tid.x", 4)
    expr = t + Affine.of_const(10) - t
    assert expr.is_const and expr.const == 10
    composed = Affine.make(1, {"op:i#0": 8})
    resolved = composed.substitute(
        "op:i#0", Affine.of_atom("sr:tid.x", 1))
    assert resolved == Affine.make(1, {"sr:tid.x": 8})


def test_bound_env_proves_guarded_ranges():
    env = BoundEnv()
    t = Affine.of_atom("sr:tid.x")
    env.set_lo("sr:tid.x", Affine.of_const(0))
    env.set_hi("sr:tid.x", Affine.of_const(255))
    assert env.upper(t) == Affine.of_const(255)
    assert env.definitely_le(t, Affine.of_const(255))
    assert not env.definitely_le(t, Affine.of_const(254))
    assert env.definitely_ge(t, Affine.of_const(0))
    # A symbolic guard bound (t <= n - 1) cancels against -n.
    n = Affine.of_atom("param:n")
    env2 = BoundEnv()
    env2.set_hi("sr:tid.x", n.shift(-1))
    assert env2.definitely_lt(t, n)


def test_bound_env_stays_silent_without_facts():
    env = BoundEnv()
    t = Affine.of_atom("sr:tid.x")
    assert env.upper(t) == t  # no bound known: returns the expression
    assert not env.definitely_le(t, Affine.of_const(1 << 30))
    assert env.upper(None) is None


def test_tighter_constant_bounds_win():
    env = BoundEnv()
    env.set_hi("sr:tid.x", Affine.of_const(1023))
    env.set_hi("sr:tid.x", Affine.of_const(255))   # tighter: kept
    env.set_hi("sr:tid.x", Affine.of_const(4095))  # looser: ignored
    assert env.hi["sr:tid.x"] == Affine.of_const(255)
    env.set_lo("sr:tid.x", Affine.of_const(0))
    env.set_lo("sr:tid.x", Affine.of_const(16))    # tighter: kept
    env.set_lo("sr:tid.x", Affine.of_const(-5))    # looser: ignored
    assert env.lo["sr:tid.x"] == Affine.of_const(16)
