"""Interpreter memory semantics: global/shared access, faults, atomics."""

import numpy as np
import pytest

from repro.errors import DivergentBarrierError, MemoryFaultError
from repro.isa import IRBuilder, KernelExecutor, dtypes


def _exec(kernel, grid, block, args, mem_bytes=1 << 16, warp_size=32,
          validator=None):
    mem = np.zeros(mem_bytes, dtype=np.uint8)
    ex = KernelExecutor(kernel, warp_size, mem, validator=validator)
    stats = ex.launch(grid, block, args)
    return mem, stats


def test_gather_scatter_arbitrary_indices(rng):
    """Indirect addressing: out[perm[i]] = data[i]."""
    n = 256
    b = IRBuilder("k")
    data = b.param("data", dtypes.F64, pointer=True)
    perm = b.param("perm", dtypes.I64, pointer=True)
    out = b.param("out", dtypes.F64, pointer=True)
    i = b.global_id()
    target = b.load_elem(perm, i, dtypes.I64)
    value = b.load_elem(data, i, dtypes.F64)
    b.store_elem(out, target, value, dtypes.F64)
    kernel = b.build()

    data_h = rng.random(n)
    perm_h = rng.permutation(n).astype(np.int64)
    mem = np.zeros(1 << 16, dtype=np.uint8)
    mem[:n * 8] = data_h.view(np.uint8)
    mem[n * 8:2 * n * 8] = perm_h.view(np.uint8)
    ex = KernelExecutor(kernel, 32, mem)
    ex.launch((1,), (n,), [0, n * 8, 2 * n * 8])
    got = mem[2 * n * 8:3 * n * 8].view(np.float64)
    expected = np.zeros(n)
    expected[perm_h] = data_h
    np.testing.assert_array_equal(got, expected)


def test_misaligned_access_faults():
    b = IRBuilder("k")
    x = b.param("x", dtypes.F64, pointer=True)
    i = b.global_id()
    addr = b.add(b.cvt(x, dtypes.U64), b.cvt(i, dtypes.U64))  # byte offsets!
    b.store(addr, b.operand(1.0, dtypes.F64))
    with pytest.raises(MemoryFaultError, match="misaligned"):
        _exec(b.build(), (1,), (8,), [4])  # addr 4+lane not 8-aligned


def test_out_of_bounds_faults_without_validator():
    b = IRBuilder("k")
    x = b.param("x", dtypes.F64, pointer=True)
    i = b.global_id()
    b.store_elem(x, i, 1.0, dtypes.F64)
    with pytest.raises(MemoryFaultError):
        _exec(b.build(), (1,), (64,), [1 << 16], mem_bytes=1 << 10)


def test_validator_hook_called():
    calls = []

    def validator(addrs, itemsize, write):
        calls.append((addrs.size, itemsize, write))

    b = IRBuilder("k")
    x = b.param("x", dtypes.F64, pointer=True)
    i = b.global_id()
    v = b.load_elem(x, i, dtypes.F64)
    b.store_elem(x, i, b.mul(v, 2.0), dtypes.F64)
    _exec(b.build(), (1,), (32,), [0], validator=validator)
    assert (32, 8, False) in calls  # the load
    assert (32, 8, True) in calls  # the store


def test_inactive_lanes_do_not_fault():
    """Masked-off lanes may hold garbage addresses without faulting."""
    b = IRBuilder("k")
    n = b.param("n", dtypes.I64)
    x = b.param("x", dtypes.F64, pointer=True)
    i = b.global_id()
    with b.if_(b.lt(i, n)):
        b.store_elem(x, i, 1.0, dtypes.F64)  # i up to 255 would be OOB
    mem, _ = _exec(b.build(), (1,), (256,), [4, 0], mem_bytes=1 << 10)
    assert mem[:4 * 8].view(np.float64).sum() == 4.0


def test_shared_memory_private_per_block():
    """Each block sees its own zero-initialized shared tile."""
    b = IRBuilder("k")
    out = b.param("out", dtypes.F64, pointer=True)
    tile = b.shared_alloc(dtypes.F64, 64)
    t = b.cvt(b.special("tid.x"), dtypes.I64)
    blk = b.cvt(b.special("ctaid.x"), dtypes.I64)
    # Each thread adds its block id+1 into shared slot t, then reads back.
    b.store_elem(tile, t, b.cvt(b.add(blk, 1), dtypes.F64), dtypes.F64,
                 space="shared")
    b.barrier()
    value = b.load_elem(tile, t, dtypes.F64, space="shared")
    i = b.global_id()
    b.store_elem(out, i, value, dtypes.F64)
    mem, stats = _exec(b.build(), (4,), (64,), [0], mem_bytes=1 << 14)
    got = mem[:256 * 8].view(np.float64)
    expected = np.repeat(np.arange(1.0, 5.0), 64)
    np.testing.assert_array_equal(got, expected)
    # Shared-memory kernels batch multiple blocks (one arena row each),
    # so all four blocks fit in a single batch.
    assert stats.batches == 1


def test_shared_memory_out_of_bounds():
    b = IRBuilder("k")
    b.param("out", dtypes.F64, pointer=True)
    tile = b.shared_alloc(dtypes.F64, 8)
    t = b.cvt(b.special("tid.x"), dtypes.I64)
    b.store_elem(tile, t, 1.0, dtypes.F64, space="shared")
    with pytest.raises(MemoryFaultError, match="shared"):
        _exec(b.build(), (1,), (64,), [0])


def test_divergent_barrier_raises():
    b = IRBuilder("k")
    b.param("out", dtypes.F64, pointer=True)
    t = b.cvt(b.special("tid.x"), dtypes.I64)
    with b.if_(b.lt(t, 16)):
        b.barrier()
    with pytest.raises(DivergentBarrierError, match="16 of 64"):
        _exec(b.build(), (1,), (64,), [0])


def test_barrier_after_exit_is_legal():
    """Exited lanes are excluded from the barrier arrival set."""
    b = IRBuilder("k")
    out = b.param("out", dtypes.F64, pointer=True)
    t = b.cvt(b.special("tid.x"), dtypes.I64)
    with b.if_(b.ge(t, 32)):
        b.exit()
    b.barrier()
    b.store_elem(out, t, 1.0, dtypes.F64)
    mem, _ = _exec(b.build(), (1,), (64,), [0])
    assert mem[:32 * 8].view(np.float64).sum() == 32


def test_atomic_add_contention():
    """All threads hammer one counter; the total is exact."""
    b = IRBuilder("k")
    counter = b.param("counter", dtypes.I64, pointer=True)
    b.atomic("add", b.elem_addr(counter, 0, dtypes.I64),
             b.operand(1, dtypes.I64))
    mem, stats = _exec(b.build(), (16,), (256,), [0])
    assert mem[:8].view(np.int64)[0] == 16 * 256
    assert stats.atomic_ops == 16 * 256


def test_atomic_add_returns_unique_old_values():
    """With duplicates in one batch, returned old values are a valid
    serialization: all distinct, covering 0..n-1."""
    b = IRBuilder("k")
    counter = b.param("counter", dtypes.I64, pointer=True)
    out = b.param("out", dtypes.I64, pointer=True)
    i = b.global_id()
    old = b.atomic("add", b.elem_addr(counter, 0, dtypes.I64),
                   b.operand(1, dtypes.I64), want_old=True)
    b.store_elem(out, i, old, dtypes.I64)
    mem, _ = _exec(b.build(), (1,), (256,), [0, 64])
    olds = mem[64:64 + 256 * 8].view(np.int64)
    np.testing.assert_array_equal(np.sort(olds), np.arange(256))


def test_atomic_min_max():
    b = IRBuilder("k")
    lo = b.param("lo", dtypes.I64, pointer=True)
    hi = b.param("hi", dtypes.I64, pointer=True)
    i = b.global_id()
    b.atomic("min", b.elem_addr(lo, 0, dtypes.I64), i)
    b.atomic("max", b.elem_addr(hi, 0, dtypes.I64), i)
    mem = np.zeros(1 << 12, dtype=np.uint8)
    mem[:8].view(np.int64)[0] = 10**9
    ex = KernelExecutor(b.build(), 32, mem)
    ex.launch((2,), (128,), [0, 8])
    assert mem[:8].view(np.int64)[0] == 0
    assert mem[8:16].view(np.int64)[0] == 255


def test_atomic_cas_lock_like():
    """Every lane CASes 0->lane+1 on one word; exactly one wins per batch
    step and the winner's id lands in the slot."""
    b = IRBuilder("k")
    slot = b.param("slot", dtypes.I64, pointer=True)
    won = b.param("won", dtypes.I64, pointer=True)
    i = b.global_id()
    old = b.atomic("cas", b.elem_addr(slot, 0, dtypes.I64),
                   b.add(i, b.operand(1, dtypes.I64)),
                   dtype=dtypes.I64, compare=0)
    with b.if_(b.eq(old, 0)):
        b.atomic("add", b.elem_addr(won, 0, dtypes.I64),
                 b.operand(1, dtypes.I64))
    mem, _ = _exec(b.build(), (1,), (128,), [0, 8])
    assert mem[8:16].view(np.int64)[0] == 1  # exactly one winner
    winner = mem[:8].view(np.int64)[0]
    assert 1 <= winner <= 128


def test_float_atomic_add_precision(rng):
    values = rng.random(512)
    b = IRBuilder("k")
    n = b.param("n", dtypes.I64)
    x = b.param("x", dtypes.F64, pointer=True)
    total = b.param("total", dtypes.F64, pointer=True)
    i = b.global_id()
    with b.if_(b.lt(i, n)):
        v = b.load_elem(x, i, dtypes.F64)
        b.atomic("add", b.elem_addr(total, 0, dtypes.F64), v, dtype=dtypes.F64)
    mem = np.zeros(1 << 14, dtype=np.uint8)
    mem[:512 * 8] = values.view(np.uint8)
    ex = KernelExecutor(b.build(), 32, mem)
    ex.launch((2,), (256,), [512, 0, 512 * 8])
    got = mem[512 * 8:512 * 8 + 8].view(np.float64)[0]
    assert np.isclose(got, values.sum())
