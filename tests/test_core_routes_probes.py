"""Route registry integrity and the probe harness."""

import pytest

from repro.core.probes import PROBE_SUITES, Probe, run_probe_suite
from repro.core.routes import all_routes, routes_for
from repro.enums import (
    Language,
    Maturity,
    Mechanism,
    Model,
    Provider,
    Vendor,
    all_cells,
)


def test_registry_exceeds_fifty_routes():
    assert len(all_routes()) > 50


def test_route_ids_unique_and_structured():
    routes = all_routes()
    ids = [r.route_id for r in routes]
    assert len(set(ids)) == len(ids)
    prefix = {Vendor.NVIDIA: "nv-", Vendor.AMD: "amd-", Vendor.INTEL: "intel-"}
    for r in routes:
        assert r.route_id.startswith(prefix[r.vendor]), r.route_id


def test_every_route_has_a_known_probe_suite():
    for r in all_routes():
        assert r.probe_suite in PROBE_SUITES, r.route_id


def test_probe_suites_reference_real_methods():
    """Every probe method must exist on the runtime its routes build."""
    from repro.gpu import System

    system = System.default()
    checked = set()
    for route in all_routes():
        key = (type(route.runtime_factory), route.probe_suite)
        if key in checked:
            continue
        checked.add(key)
        runtime = route.runtime_factory(system.device(route.vendor))
        for probe in PROBE_SUITES[route.probe_suite]:
            assert hasattr(runtime, probe.method), (
                f"{route.route_id}: runtime lacks {probe.method}"
            )


def test_routes_for_cell_filtering():
    cuda_nv = routes_for(Vendor.NVIDIA, Model.CUDA, Language.CPP)
    assert {r.route_id for r in cuda_nv} == {
        "nv-cuda-cpp-nvcc", "nv-cuda-cpp-nvhpc", "nv-cuda-cpp-clang"}
    assert routes_for(Vendor.INTEL, Model.SYCL, Language.FORTRAN) == []


def test_native_models_have_native_vendor_routes():
    natives = [
        (Vendor.NVIDIA, Model.CUDA, Provider.NVIDIA),
        (Vendor.AMD, Model.HIP, Provider.AMD),
        (Vendor.INTEL, Model.SYCL, Provider.INTEL),
    ]
    for vendor, model, provider in natives:
        routes = routes_for(vendor, model, Language.CPP)
        assert any(
            r.provider is provider and r.mechanism is Mechanism.NATIVE
            and r.maturity is Maturity.PRODUCTION
            for r in routes
        ), (vendor, model)


def test_research_and_unmaintained_routes_flagged():
    by_id = {r.route_id: r for r in all_routes()}
    assert by_id["amd-cuda-f-gpufort"].maturity is Maturity.RESEARCH
    assert by_id["intel-cuda-cpp-chipstar"].maturity is Maturity.RESEARCH
    assert by_id["intel-cuda-cpp-zluda"].maturity is Maturity.UNMAINTAINED
    assert by_id["amd-py-numba"].maturity is Maturity.UNMAINTAINED
    assert by_id["amd-std-cpp-rocstdpar"].maturity is Maturity.EXPERIMENTAL


def test_translation_routes_marked():
    by_id = {r.route_id: r for r in all_routes()}
    for route_id in ("amd-cuda-cpp-hipify", "intel-cuda-cpp-syclomatic",
                     "intel-acc-cpp-acc2omp"):
        assert by_id[route_id].mechanism is Mechanism.TRANSLATION


def test_description_ids_valid():
    from repro.core.descriptions import DESCRIPTIONS

    for r in all_routes():
        assert r.description_id in DESCRIPTIONS


def test_run_probe_suite_counts(system):
    route = next(r for r in all_routes() if r.route_id == "nv-cuda-cpp-nvcc")
    result = run_probe_suite(route, system.device(Vendor.NVIDIA))
    assert result.total == 7
    assert result.passed == 7
    assert result.coverage == 1.0
    assert not result.failures


def test_run_probe_suite_records_failures(system):
    route = next(r for r in all_routes()
                 if r.route_id == "nv-omp-cpp-nvhpc")
    result = run_probe_suite(route, system.device(Vendor.NVIDIA))
    assert result.passed == 6 and result.total == 10
    failed_labels = {o.probe.label for o in result.failures}
    assert "metadirective (5.0)" in failed_labels
    for outcome in result.failures:
        assert "UnsupportedFeatureError" in outcome.error


def test_run_probe_suite_with_subset(system):
    route = next(r for r in all_routes() if r.route_id == "nv-cuda-cpp-nvcc")
    subset = (Probe("just kernels", "probe_kernels"),)
    result = run_probe_suite(route, system.device(Vendor.NVIDIA), subset)
    assert result.total == 1 and result.passed == 1


def test_fresh_runtime_per_probe(system):
    """Probe isolation: a runtime-corrupting probe must not leak state."""
    route = next(r for r in all_routes() if r.route_id == "intel-sycl-cpp-dpcpp")
    device = system.device(Vendor.INTEL)
    first = run_probe_suite(route, device)
    second = run_probe_suite(route, device)
    assert first.coverage == second.coverage == 1.0


def test_simulator_bugs_propagate(system):
    """Non-ReproError exceptions are not swallowed as probe failures."""

    class Exploding:
        def probe_kernels(self):
            raise ZeroDivisionError("simulator bug")

    from repro.core.routes import Route

    route = Route(
        route_id="x", vendor=Vendor.NVIDIA, model=Model.CUDA,
        language=Language.CPP, provider=Provider.NVIDIA,
        mechanism=Mechanism.NATIVE, maturity=Maturity.PRODUCTION,
        label="x", via="x", probe_suite="cuda_cpp",
        runtime_factory=lambda device: Exploding(), description_id=1,
    )
    probes = (Probe("k", "probe_kernels"),)
    with pytest.raises(ZeroDivisionError):
        run_probe_suite(route, system.device(Vendor.NVIDIA), probes)


def test_all_51_cells_covered_or_deliberately_empty():
    from repro.data.paper_matrix import PAPER_MATRIX
    from repro.enums import SupportCategory

    for cell in all_cells():
        has_routes = bool(routes_for(*cell))
        expect_support = PAPER_MATRIX[cell].primary is not SupportCategory.NONE
        assert has_routes == expect_support, cell
