"""Tests for perfstat: the static perf-matrix predictor + cross-check.

The load-bearing properties:

1. the static matrix covers all 51 cells with **zero kernel
   executions** (stream totals and interpreter totals unchanged);
2. its viability structure equals the measured matrix's — the same
   routes work, the same five fail, for the same reasons;
3. the differential cross-check against a measured matrix is clean:
   no PS01 prediction errors, no PS02 best-route mismatches, no PS04
   structure mismatches — one PS03 per supported cell;
4. the dynamic portability reductions (cascade, Pennycook ⫫) run on
   the static matrix unchanged and agree on the supported/unsupported
   structure.
"""

from __future__ import annotations

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.perfstat import (
    PS_TOLERANCE,
    build_static_perf_matrix,
    cross_check_perf,
    library_cost_report,
    lint_perf,
    perf_agreement_summary,
    stream_kernel_costs,
)
from repro.core.matrix import build_matrix
from repro.enums import Language, Model, Vendor, all_cells
from repro.isa.interpreter import snapshot_interpreter_totals
from repro.perfport import PerfParams, build_perf_matrix, portability_report
from repro.workloads.babelstream import reset_stream_totals, stream_totals

PARAMS = PerfParams(n=1 << 12, reps=2)

#: Routes the stream adapters cannot drive, with the static reasons the
#: predictor must reproduce (the dynamic runs fail the same five).
EXPECTED_NON_VIABLE = {
    "amd-acc-cpp-acc2omp": "TranslationError",
    "intel-acc-cpp-acc2omp": "TranslationError",
    "intel-acc-f-acc2omp": "TranslationError",
    "amd-acc-f-gpufort": "TranslationError",
    "amd-py-pyhip": "lacks feature",
}


@pytest.fixture(scope="module")
def dynamic():
    """A measured perf matrix as cross-check ground truth."""
    return build_perf_matrix(build_matrix(), params=PARAMS)


@pytest.fixture(scope="module")
def static():
    return build_static_perf_matrix(PARAMS)


def test_static_build_executes_zero_kernels():
    reset_stream_totals()
    stream_kernel_costs.cache_clear()
    before = snapshot_interpreter_totals()
    matrix = build_static_perf_matrix(PerfParams(n=1 << 13, reps=2))
    after = snapshot_interpreter_totals()
    assert matrix.n_cells == 51
    assert stream_totals() == {"runs": 0, "kernels": 0}
    assert after.launches == before.launches
    assert after.stats.instructions == before.stats.instructions


def test_covers_all_cells_with_registry_order_routes(static, dynamic):
    assert set(static.cells) == set(all_cells())
    for key in all_cells():
        got = [r.route_id for r in static.cells[key].routes]
        want = [r.route_id for r in dynamic.cells[key].routes]
        assert got == want, key


def test_non_viable_routes_match_the_dynamic_failures(static, dynamic):
    non_viable = {r.route_id: r.reason
                  for c in static.cells.values()
                  for r in c.routes if not r.viable}
    assert set(non_viable) == set(EXPECTED_NON_VIABLE)
    for route_id, fragment in EXPECTED_NON_VIABLE.items():
        assert fragment in non_viable[route_id], route_id
    dynamic_failed = {r.route_id
                      for c in dynamic.cells.values()
                      for r in c.routes if not (r.ok and r.verified)}
    assert dynamic_failed == set(non_viable)


def test_viability_structure_matches_cell_by_cell(static, dynamic):
    for key in all_cells():
        s_ok = {r.route_id for r in static.cells[key].routes if r.viable}
        d_ok = {r.route_id for r in dynamic.cells[key].routes
                if r.ok and r.verified}
        assert s_ok == d_ok, key
        assert static.cells[key].supported == dynamic.cells[key].supported


def test_cross_check_is_clean(static, dynamic):
    report = cross_check_perf(static, dynamic)
    assert report.errors == []          # no PS01: predictions within 2x
    assert report.warnings == []        # no PS02/PS04
    supported = sum(1 for c in dynamic.cells.values() if c.supported)
    summary = perf_agreement_summary(report)
    assert summary == {
        "cells_agreeing": supported,
        "prediction_errors": 0,
        "best_route_mismatches": 0,
        "structure_mismatches": 0,
        "conservative_kernels": 0,
        "suppressed_divergences": 0,
    }
    assert supported == 40


def test_best_route_predicted_on_every_supported_cell(static, dynamic):
    for key in all_cells():
        sbest = static.cells[key].best_route(static.params)
        dbest = dynamic.cells[key].best_route(dynamic.params)
        assert (sbest is None) == (dbest is None), key
        if sbest is not None:
            assert sbest.route_id == dbest.route_id, key


def test_native_route_prediction_is_machine_precise(static, dynamic):
    """On the NVIDIA CUDA C++ native route the cost model's counters
    are bit-equal to the interpreter's, so predicted == measured."""
    key = (Vendor.NVIDIA, Model.CUDA, Language.CPP)
    sroute = static.cells[key].routes[0]
    droute = dynamic.cells[key].routes[0]
    assert sroute.route_id == droute.route_id == "nv-cuda-cpp-nvcc"
    for kernel, predicted in sroute.seconds.items():
        assert predicted == pytest.approx(droute.best_seconds[kernel],
                                          rel=1e-12), kernel


def test_portability_reductions_run_unchanged_on_the_static_matrix(
        static, dynamic):
    srows = {(r.model, r.language): r for r in portability_report(static)}
    drows = {(r.model, r.language): r for r in portability_report(dynamic)}
    assert set(srows) == set(drows)
    for col, srow in srows.items():
        drow = drows[col]
        assert srow.supported_everywhere == drow.supported_everywhere, col
        assert (srow.metric > 0) == (drow.metric > 0), col
        assert [e.route_id for e in srow.cascade] == \
            [e.route_id for e in drow.cascade], col


def test_predicted_efficiency_bounds(static):
    for cell in static.cells.values():
        for route in cell.routes:
            eff = route.efficiency(static.params, cell.peak_gbs)
            if route.viable:
                assert 0.0 < eff < 1.0
            else:
                assert eff == 0.0


def test_translated_routes_carry_their_translation_hops(static):
    amd_cuda = static.cells[(Vendor.AMD, Model.CUDA, Language.CPP)]
    hipify = [r for r in amd_cuda.routes if r.translated]
    assert hipify and all(r.translation_hops for r in hipify)
    native = static.cells[(Vendor.NVIDIA, Model.CUDA, Language.CPP)]
    assert all(r.translation_hops == () for r in native.routes
               if not r.translated)


def test_library_cost_report_flags_only_the_data_dependent_kernel():
    report = library_cost_report()
    assert [d.kernel for d in report.diagnostics] == ["bitonic_step"]
    d = report.diagnostics[0]
    assert d.code == "PS05" and d.severity == Severity.INFO


def test_lint_perf_end_to_end(dynamic):
    report = lint_perf(dynamic)
    assert report.errors == []
    codes = {d.code for d in report.diagnostics}
    assert codes <= {"PS03", "PS05", "PS06"}
    assert PS_TOLERANCE == 2.0  # the documented gate the report is cut at
