"""Property-based fuzzing of the kernel DSL.

Random arithmetic expression trees are compiled through the full
pipeline (DSL -> IR -> verify -> optimize -> legalize -> vectorized
interpreter) and checked against direct NumPy evaluation of the same
tree.  This exercises operand coercion, constant folding, DCE, and the
interpreter's arithmetic in combination, which the unit tests cover
only piecewise.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compilers.passes import optimize_kernel
from repro.enums import ISA
from repro.isa import IRBuilder, KernelExecutor, ModuleIR, dtypes, legalize

# Expression tree nodes: ("var", i) | ("const", value) | (op, left, right)
_BIN_OPS = ("add", "sub", "mul", "min", "max")


def _exprs(depth: int):
    leaf = st.one_of(
        st.tuples(st.just("var"), st.integers(0, 2)),
        st.tuples(st.just("const"),
                  st.floats(min_value=-8, max_value=8, allow_nan=False,
                            allow_infinity=False)),
    )
    if depth == 0:
        return leaf
    sub = _exprs(depth - 1)
    node = st.tuples(st.sampled_from(_BIN_OPS), sub, sub)
    return st.one_of(leaf, node)


def _eval_numpy(expr, variables):
    kind = expr[0]
    if kind == "var":
        return variables[expr[1]]
    if kind == "const":
        return np.full_like(variables[0], expr[1])
    op, left, right = expr
    a = _eval_numpy(left, variables)
    b = _eval_numpy(right, variables)
    return {
        "add": np.add, "sub": np.subtract, "mul": np.multiply,
        "min": np.minimum, "max": np.maximum,
    }[op](a, b)


def _emit_ir(builder, expr, loaded):
    kind = expr[0]
    if kind == "var":
        return loaded[expr[1]]
    if kind == "const":
        return builder.operand(expr[1], dtypes.F64)
    op, left, right = expr
    a = _emit_ir(builder, left, loaded)
    b = _emit_ir(builder, right, loaded)
    return builder.binop(op, a, b)


@settings(max_examples=60, deadline=None)
@given(_exprs(depth=3), st.integers(1, 300), st.sampled_from(list(ISA)),
       st.booleans())
def test_expression_trees_match_numpy(expr, n, isa, optimize):
    """Compile a random expression and compare with NumPy elementwise."""
    b = IRBuilder("fuzz")
    n_reg = b.param("n", dtypes.I64)
    var_regs = [b.param(f"v{i}", dtypes.F64, pointer=True) for i in range(3)]
    out_reg = b.param("out", dtypes.F64, pointer=True)
    i = b.global_id()
    with b.if_(b.lt(i, n_reg)):
        loaded = [b.load_elem(reg, i, dtypes.F64) for reg in var_regs]
        result = _emit_ir(b, expr, loaded)
        b.store_elem(out_reg, i, b.cvt(result, dtypes.F64), dtypes.F64)
    kernel = b.build()
    if optimize:
        kernel, _ = optimize_kernel(kernel, level=2)
    mod = ModuleIR("fz")
    mod.add(kernel)
    binary = legalize(mod, isa, "fuzz")

    rng = np.random.default_rng(hash((n, isa.value)) % (2**31))
    variables = [rng.uniform(-4, 4, n) for _ in range(3)]
    mem = np.zeros(1 << 15, dtype=np.uint8)
    addrs = []
    cursor = 0
    for values in variables:
        mem[cursor:cursor + n * 8] = values.view(np.uint8)
        addrs.append(cursor)
        cursor += ((n * 8 + 63) // 64) * 64
    out_addr = cursor
    ex = KernelExecutor(binary.kernel("fuzz"), binary.warp_size, mem)
    ex.launch(((n + 255) // 256,), (256,), [n] + addrs + [out_addr])
    got = mem[out_addr:out_addr + n * 8].view(np.float64)
    expected = _eval_numpy(expr, variables)
    np.testing.assert_allclose(got, expected, rtol=1e-12, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=100),
       st.integers(1, 7))
def test_integer_modular_chain(values, divisor):
    """Random int data through div/rem chains matches C semantics."""
    n = len(values)
    b = IRBuilder("imod")
    n_reg = b.param("n", dtypes.I64)
    x = b.param("x", dtypes.I64, pointer=True)
    out = b.param("out", dtypes.I64, pointer=True)
    i = b.global_id()
    with b.if_(b.lt(i, n_reg)):
        v = b.load_elem(x, i, dtypes.I64)
        q = b.binop("div", v, b.operand(divisor, dtypes.I64))
        r = b.binop("rem", v, b.operand(divisor, dtypes.I64))
        # v == q*divisor + r must hold exactly (C division identity).
        recon = b.add(b.mul(q, b.operand(divisor, dtypes.I64)), r)
        b.store_elem(out, i, recon, dtypes.I64)
    kernel = b.build()
    data = np.array(values, dtype=np.int64)
    mem = np.zeros(1 << 13, dtype=np.uint8)
    mem[:n * 8] = data.view(np.uint8)
    ex = KernelExecutor(kernel, 32, mem)
    ex.launch(((n + 63) // 64,), (64,), [n, 0, 4096])
    got = mem[4096:4096 + n * 8].view(np.int64)
    np.testing.assert_array_equal(got, data)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 500), st.integers(1, 64))
def test_grid_stride_covers_any_geometry(n, blocks):
    """A grid-stride loop writes every element once for any launch size."""
    b = IRBuilder("gs")
    n_reg = b.param("n", dtypes.I64)
    out = b.param("out", dtypes.I64, pointer=True)
    i = b.global_id()
    stride = b.global_size()
    cursor = b.named("c", dtypes.I64)
    b.mov(cursor, i)
    with b.while_() as loop:
        with loop.cond():
            loop.set_cond(b.lt(cursor, n_reg))
        old = b.load_elem(out, cursor, dtypes.I64)
        b.store_elem(out, cursor, b.add(old, b.operand(1, dtypes.I64)),
                     dtypes.I64)
        b.mov(cursor, b.add(cursor, stride))
    kernel = b.build()
    mem = np.zeros(1 << 13, dtype=np.uint8)
    ex = KernelExecutor(kernel, 32, mem)
    ex.launch((blocks,), (32,), [n, 0])
    got = mem[:n * 8].view(np.int64)
    np.testing.assert_array_equal(got, np.ones(n, dtype=np.int64))
