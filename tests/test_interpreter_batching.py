"""Differential tests for multi-block batching.

Every shared-memory / barrier / shuffle / atomic kernel in the library
must produce bit-identical memory results and identical work counters
whether the interpreter runs one block per batch (the historical
block-isolated path, forced via ``max_blocks_per_batch=1``), a few
blocks, or as many as ``chunk_lanes`` allows.  Divergent barriers must
raise under every batch width.
"""

import numpy as np
import pytest

from repro.errors import DivergentBarrierError
from repro.isa import IRBuilder, KernelExecutor, dtypes
from repro.isa.instructions import MemSpace
from repro.kernels import BLOCK, KERNEL_LIBRARY

#: Batch widths under test: block-isolated, small, unlimited.
WIDTHS = (1, 4, None)

N = 4096
GRID = 16  # blocks; grid-stride kernels cover N with any grid


def _setup(name, rng):
    """Return (kernel_ir, grid, block, args, initial_memory_image)."""
    mem = np.zeros(1 << 17, dtype=np.uint8)
    if name in ("reduce_sum", "reduce_max", "warp_reduce_sum"):
        x = rng.random(N)
        mem[: N * 8] = x.view(np.uint8)
        if name == "reduce_max":
            mem[N * 8 : N * 8 + 8] = np.array([-1.0e308]).view(np.uint8)
        args = [N, 0, N * 8]
    elif name == "stream_dot":
        a = rng.random(N)
        b = rng.random(N)
        mem[: N * 8] = a.view(np.uint8)
        mem[N * 8 : 2 * N * 8] = b.view(np.uint8)
        args = [N, 0, N * 8, 2 * N * 8]
    elif name == "histogram":
        data = rng.integers(0, 1 << 20, N, dtype=np.int32)
        mem[: N * 4] = data.view(np.uint8)
        args = [N, 17, 0, N * 4]
    else:  # pragma: no cover - parametrization mismatch
        raise AssertionError(name)
    return KERNEL_LIBRARY[name].ir, (GRID,), (BLOCK,), args, mem


def _counters(stats):
    """Work counters that must not depend on batch width."""
    return (stats.threads, stats.instructions, stats.flops,
            stats.bytes_loaded, stats.bytes_stored,
            stats.atomic_ops, stats.barriers)


@pytest.mark.parametrize(
    "name",
    ["stream_dot", "reduce_sum", "reduce_max", "warp_reduce_sum",
     "histogram"],
)
def test_batch_width_is_unobservable(name, rng):
    ir, grid, block, args, image = _setup(name, rng)
    results = []
    for width in WIDTHS:
        mem = image.copy()
        ex = KernelExecutor(ir, 32, mem, max_blocks_per_batch=width)
        stats = ex.launch(grid, block, args)
        results.append((mem, stats))

    (mem1, st1), (mem4, st4), (memN, stN) = results
    np.testing.assert_array_equal(mem1, mem4)
    np.testing.assert_array_equal(mem1, memN)
    assert _counters(st1) == _counters(st4) == _counters(stN)
    # The widths genuinely differ in batching: isolated runs one block
    # per batch, the unlimited path fits the whole grid in one.
    assert st1.batches == GRID
    assert stN.batches == 1
    assert st1.batches > st4.batches > stN.batches


@pytest.mark.parametrize("width", WIDTHS)
def test_divergent_barrier_raises_under_every_width(width):
    b = IRBuilder("k")
    b.param("out", dtypes.F64, pointer=True)
    t = b.cvt(b.special("tid.x"), dtypes.I64)
    with b.if_(b.lt(t, 16)):
        b.barrier()
    mem = np.zeros(1 << 12, dtype=np.uint8)
    ex = KernelExecutor(b.build(), 32, mem, max_blocks_per_batch=width)
    with pytest.raises(DivergentBarrierError, match="16 of 64"):
        ex.launch((4,), (64,), [0])


@pytest.mark.parametrize("width", WIDTHS)
def test_single_divergent_block_detected(width):
    """Divergence localized to one block is caught per block."""
    b = IRBuilder("k")
    b.param("out", dtypes.F64, pointer=True)
    blk = b.cvt(b.special("ctaid.x"), dtypes.I64)
    t = b.cvt(b.special("tid.x"), dtypes.I64)
    with b.if_(b.logical_and(b.eq(blk, 2), b.lt(t, 8))):
        b.barrier()
    mem = np.zeros(1 << 12, dtype=np.uint8)
    ex = KernelExecutor(b.build(), 32, mem, max_blocks_per_batch=width)
    with pytest.raises(DivergentBarrierError, match="in block 2"):
        ex.launch((4,), (32,), [0])


@pytest.mark.parametrize("width", WIDTHS)
def test_whole_block_conditional_barrier_is_legal(width):
    """A barrier skipped by entire blocks is not divergent."""
    b = IRBuilder("k")
    out = b.param("out", dtypes.F64, pointer=True)
    blk = b.cvt(b.special("ctaid.x"), dtypes.I64)
    with b.if_(b.eq(blk, 2)):
        b.barrier()
    b.store_elem(out, b.global_id(), b.cvt(blk, dtypes.F64), dtypes.F64)
    mem = np.zeros(1 << 12, dtype=np.uint8)
    ex = KernelExecutor(b.build(), 32, mem, max_blocks_per_batch=width)
    stats = ex.launch((4,), (32,), [0])
    # Only the one block that reached the barrier is counted.
    assert stats.barriers == 1
    got = mem[: 128 * 8].view(np.float64)
    np.testing.assert_array_equal(got, np.repeat(np.arange(4.0), 32))


def test_geometry_cache_reused_across_launches(rng):
    ir, grid, block, args, image = _setup("reduce_sum", rng)
    ex = KernelExecutor(ir, 32, image.copy(), max_blocks_per_batch=4)
    ex.launch(grid, block, args)
    misses_after_first = ex.geom_cache_misses
    assert ex.geom_cache_hits == 0
    ex.launch(grid, block, args)
    assert ex.geom_cache_misses == misses_after_first
    assert ex.geom_cache_hits == misses_after_first


def test_shared_rows_are_block_private(rng):
    """Each batched block sees its own zeroed shared row.

    reduce_sum over data where each block's partial sum is distinctive
    would corrupt if two blocks shared a tile; equality with the serial
    result (tested above) plus this direct small case pin it down.
    """
    b = IRBuilder("k")
    out = b.param("out", dtypes.F64, pointer=True)
    tile = b.shared_alloc(dtypes.F64, 1)
    blk = b.cvt(b.special("ctaid.x"), dtypes.F64)
    b.store_elem(tile, b.operand(0, dtypes.I64), blk, dtypes.F64,
                 space=MemSpace.SHARED)
    b.barrier()
    back = b.load_elem(tile, b.operand(0, dtypes.I64), dtypes.F64,
                       space=MemSpace.SHARED)
    b.store_elem(out, b.global_id(), back, dtypes.F64)
    mem = np.zeros(1 << 12, dtype=np.uint8)
    ex = KernelExecutor(b.build(), 32, mem)
    stats = ex.launch((8,), (16,), [0])
    assert stats.batches == 1  # all 8 blocks batched together
    got = mem[: 128 * 8].view(np.float64)
    np.testing.assert_array_equal(got, np.repeat(np.arange(8.0), 16))
