"""Renderers, the advisor, and the command-line interface."""

import pytest

from repro.core.advisor import Advisor
from repro.core.render import (
    paper_lookup,
    render_html,
    render_markdown,
    render_tex,
    render_text,
    render_yaml,
)
from repro.enums import Language, Model, SupportCategory, Vendor

C = SupportCategory


# -- renderers ----------------------------------------------------------------


def test_text_layout_matches_figure1():
    text = render_text(paper_lookup())
    lines = text.splitlines()
    assert any(line.startswith("AMD") for line in lines)
    assert any(line.startswith("Intel") for line in lines)
    assert any(line.startswith("NVIDIA") for line in lines)
    # NVIDIA native CUDA is the first cell of the NVIDIA row.
    nvidia_row = next(line for line in lines if line.startswith("NVIDIA"))
    assert nvidia_row.split()[1] == C.FULL.symbol
    # Legend includes all six categories.
    for cat in C:
        assert cat.label in text


def test_text_dual_rating_rendered():
    text = render_text(paper_lookup())
    nvidia_row = next(line for line in text.splitlines()
                      if line.startswith("NVIDIA"))
    assert C.FULL.symbol + C.NONVENDOR.symbol in nvidia_row  # Python cell


def test_markdown_table_shape():
    md = render_markdown(paper_lookup())
    header = next(line for line in md.splitlines() if line.startswith("| Vendor"))
    assert header.count("|") == 19  # vendor + 17 columns + trailing
    assert "CUDA C++" in header
    assert "Python" in header
    assert md.count("\n| ") >= 3


def test_html_is_wellformed_enough():
    html = render_html(paper_lookup())
    assert html.count("<tr>") == 4  # header + three vendor rows
    assert html.count("</html>") == 1
    assert "full support" in html


def test_tex_macros_and_rows():
    tex = render_tex(paper_lookup())
    assert "\\begin{tabular}" in tex
    assert tex.count("\\\\") >= 4
    # the dual-rated NVIDIA Python cell renders both macros side by side
    assert "\\fullsupport\\nonvendorsupport" in tex


def test_tex_macro_counts_exact():
    tex = render_tex(paper_lookup())
    counts = {
        "\\fullsupport": 13,
        "\\indirectsupport": 3,
        "\\nosupport": 9,
    }
    for macro, expected in counts.items():
        assert tex.count(macro) == expected, macro


def test_yaml_round_structure():
    yaml_text = render_yaml(paper_lookup())
    for vendor in ("AMD", "Intel", "NVIDIA"):
        assert f"{vendor}:" in yaml_text
    assert "cuda-cpp: full support" in yaml_text
    assert "python-python: full support / non-vendor good support" in yaml_text


# -- advisor ------------------------------------------------------------------


@pytest.fixture(scope="module")
def advisor():
    return Advisor(minimum=SupportCategory.LIMITED)  # paper-rating backed


def test_models_for_platform_sorted(advisor):
    recs = advisor.models_for_platform(Vendor.NVIDIA, Language.CPP)
    ranks = [r.category.rank for r in recs]
    assert ranks == sorted(ranks, reverse=True)
    assert recs[0].category is C.FULL


def test_models_for_platform_respects_minimum():
    strict = Advisor(minimum=SupportCategory.FULL)
    recs = strict.models_for_platform(Vendor.AMD, Language.CPP)
    assert {r.model for r in recs} == {Model.HIP}


def test_platforms_for_model(advisor):
    recs = advisor.platforms_for_model(Model.OPENACC, Language.CPP)
    by_vendor = {r.vendor: r.category for r in recs}
    assert by_vendor[Vendor.NVIDIA] is C.FULL
    assert by_vendor[Vendor.AMD] is C.NONVENDOR
    assert by_vendor[Vendor.INTEL] is C.LIMITED


def test_portable_models_cpp_vs_fortran(advisor):
    cpp = advisor.portable_models(Language.CPP, SupportCategory.LIMITED)
    assert Model.PYTHON not in cpp  # not a C++ column
    assert {Model.CUDA, Model.SYCL, Model.OPENMP, Model.KOKKOS} <= set(cpp)
    fortran_some = advisor.portable_models(Language.FORTRAN,
                                           SupportCategory.SOME)
    assert fortran_some == [Model.OPENMP]  # the paper's conclusion


def test_migration_plan_with_route(advisor):
    steps = advisor.migration_plan(Model.CUDA, Language.CPP, Vendor.AMD)
    text = "\n".join(steps)
    assert "indirect good support" in text
    assert "description 18" in text


def test_migration_plan_no_route(advisor):
    steps = advisor.migration_plan(Model.CUDA, Language.FORTRAN, Vendor.INTEL)
    text = "\n".join(steps)
    assert "no route exists" in text
    assert "candidate" in text


def test_advisor_over_derived_matrix(system):
    """The advisor also runs over an empirically derived matrix."""
    from repro.core.matrix import build_matrix
    from repro.core.probes import PROBE_SUITES

    # Restrict probing to the basic probes for speed; ratings inflate,
    # but the query machinery is what's under test.
    matrix = build_matrix(
        system, probe_filter=lambda p: p.method in (
            "probe_kernels", "probe_target", "probe_queues",
            "probe_parallel", "probe_for_each", "probe_do_concurrent",
            "probe_range_for", "probe_exec", "probe_ufuncs"),
    )
    adv = Advisor(matrix, minimum=SupportCategory.LIMITED)
    recs = adv.platforms_for_model(Model.HIP, Language.CPP)
    assert recs[0].vendor in (Vendor.AMD, Vendor.NVIDIA)
    assert "hipcc" in recs[0].via


# -- CLI ------------------------------------------------------------------------


def test_cli_table(capsys):
    from repro.cli import main

    assert main(["table", "--format", "text"]) == 0
    out = capsys.readouterr().out
    assert "NVIDIA" in out and "full support" in out


def test_cli_table_formats(capsys):
    from repro.cli import main

    for fmt, marker in (("markdown", "| Vendor |"), ("html", "<table>"),
                        ("tex", "\\begin{tabular}"), ("yaml", "AMD:")):
        assert main(["table", "--format", fmt]) == 0
        assert marker in capsys.readouterr().out


def test_cli_describe(capsys):
    from repro.cli import main

    assert main(["describe", "amd", "cuda", "c++"]) == 0
    out = capsys.readouterr().out
    assert "[18]" in out
    assert "HIPIFY" in out
    assert "routes:" in out


def test_cli_describe_no_support(capsys):
    from repro.cli import main

    assert main(["describe", "intel", "hip", "fortran"]) == 0
    out = capsys.readouterr().out
    assert "none (no support)" in out


def test_cli_advise_variants(capsys):
    from repro.cli import main

    assert main(["advise"]) == 0
    assert "portable models" in capsys.readouterr().out
    assert main(["advise", "--vendor", "amd", "--language", "fortran"]) == 0
    assert "models usable on AMD" in capsys.readouterr().out
    assert main(["advise", "--model", "sycl", "--language", "c++"]) == 0
    assert "platforms for SYCL" in capsys.readouterr().out


def test_cli_routes(capsys):
    from repro.cli import main

    assert main(["routes"]) == 0
    out = capsys.readouterr().out
    assert "registered routes" in out
    assert "nv-cuda-cpp-nvcc" in out


def test_cli_rejects_bad_arguments():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["describe", "3dfx", "cuda", "c++"])
    with pytest.raises(SystemExit):
        main(["table", "--format", "pdf"])


def test_cli_conformance(capsys):
    from repro.cli import main

    assert main(["conformance", "--model", "openacc",
                 "--language", "fortran"]) == 0
    out = capsys.readouterr().out
    assert "cray-ce" in out and "2.6" in out and "full" in out


def test_cli_changelog(capsys):
    from repro.cli import main

    assert main(["changelog"]) == 0
    out = capsys.readouterr().out
    assert "2022" in out and "chipStar" in out or "4 of 51" in out
