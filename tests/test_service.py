"""Tests for the matrix evaluation service.

The load-bearing property: the concurrent scheduler is **bit-identical
to the sequential build at every worker count**, with and without the
persistent store, and under injected faults.  Everything else — the
store's content addressing, the serving layer's two transports, the
metrics registry — is tested against that same fixed ground truth.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.analysis import analyze_module
from repro.core.matrix import build_matrix
from repro.core.render import RENDERERS, matrix_lookup
from repro.enums import Language, Model, SupportCategory, Vendor, all_cells
from repro.isa.interpreter import snapshot_interpreter_totals
from repro.isa.module import ModuleIR
from repro.kernels import KERNEL_LIBRARY
from repro.service import (
    BuildCancelled,
    InProcessClient,
    JobKind,
    JobTimeout,
    MatrixScheduler,
    MatrixService,
    MetricsRegistry,
    ResultStore,
    SchedulerError,
    WorkerCrash,
    build_matrix_concurrent,
    cell_from_dict,
    cell_to_dict,
    environment_fingerprint,
    make_server,
)
from repro.service.metrics import Counter, Gauge, Histogram


@pytest.fixture(scope="module")
def seq_matrix():
    """The sequential ground truth every concurrency test compares to."""
    return build_matrix()


@pytest.fixture(scope="module")
def warm_store_dir(tmp_path_factory, seq_matrix):
    """A store directory populated by one cold scheduled build."""
    root = tmp_path_factory.mktemp("matrix-store")
    report = build_matrix_concurrent(4, store=str(root))
    assert report.matrix.cells == seq_matrix.cells
    assert report.cells_evaluated == 51
    return root


def _render_text(matrix) -> str:
    return RENDERERS["text"](matrix_lookup(matrix), title="t")


def _lint_json() -> str:
    module = ModuleIR(name="kernel_library")
    for fn in KERNEL_LIBRARY.values():
        module.add(fn.ir)
    return analyze_module(module).to_json()


def _transval_json() -> str:
    from repro.analysis.transval import shipped_translators, validate_all

    return validate_all(shipped_translators()).to_json()


# -- concurrent determinism ---------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 4, 16])
def test_concurrent_build_bit_identical(jobs, seq_matrix):
    report = build_matrix_concurrent(jobs)
    assert report.jobs == jobs
    assert report.cells_evaluated == 51
    # Identical CellResults (routes, suites, outcomes, categories)...
    assert report.matrix.cells == seq_matrix.cells
    # ...and the identical rendered Figure 1.
    assert _render_text(report.matrix) == _render_text(seq_matrix)


def test_diagnostics_identical_across_worker_counts():
    """Concurrent builds must not perturb the analysis layers."""
    lint_before, tv_before = _lint_json(), _transval_json()
    for jobs in (4, 16):
        build_matrix_concurrent(jobs)
        assert _lint_json() == lint_before
        assert _transval_json() == tv_before


def test_scheduler_metrics_cover_all_job_kinds(seq_matrix):
    metrics = MetricsRegistry()
    report = build_matrix_concurrent(4, metrics=metrics)
    assert report.matrix.cells == seq_matrix.cells
    snap = metrics.snapshot()
    for kind in JobKind:
        assert snap["counters"][f"jobs_completed_{kind.value}"] > 0
    assert snap["counters"]["jobs_completed_cell"] == 51
    assert snap["counters"]["probes_executed"] == \
        snap["counters"]["jobs_completed_probe"]
    assert snap["gauges"]["workers"] == 4
    assert snap["histograms"]["job_latency_probe"]["count"] > 0
    assert snap["histograms"]["queue_depth"]["count"] > 0


# -- the persistent result store ----------------------------------------------


def test_warm_store_rerun_executes_zero_probes(warm_store_dir, seq_matrix):
    before = snapshot_interpreter_totals().launches
    metrics = MetricsRegistry()
    report = build_matrix_concurrent(
        4, store=str(warm_store_dir), metrics=metrics)
    assert report.cells_from_store == 51
    assert report.cells_evaluated == 0
    assert metrics.counter("probes_executed").get() == 0
    assert snapshot_interpreter_totals().launches == before
    # Loaded cells reconstruct bit-identically.
    assert report.matrix.cells == seq_matrix.cells
    assert report.store.stats.as_dict()["hits"] == 51


def test_store_invalidates_when_thresholds_change(warm_store_dir):
    from repro.core.classifier import Thresholds

    strict = Thresholds(full=0.99, comprehensive=0.95,
                        indirect=0.90, usable=0.80)
    assert environment_fingerprint(strict) != environment_fingerprint()
    report = build_matrix_concurrent(
        2, store=ResultStore(warm_store_dir, thresholds=strict),
        thresholds=strict)
    # Every lookup missed: different environment, full re-derivation.
    assert report.cells_from_store == 0
    assert report.cells_evaluated == 51
    assert report.matrix.cells == build_matrix(thresholds=strict).cells


def test_store_corrupt_entry_is_a_miss_not_an_error(tmp_path, seq_matrix):
    root = tmp_path / "store"
    build_matrix_concurrent(4, store=str(root))
    store = ResultStore(root)
    victim = store.entries()[0]
    victim.write_text("{not json")
    report = build_matrix_concurrent(4, store=store)
    assert report.cells_from_store == 50
    assert report.cells_evaluated == 1
    assert store.stats.as_dict()["invalid"] == 1
    assert report.matrix.cells == seq_matrix.cells


def test_store_corrupt_entry_logs_path_and_counts_in_metrics(
        tmp_path, caplog):
    """A corrupt entry leaves an audit trail: a structured warning that
    names the entry, plus a ``store_corrupt_entries`` counter."""
    root = tmp_path / "store"
    build_matrix_concurrent(2, store=str(root))
    metrics = MetricsRegistry()
    store = ResultStore(root, metrics=metrics)
    victim = store.entries()[0]
    victim.write_text("{not json")
    cell = next(iter(all_cells()))
    # Find the cell the victim file addresses so the load really hits it.
    for candidate in all_cells():
        if store._path(candidate) == victim:
            cell = candidate
            break
    with caplog.at_level("WARNING", logger="repro.service.store"):
        assert store.load(cell) is None
    assert any(str(victim) in rec.getMessage() and
               "treated as miss" in rec.getMessage()
               for rec in caplog.records)
    assert metrics.counter("store_corrupt_entries").get() == 1
    assert metrics.snapshot()["counters"]["store_corrupt_entries"] == 1


def test_perf_store_corrupt_entry_logs_and_counts(tmp_path, caplog):
    from repro.perfport.store import PerfStore

    metrics = MetricsRegistry()
    store = PerfStore(tmp_path, metrics=metrics)
    cell = (Vendor.NVIDIA, Model.CUDA, Language.CPP)
    store._path(cell).write_text("}garbage")
    with caplog.at_level("WARNING", logger="repro.perfport.store"):
        assert store.load(cell) is None
    assert any("corrupt perf-store entry treated as miss" in
               rec.getMessage() for rec in caplog.records)
    assert metrics.counter("perf_store_corrupt_entries").get() == 1


def test_store_prune_removes_unaddressed_entries(tmp_path):
    root = tmp_path / "store"
    build_matrix_concurrent(4, store=str(root))
    store = ResultStore(root)
    stale = root / "cells" / "stale.000000000000.json"
    stale.write_text("{}")
    assert store.prune() == 1
    assert not stale.exists()
    assert store.prune() == 0  # live entries survive


def test_cell_serialization_roundtrip(seq_matrix):
    for cell in (
        (Vendor.NVIDIA, Model.CUDA, Language.CPP),
        (Vendor.AMD, Model.OPENMP, Language.FORTRAN),
        (Vendor.INTEL, Model.PYTHON, Language.PYTHON),
    ):
        original = seq_matrix.cells[cell]
        rebuilt = cell_from_dict(cell_to_dict(original))
        assert rebuilt == original
        assert rebuilt.primary is original.primary
        assert rebuilt.secondary == original.secondary


# -- timeouts, retries, cancellation ------------------------------------------


def _first_probe_filter(probe):
    """Shrinks each suite to its first probe (fast fault-path builds)."""
    return probe.method in {
        "probe_kernels", "probe_queues", "probe_target", "probe_parallel",
        "probe_for_each", "probe_do_concurrent", "probe_range_for",
        "probe_exec", "probe_ufuncs",
    }


def test_seeded_timeout_succeeds_on_retry(seq_matrix):
    """A probe job that times out twice still yields the correct cell."""
    reference = build_matrix(probe_filter=_first_probe_filter)
    fails: dict[str, int] = {}

    def hook(job, attempt):
        if job.kind is JobKind.PROBE and job.route.route_id == "nv-cuda-cpp-nvcc":
            n = fails.setdefault(job.label, 0)
            if n < 2:
                fails[job.label] = n + 1
                raise JobTimeout(f"injected timeout #{n + 1} for {job.label}")

    metrics = MetricsRegistry()
    report = build_matrix_concurrent(
        4, probe_filter=_first_probe_filter, metrics=metrics,
        fault_hook=hook, backoff_s=0.001, max_retries=2)
    assert report.matrix.cells == reference.cells
    assert metrics.counter("jobs_timeout").get() == 2
    assert metrics.counter("jobs_retried").get() == 2


def test_retries_exhausted_raises_scheduler_error():
    def hook(job, attempt):
        if job.kind is JobKind.PROBE:
            raise JobTimeout("injected permanent timeout")

    with pytest.raises(SchedulerError, match="probe"):
        build_matrix_concurrent(
            2, probe_filter=_first_probe_filter, fault_hook=hook,
            backoff_s=0.0, max_retries=1)


def test_cancellation_stops_the_build():
    box: dict[str, MatrixScheduler] = {}

    def hook(job, attempt):
        if job.kind is JobKind.PROBE:
            box["scheduler"].cancel()

    scheduler = MatrixScheduler(
        4, probe_filter=_first_probe_filter, fault_hook=hook, backoff_s=0.0)
    box["scheduler"] = scheduler
    with pytest.raises(BuildCancelled):
        scheduler.build()


# -- the serving layer --------------------------------------------------------


@pytest.fixture(scope="module")
def service(warm_store_dir):
    """A service over the warm store (startup serves without probing)."""
    svc = MatrixService(jobs=2, store=str(warm_store_dir))
    report = svc.ensure_built()
    assert report.cells_from_store == 51
    return svc


def test_inprocess_client_cell_lookup(service, seq_matrix):
    client = InProcessClient(service)
    payload = client.cell("NVIDIA", "CUDA", "c++")
    expected = seq_matrix.cells[(Vendor.NVIDIA, Model.CUDA, Language.CPP)]
    from repro.service import SCHEMA_VERSION

    assert payload.schema_version == SCHEMA_VERSION
    assert payload.data == cell_to_dict(expected)
    assert payload["primary"] == "FULL"
    assert {r["route_id"] for r in payload["routes"]} == {
        r.route.route_id for r in expected.routes}


def test_inprocess_client_table_matches_renderer(service, seq_matrix):
    client = InProcessClient(service)
    for fmt in ("text", "markdown", "yaml"):
        payload = client.table(fmt)
        assert payload["format"] == fmt
        assert payload["table"]  # non-empty
    text = client.table("text")["table"]
    assert text == RENDERERS["text"](
        matrix_lookup(seq_matrix),
        title="Figure 1 (derived empirically on the simulated system)")


def test_inprocess_client_advise_and_lint(service):
    client = InProcessClient(service)
    advice = client.advise(vendor="AMD", language="fortran")
    assert advice["recommendations"]
    assert "AMD" in advice["scope"]
    by_model = client.advise(model="SYCL", language="c++")
    assert by_model["recommendations"]
    report = client.lint_report()
    assert "diagnostics" in report and "counts" in report


def test_inprocess_client_metrics(service):
    snap = InProcessClient(service).metrics()
    assert snap["service"]["built"] is True
    assert snap["service"]["cells_from_store"] == 51
    assert snap["store"]["hits"] == 51
    assert "compile_cache" in snap and "interpreter" in snap


def test_unknown_cell_is_a_service_error(service):
    from repro.service import ServiceError

    client = InProcessClient(service)
    with pytest.raises(ServiceError):
        client.cell("NVIDIA", "CUDA", "rust")
    with pytest.raises(ServiceError):
        client.cell("IBM", "CUDA", "c++")
    # A non-Figure-1 combination (RAJA is extended-table only).
    with pytest.raises(ServiceError):
        client.cell("NVIDIA", "RAJA", "c++")


def test_http_transport_agrees_with_inprocess(service):
    from repro.service import HttpClient

    server = make_server(service)  # 127.0.0.1, ephemeral port
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        http = HttpClient(host, port)
        inproc = InProcessClient(service)
        assert http.health()["status"] == "ok"
        assert http.cell("nvidia", "cuda", "c++") == \
            inproc.cell("nvidia", "cuda", "c++")
        assert http.table("markdown") == inproc.table("markdown")
        assert http.advise(vendor="Intel", language="cpp") == \
            inproc.advise(vendor="Intel", language="cpp")
        from repro.service import ServiceError

        with pytest.raises(ServiceError) as err:
            http.cell("nvidia", "cuda", "rust")
        assert err.value.status == 404
    finally:
        server.shutdown()
        server.server_close()


def test_all_endpoints_payload_identical_across_transports(warm_store_dir):
    """Every endpoint — the original six, the three perf ones, the two
    perfstat ones, and the tracesan one — must return the identical
    versioned payload through both clients."""
    from repro.perfport import PerfParams
    from repro.service import (
        SCHEMA_VERSION,
        BadRequestError,
        HttpClient,
        MatrixClient,
        NotFoundError,
    )

    svc = MatrixService(jobs=2, store=str(warm_store_dir),
                        perf_params=PerfParams(n=1 << 12, reps=2))
    server = make_server(svc)
    host, port = server.server_address
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        inproc, http = InProcessClient(svc), HttpClient(host, port)
        assert isinstance(inproc, MatrixClient)
        assert isinstance(http, MatrixClient)
        calls = [
            ("health", ()),
            ("cell", ("NVIDIA", "CUDA", "c++")),
            ("table", ("markdown",)),
            ("advise", ("AMD", None, "fortran")),
            ("lint_report", ()),
            ("perf_matrix", ()),
            ("perf_cell", ("Intel", "SYCL", "c++")),
            ("perf_portability", ()),
            ("perf_static", ()),
            ("lint_perf", ()),
            ("lint_traces", ()),
            ("admin_stores", ()),
            ("metrics", ()),
        ]
        for name, args in calls:
            a = getattr(inproc, name)(*args)
            b = getattr(http, name)(*args)
            assert a.schema_version == SCHEMA_VERSION, name
            if name == "metrics":
                # A live snapshot: require identical shape, not counts.
                assert a.payload.keys() == b.payload.keys()
                assert a["counters"].keys() == b["counters"].keys()
            else:
                assert a.payload == b.payload, name
        # Error parity: same typed error, code, and status both ways.
        for client in (inproc, http):
            with pytest.raises(NotFoundError) as err:
                client.cell("IBM", "CUDA", "c++")
            assert err.value.status == 404
            assert err.value.code == "not_found"
            with pytest.raises(BadRequestError) as err:
                client.table("docx")
            assert err.value.status == 400
            with pytest.raises(NotFoundError):
                client.perf_cell("NVIDIA", "CUDA", "rust")
    finally:
        server.shutdown()
        server.server_close()


def test_perfstat_endpoints_payload_and_gauges(warm_store_dir):
    """``/perf/static`` serves all 51 predicted cells; ``/lint/perf``
    runs the cross-check clean and publishes the agreement gauges."""
    from repro.perfport import PerfParams

    svc = MatrixService(jobs=2, store=str(warm_store_dir),
                        perf_params=PerfParams(n=1 << 12, reps=2))
    client = InProcessClient(svc)

    static = client.perf_static()
    assert static.n_cells == 51 and len(static.cells) == 51
    for cell in static.cells:
        if cell["supported"]:
            assert {r["route_id"] for r in cell["routes"]}
            assert cell["best_route"] is not None
            assert 0.0 < cell["efficiency"] < 1.0

    lint = client.lint_perf()
    assert lint["counts"]["error"] == 0
    assert lint["counts"]["warning"] == 0
    assert lint.agreement["prediction_errors"] == 0
    assert lint.agreement["cells_agreeing"] == 40

    snap = client.metrics()
    assert snap["gauges"]["perfstat_cells_agreeing"] == 40
    assert snap["gauges"]["perfstat_prediction_errors"] == 0
    assert snap["service"]["static_perf_built"] is True


def test_tracesan_endpoint_payload_and_gauges():
    """``/lint/traces`` validates the library statically (zero kernel
    executions) and publishes the ``tracesan_*`` agreement gauges."""
    from repro.isa.interpreter import snapshot_interpreter_totals

    svc = MatrixService(jobs=2)
    client = InProcessClient(svc)

    before = snapshot_interpreter_totals().launches
    lint = client.lint_traces()
    assert snapshot_interpreter_totals().launches == before

    assert lint["counts"]["error"] == 0
    agreement = lint.agreement
    assert agreement["errors"] == 0
    assert agreement["validated"] == \
        agreement["kernels_total"] - agreement["bailed_out"]
    assert agreement["bailed_out"] >= 1  # warp_reduce_sum (shuffle)

    snap = client.metrics()
    assert snap["gauges"]["tracesan_errors"] == 0
    assert snap["gauges"]["tracesan_validated"] == agreement["validated"]
    assert snap["gauges"]["tracesan_kernels_total"] == \
        agreement["kernels_total"]

    # The sweep is cached: a second request serves the same payload.
    assert client.lint_traces().payload == lint.payload


def test_http_client_rejects_schema_skew():
    from repro.service.api import (
        SCHEMA_VERSION,
        SchemaVersionError,
        check_schema_version,
        error_from_payload,
    )

    with pytest.raises(SchemaVersionError):
        check_schema_version({"schema_version": SCHEMA_VERSION + 1})
    with pytest.raises(SchemaVersionError):
        check_schema_version({"status": "ok"})  # pre-versioning server
    # Unknown error codes degrade to the generic server error.
    exc = error_from_payload(500, {"error": {"code": "??", "message": "m"}})
    assert type(exc).__name__ == "RemoteServerError"


# -- metrics primitives -------------------------------------------------------


def test_counter_and_gauge_threaded():
    c = Counter("c")
    g = Gauge("g")

    def bump():
        for _ in range(1000):
            c.inc()
    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.get() == 8000
    g.set(3.5)
    assert g.get() == 3.5


def test_histogram_buckets_are_cumulative():
    h = Histogram("h", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 5.0, 50.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 4
    assert snap["buckets"] == {"le_0.1": 1, "le_1": 2, "le_10": 3,
                               "le_inf": 4}
    assert snap["min"] == 0.05 and snap["max"] == 50.0


def test_metrics_snapshot_is_json_serializable():
    metrics = MetricsRegistry()
    metrics.counter("x").inc(3)
    metrics.histogram("y").observe(0.2)
    json.dumps(metrics.snapshot())


# -- environment fingerprint --------------------------------------------------


def test_environment_fingerprint_is_stable():
    assert environment_fingerprint() == environment_fingerprint()


def test_store_covers_every_figure1_cell(warm_store_dir):
    store = ResultStore(warm_store_dir)
    assert len(store.entries()) >= 51
    for cell in all_cells():
        loaded = store.load(cell)
        assert loaded is not None
        assert (loaded.vendor, loaded.model, loaded.language) == cell
        assert isinstance(loaded.primary, SupportCategory)


# -- the worker-process fleet -------------------------------------------------


@pytest.mark.parametrize("execution", ["thread", "process"])
@pytest.mark.parametrize("jobs", [1, 2, 8])
def test_fleet_build_bit_identical(jobs, execution, seq_matrix):
    """{1, 2, 8} workers x {thread, process}: the same Figure 1, byte
    for byte — the invariant the process backend must preserve."""
    report = build_matrix_concurrent(jobs, execution=execution)
    assert report.matrix.cells == seq_matrix.cells
    assert report.cells_evaluated == 51
    assert _render_text(report.matrix) == _render_text(seq_matrix)


@pytest.fixture(scope="module")
def seq_perf_json(seq_matrix):
    """Sequential-reference perf matrix, serialized for byte-comparison."""
    from repro.perfport import PerfParams, PerfScheduler
    from repro.perfport.store import perf_cell_to_dict

    params = PerfParams(n=1 << 12, reps=2)
    report = PerfScheduler(1, compat=seq_matrix, params=params).build()
    return params, json.dumps(
        {":".join(p.value for p in cell): perf_cell_to_dict(c)
         for cell, c in report.matrix.cells.items()}, sort_keys=True)


@pytest.mark.parametrize("execution", ["thread", "process"])
@pytest.mark.parametrize("jobs", [2, 8])
def test_fleet_perf_build_byte_identical(jobs, execution, seq_matrix,
                                         seq_perf_json):
    from repro.perfport import PerfScheduler
    from repro.perfport.store import perf_cell_to_dict

    params, expected = seq_perf_json
    report = PerfScheduler(jobs, compat=seq_matrix, execution=execution,
                           params=params).build()
    got = json.dumps(
        {":".join(p.value for p in cell): perf_cell_to_dict(c)
         for cell, c in report.matrix.cells.items()}, sort_keys=True)
    assert got == expected


def test_process_store_is_the_mailbox(tmp_path, seq_matrix):
    """Workers publish cells into the shared store; a warm rerun then
    serves everything with zero probe executions."""
    cold_metrics = MetricsRegistry()
    cold = build_matrix_concurrent(
        2, execution="process", store=str(tmp_path), metrics=cold_metrics)
    assert cold.matrix.cells == seq_matrix.cells
    assert cold.cells_evaluated == 51
    assert cold.store.stats.as_dict()["writes"] == 51

    warm_metrics = MetricsRegistry()
    warm = build_matrix_concurrent(
        2, execution="process", store=str(tmp_path), metrics=warm_metrics)
    assert warm.matrix.cells == seq_matrix.cells
    assert warm.cells_from_store == 51
    assert warm.cells_evaluated == 0
    assert warm_metrics.counter("probes_executed").get() == 0


def test_process_backend_rejects_unpicklable_probe_filter():
    with pytest.raises(ValueError, match="picklable"):
        build_matrix_concurrent(
            1, execution="process", probe_filter=lambda probe: True)


def test_execution_knob_rejects_typos():
    with pytest.raises(ValueError, match="execution"):
        build_matrix_concurrent(1, execution="fibers")


#: The fault-hook target: the cell task for NVIDIA/CUDA/C++ (the
#: process backend schedules one CELL job per cell).
_CRASH_LABEL = "cell:NVIDIA:CUDA:C++"


def _crash_twice_hook(info, attempt):
    """Picklable worker-side hook: kill the worker process dead on the
    first two attempts at the target cell (a real crash, not an
    exception — the pool must detect the death and rebuild)."""
    if info.label == _CRASH_LABEL and attempt < 2:
        os._exit(13)


def test_worker_crash_twice_then_succeeds():
    """A worker dying mid-job twice is two structured retries: the pool
    is rebuilt each time and the final matrix is still bit-identical."""
    reference = build_matrix(probe_filter=_first_probe_filter)
    metrics = MetricsRegistry()
    report = build_matrix_concurrent(
        2, execution="process", probe_filter=_first_probe_filter,
        metrics=metrics, fault_hook=_crash_twice_hook,
        backoff_s=0.001, max_retries=2)
    assert report.matrix.cells == reference.cells
    assert metrics.counter("worker_crashes").get() == 2
    assert metrics.counter("worker_restarts").get() == 2
    assert metrics.counter("jobs_retried").get() >= 2


def test_simulated_crash_via_local_hook():
    """An unpicklable hook runs coordinator-side; raising WorkerCrash
    simulates a death (counted, retried) without killing any pool."""
    reference = build_matrix(probe_filter=_first_probe_filter)
    crashes: dict[str, int] = {}

    def hook(job, attempt):  # a closure: unpicklable by construction
        if job.label == _CRASH_LABEL and crashes.setdefault("n", 0) < 2:
            crashes["n"] += 1
            raise WorkerCrash(f"injected crash #{crashes['n']}")

    metrics = MetricsRegistry()
    report = build_matrix_concurrent(
        2, execution="process", probe_filter=_first_probe_filter,
        metrics=metrics, fault_hook=hook, backoff_s=0.0, max_retries=2)
    assert report.matrix.cells == reference.cells
    assert metrics.counter("worker_crashes").get() == 2
    assert metrics.counter("worker_restarts").get() == 0  # no pool died
    assert metrics.counter("jobs_retried").get() == 2


def test_process_retries_exhausted_is_a_typed_error():
    def hook(job, attempt):
        if job.label == _CRASH_LABEL:
            raise WorkerCrash("injected permanent crash")

    with pytest.raises(SchedulerError, match=r"cell:NVIDIA:CUDA"):
        build_matrix_concurrent(
            2, execution="process", probe_filter=_first_probe_filter,
            fault_hook=hook, backoff_s=0.0, max_retries=1)


# -- schema v4: the typed execution block + tolerant version check ------------


def test_v4_execution_block_on_health_and_metrics(service):
    from repro.service import SCHEMA_VERSION, ExecutionInfo

    client = InProcessClient(service)
    health = client.health()
    assert health.schema_version == SCHEMA_VERSION == 4
    info = health.execution
    assert isinstance(info, ExecutionInfo)
    assert info.backend == "thread"
    assert info.workers == 2
    assert info.store_hits == 51  # the warm store served every cell
    assert info.worker_crashes == 0
    assert info.worker_restarts == 0

    snap = client.metrics()
    m_info = snap.execution
    assert m_info.backend == info.backend
    assert m_info.workers == info.workers
    assert m_info.as_dict() == ExecutionInfo.from_dict(
        snap.payload["execution"]).as_dict()


def test_check_schema_version_tolerates_one_generation():
    import warnings

    from repro.service import COMPATIBLE_SCHEMA_VERSIONS, SCHEMA_VERSION
    from repro.service.api import SchemaVersionError, check_schema_version

    assert COMPATIBLE_SCHEMA_VERSIONS == (SCHEMA_VERSION - 1, SCHEMA_VERSION)
    # The current version passes silently.
    current = {"schema_version": SCHEMA_VERSION}
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert check_schema_version(current) is current
    # The previous generation (v3 clients) warns but keeps working.
    stale = {"schema_version": SCHEMA_VERSION - 1}
    with pytest.deprecated_call():
        assert check_schema_version(stale) is stale
    # Two generations back is a hard failure.
    with pytest.raises(SchemaVersionError):
        check_schema_version({"schema_version": SCHEMA_VERSION - 2})


# -- the /admin operational endpoints -----------------------------------------


@pytest.fixture()
def admin_store_dir(tmp_path):
    """A private warm store holding exactly one 51-cell generation.

    Built fresh rather than copied from ``warm_store_dir``: other tests
    (threshold invalidation) deposit extra generations into the shared
    module-scoped store, and the clear tests below assert exact entry
    counts — and may not mutate a fixture other tests share anyway.
    """
    root = tmp_path / "admin-store"
    report = build_matrix_concurrent(4, store=str(root))
    assert report.cells_evaluated == 51
    return root


def test_admin_stores_view_and_clear(admin_store_dir):
    svc = MatrixService(jobs=2, store=str(admin_store_dir))
    svc.ensure_built()
    client = InProcessClient(svc)

    view = client.admin_stores()
    assert view.matrix["configured"] is True
    assert view.matrix["entries"] == 51
    assert view.matrix["fingerprint"]
    assert view.matrix["stats"]["hits"] == 51
    assert view.matrix["stats"]["invalid"] == 0
    assert view.perf["configured"] is True
    assert view.perf["entries"] == 0  # perf never built here
    assert view["read_only"] is False

    cleared = client.clear_stores()
    assert cleared.cleared is True
    assert cleared.removed == {"matrix": 51, "perf": 0}
    assert client.admin_stores().matrix["entries"] == 0
    # The in-memory matrix survives; only persistence was dropped.
    assert client.health()["built"] is True


def test_admin_endpoints_parity_across_transports(admin_store_dir):
    from repro.service import HttpClient

    svc = MatrixService(jobs=2, store=str(admin_store_dir))
    svc.ensure_built()
    server = make_server(svc)
    host, port = server.server_address
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        inproc, http = InProcessClient(svc), HttpClient(host, port)
        assert inproc.admin_stores().payload == http.admin_stores().payload
        assert inproc.health().payload == http.health().payload
        # Clearing over HTTP reports the same shape the in-process
        # client then observes.
        assert http.clear_stores().removed == {"matrix": 51, "perf": 0}
        assert inproc.admin_stores().matrix["entries"] == 0
    finally:
        server.shutdown()
        server.server_close()


def test_read_only_server_rejects_clear_on_both_transports(admin_store_dir):
    from repro.service import HttpClient, ReadOnlyError

    svc = MatrixService(jobs=2, store=str(admin_store_dir), read_only=True)
    server = make_server(svc)
    host, port = server.server_address
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        for client in (InProcessClient(svc), HttpClient(host, port)):
            with pytest.raises(ReadOnlyError) as err:
                client.clear_stores()
            assert err.value.status == 403
            assert err.value.code == "read_only"
            # Reads stay open — read-only, not closed.
            assert client.admin_stores().matrix["entries"] == 51
    finally:
        server.shutdown()
        server.server_close()


def test_admin_clear_requires_a_post_body():
    from repro.service import BadRequestError
    from repro.service.server import dispatch

    svc = MatrixService(jobs=1)
    with pytest.raises(BadRequestError, match="POST"):
        dispatch(svc, ["admin", "stores", "clear"],
                 lambda name, default=None: default, body=None)
