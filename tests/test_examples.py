"""Smoke-run every example script end to end (deliverable b)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "portability_audit.py", "cuda_migration.py",
            "fortran_landscape.py", "babelstream_sweep.py",
            "ecosystem_tools.py"} <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    args = [sys.executable, str(script)]
    if script.name == "babelstream_sweep.py":
        args.append(str(1 << 16))  # keep the sweep example quick
    proc = subprocess.run(
        args, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout  # every example narrates what it shows


def test_quickstart_reports_agreement():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES[0].parent / "quickstart.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert "51/51" in proc.stdout
