"""CUDA and HIP runtime models: API semantics and platform behaviour."""

import numpy as np
import pytest

from repro import kernels as KL
from repro.enums import ISA, Language, Model
from repro.errors import ApiError, LaunchError, UnsupportedFeatureError
from repro.frontends import f64, i64, kernel
from repro.models.cuda import Cuda
from repro.models.hip import Hip


def test_cuda_malloc_memcpy_roundtrip(nvidia, rng):
    rt = Cuda(nvidia)
    data = rng.random(1000)
    d = rt.cudaMallocTyped(np.float64, 1000)
    rt.cudaMemcpyHtoD(d, data)
    out = rt.cudaMemcpyDtoH(d)
    np.testing.assert_array_equal(out, data)
    rt.cudaFree(d)
    with pytest.raises(ApiError, match="freed"):
        d.addr


def test_cuda_kernel_launch_named_api(nvidia):
    rt = Cuda(nvidia)
    n = 512
    x = rt.to_device(np.ones(n))
    y = rt.to_device(np.full(n, 3.0))
    rt.cudaLaunchKernel(KL.axpy, (2,), (256,), [n, 2.0, x, y])
    np.testing.assert_array_equal(y.copy_to_host(), np.full(n, 5.0))


def test_cuda_dtod_copy(nvidia):
    rt = Cuda(nvidia)
    a = rt.to_device(np.arange(10.0))
    b = rt.cudaMallocTyped(np.float64, 10)
    rt.cudaMemcpyDtoD(b, a)
    np.testing.assert_array_equal(b.copy_to_host(), np.arange(10.0))


def test_cuda_stream_wait_event_chains(nvidia):
    rt = Cuda(nvidia)
    s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
    n = 1 << 16
    x = rt.to_device(np.ones(n))
    rt.launch_1d(KL.scale_inplace, n, [n, 2.0, x], stream=s1,
                 extra_features=("cuda:streams",))
    event = rt.cudaEventCreate()
    rt.cudaEventRecord(event, s1)
    rt.cudaStreamWaitEvent(s2, event)
    rt.launch_1d(KL.scale_inplace, n, [n, 3.0, x], stream=s2,
                 extra_features=("cuda:streams",))
    rt.cudaStreamSynchronize(s2)
    assert s2.tail_s >= s1.tail_s
    np.testing.assert_array_equal(x.copy_to_host(), np.full(n, 6.0))


def test_cuda_graph_capture_semantics(nvidia):
    rt = Cuda(nvidia)
    n = 256
    x = rt.to_device(np.ones(n))
    rt.cudaGraphBeginCapture()
    rt.launch_1d(KL.scale_inplace, n, [n, 2.0, x])
    # captured launches must not execute yet
    graph = rt.cudaGraphEndCapture()
    np.testing.assert_array_equal(x.copy_to_host(), np.ones(n))
    graph.launch()
    graph.launch()
    np.testing.assert_array_equal(x.copy_to_host(), np.full(n, 4.0))
    assert graph.launches == 2


def test_cuda_graph_capture_misuse(nvidia):
    rt = Cuda(nvidia)
    with pytest.raises(ApiError, match="no graph capture"):
        rt.cudaGraphEndCapture()
    rt.cudaGraphBeginCapture()
    with pytest.raises(ApiError, match="already in progress"):
        rt.cudaGraphBeginCapture()


def test_cooperative_launch_capacity_gate(nvidia):
    rt = Cuda(nvidia)
    too_many = nvidia.spec.max_resident_threads + 1024
    x = rt.to_device(np.ones(256))
    with pytest.raises(LaunchError, match="cooperative"):
        rt.cudaLaunchCooperativeKernel(
            KL.scale_inplace, (too_many // 256,), (256,), [256, 2.0, x])


def test_cublas_layer(nvidia, rng):
    rt = Cuda(nvidia)
    n = 1024
    x_h, y_h = rng.random(n), rng.random(n)
    x, y = rt.to_device(x_h), rt.to_device(y_h)
    rt.cublasDaxpy(n, 2.0, x, y)
    assert np.isclose(rt.cublasDdot(n, x, y), x_h @ (2.0 * x_h + y_h))


def test_cublas_gemv(nvidia, rng):
    rt = Cuda(nvidia)
    m, n = 16, 8
    a_h = rng.random((m, n))
    x_h = rng.random(n)
    y_h = rng.random(m)
    a, x, y = rt.to_device(a_h), rt.to_device(x_h), rt.to_device(y_h)
    rt.cublasDgemv(m, n, 2.0, a, x, 0.5, y)
    np.testing.assert_allclose(y.copy_to_host(), 2.0 * a_h @ x_h + 0.5 * y_h)


def test_cuda_fortran_requires_nvhpc(nvidia):
    rt = Cuda(nvidia, language=Language.FORTRAN)
    assert rt.toolchain.name == "nvhpc"
    # nvcc cannot compile CUDA Fortran:
    from repro.errors import UnsupportedRouteError

    bad = Cuda(nvidia, "nvcc", language=Language.FORTRAN)
    with pytest.raises(UnsupportedRouteError):
        bad.probe_kernels()


def test_cuf_kernels_only_in_cuda_fortran(nvidia):
    cpp_rt = Cuda(nvidia)
    with pytest.raises(ApiError, match="cuf kernels"):
        cpp_rt.cuf_kernel_do(KL.scale_inplace, 16, [16, 2.0, None])


def test_hip_mirrors_cuda_api(amd):
    rt = Hip(amd)
    for cuda_name, hip_name in (
        ("cudaMalloc", "hipMalloc"), ("cudaMemcpyHtoD", "hipMemcpyHtoD"),
        ("cudaStreamCreate", "hipStreamCreate"),
        ("cudaEventCreate", "hipEventCreate"),
        ("cublasDaxpy", "hipblasDaxpy"),
    ):
        assert hasattr(rt, hip_name), hip_name
        assert not hasattr(rt, cuda_name), cuda_name


def test_hip_platform_follows_device(amd, nvidia):
    assert Hip(amd).hip_platform == "amd"
    assert Hip(nvidia).hip_platform == "nvidia"


def test_hip_same_source_both_platforms(amd, nvidia, rng):
    """Description 3/20: one HIP program, AMD and NVIDIA devices."""
    n = 2048
    x_h = rng.random(n)
    for device, isa in ((amd, ISA.AMDGCN), (nvidia, ISA.PTX)):
        rt = Hip(device)
        x = rt.to_device(x_h)
        rt.hipLaunchKernelGGL(KL.scale_inplace, (8,), (256,), [n, 2.0, x])
        np.testing.assert_allclose(x.copy_to_host(), 2.0 * x_h)
        binary = rt.compile([KL.scale_inplace], rt._kernel_tags())
        assert binary.isa is isa  # hipcc really swapped backends


def test_hipfort_feature_gaps(amd):
    rt = Hip(amd, language=Language.FORTRAN)
    assert rt.toolchain.name == "hipfort"
    rt.probe_kernels()
    with pytest.raises(UnsupportedFeatureError):
        Hip(amd, language=Language.FORTRAN).probe_events()
    with pytest.raises(UnsupportedFeatureError):
        Hip(amd, language=Language.FORTRAN).probe_graphs()


def test_user_defined_kernel_through_cuda(nvidia):
    @kernel
    def fused(n: i64, a: f64, x: f64[:], y: f64[:], out: f64[:]):
        i = gid(0)
        if i < n:
            out[i] = sqrt(a * x[i] * x[i] + y[i] * y[i])

    rt = Cuda(nvidia)
    n = 500
    rng = np.random.default_rng(0)
    x_h, y_h = rng.random(n), rng.random(n)
    x, y = rt.to_device(x_h), rt.to_device(y_h)
    out = rt.cudaMallocTyped(np.float64, n)
    rt.launch_1d(fused, n, [n, 4.0, x, y, out])
    np.testing.assert_allclose(out.copy_to_host(),
                               np.sqrt(4.0 * x_h**2 + y_h**2))


def test_compile_cache_reuses_binaries(nvidia):
    rt = Cuda(nvidia)
    b1 = rt.compile([KL.axpy], rt._kernel_tags())
    b2 = rt.compile([KL.axpy], rt._kernel_tags())
    assert b1 is b2
    b3 = rt.compile([KL.axpy], rt._kernel_tags() + ("cuda:graphs",))
    assert b3 is not b1
