"""The ``@kernel`` JIT frontend, end to end.

Four claims, each load-bearing for the bring-your-own-kernel story:

1. **Differential correctness** — every corpus kernel executes
   bit-identically to its pure-Python reference on all three simulated
   devices, and under both interpreter tiers (batched and traced).
2. **Typed rejection** — every unsupported construct raises a
   :class:`JitTypeError` naming the construct and its source line.
3. **Caching** — jit units hit the content-keyed compile cache on
   recompile, and never collide with natively authored units.
4. **Service parity** — ``POST /kernel/submit`` returns byte-identical
   JSON on both transports, with typed errors and ``jit_*`` counters.
"""

from __future__ import annotations

import importlib.util
import json
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.enums import ISA, Vendor
from repro.errors import JitTypeError
from repro.frontends.kernel_dsl import ArrayAnn, f64, i64
from repro.gpu.device import Device
from repro.gpu.specs import default_spec
from repro.isa import KernelExecutor
from repro.isa.tracing import clear_trace_cache
from repro.jit import (
    MAX_SOURCE_BYTES,
    JitKernel,
    autojit,
    from_source,
    kernel,
    normalize_signature,
    reference_run,
    signature_text,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

_ISA_VENDOR = {
    ISA.PTX: Vendor.NVIDIA,
    ISA.AMDGCN: Vendor.AMD,
    ISA.SPIRV: Vendor.INTEL,
}


def _load_corpus():
    spec = importlib.util.spec_from_file_location(
        "jit_corpus_for_tests", EXAMPLES / "jit_kernels.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


corpus = pytest.fixture(scope="module")(_load_corpus)


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


def _launch_args(jk, n, rng):
    """(host args, indices of array args) for one corpus kernel."""
    if jk.name == "saxpy":
        return [n, 2.5, rng.random(n), rng.random(n)], (2, 3)
    return [n, rng.random(n), np.zeros(n)], (1, 2)


GEOM = lambda n: (((n + 255) // 256,), (256,))  # noqa: E731


# -- differential: devices vs. the pure-Python reference ----------------------


@pytest.mark.parametrize("isa", list(_ISA_VENDOR))
@pytest.mark.parametrize("name", ["saxpy", "stencil3", "branchy",
                                  "block_sum"])
@pytest.mark.parametrize("n", [1, 257, 2048])
def test_corpus_bit_identical_on_all_devices(corpus, name, isa, n):
    jk = getattr(corpus, name)
    rng = np.random.default_rng(hash((name, n)) % (1 << 32))
    args, arr_idx = _launch_args(jk, n, rng)
    grid, block = GEOM(n)
    ref = reference_run(jk, grid, block, args)

    device = Device(default_spec(_ISA_VENDOR[isa]))
    result = jk.compile(isa)
    dev_args = list(args)
    allocs = {}
    for i in arr_idx:
        buf = device.alloc(args[i].nbytes)
        device.memcpy_h2d(buf, args[i])
        allocs[i] = buf
        dev_args[i] = buf
    device.launch(result.binary, jk.name, grid, block, tuple(dev_args))
    for i in arr_idx:
        got = device.memcpy_d2h(allocs[i], np.float64, ref[i].size)
        np.testing.assert_array_equal(got, ref[i])


@pytest.mark.parametrize("name", ["saxpy", "stencil3", "branchy",
                                  "block_sum"])
def test_corpus_traced_tier_bit_identical(corpus, name):
    """Trace-compiled execution matches batched execution and reference."""
    jk = getattr(corpus, name)
    n = 2048
    rng = np.random.default_rng(99)
    args, arr_idx = _launch_args(jk, n, rng)
    grid, block = GEOM(n)
    ref = reference_run(jk, grid, block, args)

    # lay the arrays out in a flat memory image, back to back
    image = np.zeros(sum(args[i].nbytes for i in arr_idx), dtype=np.uint8)
    flat_args, offset = [], 0
    for i, a in enumerate(args):
        if i in arr_idx:
            image[offset:offset + a.nbytes] = a.view(np.uint8)
            flat_args.append(offset)
            offset += a.nbytes
        else:
            flat_args.append(a)

    outcomes = {}
    for trace in (False, True):
        mem = image.copy()
        ex = KernelExecutor(jk.ir, 32, mem, trace_mode=trace)
        ex.launch(grid, block, flat_args)
        outcomes[trace] = mem
    np.testing.assert_array_equal(outcomes[False], outcomes[True])

    offset = 0
    for i in arr_idx:
        nbytes = args[i].nbytes
        got = outcomes[True][offset:offset + nbytes].view(np.float64)
        np.testing.assert_array_equal(got, ref[i])
        offset += nbytes


# -- signatures ---------------------------------------------------------------


def test_signature_spellings_agree():
    expect = (i64, f64, ArrayAnn(f64.dtype))
    for spelling in ("void(i64, f64, f64[:])", "i64, f64, f64[:]",
                     ("i64", "f64", "f64[:]"), (i64, f64, f64[:])):
        got = normalize_signature(spelling)
        assert [type(g) for g in got] == [type(e) for e in expect]
        assert signature_text(got) == "void(i64, f64, f64[:])"


def test_void_return_rule():
    with pytest.raises(JitTypeError, match="must be void, got 'f64'"):
        kernel("f64(i64, f64[:])")
    # and 'void' spelled out is accepted
    assert signature_text(normalize_signature("void(i64)")) == "void(i64)"


@pytest.mark.parametrize("bad", ["void(q8)", "void(f64[:,:])", 42,
                                 ("f64", object())])
def test_malformed_signatures_rejected(bad):
    with pytest.raises(JitTypeError):
        normalize_signature(bad)


def test_signature_annotation_disagreement_names_param():
    with pytest.raises(JitTypeError, match="parameter 'x' is annotated"):
        @kernel("void(i64, i64[:])")
        def k(n, x: "f64[:]"):
            x[0] = 1.0
        k.kernelfn  # noqa: B018 - autouse compile trigger


def test_signature_arity_mismatch():
    with pytest.raises(JitTypeError, match="2 parameter type"):
        @kernel("void(i64, f64[:])")
        def k(n):
            n = n + 1
        k.kernelfn  # noqa: B018


def test_autojit_requires_annotations():
    @autojit
    def k(n, x):
        x[0] = 1.0

    with pytest.raises(JitTypeError, match="needs a type annotation"):
        k.kernelfn  # noqa: B018


# -- typed rejections with source locations -----------------------------------


def test_rejected_corpus_kernels(corpus):
    with pytest.raises(JitTypeError, match="must be void"):
        corpus.rejected_value_return()
    with pytest.raises(JitTypeError, match="cannot return values") as ei:
        corpus.rejected_return_statement()
    assert ei.value.source_path.endswith("jit_kernels.py")
    assert ei.value.source_line is not None


@pytest.mark.parametrize("construct,line,source", [
    ("Import", 3, "def k(n: i64, x: f64[:]):\n    i = gid(0)\n"
                  "    import os\n    x[i] = 1.0\n"),
    ("Try", 3, "def k(n: i64, x: f64[:]):\n    i = gid(0)\n    try:\n"
               "        x[i] = 1.0\n    except ValueError:\n        pass\n"),
    ("Lambda", 2, "def k(n: i64, x: f64[:]):\n    f = lambda v: v\n"),
    ("With", 2, "def k(n: i64, x: f64[:]):\n    with x:\n        pass\n"),
    ("Raise", 2, "def k(n: i64, x: f64[:]):\n    raise ValueError()\n"),
    ("nested function", 2, "def k(n: i64, x: f64[:]):\n"
                           "    def inner():\n        pass\n"),
])
def test_submitted_rejections_name_construct_and_line(construct, line,
                                                      source):
    with pytest.raises(JitTypeError, match=construct) as ei:
        from_source(source)
    assert ei.value.source_line == line
    assert f":{line}:" in str(ei.value)


def test_dsl_rejections_carry_source_location():
    """Constructs the DSL compiler itself rejects point at user lines."""
    src = ("def k(n: i64, x: f64[:]):\n"
           "    i = gid(0)\n"
           "    x[i] = unknown_helper(i)\n")
    with pytest.raises(JitTypeError, match="unknown intrinsic") as ei:
        from_source(src).kernelfn  # noqa: B018
    assert ei.value.source_line == 3
    assert ":3:" in str(ei.value)


def test_decorated_function_locations_are_absolute():
    @kernel
    def bad(n: "i64", x: "f64[:]"):
        i = gid(0)  # noqa: F821 - DSL name
        x[i] = missing_fn(i)  # noqa: F821 - deliberate

    with pytest.raises(JitTypeError) as ei:
        bad.kernelfn  # noqa: B018
    assert ei.value.source_path.endswith("test_jit.py")
    # the absolute line of the offending statement in THIS file
    assert str(ei.value.source_line) in str(ei.value)
    assert ei.value.source_line > 200  # absolute, not function-relative


@pytest.mark.parametrize("source,match", [
    ("x = 1\ny = 2\n", "exactly one kernel"),
    ("import os\ndef k(n: i64):\n    pass\n", "module level"),
    ("def k(n: i64, x: f64[:], *extra):\n    pass\n", "star"),
    ("def k(n: i64 = 3):\n    pass\n", "defaults"),
    ("@staticmethod\ndef k(n: i64):\n    pass\n", "decorators"),
    ("def k(n: __import__('os')):\n    pass\n", "annotations"),
])
def test_submitted_module_validation(source, match):
    with pytest.raises(JitTypeError, match=match):
        from_source(source)


def test_source_size_limit():
    big = ("def k(n: i64, x: f64[:]):\n    i = gid(0)\n"
           + "    # pad\n" * (MAX_SOURCE_BYTES // 8))
    with pytest.raises(JitTypeError, match="exceeds"):
        from_source(big)


def test_from_source_exec_is_inert():
    """Module-level constants fold; nothing else executes."""
    jk = from_source(
        "SCALE = 3.0\n\n"
        "def k(n: i64, x: f64[:]):\n"
        "    i = gid(0)\n"
        "    if i < n:\n"
        "        x[i] = x[i] * SCALE\n")
    out = reference_run(jk, (1,), (4,), [4, np.ones(4)])
    np.testing.assert_array_equal(out[1], 3.0 * np.ones(4))


# -- inspection ---------------------------------------------------------------


def test_inspect_types_and_asm(corpus):
    dump = corpus.saxpy.inspect_types()
    assert "param n: i64 (scalar)" in dump
    assert "param x: f64 (pointer)" in dump
    asm = corpus.saxpy.inspect_asm()
    assert set(asm) == set(_ISA_VENDOR)
    assert all(corpus.saxpy.name in text for text in asm.values())
    one = corpus.saxpy.inspect_asm(ISA.PTX)
    assert one == asm[ISA.PTX]


def test_kernelsan_clean(corpus):
    for jk in corpus.CORPUS:
        report = jk.lint()
        assert not report.errors, (jk.name, [d.render()
                                             for d in report.errors])


# -- the compile cache --------------------------------------------------------


def test_recompile_is_cache_hit():
    from repro.compilers.registry import get_toolchain

    @kernel("void(i64, f64[:])")
    def cache_probe(n, x):
        i = gid(0)
        if i < n:
            x[i] = x[i] + 1.0

    tc = get_toolchain("nvcc")
    h0, m0 = tc.cache_stats.hits, tc.cache_stats.misses
    first = cache_probe.compile(ISA.PTX)
    second = cache_probe.compile(ISA.PTX)
    assert tc.cache_stats.misses == m0 + 1
    assert tc.cache_stats.hits == h0 + 1
    assert first is second


def test_jit_origin_keeps_cache_slots_apart():
    """A jit unit and a native unit with identical content don't share."""
    from repro.compilers.registry import get_toolchain
    from repro.enums import Language, Model
    from repro.frontends.source import TranslationUnit

    @kernel("void(i64, f64[:])")
    def slotted(n, x):
        i = gid(0)
        if i < n:
            x[i] = x[i] * 2.0

    tu_jit = slotted.translation_unit(Model.CUDA, language=Language.CPP)
    tu_native = TranslationUnit(
        name="jit_slotted", model=Model.CUDA, language=Language.CPP)
    tu_native.add(slotted.kernelfn)
    assert tu_jit.fingerprint() == tu_native.fingerprint()

    tc = get_toolchain("nvcc")
    m0 = tc.cache_stats.misses
    tc.compile(tu_jit, ISA.PTX)
    tc.compile(tu_native, ISA.PTX)  # same content, no origin -> own slot
    assert tc.cache_stats.misses == m0 + 2


def test_sanitize_accepts_jit_origin(corpus):
    """Sanitize mode must not try translation validation on jit units."""
    result = corpus.saxpy.compile(ISA.PTX, sanitize=True)
    assert result.diagnostics is not None


def test_fingerprint_is_content_keyed(corpus):
    @kernel("void(i64, f64, f64[:], f64[:])")
    def saxpy(n, a, x, y):
        i = gid(0)
        if i < n:
            y[i] = a * x[i] + y[i]

    assert saxpy.fingerprint() == corpus.saxpy.fingerprint()
    assert saxpy.fingerprint() != corpus.stencil3.fingerprint()


# -- the compatibility row ----------------------------------------------------


@pytest.fixture(scope="module")
def saxpy_row(corpus):
    return corpus.saxpy.compatibility_row(n=512)


def test_row_covers_all_vendors(saxpy_row):
    assert [v.vendor for v in saxpy_row.vendors] == [
        Vendor.AMD, Vendor.INTEL, Vendor.NVIDIA]
    for vrow in saxpy_row.vendors:
        assert vrow.cells, vrow.vendor
        assert all(c.ok for c in vrow.cells), [
            (c.route_id, c.error) for c in vrow.cells if not c.ok]
        assert vrow.primary.name != "NONE"


def test_row_ratings_follow_the_classifier(saxpy_row):
    by_vendor = {v.vendor: v.primary.name.lower()
                 for v in saxpy_row.vendors}
    # NVIDIA and Intel ship first-party Python routes; AMD's Python
    # column is community packages only, capping below full support.
    assert by_vendor[Vendor.NVIDIA] == "full"
    assert by_vendor[Vendor.INTEL] == "full"
    assert by_vendor[Vendor.AMD] in ("nonvendor", "some", "limited")


def test_row_serialization_is_deterministic(saxpy_row):
    d1 = saxpy_row.to_dict()
    d2 = saxpy_row.to_dict()
    assert json.dumps(d1, sort_keys=False) == json.dumps(d2,
                                                         sort_keys=False)
    assert d1["kernel"] == "saxpy"
    assert d1["lint"]["errors"] == 0
    assert saxpy_row.render().startswith("saxpy ")


def test_row_rejects_non_f64_arrays():
    @kernel("void(i64, i64[:])")
    def intkern(n, x):
        i = gid(0)
        if i < n:
            x[i] = x[i] + 1

    with pytest.raises(JitTypeError, match="f64"):
        intkern.compatibility_row(n=64)


# -- the service endpoint -----------------------------------------------------

SUBMIT_SRC = (
    "def scale(n: i64, a: f64, x: f64[:]):\n"
    "    i = gid(0)\n"
    "    if i < n:\n"
    "        x[i] = x[i] * a\n"
)


@pytest.fixture(scope="module")
def service():
    from repro.service import MatrixService

    return MatrixService(jobs=2)


@pytest.fixture(scope="module")
def http_client(service):
    from repro.service import HttpClient, make_server

    server = make_server(service)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield HttpClient(host, port)
    server.shutdown()


def test_submit_parity_across_transports(service, http_client):
    from repro.service import InProcessClient

    inproc = InProcessClient(service)
    a = inproc.submit_kernel(SUBMIT_SRC)
    b = http_client.submit_kernel(SUBMIT_SRC)
    assert json.dumps(a.payload, sort_keys=True) == json.dumps(
        b.payload, sort_keys=True)
    assert a.kernel == "scale"
    assert a.signature == "void(i64, f64, f64[:])"
    assert len(a.fingerprint) == 64
    assert [v["vendor"] for v in a.vendors] == ["AMD", "Intel", "NVIDIA"]
    assert a.lint["errors"] == 0
    assert a.schema_version == b.schema_version


def test_submit_row_is_cached_by_fingerprint(service):
    from repro.service import InProcessClient

    inproc = InProcessClient(service)
    first = inproc.submit_kernel(SUBMIT_SRC)
    before = service.metrics.counter("jit_submissions_total").value
    again = inproc.submit_kernel(SUBMIT_SRC)
    assert again.payload == first.payload
    assert service.metrics.counter(
        "jit_submissions_total").value == before + 1


def test_submit_rejection_is_typed_on_both_transports(service, http_client):
    from repro.service import InProcessClient, KernelRejectedError

    bad = "def k(n: i64):\n    import os\n"
    with pytest.raises(KernelRejectedError, match="Import") as e_in:
        InProcessClient(service).submit_kernel(bad)
    with pytest.raises(KernelRejectedError, match="Import") as e_http:
        http_client.submit_kernel(bad)
    assert str(e_in.value) == str(e_http.value)
    assert e_http.value.status == 422


def test_submit_limits_and_bad_requests(service, http_client):
    from repro.service import (BadRequestError, InProcessClient,
                               PayloadTooLargeError)

    inproc = InProcessClient(service)
    with pytest.raises(BadRequestError):
        inproc.service.submit_kernel({})
    with pytest.raises(BadRequestError):
        inproc.service.submit_kernel({"source": 42})
    big = "# x\n" * (MAX_SOURCE_BYTES // 4 + 1)
    with pytest.raises(PayloadTooLargeError):
        http_client.submit_kernel(big)


def test_submit_metrics_by_error_code(service):
    from repro.service import InProcessClient, KernelRejectedError

    inproc = InProcessClient(service)
    before = service.metrics.counter(
        "jit_rejections_total_kernel_rejected").value
    total_before = service.metrics.counter("jit_rejections_total").value
    with pytest.raises(KernelRejectedError):
        inproc.submit_kernel("def k(n: i64):\n    yield n\n")
    assert service.metrics.counter(
        "jit_rejections_total_kernel_rejected").value == before + 1
    assert service.metrics.counter(
        "jit_rejections_total").value == total_before + 1
    snap = service.snapshot_metrics()
    assert "jit_submissions_total" in snap["counters"]
    assert "jit_rejections_total" in snap["counters"]


def test_submit_endpoint_without_body_is_bad_request(service):
    from repro.service import BadRequestError
    from repro.service.server import dispatch

    with pytest.raises(BadRequestError):
        dispatch(service, ["kernel", "submit"], lambda k, d=None: d)


# -- the CLI ------------------------------------------------------------------


def _corpus_path(name=None):
    spec = str(EXAMPLES / "jit_kernels.py")
    return spec if name is None else f"{spec}:{name}"


def test_cli_jit_compile(capsys):
    from repro.cli import main

    assert main(["jit", "compile", _corpus_path("saxpy")]) == 0
    out = capsys.readouterr().out
    assert "saxpy void(i64, f64, f64[:], f64[:])" in out
    for isa in ("ptx", "amdgcn", "spirv"):
        assert isa in out


def test_cli_jit_inspect_json(capsys):
    from repro.cli import main

    assert main(["jit", "inspect", _corpus_path("saxpy"),
                 "--target", "ptx", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kernel"] == "saxpy"
    assert set(payload["asm"]) == {"ptx"}


def test_cli_jit_row_json(capsys):
    from repro.cli import main

    assert main(["jit", "row", _corpus_path("saxpy"),
                 "--n", "256", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [v["vendor"] for v in payload["vendors"]] == [
        "AMD", "Intel", "NVIDIA"]


def test_cli_jit_usage_errors(capsys):
    from repro.cli import main

    assert main(["jit", "compile", _corpus_path("nope")]) == 2
    assert main(["jit", "compile", _corpus_path()]) == 2  # ambiguous
    err = capsys.readouterr().err
    assert "nope" in err


def test_cli_lint_covers_jit_modules(capsys):
    from repro.cli import main

    assert main(["lint", "--module", _corpus_path()]) == 0
    assert "linted 4 kernel(s)" in capsys.readouterr().out
