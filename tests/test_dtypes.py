"""Scalar type system: lookup, widths, promotion rules."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import dtypes
from repro.isa.dtypes import (
    F32, F64, I32, I64, PRED, U8, U32, U64, SCALAR_TYPES, from_name,
    from_numpy, promote,
)

_ARITH = [I32, I64, U32, U64, F32, F64]


def test_itemsizes():
    assert PRED.itemsize == 1
    assert U8.itemsize == 1
    assert I32.itemsize == U32.itemsize == F32.itemsize == 4
    assert I64.itemsize == U64.itemsize == F64.itemsize == 8


def test_kind_predicates():
    assert F64.is_float and not F64.is_integer and not F64.is_pred
    assert I32.is_integer and not I32.is_float
    assert U64.is_integer
    assert PRED.is_pred and not PRED.is_integer


def test_from_name_roundtrip():
    for name, dtype in SCALAR_TYPES.items():
        assert from_name(name) is dtype


def test_from_name_unknown():
    with pytest.raises(KeyError, match="unknown scalar type"):
        from_name("f16")


def test_from_numpy():
    assert from_numpy(np.float64) is F64
    assert from_numpy(np.dtype("int32")) is I32
    assert from_numpy(np.bool_) is PRED
    with pytest.raises(KeyError):
        from_numpy(np.complex128)


def test_promotion_float_dominates():
    assert promote(I64, F32) is F32
    assert promote(F64, U32) is F64
    assert promote(F32, F64) is F64


def test_promotion_width_dominates():
    assert promote(I32, I64) is I64
    assert promote(U32, U64) is U64


def test_promotion_unsigned_wins_same_width():
    assert promote(I32, U32) is U32
    assert promote(I64, U64) is U64


def test_promotion_pred_rules():
    assert promote(PRED, PRED) is PRED
    with pytest.raises(TypeError):
        promote(PRED, I32)


@given(st.sampled_from(_ARITH), st.sampled_from(_ARITH))
def test_promotion_commutative(a, b):
    assert promote(a, b) is promote(b, a)


@given(st.sampled_from(_ARITH))
def test_promotion_idempotent(a):
    assert promote(a, a) is a


@given(st.sampled_from(_ARITH), st.sampled_from(_ARITH),
       st.sampled_from(_ARITH))
def test_promotion_associative(a, b, c):
    assert promote(promote(a, b), c) is promote(a, promote(b, c))


@given(st.sampled_from(_ARITH), st.sampled_from(_ARITH))
def test_promotion_never_narrows(a, b):
    result = promote(a, b)
    assert result.itemsize >= max(a.itemsize, b.itemsize) or result.is_float


def test_dtype_equality_by_name():
    clone = dtypes.DType("f64", np.dtype(np.float64), "float")
    assert clone == F64
    assert hash(clone) == hash(F64)
