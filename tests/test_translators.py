"""Source-to-source translators: tag maps, string rewriting, gates."""

import numpy as np
import pytest

from repro import kernels as KL
from repro.enums import Language, Maturity, Model, Provider
from repro.errors import TranslationError
from repro.frontends import TranslationUnit
from repro.translate import AccToOmp, Gpufort, Hipify, Syclomatic


def _tu(model, language, features, name="app"):
    tu = TranslationUnit(name, model, language)
    tu.add(KL.axpy)
    tu.require(*features)
    return tu


# -- unit-level ---------------------------------------------------------------


def test_hipify_maps_the_full_core():
    out = Hipify().translate_unit(
        _tu(Model.CUDA, Language.CPP,
            ["cuda:kernels", "cuda:memcpy", "cuda:streams", "cuda:events",
             "cuda:managed_memory", "cuda:libraries", "cuda:graphs"])
    )
    assert out.model is Model.HIP
    assert out.language is Language.CPP
    assert {"hip:kernels", "hip:memcpy", "hip:streams", "hip:events",
            "hip:managed_memory", "hip:libraries", "hip:graphs"} == out.features


def test_hipify_rejects_cooperative_groups():
    with pytest.raises(TranslationError, match="no equivalent"):
        Hipify().translate_unit(
            _tu(Model.CUDA, Language.CPP,
                ["cuda:kernels", "cuda:cooperative_groups"])
        )


def test_hipify_rejects_wrong_source():
    with pytest.raises(TranslationError, match="translates CUDA only"):
        Hipify().translate_unit(_tu(Model.OPENMP, Language.CPP, []))
    with pytest.raises(TranslationError):
        Hipify().translate_unit(_tu(Model.CUDA, Language.FORTRAN, []))


def test_syclomatic_maps_to_sycl_constructs():
    out = Syclomatic().translate_unit(
        _tu(Model.CUDA, Language.CPP,
            ["cuda:kernels", "cuda:streams", "cuda:managed_memory"])
    )
    assert out.model is Model.SYCL
    assert {"sycl:queues", "sycl:nd_range", "sycl:usm"} == out.features


def test_syclomatic_rejects_graphs_and_coop():
    for tag in ("cuda:graphs", "cuda:cooperative_groups"):
        with pytest.raises(TranslationError):
            Syclomatic().translate_unit(
                _tu(Model.CUDA, Language.CPP, ["cuda:kernels", tag]))


def test_hw_tags_pass_through():
    out = Hipify().translate_unit(
        TranslationUnit("t", Model.CUDA, Language.CPP,
                        kernels=[KL.reduce_sum],
                        features={"cuda:kernels"})
    )
    # barrier/atomics/shared stay on the kernels, not the TU features
    assert "barrier" not in out.features
    assert KL.reduce_sum in out.kernels


def test_gpufort_source_models():
    cuda_f = Gpufort(source=Model.CUDA)
    acc_f = Gpufort(source=Model.OPENACC)
    assert cuda_f.MATURITY is Maturity.RESEARCH
    out = cuda_f.translate_unit(
        _tu(Model.CUDA, Language.FORTRAN, ["cuf:kernels", "cuda:memcpy"]))
    assert out.model is Model.OPENMP
    assert out.language is Language.FORTRAN
    assert "omp:target" in out.features
    out2 = acc_f.translate_unit(
        _tu(Model.OPENACC, Language.FORTRAN, ["acc:parallel", "acc:loop"]))
    assert "omp:teams" in out2.features
    with pytest.raises(TranslationError):
        Gpufort(source=Model.SYCL)


def test_gpufort_use_case_gaps():
    with pytest.raises(TranslationError):
        Gpufort(source=Model.CUDA).translate_unit(
            _tu(Model.CUDA, Language.FORTRAN, ["cuf:kernels", "cuda:streams"]))


def test_acc2omp_both_languages_and_gaps():
    tool = AccToOmp()
    for lang in (Language.CPP, Language.FORTRAN):
        out = tool.translate_unit(
            _tu(Model.OPENACC, lang, ["acc:parallel", "acc:data",
                                      "acc:copyin_copyout"]))
        assert out.model is Model.OPENMP
        assert out.language is lang
    for tag in ("acc:reduction", "acc:async", "acc:serial",
                "acc:gang_worker_vector"):
        with pytest.raises(TranslationError):
            tool.translate_unit(
                _tu(Model.OPENACC, Language.CPP, ["acc:parallel", tag]))


def test_translated_unit_is_renamed():
    out = Hipify().translate_unit(_tu(Model.CUDA, Language.CPP,
                                      ["cuda:kernels"], name="myapp"))
    assert out.name == "myapp.hipify"


# -- string level --------------------------------------------------------------


def test_hipify_identifier_table():
    src = ("cudaMalloc(&p, n); cudaMemcpyAsync(d, h, n, "
           "cudaMemcpyHostToDevice, s); cudaEventElapsedTime(&ms, a, b); "
           "cublasSaxpy(h, n, &a, x, 1, y, 1);")
    out, report = Hipify().translate_source(src)
    assert "hipMalloc" in out and "hipMemcpyAsync" in out
    assert "hipMemcpyHostToDevice" in out
    assert "hipEventElapsedTime" in out
    assert "hipblasSaxpy" in out  # the paper's own example pair
    assert "cuda" not in out
    assert report.replacements >= 5
    assert not report.warnings


def test_hipify_kernel_launch_syntax():
    out, _ = Hipify().translate_source("saxpy<<<grid, block>>>(n, a, x, y);")
    assert out == "hipLaunchKernelGGL(saxpy, grid, block, 0, 0, n, a, x, y);"


def test_hipify_warns_on_unconverted():
    out, report = Hipify().translate_source(
        "cudaMalloc(&p, n); cudaFrobnicate(p);")
    assert any("cudaFrobnicate" in w for w in report.warnings)


def test_syclomatic_string_rewrites():
    src = ("cudaMallocManaged(&p, n); kernel<<<g, b>>>(p);\n"
           "cudaDeviceSynchronize();")
    out, report = Syclomatic().translate_source(src)
    assert "sycl::malloc_shared" in out
    assert "q.parallel_for" in out
    assert "q.wait" in out
    assert report.replacements >= 3


def test_acc2omp_directive_rewrites():
    src = ("#pragma acc parallel loop copyin(x[0:n]) async(1)\n"
           "for (int i = 0; i < n; ++i) y[i] = x[i];")
    out, _ = AccToOmp().translate_source(src)
    assert "#pragma omp target teams distribute parallel for" in out
    assert "map(to: x[0:n])" in out
    assert "TODO(acc2omp)" in out  # async dropped with marker


def test_acc2omp_fortran_sentinels():
    out, _ = AccToOmp().translate_source(
        "!$acc parallel loop copy(y)\ndo i = 1, n\n  y(i) = 1\nend do")
    assert "!$omp target teams distribute parallel do" in out
    assert "map(tofrom: y)" in out


def test_gpufort_string_rewrites():
    src = "!$cuf kernel do\ndo i = 1, n\n  y(i) = a * x(i)\nend do"
    out, report = Gpufort().translate_source(src)
    assert "!$omp target teams distribute parallel do" in out
    assert report.replacements == 1


# -- end-to-end through simulated devices ----------------------------------


def test_hipified_cuda_runs_on_amd(amd, rng):
    from repro.models.cuda import Cuda

    rt = Cuda(amd, "hipcc")
    rt.translator = Hipify()
    n = 1024
    x_h = rng.random(n)
    x = rt.to_device(x_h)
    y = rt.to_device(np.ones(n))
    rt.launch_1d(KL.axpy, n, [n, 2.0, x, y])
    np.testing.assert_allclose(y.copy_to_host(), 2.0 * x_h + 1.0)
    binary = rt.compile([KL.axpy], rt._kernel_tags())
    from repro.enums import ISA

    assert binary.isa is ISA.AMDGCN


def test_syclomatic_cuda_runs_on_intel(intel, rng):
    from repro.models.cuda import Cuda

    rt = Cuda(intel, "dpcpp")
    rt.translator = Syclomatic()
    n = 512
    x = rt.to_device(rng.random(n))
    rt.launch_1d(KL.scale_inplace, n, [n, 2.0, x])
    assert rt.compile([KL.scale_inplace], rt._kernel_tags()).isa.value == "spirv"


def test_provider_metadata():
    assert Hipify().PROVIDER is Provider.AMD
    assert Syclomatic().PROVIDER is Provider.INTEL
    assert AccToOmp().PROVIDER is Provider.INTEL
    assert Gpufort().PROVIDER is Provider.AMD
