"""Toolchains: capability tables match §4, gates fire correctly."""

import pytest

from repro.compilers import all_toolchains, get_toolchain
from repro.compilers.features import describe
from repro.compilers.registry import toolchains_for
from repro.enums import ISA, Language, Maturity, Model, Provider
from repro.errors import (
    UnsupportedFeatureError,
    UnsupportedRouteError,
    UnsupportedTargetError,
)
from repro.frontends import TranslationUnit
from repro import kernels as KL

CPP, F = Language.CPP, Language.FORTRAN


def _tu(model, language, features=(), kernelfn=KL.axpy):
    tu = TranslationUnit("t", model, language)
    tu.add(kernelfn)
    tu.require(*features)
    return tu


def test_registry_is_shared_instances():
    assert get_toolchain("nvcc") is get_toolchain("nvcc")
    assert len(all_toolchains()) == 24  # 20 Figure-1 toolchains + 3 OpenCL drivers + flang-cuda


def test_unknown_toolchain():
    with pytest.raises(KeyError, match="unknown toolchain"):
        get_toolchain("icc")


# -- §4 capability spot checks ---------------------------------------------


def test_nvcc_capabilities():
    nvcc = get_toolchain("nvcc")
    assert nvcc.provider is Provider.NVIDIA
    assert nvcc.accepts(Model.CUDA, CPP)
    assert not nvcc.accepts(Model.CUDA, F)  # CUDA Fortran is NVHPC's
    assert nvcc.targets_for(Model.CUDA, CPP) == {ISA.PTX}
    assert nvcc.supports_feature(Model.CUDA, CPP, "cuda:graphs")


def test_nvhpc_covers_five_models():
    nvhpc = get_toolchain("nvhpc")
    models = {(c.model, c.language) for c in nvhpc.capabilities}
    assert (Model.CUDA, F) in models
    assert (Model.OPENACC, CPP) in models and (Model.OPENACC, F) in models
    assert (Model.OPENMP, CPP) in models and (Model.OPENMP, F) in models
    assert (Model.STANDARD, CPP) in models and (Model.STANDARD, F) in models
    # "only a subset of the entire OpenMP 5.0 standard":
    assert not nvhpc.supports_feature(Model.OPENMP, CPP, "omp:metadirective")
    assert nvhpc.supports_feature(Model.OPENMP, CPP, "omp:reduction")


def test_hipcc_targets_both_platforms():
    hipcc = get_toolchain("hipcc")
    assert hipcc.targets_for(Model.HIP, CPP) == {ISA.AMDGCN, ISA.PTX}
    cap = hipcc.capability(Model.HIP, CPP)
    assert "HIP_PLATFORM" in cap.flag


def test_hipfort_gaps():
    hipfort = get_toolchain("hipfort")
    assert hipfort.accepts(Model.HIP, F)
    assert hipfort.supports_feature(Model.HIP, F, "hip:kernels")
    assert not hipfort.supports_feature(Model.HIP, F, "hip:events")
    assert not hipfort.supports_feature(Model.HIP, F, "hip:graphs")


def test_intel_openmp_is_comprehensive():
    for name, lang in (("dpcpp", CPP), ("ifx", F)):
        tc = get_toolchain(name)
        for tag in ("omp:metadirective", "omp:usm", "omp:assume",
                    "omp:masked", "omp:loop"):
            assert tc.supports_feature(Model.OPENMP, lang, tag), (name, tag)


def test_gcc_openacc_is_26():
    gcc = get_toolchain("gcc")
    assert gcc.supports_feature(Model.OPENACC, CPP, "acc:parallel")
    assert not gcc.supports_feature(Model.OPENACC, CPP, "acc:async")
    assert not gcc.supports_feature(Model.OPENACC, CPP, "acc:serial")


def test_onedpl_namespace_gap():
    onedpl = get_toolchain("onedpl")
    assert onedpl.supports_feature(Model.STANDARD, CPP, "stdpar:reduce")
    assert not onedpl.supports_feature(Model.STANDARD, CPP,
                                       "stdpar:std_namespace")


def test_maturity_annotations():
    assert get_toolchain("chipstar").maturity is Maturity.RESEARCH
    assert get_toolchain("roc-stdpar").maturity is Maturity.EXPERIMENTAL
    assert get_toolchain("flacc").maturity is Maturity.EXPERIMENTAL
    assert get_toolchain("zluda").maturity is Maturity.UNMAINTAINED
    assert get_toolchain("computecpp").maturity is Maturity.UNMAINTAINED


def test_cray_provider_is_hpe():
    cray = get_toolchain("cray-ce")
    assert cray.provider is Provider.HPE
    assert cray.accepts(Model.OPENACC, F)
    assert not cray.accepts(Model.OPENACC, CPP)


# -- gates -------------------------------------------------------------------


def test_route_gate():
    with pytest.raises(UnsupportedRouteError, match="does not compile"):
        get_toolchain("ifx").compile(_tu(Model.HIP, CPP), ISA.SPIRV)


def test_target_gate():
    with pytest.raises(UnsupportedTargetError, match="cannot emit"):
        get_toolchain("nvcc").compile(_tu(Model.CUDA, CPP), ISA.SPIRV)


def test_feature_gate_names_the_feature():
    tu = _tu(Model.OPENMP, CPP, features=["omp:target", "omp:metadirective"])
    with pytest.raises(UnsupportedFeatureError) as err:
        get_toolchain("nvhpc").compile(tu, ISA.PTX)
    assert err.value.feature == "omp:metadirective"
    assert err.value.toolchain == "nvhpc"


def test_hw_features_always_pass():
    tu = _tu(Model.OPENMP, CPP,
             features=["omp:target", "omp:map"], kernelfn=KL.reduce_sum)
    # reduce_sum carries barrier/atomics/shared hardware tags.
    result = get_toolchain("gcc").compile(tu, ISA.AMDGCN)
    assert result.binary.isa is ISA.AMDGCN


def test_compile_result_contents():
    result = get_toolchain("nvcc").compile(_tu(Model.CUDA, CPP), ISA.PTX)
    assert result.toolchain == "nvcc"
    assert result.target is ISA.PTX
    assert "folds" in result.pass_report
    assert ".visible .entry axpy" in result.disassemble()
    assert result.binary.producer.startswith("nvcc-")


# -- compile cache ----------------------------------------------------------


def test_repeated_identical_compiles_hit_the_cache():
    from repro.compilers.toolchain import clear_compile_cache, compile_cache_stats

    clear_compile_cache()
    nvcc = get_toolchain("nvcc")
    first = nvcc.compile(_tu(Model.CUDA, CPP), ISA.PTX)
    assert nvcc.cache_stats.misses == 1
    assert nvcc.cache_stats.hits == 0
    # A fresh TU object with identical content — and even a different
    # unit name, since runtimes mint per-instance names — is a hit.
    tu2 = TranslationUnit("другое", Model.CUDA, CPP)
    tu2.add(KL.axpy)
    second = nvcc.compile(tu2, ISA.PTX)
    assert second is first
    assert nvcc.cache_stats.hits == 1
    assert compile_cache_stats().hits >= 1


def test_compile_cache_key_separates_configurations():
    from repro.compilers.toolchain import clear_compile_cache

    clear_compile_cache()
    hipcc = get_toolchain("hipcc")
    a = hipcc.compile(_tu(Model.HIP, CPP), ISA.AMDGCN)
    b = hipcc.compile(_tu(Model.HIP, CPP), ISA.PTX)  # different target
    c = hipcc.compile(_tu(Model.HIP, CPP, kernelfn=KL.fill), ISA.AMDGCN)
    d = hipcc.compile(_tu(Model.HIP, CPP), ISA.AMDGCN, sanitize=True)
    assert len({id(a), id(b), id(c), id(d)}) == 4
    assert hipcc.cache_stats.misses == 4
    assert hipcc.cache_stats.hits == 0
    # Gates still fire on every call, cached or not.
    with pytest.raises(UnsupportedTargetError):
        hipcc.compile(_tu(Model.HIP, CPP), ISA.SPIRV)


def test_cache_hit_with_sanitize_still_attaches_diagnostics():
    from repro.compilers.toolchain import clear_compile_cache

    clear_compile_cache()
    nvcc = get_toolchain("nvcc")
    first = nvcc.compile(_tu(Model.CUDA, CPP), ISA.PTX, sanitize=True)
    assert first.diagnostics is not None
    second = nvcc.compile(_tu(Model.CUDA, CPP), ISA.PTX, sanitize=True)
    assert second is first
    assert nvcc.cache_stats.hits == 1
    # The hit carries the full LintReport, not a stripped result.
    assert second.diagnostics is first.diagnostics
    assert hasattr(second.diagnostics, "diagnostics")


def test_cache_separates_translated_from_native_units():
    """A hipified unit and a hand-written HIP unit share a fingerprint
    but must not share a cache slot: their TV diagnostics differ."""
    from repro.compilers.toolchain import clear_compile_cache
    from repro.translate.hipify import Hipify

    clear_compile_cache()
    hipcc = get_toolchain("hipcc")
    translated = Hipify().translate_unit(_tu(Model.CUDA, CPP))
    native = _tu(Model.HIP, CPP)
    assert translated.fingerprint() == native.fingerprint()
    a = hipcc.compile(translated, ISA.AMDGCN, sanitize=True)
    b = hipcc.compile(native, ISA.AMDGCN, sanitize=True)
    assert a is not b
    assert hipcc.cache_stats.misses == 2
    assert hipcc.cache_stats.hits == 0
    # A second compile of an identically translated unit is a hit —
    # and still carries the translation-validated report.
    c = hipcc.compile(Hipify().translate_unit(_tu(Model.CUDA, CPP)),
                      ISA.AMDGCN, sanitize=True)
    assert c is a
    assert hipcc.cache_stats.hits == 1
    assert c.diagnostics is not None


def test_toolchains_for_lookup():
    names = {t.name for t in toolchains_for(Model.SYCL, CPP, ISA.PTX)}
    assert names == {"dpcpp", "opensycl", "computecpp"}
    names = {t.name for t in toolchains_for(Model.STANDARD, F, ISA.SPIRV)}
    assert names == {"ifx"}
    assert toolchains_for(Model.HIP, F, ISA.SPIRV) == []


def test_feature_descriptions_exist_for_all_capability_tags():
    for tc in all_toolchains():
        for cap in tc.capabilities:
            for tag in cap.features:
                assert describe(tag) != tag or ":" not in tag, (
                    f"{tc.name} uses undocumented feature tag '{tag}'"
                )


def test_compile_cache_single_flight_under_contention(monkeypatch):
    """N workers racing on one TU do ONE compile: 1 miss + N-1 hits.

    The patched optimizer blocks the leader inside the compile until the
    other workers have piled up on the per-key flight lock, so without
    single-flighting every worker would miss and compile redundantly.
    """
    import threading
    import time

    import repro.compilers.toolchain as tc_mod
    from repro.compilers.toolchain import clear_compile_cache

    clear_compile_cache()
    real_optimize = tc_mod.optimize_module
    entered = threading.Event()
    release = threading.Event()
    calls: list[str] = []

    def blocking_optimize(module, level):
        calls.append(module.name)
        entered.set()
        assert release.wait(timeout=10), "test never released the leader"
        return real_optimize(module, level=level)

    monkeypatch.setattr(tc_mod, "optimize_module", blocking_optimize)
    nvcc = get_toolchain("nvcc")
    tu = _tu(Model.CUDA, CPP)
    n = 6
    results: list[object] = [None] * n

    def worker(i):
        results[i] = nvcc.compile(tu, ISA.PTX)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    assert entered.wait(timeout=10)
    time.sleep(0.05)  # let the followers reach the flight lock
    release.set()
    for t in threads:
        t.join(timeout=10)
    assert len(calls) == 1
    stats = nvcc.cache_stats.snapshot()
    assert stats.misses == 1
    assert stats.hits == n - 1
    assert all(r is results[0] for r in results)


def test_compile_distinct_units_do_not_serialize_counters():
    """Different TUs take different flight locks: two misses, no hits."""
    import threading

    from repro.compilers.toolchain import clear_compile_cache

    clear_compile_cache()
    nvcc = get_toolchain("nvcc")
    units = [_tu(Model.CUDA, CPP, kernelfn=KL.axpy),
             _tu(Model.CUDA, CPP, kernelfn=KL.reduce_sum)]
    threads = [threading.Thread(target=nvcc.compile, args=(u, ISA.PTX))
               for u in units]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    stats = nvcc.cache_stats.snapshot()
    assert stats.misses == 2
    assert stats.hits == 0
