"""Matrix aggregation, agreement report, descriptions, and data integrity."""

import pytest

from repro.core.descriptions import (
    CELL_TO_DESCRIPTION,
    DESCRIPTIONS,
    describe_cell,
)
from repro.core.matrix import CellResult, RouteResult, evaluate_route
from repro.core.probes import SuiteResult, ProbeOutcome, Probe
from repro.core.routes import Route, all_routes
from repro.data.paper_matrix import PAPER_MATRIX, expected
from repro.data.references import REFERENCES
from repro.enums import (
    Language,
    Maturity,
    Mechanism,
    Model,
    Provider,
    SupportCategory,
    Vendor,
    all_cells,
)

C = SupportCategory


def _route_result(category, provider=Provider.NVIDIA, coverage=1.0):
    route = Route(
        route_id=f"r-{provider.value}-{category.name}-{coverage}",
        vendor=Vendor.NVIDIA, model=Model.CUDA, language=Language.CPP,
        provider=provider, mechanism=Mechanism.NATIVE,
        maturity=Maturity.PRODUCTION, label="x", via="x",
        probe_suite="cuda_cpp", runtime_factory=lambda d: None,
        description_id=1,
    )
    n_pass = round(coverage * 10)
    outcomes = [ProbeOutcome(Probe(f"p{i}", "m"), passed=i < n_pass)
                for i in range(10)]
    return RouteResult(route=route,
                       suite=SuiteResult("cuda_cpp", outcomes),
                       category=category)


def _cell(*results):
    cell = CellResult(Vendor.NVIDIA, Model.CUDA, Language.CPP)
    cell.routes.extend(results)
    return cell


def test_empty_cell_is_none():
    cell = _cell()
    assert cell.primary is C.NONE
    assert cell.secondary is None
    assert cell.best_route() is None


def test_primary_is_best_rank():
    cell = _cell(_route_result(C.LIMITED), _route_result(C.FULL),
                 _route_result(C.SOME))
    assert cell.primary is C.FULL


def test_secondary_from_other_provider_class():
    cell = _cell(
        _route_result(C.FULL, Provider.NVIDIA),
        _route_result(C.NONVENDOR, Provider.COMMUNITY),
    )
    assert cell.primary is C.FULL
    assert cell.secondary is C.NONVENDOR


def test_no_secondary_when_single_class():
    cell = _cell(
        _route_result(C.FULL, Provider.NVIDIA),
        _route_result(C.SOME, Provider.AMD),  # also a vendor
    )
    assert cell.secondary is None


def test_no_secondary_when_same_category():
    cell = _cell(
        _route_result(C.NONVENDOR, Provider.INTEL),
        _route_result(C.NONVENDOR, Provider.COMMUNITY),
    )
    assert cell.secondary is None


def test_best_route_prefers_rank_then_coverage():
    weak = _route_result(C.SOME, coverage=0.6)
    strong = _route_result(C.SOME, coverage=0.8)
    full = _route_result(C.FULL, coverage=0.9)
    cell = _cell(weak, strong, full)
    assert cell.best_route() is full
    cell2 = _cell(weak, strong)
    assert cell2.best_route() is strong


def test_evaluate_route_end_to_end(system):
    route = next(r for r in all_routes() if r.route_id == "amd-hip-cpp-hipcc")
    result = evaluate_route(route, system)
    assert result.coverage == 1.0
    assert result.category is C.FULL


# -- descriptions --------------------------------------------------------------


def test_descriptions_numbering_is_papers():
    assert sorted(DESCRIPTIONS) == list(range(1, 45))
    assert describe_cell(Vendor.AMD, Model.OPENMP, Language.FORTRAN).number == 25
    assert describe_cell(Vendor.INTEL, Model.PYTHON, Language.PYTHON).number == 44
    assert describe_cell(Vendor.NVIDIA, Model.CUDA, Language.CPP).number == 1


def test_shared_descriptions_cover_multiple_cells():
    assert len(DESCRIPTIONS[4].cells) == 2  # HIP Fortran
    assert len(DESCRIPTIONS[6].cells) == 3  # SYCL Fortran
    assert len(DESCRIPTIONS[14].cells) == 3  # Kokkos Fortran
    assert len(DESCRIPTIONS[16].cells) == 3  # Alpaka Fortran


def test_description_titles_name_their_cells():
    for desc in DESCRIPTIONS.values():
        vendors = {vendor.value for vendor, _m, _l in desc.cells}
        for vendor in vendors:
            assert vendor in desc.title, desc.number


def test_description_references_resolve():
    for desc in DESCRIPTIONS.values():
        for key in desc.references:
            assert key in REFERENCES, (desc.number, key)


def test_paper_matrix_description_ids_match():
    for cell, paper in PAPER_MATRIX.items():
        assert CELL_TO_DESCRIPTION[cell] == paper.description_id


def test_paper_matrix_category_counts():
    from collections import Counter

    counts = Counter(c.primary for c in PAPER_MATRIX.values())
    assert sum(counts.values()) == 51
    assert counts[C.NONE] == 9
    assert counts[C.FULL] == 13
    assert counts[C.INDIRECT] == 3
    assert counts[C.NONVENDOR] == 8
    assert counts[C.SOME] == 7
    assert counts[C.LIMITED] == 11


def test_paper_matrix_dual_ratings():
    duals = {cell: p for cell, p in PAPER_MATRIX.items()
             if p.secondary is not None}
    assert set(duals) == {
        (Vendor.NVIDIA, Model.PYTHON, Language.PYTHON),
        (Vendor.INTEL, Model.CUDA, Language.CPP),
    }


def test_paper_matrix_rationales_cite_text():
    for paper in PAPER_MATRIX.values():
        assert len(paper.rationale) > 20


def test_expected_lookup():
    cell = expected(Vendor.AMD, Model.STANDARD, Language.CPP)
    assert cell.primary is C.LIMITED
    with pytest.raises(KeyError):
        expected(Vendor.AMD, Model.SYCL, Language.PYTHON)


def test_vendor_native_diagonal_is_full():
    assert expected(Vendor.NVIDIA, Model.CUDA, Language.CPP).primary is C.FULL
    assert expected(Vendor.AMD, Model.HIP, Language.CPP).primary is C.FULL
    assert expected(Vendor.INTEL, Model.SYCL, Language.CPP).primary is C.FULL


def test_report_ambivalent_cells():
    from repro.core.report import AMBIVALENT_CELLS

    assert len(AMBIVALENT_CELLS) == 5
    for cell in AMBIVALENT_CELLS:
        assert cell in PAPER_MATRIX
