"""tracesan: static translation validation of trace-compiled programs.

Three layers of assurance:

* the **library sweep** — every traceable bundled kernel is statically
  proven equivalent to its IR at its canonical geometry, with zero
  kernel executions and an empty divergence ledger;
* **seeded miscompiles** — deterministic mutations of a generated
  program (wrong value op, corrupted byte metering, corrupted deferral
  splice, allowlist escape) each fire the designated TC code;
* the **shared fuzz corpus** (``trace_fuzz.py``) — the same kernels the
  dynamic differential suite runs bit-exactly must validate statically,
  and the bailing cases must be reported as nothing-to-validate, never
  validated.
"""

import re
from collections import Counter

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.tracesan import (
    TraceVerdict,
    canonical_batch_width,
    lint_traces,
    trace_agreement_summary,
    traces_lint_report,
    validate_library,
    validate_program,
)
from repro.data.trace_divergences import KNOWN_TRACE_DIVERGENCES
from repro.isa.interpreter import snapshot_interpreter_totals
from repro.isa.tracing import TraceBailout, _TraceCompiler, clear_trace_cache
from repro.kernels import KERNEL_LIBRARY

from tests.trace_fuzz import BAILING_CASES, FUZZ_CORPUS, TRACEABLE_CASES


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


def _compile(ir, grid, block):
    bpb = canonical_batch_width(ir, block)
    src = _TraceCompiler(ir, 32, grid, block, bpb).compile()
    return src, bpb


GRID, BLOCK3 = (64, 1, 1), (256, 1, 1)


def _triad_source():
    ir = KERNEL_LIBRARY["stream_triad"].ir
    src, bpb = _compile(ir, GRID, BLOCK3)
    return ir, src, bpb


def _codes(ir, src, bpb):
    v = validate_program(ir, src, 32, GRID, BLOCK3, bpb)
    return v, {d.code for d in v.diagnostics}


# -- library sweep ------------------------------------------------------------


class TestLibrarySweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        clear_trace_cache()
        before = snapshot_interpreter_totals().launches
        results = validate_library()
        after = snapshot_interpreter_totals().launches
        return results, after - before

    def test_covers_whole_library(self, sweep):
        results, _ = sweep
        assert set(results) == set(KERNEL_LIBRARY)

    def test_zero_kernel_executions(self, sweep):
        _, launches = sweep
        assert launches == 0

    def test_every_traceable_kernel_validates(self, sweep):
        results, _ = sweep
        verdicts = {n: v for n, v in results.items()
                    if isinstance(v, TraceVerdict)}
        assert verdicts, "no kernel trace-compiled at all"
        bad = {n: [d.code for d in v.diagnostics]
               for n, v in verdicts.items() if not v.validated}
        assert not bad, f"kernels failing static validation: {bad}"

    def test_no_tc01_errors(self, sweep):
        results, _ = sweep
        report = traces_lint_report(results)
        assert [d for d in report.diagnostics if d.code == "TC01"] == []
        assert report.errors == []

    def test_bailouts_are_info_not_verdicts(self, sweep):
        results, _ = sweep
        bailed = {n: v for n, v in results.items() if isinstance(v, str)}
        # The library's one known-untraceable kernel.
        assert "warp_reduce_sum" in bailed
        report = traces_lint_report(results)
        for d in report.diagnostics:
            if d.kernel in bailed:
                assert d.code == "TC05"
                assert d.severity == Severity.INFO

    def test_agreement_summary_is_consistent(self, sweep):
        results, _ = sweep
        s = trace_agreement_summary(results)
        assert s["kernels_total"] == len(KERNEL_LIBRARY)
        assert s["validated"] + s["bailed_out"] + s["errors"] >= \
            s["kernels_total"] - s["inexact"]
        assert s["errors"] == 0
        assert s["validated"] == s["kernels_total"] - s["bailed_out"]

    def test_validation_stays_in_time_budget(self, sweep):
        results, _ = sweep
        slow = [n for n, v in results.items()
                if isinstance(v, TraceVerdict) and v.elapsed_ms >= 50.0]
        # A single wall-clock sample is noisy on a loaded box: give any
        # over-budget kernel a best-of-3 re-proof before failing.
        still = {}
        for name in slow:
            ir = KERNEL_LIBRARY[name].ir
            best = min(validate_library(kernels={name: ir})[name].elapsed_ms
                       for _ in range(3))
            if best >= 50.0:
                still[name] = best
        assert not still, f"kernels over the 50 ms budget: {still}"


def test_divergence_ledger_ships_empty():
    """The ledger exists for documented gaps; today there are none."""
    assert not KNOWN_TRACE_DIVERGENCES


def test_lint_traces_report_shape():
    report = lint_traces()
    assert report.errors == []
    codes = {d.code for d in report.diagnostics}
    assert codes <= {"TC04", "TC05", "TC06"}


# -- seeded miscompiles -------------------------------------------------------


class TestSeededMiscompiles:
    def test_clean_program_validates(self):
        ir, src, bpb = _triad_source()
        v, codes = _codes(ir, src, bpb)
        assert v.validated and v.exact and not codes

    def test_wrong_value_op_fires_tc01(self):
        """Consistently swapping multiply for add is a provable divergence."""
        ir, src, bpb = _triad_source()
        assert "np.multiply" in src
        v, codes = _codes(ir, src.replace("np.multiply", "np.add"), bpb)
        assert not v.validated
        assert "TC01" in codes

    def test_corrupt_byte_metering_fires_tc01(self):
        ir, src, bpb = _triad_source()
        mutated = re.sub(r"(_bld \+= [^\n]*) \* 8", r"\1 * 4", src, count=1)
        assert mutated != src
        v, codes = _codes(ir, mutated, bpb)
        assert not v.validated
        assert "TC01" in codes

    def test_corrupt_deferral_splice_fires_tc03(self):
        """One splice drifting from its siblings breaks the re-proof."""
        ir, src, bpb = _triad_source()
        lines = src.split("\n")
        dup = next(l for l, c in Counter(
            l for l in lines if re.match(r"^\s+r\d+ = ", l)).items()
            if c >= 2)
        second = [i for i, l in enumerate(lines) if l == dup][1]
        lines[second] = lines[second] + " + 0.0"
        v, codes = _codes(ir, "\n".join(lines), bpb)
        assert not v.validated
        assert "TC03" in codes

    def test_allowlist_escape_fires_tc02(self):
        ir, src, bpb = _triad_source()
        mutated = src.replace(
            "def _trace(X, B, args, stats):",
            "def _trace(X, B, args, stats):\n    import os", 1)
        v, codes = _codes(ir, mutated, bpb)
        assert not v.validated
        assert "TC02" in codes

    def test_syntax_error_fires_tc02(self):
        ir, src, bpb = _triad_source()
        v, codes = _codes(ir, src + "\n    )", bpb)
        assert not v.validated
        assert codes == {"TC02"}

    def test_dropped_counter_bump_fires_tc01(self):
        """Removing one `_ic` metering line breaks the chunk structure."""
        ir, src, bpb = _triad_source()
        lines = src.split("\n")
        idx = next(i for i, l in enumerate(lines)
                   if re.match(r"^\s+_ic \+= ", l))
        del lines[idx]
        v, codes = _codes(ir, "\n".join(lines), bpb)
        assert not v.validated
        assert "TC01" in codes


# -- shared fuzz corpus, static half -----------------------------------------


@pytest.mark.parametrize("case", TRACEABLE_CASES, ids=lambda c: c.name)
def test_fuzz_case_validates_statically(case):
    grid = (case.grid[0], 1, 1)
    block = (case.block[0], 1, 1)
    src, bpb = _compile(case.ir, grid, block)
    v = validate_program(case.ir, src, 32, grid, block, bpb)
    assert v.validated, [d.render() for d in v.diagnostics]
    assert not [d for d in v.diagnostics if d.severity >= Severity.ERROR]


@pytest.mark.parametrize("case", BAILING_CASES, ids=lambda c: c.name)
def test_fuzz_bailout_reported_never_validated(case):
    grid = (case.grid[0], 1, 1)
    block = (case.block[0], 1, 1)
    with pytest.raises(TraceBailout) as exc:
        _compile(case.ir, grid, block)
    assert exc.value.reason == case.bailout_reason
    report = traces_lint_report({case.name: exc.value.reason})
    assert [d.code for d in report.diagnostics] == ["TC05"]
    assert report.errors == []


def test_fuzz_corpus_shape():
    """The corpus the two suites share keeps its contract."""
    assert len(FUZZ_CORPUS) == 24
    assert len(BAILING_CASES) == 3
    reasons = {c.bailout_reason for c in BAILING_CASES}
    assert reasons == {"shuffle", "exit", "atomic_cas"}


# -- the validate=True hook in tracing.lookup ---------------------------------


def test_lookup_validate_caches_verdict(rng):
    import numpy as np

    from repro.isa import KernelExecutor
    from repro.isa.tracing import lookup

    ir = KERNEL_LIBRARY["stream_triad"].ir
    n = 4096
    mem = np.zeros(n * 8 * 3 + (1 << 16), dtype=np.uint8)
    ex = KernelExecutor(ir, 32, mem, trace_mode=True)
    bpb = max(1, ex.chunk_lanes // 256)
    grid, block = (16, 1, 1), (256, 1, 1)

    plain = lookup(ex, grid, block, bpb)
    assert plain is not None and plain.verdict is None

    validated = lookup(ex, grid, block, bpb, validate=True)
    assert validated is plain
    assert isinstance(validated.verdict, TraceVerdict)
    assert validated.verdict.validated
    assert validated.verdict.key == validated.key

    # The verdict is computed once and cached alongside the program.
    again = lookup(ex, grid, block, bpb, validate=True)
    assert again.verdict is validated.verdict
