"""FIG1-AGREE — derived-vs-paper agreement, ambivalent cells broken out.

§5 discusses five cells whose ratings involved judgment calls (NVIDIA
OpenMP C++, NVIDIA Python, AMD Standard C++, Intel CUDA C++, Intel
Standard C++).  The bench reports overall agreement and these cells
separately, writing the report artifact.
"""

from __future__ import annotations

from repro.core.report import AMBIVALENT_CELLS, compare
from repro.enums import SupportCategory


def test_agreement_report(derived_matrix, artifacts_dir):
    report = compare(derived_matrix)
    (artifacts_dir / "agreement_report.txt").write_text(
        "\n".join(report.summary_lines()) + "\n"
    )
    assert report.n_cells == 51
    assert report.agreement == 1.0, report.mismatches
    assert report.n_full_matches == 51


def test_ambivalent_cells_resolved(derived_matrix):
    report = compare(derived_matrix)
    ambivalent = report.ambivalent()
    assert len(ambivalent) == len(AMBIVALENT_CELLS) == 5
    for comparison in ambivalent:
        assert comparison.match, (
            f"{comparison.vendor} {comparison.model} diverges on an "
            f"ambivalent cell"
        )


def test_category_distribution(derived_matrix):
    """Shape check: the derived table's category mix is the paper's."""
    from collections import Counter

    counts = Counter(cell.primary for cell in derived_matrix)
    # 9 cells have no support at all: SYCL Fortran x3, Alpaka Fortran
    # x3, Intel CUDA Fortran, Intel HIP Fortran, AMD Standard Fortran.
    assert counts[SupportCategory.NONE] == 9
    # Vendors fully support their own native models (and more).
    assert counts[SupportCategory.FULL] >= 9
    # The community carries a substantial share of the ecosystem.
    assert counts[SupportCategory.NONVENDOR] >= 7


def test_agreement_benchmark(benchmark, derived_matrix):
    report = benchmark(compare, derived_matrix)
    assert report.agreement == 1.0
