"""BENCH_perfmatrix — perf-portability matrix: cold build, warm reload.

Times the full 51-cell performance-portability evaluation (the five
BabelStream kernels through every viable route of every cell):

* ``sequential`` — the reference :func:`build_perf_matrix` loop;
* ``jobs=1`` / ``jobs=4`` — the perf scheduler, no store;
* ``cold_store`` — scheduler populating an empty perf store (also runs
  the compat build the perf matrix depends on);
* ``warm_store`` — the same store re-read, which must execute **zero
  stream kernels** (and zero compat probes);
* ``portability`` — the ⫫-report query over the built matrix.

Every configuration is checked bit-identical to the sequential loop,
the warm run's stream-kernel counter is asserted to be exactly zero,
and the portability report must contain a full three-vendor cascade for
every (model, language) with unsupported rows at ⫫ = 0.  Writes
``BENCH_perfmatrix.json``.

Stream arrays are small (n = 8192 full, 4096 quick): the simulator's
timing model is analytic, so the *invariants* are size-independent and
the benchmark measures orchestration + store cost, not array size.

Run as a script (CI smoke gate)::

    PYTHONPATH=src python benchmarks/bench_perfmatrix.py --quick

Exit code 1 if any configuration diverges, the warm run executes a
stream kernel, or the warm reload fails to beat the cold build by the
acceptance factor (5x full, 2x quick).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

from repro.core.matrix import build_matrix
from repro.enums import all_cells
from repro.perfport import (
    PerfParams,
    PerfScheduler,
    build_perf_matrix,
    portability_report,
    run_perf_matrix,
)
from repro.service import MetricsRegistry
from repro.workloads.babelstream import reset_stream_totals, stream_totals

WARM_SPEEDUP_THRESHOLD = 5.0
WARM_SPEEDUP_THRESHOLD_QUICK = 2.0


def run(quick: bool = False) -> dict:
    repeats = 1 if quick else 3
    params = PerfParams(n=1 << 12 if quick else 1 << 13, reps=2)
    results: dict = {
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "params": params.as_dict(),
        "configs": {},
    }

    def timed(label: str, fn) -> object:
        best = None
        value = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            value = fn()
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        results["configs"][label] = {"seconds": round(best, 4)}
        return value

    compat = build_matrix()
    reference = timed("sequential",
                      lambda: build_perf_matrix(compat, params=params))

    for jobs in (1, 4):
        report = timed(
            f"jobs={jobs}",
            lambda j=jobs: PerfScheduler(
                j, compat=compat, params=params).build())
        results["configs"][f"jobs={jobs}"]["bit_identical"] = (
            report.matrix == reference)

    with tempfile.TemporaryDirectory(prefix="bench-perf-store-") as root:
        # Cold runs each get a FRESH directory (a repeat against a
        # populated store would silently measure the warm path).
        cold_best = None
        cold = None
        for i in range(repeats):
            store_dir = pathlib.Path(root) / f"cold-{i}"
            t0 = time.perf_counter()
            cold = run_perf_matrix(4, store=str(store_dir), params=params)
            dt = time.perf_counter() - t0
            cold_best = dt if cold_best is None else min(cold_best, dt)
        results["configs"]["cold_store"] = {
            "seconds": round(cold_best, 4),
            "bit_identical": cold.matrix == reference,
            "cells_evaluated": cold.cells_evaluated,
            "store_writes": cold.store.stats.as_dict()["writes"],
        }

        warm_root = str(pathlib.Path(root) / f"cold-{repeats - 1}")
        reset_stream_totals()
        warm_metrics = MetricsRegistry()
        warm = timed("warm_store",
                     lambda: run_perf_matrix(4, store=warm_root,
                                             params=params,
                                             metrics=warm_metrics))
        results["configs"]["warm_store"].update(
            bit_identical=warm.matrix == reference,
            cells_from_store=warm.cells_from_store,
            # Accumulated over `repeats` warm runs; must stay 0.
            stream_kernels=stream_totals()["kernels"],
            probe_executions=int(
                warm_metrics.counter("probes_executed").get()))

    rows = timed("portability", lambda: portability_report(reference))
    results["configs"]["portability"].update(
        rows=len(rows),
        rows_expected=len({(m, l) for _, m, l in all_cells()}),
        full_cascades=sum(1 for r in rows if len(r.cascade) == 3),
        unsupported_rows_at_zero=all(
            r.metric == 0.0 for r in rows if not r.supported_everywhere),
        positive_metrics=sum(1 for r in rows if r.metric > 0.0),
    )

    cold_s = results["configs"]["cold_store"]["seconds"]
    warm_s = results["configs"]["warm_store"]["seconds"]
    results["acceptance"] = {
        "warm_speedup": round(cold_s / warm_s, 2) if warm_s else float("inf"),
        "threshold": (WARM_SPEEDUP_THRESHOLD_QUICK if quick
                      else WARM_SPEEDUP_THRESHOLD),
    }
    return results


def verdict(results: dict) -> list[str]:
    """Failure messages; empty means the run passes its gates."""
    problems = []
    for label, row in results["configs"].items():
        if "bit_identical" in row and not row["bit_identical"]:
            problems.append(f"{label}: diverged from the sequential loop")
    warm = results["configs"]["warm_store"]
    if warm["cells_from_store"] != 51:
        problems.append(
            f"warm store reloaded {warm['cells_from_store']}/51 perf cells")
    if warm["stream_kernels"] != 0:
        problems.append(
            f"warm store run executed {warm['stream_kernels']} stream "
            f"kernels (must be 0)")
    if warm["probe_executions"] != 0:
        problems.append(
            f"warm store run executed {warm['probe_executions']} probes "
            f"(must be 0)")
    port = results["configs"]["portability"]
    if port["rows"] != port["rows_expected"]:
        problems.append(
            f"portability report has {port['rows']} rows, expected "
            f"{port['rows_expected']}")
    if port["full_cascades"] != port["rows"]:
        problems.append("some cascade is missing a vendor")
    if not port["unsupported_rows_at_zero"]:
        problems.append("an unsupported (model, language) row has ⫫ != 0")
    if port["positive_metrics"] == 0:
        problems.append("no (model, language) achieved ⫫ > 0")
    acc = results["acceptance"]
    if acc["warm_speedup"] < acc["threshold"]:
        problems.append(
            f"warm store sped up only {acc['warm_speedup']:.2f}x over cold "
            f"(< {acc['threshold']}x)")
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="one repeat, smaller arrays (CI smoke)")
    ap.add_argument("--out", type=pathlib.Path,
                    default=pathlib.Path("BENCH_perfmatrix.json"))
    args = ap.parse_args(argv)

    results = run(quick=args.quick)
    problems = verdict(results)
    results["pass"] = not problems

    args.out.write_text(json.dumps(results, indent=2) + "\n")
    for label, row in results["configs"].items():
        extras = "".join(
            f" {k}={v}" for k, v in row.items() if k != "seconds")
        print(f"{label:12s} {row['seconds']:8.3f}s{extras}")
    print(f"warm speedup over cold: {results['acceptance']['warm_speedup']}x "
          f"(threshold {results['acceptance']['threshold']}x, "
          f"cpu_count={results['cpu_count']})")
    for p in problems:
        print(f"FAIL: {p}", file=sys.stderr)
    print(f"wrote {args.out}")
    return 1 if problems else 0


# Pytest entry point: quick determinism + warm-store smoke, writes the
# JSON artifact next to the other benchmark outputs.
def test_perf_matrix_determinism_and_store(artifacts_dir):
    results = run(quick=True)
    problems = verdict(results)
    results["pass"] = not problems
    (artifacts_dir / "BENCH_perfmatrix.json").write_text(
        json.dumps(results, indent=2) + "\n")
    assert not problems, problems


if __name__ == "__main__":
    sys.exit(main())
