"""BENCH_service — evaluation service: cold vs warm store, worker scaling.

Times the full 51-cell matrix build through the concurrent scheduler:

* ``sequential`` — the reference ``build_matrix()`` path;
* ``jobs=1`` / ``jobs=N`` — the scheduler at one and several workers,
  no store (every cell re-derived);
* ``cold store`` — scheduler populating an empty result store;
* ``warm store`` — the same store re-read on a second run, which must
  perform **zero probe executions** (every cell content-addressed and
  reloaded).

Every configuration is checked bit-identical to the sequential build —
the scheduler's core invariant — and the warm run's probe counter is
asserted to be exactly zero.  Writes ``BENCH_service.json``.

Honesty note on worker scaling: the probe pipeline is pure Python, so
threads contend on the GIL and ``jobs=N`` is *not* expected to beat
``jobs=1`` on wall-clock (the JSON records ``cpu_count`` so readers can
see the machine; this container exposes a single CPU).  The headline
performance result of the service layer is the warm store, which turns
a ~2.5 s probe-everything build into a ~0.05 s reload.

Run as a script (CI smoke gate)::

    PYTHONPATH=src python benchmarks/bench_service.py --quick

Exit code 1 if any configuration diverges from the sequential build,
the warm run executes a probe, or the warm run fails to beat the cold
run by the acceptance factor (5x full, 2x quick).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

from repro.core.matrix import build_matrix
from repro.core.render import RENDERERS, matrix_lookup
from repro.service import MetricsRegistry, build_matrix_concurrent

#: Warm reload must beat the cold probe-everything build by this much.
WARM_SPEEDUP_THRESHOLD = 5.0
WARM_SPEEDUP_THRESHOLD_QUICK = 2.0


def _fingerprint(matrix) -> str:
    """A rendered-figure fingerprint: equal strings = equal Figure 1."""
    return RENDERERS["text"](matrix_lookup(matrix), title="bench")


def run(quick: bool = False) -> dict:
    repeats = 1 if quick else 3
    results: dict = {
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "configs": {},
    }

    def timed(label: str, fn) -> object:
        best = None
        value = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            value = fn()
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        results["configs"][label] = {"seconds": round(best, 4)}
        return value

    reference = timed("sequential", build_matrix)
    ref_fp = _fingerprint(reference)

    worker_counts = [1, 4] if quick else [1, 4, 16]
    for jobs in worker_counts:
        report = timed(f"jobs={jobs}", lambda j=jobs: build_matrix_concurrent(j))
        row = results["configs"][f"jobs={jobs}"]
        row["bit_identical"] = (
            report.matrix.cells == reference.cells
            and _fingerprint(report.matrix) == ref_fp)

    with tempfile.TemporaryDirectory(prefix="bench-service-store-") as root:
        # Cold runs each get a FRESH directory (a repeat against a
        # populated store would silently measure the warm path).
        cold_best = None
        cold = None
        for i in range(repeats):
            store_dir = pathlib.Path(root) / f"cold-{i}"
            t0 = time.perf_counter()
            cold = build_matrix_concurrent(4, store=str(store_dir))
            dt = time.perf_counter() - t0
            cold_best = dt if cold_best is None else min(cold_best, dt)
        results["configs"]["cold_store"] = {
            "seconds": round(cold_best, 4),
            "bit_identical": cold.matrix.cells == reference.cells,
            "cells_evaluated": cold.cells_evaluated,
            "store_writes": cold.store.stats.as_dict()["writes"],
        }

        # Warm runs all hit the last cold run's store.
        warm_root = str(pathlib.Path(root) / f"cold-{repeats - 1}")
        warm_metrics = MetricsRegistry()
        warm = timed("warm_store",
                     lambda: build_matrix_concurrent(
                         4, store=warm_root, metrics=warm_metrics))
        results["configs"]["warm_store"].update(
            bit_identical=warm.matrix.cells == reference.cells,
            cells_from_store=warm.cells_from_store,
            # Accumulated over `repeats` warm runs; must stay 0.
            probe_executions=int(
                warm_metrics.counter("probes_executed").get()))

    cold_s = results["configs"]["cold_store"]["seconds"]
    warm_s = results["configs"]["warm_store"]["seconds"]
    results["acceptance"] = {
        "warm_speedup": round(cold_s / warm_s, 2) if warm_s else float("inf"),
        "threshold": (WARM_SPEEDUP_THRESHOLD_QUICK if quick
                      else WARM_SPEEDUP_THRESHOLD),
    }
    return results


def verdict(results: dict) -> list[str]:
    """Failure messages; empty means the run passes its gates."""
    problems = []
    for label, row in results["configs"].items():
        if "bit_identical" in row and not row["bit_identical"]:
            problems.append(f"{label}: diverged from the sequential build")
    warm = results["configs"]["warm_store"]
    if warm["cells_from_store"] != 51:
        problems.append(
            f"warm store reloaded {warm['cells_from_store']}/51 cells")
    if warm["probe_executions"] != 0:
        problems.append(
            f"warm store run executed {warm['probe_executions']} probes "
            f"(must be 0)")
    acc = results["acceptance"]
    if acc["warm_speedup"] < acc["threshold"]:
        problems.append(
            f"warm store sped up only {acc['warm_speedup']:.2f}x over cold "
            f"(< {acc['threshold']}x)")
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="one repeat, fewer worker counts (CI smoke)")
    ap.add_argument("--out", type=pathlib.Path,
                    default=pathlib.Path("BENCH_service.json"))
    args = ap.parse_args(argv)

    results = run(quick=args.quick)
    problems = verdict(results)
    results["pass"] = not problems

    args.out.write_text(json.dumps(results, indent=2) + "\n")
    for label, row in results["configs"].items():
        extras = "".join(
            f" {k}={v}" for k, v in row.items() if k != "seconds")
        print(f"{label:12s} {row['seconds']:8.3f}s{extras}")
    print(f"warm speedup over cold: {results['acceptance']['warm_speedup']}x "
          f"(threshold {results['acceptance']['threshold']}x, "
          f"cpu_count={results['cpu_count']})")
    for p in problems:
        print(f"FAIL: {p}", file=sys.stderr)
    print(f"wrote {args.out}")
    return 1 if problems else 0


# Pytest entry point: quick determinism + warm-store smoke, writes the
# JSON artifact next to the other benchmark outputs.
def test_service_store_and_scheduler(artifacts_dir):
    results = run(quick=True)
    problems = verdict(results)
    results["pass"] = not problems
    (artifacts_dir / "BENCH_service.json").write_text(
        json.dumps(results, indent=2) + "\n")
    assert not problems, problems


if __name__ == "__main__":
    sys.exit(main())
