"""EXT-VV / EXT-EVOLVE / EXT-SCALE — extension experiments.

Beyond the paper's own tables/figures, DESIGN.md commits to realizing
the material the paper leans on or defers:

* **EXT-VV** — the V&V conformance tables (refs [7-9, 50-51]): the
  per-compiler, per-standard-version matrices for OpenMP and OpenACC,
  asserted against the §4 support statements.
* **EXT-EVOLVE** — the "living overview" (§5 Topicality +
  acknowledgments): the 2022-workshop → 2023-paper changelog.
* **EXT-SCALE** — description 17's cuNumeric multi-GPU claim: measured
  simulated-time scaling across 1/2/4 H100s.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.enums import Language, Model, Vendor


@pytest.fixture(scope="module")
def openmp_reports(simulated_system, artifacts_dir):
    from repro.core.validation import compiler_table, render_compiler_table

    reports = compiler_table(Model.OPENMP, Language.CPP, simulated_system)
    (artifacts_dir / "conformance_openmp.txt").write_text(
        render_compiler_table(reports) + "\n")
    return reports


def test_vv_openmp_table_matches_section4(openmp_reports):
    by_key = {(r.toolchain, r.device): r for r in openmp_reports}
    # NVHPC: 'only a subset of the entire OpenMP 5.0 standard'.
    nvhpc = by_key[("nvhpc", "H100-SXM5")]
    assert nvhpc.conforms_to() == "4.5"
    assert nvhpc.version_verdict("5.0").startswith("partial")
    # Intel: 'All OpenMP 4.5 and most OpenMP 5.0 and 5.1 features'.
    intel = by_key[("dpcpp", "DataCenterMax-1550")]
    assert intel.conforms_to() == "5.1"
    # GCC: 'currently supports OpenMP 4.5 entirely, while ... 5.0, 5.1
    # ... are currently being implemented'.
    gcc = by_key[("gcc", "H100-SXM5")]
    assert gcc.conforms_to() == "4.5"
    # AOMP appears for both AMD and NVIDIA devices (description 9).
    aomp_devices = {d for (t, d) in by_key if t == "aomp"}
    assert aomp_devices == {"MI250X-GCD", "H100-SXM5"}


def test_vv_openacc_table(simulated_system, artifacts_dir):
    from repro.core.validation import compiler_table, render_compiler_table

    reports = compiler_table(Model.OPENACC, Language.FORTRAN, simulated_system)
    (artifacts_dir / "conformance_openacc.txt").write_text(
        render_compiler_table(reports) + "\n")
    by_key = {(r.toolchain, r.device): r for r in reports}
    assert by_key[("nvhpc", "H100-SXM5")].conforms_to() == "3.0"
    assert by_key[("gcc", "MI250X-GCD")].conforms_to() == "2.6"
    assert by_key[("cray-ce", "MI250X-GCD")].conforms_to() == "3.0"
    # Flacc runs but its experimental maturity is a route-level property;
    # the V&V table reports raw feature conformance (2.6-level).
    assert by_key[("flacc", "MI250X-GCD")].version_verdict("2.6") == "full"


def test_vv_conformance_benchmark(benchmark, simulated_system):
    from repro.core.validation import run_conformance

    report = benchmark.pedantic(
        run_conformance,
        args=(Model.OPENMP, Language.CPP, "dpcpp",
              simulated_system.device(Vendor.INTEL)),
        rounds=2, iterations=1,
    )
    assert report.conforms_to() == "5.1"


def test_evolve_changelog(artifacts_dir):
    from repro.core.evolution import changelog, diff, stability
    from repro.data.snapshots import SNAPSHOT_2022, SNAPSHOT_2023

    log = changelog(SNAPSHOT_2022, SNAPSHOT_2023)
    (artifacts_dir / "changelog_2022_2023.txt").write_text(log + "\n")
    changes = diff(SNAPSHOT_2022, SNAPSHOT_2023)
    assert len(changes) == 4
    assert stability(SNAPSHOT_2022, SNAPSHOT_2023) > 0.9
    # every change is on a cell §5's Topicality paragraph discusses
    topicality_models = {Model.STANDARD, Model.CUDA, Model.HIP}
    assert {c.model for c in changes} <= topicality_models


def test_scale_cunumeric(artifacts_dir):
    from repro.gpu import System
    from repro.models.cunumeric import LegateRuntime

    n = 1 << 21
    lines = [f"cuNumeric-style scaling, n={n} float64, 4 fused ops"]
    times = {}
    for n_devices in (1, 2, 4):
        system = System.of(*["H100-SXM5"] * n_devices,
                           backing_bytes=1 << 26)
        legate = LegateRuntime(list(system))
        arr = legate.array(np.ones(n))
        t0 = legate.synchronize()
        for _ in range(4):
            arr = 2.0 * arr + arr
        times[n_devices] = legate.synchronize() - t0
        lines.append(f"  {n_devices} x H100: {times[n_devices]*1e6:8.1f} sim-us")
        assert np.isclose(arr.sum(), (3.0 ** 4) * n)  # (2x+x) four times
    (artifacts_dir / "cunumeric_scaling.txt").write_text("\n".join(lines) + "\n")
    assert times[2] < times[1]
    assert times[4] < times[2]


def test_scale_benchmark(benchmark):
    from repro.gpu import System
    from repro.models.cunumeric import LegateRuntime

    system = System.of("H100-SXM5", "H100-SXM5", backing_bytes=1 << 25)
    legate = LegateRuntime(list(system))
    data = np.ones(1 << 18)

    def step():
        arr = legate.array(data)
        out = 2.0 * arr + arr
        result = out.sum()
        arr.free()
        out.free()
        return result

    result = benchmark(step)
    assert np.isclose(result, 3.0 * (1 << 18))
