"""BENCH_interpreter — interpreter tiers: isolated vs batched vs traced.

Times library kernels across interpreter batch widths (all with the
trace compiler off):

* ``isolated`` — ``max_blocks_per_batch=1``, the historical behaviour
  where every shared-memory/barrier kernel ran one block per batch;
* ``narrow`` — 4 blocks per batch;
* ``max`` — no cap; ``chunk_lanes // block_threads`` blocks per batch;

and then the **traced** tier — ``trace_mode=True``, where the per-batch
dispatch loop is fused into one cached generated-NumPy program (one
warm-up launch compiles; the timed launch replays the cached program).

For each kernel the run also checks that results are bit-identical and
the work counters (flops, bytes, atomics, barriers) are independent of
batch width *and* of tracing — the differential guarantee both
execution paths make.  Writes ``BENCH_interpreter.json``.

Run as a script (CI smoke gate)::

    PYTHONPATH=src python benchmarks/bench_interpreter.py --quick

Exit code 1 if any barrier/shared-memory kernel fails to beat the
block-isolated path, if any traced kernel is not bit-identical, or if
the speedup gates fail: in full mode the 2^21-element tree reduction
must be >= 5x batched-vs-isolated, and the traced tier must be >= 5x
over the batched path on both stream_triad and reduce_sum; in quick
mode the traced stream_triad must beat the batched path by a
conservative floor.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.isa.interpreter import KernelExecutor, snapshot_interpreter_totals
from repro.kernels import BLOCK, KERNEL_LIBRARY

#: Batch-width configurations under test.
WIDTHS = {"isolated": 1, "narrow": 4, "max": None}

#: The acceptance criterion: tree reduction at 2^21 elements must be at
#: least this much faster batched than block-isolated.
ACCEPT_KERNEL = "reduce_sum"
ACCEPT_N = 1 << 21
ACCEPT_SPEEDUP = 5.0

#: Traced-tier acceptance: at the full size the trace-compiled path
#: must beat the *batched* path by at least this much on both kernels.
TRACE_ACCEPT_KERNELS = ("stream_triad", "reduce_sum")
TRACE_ACCEPT_SPEEDUP = 5.0

#: Quick-mode (CI smoke) floor for traced stream_triad vs batched.
#: Deliberately conservative: quick sizes are small and CI runners are
#: noisy; the full 5x bar applies at the 2^21 acceptance size.
TRACE_QUICK_FLOOR = 1.5

#: Kernels with barriers / shared memory / shuffles — the ones the
#: batched path exists for; elementwise kernels are the control group.
BARRIER_KERNELS = ("reduce_sum", "stream_dot", "warp_reduce_sum")
ELEMENTWISE_KERNELS = ("ew_mul", "stream_triad")
ATOMIC_KERNELS = ("histogram",)


def _setup(name: str, n: int, rng: np.random.Generator):
    """Return (kernel_ir, grid, block, args, initial memory image)."""
    mem = np.zeros(n * 8 * 3 + (1 << 16), dtype=np.uint8)
    grid = (n + BLOCK - 1) // BLOCK
    fa, fb = rng.random(n), rng.random(n)
    if name in ("reduce_sum", "warp_reduce_sum"):
        mem[: n * 8] = fa.view(np.uint8)
        args = [n, 0, n * 8]
    elif name == "stream_dot":
        mem[: n * 8] = fa.view(np.uint8)
        mem[n * 8 : 2 * n * 8] = fb.view(np.uint8)
        args = [n, 0, n * 8, 2 * n * 8]
    elif name == "ew_mul":
        mem[: n * 8] = fa.view(np.uint8)
        mem[n * 8 : 2 * n * 8] = fb.view(np.uint8)
        args = [n, 0, n * 8, 2 * n * 8]
    elif name == "stream_triad":
        mem[: n * 8] = fa.view(np.uint8)
        mem[n * 8 : 2 * n * 8] = fb.view(np.uint8)
        args = [n, 1.5, n * 8, 2 * n * 8, 0]
    elif name == "histogram":
        data = rng.integers(0, 1 << 20, n, dtype=np.int32)
        mem[: n * 4] = data.view(np.uint8)
        args = [n, 97, 0, n * 4]
    else:
        raise ValueError(name)
    return KERNEL_LIBRARY[name].ir, (grid,), (BLOCK,), args, mem


def _counters(stats) -> dict:
    return {
        "threads": stats.threads,
        "instructions": stats.instructions,
        "flops": stats.flops,
        "bytes_loaded": stats.bytes_loaded,
        "bytes_stored": stats.bytes_stored,
        "atomic_ops": stats.atomic_ops,
        "barriers": stats.barriers,
    }


def bench_kernel(name: str, n: int, seed: int = 7) -> dict:
    ir, grid, block, args, image = _setup(name, n,
                                          np.random.default_rng(seed))
    row: dict = {"n": n, "grid_blocks": grid[0], "widths": {}}
    ref_mem = None
    ref_counters = None
    for label, width in WIDTHS.items():
        mem = image.copy()
        ex = KernelExecutor(ir, 32, mem, max_blocks_per_batch=width,
                            trace_mode=False)
        t0 = time.perf_counter()
        stats = ex.launch(grid, block, args)
        seconds = time.perf_counter() - t0
        counters = _counters(stats)
        if ref_mem is None:
            ref_mem, ref_counters = mem, counters
            identical = True
        else:
            identical = (np.array_equal(mem, ref_mem)
                         and counters == ref_counters)
        row["widths"][label] = {
            "seconds": seconds,
            "batches": stats.batches,
            "matches_isolated": identical,
        }

    # Traced tier: one warm-up launch compiles and caches the program,
    # the timed launch replays it (the steady state the tier exists for).
    before = snapshot_interpreter_totals().trace
    KernelExecutor(ir, 32, image.copy(), trace_mode=True).launch(
        grid, block, args)
    mem = image.copy()
    ex = KernelExecutor(ir, 32, mem, trace_mode=True)
    t0 = time.perf_counter()
    stats = ex.launch(grid, block, args)
    seconds = time.perf_counter() - t0
    after = snapshot_interpreter_totals().trace
    row["traced"] = {
        "seconds": seconds,
        "batches": stats.batches,
        "matches_isolated": (np.array_equal(mem, ref_mem)
                             and _counters(stats) == ref_counters),
        # Both launches fused iff the kernel is traceable; a bailing
        # kernel (e.g. shuffle) falls back and must still be identical.
        "fused": after.traced_launches - before.traced_launches == 2,
        "speedup_vs_max": row["widths"]["max"]["seconds"] / seconds,
    }

    iso = row["widths"]["isolated"]["seconds"]
    row["speedup_max_vs_isolated"] = iso / row["widths"]["max"]["seconds"]
    row["bit_identical"] = (
        all(w["matches_isolated"] for w in row["widths"].values())
        and row["traced"]["matches_isolated"])
    return row


def run(quick: bool) -> dict:
    n = 1 << 16 if quick else ACCEPT_N
    results: dict = {
        "benchmark": "interpreter batching",
        "mode": "quick" if quick else "full",
        "block": BLOCK,
        "kernels": {},
    }
    for name in (*ELEMENTWISE_KERNELS, *BARRIER_KERNELS, *ATOMIC_KERNELS):
        # The acceptance kernel always runs at its acceptance size.
        size = ACCEPT_N if (name == ACCEPT_KERNEL and not quick) else n
        results["kernels"][name] = bench_kernel(name, size)

    accept = results["kernels"][ACCEPT_KERNEL]
    results["acceptance"] = {
        "kernel": ACCEPT_KERNEL,
        "n": accept["n"],
        "speedup": accept["speedup_max_vs_isolated"],
        "threshold": ACCEPT_SPEEDUP,
        "bit_identical": accept["bit_identical"],
        # In quick mode the gate is only "batched must win"; the 5x bar
        # applies at the full 2^21 acceptance size.
        "checked_against_threshold": not quick,
    }
    results["trace_acceptance"] = {
        "kernels": {
            k: {
                "n": results["kernels"][k]["n"],
                "speedup_vs_max": results["kernels"][k]["traced"]
                                  ["speedup_vs_max"],
                "fused": results["kernels"][k]["traced"]["fused"],
            }
            for k in TRACE_ACCEPT_KERNELS
        },
        "threshold": TRACE_QUICK_FLOOR if quick else TRACE_ACCEPT_SPEEDUP,
        # Quick mode gates only stream_triad, against the smoke floor.
        "gated_kernels": list(
            ("stream_triad",) if quick else TRACE_ACCEPT_KERNELS),
    }
    return results


def verdict(results: dict) -> list[str]:
    """Failure messages; empty means the run passes its gates."""
    problems = []
    for name, row in results["kernels"].items():
        if not row["bit_identical"]:
            problems.append(f"{name}: results/counters differ across widths")
        if (name in BARRIER_KERNELS
                and row["speedup_max_vs_isolated"] <= 1.0):
            problems.append(
                f"{name}: batched barrier path not faster than "
                f"block-isolated ({row['speedup_max_vs_isolated']:.2f}x)")
    acc = results["acceptance"]
    if acc["checked_against_threshold"] and acc["speedup"] < acc["threshold"]:
        problems.append(
            f"acceptance: {acc['kernel']} at n={acc['n']} sped up only "
            f"{acc['speedup']:.2f}x (< {acc['threshold']}x)")
    tacc = results["trace_acceptance"]
    for name in tacc["gated_kernels"]:
        entry = tacc["kernels"][name]
        if not entry["fused"]:
            problems.append(f"trace acceptance: {name} did not trace")
        elif entry["speedup_vs_max"] < tacc["threshold"]:
            problems.append(
                f"trace acceptance: {name} at n={entry['n']} traced only "
                f"{entry['speedup_vs_max']:.2f}x over batched "
                f"(< {tacc['threshold']}x)")
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small sizes (CI smoke); gate is 'batched wins', "
                         "not the full 5x acceptance bar")
    ap.add_argument("--out", type=pathlib.Path,
                    default=pathlib.Path("BENCH_interpreter.json"))
    args = ap.parse_args(argv)

    results = run(quick=args.quick)
    problems = verdict(results)
    results["pass"] = not problems

    args.out.write_text(json.dumps(results, indent=2) + "\n")
    for name, row in results["kernels"].items():
        w = row["widths"]
        tr = row["traced"]
        print(f"{name:18s} n={row['n']:>8} "
              f"isolated={w['isolated']['seconds']:8.3f}s "
              f"max={w['max']['seconds']:8.3f}s "
              f"traced={tr['seconds']:8.3f}s "
              f"batch-speedup={row['speedup_max_vs_isolated']:6.2f}x "
              f"trace-speedup={tr['speedup_vs_max']:6.2f}x"
              f"{'' if tr['fused'] else ' (fallback)'} "
              f"identical={row['bit_identical']}")
    for p in problems:
        print(f"FAIL: {p}", file=sys.stderr)
    print(f"wrote {args.out}")
    return 1 if problems else 0


# Pytest entry point: quick differential + speedup smoke, writes the
# JSON artifact next to the other benchmark outputs.
def test_interpreter_batching_speedup(artifacts_dir):
    results = run(quick=True)
    problems = verdict(results)
    results["pass"] = not problems
    (artifacts_dir / "BENCH_interpreter.json").write_text(
        json.dumps(results, indent=2) + "\n")
    assert not problems, problems


if __name__ == "__main__":
    sys.exit(main())
