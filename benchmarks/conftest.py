"""Shared fixtures for the benchmark harness.

The derived matrix takes a few seconds to build (87 routes × up to 10
probes each); it is computed once per session and shared.  Benchmarks
write their regenerated tables under ``benchmarks/artifacts/``.
"""

from __future__ import annotations

import pathlib

import pytest

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def artifacts_dir() -> pathlib.Path:
    ARTIFACTS.mkdir(exist_ok=True)
    return ARTIFACTS


@pytest.fixture(scope="session")
def derived_matrix():
    from repro.core.matrix import build_matrix

    return build_matrix()


@pytest.fixture(scope="session")
def simulated_system():
    from repro.gpu import System

    return System.default()
