"""KERNELSAN — static-analysis findings and cost over bundled workloads.

Two jobs:

1. Lint the kernels the bundled workloads actually launch
   (``workloads/babelstream.py`` -> the five BabelStream kernels,
   ``workloads/miniapps.py`` -> jacobi2d / nbody_forces / histogram)
   plus the rest of the kernel library, and write
   ``artifacts/kernelsan_report.txt``.  The suite-level guarantee is
   zero error-severity findings on shipped kernels.
2. Record lint wall-time per kernel so later PRs can track the cost of
   new analyses (the lint gate is meant for CI and toolchain pipelines;
   it has a latency budget).
3. Time the perfstat abstract cost interpreter over the same library —
   predicting a kernel's LaunchStats must stay well under 10 ms, since
   ``gpu-compat lint --perf`` walks all 27 kernels plus 51 cells.
4. Time tracesan's static translation validation of every traceable
   kernel's generated program — each proof must stay under 50 ms so the
   ``lint --traces`` CI gate stays interactive — and summarize the
   remaining lint families (routes evidence, transval) so the artifact
   covers all five in one page.
"""

from __future__ import annotations

import time

from repro.analysis import AnalysisOptions, LaunchBounds, analyze_kernel
from repro.analysis.costmodel import cost_kernel
from repro.analysis.perfstat import STATIC_LAUNCHES
from repro.analysis.tracesan import validate_library
from repro.kernels import BLOCK, KERNEL_LIBRARY

#: Kernels each bundled workload launches (see workloads/*.py).
WORKLOAD_KERNELS = {
    "babelstream": ("stream_copy", "stream_mul", "stream_add",
                    "stream_triad", "stream_dot"),
    "miniapps": ("jacobi2d", "nbody_forces", "histogram"),
}

#: Buffer extents expressible as a scalar parameter or constant.
#: Products (jacobi2d's nx*ny, nbody's 2n) are beyond the affine extent
#: language, so those buffers fall back to the conservative top.
KERNEL_EXTENTS = {
    "stream_copy": {"a": "n", "c": "n"},
    "stream_mul": {"b": "n", "c": "n"},
    "stream_add": {"a": "n", "b": "n", "c": "n"},
    "stream_triad": {"a": "n", "b": "n", "c": "n"},
    "stream_dot": {"a": "n", "b": "n", "out": 64},
    "histogram": {"data": "n", "bins": "nbins"},
    "axpy": {"x": "n", "y": "n"},
}

BOUNDS = LaunchBounds.of(block=(BLOCK, 1, 1), grid=(64, 1, 1))

REPS = 5


def _lint(name):
    options = AnalysisOptions(bounds=BOUNDS,
                              extents=KERNEL_EXTENTS.get(name))
    kernel = KERNEL_LIBRARY[name].ir
    best = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        diags = analyze_kernel(kernel, options)
        best = min(best, time.perf_counter() - t0)
    return diags, best


def _cost(name):
    grid, block, scalars = STATIC_LAUNCHES[name]
    kernel = KERNEL_LIBRARY[name].ir
    best = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        cost = cost_kernel(kernel, grid, block, scalars)
        best = min(best, time.perf_counter() - t0)
    return cost, best


def test_kernelsan_report(artifacts_dir):
    workload_names = [n for names in WORKLOAD_KERNELS.values()
                      for n in names]
    library_names = [n for n in KERNEL_LIBRARY if n not in workload_names]

    lines = [
        "kernelsan lint report",
        f"launch assumption: block={BOUNDS.block} grid={BOUNDS.grid}",
        "",
    ]
    total_errors = 0
    total_diags = 0
    timings: dict[str, float] = {}

    for section, names in (("workload kernels (babelstream + miniapps)",
                            workload_names),
                           ("remaining kernel library", library_names)):
        lines.append(f"== {section}")
        lines.append(f"{'kernel':24s} {'lint ms':>8s}  findings")
        for name in names:
            diags, best = _lint(name)
            timings[name] = best
            total_errors += sum(1 for d in diags if d.is_error)
            total_diags += len(diags)
            note = "; ".join(d.code for d in diags) or "clean"
            lines.append(f"{name:24s} {best * 1e3:8.2f}  {note}")
            for d in diags:
                lines.append(f"    {d.render().splitlines()[0]}")
        lines.append("")

    slowest = max(timings, key=timings.get)
    lines += [
        f"total: {len(timings)} kernels, {total_diags} finding(s), "
        f"{total_errors} error(s)",
        f"slowest lint: {slowest} ({timings[slowest] * 1e3:.2f} ms)",
        f"aggregate lint time: {sum(timings.values()) * 1e3:.2f} ms",
        "",
        "== perfstat static cost model (canonical launch geometry)",
        f"{'kernel':24s} {'cost ms':>8s}  prediction",
    ]
    cost_timings: dict[str, float] = {}
    for name in workload_names + library_names:
        cost, best = _cost(name)
        cost_timings[name] = best
        tag = "exact" if cost.exact else "conservative bound"
        lines.append(f"{name:24s} {best * 1e3:8.2f}  "
                     f"{cost.stats.instructions} instr, "
                     f"{cost.stats.flops} flops ({tag})")
    worst = max(cost_timings, key=cost_timings.get)
    lines += [
        f"slowest cost model: {worst} ({cost_timings[worst] * 1e3:.2f} ms)",
        f"aggregate cost-model time: "
        f"{sum(cost_timings.values()) * 1e3:.2f} ms",
        "",
        "== tracesan static trace validation (canonical geometry)",
        f"{'kernel':24s} {'val ms':>8s}  verdict",
    ]
    trace_errors = 0
    results = validate_library()
    for name in workload_names + library_names:
        verdict = results[name]
        if isinstance(verdict, str):
            lines.append(f"{name:24s} {'-':>8s}  bailout ({verdict}), "
                         f"interpreter tier")
            continue
        trace_errors += sum(1 for d in verdict.diagnostics if d.is_error)
        tag = "exact" if verdict.exact else (
            "conservative bound" if verdict.validated else "FAILED")
        note = "; ".join(d.code for d in verdict.diagnostics)
        lines.append(f"{name:24s} {verdict.elapsed_ms:8.2f}  proven {tag}"
                     + (f" [{note}]" if note else ""))
    verdicts = [v for v in results.values() if not isinstance(v, str)]
    slowest_v = max(verdicts, key=lambda v: v.elapsed_ms)
    lines += [
        f"validated {sum(1 for v in verdicts if v.validated)}/"
        f"{len(results)} kernels "
        f"({sum(1 for v in results.values() if isinstance(v, str))} "
        f"bailed out), 0 kernel executions",
        f"slowest validation: {slowest_v.kernel} "
        f"({slowest_v.elapsed_ms:.2f} ms; budget 50 ms/kernel)",
        f"aggregate validation time: "
        f"{sum(v.elapsed_ms for v in verdicts):.2f} ms",
        "",
        "== remaining lint families (rollup)",
    ]
    from repro.analysis.routes_evidence import cross_check
    from repro.analysis.transval import shipped_translators, validate_all

    routes_report = cross_check()
    tv_report = validate_all(shipped_translators())
    lines += [
        f"routes evidence: {routes_report.summary_line()}",
        f"transval:        {tv_report.summary_line()}",
    ]
    (artifacts_dir / "kernelsan_report.txt").write_text(
        "\n".join(lines) + "\n")

    # The shipped corpus must lint clean at error severity — in the
    # classic kernelsan sweep and in the trace-validation sweep alike.
    assert total_errors == 0
    assert trace_errors == 0


def test_lint_wall_time_is_tracked(artifacts_dir):
    """Per-kernel lint cost stays interactive (sub-second per kernel)."""
    worst = 0.0
    for name in ("stream_dot", "jacobi2d", "nbody_forces", "gemv"):
        _diags, best = _lint(name)
        worst = max(worst, best)
    # Generous bound: the point is catching quadratic blowups from
    # future analyses, not micro-variance.
    assert worst < 1.0


def test_perfstat_cost_stays_interactive():
    """The abstract cost interpreter predicts any library kernel's
    LaunchStats in under 10 ms — the lint --perf budget per kernel."""
    for name in KERNEL_LIBRARY:
        _cost_obj, best = _cost(name)
        assert best < 0.010, (name, best)


def test_tracesan_validation_stays_in_budget():
    """Every static trace-equivalence proof finishes under 50 ms —
    the per-kernel budget of the ``lint --traces`` CI gate.  One
    wall-clock sample is noisy, so over-budget kernels get a best-of-3
    re-proof before the test fails."""
    over = {}
    for name, v in validate_library().items():
        if isinstance(v, str) or v.elapsed_ms < 50.0:
            continue
        ir = KERNEL_LIBRARY[name].ir
        best = min(validate_library(kernels={name: ir})[name].elapsed_ms
                   for _ in range(3))
        if best >= 50.0:
            over[name] = best
    assert not over, f"kernels over the 50 ms validation budget: {over}"
