"""EXT-TRANSLATE — translator coverage over the mini-app corpus.

§4 characterizes each conversion tool's completeness (HIPIFY:
straightforward and broad; SYCLomatic: broad minus graph/cooperative
machinery; GPUFORT: use-case-driven and stale; Intel's ACC→OMP tool:
common directives only).  The bench measures all four at both levels:
string translation over the source corpus, and end-to-end probe
coverage through the translated compile pipelines.
"""

from __future__ import annotations

import pytest

from repro.core.matrix import evaluate_route
from repro.core.routes import all_routes
from repro.enums import Vendor
from repro.translate import AccToOmp, Gpufort, Hipify, Syclomatic
from repro.workloads.miniapps import CUDA_MINIAPP_SOURCES, OPENACC_MINIAPP_SOURCES


def test_hipify_string_corpus(artifacts_dir):
    """HIPIFY converts the whole CUDA corpus with no leftovers."""
    tool = Hipify()
    lines = []
    for name, source in CUDA_MINIAPP_SOURCES.items():
        out, report = tool.translate_source(source)
        lines.append(f"hipify {name}: {report.replacements} replacements, "
                     f"{len(report.warnings)} warnings")
        assert report.replacements > 0, name
        assert not report.warnings, (name, report.warnings)
        assert "cuda" not in out.lower() or "hip" in out
    (artifacts_dir / "translator_corpus.txt").write_text("\n".join(lines) + "\n")


def test_syclomatic_string_corpus():
    """SYCLomatic converts the corpus into SYCL-flavoured source."""
    tool = Syclomatic()
    for name, source in CUDA_MINIAPP_SOURCES.items():
        out, report = tool.translate_source(source)
        assert report.replacements > 0, name
        assert "sycl" in out or "oneapi" in out or "q." in out, name


def test_acc2omp_string_corpus():
    """The migration tool handles structured regions, drops the rest."""
    tool = AccToOmp()
    converted = 0
    todos = 0
    for name, source in OPENACC_MINIAPP_SOURCES.items():
        out, report = tool.translate_source(source)
        converted += report.replacements
        todos += out.count("TODO(acc2omp)")
        assert "omp target" in out, name
    assert converted >= 4
    assert todos >= 1  # async/gang clauses become TODO markers


def test_gpufort_fortran_directives():
    """GPUFORT rewrites cuf/acc sentinels into OpenMP ones."""
    tool = Gpufort()
    src = "!$cuf kernel do\n do i = 1, n\n   y(i) = a*x(i)\n end do"
    out, report = tool.translate_source(src)
    assert "!$omp target teams distribute parallel do" in out
    assert report.replacements == 1


#: Expected end-to-end coverage bands per translated route (from §4).
_EXPECTED_COVERAGE = {
    "amd-cuda-cpp-hipify": (0.80, 1.00),     # all but cooperative groups
    "intel-cuda-cpp-syclomatic": (0.60, 0.80),  # also loses graphs
    "amd-cuda-f-gpufort": (0.40, 0.60),      # kernels only
    "intel-acc-cpp-acc2omp": (0.30, 0.55),   # common directives only
    "intel-acc-f-acc2omp": (0.30, 0.55),
}


@pytest.mark.parametrize("route_id", sorted(_EXPECTED_COVERAGE))
def test_translated_route_coverage(route_id, simulated_system):
    route = next(r for r in all_routes() if r.route_id == route_id)
    result = evaluate_route(route, simulated_system)
    lo, hi = _EXPECTED_COVERAGE[route_id]
    assert lo <= result.coverage <= hi, (
        f"{route_id}: coverage {result.coverage:.2f} outside [{lo}, {hi}]"
    )


def test_hipify_ordering_vs_syclomatic(simulated_system):
    """HIPIFY converts strictly more of CUDA than SYCLomatic (§4 shape)."""
    routes = {r.route_id: r for r in all_routes()}
    hipify = evaluate_route(routes["amd-cuda-cpp-hipify"], simulated_system)
    syclo = evaluate_route(routes["intel-cuda-cpp-syclomatic"],
                           simulated_system)
    assert hipify.coverage > syclo.coverage


def test_string_translation_benchmark(benchmark):
    tool = Hipify()
    corpus = "\n".join(CUDA_MINIAPP_SOURCES.values()) * 20

    out, report = benchmark(tool.translate_source, corpus)
    assert report.replacements > 100


def test_translated_compile_benchmark(benchmark, simulated_system):
    """End-to-end hipify+hipcc compile of a translation unit."""
    import numpy as np

    from repro import kernels as KL
    from repro.models.cuda import Cuda

    device = simulated_system.device(Vendor.AMD)

    def compile_translated():
        rt = Cuda(device, "hipcc")
        rt.translator = Hipify()
        return rt.compile([KL.axpy], rt._kernel_tags())

    binary = benchmark(compile_translated)
    assert "axpy" in binary
