"""FIG1 — regenerate the paper's only figure: the overview table.

Derives the full 51-cell matrix by probing every registered route on
the simulated AMD/Intel/NVIDIA system, renders it in the paper's
layout (plus Markdown/HTML/TeX/YAML like the author's pipeline), and
checks the cell-level shape against the reconstructed published
ratings.
"""

from __future__ import annotations

from repro.core.matrix import build_matrix
from repro.core.render import (
    matrix_lookup,
    paper_lookup,
    render_html,
    render_markdown,
    render_tex,
    render_text,
    render_yaml,
)
from repro.data.paper_matrix import PAPER_MATRIX
from repro.enums import SupportCategory, all_cells


def test_fig1_derivation_benchmark(benchmark):
    """Time the full empirical derivation of Figure 1."""
    matrix = benchmark.pedantic(build_matrix, rounds=1, iterations=1)
    assert matrix.n_cells == 51
    assert matrix.n_routes() > 50  # the paper's ">50 routes" claim


def test_fig1_matches_paper(derived_matrix, artifacts_dir):
    """Every derived primary rating equals the published rating."""
    mismatches = []
    for key in all_cells():
        derived = derived_matrix.cell(*key).primary
        expected = PAPER_MATRIX[key].primary
        if derived is not expected:
            mismatches.append((key, expected.label, derived.label))
    text = render_text(matrix_lookup(derived_matrix),
                       title="Figure 1 (derived)")
    (artifacts_dir / "figure1_derived.txt").write_text(text + "\n")
    (artifacts_dir / "figure1_published.txt").write_text(
        render_text(paper_lookup(), title="Figure 1 (published)") + "\n"
    )
    assert not mismatches, mismatches


def test_fig1_dual_ratings(derived_matrix):
    """The two dual-rated cells of §5 emerge from the route evidence."""
    from repro.enums import Language, Model, Vendor

    nv_python = derived_matrix.cell(Vendor.NVIDIA, Model.PYTHON,
                                    Language.PYTHON)
    assert nv_python.primary is SupportCategory.FULL
    assert nv_python.secondary is SupportCategory.NONVENDOR

    intel_cuda = derived_matrix.cell(Vendor.INTEL, Model.CUDA, Language.CPP)
    assert intel_cuda.primary is SupportCategory.INDIRECT
    assert intel_cuda.secondary is SupportCategory.LIMITED


def test_fig1_renderers(derived_matrix, artifacts_dir):
    """All output formats of the author's YAML->HTML/TeX pipeline."""
    lookup = matrix_lookup(derived_matrix)
    outputs = {
        "figure1.md": render_markdown(lookup),
        "figure1.html": render_html(lookup),
        "figure1.tex": render_tex(lookup),
        "figure1.yaml": render_yaml(lookup),
    }
    for name, text in outputs.items():
        (artifacts_dir / name).write_text(text)
        assert "nvidia" in text.lower() and "kokkos" in text.lower()
    # The TeX table must carry one macro per cell (51 + dual extras).
    tex = outputs["figure1.tex"]
    n_macros = sum(tex.count(m) for m in (
        "\\fullsupport", "\\indirectsupport", "\\somesupport",
        "\\nonvendorsupport", "\\limitedsupport", "\\nosupport"))
    assert n_macros >= 51


def test_fig1_rendering_benchmark(benchmark, derived_matrix):
    """Rendering the table is cheap compared to deriving it."""
    lookup = matrix_lookup(derived_matrix)
    out = benchmark(render_text, lookup)
    assert "AMD" in out
