"""ABLATIONS — sensitivity of the headline results to design choices.

DESIGN.md commits to four ablations:

1. **Classifier thresholds** — how the 51-cell agreement degrades as
   each coverage cut-point moves (shows the published ratings pin down
   a narrow, but non-empty, region of threshold space).
2. **Probe-suite size** — agreement when advanced probes are removed
   (demonstrates the matrix is genuinely probe-derived: with only the
   basic probes, partial implementations become indistinguishable from
   complete ones and agreement drops).
3. **Interpreter vectorization** — lane-vectorized SIMT execution vs. a
   per-thread reference; correctness equivalence plus the speedup that
   motivates the design (the guides' "vectorize the hot loop").
4. **Perf-model fidelity** — full roofline vs. bandwidth-only timing:
   compute-bound kernels (N-body) separate the models, streaming
   kernels don't.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import Thresholds
from repro.core.matrix import build_matrix
from repro.core.report import compare
from repro.enums import Vendor


def test_threshold_sensitivity(artifacts_dir):
    """Agreement as a function of classifier cut-points."""
    variants = {
        "paper defaults": Thresholds(),
        "lax full (0.55)": Thresholds(full=0.55),
        "strict indirect (0.90)": Thresholds(indirect=0.90),
        "lax indirect (0.40)": Thresholds(indirect=0.40),
        "lax comprehensive (0.60)": Thresholds(comprehensive=0.60),
        "strict usable (0.65)": Thresholds(usable=0.65),
    }
    lines = []
    agreements = {}
    for label, thresholds in variants.items():
        report = compare(build_matrix(thresholds=thresholds))
        agreements[label] = report.agreement
        lines.append(f"{label:30s} agreement {report.agreement:.1%} "
                     f"({report.n_primary_matches}/51)")
    (artifacts_dir / "ablation_thresholds.txt").write_text("\n".join(lines) + "\n")
    assert agreements["paper defaults"] == 1.0
    # Moving most cut-points far enough breaks cells: the ratings carry
    # real information about where coverage boundaries lie.
    assert agreements["lax full (0.55)"] < 1.0        # NVHPC OpenMP -> FULL
    assert agreements["strict indirect (0.90)"] < 1.0  # HIPIFY -> SOME
    assert agreements["lax indirect (0.40)"] < 1.0    # hipfort -> INDIRECT
    assert agreements["strict usable (0.65)"] < 1.0   # AOMP -> LIMITED
    # The 'comprehensive' cut-point is the least sensitive: every
    # non-vendor route that wins a cell measures full coverage, so
    # loosening the bar to 0.60 flips only AMD·Python (PyOpenCL's 4/6
    # bindings coverage would then count as comprehensive).
    assert agreements["lax comprehensive (0.60)"] >= 49 / 51


def test_probe_suite_sensitivity(artifacts_dir):
    """Remove the advanced probes: partial coverage becomes invisible."""
    basic_methods = {
        "probe_kernels", "probe_target", "probe_queues", "probe_parallel",
        "probe_for_each", "probe_do_concurrent", "probe_range_for",
        "probe_exec", "probe_ufuncs",
    }

    full = compare(build_matrix())
    reduced = compare(
        build_matrix(probe_filter=lambda p: p.method in basic_methods)
    )
    lines = [
        f"full probe suites:    agreement {full.agreement:.1%}",
        f"basic-only probes:    agreement {reduced.agreement:.1%}",
        "cells that change with basic-only probes:",
    ]
    for comparison in reduced.mismatches:
        lines.append(f"  {comparison.vendor.value} · {comparison.model.value}"
                     f" · {comparison.language.value}: derived "
                     f"{comparison.derived_primary.label}, paper "
                     f"{comparison.expected.primary.label}")
    (artifacts_dir / "ablation_probes.txt").write_text("\n".join(lines) + "\n")
    assert full.agreement == 1.0
    # With only smoke probes, e.g. NVHPC OpenMP looks complete (FULL
    # instead of SOME): agreement must drop.
    assert reduced.agreement < full.agreement


def _run_reference_scalar(kernel, warp_size, mem, grid, block, args):
    """Scalar (chunk=1-block) execution for the vectorization ablation."""
    from repro.isa.interpreter import KernelExecutor

    ex = KernelExecutor(kernel, warp_size, mem, chunk_lanes=1)
    return ex.launch(grid, block, args)


def test_vectorized_interpreter_equivalence():
    """Lane-vectorized and block-at-a-time execution agree bit-for-bit."""
    from repro import kernels as KL
    from repro.enums import ISA
    from repro.isa import KernelExecutor, ModuleIR, legalize

    n = 10_000
    mod = ModuleIR("ablate")
    mod.add(KL.stream_triad.ir)
    binary = legalize(mod, ISA.PTX, "ablation")
    rng = np.random.default_rng(3)
    b_h, c_h = rng.random(n), rng.random(n)

    results = []
    for chunk in (1, 1 << 18):
        mem = np.zeros(1 << 19, dtype=np.uint8)
        mem[: n * 8] = np.zeros(n).view(np.uint8)
        mem[n * 8: 2 * n * 8] = b_h.view(np.uint8)
        mem[2 * n * 8: 3 * n * 8] = c_h.view(np.uint8)
        ex = KernelExecutor(binary.kernel("stream_triad"), binary.warp_size,
                            mem, chunk_lanes=chunk)
        ex.launch(((n + 255) // 256,), (256,), [n, 0.4, 0, n * 8, 2 * n * 8])
        results.append(mem[: n * 8].view(np.float64).copy())
    assert np.array_equal(results[0], results[1])
    assert np.allclose(results[1], b_h + 0.4 * c_h)


def test_vectorization_speedup_benchmark(benchmark):
    """The wide-batch interpreter beats block-at-a-time execution."""
    import time

    from repro import kernels as KL
    from repro.enums import ISA
    from repro.isa import KernelExecutor, ModuleIR, legalize

    n = 1 << 16
    mod = ModuleIR("ablate2")
    mod.add(KL.stream_triad.ir)
    binary = legalize(mod, ISA.PTX, "ablation")
    mem = np.zeros(1 << 21, dtype=np.uint8)
    args = [n, 0.4, 0, n * 8, 2 * n * 8]
    grid, block = ((n + 255) // 256,), (256,)

    def run_vectorized():
        ex = KernelExecutor(binary.kernel("stream_triad"), 32, mem,
                            chunk_lanes=1 << 18)
        return ex.launch(grid, block, args)

    stats = benchmark(run_vectorized)
    assert stats.threads == n

    # One timed reference pass with per-block batches (256 lanes each).
    t0 = time.perf_counter()
    ex = KernelExecutor(binary.kernel("stream_triad"), 32, mem, chunk_lanes=1)
    ex.launch(grid, block, args)
    t_scalar = time.perf_counter() - t0
    t_vector = benchmark.stats.stats.mean
    assert t_scalar > 2 * t_vector, (
        f"vectorization speedup only {t_scalar / t_vector:.1f}x"
    )


@pytest.mark.parametrize("bandwidth_only", (False, True),
                         ids=("roofline", "bandwidth-only"))
def test_perfmodel_fidelity(bandwidth_only, artifacts_dir):
    """Compute-bound kernels need the roofline; streaming doesn't."""
    from repro import kernels as KL
    from repro.gpu import Device, default_spec
    from repro.models.cuda import Cuda

    device = Device(default_spec(Vendor.NVIDIA),
                    bandwidth_only_model=bandwidth_only)
    rt = Cuda(device)
    n = 1 << 16
    x = rt.to_device(np.ones(n))
    burner = rt.launch_1d(KL.flops_burner, n, [n, 400, x])
    a = rt.to_device(np.ones(1 << 20))
    b = rt.to_device(np.ones(1 << 20))
    triad = rt.launch_1d(KL.stream_triad, 1 << 20,
                         [1 << 20, 0.4, a, b, a])
    with open(artifacts_dir / f"ablation_perfmodel_"
              f"{'bw' if bandwidth_only else 'roofline'}.txt", "w") as fh:
        fh.write(f"burner: {burner.seconds*1e6:.1f} us bound={burner.bound}\n")
        fh.write(f"triad:  {triad.seconds*1e6:.1f} us bound={triad.bound}\n")
    if bandwidth_only:
        # Heavy arithmetic is invisible to a pure-bandwidth model: the
        # burner moves 1/48th of triad's bytes and looks faster.
        assert burner.seconds < triad.seconds
    else:
        # The roofline sees the compute wall.
        assert burner.bound in ("compute", "issue")
        assert burner.seconds > triad.seconds
        assert triad.bound == "memory"
