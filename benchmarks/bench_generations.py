"""EXT-GENERATIONS — device generations of the paper's introduction.

The introduction names the machines driving the Exascale era: Frontier
(MI250X), Aurora (Ponte Vecchio), El Capitan (MI300A), JUPITER
(H100-class).  This bench runs the same BabelStream triad across the
device catalog and asserts the generational shape: each vendor's newer
part out-streams its predecessor, and the triad ordering across the
catalog follows the HBM datasheets.
"""

from __future__ import annotations

import pytest

from repro.gpu import Device, System
from repro.gpu.specs import SPEC_CATALOG
from repro.workloads import run_babelstream

N = 1 << 21

#: Model used per device (its vendor's native model).
_NATIVE = {"A100-SXM4-80GB": "CUDA", "H100-SXM5": "CUDA",
           "MI100": "HIP", "MI250X-GCD": "HIP", "MI300A": "HIP",
           "DataCenterMax-1550": "SYCL"}


@pytest.fixture(scope="module")
def triads(artifacts_dir):
    results = {}
    lines = [f"native-model triad, n={N} float64"]
    for name, model in _NATIVE.items():
        device = Device(SPEC_CATALOG[name], backing_bytes=1 << 26)
        res = run_babelstream(device, model, n=N, reps=2)
        assert res.verified
        results[name] = res.bandwidth_gbs("triad")
        lines.append(f"  {name:20s} {model:5s} {results[name]:8.1f} GB/s "
                     f"(peak {SPEC_CATALOG[name].bandwidth_gbs:.0f})")
    (artifacts_dir / "generations.txt").write_text("\n".join(lines) + "\n")
    return results


def test_nvidia_generation(triads):
    assert triads["H100-SXM5"] > triads["A100-SXM4-80GB"]


def test_amd_generations(triads):
    assert triads["MI300A"] > triads["MI250X-GCD"] > triads["MI100"]


def test_exascale_parts_ordering(triads):
    """El Capitan's MI300A leads the catalog on streaming bandwidth."""
    assert triads["MI300A"] == max(triads.values())
    # and the Aurora/JUPITER-class parts cluster together below it:
    assert abs(triads["H100-SXM5"] - triads["DataCenterMax-1550"]) \
        < 0.3 * triads["H100-SXM5"]


def test_fraction_of_peak_consistent(triads):
    """The streaming-efficiency model applies uniformly across parts.

    The residual spread is fixed launch latency, which at fixed n costs
    a larger slice on faster-memory parts (MI300A, PVC).
    """
    fractions = {
        name: bw / SPEC_CATALOG[name].bandwidth_gbs
        for name, bw in triads.items()
    }
    assert max(fractions.values()) - min(fractions.values()) < 0.20
    assert min(fractions.values()) > 0.60


def test_mi300a_loads_amdgcn_only():
    from repro.enums import ISA
    from repro.errors import InvalidBinaryError
    from repro import kernels as KL
    from repro.isa import ModuleIR, legalize

    device = Device(SPEC_CATALOG["MI300A"], backing_bytes=1 << 20)
    mod = ModuleIR("m")
    mod.add(KL.axpy.ir)
    device.load_module(legalize(mod, ISA.AMDGCN))
    with pytest.raises(InvalidBinaryError):
        device.load_module(legalize(mod, ISA.PTX))


def test_generation_benchmark(benchmark):
    device = Device(SPEC_CATALOG["MI300A"], backing_bytes=1 << 25)
    result = benchmark.pedantic(
        run_babelstream, args=(device, "HIP"),
        kwargs={"n": 1 << 18, "reps": 1}, rounds=3, iterations=1,
    )
    assert result.verified
