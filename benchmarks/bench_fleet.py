"""BENCH_fleet — worker-process fleet scaling + HTTP serving under load.

Two experiments, one artifact (``BENCH_fleet.json``):

**Scaling** — cold 51-cell matrix builds across (backend, jobs)
configurations: ``thread/jobs=1`` (the GIL-bound baseline),
``thread/jobs=N``, and ``process/jobs=N`` (the worker-process fleet).
Every configuration is checked **byte-identical** to the sequential
reference — the rendered Figure 1 string and the full cell dict must
match exactly — and the process-vs-one-worker speedup is recorded.
The speedup is *gated* only on multi-core runners (``cpu_count >= 2``);
a single-CPU container records it honestly without failing.

**Load** — a loopback HTTP server over a warm store is hammered by
concurrent clients sweeping the read endpoints (``/healthz``,
``/table``, ``/cell``, ``/metrics``, ``/admin/stores``); per-request
wall-clock is recorded and reduced to p50/p95/p99 latency, throughput,
and an error count.  Gates: zero errors, p99 under a generous floor.

Run as a script (CI smoke gate)::

    PYTHONPATH=src python benchmarks/bench_fleet.py --quick

Exit code 1 if any configuration's output diverges, any load-test
request fails, p99 exceeds the floor, or (multi-core only) the process
fleet fails to beat one worker.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import threading
import time

from repro.core.matrix import build_matrix
from repro.core.render import RENDERERS, matrix_lookup
from repro.service import (
    EXECUTION_PROCESS,
    EXECUTION_THREAD,
    HttpClient,
    MatrixService,
    build_matrix_concurrent,
    make_server,
)

#: Generous p99 ceiling for the loopback read endpoints (seconds).
P99_FLOOR_S = 2.0

#: Required process-fleet speedup over jobs=1 — enforced only when the
#: runner actually has more than one CPU to parallelise across.
MIN_MULTICORE_SPEEDUP = 1.1


def _fingerprint(matrix) -> str:
    """Rendered-figure fingerprint: equal strings = equal Figure 1."""
    return RENDERERS["text"](matrix_lookup(matrix), title="bench")


# -- experiment 1: cold-build scaling across (backend, jobs) ------------------


def run_scaling(quick: bool) -> dict:
    cpus = os.cpu_count() or 1
    fleet_jobs = min(cpus, 4) if quick else min(cpus, 8)
    reference = build_matrix()
    ref_fp = _fingerprint(reference)

    configs = [
        (EXECUTION_THREAD, 1),
        (EXECUTION_THREAD, fleet_jobs),
        (EXECUTION_PROCESS, fleet_jobs),
    ]
    if not quick and fleet_jobs > 2:
        configs.insert(2, (EXECUTION_PROCESS, 2))

    rows: dict = {}
    for execution, jobs in configs:
        label = f"{execution}/jobs={jobs}"
        t0 = time.perf_counter()
        report = build_matrix_concurrent(jobs, execution=execution)
        dt = time.perf_counter() - t0
        rows[label] = {
            "seconds": round(dt, 4),
            "bit_identical": (
                report.matrix.cells == reference.cells
                and _fingerprint(report.matrix) == ref_fp),
            "cells_evaluated": report.cells_evaluated,
        }

    base = rows[f"{EXECUTION_THREAD}/jobs=1"]["seconds"]
    fleet = rows[f"{EXECUTION_PROCESS}/jobs={fleet_jobs}"]["seconds"]
    return {
        "cpu_count": cpus,
        "fleet_jobs": fleet_jobs,
        "configs": rows,
        "process_speedup_vs_1": round(base / fleet, 2) if fleet else 0.0,
        "speedup_gated": cpus >= 2,
    }


# -- experiment 2: HTTP load test against a warm server -----------------------

#: The read-endpoint sweep each client rotates through.
_LOAD_CALLS = (
    lambda c: c.health(),
    lambda c: c.table("text"),
    lambda c: c.cell("NVIDIA", "CUDA", "C++"),
    lambda c: c.metrics(),
    lambda c: c.admin_stores(),
)


def run_load(quick: bool, store_root: str) -> dict:
    clients = 4 if quick else 8
    requests_each = 25 if quick else 100

    service = MatrixService(jobs=1, store=store_root)
    service.ensure_built()
    server = make_server(service)
    host, port = server.server_address
    server_thread = threading.Thread(target=server.serve_forever,
                                     daemon=True)
    server_thread.start()

    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()

    def client_loop(worker: int) -> None:
        client = HttpClient(host, port)
        mine: list[float] = []
        bad: list[str] = []
        for i in range(requests_each):
            call = _LOAD_CALLS[(worker + i) % len(_LOAD_CALLS)]
            t0 = time.perf_counter()
            try:
                call(client)
            except Exception as exc:  # any failure fails the gate
                bad.append(f"worker {worker} req {i}: "
                           f"{type(exc).__name__}: {exc}")
            mine.append(time.perf_counter() - t0)
        with lock:
            latencies.extend(mine)
            errors.extend(bad)

    threads = [threading.Thread(target=client_loop, args=(w,))
               for w in range(clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    server.shutdown()
    server.server_close()

    ordered = sorted(latencies)

    def pct(p: float) -> float:
        return ordered[min(len(ordered) - 1,
                           int(p / 100.0 * len(ordered)))]

    total = clients * requests_each
    return {
        "clients": clients,
        "requests_per_client": requests_each,
        "total_requests": total,
        "elapsed_s": round(elapsed, 4),
        "throughput_rps": round(total / elapsed, 1) if elapsed else 0.0,
        "latency_s": {
            "p50": round(pct(50), 5),
            "p95": round(pct(95), 5),
            "p99": round(pct(99), 5),
            "max": round(ordered[-1], 5),
        },
        "errors": len(errors),
        "error_samples": errors[:5],
        "p99_floor_s": P99_FLOOR_S,
    }


def run(quick: bool = False) -> dict:
    results: dict = {
        "cpu_count": os.cpu_count(),
        "quick": quick,
        "scaling": run_scaling(quick),
    }
    with tempfile.TemporaryDirectory(prefix="bench-fleet-store-") as root:
        # Warm the store once so the served matrix loads instantly and
        # the load test measures serving, not probe evaluation.
        build_matrix_concurrent(1, store=root)
        results["load"] = run_load(quick, root)
    return results


def verdict(results: dict) -> list[str]:
    """Failure messages; empty means the run passes its gates."""
    problems = []
    scaling = results["scaling"]
    for label, row in scaling["configs"].items():
        if not row["bit_identical"]:
            problems.append(f"{label}: diverged from the sequential build")
    if scaling["speedup_gated"] and \
            scaling["process_speedup_vs_1"] < MIN_MULTICORE_SPEEDUP:
        problems.append(
            f"process fleet sped up only "
            f"{scaling['process_speedup_vs_1']}x over jobs=1 on a "
            f"{scaling['cpu_count']}-CPU runner "
            f"(< {MIN_MULTICORE_SPEEDUP}x)")
    load = results["load"]
    if load["errors"]:
        problems.append(
            f"load test hit {load['errors']} request error(s): "
            f"{load['error_samples']}")
    if load["latency_s"]["p99"] > load["p99_floor_s"]:
        problems.append(
            f"p99 latency {load['latency_s']['p99']}s exceeds the "
            f"{load['p99_floor_s']}s floor")
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="fewer clients/requests/configs (CI smoke)")
    ap.add_argument("--out", type=pathlib.Path,
                    default=pathlib.Path("BENCH_fleet.json"))
    args = ap.parse_args(argv)

    results = run(quick=args.quick)
    problems = verdict(results)
    results["pass"] = not problems

    args.out.write_text(json.dumps(results, indent=2) + "\n")
    scaling = results["scaling"]
    for label, row in scaling["configs"].items():
        print(f"{label:20s} {row['seconds']:8.3f}s "
              f"bit_identical={row['bit_identical']}")
    gated = "gated" if scaling["speedup_gated"] else \
        "recorded only (single CPU)"
    print(f"process fleet speedup vs jobs=1: "
          f"{scaling['process_speedup_vs_1']}x ({gated}, "
          f"cpu_count={scaling['cpu_count']})")
    load = results["load"]
    lat = load["latency_s"]
    print(f"load: {load['total_requests']} requests, "
          f"{load['throughput_rps']} req/s, p50={lat['p50']}s "
          f"p95={lat['p95']}s p99={lat['p99']}s errors={load['errors']}")
    for p in problems:
        print(f"FAIL: {p}", file=sys.stderr)
    print(f"wrote {args.out}")
    return 1 if problems else 0


# Pytest entry point: quick fleet determinism + load smoke, writes the
# JSON artifact next to the other benchmark outputs.
def test_fleet_scaling_and_load(artifacts_dir):
    results = run(quick=True)
    problems = verdict(results)
    results["pass"] = not problems
    (artifacts_dir / "BENCH_fleet.json").write_text(
        json.dumps(results, indent=2) + "\n")
    assert not problems, problems


if __name__ == "__main__":
    sys.exit(main())
