"""EXT-PORT — the paper's conclusion claims, checked programmatically.

§6 makes a series of cross-cutting claims about the landscape; each one
is asserted against the *derived* matrix (not the transcription):

* NVIDIA's support is the most comprehensive;
* NVIDIA and AMD GPUs run the same (CUDA/HIP) source, and Intel too
  via chipStar/SYCLomatic;
* SYCL supports all three platforms;
* OpenACC: NVIDIA + AMD, but no Intel support;
* OpenMP is supported on all three platforms, both languages;
* Kokkos and Alpaka cover all three platforms (C++);
* Python is well-supported by all three platforms;
* For Fortran, OpenMP is the only model with vendor support everywhere.
"""

from __future__ import annotations

from repro.core.advisor import Advisor
from repro.enums import Language, Model, SupportCategory, Vendor

CPP, F, PY = Language.CPP, Language.FORTRAN, Language.PYTHON
VENDORS = (Vendor.AMD, Vendor.INTEL, Vendor.NVIDIA)


def _advisor(matrix) -> Advisor:
    return Advisor(matrix, minimum=SupportCategory.LIMITED)


def test_nvidia_support_most_comprehensive(derived_matrix):
    """Sum of category ranks per vendor: NVIDIA leads."""
    def score(vendor: Vendor) -> int:
        return sum(
            cell.primary.rank for cell in derived_matrix
            if cell.vendor is vendor
        )

    scores = {v: score(v) for v in VENDORS}
    assert scores[Vendor.NVIDIA] == max(scores.values()), scores


def test_cuda_hip_single_source_three_vendors(derived_matrix):
    adv = _advisor(derived_matrix)
    # CUDA: native NVIDIA, HIPIFY on AMD, SYCLomatic/chipStar on Intel.
    for vendor in VENDORS:
        rating = adv.rating(vendor, Model.CUDA, CPP)
        assert rating.rank >= SupportCategory.LIMITED.rank, vendor
    # HIP: AMD native, NVIDIA via the CUDA backend, Intel via chipStar.
    assert adv.rating(Vendor.AMD, Model.HIP, CPP) is SupportCategory.FULL
    assert adv.rating(Vendor.NVIDIA, Model.HIP, CPP) is SupportCategory.INDIRECT
    assert adv.rating(Vendor.INTEL, Model.HIP, CPP) is SupportCategory.LIMITED


def test_sycl_supports_all_three_platforms(derived_matrix):
    adv = _advisor(derived_matrix)
    assert adv.rating(Vendor.INTEL, Model.SYCL, CPP) is SupportCategory.FULL
    for vendor in (Vendor.NVIDIA, Vendor.AMD):
        assert adv.rating(vendor, Model.SYCL, CPP) is SupportCategory.NONVENDOR


def test_openacc_nvidia_amd_not_intel(derived_matrix):
    adv = _advisor(derived_matrix)
    assert adv.rating(Vendor.NVIDIA, Model.OPENACC, CPP) is SupportCategory.FULL
    assert (adv.rating(Vendor.AMD, Model.OPENACC, CPP)
            is SupportCategory.NONVENDOR)
    # 'support for Intel GPUs does not exist' beyond the migration tool:
    assert (adv.rating(Vendor.INTEL, Model.OPENACC, CPP)
            is SupportCategory.LIMITED)


def test_openmp_everywhere_both_languages(derived_matrix):
    adv = _advisor(derived_matrix)
    for vendor in VENDORS:
        for language in (CPP, F):
            rating = adv.rating(vendor, Model.OPENMP, language)
            # at least vendor-backed partial support everywhere
            assert rating.rank >= SupportCategory.SOME.rank, (vendor, language)


def test_kokkos_alpaka_cover_all_platforms(derived_matrix):
    adv = _advisor(derived_matrix)
    for model in (Model.KOKKOS, Model.ALPAKA):
        for vendor in VENDORS:
            rating = adv.rating(vendor, model, CPP)
            assert rating.rank >= SupportCategory.LIMITED.rank, (model, vendor)


def test_python_well_supported_everywhere(derived_matrix):
    adv = _advisor(derived_matrix)
    ratings = {v: adv.rating(v, Model.PYTHON, PY) for v in VENDORS}
    assert ratings[Vendor.NVIDIA] is SupportCategory.FULL
    assert ratings[Vendor.INTEL] is SupportCategory.FULL
    assert ratings[Vendor.AMD].rank >= SupportCategory.LIMITED.rank


def test_fortran_only_openmp_vendor_supported_everywhere(derived_matrix):
    """The conclusion's headline Fortran claim, over vendor-backed cells."""
    adv = _advisor(derived_matrix)
    vendor_everywhere = []
    for model in (Model.CUDA, Model.HIP, Model.SYCL, Model.OPENACC,
                  Model.OPENMP, Model.STANDARD, Model.KOKKOS, Model.ALPAKA):
        ok = all(
            adv.rating(v, model, F).rank >= SupportCategory.SOME.rank
            for v in VENDORS
        )
        if ok:
            vendor_everywhere.append(model)
    assert vendor_everywhere == [Model.OPENMP], vendor_everywhere


def test_portability_queries_benchmark(benchmark, derived_matrix):
    adv = _advisor(derived_matrix)

    def run_queries():
        out = []
        for language in (CPP, F):
            out.append(adv.portable_models(language, SupportCategory.LIMITED))
        for vendor in VENDORS:
            out.append(adv.models_for_platform(vendor, CPP))
        return out

    results = benchmark(run_queries)
    assert results


def test_migration_plans(derived_matrix, artifacts_dir):
    adv = _advisor(derived_matrix)
    lines = []
    for target in (Vendor.AMD, Vendor.INTEL):
        lines += adv.migration_plan(Model.CUDA, CPP, target) + [""]
    lines += adv.migration_plan(Model.CUDA, F, Vendor.INTEL)
    (artifacts_dir / "migration_plans.txt").write_text("\n".join(lines) + "\n")
    assert any("no route exists" in line for line in lines)
