"""EXT-MODELS — the RAJA and OpenCL columns (§5's exclusions, restored).

§5 explains why RAJA and OpenCL were left out of Figure 1; this bench
adds them back through the same route → probe → classify machinery and
checks this reproduction's own expected ratings (flagged as non-paper),
including the quantified version of the "lukewarm support by NVIDIA"
remark: the NVIDIA OpenCL route measures 3/5 feature coverage against
Intel's 5/5.
"""

from __future__ import annotations

import pytest

from repro.core.extended import (
    EXTENDED_ROUTES,
    build_extended_matrix,
    compare_extended,
    render_extended_text,
)
from repro.enums import Language, Model, SupportCategory, Vendor


@pytest.fixture(scope="module")
def extended(simulated_system, artifacts_dir):
    matrix = build_extended_matrix(simulated_system)
    (artifacts_dir / "extended_matrix.txt").write_text(
        render_extended_text(matrix) + "\n")
    return matrix


def test_extended_expectations_hold(extended):
    assert compare_extended(extended) == []


def test_lukewarm_nvidia_opencl_quantified(extended):
    """§5's qualitative remark becomes a coverage measurement."""
    nv = extended.cell(Vendor.NVIDIA, Model.OPENCL, Language.CPP)
    amd = extended.cell(Vendor.AMD, Model.OPENCL, Language.CPP)
    intel = extended.cell(Vendor.INTEL, Model.OPENCL, Language.CPP)
    assert nv.best_route().coverage < amd.best_route().coverage \
        < intel.best_route().coverage
    assert intel.primary is SupportCategory.FULL
    assert nv.primary is SupportCategory.SOME


def test_combined_route_count(extended):
    """Figure 1's 89 routes + the 6 extension routes."""
    from repro.core.routes import all_routes

    assert len(all_routes()) + len(EXTENDED_ROUTES) == 95


def test_extended_derivation_benchmark(benchmark, simulated_system):
    matrix = benchmark.pedantic(build_extended_matrix,
                                args=(simulated_system,),
                                rounds=1, iterations=1)
    assert matrix.n_cells == 6
