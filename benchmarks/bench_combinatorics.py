"""TAB-COMBOS / TAB-ROUTES — the paper's combinatorial claims.

§3: "In total, 51 possible combinations are explored and explained in
44 unique descriptions."  §1: "more than 50 routes for programming a
GPU device are identified."  Both counts regenerate from the
registries, and the route-enumeration cost is benchmarked.
"""

from __future__ import annotations

from collections import Counter

from repro.core.descriptions import CELL_TO_DESCRIPTION, DESCRIPTIONS
from repro.core.routes import all_routes, routes_for
from repro.enums import Language, Model, Vendor, all_cells


def test_51_combinations():
    cells = all_cells()
    assert len(cells) == 51
    # 3 vendors x (8 models x 2 languages + Python)
    per_vendor = Counter(v for v, _m, _l in cells)
    assert all(count == 17 for count in per_vendor.values())


def test_44_unique_descriptions():
    assert len(DESCRIPTIONS) == 44
    assert len(CELL_TO_DESCRIPTION) == 51
    # Shared entries 4, 6, 14, 16 account for the 51 -> 44 fold.
    shared = [n for n in DESCRIPTIONS if len(DESCRIPTIONS[n].cells) > 1]
    assert sorted(shared) == [4, 6, 14, 16]
    n_cells_covered = sum(len(d.cells) for d in DESCRIPTIONS.values())
    assert n_cells_covered == 51


def test_more_than_50_routes():
    routes = all_routes()
    assert len(routes) > 50, f"only {len(routes)} routes registered"
    # Every route belongs to a valid cell and cites a valid description.
    for route in routes:
        assert route.description_id in DESCRIPTIONS
        cell = (route.vendor, route.model, route.language)
        assert cell in CELL_TO_DESCRIPTION


def test_no_support_cells_have_no_routes():
    """The seven 'no support' cells are exactly the route-less ones."""
    from repro.data.paper_matrix import PAPER_MATRIX
    from repro.enums import SupportCategory

    for key, cell in PAPER_MATRIX.items():
        routes = routes_for(*key)
        if cell.primary is SupportCategory.NONE:
            assert not routes, f"{key} rated no-support but has routes"
        else:
            assert routes, f"{key} rated {cell.primary.label} but has no routes"


def test_route_enumeration_benchmark(benchmark):
    def enumerate_all():
        total = 0
        for key in all_cells():
            total += len(routes_for(*key))
        return total

    total = benchmark(enumerate_all)
    assert total == len(all_routes())
