"""EXT-STREAM — BabelStream across all models and vendors.

§5 names BabelStream as the closest existing performance overview and
flags performance evaluation as future work; this bench realizes it on
the simulated system.  Absolute GB/s are simulated; the asserted
*shape* is what transfers: per-vendor bandwidth ordering follows the
datasheets (H100 > Ponte Vecchio > MI250X-GCD), every model sustains a
high fraction of its platform's streaming bandwidth (the BabelStream
finding that the model matters far less than the memory system), and
all results verify numerically.
"""

from __future__ import annotations

import pytest

from repro.enums import Vendor
from repro.workloads import available_models, run_babelstream

N = 1 << 21
VENDORS = (Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL)


@pytest.fixture(scope="module")
def stream_results(simulated_system, artifacts_dir):
    results = {}
    lines = [f"BabelStream, n={N} float64 elements, best of 3"]
    for vendor in VENDORS:
        device = simulated_system.device(vendor)
        for model in available_models(vendor):
            res = run_babelstream(device, model, n=N, reps=3)
            results[(vendor, model)] = res
            lines.append(res.row())
    (artifacts_dir / "babelstream.txt").write_text("\n".join(lines) + "\n")
    return results


def test_all_verify(stream_results):
    bad = [key for key, res in stream_results.items() if not res.verified]
    assert not bad, f"unverified results: {bad}"


def test_every_model_on_every_supported_vendor(stream_results):
    # 9 models on NVIDIA, 9 on AMD (HIP+hipified-CUDA instead of CUDA),
    # 6 on Intel.
    per_vendor = {v: sum(1 for (vv, _m) in stream_results if vv is v)
                  for v in VENDORS}
    assert per_vendor[Vendor.NVIDIA] >= 8
    assert per_vendor[Vendor.AMD] >= 8
    assert per_vendor[Vendor.INTEL] >= 5


def test_vendor_bandwidth_ordering(stream_results):
    """Triad bandwidth ordering follows the HBM datasheets."""
    def triad(vendor: Vendor) -> float:
        rates = [res.bandwidth_gbs("triad")
                 for (v, _m), res in stream_results.items() if v is vendor]
        return max(rates)

    h100, mi250x, pvc = (triad(Vendor.NVIDIA), triad(Vendor.AMD),
                         triad(Vendor.INTEL))
    assert h100 > pvc > mi250x, (h100, pvc, mi250x)


def test_models_near_platform_peak(stream_results, simulated_system):
    """Each model's triad reaches >=50% of its device's datasheet peak.

    At this size (2^21 elements) every model is memory-bound; only the
    Python layer's interpreter dispatch overhead costs a visible slice.
    """
    for (vendor, model), res in stream_results.items():
        peak = simulated_system.device(vendor).spec.bandwidth_gbs
        frac = res.bandwidth_gbs("triad") / peak
        floor = 0.45 if model == "Python" else 0.60
        assert frac > floor, f"{model} on {vendor.value}: {frac:.1%} of peak"


def test_dispatch_overhead_ordering(stream_results):
    """Native models beat the Python layer at fixed size (the per-model
    overhead axis of Hammond's comparison [6]); the gap is dispatch, not
    bandwidth."""
    for vendor in VENDORS:
        native = "CUDA" if vendor is Vendor.NVIDIA else (
            "HIP" if vendor is Vendor.AMD else "SYCL")
        native_bw = stream_results[(vendor, native)].bandwidth_gbs("triad")
        python_bw = stream_results[(vendor, "Python")].bandwidth_gbs("triad")
        assert native_bw > python_bw
        assert python_bw > 0.65 * native_bw  # overhead, not a cliff


def test_translated_cuda_matches_native_hip(stream_results):
    """HIPIFY'd CUDA performs like native HIP on AMD (same binary path)."""
    hip = stream_results[(Vendor.AMD, "HIP")]
    cud = stream_results[(Vendor.AMD, "CUDA-hipified")]
    for kernel in ("copy", "mul", "add", "triad"):
        ratio = cud.bandwidth_gbs(kernel) / hip.bandwidth_gbs(kernel)
        assert 0.9 < ratio < 1.1


@pytest.mark.parametrize("vendor", VENDORS, ids=lambda v: v.value)
def test_triad_benchmark(benchmark, simulated_system, vendor):
    """Wall-clock cost of the simulated triad path (harness overhead)."""
    device = simulated_system.device(vendor)
    model = "CUDA" if vendor is Vendor.NVIDIA else (
        "HIP" if vendor is Vendor.AMD else "SYCL")

    result = benchmark.pedantic(
        run_babelstream, args=(device, model),
        kwargs={"n": 1 << 18, "reps": 1}, rounds=3, iterations=1,
    )
    assert result.verified
