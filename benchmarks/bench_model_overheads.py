"""EXT-GEARS — per-model overhead sweep (Hammond's "gears" [6]).

§5 points to Hammond's GTC comparison of "many NVIDIA-GPU-compatible
programming models" as the kind of performance evaluation the paper
does not attempt.  This bench realizes its core shape on the simulated
H100: sweep the problem size and measure each model's achieved triad
bandwidth.  The expected (and asserted) result is the classic one —

* at small sizes, launch/dispatch overhead separates the models
  (native CUDA fastest, the abstraction layers close behind, the
  Python interpreter clearly slower);
* at large sizes, every model converges onto the same memory-bandwidth
  roofline: the model you program in stops mattering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.enums import Vendor
from repro.workloads import run_babelstream

MODELS = ("CUDA", "HIP", "SYCL", "OpenMP", "OpenACC", "stdpar",
          "Kokkos", "Alpaka", "Python")
SIZES = (1 << 12, 1 << 15, 1 << 18, 1 << 21)


@pytest.fixture(scope="module")
def sweep(simulated_system, artifacts_dir):
    device = simulated_system.device(Vendor.NVIDIA)
    results: dict[tuple[str, int], float] = {}
    lines = ["triad GB/s on H100-SXM5 by model and size",
             f"{'model':10s} " + " ".join(f"{n:>12d}" for n in SIZES)]
    for model in MODELS:
        row = []
        for n in SIZES:
            res = run_babelstream(device, model, n=n, reps=2)
            assert res.verified, (model, n)
            results[(model, n)] = res.bandwidth_gbs("triad")
            row.append(results[(model, n)])
        lines.append(f"{model:10s} " + " ".join(f"{v:12.1f}" for v in row))
    (artifacts_dir / "model_overheads.txt").write_text("\n".join(lines) + "\n")
    return results


def test_small_sizes_separate_the_models(sweep):
    n = SIZES[0]
    cuda = sweep[("CUDA", n)]
    python = sweep[("Python", n)]
    assert python < 0.65 * cuda, (cuda, python)
    # Directive and layered models sit between the extremes.
    for model in ("OpenMP", "OpenACC", "Kokkos", "Alpaka", "SYCL", "stdpar"):
        assert python < sweep[(model, n)] <= cuda + 1e-9, model


def test_large_sizes_converge(sweep):
    """At 2^21 the compiled models are within 10% of native CUDA; the
    Python layer's interpreter dispatch still costs ~25% at this size
    (it keeps converging beyond it — see the ratio-monotonicity test)."""
    n = SIZES[-1]
    cuda = sweep[("CUDA", n)]
    for model in MODELS:
        ratio = sweep[(model, n)] / cuda
        floor = 0.70 if model == "Python" else 0.90
        assert ratio > floor, (model, ratio)


def test_every_model_monotone_in_size(sweep):
    for model in MODELS:
        rates = [sweep[(model, n)] for n in SIZES]
        assert rates == sorted(rates), (model, rates)


def test_gap_shrinks_monotonically(sweep):
    """The Python-vs-CUDA ratio improves as the problem grows."""
    ratios = [sweep[("Python", n)] / sweep[("CUDA", n)] for n in SIZES]
    assert ratios == sorted(ratios), ratios
    assert ratios[-1] > 0.7 > 0.5 > ratios[0]


def test_sweep_benchmark(benchmark, simulated_system):
    device = simulated_system.device(Vendor.NVIDIA)
    result = benchmark.pedantic(
        run_babelstream, args=(device, "Kokkos"),
        kwargs={"n": 1 << 16, "reps": 1}, rounds=3, iterations=1,
    )
    assert result.verified
