"""Reference data: the reconstructed Figure 1 and the bibliography."""

from repro.data.paper_matrix import PAPER_MATRIX, PaperCell, expected  # noqa: F401
from repro.data.references import REFERENCES  # noqa: F401
