"""Reference data: the reconstructed Figure 1, the bibliography, and
published BabelStream anchor measurements."""

from repro.data.paper_matrix import PAPER_MATRIX, PaperCell, expected  # noqa: F401
from repro.data.perfref import (  # noqa: F401
    PERF_REFERENCES,
    PerfReference,
    reference_fraction,
)
from repro.data.references import REFERENCES  # noqa: F401
