"""Published BabelStream measurements for the three simulated devices.

Approximate best-reported triad bandwidths from public BabelStream
results on the real hardware the simulated specs model (LUMI evaluation
[5], vendor/community BabelStream result collections).  They anchor the
*achievable* fraction of datasheet peak per vendor: real stream kernels
on real devices reach 65–90 % of peak, never 100 %.

The simulator's perf model is launch-latency-faithful, so at small
array sizes the simulated achieved fraction sits far below these
numbers (see DESIGN.md); the references exist to make that gap visible
and quantified rather than hidden.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.enums import Vendor
from repro.gpu.specs import default_spec


@dataclass(frozen=True)
class PerfReference:
    """One published stream measurement on the modelled device."""

    vendor: Vendor
    device: str
    triad_gbs: float
    source: str


PERF_REFERENCES: dict[Vendor, PerfReference] = {
    r.vendor: r
    for r in (
        PerfReference(Vendor.NVIDIA, "H100-SXM5", 2900.0,
                      "public BabelStream H100 results (~2.9 TB/s triad)"),
        PerfReference(Vendor.AMD, "MI250X (one GCD)", 1380.0,
                      "LUMI evaluation, Markomanolis et al. 2022 [5]"),
        PerfReference(Vendor.INTEL, "Data Center GPU Max 1550", 2200.0,
                      "public BabelStream PVC results (~2.2 TB/s triad)"),
    )
}


def reference_fraction(vendor: Vendor) -> float:
    """Published triad bandwidth as a fraction of the datasheet peak."""
    ref = PERF_REFERENCES[vendor]
    return ref.triad_gbs / default_spec(vendor).bandwidth_gbs
