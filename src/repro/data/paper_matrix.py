"""The reconstructed Figure 1: expected rating per combination.

**Reconstruction caveat.**  Figure 1 is an image in the paper's PDF and
is not part of the text this reproduction was built from.  Every cell
below is therefore *reconstructed* from the §4 description prose and
the §5 discussion; each carries its description number and the
sentence-level rationale.  The agreement benchmark
(``benchmarks/bench_agreement.py``) treats these as the reference and
reports per-cell matches of the empirically derived matrix.

Dual ratings (``secondary``) reproduce the two cells §5 explicitly
discusses as double-rated: Python on NVIDIA GPUs ("the pick-up of the
Open Source community was acknowledged through the added non-vendor
support category") and CUDA C++ on Intel GPUs ("the double-rating ...
honors the research project chipStar, besides the CUDA-to-SYCL
conversion tool").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.enums import Language, Model, SupportCategory, Vendor

C = SupportCategory
CPP, F, PY = Language.CPP, Language.FORTRAN, Language.PYTHON
NV, AMD, INT = Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL


@dataclass(frozen=True)
class PaperCell:
    """One expected Figure 1 cell."""

    vendor: Vendor
    model: Model
    language: Language
    primary: SupportCategory
    description_id: int
    rationale: str
    secondary: SupportCategory | None = None


_CELLS = [
    # ----- NVIDIA -----
    PaperCell(NV, Model.CUDA, CPP, C.FULL, 1,
              "'As it is the reference for the platform, the support for "
              "NVIDIA GPUs through CUDA C/C++ is very comprehensive.'"),
    PaperCell(NV, Model.CUDA, F, C.FULL, 2,
              "CUDA Fortran supported via NVHPC; 'implements most features "
              "of the CUDA API in Fortran', incl. cuf kernels."),
    PaperCell(NV, Model.HIP, CPP, C.INDIRECT, 3,
              "'HIP programs can directly use NVIDIA GPUs via a CUDA "
              "backend' — comprehensive vendor-provided mapping."),
    PaperCell(NV, Model.HIP, F, C.SOME, 4,
              "No Fortran HIP; AMD's hipfort provides 'an extensive set of "
              "ready-made interfaces' — usable but not the full model."),
    PaperCell(NV, Model.SYCL, CPP, C.NONVENDOR, 5,
              "'No direct support for SYCL is available by NVIDIA', but "
              "DPC++ and Open SYCL provide comprehensive third-party "
              "support."),
    PaperCell(NV, Model.SYCL, F, C.NONE, 6,
              "'SYCL is a C++-based programming model and by its nature "
              "does not support Fortran. Also, no pre-made bindings.'"),
    PaperCell(NV, Model.OPENACC, CPP, C.FULL, 7,
              "'The support of OpenACC in this vendor-delivered compiler is "
              "very comprehensive' (§5: rated complete)."),
    PaperCell(NV, Model.OPENACC, F, C.FULL, 8,
              "'Support of OpenACC Fortran on NVIDIA GPUs is similar to "
              "OpenACC C/C++' through nvfortran."),
    PaperCell(NV, Model.OPENMP, CPP, C.SOME, 9,
              "NVHPC implements 'only a subset of the entire OpenMP 5.0 "
              "standard'; §5: 'NVIDIA is upfront in acknowledging that some "
              "features ... are still missing'."),
    PaperCell(NV, Model.OPENMP, F, C.SOME, 10,
              "'OpenMP in Fortran is supported on NVIDIA GPUs nearly "
              "identical to C/C++' — same subset caveat."),
    PaperCell(NV, Model.STANDARD, CPP, C.FULL, 11,
              "pSTL offload 'supported ... through the nvc++ compiler of "
              "the NVIDIA HPC SDK' with -stdpar=gpu."),
    PaperCell(NV, Model.STANDARD, F, C.FULL, 12,
              "'do concurrent is supported on NVIDIA GPUs through the "
              "nvfortran compiler' with -stdpar=gpu."),
    PaperCell(NV, Model.KOKKOS, CPP, C.NONVENDOR, 13,
              "Kokkos (community) supports NVIDIA GPUs with CUDA, NVHPC, "
              "and Clang backends."),
    PaperCell(NV, Model.KOKKOS, F, C.LIMITED, 14,
              "Fortran reaches Kokkos only through the FLCL compatibility "
              "layer."),
    PaperCell(NV, Model.ALPAKA, CPP, C.NONVENDOR, 15,
              "Alpaka (community) supports NVIDIA GPUs via nvcc or Clang "
              "CUDA."),
    PaperCell(NV, Model.ALPAKA, F, C.NONE, 16,
              "'Alpaka is a C++ programming model and no ready-made Fortran "
              "support exists.'"),
    PaperCell(NV, Model.PYTHON, PY, C.FULL, 17,
              "Vendor CUDA Python plus the community stack (PyCUDA, CuPy, "
              "Numba, cuNumeric).",
              secondary=C.NONVENDOR),
    # ----- AMD -----
    PaperCell(AMD, Model.CUDA, CPP, C.INDIRECT, 18,
              "'While CUDA is not directly supported on AMD GPUs, it can be "
              "translated to HIP through AMD's HIPIFY' and run via hipcc."),
    PaperCell(AMD, Model.CUDA, F, C.LIMITED, 19,
              "Only GPUFORT: coverage 'driven by use-case requirements; the "
              "last commit is two years old'."),
    PaperCell(AMD, Model.HIP, CPP, C.FULL, 20,
              "'HIP C++ is the native programming model for AMD GPUs and, "
              "as such, fully supports the devices.'"),
    PaperCell(AMD, Model.HIP, F, C.SOME, 4,
              "hipfort interfaces (shared description with NVIDIA·HIP·"
              "Fortran): C functionality + kernel extensions, not the full "
              "driver surface."),
    PaperCell(AMD, Model.SYCL, CPP, C.NONVENDOR, 21,
              "'No direct support for SYCL is available by AMD'; Open SYCL "
              "and DPC++ (ROCm plugin) provide it."),
    PaperCell(AMD, Model.SYCL, F, C.NONE, 6,
              "SYCL is C++-only (shared description 6)."),
    PaperCell(AMD, Model.OPENACC, CPP, C.NONVENDOR, 22,
              "'OpenACC C/C++ is not supported by AMD itself, but "
              "third-party support is available ... through GCC or Clacc'."),
    PaperCell(AMD, Model.OPENACC, F, C.NONVENDOR, 23,
              "No native support; GPUFORT is research, but GCC (gfortran) "
              "and the HPE Cray PE support OpenACC Fortran on AMD GPUs."),
    PaperCell(AMD, Model.OPENMP, CPP, C.SOME, 24,
              "AOMP 'supports most OpenMP 4.5 and some OpenMP 5.0 "
              "features'."),
    PaperCell(AMD, Model.OPENMP, F, C.SOME, 25,
              "AOMP flang supports OpenMP offload in Fortran — same "
              "subset caveat as C/C++."),
    PaperCell(AMD, Model.STANDARD, CPP, C.LIMITED, 26,
              "'AMD does not yet provide production-grade support'; "
              "roc-stdpar/Open SYCL stdpar/DPC++-AMD are all in development "
              "or experimental (§5: 'most ambivalence')."),
    PaperCell(AMD, Model.STANDARD, F, C.NONE, 27,
              "'There is no (known) way to launch Standard-based parallel "
              "algorithms in Fortran on AMD GPUs.'"),
    PaperCell(AMD, Model.KOKKOS, CPP, C.NONVENDOR, 28,
              "Kokkos supports AMD GPUs mainly through the HIP/ROCm "
              "backend."),
    PaperCell(AMD, Model.KOKKOS, F, C.LIMITED, 14,
              "FLCL only (shared description 14)."),
    PaperCell(AMD, Model.ALPAKA, CPP, C.NONVENDOR, 29,
              "Alpaka supports AMD GPUs through HIP or an OpenMP backend."),
    PaperCell(AMD, Model.ALPAKA, F, C.NONE, 16,
              "No Fortran Alpaka (shared description 16)."),
    PaperCell(AMD, Model.PYTHON, PY, C.LIMITED, 30,
              "'AMD does not officially support GPU programming with "
              "Python'; CuPy-ROCm is experimental, Numba support "
              "unmaintained, PyHIP is low-level bindings."),
    # ----- Intel -----
    PaperCell(INT, Model.CUDA, CPP, C.INDIRECT, 31,
              "Intel's SYCLomatic/DPC++ Compatibility Tool translates CUDA "
              "to SYCL; §5's double-rating honors chipStar (research) "
              "besides it.",
              secondary=C.LIMITED),
    PaperCell(INT, Model.CUDA, F, C.NONE, 32,
              "'No direct support exists for CUDA Fortran on Intel GPUs' — "
              "only an ISO_C_BINDING example (the no-support category's own "
              "escape hatch)."),
    PaperCell(INT, Model.HIP, CPP, C.LIMITED, 33,
              "Only chipStar (research project per §5) maps HIP to "
              "OpenCL/Level Zero."),
    PaperCell(INT, Model.HIP, F, C.NONE, 34,
              "'HIP for Fortran does not exist, and also no translation "
              "efforts for Intel GPUs.'"),
    PaperCell(INT, Model.SYCL, CPP, C.FULL, 35,
              "'SYCL is ... selected by Intel as the prime programming "
              "model for Intel GPUs', implemented via DPC++."),
    PaperCell(INT, Model.SYCL, F, C.NONE, 6,
              "SYCL is C++-only (shared description 6)."),
    PaperCell(INT, Model.OPENACC, CPP, C.LIMITED, 36,
              "'No direct support for OpenACC C/C++ is available for Intel "
              "GPUs'; only the source-to-source migration tool exists."),
    PaperCell(INT, Model.OPENACC, F, C.LIMITED, 37,
              "Same: only the ACC-to-OMP translation tool, which 'also "
              "supports Fortran'."),
    PaperCell(INT, Model.OPENMP, CPP, C.FULL, 38,
              "'OpenMP is a second key programming model for Intel GPUs and "
              "well-supported': all 4.5 and most 5.0/5.1 features."),
    PaperCell(INT, Model.OPENMP, F, C.FULL, 39,
              "'OpenMP in Fortran is Intel's main selected route to bring "
              "Fortran applications to their GPUs' (ifx)."),
    PaperCell(INT, Model.STANDARD, CPP, C.SOME, 40,
              "oneDPL implements the pSTL, but §5: 'all pSTL functionality "
              "currently resides in a custom namespace'."),
    PaperCell(INT, Model.STANDARD, F, C.FULL, 41,
              "'Standard language parallelism of Fortran is supported by "
              "Intel on their GPUs through the Intel Fortran Compiler "
              "ifx' (do concurrent since oneAPI 2022.1)."),
    PaperCell(INT, Model.KOKKOS, CPP, C.LIMITED, 42,
              "'Kokkos supports Intel GPUs through an experimental SYCL "
              "backend.'"),
    PaperCell(INT, Model.KOKKOS, F, C.LIMITED, 14,
              "FLCL over the experimental SYCL backend (shared description "
              "14)."),
    PaperCell(INT, Model.ALPAKA, CPP, C.LIMITED, 43,
              "'Since v0.9.0, Alpaka contains experimental SYCL support "
              "with which Intel GPUs can be targeted.'"),
    PaperCell(INT, Model.ALPAKA, F, C.NONE, 16,
              "No Fortran Alpaka (shared description 16)."),
    PaperCell(INT, Model.PYTHON, PY, C.FULL, 44,
              "Three vendor packages: dpctl, numba-dpex, dpnp — Intel's own "
              "Python stack for their GPUs."),
]

PAPER_MATRIX: dict[tuple[Vendor, Model, Language], PaperCell] = {
    (c.vendor, c.model, c.language): c for c in _CELLS
}

assert len(PAPER_MATRIX) == 51, f"expected 51 cells, got {len(PAPER_MATRIX)}"


def expected(vendor: Vendor, model: Model, language: Language) -> PaperCell:
    """The reconstructed paper rating for one cell."""
    return PAPER_MATRIX[(vendor, model, language)]


#: Documented divergences between the statically derived ratings and the
#: reconstructed Figure 1 above.  The route-evidence analyzer
#: (``gpu-compat lint --routes``) refuses to pass while an undocumented
#: contradiction exists: a derived-vs-paper primary mismatch is an
#: ``RE01`` error *unless* its cell appears here with a rationale, in
#: which case it is reported as an ``RE03`` info diagnostic instead —
#: visible, never silent.  Keep this table empty unless a divergence is
#: genuinely argued for; every entry must say *why* the derivation and
#: the reconstruction disagree.
KNOWN_DIVERGENCES: dict[tuple[Vendor, Model, Language], str] = {}
