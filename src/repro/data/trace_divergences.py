"""Documented divergences between trace programs and interpreter semantics.

The tracesan translation validator
(:func:`repro.analysis.tracesan.validate_program`) statically re-derives
the effect summary of every trace-compiled program
(:mod:`repro.isa.tracing`) and proves it equal to the kernel IR's
interpreter semantics.  Any disagreement is an error (``TC01``/``TC03``)
**unless it is documented here** — the same contract
:data:`repro.data.perf_divergences.KNOWN_PERF_DIVERGENCES` establishes
for the perf matrix: divergences are acknowledged in code, never
silently suppressed, and surface as ``TC06`` info diagnostics so every
run still shows them.

Keys are either a kernel name (``"stream_triad"``) — which suppresses
every finding for that kernel at any geometry — or ``(kernel_name,
code)`` to scope the suppression to one diagnostic code.  Values explain
*why* the divergence is expected and what would close it.

The ledger ships empty — and a test enforces that it stays empty until
a divergence is genuinely understood: the trace compiler preserves
interpreter semantics for every library kernel, and tracesan re-proves
it at every canonical geometry.  The ledger exists so the first real
validator gap (e.g. a generated idiom the abstract interpreter cannot
classify yet) has a designated home instead of a skipped kernel.
"""

from __future__ import annotations

#: kernel_name or (kernel_name, diagnostic_code) -> reason it is OK.
KNOWN_TRACE_DIVERGENCES: dict[str | tuple[str, str], str] = {}


def divergence_reason(kernel: str, code: str | None = None) -> str | None:
    """The documented reason a finding is suppressed, or ``None``.

    Code-scoped entries take precedence over kernel-scoped ones.
    """
    if code is not None:
        scoped = KNOWN_TRACE_DIVERGENCES.get((kernel, code))
        if scoped is not None:
            return scoped
    return KNOWN_TRACE_DIVERGENCES.get(kernel)
