"""Documented divergences between static perf predictions and measurements.

The perfstat differential cross-check
(:func:`repro.analysis.perfstat.cross_check_perf`) compares the static
cost-model matrix against the dynamically measured
:class:`~repro.perfport.matrix.PerfMatrix` cell by cell and route by
route.  Any disagreement beyond tolerance is an error (``PS01``) or
warning (``PS02``/``PS04``) **unless it is documented here** — the same
contract :data:`repro.data.paper_matrix.KNOWN_DIVERGENCES` establishes
for the compatibility matrix: divergences are acknowledged in code,
never silently suppressed, and surface as ``PS06`` info diagnostics so
every run still shows them.

Keys are either a full cell (``(vendor, model, language)``) — which
suppresses every finding in that cell — or ``(vendor, model, language,
route_id)`` to scope the suppression to one route.  Values explain
*why* the divergence is expected and what would close it.

The ledger is currently empty: the static cost model reproduces the
interpreter's metering exactly for every stream kernel, and both sides
feed the same roofline, so predictions land within tolerance on every
supported cell.  The ledger exists so the first genuine modelling gap
(e.g. a data-dependent kernel added to the stream set, or a future
contention model the static side cannot see) has a designated home
instead of a hacked-up tolerance bump.
"""

from __future__ import annotations

from repro.enums import Language, Model, Vendor

#: (vendor, model, language[, route_id]) -> reason the divergence is OK.
KNOWN_PERF_DIVERGENCES: dict[tuple, str] = {}


def divergence_reason(vendor: Vendor, model: Model, language: Language,
                      route_id: str | None = None) -> str | None:
    """The documented reason a finding is suppressed, or ``None``.

    Route-scoped entries take precedence over cell-scoped ones.
    """
    if route_id is not None:
        scoped = KNOWN_PERF_DIVERGENCES.get(
            (vendor, model, language, route_id))
        if scoped is not None:
            return scoped
    return KNOWN_PERF_DIVERGENCES.get((vendor, model, language))
