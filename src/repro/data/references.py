"""Bibliography entries referenced by the descriptions (paper [n])."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Reference:
    """One bibliography entry."""

    key: int
    citation: str
    url: str = ""


REFERENCES: dict[int, Reference] = {
    r.key: r
    for r in (
        Reference(1, "TOP500 List, June 2023",
                  "https://www.top500.org/lists/top500/2023/06/"),
        Reference(4, "Hammond et al., Benchmarking Fortran DO CONCURRENT on "
                     "CPUs and GPUs Using BabelStream, PMBS@SC 2022"),
        Reference(5, "Markomanolis et al., Evaluating GPU Programming Models "
                     "for the LUMI Supercomputer, 2022"),
        Reference(6, "Hammond, Shifting through the Gears of GPU "
                     "Programming, GTC 2022"),
        Reference(7, "ECP, OpenMP Roadmap for Accelerators Across DOE "
                     "Pre-Exascale/Exascale Machines, 2022"),
        Reference(8, "Huber et al., ECP SOLLVE: Validation and Verification "
                     "Testsuite Status Update, P3HPC 2022"),
        Reference(9, "Jarmusch et al., Analysis of Validating and Verifying "
                     "OpenACC Compilers 3.0 and Above, WACCPD 2022"),
        Reference(10, "NVIDIA, CUDA Toolkit",
                  "https://developer.nvidia.com/cuda-toolkit"),
        Reference(11, "NVIDIA, CUDA Fortran",
                  "https://developer.nvidia.com/cuda-fortran"),
        Reference(12, "AMD, HIP",
                  "https://rocm.docs.amd.com/projects/HIP/en/latest/"),
        Reference(13, "AMD, hipfort",
                  "https://rocm.docs.amd.com/projects/hipfort/en/latest/"),
        Reference(14, "Intel and Contributors, oneAPI DPC++ Compiler",
                  "https://github.com/intel/llvm"),
        Reference(15, "Alpay et al., Exploring the possibility of a "
                      "hipSYCL-based implementation of oneAPI, IWOCL 2022"),
        Reference(16, "Khronos Group, SYCL", "https://www.khronos.org/sycl/"),
        Reference(17, "NVIDIA, NVIDIA HPC SDK",
                  "https://developer.nvidia.com/hpc-sdk"),
        Reference(18, "GCC, GCC OpenACC", "https://gcc.gnu.org/wiki/OpenACC"),
        Reference(19, "Denny et al., CLACC: Translating OpenACC to OpenMP in "
                      "Clang, LLVM-HPC 2018"),
        Reference(20, "Jarmusch et al., Analysis of Validating and Verifying "
                      "OpenACC Compilers 3.0 and Above, WACCPD 2022"),
        Reference(21, "Clement and Vetter, Flacc: Towards OpenACC support "
                      "for Fortran in the LLVM Ecosystem, LLVM-HPC 2021"),
        Reference(22, "GCC Developers, GCC OpenMP",
                  "https://gcc.gnu.org/wiki/openmp"),
        Reference(23, "LLVM/Clang Developers, Clang OpenMP",
                  "https://clang.llvm.org/docs/OpenMPSupport.html"),
        Reference(24, "HPE, HPE Cray Programming Environment",
                  "https://www.hpe.com/psnow/doc/a50002303enw"),
        Reference(25, "LLVM/Flang, Flang", "https://flang.llvm.org/"),
        Reference(26, "Intel, oneDPL",
                  "https://oneapi-src.github.io/oneDPL/index.html"),
        Reference(27, "Trott et al., Kokkos 3: Programming Model Extensions "
                      "for the Exascale Era, IEEE TPDS 33(4), 2022"),
        Reference(28, "Matthes et al., Tuning and optimization for a variety "
                      "of many-core architectures ... using the Alpaka "
                      "library, 2017"),
        Reference(29, "NVIDIA, CUDA Python",
                  "https://nvidia.github.io/cuda-python/index.html"),
        Reference(30, "Kloeckner et al., PyCUDA v2022.2.2, 2023"),
        Reference(31, "Okuta et al., CuPy: A NumPy-Compatible Library for "
                      "NVIDIA GPU Calculations, LearningSys@NIPS 2017"),
        Reference(32, "Lam et al., numba/numba 0.57.1, 2023"),
        Reference(33, "NVIDIA, cuNumeric",
                  "https://developer.nvidia.com/cunumeric"),
        Reference(34, "AMD, GPUFORT",
                  "https://github.com/ROCmSoftwarePlatform/gpufort"),
        Reference(35, "AMD, AOMP",
                  "https://github.com/ROCm-Developer-Tools/aomp"),
        Reference(36, "AMD, roc-stdpar",
                  "https://github.com/ROCmSoftwarePlatform/roc-stdpar"),
        Reference(37, "Intel, SYCLomatic",
                  "https://github.com/oneapi-src/SYCLomatic"),
        Reference(38, "Zhao et al., HIPLZ: Enabling Performance Portability "
                      "for Exascale Systems, Euro-Par 2022 Workshops"),
        Reference(39, "Intel, oneAPI toolkits",
                  "https://www.intel.com/content/www/us/en/developer/tools/"
                  "oneapi/toolkits.html"),
        Reference(40, "Intel, Application Migration Tool for OpenACC to "
                      "OpenMP API",
                  "https://github.com/intel/intel-application-migration-tool"
                  "-for-openacc-to-openmp"),
        Reference(41, "Intel, Data Parallel Control (dpctl)",
                  "https://github.com/IntelPython/dpctl"),
        Reference(42, "Intel, Data-parallel Extension to Numba (numba-dpex)",
                  "https://github.com/IntelPython/numba-dpex"),
        Reference(43, "Intel, Data Parallel Extension for Numpy (dpnp)",
                  "https://github.com/IntelPython/dpnp"),
        Reference(44, "RAJA Performance Portability Layer",
                  "https://github.com/LLNL/RAJA"),
        Reference(53, "Deakin et al., Evaluating attainable memory bandwidth "
                      "of parallel programming models via BabelStream, "
                      "IJCSE 17(3), 2018"),
        Reference(55, "Herten, GPU Vendor/Programming Model Compatibility "
                      "Table",
                  "https://github.com/AndiH/gpu-lang-compat"),
    )
}
