"""Historical snapshots of the compatibility table.

The paper is explicitly a *snapshot of a living overview*: "A previous
version of this work was shown in a presentation at a workshop
[October 2022] ... The goal is a living overview of the evolving field,
with snapshots in paper form at regular intervals" (Acknowledgments),
and §5 (Topicality) names the cells that moved between that workshop
version and the paper.

This module encodes the October 2022 workshop state as *overrides* of
the paper's (mid/late-2023) matrix, each justified by the paper's own
prose about what changed:

* C++ standard parallelism on AMD "made great progress in the past
  year, and now multiple venues exist" — in 2022 there was no known way
  (no roc-stdpar, no ``--hipsycl-stdpar``, no DPC++-on-AMD pSTL).
* chipStar "recently released a 1.0 version" (it was the early CHIP-SPV
  research code in 2022, not yet the second rating of Intel·CUDA·C++
  nor a usable HIP route).
* Intel's ``do concurrent`` offload "was added in the oneAPI 2022.1
  update and extended in further releases" — young and partial at the
  workshop, full by the paper.
* ComputeCpp "became unsupported in September 2023" — still a live
  product in the 2022 snapshot (affects route maturity, not ratings,
  since DPC++/Open SYCL already led those cells).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.paper_matrix import PAPER_MATRIX
from repro.enums import Language, Model, SupportCategory, Vendor

C = SupportCategory


@dataclass(frozen=True)
class SnapshotCell:
    """One cell's rating at a snapshot date."""

    primary: SupportCategory
    secondary: SupportCategory | None
    note: str = ""


@dataclass(frozen=True)
class Snapshot:
    """A full 51-cell table at one point in time."""

    name: str
    date: str
    cells: dict[tuple[Vendor, Model, Language], SnapshotCell]

    def cell(self, vendor: Vendor, model: Model,
             language: Language) -> SnapshotCell:
        return self.cells[(vendor, model, language)]


def _paper_cells() -> dict:
    return {
        key: SnapshotCell(cell.primary, cell.secondary, cell.rationale)
        for key, cell in PAPER_MATRIX.items()
    }


#: The paper itself (submission-time state).
SNAPSHOT_2023 = Snapshot(
    name="SC-W 2023 paper",
    date="2023-09",
    cells=_paper_cells(),
)

_OVERRIDES_2022: dict[tuple[Vendor, Model, Language], SnapshotCell] = {
    (Vendor.AMD, Model.STANDARD, Language.CPP): SnapshotCell(
        C.NONE, None,
        "pre roc-stdpar / --hipsycl-stdpar / DPC++-AMD: §5 'made great "
        "progress in the past year, and now multiple venues exist'",
    ),
    (Vendor.INTEL, Model.CUDA, Language.CPP): SnapshotCell(
        C.INDIRECT, None,
        "SYCLomatic only; CHIP-SPV had not released chipStar 1.0, so no "
        "second rating yet",
    ),
    (Vendor.INTEL, Model.HIP, Language.CPP): SnapshotCell(
        C.NONE, None,
        "HIP on Intel arrives with chipStar; CHIP-SPV was early research "
        "in October 2022",
    ),
    (Vendor.INTEL, Model.STANDARD, Language.FORTRAN): SnapshotCell(
        C.SOME, None,
        "do concurrent offload 'added in oneAPI 2022.1 and extended in "
        "further releases' — new and partial at the workshop",
    ),
}


def _snapshot_2022_cells() -> dict:
    cells = _paper_cells()
    cells.update(_OVERRIDES_2022)
    return cells


#: The October 2022 workshop version (DKRZ natESM hands-on, Acknowledgments).
SNAPSHOT_2022 = Snapshot(
    name="October 2022 workshop",
    date="2022-10",
    cells=_snapshot_2022_cells(),
)

SNAPSHOTS: dict[str, Snapshot] = {
    SNAPSHOT_2022.date: SNAPSHOT_2022,
    SNAPSHOT_2023.date: SNAPSHOT_2023,
}
