"""Frontends: how kernel and host source enters the ecosystem.

* :mod:`repro.frontends.kernel_dsl` — the restricted-Python kernel
  language compiled to abstract IR; the device-code substrate every
  programming model shares (the way real models all lower to LLVM IR).
* :mod:`repro.frontends.source` — translation units: kernel collections
  tagged with (programming model, language), which is the unit the
  toolchains accept or reject.
"""

from repro.frontends.kernel_dsl import (  # noqa: F401
    ArrayAnn,
    KernelFn,
    TypeRef,
    compile_kernel,
    f32,
    f64,
    i32,
    i64,
    kernel,
    u32,
    u64,
)
from repro.frontends.source import TranslationUnit  # noqa: F401
