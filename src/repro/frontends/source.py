"""Translation units: the object toolchains compile.

A :class:`TranslationUnit` bundles compiled DSL kernels with the
metadata that drives the compatibility machinery: which *programming
model* the code is written against and which *source language* it
represents.  A simulated toolchain accepts or rejects a translation
unit based on exactly this pair plus the kernels' feature tags —
mirroring how ``nvcc`` compiles CUDA C++ but not CUDA Fortran, and
``ifx`` compiles OpenMP Fortran but not HIP anything.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.enums import Language, Model
from repro.errors import FrontendError
from repro.frontends.kernel_dsl import KernelFn


@dataclass
class TranslationUnit:
    """Source-level unit of compilation.

    Attributes:
        name: Module name carried through to the device binary.
        model: The programming model the source is written in.
        language: The host language the source represents.  The embedded
            DSL is Python either way; the tag models what a real source
            file would be and is what language-restricted toolchains and
            models check (e.g. SYCL rejects ``Language.FORTRAN``).
        kernels: The device kernels of this unit.
        features: Host-level feature tags beyond what kernels carry
            (e.g. ``"openmp:metadirective"``, ``"async_streams"``),
            consumed by the toolchain capability check.
        origin: Translation provenance
            (:class:`repro.translate.base.TranslationOrigin`) stamped by
            :meth:`SourceTranslator.translate_unit`; ``None`` for units
            authored directly in this model.  Deliberately excluded from
            :meth:`fingerprint` — provenance never changes code
            generation — but ``Toolchain.compile(sanitize=True)`` keys
            its cache on it and runs translation validation (transval)
            over units that carry one.
    """

    name: str
    model: Model
    language: Language
    kernels: list[KernelFn] = field(default_factory=list)
    features: set[str] = field(default_factory=set)
    origin: object | None = None

    def add(self, kernel: KernelFn) -> KernelFn:
        if any(k.name == kernel.name for k in self.kernels):
            raise FrontendError(
                f"translation unit '{self.name}' already has kernel '{kernel.name}'"
            )
        self.kernels.append(kernel)
        return kernel

    def require(self, *features: str) -> "TranslationUnit":
        """Tag host-level feature requirements (chainable)."""
        self.features.update(features)
        return self

    def all_features(self) -> frozenset[str]:
        """Union of host-level and per-kernel feature tags."""
        tags = set(self.features)
        for k in self.kernels:
            tags |= k.ir.features
        return frozenset(tags)

    def fingerprint(self) -> str:
        """Content hash of everything that affects the compiled binary.

        The unit *name* is deliberately excluded: runtimes mint a fresh
        per-instance name for each unit (``cuda_tu3``...) while compiling
        byte-identical source, and the name never changes code
        generation.  Instruction/operand dataclasses all have
        content-based reprs, so ``repr`` of a kernel body is a stable
        structural fingerprint.
        """
        h = hashlib.sha256()
        h.update(f"{self.model.value}|{self.language.value}".encode())
        for tag in sorted(self.features):
            h.update(f"|{tag}".encode())
        for k in self.kernels:
            ir = k.ir
            params = ",".join(
                f"{p.name}:{'*' if p.is_pointer else ''}{p.dtype.name}"
                for p in ir.params
            )
            h.update(f"#{ir.name}({params})".encode())
            h.update(repr(ir.body).encode())
            for tag in sorted(ir.features):
                h.update(f"+{tag}".encode())
        return h.hexdigest()

    def kernel(self, name: str) -> KernelFn:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(f"no kernel '{name}' in translation unit '{self.name}'")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TU {self.name} model={self.model.value} lang={self.language.value} "
            f"kernels={[k.name for k in self.kernels]}>"
        )
