"""The kernel DSL: restricted Python compiled to abstract kernel IR.

Kernels are written as annotated Python functions::

    from repro.frontends import kernel, f64, i64

    @kernel
    def saxpy(n: i64, a: f64, x: f64[:], y: f64[:]):
        i = gid(0)
        if i >= n:
            return
        y[i] = a * x[i] + y[i]

The decorator never executes the body; it parses the source with
:mod:`ast` and emits IR through :class:`~repro.isa.builder.IRBuilder`.
The supported subset is what GPU kernels are made of: scalar arithmetic,
array subscripts, ``if``/``while``/``for range(...)``, early ``return``,
and intrinsics (resolved by *name* inside kernel bodies, no import
needed):

==================  =====================================================
``gid(d)``          global thread index along dimension ``d`` (i64)
``lid(d)``          thread index within the block (``threadIdx``)
``bid(d)``          block index (``blockIdx``)
``bdim(d)``         block size (``blockDim``)
``gdim(d)``         grid size in blocks (``gridDim``)
``gsize(d)``        total threads along ``d`` (for grid-stride loops)
``lane()``          lane within the warp/wavefront/sub-group
``warpsize()``      execution width (legalized to an ISA constant)
``barrier()``       block-level barrier
``shared(T, n)``    statically allocate ``n`` elements of shared memory
``atomic_add/min/max/exch(arr, idx, val)``  atomics (return old value)
``atomic_cas(arr, idx, expected, desired)`` compare-and-swap
``shfl_idx/up/down/xor(value, lane)``       cross-lane shuffles
``sqrt, rsqrt, exp, log, sin, cos, tanh, floor, ceil, abs, min, max``
``f32(x), i64(x), ...``                     explicit conversions
==================  =====================================================

Python names that are not locals, parameters, or intrinsics are resolved
against the function's globals/closure at compile time and must be
numeric constants (they are frozen into the kernel as immediates).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable

from repro.errors import KernelSyntaxError, KernelTypeError
from repro.isa import dtypes
from repro.isa.builder import IRBuilder
from repro.isa.dtypes import DType
from repro.isa.instructions import Imm, MemSpace, Operand, Register
from repro.isa.module import KernelIR


# ---------------------------------------------------------------------------
# Annotation objects
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArrayAnn:
    """Annotation for a pointer/array parameter (``f64[:]``)."""

    dtype: DType


class TypeRef:
    """A scalar type usable as annotation, cast function, and ``T[:]``."""

    def __init__(self, dtype: DType):
        self.dtype = dtype

    def __getitem__(self, _slice) -> ArrayAnn:
        return ArrayAnn(self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<dsl type {self.dtype.name}>"


f32 = TypeRef(dtypes.F32)
f64 = TypeRef(dtypes.F64)
i32 = TypeRef(dtypes.I32)
i64 = TypeRef(dtypes.I64)
u32 = TypeRef(dtypes.U32)
u64 = TypeRef(dtypes.U64)

_TYPE_REFS = {"f32": f32, "f64": f64, "i32": i32, "i64": i64, "u32": u32, "u64": u64}

_MATH_UNARY = {
    "sqrt": "sqrt", "rsqrt": "rsqrt", "exp": "exp", "log": "log",
    "sin": "sin", "cos": "cos", "tanh": "tanh", "floor": "floor",
    "ceil": "ceil", "abs": "abs",
}

_SPECIAL_DIMS = "xyz"


# ---------------------------------------------------------------------------
# Symbol table entries
# ---------------------------------------------------------------------------


@dataclass
class _Var:
    """A scalar local variable bound to a stable named register."""

    reg: Register


@dataclass
class _ArrayVal:
    """An array value: base byte-address register + element type + space."""

    base: Operand
    dtype: DType
    space: str


# ---------------------------------------------------------------------------
# Compiled kernel handle
# ---------------------------------------------------------------------------


@dataclass
class KernelFn:
    """A DSL function compiled to IR, ready for toolchain legalization."""

    name: str
    ir: KernelIR
    arg_is_pointer: tuple[bool, ...]
    arg_dtypes: tuple[DType, ...]
    pyfunc: Callable

    @property
    def features(self) -> frozenset[str]:
        return self.ir.features

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KernelFn {self.name} features={sorted(self.ir.features)}>"


def kernel(func: Callable) -> KernelFn:
    """Decorator: compile a DSL function to a :class:`KernelFn`."""
    return compile_kernel(func)


def compile_kernel(
    func: Callable,
    name: str | None = None,
    param_types: "tuple | None" = None,
    source: str | None = None,
    source_path: str | None = None,
) -> KernelFn:
    """Compile ``func`` (a DSL function) to IR.

    ``param_types`` supplies parameter types (TypeRef/ArrayAnn, in
    positional order) for functions without annotations — the explicit
    signature path of the ``@repro.jit.kernel`` decorator.  When both a
    signature and annotations are present they must agree.

    ``source`` overrides ``inspect.getsource`` for functions that have
    no retrievable file (e.g. kernels submitted over the service as a
    source string and materialized with ``exec``); ``source_path`` is
    the path diagnostics should attribute such source to.
    """
    line_offset = 1
    if source is not None:
        src = textwrap.dedent(source)
        path = source_path or "<source>"
    else:
        try:
            lines, line_offset = inspect.getsourcelines(func)
        except (OSError, TypeError) as exc:
            raise KernelSyntaxError(
                f"cannot retrieve source of {func!r}; kernels must be defined "
                "in a file"
            ) from exc
        src = textwrap.dedent("".join(lines))
        path = source_path or func.__code__.co_filename
    tree = ast.parse(src)
    fdef = next(
        (n for n in tree.body if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))),
        None,
    )
    if fdef is None:
        raise KernelSyntaxError("expected a function definition")
    compiler = _Compiler(func, fdef, name or func.__name__,
                         param_types=param_types,
                         source_path=path, line_offset=line_offset)
    return compiler.run()


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


class _Compiler:
    def __init__(self, func: Callable, fdef: ast.FunctionDef, name: str,
                 param_types: "tuple | None" = None,
                 source_path: str | None = None, line_offset: int = 1):
        self.func = func
        self.fdef = fdef
        self.b = IRBuilder(name)
        self.sym: dict[str, object] = {}
        self.arg_is_pointer: list[bool] = []
        self.arg_dtypes: list[DType] = []
        self.param_types = param_types
        self.source_path = source_path
        self.line_offset = line_offset

    # -- helpers ----------------------------------------------------------------

    def fail(self, node: ast.AST, msg: str,
             cls: type = KernelSyntaxError) -> KernelSyntaxError:
        """Diagnostic pointing at the user's Python source, not the DSL.

        AST line numbers are relative to the (dedented) snippet the
        compiler parsed; ``line_offset`` re-anchors them to the line the
        decorated function actually starts on, so editors can jump to
        the offending construct.  The raised error carries structured
        ``source_path`` / ``source_line`` attributes alongside the
        rendered ``path:line:`` prefix.
        """
        rel = getattr(node, "lineno", None)
        line = None if rel is None else self.line_offset + rel - 1
        where = self.source_path or self.b.name
        exc = cls(f"{where}:{line if line is not None else '?'}: {msg}")
        exc.source_path = self.source_path
        exc.source_line = line
        return exc

    def resolve_global(self, name: str):
        if name in self.func.__globals__:
            return self.func.__globals__[name]
        closure = self.func.__closure__ or ()
        freevars = self.func.__code__.co_freevars
        for var, cell in zip(freevars, closure):
            if var == name:
                return cell.cell_contents
        builtins = self.func.__globals__.get("__builtins__", {})
        if isinstance(builtins, dict) and name in builtins:
            return builtins[name]
        raise KeyError(name)

    def _annotation_to_type(self, node: ast.AST, arg: ast.arg):
        """Evaluate a parameter annotation to a TypeRef/ArrayAnn."""
        expr = ast.Expression(body=node)
        ast.fix_missing_locations(expr)
        try:
            value = eval(  # noqa: S307 - annotations are trusted DSL types
                compile(expr, "<annotation>", "eval"),
                self.func.__globals__,
                _TYPE_REFS,
            )
        except Exception as exc:
            raise self.fail(arg, f"cannot evaluate annotation of '{arg.arg}'") from exc
        if isinstance(value, str):
            # Forward-reference strings: "i64", "f64[:]" (Numba-style).
            text = value.strip()
            if text.endswith("[:]"):
                base = _TYPE_REFS.get(text[:-3].strip())
                if base is not None:
                    return ArrayAnn(base.dtype)
            elif text in _TYPE_REFS:
                return _TYPE_REFS[text]
        return value

    # -- top level ---------------------------------------------------------------

    def run(self) -> KernelFn:
        args = self.fdef.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
            raise self.fail(self.fdef, "kernels take plain positional parameters only")
        if self.param_types is not None and len(self.param_types) != len(args.args):
            raise self.fail(
                self.fdef,
                f"signature has {len(self.param_types)} parameter type(s) "
                f"but '{self.b.name}' takes {len(args.args)}",
                cls=KernelTypeError,
            )
        for i, arg in enumerate(args.args):
            declared = self.param_types[i] if self.param_types is not None else None
            if arg.annotation is None:
                if declared is None:
                    raise self.fail(arg, f"parameter '{arg.arg}' needs a type annotation")
                ann = declared
            else:
                ann = self._annotation_to_type(arg.annotation, arg)
                if declared is not None and not _same_type(ann, declared):
                    raise self.fail(
                        arg,
                        f"parameter '{arg.arg}' is annotated "
                        f"{_type_name(ann)} but the signature says "
                        f"{_type_name(declared)}",
                        cls=KernelTypeError,
                    )
            if isinstance(ann, ArrayAnn):
                reg = self.b.param(arg.arg, ann.dtype, pointer=True)
                self.sym[arg.arg] = _ArrayVal(reg, ann.dtype, MemSpace.GLOBAL)
                self.arg_is_pointer.append(True)
                self.arg_dtypes.append(ann.dtype)
            elif isinstance(ann, TypeRef):
                reg = self.b.param(arg.arg, ann.dtype)
                self.sym[arg.arg] = _Var(reg)
                self.arg_is_pointer.append(False)
                self.arg_dtypes.append(ann.dtype)
            else:
                raise self.fail(
                    arg,
                    f"parameter '{arg.arg}' annotation must be a DSL type "
                    f"(f64, i32[:], ...), got {ann!r}",
                )
        self.compile_body(self.fdef.body)
        ir = self.b.build()
        return KernelFn(
            name=self.b.name,
            ir=ir,
            arg_is_pointer=tuple(self.arg_is_pointer),
            arg_dtypes=tuple(self.arg_dtypes),
            pyfunc=self.func,
        )

    # -- statements ---------------------------------------------------------------

    def compile_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.compile_stmt(stmt)

    def compile_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._stmt_assign(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            self._stmt_ann_assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._stmt_aug_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._stmt_if(stmt)
        elif isinstance(stmt, ast.While):
            self._stmt_while(stmt)
        elif isinstance(stmt, ast.For):
            self._stmt_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                raise self.fail(stmt, "kernels cannot return values")
            self.b.exit()
        elif isinstance(stmt, ast.Expr):
            self._stmt_expr(stmt)
        elif isinstance(stmt, ast.Pass):
            pass
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            raise self.fail(stmt, "break/continue are not supported; restructure the loop condition")
        else:
            raise self.fail(stmt, f"unsupported statement {type(stmt).__name__}")

    def _bind_scalar(self, name: str, value: Operand, node: ast.AST) -> None:
        existing = self.sym.get(name)
        if isinstance(existing, _ArrayVal):
            raise self.fail(node, f"cannot rebind array '{name}' to a scalar")
        if isinstance(existing, _Var):
            self.b.mov(existing.reg, value)
        else:
            reg = self.b.named(f"{name}", _operand_dtype(value))
            self.b.mov(reg, value)
            self.sym[name] = _Var(reg)

    def _stmt_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            raise self.fail(stmt, "chained assignment is not supported")
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            value = self.compile_expr(stmt.value)
            if isinstance(value, _ArrayVal):
                self.sym[target.id] = value
                return
            self._bind_scalar(target.id, value, stmt)
        elif isinstance(target, ast.Subscript):
            self._store_subscript(target, stmt.value)
        else:
            raise self.fail(stmt, "assignment target must be a name or subscript")

    def _stmt_ann_assign(self, stmt: ast.AnnAssign) -> None:
        if not isinstance(stmt.target, ast.Name) or stmt.value is None:
            raise self.fail(stmt, "annotated assignment needs a name and a value")
        ann = self._annotation_to_type(stmt.annotation, ast.arg(arg=stmt.target.id))
        if not isinstance(ann, TypeRef):
            raise self.fail(stmt, "variable annotations must be scalar DSL types")
        value = self.compile_expr(stmt.value)
        if isinstance(value, _ArrayVal):
            raise self.fail(stmt, "cannot annotate an array binding with a scalar type")
        self._bind_scalar(stmt.target.id, self.b.cvt(value, ann.dtype), stmt)

    _AUG_OPS = {
        ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul", ast.Div: "div",
        ast.Mod: "rem", ast.Pow: "pow", ast.BitAnd: "and", ast.BitOr: "or",
        ast.BitXor: "xor", ast.LShift: "shl", ast.RShift: "shr",
        ast.FloorDiv: "div",
    }

    def _stmt_aug_assign(self, stmt: ast.AugAssign) -> None:
        op = self._AUG_OPS.get(type(stmt.op))
        if op is None:
            raise self.fail(stmt, f"unsupported augmented op {type(stmt.op).__name__}")
        if isinstance(stmt.target, ast.Name):
            var = self.sym.get(stmt.target.id)
            if not isinstance(var, _Var):
                raise self.fail(stmt, f"'{stmt.target.id}' is not a scalar variable")
            rhs = self._as_scalar(self.compile_expr(stmt.value), stmt)
            self.b.mov(var.reg, self.b.binop(op, var.reg, self.b.cvt(rhs, var.reg.dtype)))
        elif isinstance(stmt.target, ast.Subscript):
            arr, index = self._subscript_parts(stmt.target)
            old = self.b.load_elem(arr.base, index, arr.dtype, arr.space)
            rhs = self._as_scalar(self.compile_expr(stmt.value), stmt)
            new = self.b.binop(op, old, self.b.cvt(rhs, arr.dtype))
            self.b.store_elem(arr.base, index, new, arr.dtype, arr.space)
        else:
            raise self.fail(stmt, "augmented target must be a name or subscript")

    def _stmt_if(self, stmt: ast.If) -> None:
        cond = self._as_pred(self.compile_expr(stmt.test), stmt)
        with self.b.if_(cond) as iff:
            self.compile_body(stmt.body)
        if stmt.orelse:
            with self.b.orelse(iff):
                self.compile_body(stmt.orelse)

    def _stmt_while(self, stmt: ast.While) -> None:
        if stmt.orelse:
            raise self.fail(stmt, "while/else is not supported")
        with self.b.while_() as loop:
            with loop.cond():
                loop.set_cond(self._as_pred(self.compile_expr(stmt.test), stmt))
            self.compile_body(stmt.body)

    def _stmt_for(self, stmt: ast.For) -> None:
        if stmt.orelse:
            raise self.fail(stmt, "for/else is not supported")
        if not (
            isinstance(stmt.iter, ast.Call)
            and isinstance(stmt.iter.func, ast.Name)
            and stmt.iter.func.id == "range"
        ):
            raise self.fail(stmt, "for loops must iterate over range(...)")
        if not isinstance(stmt.target, ast.Name):
            raise self.fail(stmt, "loop variable must be a simple name")
        parts = [self._as_scalar(self.compile_expr(a), stmt) for a in stmt.iter.args]
        if len(parts) == 1:
            start, stop, step = Imm(0, dtypes.I64), parts[0], Imm(1, dtypes.I64)
        elif len(parts) == 2:
            start, stop = parts
            step = Imm(1, dtypes.I64)
        elif len(parts) == 3:
            start, stop, step = parts
        else:
            raise self.fail(stmt, "range() takes 1-3 arguments")

        descending = isinstance(step, Imm) and step.value < 0
        i = self.b.named(stmt.target.id, dtypes.I64)
        self.b.mov(i, self.b.cvt(start, dtypes.I64))
        self.sym[stmt.target.id] = _Var(i)
        stop64 = self.b.cvt(stop, dtypes.I64)
        step64 = self.b.cvt(step, dtypes.I64)
        with self.b.while_() as loop:
            with loop.cond():
                cond = self.b.gt(i, stop64) if descending else self.b.lt(i, stop64)
                loop.set_cond(cond)
            self.compile_body(stmt.body)
            self.b.mov(i, self.b.add(i, step64))

    def _stmt_expr(self, stmt: ast.Expr) -> None:
        value = stmt.value
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return  # docstring
        if isinstance(value, ast.Call):
            self.compile_call(value, as_statement=True)
            return
        raise self.fail(stmt, "expression statements must be intrinsic calls")

    # -- expressions -----------------------------------------------------------

    _BIN_OPS = {
        ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul", ast.Div: "div",
        ast.Mod: "rem", ast.Pow: "pow", ast.BitAnd: "and", ast.BitOr: "or",
        ast.BitXor: "xor", ast.LShift: "shl", ast.RShift: "shr",
    }
    _CMP_OPS = {
        ast.Eq: "eq", ast.NotEq: "ne", ast.Lt: "lt", ast.LtE: "le",
        ast.Gt: "gt", ast.GtE: "ge",
    }

    def _as_scalar(self, value, node: ast.AST) -> Operand:
        if isinstance(value, _ArrayVal):
            raise self.fail(node, "array value used where a scalar is required")
        if value is None:
            raise self.fail(node, "void intrinsic used as a value")
        return value

    def _as_pred(self, value, node: ast.AST) -> Operand:
        value = self._as_scalar(value, node)
        if _operand_dtype(value).is_pred:
            return value
        # Pythonic truthiness: nonzero means true.
        return self.b.ne(value, Imm(0, _operand_dtype(value)))

    def compile_expr(self, node: ast.expr):
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool):
                return Imm(v, dtypes.PRED)
            if isinstance(v, int):
                return Imm(v, dtypes.I64)
            if isinstance(v, float):
                return Imm(v, dtypes.F64)
            raise self.fail(node, f"unsupported constant {v!r}")

        if isinstance(node, ast.Name):
            entry = self.sym.get(node.id)
            if isinstance(entry, _Var):
                return entry.reg
            if isinstance(entry, _ArrayVal):
                return entry
            try:
                value = self.resolve_global(node.id)
            except KeyError:
                raise self.fail(node, f"unknown name '{node.id}'") from None
            if isinstance(value, bool):
                return Imm(value, dtypes.PRED)
            if isinstance(value, int):
                return Imm(value, dtypes.I64)
            if isinstance(value, float):
                return Imm(value, dtypes.F64)
            raise self.fail(
                node,
                f"captured name '{node.id}' must be a numeric constant, "
                f"got {type(value).__name__}",
            )

        if isinstance(node, ast.BinOp):
            op = self._BIN_OPS.get(type(node.op))
            a = self._as_scalar(self.compile_expr(node.left), node)
            b_ = self._as_scalar(self.compile_expr(node.right), node)
            if isinstance(node.op, ast.FloorDiv):
                return self.b.binop("div", a, b_)
            if op is None:
                raise self.fail(node, f"unsupported operator {type(node.op).__name__}")
            if isinstance(node.op, ast.Div):
                adt, bdt = _operand_dtype(a), _operand_dtype(b_)
                if adt.is_integer and bdt.is_integer:
                    # True division of integers yields f64, as in Python.
                    a = self.b.cvt(a, dtypes.F64)
                    b_ = self.b.cvt(b_, dtypes.F64)
            return self.b.binop(op, a, b_)

        if isinstance(node, ast.UnaryOp):
            v = self._as_scalar(self.compile_expr(node.operand), node)
            if isinstance(node.op, ast.USub):
                if isinstance(v, Imm) and not v.dtype.is_pred:
                    # Fold so `-2` is a negative immediate (range steps,
                    # constant folding) rather than a neg instruction.
                    return Imm(-v.value, v.dtype)
                return self.b.unary("neg", v)
            if isinstance(node.op, ast.UAdd):
                return v
            if isinstance(node.op, ast.Not):
                return self.b.unary("not", self._as_pred(v, node))
            if isinstance(node.op, ast.Invert):
                return self.b.unary("bitnot", v)
            raise self.fail(node, "unsupported unary operator")

        if isinstance(node, ast.Compare):
            left = self._as_scalar(self.compile_expr(node.left), node)
            result = None
            for op_node, comparator in zip(node.ops, node.comparators):
                op = self._CMP_OPS.get(type(op_node))
                if op is None:
                    raise self.fail(node, f"unsupported comparison {type(op_node).__name__}")
                right = self._as_scalar(self.compile_expr(comparator), node)
                this = self.b.cmp(op, left, right)
                result = this if result is None else self.b.logical_and(result, this)
                left = right
            return result

        if isinstance(node, ast.BoolOp):
            values = [self._as_pred(self.compile_expr(v), node) for v in node.values]
            combine = self.b.logical_and if isinstance(node.op, ast.And) else self.b.logical_or
            result = values[0]
            for v in values[1:]:
                result = combine(result, v)
            return result

        if isinstance(node, ast.IfExp):
            pred = self._as_pred(self.compile_expr(node.test), node)
            a = self._as_scalar(self.compile_expr(node.body), node)
            b_ = self._as_scalar(self.compile_expr(node.orelse), node)
            return self.b.select(pred, a, b_)

        if isinstance(node, ast.Subscript):
            arr, index = self._subscript_parts(node)
            return self.b.load_elem(arr.base, index, arr.dtype, arr.space)

        if isinstance(node, ast.Call):
            return self.compile_call(node, as_statement=False)

        raise self.fail(node, f"unsupported expression {type(node).__name__}")

    def _subscript_parts(self, node: ast.Subscript) -> tuple[_ArrayVal, Operand]:
        target = self.compile_expr(node.value)
        if not isinstance(target, _ArrayVal):
            raise self.fail(node, "subscript base must be an array")
        index = self._as_scalar(self.compile_expr(node.slice), node)
        return target, index

    def _store_subscript(self, target: ast.Subscript, value_node: ast.expr) -> None:
        arr, index = self._subscript_parts(target)
        value = self._as_scalar(self.compile_expr(value_node), target)
        self.b.store_elem(arr.base, index, value, arr.dtype, arr.space)

    # -- intrinsic calls ---------------------------------------------------------

    def _const_dim(self, node: ast.Call) -> int:
        if not node.args:
            return 0
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, int) and 0 <= arg.value <= 2:
            return arg.value
        raise self.fail(node, "dimension argument must be a literal 0, 1, or 2")

    def compile_call(self, node: ast.Call, as_statement: bool):
        if not isinstance(node.func, ast.Name):
            raise self.fail(node, "only direct intrinsic calls are supported")
        if node.keywords:
            raise self.fail(node, "intrinsics take positional arguments only")
        fname = node.func.id
        b = self.b

        if fname == "gid":
            return b.global_id(self._const_dim(node))
        if fname == "gsize":
            return b.global_size(self._const_dim(node))
        if fname in ("lid", "bid", "bdim", "gdim"):
            special = {"lid": "tid", "bid": "ctaid", "bdim": "ntid", "gdim": "nctaid"}
            axis = _SPECIAL_DIMS[self._const_dim(node)]
            return b.cvt(b.special(f"{special[fname]}.{axis}"), dtypes.I64)
        if fname == "lane":
            return b.cvt(b.special("laneid"), dtypes.I64)
        if fname == "warpsize":
            return b.cvt(b.special("warpsize"), dtypes.I64)
        if fname == "barrier":
            if not as_statement:
                raise self.fail(node, "barrier() is a statement")
            b.barrier()
            return None
        if fname == "shared":
            if len(node.args) != 2:
                raise self.fail(node, "shared(T, count) takes a type and a size")
            tref = self.compile_type_arg(node.args[0], node)
            count_node = node.args[1]
            if not (isinstance(count_node, ast.Constant) and isinstance(count_node.value, int)):
                count = self._resolve_const_int(count_node, node)
            else:
                count = count_node.value
            base = b.shared_alloc(tref.dtype, count)
            return _ArrayVal(base, tref.dtype, MemSpace.SHARED)
        if fname in ("atomic_add", "atomic_min", "atomic_max", "atomic_exch"):
            if len(node.args) != 3:
                raise self.fail(node, f"{fname}(array, index, value)")
            arr = self.compile_expr(node.args[0])
            if not isinstance(arr, _ArrayVal):
                raise self.fail(node, "first atomic argument must be an array")
            index = self._as_scalar(self.compile_expr(node.args[1]), node)
            value = self._as_scalar(self.compile_expr(node.args[2]), node)
            addr = b.elem_addr(arr.base, index, arr.dtype)
            return b.atomic(
                fname.removeprefix("atomic_"), addr, value, space=arr.space,
                dtype=arr.dtype, want_old=not as_statement,
            )
        if fname == "atomic_cas":
            if len(node.args) != 4:
                raise self.fail(node, "atomic_cas(array, index, expected, desired)")
            arr = self.compile_expr(node.args[0])
            if not isinstance(arr, _ArrayVal):
                raise self.fail(node, "first atomic argument must be an array")
            index = self._as_scalar(self.compile_expr(node.args[1]), node)
            expected = self._as_scalar(self.compile_expr(node.args[2]), node)
            desired = self._as_scalar(self.compile_expr(node.args[3]), node)
            addr = b.elem_addr(arr.base, index, arr.dtype)
            return b.atomic(
                "cas", addr, desired, space=arr.space, dtype=arr.dtype,
                compare=expected, want_old=True,
            )
        if fname in ("shfl_idx", "shfl_up", "shfl_down", "shfl_xor"):
            if len(node.args) != 2:
                raise self.fail(node, f"{fname}(value, lane)")
            value = self._as_scalar(self.compile_expr(node.args[0]), node)
            lane = self._as_scalar(self.compile_expr(node.args[1]), node)
            return b.shuffle(fname.removeprefix("shfl_"), value, lane)
        if fname in _MATH_UNARY:
            if len(node.args) != 1:
                raise self.fail(node, f"{fname}() takes one argument")
            v = self._as_scalar(self.compile_expr(node.args[0]), node)
            if fname != "abs" and not _operand_dtype(v).is_float:
                v = b.cvt(v, dtypes.F64)
            return b.unary(_MATH_UNARY[fname], v)
        if fname in ("min", "max"):
            if len(node.args) != 2:
                raise self.fail(node, f"{fname}() takes two arguments")
            a = self._as_scalar(self.compile_expr(node.args[0]), node)
            b_ = self._as_scalar(self.compile_expr(node.args[1]), node)
            return b.binop(fname, a, b_)
        if fname in _TYPE_REFS:
            if len(node.args) != 1:
                raise self.fail(node, f"{fname}(x) takes one argument")
            v = self._as_scalar(self.compile_expr(node.args[0]), node)
            return b.cvt(v, _TYPE_REFS[fname].dtype)
        raise self.fail(node, f"unknown intrinsic '{fname}'")

    def compile_type_arg(self, node: ast.expr, ctx: ast.AST) -> TypeRef:
        if isinstance(node, ast.Name):
            if node.id in _TYPE_REFS:
                return _TYPE_REFS[node.id]
            try:
                value = self.resolve_global(node.id)
            except KeyError:
                value = None
            if isinstance(value, TypeRef):
                return value
        raise self.fail(ctx, "expected a DSL scalar type (f32, f64, i32, ...)")

    def _resolve_const_int(self, node: ast.expr, ctx: ast.AST) -> int:
        """Shared-memory sizes must be compile-time integers."""
        if isinstance(node, ast.Name):
            try:
                value = self.resolve_global(node.id)
            except KeyError:
                raise self.fail(ctx, f"unknown constant '{node.id}'") from None
            if isinstance(value, int):
                return value
        raise self.fail(ctx, "shared() size must be a compile-time integer")


def _operand_dtype(op: Operand) -> DType:
    return op.dtype


def _same_type(a: object, b: object) -> bool:
    """Structural equality of annotation objects (TypeRef/ArrayAnn)."""
    if isinstance(a, ArrayAnn) and isinstance(b, ArrayAnn):
        return a.dtype is b.dtype
    if isinstance(a, TypeRef) and isinstance(b, TypeRef):
        return a.dtype is b.dtype
    return False


def _type_name(ann: object) -> str:
    """Render a TypeRef/ArrayAnn the way a signature spells it."""
    if isinstance(ann, ArrayAnn):
        return f"{ann.dtype.name}[:]"
    if isinstance(ann, TypeRef):
        return ann.dtype.name
    return repr(ann)
