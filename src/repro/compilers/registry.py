"""Toolchain registry: every simulated compiler by name.

The route registry (:mod:`repro.core.routes`) and the model runtimes
refer to toolchains through :func:`get_toolchain`, so the whole
ecosystem shares one instance per product.
"""

from __future__ import annotations

from functools import lru_cache

from repro.compilers.toolchain import Toolchain
from repro.enums import ISA, Language, Model

_FACTORIES = {}


def _register(factory) -> None:
    _FACTORIES[factory().name] = factory


def _populate() -> None:
    if _FACTORIES:
        return
    from repro.compilers import amd, community, cray, intel, nvidia
    from repro.compilers import opencl_drivers

    for factory in (
        opencl_drivers.make_nvidia_opencl,
        opencl_drivers.make_amd_opencl,
        opencl_drivers.make_intel_opencl,
        nvidia.make_nvcc,
        nvidia.make_nvhpc,
        amd.make_hipcc,
        amd.make_aomp,
        amd.make_hipfort,
        amd.make_rocstdpar,
        intel.make_dpcpp,
        intel.make_ifx,
        intel.make_onedpl,
        community.make_gcc,
        community.make_clang,
        community.make_flang,
        community.make_flang_cuda,
        community.make_clacc,
        community.make_flacc,
        community.make_opensycl,
        community.make_opensycl_stdpar,
        community.make_chipstar,
        community.make_computecpp,
        community.make_zluda,
        cray.make_cray,
    ):
        _register(factory)


@lru_cache(maxsize=None)
def get_toolchain(name: str) -> Toolchain:
    """One shared instance of the named toolchain."""
    _populate()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown toolchain '{name}'; known: {sorted(_FACTORIES)}"
        ) from None
    return factory()


def all_toolchains() -> list[Toolchain]:
    """Every registered toolchain (shared instances)."""
    _populate()
    return [get_toolchain(name) for name in sorted(_FACTORIES)]


def toolchains_for(model: Model, language: Language, target: ISA) -> list[Toolchain]:
    """Toolchains that can compile (model, language) to ``target``."""
    return [
        tc
        for tc in all_toolchains()
        if target in tc.targets_for(model, language)
    ]
