"""Vendor OpenCL driver stacks (extension; §5's second notable exclusion).

"OpenCL is a further important GPU programming model, but it has never
gained much traction in the HPC-GPU space, mostly due to the lukewarm
support by NVIDIA" (§5).  The three driver stacks below encode the
well-known state of that support:

* NVIDIA's driver exposed OpenCL 1.2 for the better part of a decade
  (3.0 arrived late and with the 2.x features optional — no SVM, no
  sub-groups in practice);
* AMD's ROCm OpenCL implements 2.0 (SVM) but not the 2.1 sub-group
  extensions HPC codes would want;
* Intel's runtime (the sibling of Level Zero) is the most complete.
"""

from __future__ import annotations

from repro.compilers import features as F
from repro.compilers.toolchain import Capability, Toolchain
from repro.enums import ISA, Language, Model, Provider


def make_nvidia_opencl() -> Toolchain:
    return Toolchain(
        name="nvidia-opencl",
        provider=Provider.NVIDIA,
        version="OpenCL 1.2 (driver)",
        description="NVIDIA's OpenCL driver: 1.2-era feature set",
        capabilities=[
            Capability(Model.OPENCL, Language.CPP, frozenset({ISA.PTX}),
                       F.OPENCL_12),
        ],
    )


def make_amd_opencl() -> Toolchain:
    return Toolchain(
        name="amd-opencl",
        provider=Provider.AMD,
        version="ROCm OpenCL 2.0",
        description="AMD's ROCm OpenCL runtime: 2.0 with SVM",
        capabilities=[
            Capability(Model.OPENCL, Language.CPP, frozenset({ISA.AMDGCN}),
                       F.OPENCL_20),
        ],
    )


def make_intel_opencl() -> Toolchain:
    return Toolchain(
        name="intel-opencl",
        provider=Provider.INTEL,
        version="Intel Compute Runtime 3.0",
        description="Intel's OpenCL runtime (compute-runtime/NEO): complete",
        capabilities=[
            Capability(Model.OPENCL, Language.CPP, frozenset({ISA.SPIRV}),
                       F.OPENCL_21),
        ],
    )
