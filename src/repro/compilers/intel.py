"""Intel toolchains: DPC++ (icpx), ifx, and oneDPL.

Capability sets follow §4: DPC++ is Intel's LLVM-based SYCL compiler
and the prime programming model for Intel GPUs (description 35), with
plugins targeting NVIDIA and AMD GPUs (descriptions 5/21); OpenMP
offload is the second key model, supporting "all OpenMP 4.5 and most
OpenMP 5.0 and 5.1 features" in C++ (description 38) and Fortran via
ifx (description 39); ifx also offloads ``do concurrent`` (description
41); oneDPL implements the pSTL on top of DPC++ — in the
``oneapi::dpl::`` namespace, not ``std::`` (descriptions 11/26/40).
"""

from __future__ import annotations

from repro.compilers import features as F
from repro.compilers.toolchain import Capability, Toolchain
from repro.enums import ISA, Language, Model, Provider

_SPIRV = frozenset({ISA.SPIRV})
_ALL = frozenset({ISA.SPIRV, ISA.PTX, ISA.AMDGCN})

#: "All OpenMP 4.5 and most OpenMP 5.0 and 5.1": everything probed short
#: of interop (not exercised by the probe suite) and 5.2 additions.
_INTEL_OPENMP = F.OPENMP_51 - {"omp:interop"}


def make_dpcpp() -> Toolchain:
    """Intel oneAPI DPC++/C++ (icpx) and the open-source intel/llvm."""
    return Toolchain(
        name="dpcpp",
        provider=Provider.INTEL,
        version="2023.2",
        description=(
            "LLVM-based SYCL 2020 compiler; SPIR-V for Intel GPUs plus "
            "CUDA/ROCm plugins for NVIDIA and AMD GPUs; icpx also "
            "provides OpenMP offload (-qopenmp -fopenmp-targets=spir64)"
        ),
        capabilities=[
            Capability(Model.SYCL, Language.CPP, _ALL, F.SYCL_CORE,
                       since="2019 (LLVM fork)", flag="-fsycl"),
            Capability(Model.OPENMP, Language.CPP, _SPIRV, _INTEL_OPENMP,
                       flag="-qopenmp -fopenmp-targets=spir64"),
        ],
    )


def make_ifx() -> Toolchain:
    """Intel Fortran Compiler ifx (the LLVM-based one, not Classic)."""
    return Toolchain(
        name="ifx",
        provider=Provider.INTEL,
        version="2023.2",
        description=(
            "LLVM-based Intel Fortran compiler of the oneAPI HPC Toolkit; "
            "OpenMP offload and do-concurrent offload to Intel GPUs"
        ),
        capabilities=[
            Capability(Model.OPENMP, Language.FORTRAN, _SPIRV, _INTEL_OPENMP,
                       flag="-qopenmp -fopenmp-targets=spir64"),
            Capability(Model.STANDARD, Language.FORTRAN, _SPIRV,
                       F.STDPAR_FORTRAN,
                       since="oneAPI 2022.1",
                       flag="-qopenmp -fopenmp-target-do-concurrent"),
        ],
    )


def make_onedpl() -> Toolchain:
    """oneDPL: the oneAPI DPC++ Library implementing the pSTL.

    Algorithms, policies, and data structures live in ``oneapi::dpl::``
    rather than ``std::`` — the conformance gap (§5's "all pSTL
    functionality currently resides in a custom namespace") is modeled
    by omitting the ``stdpar:std_namespace`` feature.  Through DPC++'s
    plugins oneDPL also reaches NVIDIA and (experimentally) AMD GPUs.
    """
    return Toolchain(
        name="onedpl",
        provider=Provider.INTEL,
        version="2022.2",
        description="pSTL algorithms over DPC++ in the oneapi::dpl namespace",
        capabilities=[
            Capability(Model.STANDARD, Language.CPP, _ALL, F.STDPAR_CPP),
        ],
    )
