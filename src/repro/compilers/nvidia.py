"""NVIDIA toolchains: the CUDA Toolkit's ``nvcc`` and the HPC SDK.

Capability sets follow §4: nvcc covers "nearly all aspects of the
NVIDIA platform" (description 1); NVHPC provides CUDA Fortran
(description 2), comprehensive OpenACC for C++ and Fortran
(descriptions 7/8), OpenMP offload limited to "only a subset of the
entire OpenMP 5.0 standard" (descriptions 9/10), and standard-language
parallelism for both C++ (``-stdpar=gpu``, description 11) and Fortran
``do concurrent`` (description 12).
"""

from __future__ import annotations

from repro.compilers import features as F
from repro.compilers.toolchain import Capability, Toolchain
from repro.enums import ISA, Language, Model, Provider

_PTX = frozenset({ISA.PTX})

#: NVHPC's OpenMP frontend: full 4.5, selected 5.0 features.
_NVHPC_OPENMP = F.OPENMP_45 | {"omp:loop", "omp:declare_variant"}


def make_nvcc() -> Toolchain:
    """``nvcc`` from the CUDA Toolkit (12.2 at submission time)."""
    return Toolchain(
        name="nvcc",
        provider=Provider.NVIDIA,
        version="12.2",
        description=(
            "CUDA Toolkit compiler driver; lowers CUDA C++ through PTX to "
            "SASS (simulated here as the PTX virtual ISA)"
        ),
        capabilities=[
            Capability(
                model=Model.CUDA,
                language=Language.CPP,
                targets=_PTX,
                features=F.CUDA_FULL,
                since="CUDA 1.0 (2007)",
            ),
        ],
    )


def make_nvhpc() -> Toolchain:
    """The NVIDIA HPC SDK (nvc, nvc++, nvfortran)."""
    return Toolchain(
        name="nvhpc",
        provider=Provider.NVIDIA,
        version="23.7",
        description=(
            "NVIDIA HPC SDK: nvc/nvc++/nvfortran with CUDA Fortran, "
            "OpenACC, OpenMP offload, and -stdpar GPU parallelism"
        ),
        capabilities=[
            # CUDA C++ support in nvc++ mirrors nvcc for our purposes.
            Capability(Model.CUDA, Language.CPP, _PTX, F.CUDA_FULL,
                       since="NVHPC 20.7", flag="-cuda"),
            Capability(Model.CUDA, Language.FORTRAN, _PTX,
                       F.CUDA_FORTRAN_CORE | {"cuda:events"},
                       since="PGI 10.0", flag="-cuda"),
            Capability(Model.OPENACC, Language.CPP, _PTX,
                       F.OPENACC_30 - {"acc:attach"},
                       since="PGI 12.6", flag="-acc -gpu"),
            Capability(Model.OPENACC, Language.FORTRAN, _PTX,
                       F.OPENACC_30 - {"acc:attach"},
                       since="PGI 12.6", flag="-acc -gpu"),
            Capability(Model.OPENMP, Language.CPP, _PTX, _NVHPC_OPENMP,
                       since="NVHPC 20.11", flag="-mp=gpu"),
            Capability(Model.OPENMP, Language.FORTRAN, _PTX, _NVHPC_OPENMP,
                       since="NVHPC 20.11", flag="-mp=gpu"),
            Capability(Model.STANDARD, Language.CPP, _PTX, F.STDPAR_CPP_FULL,
                       since="NVHPC 20.7", flag="-stdpar=gpu"),
            Capability(Model.STANDARD, Language.FORTRAN, _PTX, F.STDPAR_FORTRAN,
                       since="NVHPC 20.11", flag="-stdpar=gpu"),
        ],
    )
