"""Simulated compiler toolchains.

Every toolchain named in the paper's §4 descriptions exists here as a
:class:`~repro.compilers.toolchain.Toolchain` with the capability set
the paper reports: which (programming model, language) pairs it accepts,
which ISAs it can emit, and which *features* of each model it
implements (e.g. NVHPC's OpenMP frontend covers "only a subset of the
entire OpenMP 5.0 standard" — so its feature set excludes the 5.0
additions, and probes exercising them genuinely fail to compile).

* :mod:`repro.compilers.features` — the feature/version catalog.
* :mod:`repro.compilers.passes` — mid-level IR optimizations.
* :mod:`repro.compilers.toolchain` — base class + compile pipeline.
* :mod:`repro.compilers.nvidia` / ``amd`` / ``intel`` / ``community`` /
  ``cray`` — the concrete toolchains.
* :mod:`repro.compilers.registry` — lookup by name; the route registry
  in :mod:`repro.core.routes` refers to toolchains through it.
"""

from repro.compilers.toolchain import CompileResult, Toolchain  # noqa: F401
from repro.compilers.registry import all_toolchains, get_toolchain  # noqa: F401
