"""Community toolchains: GCC, LLVM (Clang/Flang/Clacc/Flacc), Open SYCL,
chipStar, ComputeCpp, and ZLUDA.

Capability sets follow §4:

* GCC supports OpenACC 2.6 and full OpenMP 4.5 (5.x "currently being
  implemented") for both C++ and Fortran, targeting nvptx and amdgcn
  (descriptions 7/8/9/10/22/23).
* Clang compiles CUDA C++ directly (description 1) and OpenMP 4.5 plus
  selected 5.0/5.1 features (description 9); Flang provides OpenMP
  Fortran; Clacc adds OpenACC C++ by translating to OpenMP
  (descriptions 7/22); Flacc is the in-progress OpenACC Fortran path
  (descriptions 8/23).
* Open SYCL (hipSYCL) implements SYCL on CUDA, ROCm, and Level
  Zero/SPIR-V backends (descriptions 5/21/35), with an experimental
  ``--hipsycl-stdpar`` mode (descriptions 11/26/40).
* chipStar (CHIP-SPV) brings CUDA and HIP to Intel GPUs over
  OpenCL/Level Zero; §5 calls it a research project (descriptions
  31/33).
* ComputeCpp (CodePlay) became unsupported in September 2023;
  ZLUDA is not maintained anymore (descriptions 5/31/35).
"""

from __future__ import annotations

from repro.compilers import features as F
from repro.compilers.toolchain import Capability, Toolchain
from repro.enums import ISA, Language, Maturity, Model, Provider

_PTX = frozenset({ISA.PTX})
_SPIRV = frozenset({ISA.SPIRV})
_GCC_TARGETS = frozenset({ISA.PTX, ISA.AMDGCN})
_ALL = frozenset({ISA.PTX, ISA.AMDGCN, ISA.SPIRV})

_GCC_OPENMP = F.OPENMP_45 | {"omp:loop"}
_CLANG_OPENMP = F.OPENMP_45 | {"omp:loop", "omp:metadirective"}
_FLANG_OPENMP = F.OPENMP_45


def make_gcc() -> Toolchain:
    """GCC with nvptx/amdgcn offloading (g++/gfortran)."""
    return Toolchain(
        name="gcc",
        provider=Provider.COMMUNITY,
        version="13.2",
        description=(
            "GNU compilers with OpenACC 2.6 (-fopenacc, since GCC 5.0) "
            "and OpenMP offloading (-fopenmp -foffload=...)"
        ),
        capabilities=[
            Capability(Model.OPENACC, Language.CPP, _GCC_TARGETS, F.OPENACC_26,
                       since="GCC 5.0", flag="-fopenacc"),
            Capability(Model.OPENACC, Language.FORTRAN, _GCC_TARGETS, F.OPENACC_26,
                       since="GCC 5.0", flag="-fopenacc"),
            Capability(Model.OPENMP, Language.CPP, _GCC_TARGETS, _GCC_OPENMP,
                       flag="-fopenmp -foffload=..."),
            Capability(Model.OPENMP, Language.FORTRAN, _GCC_TARGETS, _GCC_OPENMP,
                       flag="-fopenmp -foffload=..."),
        ],
    )


def make_clang() -> Toolchain:
    """Clang: direct CUDA C++ support and OpenMP offloading."""
    return Toolchain(
        name="clang",
        provider=Provider.COMMUNITY,
        version="17.0",
        description=(
            "LLVM C/C++ compiler: CUDA support emitting PTX, and OpenMP "
            "4.5 plus selected 5.0/5.1 offloading for NVIDIA and AMD"
        ),
        capabilities=[
            Capability(Model.CUDA, Language.CPP, _PTX,
                       F.CUDA_CORE - {"cuda:libraries"},
                       since="LLVM 3.9 (gpucc)"),
            Capability(Model.OPENMP, Language.CPP, _GCC_TARGETS, _CLANG_OPENMP,
                       flag="-fopenmp -fopenmp-targets=..."),
        ],
    )


def make_flang() -> Toolchain:
    """Flang (the LLVM Fortran frontend, successor of F18)."""
    return Toolchain(
        name="flang",
        provider=Provider.COMMUNITY,
        version="17.0",
        description="LLVM Fortran compiler with OpenMP offloading (-mp)",
        capabilities=[
            Capability(Model.OPENMP, Language.FORTRAN, _GCC_TARGETS,
                       _FLANG_OPENMP, flag="-mp"),
        ],
    )


def make_flang_cuda() -> Toolchain:
    """CUDA Fortran in Flang — "very recently merged" (description 2).

    Young upstream support: the core explicit-kernel path works, the
    auto-parallelizing ``!$cuf kernel do`` and the async machinery are
    still NVHPC-only.  Modeled as a separate experimental toolchain so
    its route classifies as *limited* without affecting mainline Flang.
    """
    return Toolchain(
        name="flang-cuda",
        provider=Provider.COMMUNITY,
        version="llvm-main",
        maturity=Maturity.EXPERIMENTAL,
        description="freshly-upstreamed CUDA Fortran support in LLVM Flang",
        capabilities=[
            Capability(Model.CUDA, Language.FORTRAN, _PTX,
                       frozenset({"cuf:kernels", "cuda:memcpy"})),
        ],
    )


def make_clacc() -> Toolchain:
    """Clacc: OpenACC C/C++ in Clang by translation to OpenMP."""
    return Toolchain(
        name="clacc",
        provider=Provider.COMMUNITY,
        version="llvm-17-clacc",
        description=(
            "Clang frontend adaptation translating OpenACC to OpenMP "
            "during compilation (Denny et al.)"
        ),
        capabilities=[
            Capability(Model.OPENACC, Language.CPP, _GCC_TARGETS,
                       F.OPENACC_30 - {"acc:attach"}, flag="-fopenacc"),
        ],
    )


def make_flacc() -> Toolchain:
    """Flacc: OpenACC Fortran support growing in LLVM (in progress)."""
    return Toolchain(
        name="flacc",
        provider=Provider.COMMUNITY,
        version="in-progress",
        maturity=Maturity.EXPERIMENTAL,
        description="OpenACC support for Flang, initially the Flacc project",
        capabilities=[
            Capability(Model.OPENACC, Language.FORTRAN, _GCC_TARGETS,
                       F.OPENACC_26, flag="-fopenacc"),
        ],
    )


def make_opensycl() -> Toolchain:
    """Open SYCL (previously hipSYCL), the independent SYCL implementation."""
    return Toolchain(
        name="opensycl",
        provider=Provider.COMMUNITY,
        version="0.9.4",
        description=(
            "Independent SYCL implementation over CUDA/LLVM, HIP/ROCm, "
            "and Level Zero backends (Alpay et al.)"
        ),
        capabilities=[
            Capability(Model.SYCL, Language.CPP, _ALL, F.SYCL_CORE),
        ],
    )


def make_opensycl_stdpar() -> Toolchain:
    """Open SYCL's in-progress pSTL offload (``--hipsycl-stdpar``)."""
    return Toolchain(
        name="opensycl-stdpar",
        provider=Provider.COMMUNITY,
        version="0.9.4-dev",
        maturity=Maturity.EXPERIMENTAL,
        description="C++ parallel algorithms over Open SYCL backends",
        capabilities=[
            Capability(Model.STANDARD, Language.CPP, _ALL,
                       F.STDPAR_CPP_FULL, flag="--hipsycl-stdpar"),
        ],
    )


def make_chipstar() -> Toolchain:
    """chipStar (previously CHIP-SPV): CUDA and HIP on Intel GPUs.

    §5 classifies chipStar as a research project; its maturity therefore
    caps both capabilities at *limited support* in the ratings.
    """
    return Toolchain(
        name="chipstar",
        provider=Provider.COMMUNITY,
        version="1.0",
        maturity=Maturity.RESEARCH,
        description=(
            "LLVM-based toolchain mapping CUDA/HIP to OpenCL or Level "
            "Zero via SPIR-V (cuspv replaces nvcc calls)"
        ),
        capabilities=[
            Capability(Model.CUDA, Language.CPP, _SPIRV,
                       F.CUDA_CORE - {"cuda:libraries"}),
            Capability(Model.HIP, Language.CPP, _SPIRV, F.HIP_CORE),
        ],
    )


def make_computecpp() -> Toolchain:
    """ComputeCpp (CodePlay) — unsupported since September 2023."""
    return Toolchain(
        name="computecpp",
        provider=Provider.COMMUNITY,
        version="2.11 (final)",
        maturity=Maturity.UNMAINTAINED,
        description="CodePlay's SYCL implementation, retired in favor of DPC++",
        capabilities=[
            Capability(Model.SYCL, Language.CPP, frozenset({ISA.PTX, ISA.SPIRV}),
                       F.SYCL_CORE - {"sycl:usm"}),
        ],
    )


def make_zluda() -> Toolchain:
    """ZLUDA: CUDA on Intel GPUs — not maintained anymore."""
    return Toolchain(
        name="zluda",
        provider=Provider.COMMUNITY,
        version="archived",
        maturity=Maturity.UNMAINTAINED,
        description="drop-in CUDA implementation for Intel GPUs (abandoned)",
        capabilities=[
            Capability(Model.CUDA, Language.CPP, _SPIRV,
                       frozenset({"cuda:kernels", "cuda:memcpy"})),
        ],
    )
