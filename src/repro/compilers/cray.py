"""HPE Cray Programming Environment (CCE).

§4 references: OpenMP offload subsets of 5.0/5.1 for both NVIDIA and
AMD GPUs in C++ and Fortran (descriptions 9/10/24/25), and OpenACC
Fortran through ``ftn -hacc`` (descriptions 8/23).  HPE is not a GPU
vendor, so CCE routes contribute at most *non-vendor good support*.
"""

from __future__ import annotations

from repro.compilers import features as F
from repro.compilers.toolchain import Capability, Toolchain
from repro.enums import ISA, Language, Model, Provider

_TARGETS = frozenset({ISA.PTX, ISA.AMDGCN})

_CRAY_OPENMP = F.OPENMP_45 | {"omp:loop", "omp:declare_variant"}


def make_cray() -> Toolchain:
    """The Cray Compiling Environment within HPE CPE."""
    return Toolchain(
        name="cray-ce",
        provider=Provider.HPE,
        version="16.0",
        description=(
            "HPE Cray Programming Environment compilers: OpenMP offload "
            "(-fopenmp) for NVIDIA/AMD GPUs and OpenACC Fortran (ftn -hacc)"
        ),
        capabilities=[
            Capability(Model.OPENMP, Language.CPP, _TARGETS, _CRAY_OPENMP,
                       flag="-fopenmp"),
            Capability(Model.OPENMP, Language.FORTRAN, _TARGETS, _CRAY_OPENMP,
                       flag="-fopenmp"),
            Capability(Model.OPENACC, Language.FORTRAN, _TARGETS,
                       F.OPENACC_30 - {"acc:attach"}, flag="ftn -hacc"),
        ],
    )
