"""Toolchain base class and compile pipeline.

A :class:`Toolchain` models one compiler product from §4 (nvcc, NVHPC,
hipcc, AOMP, DPC++, ifx, GCC, Clang/Flang, Cray CE, Open SYCL,
chipStar): a set of *capabilities* — which (model, language) pairs it
accepts, which ISAs it emits for each, and which model features it
implements — plus the shared compile pipeline (feature check →
optimization passes → ISA legalization).

A compile attempt can fail in exactly the ways real ones do:

* :class:`~repro.errors.UnsupportedRouteError` — the toolchain does not
  speak that model/language at all (``ifx`` given HIP);
* :class:`~repro.errors.UnsupportedTargetError` — it speaks the model
  but cannot emit the ISA (``nvcc`` asked for AMDGCN);
* :class:`~repro.errors.UnsupportedFeatureError` — the specific feature
  is not implemented (NVHPC's OpenMP given a 5.0 metadirective).

The compatibility probes rely on this error taxonomy to distinguish
"no route" from "partial coverage".
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field

from repro.enums import ISA, Language, Maturity, Model, Provider
from repro.errors import (
    UnsupportedFeatureError,
    UnsupportedRouteError,
    UnsupportedTargetError,
)
from repro.compilers.features import HW_FEATURES
from repro.compilers.passes import optimize_module
from repro.frontends.source import TranslationUnit
from repro.isa.module import ModuleIR, TargetModule
from repro.isa.targets import legalize

#: One capability row: a (model, language) pair this toolchain compiles.
@dataclass(frozen=True)
class Capability:
    """What a toolchain implements for one (model, language) pair."""

    model: Model
    language: Language
    targets: frozenset[ISA]
    features: frozenset[str]
    since: str = ""  # human note, e.g. "GCC 5.0", "oneAPI 2022.1"
    flag: str = ""  # the enabling compiler option from the paper


@dataclass
class CompileResult:
    """Outcome of a successful compilation.

    ``diagnostics`` holds kernelsan findings when the compile was run
    with ``sanitize=True`` (a ``LintReport``); ``None`` means the
    sanitizer stage was not requested — not that the module is clean.
    """

    binary: TargetModule
    toolchain: str
    target: ISA
    options: tuple[str, ...]
    pass_report: dict[str, int] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)
    diagnostics: object | None = None

    def disassemble(self) -> str:
        from repro.isa.assembly import disassemble

        return disassemble(self.binary)


#: Guards every compile-cache counter (per-instance and process-wide).
#: The service scheduler mutates these from N worker threads; one lock
#: for all of them keeps the hit/miss pair consistent in snapshots.
_STATS_LOCK = threading.Lock()


@dataclass
class CompileCacheStats:
    """Hit/miss counters for the content-keyed compile cache.

    Mutations must go through :meth:`record_hit` / :meth:`record_miss`
    (they take the module-wide stats lock); direct attribute writes are
    reserved for single-threaded test setup.
    """

    hits: int = 0
    misses: int = 0

    def record_hit(self) -> None:
        with _STATS_LOCK:
            self.hits += 1

    def record_miss(self) -> None:
        with _STATS_LOCK:
            self.misses += 1

    def snapshot(self) -> "CompileCacheStats":
        """Consistent point-in-time copy (safe under concurrent compiles)."""
        with _STATS_LOCK:
            return CompileCacheStats(hits=self.hits, misses=self.misses)

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        t = self.hits + self.misses
        return self.hits / t if t else 0.0


#: Process-wide aggregate across all toolchain instances; feeds the CLI
#: ``--stats`` line and the matrix-rebuild acceptance check.
_GLOBAL_CACHE_STATS = CompileCacheStats()

#: Live toolchain instances, so :func:`clear_compile_cache` can reach
#: every per-instance cache (the registry memoizes instances anyway).
_ALL_TOOLCHAINS: "weakref.WeakSet[Toolchain]" = weakref.WeakSet()


def compile_cache_stats() -> CompileCacheStats:
    """Process-wide compile-cache counters (all toolchains)."""
    return _GLOBAL_CACHE_STATS


def clear_compile_cache() -> None:
    """Drop every cached compile result and zero the global counters."""
    with _STATS_LOCK:
        for tc in _ALL_TOOLCHAINS:
            tc._compile_cache.clear()
            tc.cache_stats = CompileCacheStats()
        _GLOBAL_CACHE_STATS.hits = 0
        _GLOBAL_CACHE_STATS.misses = 0


class Toolchain:
    """One simulated compiler product."""

    def __init__(
        self,
        name: str,
        provider: Provider,
        version: str,
        capabilities: list[Capability],
        maturity: Maturity = Maturity.PRODUCTION,
        description: str = "",
        opt_level: int = 2,
    ):
        self.name = name
        self.provider = provider
        self.version = version
        self.maturity = maturity
        self.description = description
        self.opt_level = opt_level
        self._caps: dict[tuple[Model, Language], Capability] = {
            (c.model, c.language): c for c in capabilities
        }
        self._compile_cache: dict[tuple, CompileResult] = {}
        #: Per-key single-flight locks: N concurrent compiles of the
        #: same unit do one build while the rest wait for the cache.
        self._inflight: dict[tuple, threading.Lock] = {}
        self._inflight_guard = threading.Lock()
        self.cache_stats = CompileCacheStats()
        _ALL_TOOLCHAINS.add(self)

    # -- capability queries ---------------------------------------------------

    @property
    def capabilities(self) -> list[Capability]:
        return list(self._caps.values())

    def capability(self, model: Model, language: Language) -> Capability | None:
        return self._caps.get((model, language))

    def accepts(self, model: Model, language: Language) -> bool:
        return (model, language) in self._caps

    def targets_for(self, model: Model, language: Language) -> frozenset[ISA]:
        cap = self._caps.get((model, language))
        return cap.targets if cap else frozenset()

    def supports_feature(self, model: Model, language: Language, tag: str) -> bool:
        cap = self._caps.get((model, language))
        if cap is None:
            return False
        return tag in HW_FEATURES or tag in cap.features

    # -- the compile pipeline ---------------------------------------------------

    def compile(
        self,
        tu: TranslationUnit,
        target: ISA,
        options: tuple[str, ...] = (),
        sanitize: bool = False,
        sanitize_options=None,
    ) -> CompileResult:
        """Compile a translation unit to a device binary for ``target``.

        With ``sanitize=True`` the kernelsan static analyses run over
        the *optimized* module (the form that actually ships) and the
        resulting ``LintReport`` is attached to the result; findings
        never abort the compile — policy belongs to the caller.
        ``sanitize_options`` takes a
        :class:`repro.analysis.AnalysisOptions` to pin launch bounds or
        buffer extents.

        Units produced by a source-to-source translator carry a
        :class:`~repro.translate.base.TranslationOrigin`; in sanitize
        mode these are additionally checked by the translation validator
        (:func:`repro.analysis.transval.validate_translation`) and any
        ``TV``-code findings land in the same ``LintReport``.

        Successful compiles are memoized in a content-keyed cache: the
        key covers the unit's content fingerprint (model, language,
        features, kernel IR — but not the unit name), the target ISA,
        the options, the opt level, the sanitize configuration, and the
        unit's translation origin (translator name + source
        fingerprint), so a translated unit never shares a cache slot
        with a content-identical unit written directly in the target
        model — their diagnostics differ.  A hit returns the previously
        built :class:`CompileResult` (its binary may therefore carry a
        different unit name — launches go by kernel name, never unit
        name).  The capability gates run on every call, so the error
        taxonomy is unaffected by caching.

        The cache is safe under concurrent callers: misses on the same
        key are single-flighted (one thread builds, the rest wait and
        then hit), and all counters are lock-protected.
        """
        cap = self._caps.get((tu.model, tu.language))
        if cap is None:
            raise UnsupportedRouteError(
                f"{self.name} {self.version} does not compile "
                f"{tu.model.value} {tu.language.value}"
            )
        if target not in cap.targets:
            raise UnsupportedTargetError(
                f"{self.name} cannot emit {target.value} for "
                f"{tu.model.value} {tu.language.value} "
                f"(targets: {sorted(t.value for t in cap.targets)})"
            )
        for tag in sorted(tu.all_features()):
            if tag not in HW_FEATURES and tag not in cap.features:
                raise UnsupportedFeatureError(tag, toolchain=self.name)

        origin_token = (
            tu.origin.cache_token() if tu.origin is not None else None
        )
        key = (tu.fingerprint(), origin_token, target, tuple(options),
               self.opt_level, sanitize, repr(sanitize_options))
        cached = self._compile_cache.get(key)
        if cached is not None:
            self.cache_stats.record_hit()
            _GLOBAL_CACHE_STATS.record_hit()
            return cached
        # Single-flight: serialize concurrent misses on the *same* key so
        # N workers compiling one TU do one compile; waiters re-check the
        # cache under the key lock and count as hits.  Distinct keys keep
        # compiling concurrently.
        with self._inflight_guard:
            flight = self._inflight.setdefault(key, threading.Lock())
        with flight:
            cached = self._compile_cache.get(key)
            if cached is not None:
                self.cache_stats.record_hit()
                _GLOBAL_CACHE_STATS.record_hit()
                return cached
            result = self._compile_uncached(tu, target, options,
                                            sanitize, sanitize_options)
            self._compile_cache[key] = result
        with self._inflight_guard:
            self._inflight.pop(key, None)
        return result

    def _compile_uncached(
        self,
        tu: TranslationUnit,
        target: ISA,
        options: tuple[str, ...],
        sanitize: bool,
        sanitize_options,
    ) -> CompileResult:
        """The actual pipeline behind a compile-cache miss."""
        self.cache_stats.record_miss()
        _GLOBAL_CACHE_STATS.record_miss()

        module = ModuleIR(name=tu.name)
        for k in tu.kernels:
            module.add(k.ir)
        optimized, report = optimize_module(module, level=self.opt_level)
        diagnostics = None
        warnings: list[str] = []
        if sanitize:
            from repro.compilers.passes import sanitize_module

            diagnostics = sanitize_module(optimized, sanitize_options)
            from repro.translate.base import TranslationOrigin

            # Only translated units have a source unit to validate
            # against; other provenance (e.g. the jit frontend's
            # JitOrigin) participates in cache keying but has no
            # translation to check.
            if isinstance(tu.origin, TranslationOrigin):
                from repro.analysis.transval import validate_translation

                diagnostics.extend(validate_translation(tu))
            warnings.extend(
                d.render() for d in diagnostics.diagnostics if not d.is_error
            )
        binary = legalize(optimized, target, producer=f"{self.name}-{self.version}")
        result = CompileResult(
            binary=binary,
            toolchain=self.name,
            target=target,
            options=tuple(options),
            pass_report=report,
            warnings=warnings,
            diagnostics=diagnostics,
        )
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = sorted(f"{m.value}/{l.value}" for m, l in self._caps)
        return f"<Toolchain {self.name} {self.version} ({self.provider.value}): {pairs}>"
