"""Catalog of model features and standard-version feature sets.

Feature tags are the currency of the compatibility machinery:

* translation units and kernels carry the tags they *require*;
* toolchains declare the tags they *implement* per (model, language);
* probes (:mod:`repro.core.probes`) are programs engineered to require
  specific tags, so a toolchain's per-model coverage fraction is an
  executable measurement rather than an opinion.

The version sets below encode the support statements of §4: e.g.
``OPENMP_45 ⊂ OPENMP_50 ⊂ OPENMP_51``, with NVHPC/AOMP implementing
4.5 plus only part of 5.0, Intel implementing "all 4.5 and most 5.0 and
5.1", GCC implementing 4.5 entirely with 5.x in progress.
"""

from __future__ import annotations

#: Kernel-hardware tags attached by the IR builder; every toolchain can
#: lower these (the ISA legalizer is the real gate for them).
HW_FEATURES = frozenset({"barrier", "atomics", "shared_memory", "shuffle"})

# -- CUDA -----------------------------------------------------------------

CUDA_CORE = frozenset({
    "cuda:kernels", "cuda:memcpy", "cuda:streams", "cuda:events",
    "cuda:managed_memory", "cuda:libraries",
})
#: Driver-level extras a mapping layer may not forward.
CUDA_ADVANCED = frozenset({"cuda:graphs", "cuda:cooperative_groups"})
CUDA_FULL = CUDA_CORE | CUDA_ADVANCED

CUDA_FORTRAN_CORE = frozenset({
    "cuf:kernels", "cuf:cuf_kernels", "cuda:memcpy", "cuda:streams",
})
#: Everything a CUDA Fortran unit may legally require — the core plus
#: the runtime-API surface shared with CUDA C++ (a Fortran program can
#: use events or cuBLAS through the module interfaces even when a given
#: translator cannot convert them).
CUDA_FORTRAN_FULL = CUDA_FORTRAN_CORE | frozenset({
    "cuda:events", "cuda:managed_memory", "cuda:libraries",
    "cuda:graphs", "cuda:cooperative_groups",
})

# -- HIP ---------------------------------------------------------------------

HIP_CORE = frozenset({
    "hip:kernels", "hip:memcpy", "hip:streams", "hip:events", "hip:libraries",
})
HIP_ADVANCED = frozenset({"hip:graphs", "hip:managed_memory"})
HIP_FULL = HIP_CORE | HIP_ADVANCED
#: hipfort exposes the C API and kernel-writing extensions to Fortran,
#: but not the newer driver-level features (events wrapping is partial,
#: graphs absent) — which is what keeps it at "some support".
HIPFORT_BINDINGS = frozenset({
    "hip:kernels", "hip:memcpy", "hip:streams", "hip:libraries",
})

# -- SYCL ---------------------------------------------------------------------

SYCL_CORE = frozenset({
    "sycl:queues", "sycl:buffers", "sycl:accessors", "sycl:nd_range",
    "sycl:usm", "sycl:reduction", "sycl:events",
})

# -- OpenMP offloading ------------------------------------------------------

OPENMP_45 = frozenset({
    "omp:target", "omp:teams", "omp:distribute", "omp:parallel_for",
    "omp:map", "omp:reduction", "omp:collapse", "omp:simd",
})
OPENMP_50_ONLY = frozenset({
    "omp:metadirective", "omp:declare_variant", "omp:usm", "omp:loop",
    "omp:detach",
})
OPENMP_51_ONLY = frozenset({"omp:assume", "omp:interop", "omp:masked"})
OPENMP_52_ONLY = frozenset({"omp:doacross"})
OPENMP_50 = OPENMP_45 | OPENMP_50_ONLY
OPENMP_51 = OPENMP_50 | OPENMP_51_ONLY
OPENMP_52 = OPENMP_51 | OPENMP_52_ONLY

# -- OpenACC -----------------------------------------------------------------

OPENACC_26 = frozenset({
    "acc:parallel", "acc:kernels", "acc:data", "acc:loop", "acc:reduction",
    "acc:gang_worker_vector", "acc:copyin_copyout",
})
OPENACC_27_ONLY = frozenset({"acc:async", "acc:wait", "acc:self"})
OPENACC_30_ONLY = frozenset({"acc:serial", "acc:attach"})
OPENACC_27 = OPENACC_26 | OPENACC_27_ONLY
OPENACC_30 = OPENACC_27 | OPENACC_30_ONLY

# -- Standard-language parallelism ---------------------------------------------

STDPAR_CPP = frozenset({
    "stdpar:for_each", "stdpar:transform", "stdpar:reduce",
    "stdpar:transform_reduce", "stdpar:scan", "stdpar:sort",
})
#: True ISO conformance: algorithms live in ``std::`` and accept the
#: standard execution policies (oneDPL keeps them in ``oneapi::dpl::``,
#: the ambivalence §5 discusses for Intel's C++ standard parallelism).
STDPAR_STD_NAMESPACE = frozenset({"stdpar:std_namespace"})
STDPAR_CPP_FULL = STDPAR_CPP | STDPAR_STD_NAMESPACE
STDPAR_FORTRAN = frozenset({"dc:do_concurrent", "dc:locality_specifiers",
                            "dc:reduce"})

# -- OpenCL (extension model) ---------------------------------------------------

OPENCL_12 = frozenset({
    "ocl:kernels", "ocl:buffers", "ocl:command_queues", "ocl:events",
})
OPENCL_20_ONLY = frozenset({"ocl:svm"})
OPENCL_21_ONLY = frozenset({"ocl:subgroups"})
OPENCL_20 = OPENCL_12 | OPENCL_20_ONLY
OPENCL_21 = OPENCL_20 | OPENCL_21_ONLY

# -- Python packages ------------------------------------------------------------

PYTHON_CORE = frozenset({
    "py:ufuncs", "py:custom_kernels", "py:reduction", "py:streams",
    "py:blas", "py:numpy_interop",
})

def _model_tag_vocabulary() -> dict:
    """Full tag vocabulary per programming model, hardware tags included.

    This is the *legal* tag set a translation unit of that model may
    carry — the union of every standard/version catalog above, not any
    particular toolchain's supported subset.  Translation validation
    (TV02) checks that a translator only ever emits tags from its
    target model's vocabulary; an identifier here that no toolchain
    implements is still *valid*, just unsupported.

    Kokkos and Alpaka are absent deliberately: those portability layers
    lower onto CUDA/HIP/SYCL/OpenMP translation units, so their units
    are covered by the backend model's vocabulary.
    """
    from repro.enums import Model

    return {
        Model.CUDA: CUDA_FULL | CUDA_FORTRAN_CORE | HW_FEATURES,
        Model.HIP: HIP_FULL | HIPFORT_BINDINGS | HW_FEATURES,
        Model.SYCL: SYCL_CORE | HW_FEATURES,
        Model.OPENMP: OPENMP_52 | HW_FEATURES,
        Model.OPENACC: OPENACC_30 | HW_FEATURES,
        Model.STANDARD: STDPAR_CPP_FULL | STDPAR_FORTRAN | HW_FEATURES,
        Model.PYTHON: PYTHON_CORE | HW_FEATURES,
        Model.OPENCL: OPENCL_21 | HW_FEATURES,
    }


MODEL_TAG_VOCABULARY = _model_tag_vocabulary()


#: Human-readable description per tag (documentation + reports).
FEATURE_DESCRIPTIONS: dict[str, str] = {
    "barrier": "block-level synchronization",
    "atomics": "device memory atomics",
    "shared_memory": "static shared/LDS/SLM allocations",
    "shuffle": "warp/wavefront/sub-group data exchange",
    "cuda:kernels": "__global__ kernel definition and launch",
    "cuda:memcpy": "explicit host<->device copies",
    "cuda:streams": "asynchronous streams",
    "cuda:events": "timing/synchronization events",
    "cuda:managed_memory": "cudaMallocManaged-style unified memory",
    "cuda:libraries": "vendor BLAS-class libraries",
    "cuda:graphs": "task-graph capture and replay",
    "cuda:cooperative_groups": "grid-wide cooperative launch",
    "cuf:kernels": "explicit Fortran device kernels",
    "cuf:cuf_kernels": "!$cuf kernel auto-parallelized loops",
    "hip:kernels": "__global__ kernel definition and launch",
    "hip:memcpy": "explicit host<->device copies",
    "hip:streams": "asynchronous streams",
    "hip:events": "timing/synchronization events",
    "hip:libraries": "hipBLAS-class library interfaces",
    "hip:graphs": "hipGraph task-graph capture and replay",
    "hip:managed_memory": "hipMallocManaged-style unified memory",
    "sycl:queues": "command queues",
    "sycl:buffers": "buffer/accessor memory management",
    "sycl:accessors": "accessor-based dependency tracking",
    "sycl:nd_range": "nd_range kernels with work-group control",
    "sycl:usm": "unified shared memory",
    "sycl:reduction": "sycl::reduction objects",
    "sycl:events": "event-based synchronization",
    "omp:target": "#pragma omp target offload regions",
    "omp:teams": "teams construct",
    "omp:distribute": "distribute worksharing",
    "omp:parallel_for": "parallel for worksharing",
    "omp:map": "map clauses",
    "omp:reduction": "reductions on target regions",
    "omp:collapse": "collapse clauses",
    "omp:simd": "simd construct",
    "omp:metadirective": "metadirective (OpenMP 5.0)",
    "omp:declare_variant": "declare variant (OpenMP 5.0)",
    "omp:usm": "requires unified_shared_memory (OpenMP 5.0)",
    "omp:loop": "loop construct (OpenMP 5.0)",
    "omp:detach": "detachable tasks (OpenMP 5.0)",
    "omp:assume": "assume directive (OpenMP 5.1)",
    "omp:interop": "interop construct (OpenMP 5.1)",
    "omp:masked": "masked construct (OpenMP 5.1)",
    "omp:doacross": "doacross loops (OpenMP 5.2)",
    "acc:parallel": "acc parallel regions",
    "acc:kernels": "acc kernels regions",
    "acc:data": "structured data regions",
    "acc:loop": "loop directives",
    "acc:reduction": "reduction clauses",
    "acc:gang_worker_vector": "gang/worker/vector clauses",
    "acc:copyin_copyout": "copyin/copyout data clauses",
    "acc:async": "async clauses/queues",
    "acc:wait": "wait directives",
    "acc:self": "self clauses (OpenACC 2.7)",
    "acc:serial": "serial construct (OpenACC 3.0)",
    "acc:attach": "attach/detach semantics (OpenACC 3.0)",
    "stdpar:for_each": "std::for_each(par_unseq, ...)",
    "stdpar:transform": "std::transform(par_unseq, ...)",
    "stdpar:reduce": "std::reduce(par_unseq, ...)",
    "stdpar:transform_reduce": "std::transform_reduce(par_unseq, ...)",
    "stdpar:scan": "std::inclusive_scan(par_unseq, ...)",
    "stdpar:sort": "std::sort(par_unseq, ...)",
    "stdpar:std_namespace": "algorithms reachable in namespace std::",
    "ocl:kernels": "OpenCL C kernels via clBuildProgram",
    "ocl:buffers": "cl_mem buffer objects",
    "ocl:command_queues": "in-order command queues",
    "ocl:events": "cl_event dependency/profiling objects",
    "ocl:svm": "shared virtual memory (OpenCL 2.0)",
    "ocl:subgroups": "sub-group operations (OpenCL 2.1)",
    "py:ufuncs": "NumPy-style elementwise array operations",
    "py:custom_kernels": "user-defined device kernels from Python",
    "py:reduction": "array reductions on the device",
    "py:streams": "asynchronous stream/queue control from Python",
    "py:blas": "bindings to vendor BLAS-class libraries",
    "py:numpy_interop": "zero-copy/explicit exchange with host NumPy",
    "dc:do_concurrent": "Fortran do concurrent offload",
    "dc:locality_specifiers": "do concurrent locality specifiers",
    "dc:reduce": "do concurrent reduce clauses (F2023)",
}


def describe(tag: str) -> str:
    """Human-readable description of a feature tag."""
    return FEATURE_DESCRIPTIONS.get(tag, tag)
