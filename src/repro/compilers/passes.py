"""Mid-level IR optimization passes.

A miniature of the LLVM role the paper's conclusion highlights ("a key
component in the ecosystem is the LLVM toolchain"): every simulated
toolchain shares these passes, just as the real vendor compilers share
LLVM's mid-end.  Implemented passes:

* **constant folding** — binary/unary/compare/select/convert operations
  whose operands are immediates are evaluated at compile time;
* **copy propagation** — ``Mov dst, src`` rewrites later uses of ``dst``
  (within safe straight-line regions) to ``src``;
* **dead code elimination** — pure instructions whose destinations are
  never read are removed (memory, atomics, barriers, control flow with
  side effects are preserved).

Passes operate on (a deep copy of) the structured IR, preserving
verifiability: the pipeline re-verifies after each pass.
"""

from __future__ import annotations

import math

from repro.isa import dtypes
from repro.isa.instructions import (
    AtomicOp,
    Barrier,
    BinOp,
    Cmp,
    Cvt,
    Exit,
    If,
    Imm,
    Instruction,
    Load,
    Mov,
    Operand,
    Register,
    Select,
    SharedAlloc,
    Shuffle,
    SpecialRead,
    Store,
    UnaryOp,
    While,
)
from repro.isa.module import KernelIR, ModuleIR, clone_ir
from repro.isa.verifier import verify_kernel

_FOLDABLE_BIN = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "min": min,
    "max": max,
    "and": lambda a, b: a & b if not isinstance(a, bool) else a and b,
    "or": lambda a, b: a | b if not isinstance(a, bool) else a or b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
}

_FOLDABLE_CMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

_FOLDABLE_UN = {
    "neg": lambda a: -a,
    "abs": abs,
    "not": lambda a: not a,
    "floor": math.floor,
    "ceil": math.ceil,
    "sqrt": math.sqrt,
}


def _imm(value, dtype: dtypes.DType) -> Imm:
    return Imm(dtype.np_dtype.type(value).item(), dtype)


def fold_constants(kernel: KernelIR) -> int:
    """Evaluate immediate-only operations; returns the folds performed.

    Folded instructions become ``Mov dst, imm`` so downstream copy
    propagation can erase them entirely.
    """
    folds = 0

    def fold_body(body: list[Instruction], consts_local: dict[str, Imm]) -> None:
        nonlocal folds

        def sub(op: Operand) -> Operand:
            if isinstance(op, Register) and op.name in consts_local:
                return consts_local[op.name]
            return op

        for pos, instr in enumerate(body):
            if isinstance(instr, BinOp):
                a, b = sub(instr.a), sub(instr.b)
                instr.a, instr.b = a, b
                fn = _FOLDABLE_BIN.get(instr.op)
                if fn and isinstance(a, Imm) and isinstance(b, Imm):
                    try:
                        value = fn(a.value, b.value)
                    except (OverflowError, ValueError):
                        continue
                    imm = _imm(value, instr.dst.dtype)
                    body[pos] = Mov(instr.dst, imm)
                    consts_local[instr.dst.name] = imm
                    folds += 1
                elif instr.dst.name in consts_local:
                    del consts_local[instr.dst.name]
            elif isinstance(instr, Cmp):
                a, b = sub(instr.a), sub(instr.b)
                instr.a, instr.b = a, b
                fn = _FOLDABLE_CMP.get(instr.op)
                if fn and isinstance(a, Imm) and isinstance(b, Imm):
                    imm = Imm(bool(fn(a.value, b.value)), dtypes.PRED)
                    body[pos] = Mov(instr.dst, imm)
                    consts_local[instr.dst.name] = imm
                    folds += 1
                elif instr.dst.name in consts_local:
                    del consts_local[instr.dst.name]
            elif isinstance(instr, UnaryOp):
                instr.src = sub(instr.src)
                fn = _FOLDABLE_UN.get(instr.op)
                if fn and isinstance(instr.src, Imm):
                    try:
                        value = fn(instr.src.value)
                    except (OverflowError, ValueError):
                        continue
                    imm = _imm(value, instr.dst.dtype)
                    body[pos] = Mov(instr.dst, imm)
                    consts_local[instr.dst.name] = imm
                    folds += 1
                elif instr.dst.name in consts_local:
                    del consts_local[instr.dst.name]
            elif isinstance(instr, Cvt):
                instr.src = sub(instr.src)
                if isinstance(instr.src, Imm) and not (
                    instr.src.dtype.is_pred or instr.dst.dtype.is_pred
                ):
                    imm = _imm(instr.src.value, instr.dst.dtype)
                    body[pos] = Mov(instr.dst, imm)
                    consts_local[instr.dst.name] = imm
                    folds += 1
                elif instr.dst.name in consts_local:
                    del consts_local[instr.dst.name]
            elif isinstance(instr, Select):
                instr.pred = sub(instr.pred)
                instr.a, instr.b = sub(instr.a), sub(instr.b)
                if isinstance(instr.pred, Imm):
                    chosen = instr.a if instr.pred.value else instr.b
                    body[pos] = Mov(instr.dst, chosen)
                    if isinstance(chosen, Imm):
                        consts_local[instr.dst.name] = chosen
                    folds += 1
                elif instr.dst.name in consts_local:
                    del consts_local[instr.dst.name]
            elif isinstance(instr, Mov):
                instr.src = sub(instr.src)
                if isinstance(instr.src, Imm):
                    consts_local[instr.dst.name] = instr.src
                else:
                    consts_local.pop(instr.dst.name, None)
            elif isinstance(instr, (Load, AtomicOp)):
                if isinstance(instr, Load):
                    instr.addr = sub(instr.addr)
                else:
                    instr.addr = sub(instr.addr)
                    instr.src = sub(instr.src)
                    if instr.compare is not None:
                        instr.compare = sub(instr.compare)
                if instr.dst is not None:
                    consts_local.pop(instr.dst.name, None)
            elif isinstance(instr, Store):
                instr.addr = sub(instr.addr)
                instr.src = sub(instr.src)
            elif isinstance(instr, Shuffle):
                instr.src = sub(instr.src)
                instr.lane = sub(instr.lane)
                consts_local.pop(instr.dst.name, None)
            elif isinstance(instr, (SpecialRead, SharedAlloc)):
                consts_local.pop(instr.dst.name, None)
            elif isinstance(instr, If):
                instr.cond = sub(instr.cond)
                # Branch-local constants must not leak across the join.
                then_consts = dict(consts_local)
                else_consts = dict(consts_local)
                fold_body(instr.then_body, then_consts)
                fold_body(instr.else_body, else_consts)
                # Keep only facts that survive both paths unchanged.
                for name in list(consts_local):
                    if (
                        then_consts.get(name) != consts_local[name]
                        or else_consts.get(name) != consts_local[name]
                    ):
                        del consts_local[name]
            elif isinstance(instr, While):
                # Names redefined anywhere in the loop are not constant on
                # any iteration after the first: strip them before folding
                # the loop's bodies, and keep them invalid afterwards.
                redefined = _defined_names(instr.cond_body) | _defined_names(instr.body)
                inner = {
                    name: imm
                    for name, imm in consts_local.items()
                    if name not in redefined
                }
                fold_body(instr.cond_body, inner)
                fold_body(instr.body, inner)
                for name in redefined:
                    consts_local.pop(name, None)

    fold_body(kernel.body, {})
    return folds


def _defined_names(body: list[Instruction]) -> set[str]:
    names: set[str] = set()
    from repro.isa.instructions import walk

    for instr in walk(body):
        dst = getattr(instr, "dst", None)
        if isinstance(dst, Register):
            names.add(dst.name)
    return names


def _used_names(body: list[Instruction]) -> set[str]:
    used: set[str] = set()
    from repro.isa.instructions import walk

    for instr in walk(body):
        for attr in ("src", "a", "b", "pred", "addr", "cond", "lane", "compare"):
            op = getattr(instr, attr, None)
            if isinstance(op, Register):
                used.add(op.name)
    return used


_PURE = (Mov, BinOp, UnaryOp, Cmp, Select, Cvt, SpecialRead)


def eliminate_dead_code(kernel: KernelIR) -> int:
    """Drop pure instructions whose destinations are never read."""
    removed_total = 0
    # Iterate to a fixed point: removing one dead op can orphan another.
    while True:
        used = _used_names(kernel.body)

        def sweep(body: list[Instruction]) -> int:
            removed = 0
            kept: list[Instruction] = []
            for instr in body:
                if isinstance(instr, If):
                    removed += sweep(instr.then_body)
                    removed += sweep(instr.else_body)
                    kept.append(instr)
                elif isinstance(instr, While):
                    removed += sweep(instr.body)
                    # cond_body defines the loop predicate: keep intact.
                    kept.append(instr)
                elif isinstance(instr, _PURE) and instr.dst.name not in used:
                    removed += 1
                else:
                    kept.append(instr)
            body[:] = kept
            return removed

        removed = sweep(kernel.body)
        removed_total += removed
        if removed == 0:
            return removed_total


def optimize_kernel(kernel: KernelIR, level: int = 2) -> tuple[KernelIR, dict[str, int]]:
    """Run the pass pipeline on a copy of ``kernel``.

    Level 0 disables everything (still verifies); level 1 folds
    constants; level 2 adds dead-code elimination.
    """
    out = clone_ir(kernel)
    report = {"folds": 0, "dce": 0}
    if level >= 1:
        report["folds"] = fold_constants(out)
    if level >= 2:
        report["dce"] = eliminate_dead_code(out)
    verify_kernel(out)
    return out, report


def optimize_module(module: ModuleIR, level: int = 2) -> tuple[ModuleIR, dict[str, int]]:
    """Optimize every kernel; returns the new module and a pass report."""
    out = ModuleIR(name=module.name)
    totals = {"folds": 0, "dce": 0}
    for kernel in module:
        opt, report = optimize_kernel(kernel, level)
        out.add(opt)
        for key, val in report.items():
            totals[key] += val
    return out, totals


def sanitize_module(module: ModuleIR, options=None):
    """Run the kernelsan static analyses as a post-optimization stage.

    Returns a :class:`repro.analysis.diagnostics.LintReport`.  Imported
    lazily so the core pass pipeline keeps zero dependency on the
    analysis layer (the reverse import direction is the load-bearing
    one: kernelsan imports the verifier from here).
    """
    from repro.analysis import analyze_module

    return analyze_module(module, options)
