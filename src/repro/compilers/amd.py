"""AMD toolchains: ROCm's ``hipcc``, AOMP, hipfort, and roc-stdpar.

Capability sets follow §4: hipcc is the native HIP compiler driver for
AMD GPUs and also targets NVIDIA GPUs through its CUDA backend via
``HIP_PLATFORM=nvidia`` (descriptions 3/20); AOMP supports "most OpenMP
4.5 and some OpenMP 5.0 features" on AMD GPUs and also NVIDIA GPUs
(descriptions 9/24/25); hipfort provides Fortran interfaces to the HIP
API and libraries (description 4); roc-stdpar is the under-development
C++ standard-parallelism runtime (description 26).
"""

from __future__ import annotations

from repro.compilers import features as F
from repro.compilers.toolchain import Capability, Toolchain
from repro.enums import ISA, Language, Maturity, Model, Provider

_AMDGCN = frozenset({ISA.AMDGCN})
_AMD_AND_NV = frozenset({ISA.AMDGCN, ISA.PTX})

#: AOMP's OpenMP frontend: "most OpenMP 4.5 and some OpenMP 5.0".
_AOMP_OPENMP = F.OPENMP_45 | {"omp:loop", "omp:declare_variant"}


def make_hipcc() -> Toolchain:
    """``hipcc``, the ROCm compiler driver (wraps AMD's Clang).

    ``HIP_PLATFORM=amd`` emits AMDGCN via the AMDGPU backend;
    ``HIP_PLATFORM=nvidia`` forwards to the CUDA toolchain and emits
    PTX — modeled as the PTX member of the target set.
    """
    return Toolchain(
        name="hipcc",
        provider=Provider.AMD,
        version="ROCm-5.7",
        description=(
            "ROCm HIP compiler driver; --offload-arch=gfx90a style AMD "
            "targets plus the CUDA backend for NVIDIA GPUs"
        ),
        capabilities=[
            Capability(Model.HIP, Language.CPP, _AMD_AND_NV, F.HIP_FULL,
                       since="ROCm 1.5", flag="HIP_PLATFORM={amd,nvidia}"),
        ],
    )


def make_aomp() -> Toolchain:
    """AOMP, AMD's Clang/LLVM-based OpenMP offload compiler."""
    return Toolchain(
        name="aomp",
        provider=Provider.AMD,
        version="18.0-ROCm",
        description=(
            "AMD's dedicated Clang-based OpenMP offloading compiler "
            "(clang for C++, flang for Fortran), shipped with ROCm"
        ),
        capabilities=[
            Capability(Model.OPENMP, Language.CPP, _AMD_AND_NV, _AOMP_OPENMP,
                       flag="-fopenmp --offload-arch=gfx90a"),
            Capability(Model.OPENMP, Language.FORTRAN, _AMDGCN, _AOMP_OPENMP,
                       flag="-fopenmp"),
        ],
    )


def make_hipfort() -> Toolchain:
    """hipfort: MIT-licensed Fortran interfaces to HIP and ROCm libraries.

    Compiles HIP Fortran against either platform the underlying HIP
    runtime supports.  The feature set is the C-API surface plus the
    CUDA-like kernel extensions; newer driver features (events wrapping,
    graphs) are not exposed — the measured gap behind the paper's
    "some support" rating for HIP·Fortran.
    """
    return Toolchain(
        name="hipfort",
        provider=Provider.AMD,
        version="0.4",
        description="Fortran interface library for the HIP API (with gfortran)",
        capabilities=[
            Capability(Model.HIP, Language.FORTRAN, _AMD_AND_NV,
                       F.HIPFORT_BINDINGS),
        ],
    )


def make_rocstdpar() -> Toolchain:
    """roc-stdpar: ROCm Standard Parallelism Runtime (under development).

    Description 26: "AMD does not yet provide production-grade support
    for Standard-language parallelism"; roc-stdpar "aims to supply pSTL
    algorithms on the GPU".  Experimental maturity caps its
    classification at *limited support* regardless of feature coverage.
    """
    return Toolchain(
        name="roc-stdpar",
        provider=Provider.AMD,
        version="prototype",
        maturity=Maturity.EXPERIMENTAL,
        description="ROCm C++ standard-parallelism runtime (pre-upstream LLVM)",
        capabilities=[
            Capability(Model.STANDARD, Language.CPP, _AMDGCN,
                       F.STDPAR_CPP_FULL, flag="-stdpar"),
        ],
    )
