"""Workloads: BabelStream across all models, and mini-applications.

* :mod:`repro.workloads.babelstream` — the Copy/Mul/Add/Triad/Dot
  kernels of BabelStream (Deakin et al. [53]), written once per
  programming model; §5 names this exact suite as the closest thing to
  a performance overview and the natural extension of the paper.
* :mod:`repro.workloads.miniapps` — runnable mini-applications (Jacobi,
  N-body, histogram) used by the examples and the translator corpus.
"""

from repro.workloads.babelstream import (  # noqa: F401
    BABELSTREAM_MODELS,
    StreamResult,
    available_models,
    run_babelstream,
)
from repro.workloads.miniapps import (  # noqa: F401
    CUDA_MINIAPP_SOURCES,
    jacobi_solve,
    nbody_step,
    run_histogram,
)
