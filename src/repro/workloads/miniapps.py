"""Mini-applications: host drivers over the kernel library.

Used three ways: as runnable examples of the public API, as the
workload corpus for the translator benchmarks (including real CUDA
source strings for the string-level tools), and as integration tests
of the substrate (multi-kernel, multi-launch programs with host-side
convergence logic).
"""

from __future__ import annotations

import numpy as np

from repro import kernels as KL
from repro.kernels import BLOCK
from repro.models.base import OffloadRuntime


def jacobi_solve(runtime, nx: int, ny: int, iterations: int = 50,
                 launcher=None) -> np.ndarray:
    """Jacobi relaxation on an ``nx``×``ny`` grid with fixed hot top row.

    ``runtime`` is any model runtime with ``to_device``/``alloc``;
    ``launcher(kern, grid, block, args)`` customizes dispatch (defaults
    to the generic 2-D launch through the runtime's compiled module).
    Returns the final grid.
    """
    host = np.zeros((ny, nx))
    host[0, :] = 100.0
    cur = runtime.to_device(host)
    nxt = runtime.to_device(host)
    gx, gy = (nx + 15) // 16, (ny + 15) // 16

    if launcher is None:
        binary = runtime.compile([KL.jacobi2d], _default_tags(runtime))

        def launcher(args):
            runtime.launch(binary, "jacobi2d", (gx, gy), (16, 16), args)

    for _ in range(iterations):
        launcher([nx, ny, cur, nxt])
        cur, nxt = nxt, cur
    out = cur.copy_to_host().reshape(ny, nx)
    cur.free()
    nxt.free()
    return out


def nbody_step(runtime, n: int = 512, softening: float = 1e-3) -> np.ndarray:
    """One direct-sum N-body force evaluation; returns accelerations."""
    rng = np.random.default_rng(101)
    pos = rng.random(2 * n)
    pos_d = runtime.to_device(pos)
    acc_d = runtime.alloc(np.float64, 2 * n)
    binary = runtime.compile([KL.nbody_forces], _default_tags(runtime))
    grid = max(1, (n + BLOCK - 1) // BLOCK)
    runtime.launch(binary, "nbody_forces", (grid,), (BLOCK,),
                   [n, softening, pos_d, acc_d])
    acc = acc_d.copy_to_host()
    pos_d.free()
    acc_d.free()
    return acc.reshape(n, 2)


def run_histogram(runtime, n: int = 100_000, nbins: int = 64) -> np.ndarray:
    """Atomic histogram of random int32 data; returns the bin counts."""
    rng = np.random.default_rng(7)
    data = rng.integers(0, 1_000_000, n).astype(np.int32)
    data_d = runtime.to_device(data)
    bins_d = runtime.alloc(np.int32, nbins)
    binary = runtime.compile([KL.histogram], _default_tags(runtime))
    grid = max(1, (n + BLOCK - 1) // BLOCK)
    runtime.launch(binary, "histogram", (grid,), (BLOCK,),
                   [n, nbins, data_d, bins_d])
    bins = bins_d.copy_to_host()
    data_d.free()
    bins_d.free()
    expected = np.bincount(data % nbins, minlength=nbins).astype(np.int32)
    if not np.array_equal(bins, expected):
        raise AssertionError("histogram mismatch against host reference")
    return bins


def _default_tags(runtime: OffloadRuntime) -> list[str]:
    """Minimal kernel tags accepted by the runtime's toolchain."""
    from repro.enums import Model

    if runtime.MODEL is Model.CUDA:
        return list(runtime._kernel_tags())  # type: ignore[attr-defined]
    if runtime.MODEL is Model.HIP:
        return ["hip:kernels", "hip:memcpy"]
    if runtime.MODEL is Model.SYCL:
        return ["sycl:queues"]
    if runtime.MODEL is Model.OPENMP:
        return ["omp:target", "omp:teams", "omp:distribute",
                "omp:parallel_for", "omp:map"]
    if runtime.MODEL is Model.OPENACC:
        return ["acc:parallel", "acc:loop", "acc:copyin_copyout"]
    if runtime.MODEL is Model.STANDARD:
        return ["stdpar:for_each"]
    return []


#: CUDA C++ source strings of the mini-apps, for the string-level
#: translator corpus (what HIPIFY/SYCLomatic actually chew on).
CUDA_MINIAPP_SOURCES: dict[str, str] = {
    "saxpy": """
#include <cuda_runtime.h>

__global__ void saxpy(int n, float a, const float* x, float* y) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) y[i] = a * x[i] + y[i];
}

int main() {
    float *x, *y;
    cudaMalloc(&x, N * sizeof(float));
    cudaMalloc(&y, N * sizeof(float));
    cudaMemcpy(x, hx, N * sizeof(float), cudaMemcpyHostToDevice);
    saxpy<<<(N + 255) / 256, 256>>>(N, 2.0f, x, y);
    cudaDeviceSynchronize();
    cudaMemcpy(hy, y, N * sizeof(float), cudaMemcpyDeviceToHost);
    cudaFree(x); cudaFree(y);
}
""",
    "streams": """
cudaStream_t s1, s2;
cudaStreamCreate(&s1);
cudaStreamCreate(&s2);
cudaMemcpyAsync(d1, h1, bytes, cudaMemcpyHostToDevice, s1);
kernel_a<<<blocks, threads>>>(d1);
cudaStreamSynchronize(s1);
cudaStreamDestroy(s1);
""",
    "events": """
cudaEvent_t start, stop;
cudaEventCreate(&start);
cudaEventCreate(&stop);
cudaEventRecord(start);
kernel_b<<<blocks, threads>>>(data);
cudaEventRecord(stop);
cudaEventSynchronize(stop);
float ms; cudaEventElapsedTime(&ms, start, stop);
""",
    "blas": """
cublasHandle_t handle;
cublasCreate(&handle);
cublasDaxpy(handle, n, &alpha, x, 1, y, 1);
double result; cublasDdot(handle, n, x, 1, y, 1, &result);
""",
    "managed": """
double* data;
cudaMallocManaged(&data, n * sizeof(double));
init<<<blocks, threads>>>(data, n);
cudaDeviceSynchronize();
""",
}

#: OpenACC source strings (C++ and Fortran) for the acc2omp corpus.
OPENACC_MINIAPP_SOURCES: dict[str, str] = {
    "saxpy_c": """
#pragma acc parallel loop copyin(x[0:n]) copy(y[0:n])
for (int i = 0; i < n; ++i) y[i] = a * x[i] + y[i];
""",
    "saxpy_f": """
!$acc parallel loop copyin(x) copy(y)
do i = 1, n
  y(i) = a * x(i) + y(i)
end do
""",
    "data_region": """
#pragma acc data copyin(a[0:n]) copyout(b[0:n])
{
#pragma acc parallel loop
for (int i = 0; i < n; ++i) b[i] = a[i];
}
""",
    "async": """
#pragma acc parallel loop async(1) gang vector_length(128)
for (int i = 0; i < n; ++i) c[i] = a[i] + b[i];
""",
}
