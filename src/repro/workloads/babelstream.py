"""BabelStream across all programming models and vendors.

The paper's §5 points to BabelStream [53] as "closest to a performance
overview ... although only for a STREAM-like algorithm" and names
performance evaluation as the natural future extension.  This module
realizes it on the simulated ecosystem: the five BabelStream kernels
(Copy, Mul, Add, Triad, Dot) run through each programming model's own
API on each vendor's device, and the simulated roofline timing yields
GB/s figures whose *shape* (per-vendor bandwidth ordering, model
overheads) is the result of interest.

Methodology mirrors the original benchmark: arrays initialized to the
canonical values (a=0.1, b=0.2, c=0.0), kernels run ``reps`` times,
the best (minimum) time per kernel is reported, and results are
verified against the analytically known final values.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import kernels as KL
from repro.enums import Vendor
from repro.errors import ApiError
from repro.gpu.device import Device
from repro.kernels import BLOCK

#: Canonical BabelStream initial values and scalar.
INIT_A, INIT_B, INIT_C = 0.1, 0.2, 0.0
SCALAR = 0.4

#: The five kernels, in canonical benchmark order.
STREAM_KERNELS = ("copy", "mul", "add", "triad", "dot")

#: Arrays touched per element by each kernel (the GB/s denominator).
STREAM_MOVED_ARRAYS = {"copy": 2, "mul": 2, "add": 3, "triad": 3, "dot": 2}


@dataclass
class StreamResult:
    """Best-of-reps bandwidths for one (model, vendor) combination."""

    model: str
    vendor: Vendor
    device: str
    via: str
    n: int
    dtype_bytes: int = 8
    best_seconds: dict[str, float] = field(default_factory=dict)
    verified: bool = False
    kernels_executed: int = 0

    def bandwidth_gbs(self, kernel: str) -> float:
        moved = STREAM_MOVED_ARRAYS[kernel] * self.n * self.dtype_bytes
        return moved / self.best_seconds[kernel] / 1e9

    def row(self) -> str:
        cells = "  ".join(
            f"{k}:{self.bandwidth_gbs(k):8.1f}" for k in
            ("copy", "mul", "add", "triad", "dot")
        )
        flag = "ok" if self.verified else "FAILED-VERIFY"
        return (f"{self.model:10s} {self.vendor.value:7s} "
                f"{cells}  GB/s  [{flag}] via {self.via}")


class _Adapter:
    """Per-model driver: allocate arrays and run the five kernels.

    ``runtime_factory`` (optional) injects a pre-wired runtime chain —
    this is how the performance-portability layer drives the kernels
    through an arbitrary *route* (translator + toolchain and all)
    instead of the adapter's default toolchain choice.
    """

    via = "?"

    def __init__(self, device: Device, n: int,
                 runtime_factory: Callable[[], object] | None = None):
        self.device = device
        self.n = n
        self.runtime_factory = runtime_factory

    def setup(self) -> None:
        raise NotImplementedError

    def copy(self) -> None:
        raise NotImplementedError

    def mul(self) -> None:
        raise NotImplementedError

    def add(self) -> None:
        raise NotImplementedError

    def triad(self) -> None:
        raise NotImplementedError

    def dot(self) -> float:
        raise NotImplementedError

    def read_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        raise NotImplementedError

    def teardown(self) -> None:
        pass


class _RuntimeAdapter(_Adapter):
    """Shared implementation for runtimes with launch_n-style dispatch."""

    def _make_runtime(self):
        raise NotImplementedError

    def _launch(self, kern, args, grid=None):
        raise NotImplementedError

    def setup(self) -> None:
        self.rt = (self.runtime_factory() if self.runtime_factory is not None
                   else self._make_runtime())
        n = self.n
        self.a = self.rt.to_device(np.full(n, INIT_A))
        self.b = self.rt.to_device(np.full(n, INIT_B))
        self.c = self.rt.to_device(np.full(n, INIT_C))
        self.sum = self.rt.alloc(np.float64, 1)

    def copy(self) -> None:
        self._launch(KL.stream_copy, [self.n, self.a, self.c])

    def mul(self) -> None:
        self._launch(KL.stream_mul, [self.n, SCALAR, self.b, self.c])

    def add(self) -> None:
        self._launch(KL.stream_add, [self.n, self.a, self.b, self.c])

    def triad(self) -> None:
        self._launch(KL.stream_triad, [self.n, SCALAR, self.a, self.b, self.c])

    def dot(self) -> float:
        self.sum.copy_from_host(np.zeros(1))
        grid = min(256, (self.n + BLOCK - 1) // BLOCK)
        self._launch(KL.stream_dot, [self.n, self.a, self.b, self.sum],
                     grid=grid)
        return float(self.sum.copy_to_host()[0])

    def read_arrays(self):
        return (self.a.copy_to_host(), self.b.copy_to_host(),
                self.c.copy_to_host())

    def teardown(self) -> None:
        for arr in (self.a, self.b, self.c, self.sum):
            arr.free()


class _CudaAdapter(_RuntimeAdapter):
    via = "CUDA (nvcc)"
    toolchain = "nvcc"

    def _make_runtime(self):
        from repro.models.cuda import Cuda

        return Cuda(self.device, self.toolchain)

    def _launch(self, kern, args, grid=None):
        if grid is None:
            self.rt.launch_1d(kern, self.n, args)
        else:
            self.rt.launch_kernel(kern, (grid,), (BLOCK,), args)


class _CudaHipifyAdapter(_CudaAdapter):
    via = "CUDA -> HIPIFY -> hipcc"
    toolchain = "hipcc"

    def _make_runtime(self):
        from repro.models.cuda import Cuda
        from repro.translate import Hipify

        rt = Cuda(self.device, "hipcc")
        rt.translator = Hipify()
        return rt


class _HipAdapter(_RuntimeAdapter):
    via = "HIP (hipcc)"

    def _make_runtime(self):
        from repro.models.hip import Hip

        return Hip(self.device, "hipcc")

    def _launch(self, kern, args, grid=None):
        if grid is None:
            self.rt.launch_1d(kern, self.n, args)
        else:
            self.rt.launch_kernel(kern, (grid,), (BLOCK,), args)


class _SyclAdapter(_RuntimeAdapter):
    via = "SYCL (dpcpp)"

    def _make_runtime(self):
        from repro.models.sycl import SyclQueue

        return SyclQueue(self.device, "dpcpp")

    def _launch(self, kern, args, grid=None):
        from repro.models.sycl import NdRange, Range

        if grid is None:
            self.rt.parallel_for(Range(self.n), kern, args)
        else:
            self.rt.parallel_for(NdRange(grid * BLOCK, BLOCK), kern, args)


class _OpenMPAdapter(_RuntimeAdapter):
    _TOOLCHAINS = {Vendor.NVIDIA: "nvhpc", Vendor.AMD: "aomp",
                   Vendor.INTEL: "dpcpp"}

    @property
    def via(self):  # type: ignore[override]
        return f"OpenMP ({self._TOOLCHAINS[self.device.vendor]})"

    def _make_runtime(self):
        from repro.models.openmp import OpenMP

        return OpenMP(self.device, self._TOOLCHAINS[self.device.vendor])

    def _launch(self, kern, args, grid=None):
        if grid is None:
            self.rt.target_loop(self.n, kern, args)
        else:
            binary = self.rt.compile(
                [kern], ["omp:target", "omp:teams", "omp:distribute",
                         "omp:parallel_for", "omp:map", "omp:reduction"],
            )
            self.rt.launch(binary, kern.name, (grid,), (BLOCK,), args)


class _OpenACCAdapter(_RuntimeAdapter):
    _TOOLCHAINS = {Vendor.NVIDIA: "nvhpc", Vendor.AMD: "clacc"}

    @property
    def via(self):  # type: ignore[override]
        return f"OpenACC ({self._TOOLCHAINS[self.device.vendor]})"

    def _make_runtime(self):
        from repro.models.openacc import OpenACC

        return OpenACC(self.device, self._TOOLCHAINS[self.device.vendor])

    def _launch(self, kern, args, grid=None):
        if grid is None:
            self.rt.parallel_loop(self.n, kern, args)
        else:
            self.rt.parallel_loop(self.n, kern, args,
                                  reduction="+: sum", gang=grid, vector=BLOCK)


class _StdParAdapter(_RuntimeAdapter):
    _TOOLCHAINS = {Vendor.NVIDIA: "nvhpc", Vendor.AMD: "roc-stdpar",
                   Vendor.INTEL: "onedpl"}

    @property
    def via(self):  # type: ignore[override]
        return f"stdpar ({self._TOOLCHAINS[self.device.vendor]})"

    def _make_runtime(self):
        from repro.models.stdpar import StdPar

        return StdPar(self.device, self._TOOLCHAINS[self.device.vendor])

    def _launch(self, kern, args, grid=None):
        features = ["stdpar:transform"] if grid is None else ["stdpar:transform_reduce"]
        self.rt.launch_n(kern, self.n, args, features=features, grid=grid)


class _KokkosAdapter(_Adapter):
    via = "Kokkos"

    def setup(self) -> None:
        from repro.models.kokkos import Kokkos, deep_copy

        self.kk = (self.runtime_factory() if self.runtime_factory is not None
                   else Kokkos(self.device))
        self._deep_copy = deep_copy
        n = self.n
        self.a = self.kk.view("a", n)
        self.b = self.kk.view("b", n)
        self.c = self.kk.view("c", n)
        self.sum = self.kk.view("sum", 1)
        deep_copy(self.a, np.full(n, INIT_A))
        deep_copy(self.b, np.full(n, INIT_B))
        deep_copy(self.c, np.full(n, INIT_C))

    def _pf(self, kern, args, grid=None):
        from repro.models.kokkos import RangePolicy

        if grid is None:
            self.kk.parallel_for("stream", RangePolicy(self.n), kern, args)
        else:
            self.kk._launch_1d(kern, self.n, self.kk._args(args), grid=grid)

    def copy(self):
        self._pf(KL.stream_copy, [self.n, self.a, self.c])

    def mul(self):
        self._pf(KL.stream_mul, [self.n, SCALAR, self.b, self.c])

    def add(self):
        self._pf(KL.stream_add, [self.n, self.a, self.b, self.c])

    def triad(self):
        self._pf(KL.stream_triad, [self.n, SCALAR, self.a, self.b, self.c])

    def dot(self) -> float:
        self._deep_copy(self.sum, np.zeros(1))
        grid = min(256, (self.n + BLOCK - 1) // BLOCK)
        self._pf(KL.stream_dot, [self.n, self.a, self.b, self.sum], grid=grid)
        out = np.zeros(1)
        self._deep_copy(out, self.sum)
        return float(out[0])

    def read_arrays(self):
        out = []
        for view in (self.a, self.b, self.c):
            host = view.create_mirror_view()
            self._deep_copy(host, view)
            out.append(host)
        return tuple(out)

    def teardown(self):
        for view in (self.a, self.b, self.c, self.sum):
            view.free()


class _AlpakaAdapter(_Adapter):
    via = "Alpaka"

    def setup(self) -> None:
        from repro.models.alpaka import Alpaka

        self.acc = (self.runtime_factory() if self.runtime_factory is not None
                    else Alpaka(self.device))
        n = self.n
        self.a = self.acc.alloc_buf(n)
        self.b = self.acc.alloc_buf(n)
        self.c = self.acc.alloc_buf(n)
        self.sum = self.acc.alloc_buf(1)
        self.acc.memcpy_to(self.a, np.full(n, INIT_A))
        self.acc.memcpy_to(self.b, np.full(n, INIT_B))
        self.acc.memcpy_to(self.c, np.full(n, INIT_C))

    def _exec(self, kern, args, grid=None):
        from repro.models.alpaka import WorkDiv

        if grid is None:
            self.acc.exec_elements(self.n, kern, args)
        else:
            self.acc.exec(WorkDiv(grid, BLOCK), kern, args)

    def copy(self):
        self._exec(KL.stream_copy, [self.n, self.a, self.c])

    def mul(self):
        self._exec(KL.stream_mul, [self.n, SCALAR, self.b, self.c])

    def add(self):
        self._exec(KL.stream_add, [self.n, self.a, self.b, self.c])

    def triad(self):
        self._exec(KL.stream_triad, [self.n, SCALAR, self.a, self.b, self.c])

    def dot(self) -> float:
        self.acc.memcpy_to(self.sum, np.zeros(1))
        grid = min(256, (self.n + BLOCK - 1) // BLOCK)
        self._exec(KL.stream_dot, [self.n, self.a, self.b, self.sum], grid=grid)
        return float(self.acc.memcpy_from(self.sum)[0])

    def read_arrays(self):
        return (self.acc.memcpy_from(self.a), self.acc.memcpy_from(self.b),
                self.acc.memcpy_from(self.c))

    def teardown(self):
        for buf in (self.a, self.b, self.c, self.sum):
            buf.free()


class _DoConcurrentAdapter(_RuntimeAdapter):
    """Fortran ``do concurrent`` (description 12/27/41)."""

    _TOOLCHAINS = {Vendor.NVIDIA: "nvhpc", Vendor.INTEL: "ifx"}

    @property
    def via(self):  # type: ignore[override]
        tc = self._TOOLCHAINS.get(self.device.vendor, "?")
        return f"do concurrent ({tc})"

    def _make_runtime(self):
        from repro.models.stdpar import DoConcurrent

        return DoConcurrent(self.device, self._TOOLCHAINS[self.device.vendor])

    def _launch(self, kern, args, grid=None):
        if grid is None:
            self.rt.do_concurrent(self.n, kern, args)
        else:
            self.rt.do_concurrent(self.n, kern, args, reduce="+:sum")


class _PythonAdapter(_Adapter):
    _PACKAGES = {Vendor.NVIDIA: "cupy", Vendor.AMD: "cupy-rocm",
                 Vendor.INTEL: "dpnp"}

    @property
    def via(self):  # type: ignore[override]
        return f"Python ({self._PACKAGES[self.device.vendor]})"

    def setup(self) -> None:
        from repro.models.pymodels import make_package

        self.pkg = (self.runtime_factory()
                    if self.runtime_factory is not None else
                    make_package(self._PACKAGES[self.device.vendor],
                                 self.device))
        n = self.n
        self.a = self.pkg.asarray(np.full(n, INIT_A))
        self.b = self.pkg.asarray(np.full(n, INIT_B))
        self.c = self.pkg.asarray(np.full(n, INIT_C))
        self._copy_k = self.pkg.raw_kernel(KL.stream_copy)
        self._mul_k = self.pkg.raw_kernel(KL.stream_mul)
        self._add_k = self.pkg.raw_kernel(KL.stream_add)
        self._triad_k = self.pkg.raw_kernel(KL.stream_triad)

    def copy(self):
        self._copy_k(self.n, [self.n, self.a, self.c])

    def mul(self):
        self._mul_k(self.n, [self.n, SCALAR, self.b, self.c])

    def add(self):
        self._add_k(self.n, [self.n, self.a, self.b, self.c])

    def triad(self):
        self._triad_k(self.n, [self.n, SCALAR, self.a, self.b, self.c])

    def dot(self) -> float:
        return self.pkg.dot(self.a, self.b)

    def read_arrays(self):
        return (self.a.get(), self.b.get(), self.c.get())

    def teardown(self):
        for arr in (self.a, self.b, self.c):
            arr.free()


#: model name -> (adapter class, vendors it runs on)
BABELSTREAM_MODELS: dict[str, tuple[type, tuple[Vendor, ...]]] = {
    "CUDA": (_CudaAdapter, (Vendor.NVIDIA,)),
    "CUDA-hipified": (_CudaHipifyAdapter, (Vendor.AMD,)),
    "HIP": (_HipAdapter, (Vendor.AMD, Vendor.NVIDIA)),
    "SYCL": (_SyclAdapter, (Vendor.INTEL, Vendor.NVIDIA, Vendor.AMD)),
    "OpenMP": (_OpenMPAdapter, (Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL)),
    "OpenACC": (_OpenACCAdapter, (Vendor.NVIDIA, Vendor.AMD)),
    "stdpar": (_StdParAdapter, (Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL)),
    "Kokkos": (_KokkosAdapter, (Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL)),
    "Alpaka": (_AlpakaAdapter, (Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL)),
    "Python": (_PythonAdapter, (Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL)),
}


#: probe suite (as named by the route registry) -> adapter that can drive
#: a runtime of that family through the five stream kernels.  The perf
#: layer pairs this with ``runtime_factory=route.chain`` so any route —
#: translated, layered or native — runs the same benchmark.
SUITE_ADAPTERS: dict[str, type[_Adapter]] = {
    "cuda_cpp": _CudaAdapter,
    "cuda_fortran": _CudaAdapter,
    "hip_cpp": _HipAdapter,
    "hip_fortran": _HipAdapter,
    "sycl_cpp": _SyclAdapter,
    "openmp": _OpenMPAdapter,
    "openacc": _OpenACCAdapter,
    "stdpar_cpp": _StdParAdapter,
    "stdpar_fortran": _DoConcurrentAdapter,
    "kokkos": _KokkosAdapter,
    "alpaka": _AlpakaAdapter,
    "python": _PythonAdapter,
}


def available_models(vendor: Vendor) -> list[str]:
    """BabelStream implementations available for a vendor."""
    return [name for name, (_cls, vendors) in BABELSTREAM_MODELS.items()
            if vendor in vendors]


def _verify(n: int, reps: int, arrays, dot_value: float) -> bool:
    """Replay the kernel sequence on the host and compare."""
    a = np.full(n, INIT_A)
    b = np.full(n, INIT_B)
    c = np.full(n, INIT_C)
    expected_dot = 0.0
    for _ in range(reps):
        c[:] = a          # copy
        b[:] = SCALAR * c  # mul
        c[:] = a + b       # add
        a[:] = b + SCALAR * c  # triad
        expected_dot = float(a @ b)
    got_a, got_b, got_c = arrays
    return bool(
        np.allclose(got_a, a) and np.allclose(got_b, b)
        and np.allclose(got_c, c) and np.isclose(dot_value, expected_dot)
    )


#: Process-wide execution counters ("did a warm rerun actually run any
#: stream kernels?" is answered by diffing :func:`stream_totals`).
_TOTALS_LOCK = threading.Lock()
_TOTALS = {"runs": 0, "kernels": 0}


def stream_totals() -> dict[str, int]:
    """Snapshot of {runs, kernels} executed since the last reset."""
    with _TOTALS_LOCK:
        return dict(_TOTALS)


def reset_stream_totals() -> None:
    with _TOTALS_LOCK:
        _TOTALS["runs"] = 0
        _TOTALS["kernels"] = 0


def execute_stream(adapter: _Adapter, reps: int, model: str,
                   via: str | None = None) -> StreamResult:
    """Best-of-``reps`` timed run of the five kernels through ``adapter``.

    The shared core behind :func:`run_babelstream` (per-model entry
    point) and the perf-portability layer (per-route entry point, with
    an injected runtime chain).  Each adapter-level kernel dispatch
    bumps ``kernels_executed`` — the counter the warm-store tests
    assert is zero on a rerun.
    """
    device = adapter.device
    n = adapter.n
    adapter.setup()
    result = StreamResult(
        model=model, vendor=device.vendor, device=device.spec.name,
        via=via if via is not None else adapter.via, n=n,
    )

    def timed(fn) -> float:
        t0 = device.synchronize()
        fn()
        result.kernels_executed += 1
        return device.synchronize() - t0

    dot_value = 0.0
    for kernel in STREAM_KERNELS:
        result.best_seconds[kernel] = float("inf")
    for _ in range(reps):
        result.best_seconds["copy"] = min(result.best_seconds["copy"],
                                          timed(adapter.copy))
        result.best_seconds["mul"] = min(result.best_seconds["mul"],
                                         timed(adapter.mul))
        result.best_seconds["add"] = min(result.best_seconds["add"],
                                         timed(adapter.add))
        result.best_seconds["triad"] = min(result.best_seconds["triad"],
                                           timed(adapter.triad))
        t0 = device.synchronize()
        dot_value = adapter.dot()
        result.kernels_executed += 1
        result.best_seconds["dot"] = min(result.best_seconds["dot"],
                                         device.synchronize() - t0)
    result.verified = _verify(n, reps, adapter.read_arrays(), dot_value)
    adapter.teardown()
    with _TOTALS_LOCK:
        _TOTALS["runs"] += 1
        _TOTALS["kernels"] += result.kernels_executed
    return result


def run_babelstream(device: Device, model: str, n: int = 1 << 20,
                    reps: int = 3) -> StreamResult:
    """Run one model's BabelStream on one device."""
    try:
        adapter_cls, vendors = BABELSTREAM_MODELS[model]
    except KeyError:
        raise ApiError(f"unknown BabelStream model '{model}'") from None
    if device.vendor not in vendors:
        raise ApiError(
            f"BabelStream {model} is not available on {device.vendor.value}"
        )
    return execute_stream(adapter_cls(device, n), reps, model=model)
