"""repro — executable reproduction of Herten's GPU programming-model
vs. vendor compatibility overview (SC-W 2023).

The curated public facade.  ``__all__`` below is the supported surface;
everything else in the package is internal and may move without notice.
Heavyweight names load lazily (PEP 562), so ``import repro`` stays
cheap.

* Enums — :class:`Vendor`, :class:`Model`, :class:`Language`,
  :class:`SupportCategory`, … (the paper's Figure-1 axes and ratings).
* Compatibility matrix — :func:`build_matrix` (sequential reference),
  :func:`build_matrix_concurrent` (scheduled, store-backed),
  :func:`compare` (agreement vs. the published ratings).
* Workloads — :func:`run_babelstream` / :class:`StreamResult` (the five
  McIntosh-Smith stream kernels on a simulated device).
* Performance portability — :func:`run_perf_matrix`,
  :func:`build_perf_matrix`, :class:`PerfParams`,
  :func:`portability_report`, :func:`pennycook_metric`.
* Service — :class:`MatrixService`, :class:`InProcessClient`,
  :class:`HttpClient`, :class:`MatrixClient`, :func:`make_server`,
  :class:`ResultStore`, :class:`MetricsRegistry`,
  :class:`ServiceError`, :data:`SCHEMA_VERSION`.

Deprecation policy: a moved or renamed public name keeps working for
one release behind a shim that emits a single :class:`DeprecationWarning`
(e.g. ``repro.service.server.ServiceError``, which moved to
``repro.service.api`` in the versioned-API redesign).
"""

import importlib

from repro._version import __version__
from repro.enums import (
    ISA,
    Language,
    Maturity,
    Mechanism,
    Model,
    Provider,
    SupportCategory,
    Vendor,
)

#: Lazily-resolved public names -> defining module.
_LAZY = {
    # core: the compatibility matrix and its evaluation
    "CompatibilityMatrix": "repro.core.matrix",
    "build_matrix": "repro.core.matrix",
    "compare": "repro.core.report",
    "all_routes": "repro.core.routes",
    "routes_for": "repro.core.routes",
    # workloads
    "StreamResult": "repro.workloads.babelstream",
    "run_babelstream": "repro.workloads.babelstream",
    # performance portability
    "PerfMatrix": "repro.perfport",
    "PerfParams": "repro.perfport",
    "build_perf_matrix": "repro.perfport",
    "pennycook_metric": "repro.perfport",
    "portability_report": "repro.perfport",
    "run_perf_matrix": "repro.perfport",
    # service
    "SCHEMA_VERSION": "repro.service",
    "HttpClient": "repro.service",
    "InProcessClient": "repro.service",
    "MatrixClient": "repro.service",
    "MatrixService": "repro.service",
    "MetricsRegistry": "repro.service",
    "ResultStore": "repro.service",
    "ServiceError": "repro.service",
    "build_matrix_concurrent": "repro.service",
    "make_server": "repro.service",
}

__all__ = sorted((
    "ISA",
    "Language",
    "Maturity",
    "Mechanism",
    "Model",
    "Provider",
    "SupportCategory",
    "Vendor",
    "__version__",
    *_LAZY,
))


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    value = getattr(importlib.import_module(target), name)
    globals()[name] = value  # cache: resolve each name once
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
