"""repro — executable reproduction of Herten's GPU programming-model
vs. vendor compatibility overview (SC-W 2023).

Public API highlights:

* :mod:`repro.gpu` — simulated AMD/Intel/NVIDIA devices.
* :mod:`repro.models` — executable embedded versions of CUDA, HIP, SYCL,
  OpenMP, OpenACC, standard parallelism, Kokkos, Alpaka, and the Python
  GPU packages.
* :mod:`repro.translate` — HIPIFY/SYCLomatic/GPUFORT/Clacc/chipStar-like
  source translators.
* :mod:`repro.core` — the paper's contribution: the six-category support
  rating methodology, the probe-derived compatibility matrix, and the
  Figure 1 renderers.
"""

from repro._version import __version__  # noqa: F401
from repro.enums import (  # noqa: F401
    ISA,
    Language,
    Maturity,
    Mechanism,
    Model,
    Provider,
    SupportCategory,
    Vendor,
)
