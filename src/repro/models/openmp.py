"""OpenMP target offloading (descriptions 9/10/24/25/38/39).

The embedded model keeps OpenMP's directive character: the programmatic
API assembles real directive strings ("``target teams distribute
parallel for map(to: x) reduction(+: acc)``"), runs them through
:func:`parse_directive`, and derives the feature tags from the parsed
clauses — so an unsupported clause fails in the same place it would
with a real compiler frontend.

Feature coverage per compiler follows §4: NVHPC and AOMP implement 4.5
plus a subset of 5.0; Intel implements "all 4.5 and most 5.0/5.1"; GCC
implements 4.5 entirely with 5.x in progress; Clang adds selected
5.0/5.1 features; Cray CE sits between.
"""

from __future__ import annotations

import contextlib
import re
from dataclasses import dataclass, field

import numpy as np

from repro import kernels as KL
from repro.enums import Language, Model
from repro.errors import ApiError, DirectiveError
from repro.frontends.kernel_dsl import KernelFn
from repro.kernels import BLOCK
from repro.models.base import DeviceArray, OffloadRuntime

#: Directive keywords -> feature tags.  Compound constructs contribute
#: every constituent's tag (``target teams distribute parallel for``).
_CONSTRUCT_TAGS = {
    "target": "omp:target",
    "teams": "omp:teams",
    "distribute": "omp:distribute",
    "parallel": "omp:parallel_for",
    "for": "omp:parallel_for",
    "do": "omp:parallel_for",  # Fortran spelling
    "simd": "omp:simd",
    "loop": "omp:loop",
    "metadirective": "omp:metadirective",
    "masked": "omp:masked",
    "interop": "omp:interop",
    "assume": "omp:assume",
    "assumes": "omp:assume",
}

_CLAUSE_TAGS = {
    "map": "omp:map",
    "reduction": "omp:reduction",
    "collapse": "omp:collapse",
    "device": "omp:target",
    "num_teams": "omp:teams",
    "thread_limit": "omp:teams",
    "when": "omp:metadirective",
    "otherwise": "omp:metadirective",
    "default": "omp:metadirective",
}

_CLAUSE_RE = re.compile(r"(\w+)\s*(\(([^()]*(\([^()]*\))?[^()]*)\))?")


@dataclass
class Directive:
    """A parsed OpenMP directive."""

    text: str
    constructs: list[str]
    clauses: dict[str, str] = field(default_factory=dict)
    tags: frozenset[str] = frozenset()


def parse_directive(text: str) -> Directive:
    """Parse ``#pragma omp ...`` / ``!$omp ...`` content into tags.

    ``text`` excludes the sentinel, e.g. ``"target teams distribute
    parallel for map(to: x) reduction(+: acc)"``.  Unknown constructs or
    clauses raise :class:`~repro.errors.DirectiveError`.
    """
    tags: set[str] = set()
    constructs: list[str] = []
    clauses: dict[str, str] = {}
    pos = 0
    stripped = text.strip()
    while pos < len(stripped):
        match = _CLAUSE_RE.match(stripped, pos)
        if match is None or match.start() != pos:
            raise DirectiveError(f"cannot parse directive at: '{stripped[pos:]}'")
        word = match.group(1)
        paren = match.group(3)
        if paren is not None:
            if word not in _CLAUSE_TAGS:
                raise DirectiveError(f"unknown OpenMP clause '{word}'")
            clauses[word] = paren.strip()
            tags.add(_CLAUSE_TAGS[word])
        else:
            if word not in _CONSTRUCT_TAGS:
                raise DirectiveError(f"unknown OpenMP construct '{word}'")
            constructs.append(word)
            tags.add(_CONSTRUCT_TAGS[word])
        pos = match.end()
        while pos < len(stripped) and stripped[pos] in " ,\t":
            pos += 1
    if not constructs:
        raise DirectiveError(f"directive has no construct: '{text}'")
    return Directive(text=stripped, constructs=constructs, clauses=clauses,
                     tags=frozenset(tags))


class _TargetData:
    """A structured ``target data`` region."""

    def __init__(self, runtime: "OpenMP", to, tofrom, alloc):
        self.runtime = runtime
        self._to = list(to)
        self._tofrom = list(tofrom)
        self._alloc = list(alloc)
        self._map: dict[int, DeviceArray] = {}

    def __enter__(self) -> "_TargetData":
        for host in self._to + self._tofrom:
            self._map[id(host)] = self.runtime.to_device(host)
        for host in self._alloc:
            self._map[id(host)] = self.runtime.alloc(host.dtype, host.size)
        return self

    def device(self, host: np.ndarray) -> DeviceArray:
        try:
            return self._map[id(host)]
        except KeyError:
            raise ApiError("array is not mapped in this target data region") from None

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            for host in self._tofrom:
                np.copyto(host.reshape(-1), self._map[id(host)].copy_to_host())
        for arr in self._map.values():
            arr.free()


class OpenMP(OffloadRuntime):
    """OpenMP offload runtime bound to one device + compiler."""

    MODEL = Model.OPENMP
    LANGUAGES = (Language.CPP, Language.FORTRAN)
    TAG_PREFIX = "omp"
    DEFAULT_TOOLCHAIN = "clang"
    DISPATCH_OVERHEAD_S = 1.0e-6  # target-region bookkeeping

    _BASE = "target teams distribute parallel for"

    def __init__(self, device, toolchain=None, language=Language.CPP):
        super().__init__(device, toolchain, language)
        self._usm = False
        self._assumptions: list[str] = []

    @property
    def sentinel(self) -> str:
        """The directive sentinel of the bound language."""
        return "!$omp" if self.language is Language.FORTRAN else "#pragma omp"

    def _base_directive(self) -> str:
        if self.language is Language.FORTRAN:
            return "target teams distribute parallel do"
        return self._BASE

    def _offload(self, directive_text: str, kernelfn: KernelFn, grid, block, args):
        directive = parse_directive(directive_text)
        tags = set(directive.tags)
        if self._usm:
            tags.add("omp:usm")
        if self._assumptions:
            tags.add("omp:assume")
        binary = self.compile([kernelfn], sorted(tags))
        return self.launch(binary, kernelfn.name, grid, block, args)

    # -- directive-shaped public API --------------------------------------------

    def target_data(self, to=(), tofrom=(), alloc=()) -> _TargetData:
        """``{sentinel} target data map(to:...) map(tofrom:...)``."""
        parse_directive("target map(to: ...) map(tofrom: ...)")
        return _TargetData(self, to, tofrom, alloc)

    def target_loop(self, n: int, kernelfn: KernelFn, args,
                    reduction: str | None = None, simd: bool = False,
                    construct: str | None = None):
        """``target teams distribute parallel for`` over ``n`` iterations.

        ``construct="loop"`` switches to the 5.0 ``loop`` construct;
        ``reduction`` takes the clause content (e.g. ``"+: acc"``).
        """
        parts = [construct and f"target teams {construct}" or self._base_directive()]
        parts.append("map(tofrom: data)")
        if reduction:
            parts.append(f"reduction({reduction})")
        if simd:
            parts[0] += " simd"
        grid = max(1, (n + BLOCK - 1) // BLOCK)
        return self._offload(" ".join(parts), kernelfn, (grid,), (BLOCK,), args)

    def target_loop_2d(self, nx: int, ny: int, kernelfn: KernelFn, args):
        """Collapsed 2-D loop nest: ``... parallel for collapse(2)``."""
        text = f"{self._base_directive()} collapse(2) map(tofrom: data)"
        gx = max(1, (nx + 15) // 16)
        gy = max(1, (ny + 15) // 16)
        directive = parse_directive(text)
        binary = self.compile([kernelfn], sorted(directive.tags))
        return self.launch(binary, kernelfn.name, (gx, gy), (16, 16), args)

    def target_reduce_sum(self, n: int, data: DeviceArray) -> float:
        """``... parallel for reduction(+: acc)`` summing a mapped array."""
        out = self.alloc(np.float64, 1)
        grid = min(256, max(1, (n + BLOCK - 1) // BLOCK))
        text = f"{self._base_directive()} reduction(+: acc) map(to: data)"
        directive = parse_directive(text)
        binary = self.compile([KL.reduce_sum], sorted(directive.tags))
        self.launch(binary, "reduce_sum", (grid,), (BLOCK,), [n, data, out])
        result = float(out.copy_to_host()[0])
        out.free()
        return result

    def metadirective(self, n: int, device_kernel: KernelFn, args,
                      host_fallback=None):
        """``metadirective when(device={kind(gpu)}: ...) otherwise(...)``.

        On the simulated system a GPU is always present, so the device
        variant is selected; the host fallback exists for API fidelity.
        """
        text = ("metadirective when(device: target teams) "
                "otherwise(parallel)")
        directive = parse_directive(text)
        tags = set(directive.tags) | parse_directive(self._base_directive()).tags
        binary = self.compile([device_kernel], sorted(tags))
        grid = max(1, (n + BLOCK - 1) // BLOCK)
        return self.launch(binary, device_kernel.name, (grid,), (BLOCK,), args)

    def declare_variant(self, base_kernel: KernelFn,
                        variants: dict[str, KernelFn]) -> KernelFn:
        """``declare variant match(device=...)``: pick per device vendor."""
        chosen = variants.get(self.device.vendor.value.lower(), base_kernel)
        # Compiling with the tag is what real declare-variant support gates.
        self.compile([chosen], ["omp:target", "omp:declare_variant"])
        return chosen

    def requires_unified_shared_memory(self) -> None:
        """``requires unified_shared_memory`` (OpenMP 5.0)."""
        self._usm = True

    def shared_alloc(self, dtype, count) -> DeviceArray:
        if not self._usm:
            raise ApiError("call requires_unified_shared_memory() first")
        return DeviceArray(self, dtype, count, managed=True)

    @contextlib.contextmanager
    def assume(self, assumption: str):
        """``assume`` directive scope (OpenMP 5.1)."""
        parse_directive("assume")
        self._assumptions.append(assumption)
        try:
            yield
        finally:
            self._assumptions.pop()

    def masked_fill(self, value: float, out: DeviceArray):
        """``masked`` construct (5.1): one thread writes the sentinel."""
        directive = parse_directive("target teams masked")
        binary = self.compile([KL.fill], sorted(directive.tags))
        return self.launch(binary, "fill", (1,), (1,), [1, value, out])

    # ======================================================================
    # Probe surface
    # ======================================================================

    def probe_target(self, n: int = 4096) -> None:
        """Base combined construct with mapped data."""
        rng = np.random.default_rng(5)
        x_h, y_h = rng.random(n), rng.random(n)
        expect = 2.0 * x_h + y_h
        with self.target_data(to=[x_h], tofrom=[y_h]) as region:
            self.target_loop(
                n, KL.axpy, [n, 2.0, region.device(x_h), region.device(y_h)]
            )
        if not np.allclose(y_h, expect):
            raise ApiError("omp target axpy wrong")

    def probe_reduction(self, n: int = 8192) -> None:
        x = self.to_device(np.full(n, 0.25))
        if not np.isclose(self.target_reduce_sum(n, x), 0.25 * n):
            raise ApiError("omp reduction wrong")
        x.free()

    def probe_collapse(self, nx: int = 64, ny: int = 64) -> None:
        grid_h = np.zeros((ny, nx))
        grid_h[0, :] = 1.0
        inp = self.to_device(grid_h)
        out = self.to_device(grid_h)
        self.target_loop_2d(nx, ny, KL.jacobi2d, [nx, ny, inp, out])
        got = out.copy_to_host().reshape(ny, nx)
        if not np.isclose(got[1, 1], 0.25 * grid_h[0, 1]):
            raise ApiError("omp collapse(2) stencil wrong")
        inp.free(); out.free()

    def probe_simd(self, n: int = 4096) -> None:
        x = self.to_device(np.ones(n))
        self.target_loop(n, KL.scale_inplace, [n, 2.0, x], simd=True)
        if not np.allclose(x.copy_to_host(), 2.0):
            raise ApiError("omp simd result wrong")
        x.free()

    def probe_loop_construct(self, n: int = 4096) -> None:
        x = self.to_device(np.ones(n))
        self.target_loop(n, KL.scale_inplace, [n, 3.0, x], construct="loop")
        if not np.allclose(x.copy_to_host(), 3.0):
            raise ApiError("omp loop construct result wrong")
        x.free()

    def probe_metadirective(self, n: int = 2048) -> None:
        x = self.to_device(np.ones(n))
        self.metadirective(n, KL.scale_inplace, [n, 2.0, x])
        if not np.allclose(x.copy_to_host(), 2.0):
            raise ApiError("omp metadirective result wrong")
        x.free()

    def probe_declare_variant(self, n: int = 2048) -> None:
        chosen = self.declare_variant(KL.scale_inplace, {})
        x = self.to_device(np.ones(n))
        self.target_loop(n, chosen, [n, 2.0, x])
        if not np.allclose(x.copy_to_host(), 2.0):
            raise ApiError("omp declare variant result wrong")
        x.free()

    def probe_usm(self, n: int = 1024) -> None:
        self.requires_unified_shared_memory()
        arr = self.shared_alloc(np.float64, n)
        arr.view()[:] = 1.0
        self.target_loop(n, KL.scale_inplace, [n, 6.0, arr])
        if not np.allclose(arr.view(), 6.0):
            raise ApiError("omp usm result wrong")
        arr.free()
        self._usm = False

    def probe_assume(self, n: int = 1024) -> None:
        x = self.to_device(np.ones(n))
        with self.assume("omp_no_nested_parallelism"):
            self.target_loop(n, KL.scale_inplace, [n, 2.0, x])
        if not np.allclose(x.copy_to_host(), 2.0):
            raise ApiError("omp assume-scoped loop wrong")
        x.free()

    def probe_masked(self) -> None:
        out = self.alloc(np.float64, 4)
        self.masked_fill(7.0, out)
        got = out.copy_to_host()
        if not (got[0] == 7.0 and np.all(got[1:] == 0.0)):
            raise ApiError("omp masked wrote wrong lanes")
        out.free()
