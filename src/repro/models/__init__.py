"""Executable embedded versions of the GPU programming models.

One subpackage per column of Figure 1:

* :mod:`repro.models.cuda` — the CUDA runtime API + CUDA Fortran.
* :mod:`repro.models.hip` — HIP (mirroring CUDA) + hipfort.
* :mod:`repro.models.sycl` — SYCL queues/buffers/USM (DPC++/Open SYCL).
* :mod:`repro.models.openmp` — OpenMP target offloading with a
  directive parser and per-compiler standard-version coverage.
* :mod:`repro.models.openacc` — OpenACC parallel/kernels/data regions.
* :mod:`repro.models.stdpar` — C++ pSTL algorithms and Fortran
  ``do concurrent``.
* :mod:`repro.models.kokkos` — views, policies, parallel patterns.
* :mod:`repro.models.alpaka` — accelerators, work divisions, buffers.
* :mod:`repro.models.pymodels` — the Python layer (CuPy-like arrays,
  Numba-like JIT, the Intel dpctl/dpnp stack, PyHIP-like bindings).

All models share :mod:`repro.models.base`'s offload core (compile
through a toolchain, launch on a simulated device) and the kernel
library in :mod:`repro.kernels` — mirroring how the real models share
LLVM and differ in API surface, language rules, and feature coverage.
"""

from repro.models.base import DeviceArray, OffloadRuntime  # noqa: F401
