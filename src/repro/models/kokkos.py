"""Kokkos: performance-portable C++ abstractions (descriptions 13/14/28/42).

The runtime reproduces the Kokkos 3/4 core: :class:`View` (device data
with host mirrors and ``deep_copy``), execution policies
(:class:`RangePolicy`, :class:`MDRangePolicy`, :class:`TeamPolicy`),
and the parallel patterns ``parallel_for`` / ``parallel_reduce`` /
``parallel_scan``.

Backend selection mirrors the real library: a CUDA backend (nvcc or
Clang), a HIP/ROCm backend, an OpenMP-offload backend, and the
*experimental* SYCL backend used for Intel GPUs — each delegating
compilation to the corresponding model runtime and toolchain, so a
Kokkos program on a simulated MI250X genuinely goes Kokkos → HIP →
hipcc → AMDGCN.

:class:`FLCL` models the Fortran Language Compatibility Layer
(description 14): views and the basic patterns are reachable from
Fortran, while MDRange/Team policies and scans are not exposed — the
measured gap behind its *limited support* rating.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels as KL
from repro.enums import Language, Model, Vendor
from repro.errors import ApiError
from repro.frontends.kernel_dsl import KernelFn
from repro.gpu.device import Device
from repro.kernels import BLOCK
from repro.models.base import DeviceArray
from repro.models.cuda import Cuda
from repro.models.hip import Hip
from repro.models.openmp import OpenMP
from repro.models.sycl import Range as SyclRange
from repro.models.sycl import NdRange, SyclQueue

#: backend name -> (runtime class, default toolchain, experimental?)
BACKENDS = {
    "cuda": (Cuda, "nvcc", False),
    "hip": (Hip, "hipcc", False),
    "sycl": (SyclQueue, "dpcpp", True),  # experimental backend (descr. 42)
    "openmp": (OpenMP, "clang", False),
}

_DEFAULT_BACKEND = {
    Vendor.NVIDIA: "cuda",
    Vendor.AMD: "hip",
    Vendor.INTEL: "sycl",
}


@dataclass(frozen=True)
class RangePolicy:
    """1-D iteration range ``[begin, end)``."""

    end: int
    begin: int = 0

    @property
    def extent(self) -> int:
        return self.end - self.begin


@dataclass(frozen=True)
class MDRangePolicy:
    """2-D iteration space (rank-2 is what the probes exercise)."""

    extents: tuple[int, int]


@dataclass(frozen=True)
class TeamPolicy:
    """League of teams with per-team scratch (shared) memory."""

    league_size: int
    team_size: int


class View:
    """A Kokkos view: named device data with a host mirror."""

    def __init__(self, kokkos: "Kokkos", label: str, count: int,
                 dtype=np.float64):
        self.label = label
        self.kokkos = kokkos
        self.device_array: DeviceArray = kokkos._rt.alloc(np.dtype(dtype), count)
        self.count = count
        self.dtype = np.dtype(dtype)

    def create_mirror_view(self) -> np.ndarray:
        """Host-side mirror (initially zero, like Kokkos default-init)."""
        return np.zeros(self.count, dtype=self.dtype)

    @property
    def addr(self) -> int:
        return self.device_array.addr

    def free(self) -> None:
        self.device_array.free()


def deep_copy(dst: "View | np.ndarray", src: "View | np.ndarray") -> None:
    """Kokkos::deep_copy between a view and a host mirror (either way)."""
    if isinstance(dst, View) and isinstance(src, np.ndarray):
        dst.device_array.copy_from_host(src)
    elif isinstance(dst, np.ndarray) and isinstance(src, View):
        np.copyto(dst.reshape(-1), src.device_array.copy_to_host())
    elif isinstance(dst, View) and isinstance(src, View):
        dst.kokkos._rt.device.memcpy_d2d(
            dst.device_array.allocation, src.device_array.allocation,
            min(dst.device_array.nbytes, src.device_array.nbytes),
        )
    else:
        raise ApiError("deep_copy needs at least one View")


class Kokkos:
    """A Kokkos execution-space instance bound to one device."""

    MODEL = Model.KOKKOS
    language = Language.CPP

    def __init__(self, device: Device, backend: str | None = None,
                 toolchain: str | None = None):
        if backend is None:
            backend = _DEFAULT_BACKEND[device.vendor]
        try:
            runtime_cls, default_tc, experimental = BACKENDS[backend]
        except KeyError:
            raise ApiError(
                f"unknown Kokkos backend '{backend}'; known: {sorted(BACKENDS)}"
            ) from None
        self.backend = backend
        self.experimental_backend = experimental
        self._rt = runtime_cls(device, toolchain or default_tc)
        # Kokkos adds dispatch abstraction cost on top of its backend.
        self._rt.dispatch_overhead_s += 0.6e-6
        self.device = device

    # -- data -------------------------------------------------------------------

    def view(self, label: str, count: int, dtype=np.float64) -> View:
        return View(self, label, count, dtype)

    # -- kernel dispatch through the backend ---------------------------------

    def _args(self, args) -> list:
        return [a.addr if isinstance(a, View) else a for a in args]

    def _launch_1d(self, kernelfn: KernelFn, n: int, args,
                   grid: int | None = None) -> None:
        args = self._args(args)
        rt = self._rt
        if isinstance(rt, (Cuda, Hip)):
            if grid is None:
                rt.launch_1d(kernelfn, n, args)
            else:
                rt.launch_kernel(kernelfn, (grid,), (BLOCK,), args)
        elif isinstance(rt, SyclQueue):
            if grid is None:
                rt.parallel_for(SyclRange(n), kernelfn, args)
            else:
                rt.parallel_for(NdRange(grid * BLOCK, BLOCK), kernelfn, args)
            rt.wait()
        else:  # OpenMP backend
            if grid is None:
                rt.target_loop(n, kernelfn, args)
            else:
                binary = rt.compile([kernelfn], ["omp:target", "omp:teams",
                                                 "omp:parallel_for", "omp:map"])
                rt.launch(binary, kernelfn.name, (grid,), (BLOCK,), args)

    def parallel_for(self, label: str, policy, functor: KernelFn, args) -> None:
        """Dispatch ``functor`` over the policy's iteration space."""
        if isinstance(policy, int):
            policy = RangePolicy(policy)
        if isinstance(policy, RangePolicy):
            self._launch_1d(functor, policy.extent, args)
        elif isinstance(policy, MDRangePolicy):
            ny, nx = policy.extents
            rt = self._rt
            resolved = self._args(args)
            if isinstance(rt, OpenMP):
                rt.target_loop_2d(nx, ny, functor, resolved)
            else:
                binary = rt.compile(
                    [functor],
                    rt._kernel_tags() if isinstance(rt, (Cuda, Hip))
                    else [rt.tag("queues"), rt.tag("nd_range")],
                )
                gx, gy = (nx + 15) // 16, (ny + 15) // 16
                rt.launch(binary, functor.name, (gx, gy), (16, 16), resolved)
        elif isinstance(policy, TeamPolicy):
            rt = self._rt
            resolved = self._args(args)
            binary = rt.compile(
                [functor],
                rt._kernel_tags() if isinstance(rt, (Cuda, Hip))
                else ([rt.tag("queues"), rt.tag("nd_range")]
                      if isinstance(rt, SyclQueue)
                      else ["omp:target", "omp:teams", "omp:parallel_for"]),
            )
            rt.launch(binary, functor.name, (policy.league_size,),
                      (policy.team_size,), resolved)
        else:
            raise ApiError(f"unsupported policy {policy!r}")

    def parallel_reduce(self, label: str, policy, view: View) -> float:
        """Sum-reduce a view over a range policy."""
        if isinstance(policy, int):
            policy = RangePolicy(policy)
        n = policy.extent
        out = self._rt.alloc(np.float64, 1)
        grid = min(256, max(1, (n + BLOCK - 1) // BLOCK))
        self._launch_1d(KL.reduce_sum, n, [n, view.addr, out.addr], grid=grid)
        result = float(out.copy_to_host()[0])
        out.free()
        return result

    def parallel_scan(self, label: str, view: View) -> None:
        """Inclusive prefix sum over a view (Hillis-Steele ladder)."""
        n = view.count
        tmp = self._rt.alloc(np.float64, n)
        src_addr, dst_addr = view.addr, tmp.addr
        offset = 1
        while offset < n:
            self._launch_1d(KL.scan_step, n, [n, offset, src_addr, dst_addr])
            src_addr, dst_addr = dst_addr, src_addr
            offset *= 2
        if src_addr != view.addr:
            self._rt.device.memcpy_d2d(
                view.device_array.allocation, tmp.allocation,
                view.device_array.nbytes,
            )
        tmp.free()

    def fence(self) -> None:
        self._rt.synchronize()

    # ======================================================================
    # Probe surface
    # ======================================================================

    def probe_range_for(self, n: int = 4096) -> None:
        v = self.view("x", n)
        host = np.ones(n)
        deep_copy(v, host)
        self.parallel_for("scale", RangePolicy(n), KL.scale_inplace,
                          [n, 2.0, v])
        self.fence()
        out = v.create_mirror_view()
        deep_copy(out, v)
        if not np.allclose(out, 2.0):
            raise ApiError("kokkos range parallel_for wrong")
        v.free()

    def probe_reduce(self, n: int = 8192) -> None:
        v = self.view("x", n)
        deep_copy(v, np.full(n, 0.5))
        if not np.isclose(self.parallel_reduce("sum", RangePolicy(n), v), 0.5 * n):
            raise ApiError("kokkos parallel_reduce wrong")
        v.free()

    def probe_views(self, n: int = 2048) -> None:
        a, b = self.view("a", n), self.view("b", n)
        deep_copy(a, np.arange(n, dtype=np.float64))
        deep_copy(b, a)
        out = b.create_mirror_view()
        deep_copy(out, b)
        if not np.allclose(out, np.arange(n)):
            raise ApiError("kokkos deep_copy chain wrong")
        a.free(); b.free()

    def probe_mdrange(self, nx: int = 64, ny: int = 64) -> None:
        host = np.zeros((ny, nx))
        host[0, :] = 4.0
        inp, out = self.view("in", nx * ny), self.view("out", nx * ny)
        deep_copy(inp, host)
        deep_copy(out, host)
        self.parallel_for("stencil", MDRangePolicy((ny, nx)), KL.jacobi2d,
                          [nx, ny, inp, out])
        self.fence()
        mirror = out.create_mirror_view()
        deep_copy(mirror, out)
        if not np.isclose(mirror.reshape(ny, nx)[1, 1], 1.0):
            raise ApiError("kokkos MDRange stencil wrong")
        inp.free(); out.free()

    def probe_teams(self, n: int = 4096) -> None:
        v = self.view("x", n)
        deep_copy(v, np.ones(n))
        out = self.view("sum", 1)
        self.parallel_for("team-reduce", TeamPolicy(16, 256), KL.reduce_sum,
                          [n, v, out])
        self.fence()
        mirror = out.create_mirror_view()
        deep_copy(mirror, out)
        if not np.isclose(mirror[0], n):
            raise ApiError("kokkos TeamPolicy reduction wrong")
        v.free(); out.free()

    def probe_scan(self, n: int = 1024) -> None:
        host = np.random.default_rng(37).random(n)
        v = self.view("x", n)
        deep_copy(v, host)
        self.parallel_scan("scan", v)
        self.fence()
        mirror = v.create_mirror_view()
        deep_copy(mirror, v)
        if not np.allclose(mirror, np.cumsum(host)):
            raise ApiError("kokkos parallel_scan wrong")
        v.free()


class FLCL(Kokkos):
    """The Kokkos Fortran Language Compatibility Layer (description 14).

    Exposes views, ``parallel_for`` over ranges, and reductions to
    Fortran; the richer policies and scans of Kokkos C++ are not part
    of the layer.
    """

    language = Language.FORTRAN

    #: Probe methods the layer cannot run, by construction — the static
    #: route-evidence analyzer reads this instead of re-deriving it from
    #: the ApiErrors below.
    UNSUPPORTED_PROBES = frozenset(
        {"probe_mdrange", "probe_teams", "probe_scan"}
    )

    def parallel_for(self, label, policy, functor, args):
        if isinstance(policy, (MDRangePolicy, TeamPolicy)):
            raise ApiError("FLCL does not expose MDRange/Team policies")
        return super().parallel_for(label, policy, functor, args)

    def parallel_scan(self, label, view):
        raise ApiError("FLCL does not expose parallel_scan")
