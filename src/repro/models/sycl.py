"""SYCL: the C++17 single-source model (descriptions 5/6/21/35).

The central object is the :class:`SyclQueue`, with the two memory
styles real SYCL offers: **buffers/accessors** (RAII write-back) and
**USM** (``malloc_device``/``malloc_shared``).  Kernels launch through
``parallel_for`` over a :class:`Range` or an :class:`NdRange` (which
adds work-group control, local memory, and barriers).

SYCL is C++-only by nature — constructing a runtime with
``Language.FORTRAN`` raises :class:`~repro.errors.LanguageError`
(description 6: "no pre-made bindings are available").

Implementations: ``dpcpp`` (Intel's LLVM-based compiler; SPIR-V
natively, PTX/AMDGCN through plugins), ``opensycl`` (the independent
implementation, previously hipSYCL), and the retired ``computecpp``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels as KL
from repro.enums import Language, Model
from repro.errors import ApiError
from repro.frontends.kernel_dsl import KernelFn
from repro.kernels import BLOCK
from repro.models.base import DeviceArray, OffloadRuntime


@dataclass(frozen=True)
class Range:
    """A 1-D global iteration range."""

    size: int


@dataclass(frozen=True)
class NdRange:
    """Global size plus explicit work-group size."""

    global_size: int
    local_size: int

    def __post_init__(self):
        if self.global_size % self.local_size:
            raise ApiError(
                "nd_range global size must be a multiple of the local size"
            )


class SyclBuffer:
    """Buffer + accessor semantics: device copy with host write-back.

    Use as a context manager; the device result is written back to the
    wrapped host array when the buffer is closed, as in SYCL's RAII.
    """

    def __init__(self, queue: "SyclQueue", host: np.ndarray):
        self.queue = queue
        self.host = host
        self.device_array = queue.to_device(host)
        self._open = True
        queue._note_feature("buffers")
        queue._note_feature("accessors")

    @property
    def addr(self) -> int:
        if not self._open:
            raise ApiError("buffer used after close")
        return self.device_array.addr

    def close(self) -> None:
        if self._open:
            np.copyto(
                self.host.reshape(-1), self.device_array.copy_to_host(),
                casting="unsafe",
            )
            self.device_array.free()
            self._open = False

    def abandon(self) -> None:
        """Release the device copy without writing back."""
        if self._open:
            self.device_array.free()
            self._open = False

    def __enter__(self) -> "SyclBuffer":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abandon()


class SyclEvent:
    """Wraps a stream event pair for profiling-style queries."""

    def __init__(self, start, end):
        self._start = start
        self._end = end

    def elapsed_seconds(self) -> float:
        return self._end.elapsed_since(self._start)


class SyclQueue(OffloadRuntime):
    """An in-order SYCL queue bound to one simulated device."""

    MODEL = Model.SYCL
    LANGUAGES = (Language.CPP,)
    TAG_PREFIX = "sycl"
    DEFAULT_TOOLCHAIN = "dpcpp"
    DISPATCH_OVERHEAD_S = 0.3e-6  # command-group submission cost

    def __init__(self, device, toolchain=None, language=Language.CPP):
        super().__init__(device, toolchain, language)
        self._stream = device.default_stream
        self._features_seen: set[str] = {self.tag("queues")}

    def _note_feature(self, suffix: str) -> None:
        self._features_seen.add(self.tag(suffix))

    def _launch_features(self, extra: tuple[str, ...] = ()) -> tuple[str, ...]:
        return tuple(sorted(self._features_seen)) + extra

    # -- USM --------------------------------------------------------------------

    def malloc_device(self, dtype: np.dtype, count: int) -> DeviceArray:
        self._note_feature("usm")
        return self.alloc(dtype, count)

    def malloc_shared(self, dtype: np.dtype, count: int) -> DeviceArray:
        self._note_feature("usm")
        return DeviceArray(self, dtype, count, managed=True)

    def memcpy(self, dst: DeviceArray, src: np.ndarray) -> None:
        dst.copy_from_host(src)

    def buffer(self, host: np.ndarray) -> SyclBuffer:
        return SyclBuffer(self, host)

    # -- kernel submission ---------------------------------------------------

    def parallel_for(self, rng: Range | NdRange | int, kernelfn: KernelFn,
                     args, profile: bool = False):
        """Submit a kernel over a range; returns a SyclEvent if profiling."""
        if isinstance(rng, int):
            rng = Range(rng)
        resolved = [a.addr if isinstance(a, SyclBuffer) else a for a in args]
        if isinstance(rng, NdRange):
            self._note_feature("nd_range")
            grid = rng.global_size // rng.local_size
            block = rng.local_size
        else:
            grid = max(1, (rng.size + BLOCK - 1) // BLOCK)
            block = BLOCK
        features = self._launch_features()
        binary = self.compile([kernelfn], features)
        start = end = None
        if profile:
            self._note_feature("events")
            start = self._new_event()
            self._stream.record(start)
        self.launch(binary, kernelfn.name, (grid,), (block,), resolved,
                    stream=self._stream)
        if profile:
            end = self._new_event()
            self._stream.record(end)
            return SyclEvent(start, end)
        return None

    def parallel_reduce_sum(self, n: int, data: DeviceArray) -> float:
        """``sycl::reduction``-style sum over a device array."""
        self._note_feature("reduction")
        out = self.alloc(np.float64, 1)
        grid = min(256, max(1, (n + BLOCK - 1) // BLOCK))
        binary = self.compile([KL.reduce_sum], self._launch_features())
        self.launch(binary, "reduce_sum", (grid,), (BLOCK,), [n, data, out],
                    stream=self._stream)
        result = float(out.copy_to_host()[0])
        out.free()
        return result

    def wait(self) -> float:
        return self._stream.synchronize()

    # ======================================================================
    # Probe surface
    # ======================================================================

    def probe_queues(self, n: int = 4096) -> None:
        """USM device allocation + parallel_for over a plain range."""
        rng = np.random.default_rng(3)
        b_h, c_h = rng.random(n), rng.random(n)
        a = self.malloc_device(np.float64, n)
        b = self.to_device(b_h)
        c = self.to_device(c_h)
        self.parallel_for(Range(n), KL.stream_triad, [n, 2.0, a, b, c])
        self.wait()
        if not np.allclose(a.copy_to_host(), b_h + 2.0 * c_h):
            raise ApiError("sycl triad verification failed")
        for arr in (a, b, c):
            arr.free()

    def probe_buffers(self, n: int = 2048) -> None:
        """Buffer/accessor path with RAII write-back."""
        host = np.ones(n)
        with self.buffer(host) as buf:
            self.parallel_for(Range(n), KL.scale_inplace, [n, 3.0, buf])
            self.wait()
        if not np.allclose(host, 3.0):
            raise ApiError("buffer write-back failed")

    def probe_nd_range(self, n: int = 4096) -> None:
        """nd_range kernel using work-group local memory and barriers."""
        x = self.to_device(np.ones(n))
        out = self.malloc_device(np.float64, 1)
        out.copy_from_host(np.zeros(1))
        self.parallel_for(NdRange(4096, 256), KL.reduce_sum, [n, x, out])
        self.wait()
        if not np.isclose(out.copy_to_host()[0], n):
            raise ApiError("nd_range reduction wrong")
        x.free(); out.free()

    def probe_usm_shared(self, n: int = 1024) -> None:
        """malloc_shared: host-visible USM."""
        arr = self.malloc_shared(np.float64, n)
        arr.view()[:] = 2.0
        self.parallel_for(Range(n), KL.scale_inplace, [n, 5.0, arr])
        self.wait()
        if not np.allclose(arr.view(), 10.0):
            raise ApiError("usm shared roundtrip failed")
        arr.free()

    def probe_reduction(self, n: int = 8192) -> None:
        """sycl::reduction object."""
        x = self.to_device(np.full(n, 0.5))
        if not np.isclose(self.parallel_reduce_sum(n, x), 0.5 * n):
            raise ApiError("sycl reduction wrong")
        x.free()

    def probe_events(self, n: int = 2048) -> None:
        """Profiling events on submissions."""
        x = self.to_device(np.ones(n))
        ev = self.parallel_for(Range(n), KL.scale_inplace, [n, 2.0, x],
                               profile=True)
        self.wait()
        if ev.elapsed_seconds() <= 0:
            raise ApiError("sycl event timing non-positive")
        x.free()
