"""CUDA: NVIDIA's native programming model (descriptions 1/2/18/19/31/32).

:class:`Cuda` exposes the runtime-API surface under its CUDA names
(``cudaMalloc``, ``cudaMemcpy``, ``cudaStreamCreate``, ...) over the
shared CUDA-like core.  ``language=Language.FORTRAN`` selects CUDA
Fortran — only compilable by NVHPC (``nvfortran -cuda``), including the
``!$cuf kernel do`` auto-parallelized loops.

Typical use::

    from repro.enums import Vendor
    from repro.gpu import get_device
    from repro.models.cuda import Cuda
    from repro import kernels as KL

    rt = Cuda(get_device(Vendor.NVIDIA))       # nvcc by default
    x = rt.cudaMallocTyped("float64", 1024)
    rt.cudaMemcpyHtoD(x, host_array)
    rt.launch_1d(KL.scale_inplace, 1024, [1024, 2.0, x])
    out = rt.cudaMemcpyDtoH(x)
"""

from __future__ import annotations

from repro.enums import Language, Model
from repro.models.cudalike import CudaLikeRuntime, GraphExec  # noqa: F401


class Cuda(CudaLikeRuntime):
    """The CUDA runtime API on a simulated device."""

    MODEL = Model.CUDA
    LANGUAGES = (Language.CPP, Language.FORTRAN)
    TAG_PREFIX = "cuda"
    DEFAULT_TOOLCHAIN = "nvcc"

    def __init__(self, device, toolchain=None, language=Language.CPP):
        if toolchain is None and language is Language.FORTRAN:
            toolchain = "nvhpc"  # CUDA Fortran lives in the HPC SDK
        super().__init__(device, toolchain, language)

    # CUDA-flavoured aliases -------------------------------------------------
    cudaMalloc = CudaLikeRuntime.malloc
    cudaMallocTyped = CudaLikeRuntime.malloc_typed
    cudaMallocManaged = CudaLikeRuntime.malloc_managed
    cudaMemcpyHtoD = CudaLikeRuntime.memcpy_htod
    cudaMemcpyDtoH = CudaLikeRuntime.memcpy_dtoh
    cudaMemcpyDtoD = CudaLikeRuntime.memcpy_dtod
    cudaFree = CudaLikeRuntime.free
    cudaStreamCreate = CudaLikeRuntime.stream_create
    cudaStreamDestroy = CudaLikeRuntime.stream_destroy
    cudaStreamSynchronize = CudaLikeRuntime.stream_synchronize
    cudaEventCreate = CudaLikeRuntime.event_create
    cudaEventRecord = CudaLikeRuntime.event_record
    cudaEventElapsedTime = CudaLikeRuntime.event_elapsed
    cudaStreamWaitEvent = CudaLikeRuntime.stream_wait_event
    cudaDeviceSynchronize = CudaLikeRuntime.device_synchronize
    cudaLaunchKernel = CudaLikeRuntime.launch_kernel
    cudaLaunchCooperativeKernel = CudaLikeRuntime.launch_cooperative
    cudaGraphBeginCapture = CudaLikeRuntime.graph_begin_capture
    cudaGraphEndCapture = CudaLikeRuntime.graph_end_capture
    cublasDaxpy = CudaLikeRuntime.blas_axpy
    cublasDdot = CudaLikeRuntime.blas_dot
    cublasDgemv = CudaLikeRuntime.blas_gemv
