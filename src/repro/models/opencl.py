"""OpenCL: the Khronos standard (extension model).

§5: "OpenCL is a further important GPU programming model, but it has
never gained much traction in the HPC-GPU space, mostly due to the
lukewarm support by NVIDIA."  This extension makes that assessment
executable: the classic host API (platforms → context → command queue →
buffers → program build → ``enqueue_nd_range``) over each vendor's
driver toolchain, whose feature levels encode the real divergence —
NVIDIA at the 1.2-era feature set (no SVM, no sub-groups), AMD's ROCm
OpenCL at 2.0, Intel's runtime complete.
"""

from __future__ import annotations

import numpy as np

from repro import kernels as KL
from repro.enums import Language, Model, Vendor
from repro.errors import ApiError
from repro.frontends.kernel_dsl import KernelFn
from repro.gpu.device import Device
from repro.kernels import BLOCK
from repro.models.base import DeviceArray, OffloadRuntime

_DRIVER = {
    Vendor.NVIDIA: "nvidia-opencl",
    Vendor.AMD: "amd-opencl",
    Vendor.INTEL: "intel-opencl",
}


class ClBuffer:
    """A ``cl_mem`` buffer object."""

    def __init__(self, context: "ClContext", count: int, dtype=np.float64):
        self.device_array: DeviceArray = context._rt.alloc(np.dtype(dtype),
                                                           count)
        self.count = count
        context._rt._note("ocl:buffers")

    @property
    def addr(self) -> int:
        return self.device_array.addr

    def free(self) -> None:
        self.device_array.free()


class ClProgram:
    """A built program: kernels compiled through the vendor driver."""

    def __init__(self, context: "ClContext", kernels: list[KernelFn]):
        self.context = context
        self._kernels = {k.name: k for k in kernels}
        # clBuildProgram happens eagerly, through the driver toolchain.
        rt = context._rt
        rt.compile(kernels, sorted(rt._tags | {"ocl:kernels"}))

    def kernel(self, name: str) -> KernelFn:
        try:
            return self._kernels[name]
        except KeyError:
            raise ApiError(f"program has no kernel '{name}'") from None


class _ClRuntime(OffloadRuntime):
    """Internal offload runtime bound to the vendor's OpenCL driver."""

    MODEL = Model.OPENCL
    LANGUAGES = (Language.CPP,)
    TAG_PREFIX = "ocl"
    DISPATCH_OVERHEAD_S = 0.4e-6  # clEnqueue* call chain

    def __init__(self, device: Device):
        super().__init__(device, _DRIVER[device.vendor])
        self._tags: set[str] = {"ocl:kernels"}

    def _note(self, tag: str) -> None:
        self._tags.add(tag)


class ClCommandQueue:
    """An in-order command queue."""

    def __init__(self, context: "ClContext", profiling: bool = False):
        self.context = context
        context._rt._note("ocl:command_queues")
        self._stream = context._rt._new_stream()
        self.profiling = profiling

    def enqueue_nd_range(self, program: ClProgram, kernel_name: str,
                         global_size: int, local_size: int = BLOCK,
                         args=()) -> "ClEvent | None":
        rt = self.context._rt
        kernelfn = program.kernel(kernel_name)
        resolved = [a.addr if isinstance(a, ClBuffer) else a for a in args]
        binary = rt.compile([kernelfn], sorted(rt._tags))
        grid = max(1, (global_size + local_size - 1) // local_size)
        event = None
        if self.profiling:
            rt._note("ocl:events")
            start = rt._new_event()
            self._stream.record(start)
        rt.launch(binary, kernelfn.name, (grid,), (local_size,), resolved,
                  stream=self._stream)
        if self.profiling:
            end = rt._new_event()
            self._stream.record(end)
            event = ClEvent(start, end)
        return event

    def enqueue_write(self, buf: ClBuffer, host: np.ndarray) -> None:
        buf.device_array.copy_from_host(host, stream=self._stream)

    def enqueue_read(self, buf: ClBuffer) -> np.ndarray:
        return buf.device_array.copy_to_host(stream=self._stream)

    def finish(self) -> float:
        return self._stream.synchronize()


class ClEvent:
    """A profiling event pair (CL_QUEUE_PROFILING_ENABLE)."""

    def __init__(self, start, end):
        self._start, self._end = start, end

    def profiling_seconds(self) -> float:
        return self._end.elapsed_since(self._start)


class ClContext:
    """clCreateContext analog for one simulated device."""

    MODEL = Model.OPENCL
    language = Language.CPP

    def __init__(self, device: Device):
        self.device = device
        self._rt = _ClRuntime(device)
        self.driver = self._rt.toolchain.name

    def buffer(self, count: int, dtype=np.float64) -> ClBuffer:
        return ClBuffer(self, count, dtype)

    def program(self, kernels: list[KernelFn]) -> ClProgram:
        return ClProgram(self, kernels)

    def queue(self, profiling: bool = False) -> ClCommandQueue:
        return ClCommandQueue(self, profiling=profiling)

    def svm_alloc(self, count: int, dtype=np.float64) -> DeviceArray:
        """Shared virtual memory (OpenCL 2.0): host-visible allocation."""
        self._rt._note("ocl:svm")
        # Gate eagerly through the driver's feature table.
        self._rt.compile([KL.fill], sorted(self._rt._tags))
        return DeviceArray(self._rt, np.dtype(dtype), count, managed=True)

    def subgroup_reduce(self, n: int, buf: ClBuffer) -> float:
        """Sub-group (warp shuffle) reduction (OpenCL 2.1)."""
        self._rt._note("ocl:subgroups")
        out = self._rt.alloc(np.float64, 1)
        binary = self._rt.compile([KL.warp_reduce_sum],
                                  sorted(self._rt._tags))
        grid = min(256, max(1, (n + BLOCK - 1) // BLOCK))
        self._rt.launch(binary, "warp_reduce_sum", (grid,), (BLOCK,),
                        [n, buf.addr, out.addr])
        result = float(out.copy_to_host()[0])
        out.free()
        return result

    # ======================================================================
    # Probe surface
    # ======================================================================

    def probe_kernels(self, n: int = 4096) -> None:
        program = self.program([KL.scale_inplace])
        queue = self.queue()
        buf = self.buffer(n)
        queue.enqueue_write(buf, np.ones(n))
        queue.enqueue_nd_range(program, "scale_inplace", n,
                               args=[n, 2.0, buf])
        out = queue.enqueue_read(buf)
        queue.finish()
        if not np.allclose(out, 2.0):
            raise ApiError("opencl kernel wrong")
        buf.free()

    def probe_queues(self, n: int = 2048) -> None:
        program = self.program([KL.scale_inplace])
        q1, q2 = self.queue(), self.queue()
        b1, b2 = self.buffer(n), self.buffer(n)
        q1.enqueue_write(b1, np.ones(n))
        q2.enqueue_write(b2, np.ones(n))
        q1.enqueue_nd_range(program, "scale_inplace", n, args=[n, 2.0, b1])
        q2.enqueue_nd_range(program, "scale_inplace", n, args=[n, 3.0, b2])
        out1, out2 = q1.enqueue_read(b1), q2.enqueue_read(b2)
        q1.finish(); q2.finish()
        if not (np.allclose(out1, 2.0) and np.allclose(out2, 3.0)):
            raise ApiError("opencl queues wrong")
        b1.free(); b2.free()

    def probe_events(self, n: int = 2048) -> None:
        program = self.program([KL.scale_inplace])
        queue = self.queue(profiling=True)
        buf = self.buffer(n)
        queue.enqueue_write(buf, np.ones(n))
        event = queue.enqueue_nd_range(program, "scale_inplace", n,
                                       args=[n, 2.0, buf])
        queue.finish()
        if event.profiling_seconds() <= 0:
            raise ApiError("opencl event profiling wrong")
        buf.free()

    def probe_svm(self, n: int = 1024) -> None:
        arr = self.svm_alloc(n)
        arr.view()[:] = 3.0
        program = self.program([KL.scale_inplace])
        queue = self.queue()
        queue.enqueue_nd_range(program, "scale_inplace", n,
                               args=[n, 2.0, arr.addr])
        queue.finish()
        if not np.allclose(arr.view(), 6.0):
            raise ApiError("opencl svm wrong")
        arr.free()

    def probe_subgroups(self, n: int = 4096) -> None:
        buf = self.buffer(n)
        queue = self.queue()
        queue.enqueue_write(buf, np.full(n, 0.25))
        queue.finish()
        if not np.isclose(self.subgroup_reduce(n, buf), 0.25 * n):
            raise ApiError("opencl subgroup reduction wrong")
        buf.free()
