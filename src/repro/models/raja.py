"""RAJA: LLNL's performance-portability layer (extension model).

§5: "The most notable exclusion is certainly RAJA. The choice for
omitting was made because it is similar in spirit to, albeit not as
popular as Kokkos."  This extension restores it, with the RAJA idioms
rather than Kokkos's: execution-policy-tagged ``forall`` over index
ranges (raw pointers, no view abstraction), reducer objects
(``ReduceSum``), nested ``kernel`` launches for loop nests, and
``exclusive_scan``-style operations — all delegating to the CUDA, HIP,
or (experimental) SYCL backends like the real library.
"""

from __future__ import annotations

import numpy as np

from repro import kernels as KL
from repro.enums import Language, Model, Vendor
from repro.errors import ApiError
from repro.frontends.kernel_dsl import KernelFn
from repro.gpu.device import Device
from repro.kernels import BLOCK
from repro.models.base import DeviceArray
from repro.models.cuda import Cuda
from repro.models.hip import Hip
from repro.models.sycl import NdRange, Range, SyclQueue

#: execution policy -> (runtime class, default toolchain, experimental?)
EXEC_POLICIES = {
    "cuda_exec": (Cuda, "nvcc", False),
    "hip_exec": (Hip, "hipcc", False),
    "sycl_exec": (SyclQueue, "dpcpp", True),  # experimental, like Kokkos's
}

_DEFAULT_POLICY = {
    Vendor.NVIDIA: "cuda_exec",
    Vendor.AMD: "hip_exec",
    Vendor.INTEL: "sycl_exec",
}


class ReduceSum:
    """RAJA::ReduceSum<policy, double> — accumulates across a forall."""

    def __init__(self, raja: "Raja", initial: float = 0.0):
        self._raja = raja
        self._initial = initial
        self._buffer: DeviceArray = raja._rt.alloc(np.float64, 1)
        self._buffer.copy_from_host(np.array([initial]))

    @property
    def addr(self) -> int:
        return self._buffer.addr

    def get(self) -> float:
        """Final reduced value (RAJA's implicit conversion)."""
        value = float(self._buffer.copy_to_host()[0])
        return value

    def free(self) -> None:
        self._buffer.free()


class Raja:
    """A RAJA context bound to one device + execution policy."""

    MODEL = Model.RAJA
    language = Language.CPP

    def __init__(self, device: Device, policy: str | None = None,
                 toolchain: str | None = None):
        if policy is None:
            policy = _DEFAULT_POLICY[device.vendor]
        try:
            runtime_cls, default_tc, experimental = EXEC_POLICIES[policy]
        except KeyError:
            raise ApiError(
                f"unknown execution policy '{policy}'; "
                f"known: {sorted(EXEC_POLICIES)}"
            ) from None
        self.policy = policy
        self.experimental_backend = experimental
        self._rt = runtime_cls(device, toolchain or default_tc)
        # RAJA's abstraction cost, comparable to Kokkos's.
        self._rt.dispatch_overhead_s += 0.6e-6
        self.device = device

    # -- data (RAJA works on raw device pointers) ------------------------------

    def device_alloc(self, count: int, dtype=np.float64) -> DeviceArray:
        return self._rt.alloc(np.dtype(dtype), count)

    def to_device(self, host: np.ndarray) -> DeviceArray:
        return self._rt.to_device(host)

    # -- kernels -----------------------------------------------------------------

    def _dispatch(self, kernelfn: KernelFn, n: int, args,
                  grid: int | None = None) -> None:
        resolved = [a.addr if isinstance(a, (DeviceArray, ReduceSum))
                    else a for a in args]
        rt = self._rt
        if isinstance(rt, (Cuda, Hip)):
            if grid is None:
                rt.launch_1d(kernelfn, n, resolved)
            else:
                rt.launch_kernel(kernelfn, (grid,), (BLOCK,), resolved)
        else:
            if grid is None:
                rt.parallel_for(Range(n), kernelfn, resolved)
            else:
                rt.parallel_for(NdRange(grid * BLOCK, BLOCK), kernelfn,
                                resolved)
            rt.wait()

    def forall(self, n: int, kernelfn: KernelFn, args) -> None:
        """RAJA::forall<policy>(RangeSegment(0, n), body)."""
        self._dispatch(kernelfn, n, args)

    def forall_reduce(self, n: int, kernelfn: KernelFn, args,
                      reducer: ReduceSum) -> float:
        """forall with a reducer argument; returns the reduced value."""
        grid = min(256, max(1, (n + BLOCK - 1) // BLOCK))
        self._dispatch(kernelfn, n, list(args) + [reducer], grid=grid)
        return reducer.get()

    def kernel_nested(self, nx: int, ny: int, kernelfn: KernelFn,
                      args) -> None:
        """RAJA::kernel over a 2-D iteration space."""
        resolved = [a.addr if isinstance(a, DeviceArray) else a for a in args]
        rt = self._rt
        gx, gy = (nx + 15) // 16, (ny + 15) // 16
        if isinstance(rt, (Cuda, Hip)):
            binary = rt.compile([kernelfn], rt._kernel_tags())
        else:
            binary = rt.compile([kernelfn], [rt.tag("queues"),
                                             rt.tag("nd_range")])
        rt.launch(binary, kernelfn.name, (gx, gy), (16, 16), resolved)

    def exclusive_scan_inplace(self, data: DeviceArray) -> None:
        """RAJA::exclusive_scan (via the inclusive ladder + shift)."""
        n = data.count
        host = None
        tmp = self._rt.alloc(np.float64, n)
        src_addr, dst_addr = data.addr, tmp.addr
        offset = 1
        while offset < n:
            self._dispatch(KL.scan_step, n, [n, offset, src_addr, dst_addr])
            src_addr, dst_addr = dst_addr, src_addr
            offset *= 2
        # inclusive -> exclusive: shift right, first element 0.
        final = data if src_addr == data.addr else tmp
        host = final.copy_to_host()
        shifted = np.concatenate(([0.0], host[:-1]))
        data.copy_from_host(shifted)
        tmp.free()

    def synchronize(self) -> None:
        self._rt.synchronize()

    # ======================================================================
    # Probe surface
    # ======================================================================

    def probe_forall(self, n: int = 4096) -> None:
        x = self.to_device(np.ones(n))
        self.forall(n, KL.scale_inplace, [n, 2.0, x])
        self.synchronize()
        if not np.allclose(x.copy_to_host(), 2.0):
            raise ApiError("raja forall wrong")
        x.free()

    def probe_reduce(self, n: int = 8192) -> None:
        x = self.to_device(np.full(n, 0.5))
        reducer = ReduceSum(self)
        total = self.forall_reduce(n, KL.reduce_sum, [n, x], reducer)
        if not np.isclose(total, 0.5 * n):
            raise ApiError("raja ReduceSum wrong")
        x.free()
        reducer.free()

    def probe_kernel_nested(self, nx: int = 48, ny: int = 48) -> None:
        host = np.zeros((ny, nx))
        host[0, :] = 4.0
        inp, out = self.to_device(host), self.to_device(host)
        self.kernel_nested(nx, ny, KL.jacobi2d, [nx, ny, inp, out])
        self.synchronize()
        if not np.isclose(out.copy_to_host().reshape(ny, nx)[1, 1], 1.0):
            raise ApiError("raja nested kernel wrong")
        inp.free(); out.free()

    def probe_scan(self, n: int = 512) -> None:
        data = np.random.default_rng(47).random(n)
        x = self.to_device(data)
        self.exclusive_scan_inplace(x)
        expected = np.concatenate(([0.0], np.cumsum(data)[:-1]))
        if not np.allclose(x.copy_to_host(), expected):
            raise ApiError("raja exclusive scan wrong")
        x.free()
