"""Alpaka: header-only accelerator abstraction (descriptions 15/16/29/43).

Reproduces the Alpaka programming idioms: an accelerator tag selects
the backend (``AccGpuCudaRt``, ``AccGpuHipRt``, the experimental
``AccGpuSyclIntel`` added in v0.9.0, or the ``AccCpuOmp``-style OpenMP
fallback), kernels execute over an explicit :class:`WorkDiv` (grid ×
block), and buffers move data.  Like Kokkos, compilation genuinely
flows through the chosen backend model and toolchain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels as KL
from repro.enums import Language, Model, Vendor
from repro.errors import ApiError
from repro.frontends.kernel_dsl import KernelFn
from repro.gpu.device import Device
from repro.kernels import BLOCK
from repro.models.base import DeviceArray
from repro.models.cuda import Cuda
from repro.models.hip import Hip
from repro.models.openmp import OpenMP
from repro.models.sycl import NdRange, SyclQueue

#: accelerator tag -> (runtime class, default toolchain, experimental?)
ACCELERATORS = {
    "AccGpuCudaRt": (Cuda, "nvcc", False),
    "AccGpuHipRt": (Hip, "hipcc", False),
    "AccGpuSyclIntel": (SyclQueue, "dpcpp", True),  # since v0.9.0
    "AccOmp5": (OpenMP, "clang", False),
}

_DEFAULT_ACC = {
    Vendor.NVIDIA: "AccGpuCudaRt",
    Vendor.AMD: "AccGpuHipRt",
    Vendor.INTEL: "AccGpuSyclIntel",
}


@dataclass(frozen=True)
class WorkDiv:
    """Explicit grid/block division of work (alpaka::WorkDivMembers)."""

    blocks: int
    threads_per_block: int

    @property
    def extent(self) -> int:
        return self.blocks * self.threads_per_block


class AlpakaBuffer:
    """alpaka::allocBuf result."""

    def __init__(self, acc: "Alpaka", count: int, dtype=np.float64):
        self.device_array: DeviceArray = acc._rt.alloc(np.dtype(dtype), count)
        self.count = count
        self.dtype = np.dtype(dtype)

    @property
    def addr(self) -> int:
        return self.device_array.addr

    def free(self) -> None:
        self.device_array.free()


class Alpaka:
    """An Alpaka accelerator instance bound to one device."""

    MODEL = Model.ALPAKA
    language = Language.CPP

    def __init__(self, device: Device, accelerator: str | None = None,
                 toolchain: str | None = None):
        if accelerator is None:
            accelerator = _DEFAULT_ACC[device.vendor]
        try:
            runtime_cls, default_tc, experimental = ACCELERATORS[accelerator]
        except KeyError:
            raise ApiError(
                f"unknown accelerator '{accelerator}'; known: {sorted(ACCELERATORS)}"
            ) from None
        self.accelerator = accelerator
        self.experimental_backend = experimental
        self._rt = runtime_cls(device, toolchain or default_tc)
        # Alpaka's zero-overhead claim is close but not free in practice.
        self._rt.dispatch_overhead_s += 0.6e-6
        self.device = device

    # -- buffers -----------------------------------------------------------------

    def alloc_buf(self, count: int, dtype=np.float64) -> AlpakaBuffer:
        return AlpakaBuffer(self, count, dtype)

    def memcpy_to(self, buf: AlpakaBuffer, host: np.ndarray) -> None:
        buf.device_array.copy_from_host(host)

    def memcpy_from(self, buf: AlpakaBuffer) -> np.ndarray:
        return buf.device_array.copy_to_host()

    # -- execution --------------------------------------------------------------

    def exec(self, workdiv: WorkDiv, kernelfn: KernelFn, args) -> None:
        """alpaka::exec<Acc>(queue, workDiv, kernel, args...)."""
        resolved = [a.addr if isinstance(a, AlpakaBuffer) else a for a in args]
        rt = self._rt
        if isinstance(rt, (Cuda, Hip)):
            rt.launch_kernel(kernelfn, (workdiv.blocks,),
                             (workdiv.threads_per_block,), resolved)
        elif isinstance(rt, SyclQueue):
            rt.parallel_for(
                NdRange(workdiv.extent, workdiv.threads_per_block),
                kernelfn, resolved,
            )
            rt.wait()
        else:
            binary = rt.compile([kernelfn], ["omp:target", "omp:teams",
                                             "omp:parallel_for", "omp:map"])
            rt.launch(binary, kernelfn.name, (workdiv.blocks,),
                      (workdiv.threads_per_block,), resolved)

    def exec_elements(self, n: int, kernelfn: KernelFn, args) -> None:
        """Convenience: derive a WorkDiv covering ``n`` elements."""
        blocks = max(1, (n + BLOCK - 1) // BLOCK)
        self.exec(WorkDiv(blocks, BLOCK), kernelfn, args)

    def wait(self) -> None:
        self._rt.synchronize()

    # ======================================================================
    # Probe surface
    # ======================================================================

    def probe_exec(self, n: int = 4096) -> None:
        buf = self.alloc_buf(n)
        self.memcpy_to(buf, np.ones(n))
        self.exec_elements(n, KL.scale_inplace, [n, 2.0, buf])
        self.wait()
        if not np.allclose(self.memcpy_from(buf), 2.0):
            raise ApiError("alpaka exec wrong")
        buf.free()

    def probe_workdiv(self, n: int = 4096) -> None:
        """Explicit non-default work division must still cover the range."""
        buf = self.alloc_buf(n)
        self.memcpy_to(buf, np.ones(n))
        self.exec(WorkDiv(n // 128, 128), KL.scale_inplace, [n, 3.0, buf])
        self.wait()
        if not np.allclose(self.memcpy_from(buf), 3.0):
            raise ApiError("alpaka workdiv wrong")
        buf.free()

    def probe_buffers(self, n: int = 2048) -> None:
        a, b = self.alloc_buf(n), self.alloc_buf(n)
        data = np.arange(n, dtype=np.float64)
        self.memcpy_to(a, data)
        self.exec_elements(n, KL.stream_copy, [n, a, b])
        self.wait()
        if not np.allclose(self.memcpy_from(b), data):
            raise ApiError("alpaka buffer copy wrong")
        a.free(); b.free()

    def probe_reduce(self, n: int = 8192) -> None:
        buf = self.alloc_buf(n)
        self.memcpy_to(buf, np.full(n, 0.5))
        out = self.alloc_buf(1)
        blocks = min(256, max(1, (n + BLOCK - 1) // BLOCK))
        self.exec(WorkDiv(blocks, BLOCK), KL.reduce_sum, [n, buf, out])
        self.wait()
        if not np.isclose(self.memcpy_from(out)[0], 0.5 * n):
            raise ApiError("alpaka reduction wrong")
        buf.free(); out.free()
