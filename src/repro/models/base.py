"""The offload core shared by every programming-model runtime.

:class:`OffloadRuntime` owns the mechanics every model needs — building
translation units, compiling them through a configurable toolchain for
the bound device's ISA, caching binaries, launching kernels, and moving
data — so each model subpackage only implements its API surface, its
language rules, and its feature-tag vocabulary.

Design notes:

* **Language enforcement** happens here (``LANGUAGES``): a SYCL runtime
  constructed with ``Language.FORTRAN`` raises
  :class:`~repro.errors.LanguageError` at construction, reproducing
  description 6 ("SYCL ... by its nature does not support Fortran").
* **Feature tags** accumulate on the translation unit from the API
  calls actually made, so a program that never touches streams compiles
  fine on a toolchain without stream support — coverage is per-feature,
  exactly how the probe suite measures it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.compilers.registry import get_toolchain
from repro.compilers.toolchain import Toolchain
from repro.enums import Language, Model
from repro.errors import ApiError, LanguageError
from repro.frontends.kernel_dsl import KernelFn
from repro.frontends.source import TranslationUnit
from repro.gpu.device import Device
from repro.gpu.memory import Allocation
from repro.gpu.stream import Event, Stream
from repro.isa.module import TargetModule
from repro.kernels import BLOCK


class DeviceArray:
    """A typed device allocation handle used by all model runtimes."""

    def __init__(self, runtime: "OffloadRuntime", dtype: np.dtype, count: int,
                 managed: bool = False):
        self.runtime = runtime
        self.dtype = np.dtype(dtype)
        self.count = int(count)
        self.managed = managed
        self.allocation: Allocation | None = runtime.device.alloc(
            self.dtype.itemsize * self.count
        )

    @property
    def nbytes(self) -> int:
        return self.dtype.itemsize * self.count

    @property
    def addr(self) -> int:
        if self.allocation is None:
            raise ApiError("use of freed device array")
        return int(self.allocation)

    def _live(self) -> Allocation:
        if self.allocation is None:
            raise ApiError("use of freed device array")
        return self.allocation

    def copy_from_host(self, host: np.ndarray, stream: Stream | None = None) -> None:
        host = np.ascontiguousarray(host, dtype=self.dtype).reshape(-1)
        if host.size > self.count:
            raise ApiError(
                f"host array of {host.size} elements exceeds device array "
                f"of {self.count}"
            )
        self.runtime.device.memcpy_h2d(self._live(), host, stream=stream)

    def copy_to_host(self, stream: Stream | None = None) -> np.ndarray:
        return self.runtime.device.memcpy_d2h(
            self._live(), self.dtype, self.count, stream=stream
        )

    def view(self) -> np.ndarray:
        """Zero-copy host view (managed/USM-style access)."""
        return self.runtime.device.memory.view(self._live(), self.dtype, self.count)

    def free(self) -> None:
        if self.allocation is not None:
            self.runtime.device.free(self.allocation)
            self.allocation = None

    def __del__(self):  # pragma: no cover - GC timing dependent
        # Expression chains in the Python array layer create temporaries;
        # reclaim them like CuPy does when the GC drops the handle.
        try:
            self.free()
        except Exception:
            pass

    def __len__(self) -> int:
        return self.count


class OffloadRuntime:
    """Base class for the per-model runtimes."""

    #: Overridden by subclasses.
    MODEL: Model = Model.CUDA
    LANGUAGES: tuple[Language, ...] = (Language.CPP,)
    #: Default toolchain when none is given (subclass override).
    DEFAULT_TOOLCHAIN: str = "nvcc"
    #: Optional source-to-source translator applied before compilation
    #: (set by translated routes, e.g. HIPIFY for CUDA-on-AMD).  The
    #: program is written against this runtime's model; the translator
    #: rewrites each translation unit into the target model the bound
    #: toolchain actually compiles.
    translator = None
    #: Host-side dispatch latency this model adds per kernel launch
    #: (seconds of simulated time).  The native models submit straight
    #: through the driver (0); directive runtimes, abstraction layers,
    #: and especially the Python interpreter pay more — the per-model
    #: overhead axis of Hammond's "gears of GPU programming" comparison
    #: the paper cites [6].  Negligible for large kernels, visible for
    #: small ones.
    DISPATCH_OVERHEAD_S: float = 0.0

    def __init__(self, device: Device, toolchain: str | Toolchain | None = None,
                 language: Language = Language.CPP):
        if language not in self.LANGUAGES:
            raise LanguageError(
                f"{self.MODEL.value} is not available from {language.value} "
                f"(supported: {[l.value for l in self.LANGUAGES]})"
            )
        self.device = device
        self.language = language
        if toolchain is None:
            toolchain = self.DEFAULT_TOOLCHAIN
        self.toolchain = (
            toolchain if isinstance(toolchain, Toolchain) else get_toolchain(toolchain)
        )
        #: Instance-level override of the class default (layered models
        #: set this on their backend runtime).
        self.dispatch_overhead_s: float = self.DISPATCH_OVERHEAD_S
        #: When true, every compile runs the kernelsan static analyses
        #: (``Toolchain.compile(sanitize=True)``) and the resulting
        #: LintReports accumulate in :attr:`lint_reports`.  Perf runs
        #: switch this on so timing a route also lints what it built.
        self.sanitize: bool = False
        self.sanitize_options = None
        self.lint_reports: list = []
        self._binaries: dict[tuple, TargetModule] = {}
        self._tu_counter = 0

    # -- feature vocabulary -----------------------------------------------------

    #: Prefix for this model's feature tags ("cuda", "hip", "sycl", ...).
    TAG_PREFIX: str = "cuda"

    def tag(self, suffix: str) -> str:
        return f"{self.TAG_PREFIX}:{suffix}"

    # -- compilation -----------------------------------------------------------

    def compile(self, kernels: Sequence[KernelFn],
                features: Sequence[str] = ()) -> TargetModule:
        """Compile kernels (+ feature requirements) for this device.

        Results are cached per (kernel set, feature set); cache hits are
        the norm since models re-launch the same library kernels.
        """
        key = (tuple(id(k) for k in kernels), frozenset(features),
               self.sanitize)
        cached = self._binaries.get(key)
        if cached is not None:
            return cached
        self._tu_counter += 1
        tu = TranslationUnit(
            name=f"{self.MODEL.value.lower()}_tu{self._tu_counter}",
            model=self.MODEL,
            language=self.language,
        )
        for k in kernels:
            tu.add(k)
        tu.require(*features)
        if self.translator is not None:
            tu = self.translator.translate_unit(tu)
        result = self.toolchain.compile(
            tu, self.device.isa, sanitize=self.sanitize,
            sanitize_options=self.sanitize_options,
        )
        if result.diagnostics is not None:
            self.lint_reports.append(result.diagnostics)
        self.device.load_module(result.binary)
        self._binaries[key] = result.binary
        return result.binary

    # -- memory ------------------------------------------------------------------

    def alloc(self, dtype: np.dtype, count: int) -> DeviceArray:
        return DeviceArray(self, dtype, count)

    def to_device(self, host: np.ndarray) -> DeviceArray:
        host = np.ascontiguousarray(host)
        arr = DeviceArray(self, host.dtype, host.size)
        arr.copy_from_host(host)
        return arr

    # -- execution ----------------------------------------------------------------

    def launch(self, binary: TargetModule, kernel_name: str, grid, block,
               args: Sequence[object], stream: Stream | None = None):
        resolved = [a.addr if isinstance(a, DeviceArray) else a for a in args]
        overhead = self.dispatch_overhead_s
        if overhead > 0.0:
            s = stream or self.device.default_stream
            s.push(overhead, label=f"{self.MODEL.value} dispatch",
                   category="dispatch")
        return self.device.launch(
            binary, kernel_name, grid, block, resolved, stream=stream
        )

    def launch_n(self, kernelfn: KernelFn, n: int, args: Sequence[object],
                 features: Sequence[str] = (), stream: Stream | None = None,
                 block: int = BLOCK, grid: int | None = None):
        """Compile-and-launch a 1-D kernel over ``n`` elements."""
        binary = self.compile([kernelfn], features)
        if grid is None:
            grid = max(1, (n + block - 1) // block)
        return self.launch(binary, kernelfn.name, (grid,), (block,), args, stream)

    def synchronize(self) -> float:
        return self.device.synchronize()

    # -- streams/events (models that expose them wrap these) ------------------

    def _new_stream(self) -> Stream:
        return self.device.create_stream()

    def _new_event(self) -> Event:
        return self.device.create_event()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} on {self.device.spec.name} via "
            f"{self.toolchain.name} ({self.language.value})>"
        )
