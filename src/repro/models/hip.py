"""HIP: AMD's native model, deliberately CUDA-shaped (descriptions 3/4/20/33/34).

:class:`Hip` mirrors the CUDA runtime under HIP names (``hipMalloc``
instead of ``cudaMalloc``, ``hipblasDaxpy`` instead of ``cublasDaxpy``
— the exact renaming the paper uses as its example).  The compiler
driver is ``hipcc``; the target platform follows the device, which is
the simulator's version of ``HIP_PLATFORM={amd,nvidia}``: bind the
runtime to a simulated MI250X and hipcc emits AMDGCN, bind it to an
H100 and hipcc emits PTX through its CUDA backend.

``language=Language.FORTRAN`` selects hipfort, AMD's ready-made Fortran
interface set (description 4): the C API surface and kernel-writing
extensions are available, but newer driver features (events wrapping,
graphs) are not — measured by the probes as partial coverage.
"""

from __future__ import annotations

from repro.enums import Language, Model
from repro.models.cudalike import CudaLikeRuntime


class Hip(CudaLikeRuntime):
    """The HIP runtime API on a simulated device."""

    MODEL = Model.HIP
    LANGUAGES = (Language.CPP, Language.FORTRAN)
    TAG_PREFIX = "hip"
    DEFAULT_TOOLCHAIN = "hipcc"

    def __init__(self, device, toolchain=None, language=Language.CPP):
        if toolchain is None and language is Language.FORTRAN:
            toolchain = "hipfort"
        super().__init__(device, toolchain, language)

    def _kernel_tags(self) -> tuple[str, ...]:
        return (self.tag("kernels"), self.tag("memcpy"))

    @property
    def hip_platform(self) -> str:
        """What ``HIP_PLATFORM`` would be for the bound device."""
        return self.device.vendor.value.lower()

    # HIP-flavoured aliases ------------------------------------------------
    hipMalloc = CudaLikeRuntime.malloc
    hipMallocTyped = CudaLikeRuntime.malloc_typed
    hipMallocManaged = CudaLikeRuntime.malloc_managed
    hipMemcpyHtoD = CudaLikeRuntime.memcpy_htod
    hipMemcpyDtoH = CudaLikeRuntime.memcpy_dtoh
    hipMemcpyDtoD = CudaLikeRuntime.memcpy_dtod
    hipFree = CudaLikeRuntime.free
    hipStreamCreate = CudaLikeRuntime.stream_create
    hipStreamDestroy = CudaLikeRuntime.stream_destroy
    hipStreamSynchronize = CudaLikeRuntime.stream_synchronize
    hipEventCreate = CudaLikeRuntime.event_create
    hipEventRecord = CudaLikeRuntime.event_record
    hipEventElapsedTime = CudaLikeRuntime.event_elapsed
    hipStreamWaitEvent = CudaLikeRuntime.stream_wait_event
    hipDeviceSynchronize = CudaLikeRuntime.device_synchronize
    hipLaunchKernelGGL = CudaLikeRuntime.launch_kernel
    hipGraphBeginCapture = CudaLikeRuntime.graph_begin_capture
    hipGraphEndCapture = CudaLikeRuntime.graph_end_capture
    hipblasDaxpy = CudaLikeRuntime.blas_axpy
    hipblasDdot = CudaLikeRuntime.blas_dot
    hipblasDgemv = CudaLikeRuntime.blas_gemv
