"""OpenACC (descriptions 7/8/22/23/36/37).

Directive-shaped API over the offload core: ``parallel loop`` and
``kernels`` regions, structured ``data`` regions with
``copyin``/``copyout``/``create`` clauses, ``gang``/``worker``/
``vector`` mapping, reductions, ``async``/``wait`` queues (mapped to
simulated streams), and the OpenACC 3.0 ``serial`` construct.

Compilers follow §4: NVHPC implements the full probed set ("very
comprehensive, conforms to version 2.7" and beyond), GCC implements
2.6, Clacc tracks the 3.x specification via its OpenACC-to-OpenMP
translation inside Clang, Cray CE supports Fortran, and Intel's
platform has only the source-to-source migration tool.
"""

from __future__ import annotations

import re

import numpy as np

from repro import kernels as KL
from repro.enums import Language, Model
from repro.errors import ApiError, DirectiveError
from repro.frontends.kernel_dsl import KernelFn
from repro.gpu.stream import Stream
from repro.kernels import BLOCK
from repro.models.base import DeviceArray, OffloadRuntime

_CONSTRUCT_TAGS = {
    "parallel": "acc:parallel",
    "kernels": "acc:kernels",
    "serial": "acc:serial",
    "data": "acc:data",
    "loop": "acc:loop",
    "wait": "acc:wait",
    "enter": "acc:data",
    "exit": "acc:data",
}

_CLAUSE_TAGS = {
    "copyin": "acc:copyin_copyout",
    "copyout": "acc:copyin_copyout",
    "copy": "acc:copyin_copyout",
    "create": "acc:data",
    "reduction": "acc:reduction",
    "gang": "acc:gang_worker_vector",
    "worker": "acc:gang_worker_vector",
    "vector": "acc:gang_worker_vector",
    "vector_length": "acc:gang_worker_vector",
    "num_gangs": "acc:gang_worker_vector",
    "num_workers": "acc:gang_worker_vector",
    "async": "acc:async",
    "attach": "acc:attach",
    "self": "acc:self",
}

_TOKEN_RE = re.compile(r"(\w+)\s*(\(([^()]*)\))?")


def parse_acc_directive(text: str) -> frozenset[str]:
    """Parse ``#pragma acc ...`` / ``!$acc ...`` content into feature tags."""
    tags: set[str] = set()
    pos = 0
    stripped = text.strip()
    saw_construct = False
    while pos < len(stripped):
        match = _TOKEN_RE.match(stripped, pos)
        if match is None or match.start() != pos:
            raise DirectiveError(f"cannot parse OpenACC directive at: '{stripped[pos:]}'")
        word = match.group(1)
        has_parens = match.group(3) is not None
        if not has_parens and word in _CONSTRUCT_TAGS:
            tags.add(_CONSTRUCT_TAGS[word])
            saw_construct = True
        elif word in _CLAUSE_TAGS:
            tags.add(_CLAUSE_TAGS[word])
        elif word in _CONSTRUCT_TAGS:
            tags.add(_CONSTRUCT_TAGS[word])
            saw_construct = True
        else:
            raise DirectiveError(f"unknown OpenACC token '{word}'")
        pos = match.end()
        while pos < len(stripped) and stripped[pos] in " ,\t":
            pos += 1
    if not saw_construct:
        raise DirectiveError(f"OpenACC directive has no construct: '{text}'")
    return frozenset(tags)


class _AccData:
    """A structured OpenACC data region."""

    def __init__(self, runtime: "OpenACC", copyin, copyout, copy, create):
        self.runtime = runtime
        self._copyin, self._copyout = list(copyin), list(copyout)
        self._copy, self._create = list(copy), list(create)
        self._map: dict[int, DeviceArray] = {}

    def __enter__(self) -> "_AccData":
        for host in self._copyin + self._copy:
            self._map[id(host)] = self.runtime.to_device(host)
        for host in self._copyout + self._create:
            self._map[id(host)] = self.runtime.alloc(host.dtype, host.size)
        return self

    def device(self, host: np.ndarray) -> DeviceArray:
        try:
            return self._map[id(host)]
        except KeyError:
            raise ApiError("array not present in this acc data region") from None

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            for host in self._copyout + self._copy:
                np.copyto(host.reshape(-1), self._map[id(host)].copy_to_host())
        for arr in self._map.values():
            arr.free()


class OpenACC(OffloadRuntime):
    """OpenACC runtime bound to one device + compiler."""

    MODEL = Model.OPENACC
    LANGUAGES = (Language.CPP, Language.FORTRAN)
    TAG_PREFIX = "acc"
    DEFAULT_TOOLCHAIN = "nvhpc"
    DISPATCH_OVERHEAD_S = 0.8e-6  # data-environment bookkeeping

    def __init__(self, device, toolchain=None, language=Language.CPP):
        super().__init__(device, toolchain, language)
        self._queues: dict[int, Stream] = {}

    @property
    def sentinel(self) -> str:
        return "!$acc" if self.language is Language.FORTRAN else "#pragma acc"

    def _queue(self, async_: int | None) -> Stream | None:
        if async_ is None:
            return None
        if async_ not in self._queues:
            self._queues[async_] = self._new_stream()
        return self._queues[async_]

    def _region(self, directive: str, kernelfn: KernelFn, grid, block, args,
                async_: int | None = None):
        tags = parse_acc_directive(directive)
        binary = self.compile([kernelfn], sorted(tags))
        return self.launch(binary, kernelfn.name, grid, block, args,
                           stream=self._queue(async_))

    # -- public directive API -----------------------------------------------

    def data(self, copyin=(), copyout=(), copy=(), create=()) -> _AccData:
        """``{sentinel} data copyin(...) copyout(...) create(...)``."""
        parse_acc_directive("data copyin(a) copyout(b) create(c)")
        return _AccData(self, copyin, copyout, copy, create)

    def parallel_loop(self, n: int, kernelfn: KernelFn, args,
                      reduction: str | None = None,
                      gang: int | None = None, vector: int | None = None,
                      async_: int | None = None):
        """``{sentinel} parallel loop [clauses]``."""
        parts = ["parallel loop copyin(data)"]
        if reduction:
            parts.append(f"reduction({reduction})")
        if gang or vector:
            parts.append(f"gang num_gangs({gang or 0}) vector_length({vector or 0})")
        if async_ is not None:
            parts.append(f"async({async_})")
        block = vector or BLOCK
        grid = gang or max(1, (n + block - 1) // block)
        return self._region(" ".join(parts), kernelfn, (grid,), (block,), args,
                            async_=async_)

    def kernels_region(self, n: int, kernelfn: KernelFn, args):
        """``{sentinel} kernels``: compiler-discovered parallelism."""
        grid = max(1, (n + BLOCK - 1) // BLOCK)
        return self._region("kernels copyin(data)", kernelfn, (grid,), (BLOCK,), args)

    def serial_region(self, kernelfn: KernelFn, args):
        """``{sentinel} serial`` (OpenACC 3.0): one gang of one thread."""
        return self._region("serial copyin(data)", kernelfn, (1,), (1,), args)

    def reduce_sum(self, n: int, data: DeviceArray) -> float:
        out = self.alloc(np.float64, 1)
        grid = min(256, max(1, (n + BLOCK - 1) // BLOCK))
        self._region("parallel loop reduction(+: acc) copyin(data)",
                     KL.reduce_sum, (grid,), (BLOCK,), [n, data, out])
        result = float(out.copy_to_host()[0])
        out.free()
        return result

    def wait(self, async_: int | None = None) -> None:
        """``{sentinel} wait [(queue)]``."""
        parse_acc_directive("wait")
        if async_ is None:
            for queue in self._queues.values():
                queue.synchronize()
            self.synchronize()
        else:
            self._queue(async_).synchronize()

    # ======================================================================
    # Probe surface
    # ======================================================================

    def probe_parallel(self, n: int = 4096) -> None:
        rng = np.random.default_rng(11)
        x_h, y_h = rng.random(n), rng.random(n)
        expect = 3.0 * x_h + y_h
        x, y = self.to_device(x_h), self.to_device(y_h)
        self.parallel_loop(n, KL.axpy, [n, 3.0, x, y])
        if not np.allclose(y.copy_to_host(), expect):
            raise ApiError("acc parallel loop wrong")
        x.free(); y.free()

    def probe_kernels_construct(self, n: int = 4096) -> None:
        x = self.to_device(np.ones(n))
        self.kernels_region(n, KL.scale_inplace, [n, 2.0, x])
        if not np.allclose(x.copy_to_host(), 2.0):
            raise ApiError("acc kernels region wrong")
        x.free()

    def probe_data_region(self, n: int = 2048) -> None:
        a_h = np.full(n, 2.0)
        b_h = np.zeros(n)
        with self.data(copyin=[a_h], copyout=[b_h]) as region:
            self.parallel_loop(
                n, KL.stream_copy, [n, region.device(a_h), region.device(b_h)]
            )
        if not np.allclose(b_h, 2.0):
            raise ApiError("acc data region copyout wrong")

    def probe_reduction(self, n: int = 8192) -> None:
        x = self.to_device(np.full(n, 0.125))
        if not np.isclose(self.reduce_sum(n, x), 0.125 * n):
            raise ApiError("acc reduction wrong")
        x.free()

    def probe_gang_vector(self, n: int = 4096) -> None:
        x = self.to_device(np.ones(n))
        self.parallel_loop(n, KL.scale_inplace, [n, 2.0, x],
                           gang=(n + 127) // 128, vector=128)
        if not np.allclose(x.copy_to_host(), 2.0):
            raise ApiError("acc gang/vector mapping wrong")
        x.free()

    def probe_async_wait(self, n: int = 4096) -> None:
        x1 = self.to_device(np.ones(n))
        x2 = self.to_device(np.ones(n))
        self.parallel_loop(n, KL.scale_inplace, [n, 2.0, x1], async_=1)
        self.parallel_loop(n, KL.scale_inplace, [n, 3.0, x2], async_=2)
        self.wait()
        if not (np.allclose(x1.copy_to_host(), 2.0)
                and np.allclose(x2.copy_to_host(), 3.0)):
            raise ApiError("acc async queues wrong")
        x1.free(); x2.free()

    def probe_serial(self, n: int = 8) -> None:
        out = self.alloc(np.float64, n)
        self.serial_region(KL.fill, [1, 9.0, out])
        got = out.copy_to_host()
        if not (got[0] == 9.0 and np.all(got[1:] == 0.0)):
            raise ApiError("acc serial construct wrong")
        out.free()
