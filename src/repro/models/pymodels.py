"""The Python layer: GPU access from Python (descriptions 17/30/44).

One shared machinery (:class:`PyPackage` + the CuPy-style
:class:`GpuArray`) instantiated as the concrete packages the paper
names, each with its measured capability subset:

========================  ========  ==========================================
package                   backend   notes (from §4)
========================  ========  ==========================================
``cuda-python``           CUDA      NVIDIA's own low-level bindings (PyPI)
``pycuda``                CUDA      community bindings + gpuarray layer
``cupy``                  CUDA      NumPy-compatible arrays, kernels, libs
``numba``                 CUDA      JIT kernels via decorators
``cupy-rocm``             HIP       experimental AMD support (cupy-rocm-5-0)
``pyhip``                 HIP       low-level bindings (pyhip-interface)
``numba-amd``             HIP       once existed, no longer maintained
``dpctl``                 SYCL      Intel's Data Parallel Control bindings
``dpnp``                  SYCL      Intel's Data Parallel Extension for NumPy
``numba-dpex``            SYCL      Intel's Numba extension
========================  ========  ==========================================

A :class:`GpuArray` supports NumPy-style expressions (``2.0 * x + y``)
by launching elementwise kernels on the simulated device, reductions,
and explicit host interop — the surface the Python-column probes
measure.
"""

from __future__ import annotations

import numpy as np

from repro import kernels as KL
from repro.enums import Language, Maturity, Model, Provider, Vendor
from repro.errors import ApiError, UnsupportedFeatureError
from repro.frontends.kernel_dsl import KernelFn, compile_kernel
from repro.models.base import DeviceArray
from repro.models.cuda import Cuda
from repro.models.hip import Hip
from repro.models.sycl import Range, SyclQueue


class GpuArray:
    """A device-resident float64 array with NumPy-style operators."""

    def __init__(self, package: "PyPackage", device_array: DeviceArray):
        self.package = package
        self.device_array = device_array

    @property
    def size(self) -> int:
        return self.device_array.count

    @property
    def addr(self) -> int:
        return self.device_array.addr

    # -- operators (each launches a device kernel) -------------------------

    def _binary(self, other, kern: KernelFn, scalar_kern: KernelFn | None):
        pkg = self.package
        pkg._need("py:ufuncs")
        out = pkg.empty(self.size)
        if isinstance(other, GpuArray):
            pkg._launch(kern, self.size, [self.size, self, other, out])
        elif scalar_kern is not None:
            pkg._launch(scalar_kern, self.size,
                        [self.size, float(other), self, out])
        else:
            return NotImplemented
        return out

    def __add__(self, other):
        return self._binary(other, KL.ew_add, KL.ew_scalar_add)

    __radd__ = __add__

    def __sub__(self, other):
        return self._binary(other, KL.ew_sub, None)

    def __mul__(self, other):
        return self._binary(other, KL.ew_mul, KL.ew_scalar_mul)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._binary(other, KL.ew_div, None)

    def sum(self) -> float:
        return self.package.sum(self)

    def dot(self, other: "GpuArray") -> float:
        return self.package.dot(self, other)

    def get(self) -> np.ndarray:
        """Copy back to host (CuPy's ``.get()``)."""
        return self.package.asnumpy(self)

    def free(self) -> None:
        self.device_array.free()


class PyPackage:
    """One Python GPU package with a measured capability subset."""

    def __init__(self, name: str, device, backend: str, toolchain: str,
                 features: frozenset[str], provider: Provider,
                 maturity: Maturity = Maturity.PRODUCTION):
        self.name = name
        self.features = features
        self.provider = provider
        self.maturity = maturity
        if backend == "cuda":
            self._rt = Cuda(device, toolchain)
        elif backend == "hip":
            self._rt = Hip(device, toolchain)
        elif backend == "sycl":
            self._rt = SyclQueue(device, toolchain)
        elif backend == "opencl":
            from repro.models.opencl import _ClRuntime

            self._rt = _ClRuntime(device)
        else:
            raise ApiError(f"unknown Python backend '{backend}'")
        # Interpreter dispatch: each launch crosses the Python/C boundary.
        self._rt.dispatch_overhead_s += 8.0e-6
        self.backend = backend
        self.device = device

    def _need(self, tag: str) -> None:
        if tag not in self.features:
            raise UnsupportedFeatureError(tag, toolchain=self.name)

    def _launch(self, kernelfn: KernelFn, n: int, args, grid=None,
                stream=None) -> None:
        resolved = [a.addr if isinstance(a, GpuArray) else a for a in args]
        rt = self._rt
        if isinstance(rt, SyclQueue):
            rng = Range(n) if grid is None else Range(n)
            rt.parallel_for(rng, kernelfn, resolved)
            rt.wait()
        elif hasattr(rt, "launch_1d"):
            if grid is None:
                rt.launch_1d(kernelfn, n, resolved, stream=stream)
            else:
                rt.launch_kernel(kernelfn, (grid,), (KL.BLOCK,), resolved,
                                 stream=stream)
        else:  # generic offload runtime (e.g. the OpenCL driver path)
            rt.launch_n(kernelfn, n, resolved,
                        features=sorted(getattr(rt, "_tags", ())),
                        stream=stream, grid=grid)

    # -- array construction ------------------------------------------------------

    def asarray(self, host: np.ndarray) -> GpuArray:
        self._need("py:numpy_interop")
        host = np.asarray(host, dtype=np.float64)
        return GpuArray(self, self._rt.to_device(host))

    def empty(self, n: int) -> GpuArray:
        return GpuArray(self, self._rt.alloc(np.float64, n))

    def asnumpy(self, arr: GpuArray) -> np.ndarray:
        self._need("py:numpy_interop")
        return arr.device_array.copy_to_host()

    # -- reductions and BLAS ------------------------------------------------------

    def sum(self, arr: GpuArray) -> float:
        self._need("py:reduction")
        out = self._rt.alloc(np.float64, 1)
        n = arr.size
        grid = min(256, max(1, (n + KL.BLOCK - 1) // KL.BLOCK))
        self._launch(KL.reduce_sum, n, [n, arr, out], grid=grid)
        result = float(out.copy_to_host()[0])
        out.free()
        return result

    def dot(self, a: GpuArray, b: GpuArray) -> float:
        self._need("py:reduction")
        out = self._rt.alloc(np.float64, 1)
        n = min(a.size, b.size)
        grid = min(256, max(1, (n + KL.BLOCK - 1) // KL.BLOCK))
        self._launch(KL.stream_dot, n, [n, a, b, out], grid=grid)
        result = float(out.copy_to_host()[0])
        out.free()
        return result

    def blas_axpy(self, alpha: float, x: GpuArray, y: GpuArray) -> None:
        self._need("py:blas")
        rt = self._rt
        if isinstance(rt, SyclQueue):
            self._launch(KL.axpy, x.size, [x.size, alpha, x, y])
        else:
            rt.blas_axpy(x.size, alpha, x.device_array, y.device_array)

    # -- kernels and streams -----------------------------------------------------

    def raw_kernel(self, kernelfn: KernelFn):
        """CuPy RawKernel / Numba @cuda.jit analog: a callable launcher."""
        self._need("py:custom_kernels")

        def launcher(n: int, args) -> None:
            self._launch(kernelfn, n, args)

        return launcher

    def jit(self, pyfunc):
        """Numba-style decorator: compile a DSL function to a launcher."""
        self._need("py:custom_kernels")
        kernelfn = compile_kernel(pyfunc)
        return self.raw_kernel(kernelfn)

    def stream(self):
        self._need("py:streams")
        if isinstance(self._rt, SyclQueue):
            return self._rt._new_stream()
        return self._rt.stream_create()

    # ======================================================================
    # Probe surface
    # ======================================================================

    def probe_ufuncs(self, n: int = 2048) -> None:
        rng = np.random.default_rng(41)
        x_h, y_h = rng.random(n), rng.random(n)
        x, y = self.asarray(x_h), self.asarray(y_h)
        z = 2.0 * x + y
        if not np.allclose(z.get(), 2.0 * x_h + y_h):
            raise ApiError("python ufunc expression wrong")
        for a in (x, y, z):
            a.free()

    def probe_custom_kernel(self, n: int = 2048) -> None:
        launcher = self.raw_kernel(KL.scale_inplace)
        x = GpuArray(self, self._rt.to_device(np.ones(n)))
        launcher(n, [n, 7.0, x])
        if not np.allclose(x.device_array.copy_to_host(), 7.0):
            raise ApiError("python raw kernel wrong")
        x.free()

    def probe_reduction(self, n: int = 8192) -> None:
        x = GpuArray(self, self._rt.to_device(np.full(n, 0.5)))
        if not np.isclose(self.sum(x), 0.5 * n):
            raise ApiError("python reduction wrong")
        x.free()

    def probe_streams(self, n: int = 2048) -> None:
        s = self.stream()
        x = GpuArray(self, self._rt.to_device(np.ones(n)))
        self._launch(KL.scale_inplace, n, [n, 2.0, x], stream=s)
        s.synchronize()
        if not np.allclose(x.device_array.copy_to_host(), 2.0):
            raise ApiError("python stream launch wrong")
        x.free()

    def probe_blas(self, n: int = 4096) -> None:
        rng = np.random.default_rng(43)
        x_h, y_h = rng.random(n), rng.random(n)
        x, y = self.asarray(x_h), self.asarray(y_h)
        self.blas_axpy(1.5, x, y)
        if not np.allclose(y.get(), 1.5 * x_h + y_h):
            raise ApiError("python blas axpy wrong")
        x.free(); y.free()

    def probe_numpy_interop(self, n: int = 1024) -> None:
        data = np.arange(n, dtype=np.float64)
        x = self.asarray(data)
        if not np.array_equal(x.get(), data):
            raise ApiError("python numpy interop roundtrip wrong")
        x.free()


_ALL = frozenset({"py:ufuncs", "py:custom_kernels", "py:reduction",
                  "py:streams", "py:blas", "py:numpy_interop"})


def make_package(name: str, device) -> PyPackage:
    """Instantiate one of the named Python packages on a device."""
    vendor = device.vendor
    table: dict[str, tuple] = {
        # NVIDIA ecosystem (description 17)
        "cuda-python": ("cuda", "nvcc", _ALL, Provider.NVIDIA,
                        Maturity.PRODUCTION, Vendor.NVIDIA),
        "pycuda": ("cuda", "nvcc", _ALL - {"py:blas"}, Provider.COMMUNITY,
                   Maturity.PRODUCTION, Vendor.NVIDIA),
        "cupy": ("cuda", "nvcc", _ALL, Provider.COMMUNITY,
                 Maturity.PRODUCTION, Vendor.NVIDIA),
        "numba": ("cuda", "nvcc", _ALL - {"py:blas"}, Provider.COMMUNITY,
                  Maturity.PRODUCTION, Vendor.NVIDIA),
        # AMD ecosystem (description 30)
        "cupy-rocm": ("hip", "hipcc", _ALL, Provider.COMMUNITY,
                      Maturity.EXPERIMENTAL, Vendor.AMD),
        "pyhip": ("hip", "hipcc",
                  frozenset({"py:custom_kernels", "py:numpy_interop"}),
                  Provider.COMMUNITY, Maturity.PRODUCTION, Vendor.AMD),
        "numba-amd": ("hip", "hipcc", _ALL - {"py:blas"}, Provider.COMMUNITY,
                      Maturity.UNMAINTAINED, Vendor.AMD),
        # 'Bindings to OpenCL also exist (PyOpenCL)' — description 30.
        "pyopencl": ("opencl", None,
                     frozenset({"py:ufuncs", "py:custom_kernels",
                                "py:reduction", "py:numpy_interop"}),
                     Provider.COMMUNITY, Maturity.PRODUCTION, Vendor.AMD),
        # Intel ecosystem (description 44)
        "dpctl": ("sycl", "dpcpp", _ALL - {"py:blas"}, Provider.INTEL,
                  Maturity.PRODUCTION, Vendor.INTEL),
        "dpnp": ("sycl", "dpcpp", _ALL, Provider.INTEL,
                 Maturity.PRODUCTION, Vendor.INTEL),
        "numba-dpex": ("sycl", "dpcpp", _ALL, Provider.INTEL,
                       Maturity.PRODUCTION, Vendor.INTEL),
    }
    try:
        backend, toolchain, feats, provider, maturity, home = table[name]
    except KeyError:
        raise ApiError(f"unknown Python package '{name}'") from None
    if vendor is not home:
        raise ApiError(
            f"package '{name}' targets {home.value} GPUs, not {vendor.value}"
        )
    return PyPackage(name, device, backend, toolchain, feats, provider, maturity)


#: Packages available per vendor (the paper's description numbers).
PACKAGES_BY_VENDOR: dict[Vendor, tuple[str, ...]] = {
    Vendor.NVIDIA: ("cuda-python", "pycuda", "cupy", "numba"),
    Vendor.AMD: ("cupy-rocm", "pyhip", "numba-amd", "pyopencl"),
    Vendor.INTEL: ("dpctl", "dpnp", "numba-dpex"),
}
