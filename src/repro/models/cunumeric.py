"""cuNumeric-like distributed arrays over multiple simulated GPUs.

Description 17 names cuNumeric as the arguably highest-level Python
venue: "allows to access the GPU via Numpy-inspired functions (like
CuPy), but utilizes the Legate library to transparently scale to
multiple GPUs."  This module reproduces that model on the simulator:

* a :class:`LegateRuntime` owns several (NVIDIA) devices;
* a :class:`LegateArray` is sharded across them in equal contiguous
  blocks;
* NumPy-inspired operations (``add``, ``multiply``, scalar ops,
  ``sum``, ``dot``) dispatch one kernel per shard — on *independent
  device timelines*, so the simulated wall time genuinely shrinks as
  devices are added (the "transparent scaling" being advertised).
"""

from __future__ import annotations

import numpy as np

from repro import kernels as KL
from repro.enums import Vendor
from repro.errors import ApiError
from repro.gpu.device import Device
from repro.kernels import BLOCK
from repro.models.base import DeviceArray
from repro.models.cuda import Cuda


class LegateArray:
    """A float64 array sharded across the runtime's devices."""

    def __init__(self, runtime: "LegateRuntime", size: int,
                 shards: list[DeviceArray]):
        self.runtime = runtime
        self.size = size
        self.shards = shards

    @property
    def shard_sizes(self) -> list[int]:
        return [s.count for s in self.shards]

    # -- NumPy-inspired operators -------------------------------------------

    def _binary(self, other, kern, scalar_kern):
        rt = self.runtime
        out = rt.empty(self.size)
        if isinstance(other, LegateArray):
            if other.size != self.size:
                raise ApiError("shape mismatch between legate arrays")
            for cuda, a, b, o in zip(rt.runtimes, self.shards, other.shards,
                                     out.shards):
                n = a.count
                cuda.launch_1d(kern, n, [n, a, b, o])
        else:
            for cuda, a, o in zip(rt.runtimes, self.shards, out.shards):
                n = a.count
                cuda.launch_1d(scalar_kern, n, [n, float(other), a, o])
        return out

    def __add__(self, other):
        return self._binary(other, KL.ew_add, KL.ew_scalar_add)

    __radd__ = __add__

    def __mul__(self, other):
        return self._binary(other, KL.ew_mul, KL.ew_scalar_mul)

    __rmul__ = __mul__

    def __sub__(self, other):
        if not isinstance(other, LegateArray):
            return self + (-float(other))
        return self._binary(other, KL.ew_sub, None)

    def sum(self) -> float:
        """Per-device partial sums, combined on the host."""
        total = 0.0
        for cuda, shard in zip(self.runtime.runtimes, self.shards):
            out = cuda.alloc(np.float64, 1)
            n = shard.count
            grid = min(256, max(1, (n + BLOCK - 1) // BLOCK))
            cuda.launch_n(KL.reduce_sum, n, [n, shard, out],
                          features=cuda._kernel_tags(), grid=grid)
            total += float(out.copy_to_host()[0])
            out.free()
        return total

    def dot(self, other: "LegateArray") -> float:
        if other.size != self.size:
            raise ApiError("shape mismatch between legate arrays")
        total = 0.0
        for cuda, a, b in zip(self.runtime.runtimes, self.shards,
                              other.shards):
            out = cuda.alloc(np.float64, 1)
            n = a.count
            grid = min(256, max(1, (n + BLOCK - 1) // BLOCK))
            cuda.launch_n(KL.stream_dot, n, [n, a, b, out],
                          features=cuda._kernel_tags(), grid=grid)
            total += float(out.copy_to_host()[0])
            out.free()
        return total

    def get(self) -> np.ndarray:
        """Gather the distributed array back to the host."""
        return np.concatenate([s.copy_to_host() for s in self.shards])

    def free(self) -> None:
        for s in self.shards:
            s.free()


class LegateRuntime:
    """The Legate-style runtime: a set of same-vendor devices."""

    def __init__(self, devices: list[Device]):
        if not devices:
            raise ApiError("legate runtime needs at least one device")
        vendors = {d.vendor for d in devices}
        if vendors != {Vendor.NVIDIA}:
            raise ApiError(
                "cuNumeric targets NVIDIA GPUs (description 17); got "
                f"{[v.value for v in vendors]}"
            )
        self.devices = devices
        self.runtimes = [Cuda(d) for d in devices]
        for rt in self.runtimes:
            # Legate task scheduling costs more than a raw launch.
            rt.dispatch_overhead_s += 10.0e-6

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    def _split(self, size: int) -> list[int]:
        base, extra = divmod(size, self.n_devices)
        return [base + (1 if i < extra else 0) for i in range(self.n_devices)]

    def empty(self, size: int) -> LegateArray:
        if size <= 0:
            raise ApiError("legate arrays must have positive size")
        # Tiny arrays occupy only the first devices (zero-sized shards
        # are skipped; shard i always lives on device i).
        shards = [
            rt.alloc(np.float64, n)
            for rt, n in zip(self.runtimes, self._split(size))
            if n > 0
        ]
        return LegateArray(self, size, shards)

    def array(self, host: np.ndarray) -> LegateArray:
        host = np.ascontiguousarray(host, dtype=np.float64).reshape(-1)
        out = self.empty(host.size)
        offset = 0
        for shard in out.shards:
            shard.copy_from_host(host[offset:offset + shard.count])
            offset += shard.count
        return out

    def zeros(self, size: int) -> LegateArray:
        return self.array(np.zeros(size))

    def synchronize(self) -> float:
        """Drain every device; returns the slowest device's time."""
        return max(d.synchronize() for d in self.devices)
