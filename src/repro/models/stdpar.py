"""Standard-language parallelism (descriptions 11/12/26/27/40/41).

Two runtimes:

* :class:`StdPar` — the C++ parallel STL: ``for_each``, ``transform``,
  ``reduce``, ``transform_reduce``, ``inclusive_scan``, ``sort`` under
  the ``par``/``par_unseq`` execution policies.  The ``namespace``
  attribute models the §5 ambivalence for Intel: oneDPL's algorithms
  live in ``oneapi::dpl::``, so requiring true ``std::`` conformance
  (the ``stdpar:std_namespace`` feature) fails there while NVHPC's
  ``-stdpar=gpu`` passes.
* :class:`DoConcurrent` — Fortran ``do concurrent`` offload with
  locality specifiers and F2023 ``reduce`` clauses (NVHPC ``-stdpar``,
  Intel ``ifx``; no AMD path exists, description 27).

``sort`` really sorts on the device (a bitonic network of
compare-exchange kernel launches) and ``inclusive_scan`` is a
Hillis-Steele ladder — the substrate work a real stdpar runtime does.
"""

from __future__ import annotations

import numpy as np

from repro import kernels as KL
from repro.enums import Language, Model
from repro.errors import ApiError
from repro.kernels import BLOCK
from repro.models.base import DeviceArray, OffloadRuntime

#: Canned elementwise operations for for_each/transform.
_UNARY_KERNELS = {
    "sqrt": KL.ew_sqrt,
    "exp": KL.ew_exp,
}
_BINARY_KERNELS = {
    "add": KL.ew_add,
    "sub": KL.ew_sub,
    "mul": KL.ew_mul,
    "div": KL.ew_div,
    "max": KL.ew_maximum,
}

_POLICIES = ("par", "par_unseq")


class StdPar(OffloadRuntime):
    """C++ standard parallelism offload runtime."""

    MODEL = Model.STANDARD
    LANGUAGES = (Language.CPP,)
    TAG_PREFIX = "stdpar"
    DEFAULT_TOOLCHAIN = "nvhpc"
    DISPATCH_OVERHEAD_S = 0.5e-6  # algorithm-object setup

    def __init__(self, device, toolchain=None, language=Language.CPP):
        super().__init__(device, toolchain, language)
        #: Where the algorithms live; oneDPL uses its own namespace.
        self.namespace = "oneapi::dpl" if self.toolchain.name == "onedpl" else "std"

    @staticmethod
    def _check_policy(policy: str) -> None:
        if policy not in _POLICIES:
            raise ApiError(
                f"execution policy '{policy}' does not offload; use par/par_unseq"
            )

    def _ns_tags(self, base: str, std_namespace: bool = False) -> list[str]:
        tags = [f"stdpar:{base}"]
        if std_namespace:
            tags.append("stdpar:std_namespace")
        return tags

    # -- algorithms --------------------------------------------------------

    def for_each_scale(self, data: DeviceArray, factor: float,
                       policy: str = "par_unseq",
                       std_namespace: bool = False) -> None:
        """``for_each(policy, ...)`` applying ``x *= factor``."""
        self._check_policy(policy)
        self.launch_n(KL.scale_inplace, data.count,
                      [data.count, factor, data],
                      features=self._ns_tags("for_each", std_namespace))

    def transform(self, a: DeviceArray, b: DeviceArray | None,
                  out: DeviceArray, op: str, policy: str = "par_unseq") -> None:
        """``transform(policy, ...)`` with a canned unary/binary operator."""
        self._check_policy(policy)
        n = out.count
        if b is None:
            kern = _UNARY_KERNELS.get(op)
            if kern is None:
                raise ApiError(f"unknown unary transform op '{op}'")
            self.launch_n(kern, n, [n, a, out],
                          features=self._ns_tags("transform"))
        else:
            kern = _BINARY_KERNELS.get(op)
            if kern is None:
                raise ApiError(f"unknown binary transform op '{op}'")
            self.launch_n(kern, n, [n, a, b, out],
                          features=self._ns_tags("transform"))

    def reduce(self, data: DeviceArray, policy: str = "par_unseq") -> float:
        """``reduce(policy, begin, end)`` — sum."""
        self._check_policy(policy)
        out = self.alloc(np.float64, 1)
        n = data.count
        grid = min(256, max(1, (n + BLOCK - 1) // BLOCK))
        self.launch_n(KL.reduce_sum, n, [n, data, out],
                      features=self._ns_tags("reduce"), grid=grid)
        result = float(out.copy_to_host()[0])
        out.free()
        return result

    def transform_reduce(self, a: DeviceArray, b: DeviceArray,
                         policy: str = "par_unseq") -> float:
        """``transform_reduce(policy, ...)`` — inner product."""
        self._check_policy(policy)
        out = self.alloc(np.float64, 1)
        n = min(a.count, b.count)
        grid = min(256, max(1, (n + BLOCK - 1) // BLOCK))
        self.launch_n(KL.stream_dot, n, [n, a, b, out],
                      features=self._ns_tags("transform_reduce"), grid=grid)
        result = float(out.copy_to_host()[0])
        out.free()
        return result

    def inclusive_scan(self, data: DeviceArray, policy: str = "par_unseq") -> None:
        """In-place inclusive prefix sum (Hillis-Steele ladder)."""
        self._check_policy(policy)
        n = data.count
        tmp = self.alloc(np.float64, n)
        src, dst = data, tmp
        offset = 1
        while offset < n:
            self.launch_n(KL.scan_step, n, [n, offset, src, dst],
                          features=self._ns_tags("scan"))
            src, dst = dst, src
            offset *= 2
        if src is not data:
            self.device.memcpy_d2d(data.allocation, src.allocation, data.nbytes)
        tmp.free()

    def sort(self, data: DeviceArray, policy: str = "par_unseq") -> None:
        """In-place ascending sort via a bitonic network.

        Non-power-of-two sizes are padded with +inf in a scratch buffer,
        sorted, and copied back — entirely on the device.
        """
        self._check_policy(policy)
        n = data.count
        m = 1
        while m < n:
            m *= 2
        work = data
        if m != n:
            work = self.alloc(np.float64, m)
            self.launch_n(KL.fill, m, [m, np.inf, work],
                          features=self._ns_tags("sort"))
            self.device.memcpy_d2d(work.allocation, data.allocation, data.nbytes)
        k = 2
        while k <= m:
            j = k // 2
            while j > 0:
                self.launch_n(KL.bitonic_step, m, [m, j, k, work],
                              features=self._ns_tags("sort"))
                j //= 2
            k *= 2
        if work is not data:
            self.device.memcpy_d2d(data.allocation, work.allocation, data.nbytes)
            work.free()

    # ======================================================================
    # Probe surface
    # ======================================================================

    def probe_for_each(self, n: int = 4096) -> None:
        x = self.to_device(np.ones(n))
        self.for_each_scale(x, 2.0)
        if not np.allclose(x.copy_to_host(), 2.0):
            raise ApiError("stdpar for_each wrong")
        x.free()

    def probe_transform(self, n: int = 4096) -> None:
        rng = np.random.default_rng(17)
        a_h, b_h = rng.random(n), rng.random(n)
        a, b = self.to_device(a_h), self.to_device(b_h)
        out = self.alloc(np.float64, n)
        self.transform(a, b, out, "add")
        if not np.allclose(out.copy_to_host(), a_h + b_h):
            raise ApiError("stdpar transform wrong")
        for arr in (a, b, out):
            arr.free()

    def probe_reduce(self, n: int = 8192) -> None:
        x = self.to_device(np.full(n, 2.0))
        if not np.isclose(self.reduce(x), 2.0 * n):
            raise ApiError("stdpar reduce wrong")
        x.free()

    def probe_transform_reduce(self, n: int = 4096) -> None:
        rng = np.random.default_rng(19)
        a_h, b_h = rng.random(n), rng.random(n)
        a, b = self.to_device(a_h), self.to_device(b_h)
        if not np.isclose(self.transform_reduce(a, b), a_h @ b_h):
            raise ApiError("stdpar transform_reduce wrong")
        a.free(); b.free()

    def probe_scan(self, n: int = 1024) -> None:
        rng = np.random.default_rng(23)
        x_h = rng.random(n)
        x = self.to_device(x_h)
        self.inclusive_scan(x)
        if not np.allclose(x.copy_to_host(), np.cumsum(x_h)):
            raise ApiError("stdpar inclusive_scan wrong")
        x.free()

    def probe_sort(self, n: int = 1000) -> None:
        rng = np.random.default_rng(29)
        x_h = rng.random(n)
        x = self.to_device(x_h)
        self.sort(x)
        if not np.allclose(x.copy_to_host(), np.sort(x_h)):
            raise ApiError("stdpar sort wrong")
        x.free()

    def probe_std_namespace(self, n: int = 512) -> None:
        """Algorithms reachable as ``std::`` (fails in oneapi::dpl)."""
        x = self.to_device(np.ones(n))
        self.for_each_scale(x, 2.0, std_namespace=True)
        if not np.allclose(x.copy_to_host(), 2.0):
            raise ApiError("std-namespace for_each wrong")
        x.free()


class DoConcurrent(OffloadRuntime):
    """Fortran ``do concurrent`` offload runtime."""

    MODEL = Model.STANDARD
    LANGUAGES = (Language.FORTRAN,)
    TAG_PREFIX = "dc"
    DEFAULT_TOOLCHAIN = "nvhpc"
    DISPATCH_OVERHEAD_S = 0.5e-6

    def __init__(self, device, toolchain=None, language=Language.FORTRAN):
        super().__init__(device, toolchain, language)

    def do_concurrent(self, n: int, kernelfn, args,
                      locality: tuple[str, ...] = (),
                      reduce: str | None = None):
        """``do concurrent (i=1:n) [locality] [reduce]`` offload."""
        tags = ["dc:do_concurrent"]
        if locality:
            tags.append("dc:locality_specifiers")
        if reduce:
            tags.append("dc:reduce")
        grid = min(256, max(1, (n + BLOCK - 1) // BLOCK)) if reduce else None
        return self.launch_n(kernelfn, n, args, features=tags, grid=grid)

    def reduce_sum(self, n: int, data: DeviceArray) -> float:
        """``do concurrent ... reduce(+:acc)`` (Fortran 2023)."""
        out = self.alloc(np.float64, 1)
        self.do_concurrent(n, KL.reduce_sum, [n, data, out], reduce="+:acc")
        result = float(out.copy_to_host()[0])
        out.free()
        return result

    # -- probes -------------------------------------------------------------

    def probe_do_concurrent(self, n: int = 4096) -> None:
        rng = np.random.default_rng(31)
        x_h, y_h = rng.random(n), rng.random(n)
        x, y = self.to_device(x_h), self.to_device(y_h)
        self.do_concurrent(n, KL.axpy, [n, 2.0, x, y])
        if not np.allclose(y.copy_to_host(), 2.0 * x_h + y_h):
            raise ApiError("do concurrent axpy wrong")
        x.free(); y.free()

    def probe_locality(self, n: int = 2048) -> None:
        x = self.to_device(np.ones(n))
        self.do_concurrent(n, KL.scale_inplace, [n, 2.0, x],
                           locality=("local(tmp)", "shared(x)"))
        if not np.allclose(x.copy_to_host(), 2.0):
            raise ApiError("do concurrent locality wrong")
        x.free()

    def probe_reduce(self, n: int = 8192) -> None:
        x = self.to_device(np.full(n, 0.5))
        if not np.isclose(self.reduce_sum(n, x), 0.5 * n):
            raise ApiError("do concurrent reduce wrong")
        x.free()
