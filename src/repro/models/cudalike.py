"""Shared implementation of the CUDA-style runtime APIs.

HIP "is strongly inspired by CUDA; the mapping is relatively
straight-forward; API calls are named similarly" (description 3) — so
the simulator implements the common runtime once and the
:mod:`repro.models.cuda` / :mod:`repro.models.hip` packages expose it
under their own API names and feature-tag vocabularies.

The API surface covers what the paper's support assessments hinge on:
explicit memory management, async streams, events, managed/unified
memory, task graphs, cooperative launch, and vendor BLAS-class library
calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import kernels as KL
from repro.enums import Language, Model
from repro.errors import ApiError, LaunchError
from repro.frontends.kernel_dsl import KernelFn
from repro.gpu.stream import Event, Stream
from repro.kernels import BLOCK
from repro.models.base import DeviceArray, OffloadRuntime


@dataclass
class GraphNode:
    kernelfn: KernelFn
    grid: tuple
    block: tuple
    args: tuple
    features: tuple


@dataclass
class GraphExec:
    """An instantiated task graph ready for replay."""

    runtime: "CudaLikeRuntime"
    nodes: list[GraphNode] = field(default_factory=list)
    launches: int = 0

    def launch(self, stream: Stream | None = None) -> None:
        for node in self.nodes:
            binary = self.runtime.compile([node.kernelfn], node.features)
            self.runtime.launch(
                binary, node.kernelfn.name, node.grid, node.block,
                list(node.args), stream=stream,
            )
        self.launches += 1


class CudaLikeRuntime(OffloadRuntime):
    """Common CUDA/HIP runtime semantics."""

    MODEL = Model.CUDA
    LANGUAGES = (Language.CPP, Language.FORTRAN)
    TAG_PREFIX = "cuda"

    def __init__(self, device, toolchain=None, language=Language.CPP):
        super().__init__(device, toolchain, language)
        self._capture: list[GraphNode] | None = None

    # -- tag helpers --------------------------------------------------------

    def _kernel_tags(self) -> tuple[str, ...]:
        """Kernel-definition tags differ for CUDA Fortran (cuf:kernels)."""
        if self.MODEL is Model.CUDA and self.language is Language.FORTRAN:
            return ("cuf:kernels", self.tag("memcpy"))
        return (self.tag("kernels"), self.tag("memcpy"))

    # -- memory management API -------------------------------------------------

    def malloc(self, nbytes: int) -> DeviceArray:
        """cudaMalloc/hipMalloc: raw byte allocation (uint8-typed)."""
        return self.alloc(np.uint8, nbytes)

    def malloc_typed(self, dtype: np.dtype, count: int) -> DeviceArray:
        return self.alloc(dtype, count)

    def malloc_managed(self, dtype: np.dtype, count: int) -> DeviceArray:
        """cudaMallocManaged: host-visible allocation (``.view()`` works)."""
        arr = DeviceArray(self, dtype, count, managed=True)
        return arr

    def memcpy_htod(self, dst: DeviceArray, src: np.ndarray,
                    stream: Stream | None = None) -> None:
        dst.copy_from_host(src, stream=stream)

    def memcpy_dtoh(self, src: DeviceArray, stream: Stream | None = None) -> np.ndarray:
        return src.copy_to_host(stream=stream)

    def memcpy_dtod(self, dst: DeviceArray, src: DeviceArray) -> None:
        self.device.memcpy_d2d(dst.allocation, src.allocation,
                               min(dst.nbytes, src.nbytes))

    def free(self, arr: DeviceArray) -> None:
        arr.free()

    # -- streams and events ------------------------------------------------------

    def stream_create(self) -> Stream:
        return self._new_stream()

    def stream_destroy(self, stream: Stream) -> None:
        stream.destroy()

    def stream_synchronize(self, stream: Stream) -> float:
        return stream.synchronize()

    def event_create(self) -> Event:
        return self._new_event()

    def event_record(self, event: Event, stream: Stream | None = None) -> Event:
        s = stream or self.device.default_stream
        return s.record(event)

    def event_elapsed(self, start: Event, end: Event) -> float:
        """Elapsed simulated seconds between two recorded events."""
        return end.elapsed_since(start)

    def stream_wait_event(self, stream: Stream, event: Event) -> None:
        stream.wait_event(event)

    def device_synchronize(self) -> float:
        return self.synchronize()

    # -- kernel launch ----------------------------------------------------------

    def launch_kernel(self, kernelfn: KernelFn, grid, block, args,
                      stream: Stream | None = None,
                      extra_features: tuple[str, ...] = ()):
        """``kernel<<<grid, block, 0, stream>>>(args...)``."""
        features = self._kernel_tags() + extra_features
        if self._capture is not None:
            grid_t = grid if isinstance(grid, tuple) else (grid,)
            block_t = block if isinstance(block, tuple) else (block,)
            self._capture.append(
                GraphNode(kernelfn, grid_t, block_t, tuple(args), features)
            )
            return None
        binary = self.compile([kernelfn], features)
        return self.launch(binary, kernelfn.name, grid, block, args, stream)

    def launch_1d(self, kernelfn: KernelFn, n: int, args,
                  stream: Stream | None = None,
                  extra_features: tuple[str, ...] = ()):
        grid = max(1, (n + BLOCK - 1) // BLOCK)
        return self.launch_kernel(kernelfn, (grid,), (BLOCK,), args, stream,
                                  extra_features)

    def launch_cooperative(self, kernelfn: KernelFn, grid, block, args,
                           stream: Stream | None = None):
        """cudaLaunchCooperativeKernel: whole grid must be co-resident."""
        grid_t = grid if isinstance(grid, tuple) else (grid,)
        block_t = block if isinstance(block, tuple) else (block,)
        threads = int(np.prod(grid_t)) * int(np.prod(block_t))
        if threads > self.device.spec.max_resident_threads:
            raise LaunchError(
                f"cooperative launch of {threads} threads exceeds resident "
                f"capacity {self.device.spec.max_resident_threads}"
            )
        return self.launch_kernel(
            kernelfn, grid, block, args, stream,
            extra_features=(self.tag("cooperative_groups"),),
        )

    # -- task graphs ------------------------------------------------------------

    def graph_begin_capture(self) -> None:
        if self._capture is not None:
            raise ApiError("graph capture already in progress")
        self._capture = []

    def graph_end_capture(self) -> GraphExec:
        if self._capture is None:
            raise ApiError("no graph capture in progress")
        nodes = self._capture
        self._capture = None
        # Instantiation compiles every node eagerly with the graph tag,
        # so toolchains without graph support fail here, like real ones.
        exec_ = GraphExec(self, nodes)
        for node in nodes:
            node.features = node.features + (self.tag("graphs"),)
            self.compile([node.kernelfn], node.features)
        return exec_

    # -- vendor library layer (cuBLAS / hipBLAS lite) ----------------------------

    def blas_axpy(self, n: int, alpha: float, x: DeviceArray, y: DeviceArray,
                  stream: Stream | None = None) -> None:
        features = self._kernel_tags() + (self.tag("libraries"),)
        binary = self.compile([KL.axpy], features)
        grid = max(1, (n + BLOCK - 1) // BLOCK)
        self.launch(binary, "axpy", (grid,), (BLOCK,), [n, alpha, x, y], stream)

    def blas_dot(self, n: int, x: DeviceArray, y: DeviceArray) -> float:
        features = self._kernel_tags() + (self.tag("libraries"),)
        binary = self.compile([KL.stream_dot], features)
        out = self.alloc(np.float64, 1)
        grid = min(256, max(1, (n + BLOCK - 1) // BLOCK))
        self.launch(binary, "stream_dot", (grid,), (BLOCK,), [n, x, y, out])
        result = float(out.copy_to_host()[0])
        out.free()
        return result

    def blas_gemv(self, m: int, n: int, alpha: float, a: DeviceArray,
                  x: DeviceArray, beta: float, y: DeviceArray) -> None:
        features = self._kernel_tags() + (self.tag("libraries"),)
        binary = self.compile([KL.gemv], features)
        grid = max(1, (m + BLOCK - 1) // BLOCK)
        self.launch(binary, "gemv", (grid,), (BLOCK,), [m, n, alpha, a, x, beta, y])

    # -- CUDA Fortran sugar ------------------------------------------------------

    def cuf_kernel_do(self, kernelfn: KernelFn, n: int, args,
                      stream: Stream | None = None):
        """``!$cuf kernel do``: compiler-parallelized loop (CUDA Fortran)."""
        if not (self.MODEL is Model.CUDA and self.language is Language.FORTRAN):
            raise ApiError("cuf kernels exist only in CUDA Fortran")
        return self.launch_1d(
            kernelfn, n, args, stream,
            extra_features=("cuf:cuf_kernels",),
        )

    # ======================================================================
    # Probe surface (used by repro.core.probes)
    # ======================================================================

    def probe_kernels(self, n: int = 4096) -> None:
        """Define + launch a kernel, move data both ways, verify."""
        rng = np.random.default_rng(7)
        b_h, c_h = rng.random(n), rng.random(n)
        a = self.alloc(np.float64, n)
        b = self.to_device(b_h)
        c = self.to_device(c_h)
        self.launch_1d(KL.stream_triad, n, [n, 2.5, a, b, c])
        got = a.copy_to_host()
        if not np.allclose(got, b_h + 2.5 * c_h):
            raise ApiError("triad verification failed")
        for arr in (a, b, c):
            arr.free()

    def probe_streams(self, n: int = 4096) -> None:
        """Two streams with independent copies + launches, then sync."""
        s1, s2 = self.stream_create(), self.stream_create()
        x_h = np.ones(n)
        x1, x2 = self.to_device(x_h), self.to_device(x_h)
        self.launch_1d(KL.scale_inplace, n, [n, 2.0, x1], stream=s1,
                       extra_features=(self.tag("streams"),))
        self.launch_1d(KL.scale_inplace, n, [n, 3.0, x2], stream=s2,
                       extra_features=(self.tag("streams"),))
        self.stream_synchronize(s1)
        self.stream_synchronize(s2)
        if not np.allclose(x1.copy_to_host(), 2.0):
            raise ApiError("stream 1 result wrong")
        if not np.allclose(x2.copy_to_host(), 3.0):
            raise ApiError("stream 2 result wrong")
        x1.free(); x2.free()

    def probe_events(self, n: int = 4096) -> None:
        """Event-based timing brackets a launch; elapsed must be > 0."""
        start, end = self.event_create(), self.event_create()
        x = self.to_device(np.ones(n))
        self.event_record(start)
        self.launch_1d(KL.scale_inplace, n, [n, 2.0, x],
                       extra_features=(self.tag("events"),))
        self.event_record(end)
        if self.event_elapsed(start, end) <= 0:
            raise ApiError("event timing returned non-positive duration")
        x.free()

    def probe_managed(self, n: int = 1024) -> None:
        """Managed memory: host writes via the mapped view, device reads."""
        arr = self.malloc_managed(np.float64, n)
        arr.view()[:] = np.arange(n, dtype=np.float64)
        self.launch_1d(KL.scale_inplace, n, [n, 2.0, arr],
                       extra_features=(self.tag("managed_memory"),))
        if not np.allclose(arr.view(), 2.0 * np.arange(n)):
            raise ApiError("managed memory roundtrip failed")
        arr.free()

    def probe_libraries(self, n: int = 4096) -> None:
        """Vendor BLAS layer: axpy then dot, verified against NumPy."""
        rng = np.random.default_rng(13)
        x_h, y_h = rng.random(n), rng.random(n)
        x, y = self.to_device(x_h), self.to_device(y_h)
        self.blas_axpy(n, 1.5, x, y)
        expect = 1.5 * x_h + y_h
        got = self.blas_dot(n, x, y)
        if not np.isclose(got, x_h @ expect):
            raise ApiError("library dot mismatch")
        x.free(); y.free()

    def probe_graphs(self, n: int = 2048) -> None:
        """Capture three launches into a graph and replay it twice."""
        x = self.to_device(np.ones(n))
        self.graph_begin_capture()
        for _ in range(3):
            self.launch_1d(KL.scale_inplace, n, [n, 2.0, x])
        graph = self.graph_end_capture()
        graph.launch()
        graph.launch()
        if not np.allclose(x.copy_to_host(), 2.0 ** 6):
            raise ApiError("graph replay produced wrong values")
        x.free()

    def probe_cooperative(self, n: int = 8192) -> None:
        """Cooperative (co-resident) launch path."""
        x = self.to_device(np.ones(n))
        grid = max(1, (n + BLOCK - 1) // BLOCK)
        self.launch_cooperative(KL.scale_inplace, (grid,), (BLOCK,), [n, 2.0, x])
        if not np.allclose(x.copy_to_host(), 2.0):
            raise ApiError("cooperative launch result wrong")
        x.free()

    def probe_cuf_kernels(self, n: int = 4096) -> None:
        """CUDA Fortran's !$cuf auto-kernel loops."""
        x = self.to_device(np.ones(n))
        self.cuf_kernel_do(KL.scale_inplace, n, [n, 4.0, x])
        if not np.allclose(x.copy_to_host(), 4.0):
            raise ApiError("cuf kernel result wrong")
        x.free()
