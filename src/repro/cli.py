"""``gpu-compat`` command-line interface.

Subcommands:

* ``table [--format text|markdown|html|tex|yaml] [--source paper|derived]``
  — render Figure 1.
* ``report`` — derive the matrix empirically and print the agreement
  report against the reconstructed published ratings.
* ``describe VENDOR MODEL LANGUAGE`` — print a cell's §4 description,
  routes, and measured coverage.
* ``advise --vendor V --language L`` / ``--model M --language L`` —
  route recommendations.
* ``routes`` — list the full route registry.
* ``lint [--module MOD] [--kernel NAME] [--block X,Y,Z] [--grid X,Y,Z]
  [--extent PARAM=COUNT] [--pass NAME] [--format text|json|sarif]`` —
  run the kernelsan static analyses over the bundled kernel library
  (default) or over the ``@kernel`` functions of an importable module.
* ``lint --routes [--format text|json|sarif]`` — statically derive the
  51-cell matrix from the route registry (toolchain capabilities +
  translator maps, no probe execution) and cross-check it against the
  reconstructed paper ratings (``RE01``–``RE03``).
* ``lint --perf [--jobs N] [--store DIR] [--n N] [--reps R]
  [--format text|json|sarif]`` — predict the perf matrix statically
  (perfstat's cost model, zero kernel executions), measure it
  dynamically, and cross-check the two (``PS01``–``PS06``).  A warm
  ``--store`` keeps the measured half execution-free too.
* ``lint --traces [--format text|json|sarif]`` — tracesan: statically
  re-prove every trace-compiled library kernel equivalent to its IR at
  its canonical geometry (``TC01``–``TC06``) — abstract interpretation
  only, zero kernel executions.
* ``lint --all [--format text|json|sarif]`` — all five lint families
  (kernelsan, routes, transval, perfstat, tracesan) in one run; merged
  report, worst per-family exit code.
* ``transval [--format text|json|sarif]`` — audit every shipped
  source-to-source translator (``TV01``–``TV06``).
* ``eval [--jobs N] [--execution thread|process] [--store DIR]
  [--metrics-json PATH]`` — build the matrix through the concurrent
  scheduler against a persistent result store (warm store: zero probe
  executions).  ``--execution process`` shards cells across a worker-
  process fleet (GIL-free); output is byte-identical on both backends
  at every ``--jobs`` count.
* ``perf [--jobs N] [--execution thread|process] [--store DIR] [--n N]
  [--reps R] [--format text|json|csv]`` — run the five BabelStream
  kernels through every viable route of every cell and report per-cell
  efficiencies, per-model cascades, and the Pennycook
  performance-portability metric.  Deterministic: the ``json``/``csv``
  output is byte-identical at every ``--jobs`` count on both execution
  backends.  A warm ``--store`` executes zero stream kernels.
  ``--static`` reports perfstat's *predicted* matrix instead — same
  formats, same reductions, zero kernel executions, cold or warm.
* ``serve [--host H] [--port P] [--jobs N] [--execution thread|process]
  [--store DIR] [--lazy] [--read-only]`` — serve the derived matrix
  over the loopback JSON API (``/cell``, ``/table``, ``/advise``,
  ``/lint/routes``, ``/lint/perf``, ``/lint/traces``, ``/metrics``,
  ``/perf/matrix``, ``/perf/cell``, ``/perf/portability``,
  ``/perf/static``, ``/admin/stores``, ``/admin/stores/clear``).
  ``--read-only`` turns the mutating ``/admin`` endpoints into typed
  403 ``read_only`` errors.

``--jobs`` for ``eval``/``perf``/``serve`` defaults to
``os.cpu_count()`` and shares one validator (must be >= 1; exit 2
otherwise); ``--execution`` selects the scheduler backend (``thread``
keeps the GIL-bound pool, ``process`` runs the worker fleet).

``--format json`` prints the ``LintReport`` as JSON (diagnostic code,
severity, kernel, path, message, hint, plus severity rollups) and
nothing else, for CI artifact upload and tooling; ``--format sarif``
prints the same findings as one SARIF 2.1.0 run (the shared serializer
in :mod:`repro.analysis.diagnostics`) for code-scanning upload.

The global ``--stats`` flag appends a summary of compile-cache
hit/miss counters and interpreter launch/batch totals after any
subcommand — the observability hooks for the block-batched execution
path and the content-keyed compile cache.

Exit codes (stable; scripts and CI rely on them):

====  =====================================================================
code  meaning
====  =====================================================================
0     success; for ``lint``/``transval``: no error-severity diagnostics
      (warnings OK); for ``lint --routes``: derived matrix matches the
      paper (documented RE03 divergences OK); for ``lint --perf``:
      predictions within tolerance, best routes confirmed; for ``lint
      --traces``: every traceable kernel proven exactly equivalent
1     findings: ``lint``/``transval`` found error-severity diagnostics,
      ``lint --routes`` found dual-rating warnings (RE02), ``lint
      --perf`` found best-route or structure mismatches (PS02/PS04),
      ``lint --traces`` proved only conservative bounds (TC04), or
      ``report`` disagreed with the published matrix.  ``lint --all``
      propagates the worst per-family code.  **Extension:** ``eval``/
      ``perf``/``serve`` exit 1 on a scheduler failure (a job exhausted
      its retry budget — :class:`~repro.service.SchedulerError`)
2     usage error (argparse: unknown flag, missing operand, bad value);
      **extension:** ``lint --routes`` also exits 2 on an RE01
      contradiction, ``lint --perf`` on a PS01 prediction error, and
      ``lint --traces`` on any TC01/TC02/TC03 — the tool's own
      components (registry vs. paper matrix, cost model vs.
      interpreter, trace compiler vs. IR semantics) disagree, which CI
      must distinguish from ordinary findings
3     input rejected: the kernel source or IR failed verification
      (:class:`~repro.errors.VerificationError`,
      :class:`~repro.errors.FrontendError`,
      :class:`~repro.errors.CompileError`) — the lint never ran
====  =====================================================================
"""

from __future__ import annotations

import argparse
import sys

from repro.enums import Language, Model, SupportCategory, Vendor
from repro.errors import CompileError, FrontendError, VerificationError


def _vendor(text: str) -> Vendor:
    for v in Vendor:
        if v.value.lower() == text.lower():
            return v
    raise argparse.ArgumentTypeError(f"unknown vendor '{text}'")


def _model(text: str) -> Model:
    for m in Model:
        if m.value.lower() == text.lower():
            return m
    raise argparse.ArgumentTypeError(f"unknown model '{text}'")


def _language(text: str) -> Language:
    aliases = {"c++": Language.CPP, "cpp": Language.CPP,
               "fortran": Language.FORTRAN, "f": Language.FORTRAN,
               "python": Language.PYTHON, "py": Language.PYTHON}
    try:
        return aliases[text.lower()]
    except KeyError:
        raise argparse.ArgumentTypeError(f"unknown language '{text}'") from None


def cmd_table(args) -> int:
    from repro.core.render import RENDERERS, matrix_lookup, paper_lookup

    if args.source == "derived":
        from repro.core.matrix import build_matrix

        lookup = matrix_lookup(build_matrix())
        title = "Figure 1 (derived empirically on the simulated system)"
    else:
        lookup = paper_lookup()
        title = "Figure 1 (reconstructed published ratings)"
    renderer = RENDERERS[args.format]
    if args.format in ("text", "markdown", "html", "tex"):
        print(renderer(lookup, title=title))  # type: ignore[call-arg]
    else:
        print(renderer(lookup))
    return 0


def cmd_report(args) -> int:
    from repro.core.matrix import build_matrix
    from repro.core.report import compare

    matrix = build_matrix()
    report = compare(matrix)
    print("\n".join(report.summary_lines()))
    return 0 if report.agreement == 1.0 else 1


def cmd_describe(args) -> int:
    from repro.core.descriptions import describe_cell
    from repro.core.routes import routes_for
    from repro.data.paper_matrix import expected

    desc = describe_cell(args.vendor, args.model, args.language)
    cell = expected(args.vendor, args.model, args.language)
    print(f"[{desc.number}] {desc.title}")
    print(f"rating: {cell.primary.symbol} {cell.primary.label}"
          + (f" (+ {cell.secondary.label})" if cell.secondary else ""))
    print()
    print(desc.text)
    routes = routes_for(args.vendor, args.model, args.language)
    if routes:
        print("\nroutes:")
        for r in routes:
            print(f"  - {r.label}: {r.via} "
                  f"({r.provider.value}, {r.mechanism.value}, {r.maturity.value})")
    else:
        print("\nroutes: none (no support)")
    if desc.references:
        print("\nreferences:", ", ".join(f"[{n}]" for n in desc.references))
    return 0


def cmd_advise(args) -> int:
    from repro.core.advisor import Advisor

    advisor = Advisor(minimum=SupportCategory.LIMITED)
    if args.model is not None:
        print(f"platforms for {args.model.value} / {args.language.value}:")
        for rec in advisor.platforms_for_model(args.model, args.language):
            print(f"  {rec}")
    elif args.vendor is not None:
        print(f"models usable on {args.vendor.value} from {args.language.value}:")
        for rec in advisor.models_for_platform(args.vendor, args.language):
            print(f"  {rec}")
    else:
        print("portable models (usable on all three vendors):")
        for lang in (Language.CPP, Language.FORTRAN):
            models = advisor.portable_models(lang, SupportCategory.LIMITED)
            print(f"  {lang.value}: {', '.join(m.value for m in models)}")
    return 0


def cmd_routes(args) -> int:
    from repro.core.routes import all_routes

    routes = all_routes()
    print(f"{len(routes)} registered routes:")
    for r in routes:
        print(f"  {r.route_id:28s} {r.via}")
    return 0


def cmd_conformance(args) -> int:
    from repro.core.validation import compiler_table, render_compiler_table

    reports = compiler_table(args.model, args.language)
    print(f"{args.model.value} {args.language.value} conformance "
          f"(V&V-suite style):\n")
    print(render_compiler_table(reports))
    return 0


def _dim3(text: str) -> tuple[int, int, int]:
    parts = [p for p in text.split(",") if p]
    if not 1 <= len(parts) <= 3:
        raise argparse.ArgumentTypeError(f"bad geometry '{text}' (use X[,Y[,Z]])")
    try:
        dims = [int(p) for p in parts]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad geometry '{text}'") from None
    if any(d < 1 for d in dims):
        raise argparse.ArgumentTypeError("geometry dimensions must be >= 1")
    return tuple(dims + [1] * (3 - len(dims)))  # type: ignore[return-value]


def _extent(text: str) -> tuple[str, object]:
    name, sep, value = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"bad extent '{text}' (use PARAM=COUNT or PARAM=SCALAR_PARAM)")
    return name, (int(value) if value.lstrip("-").isdigit() else value)


def _load_user_module(name_or_path: str):
    """Import a module by dotted name, or load a ``.py`` file by path."""
    import importlib

    if name_or_path.endswith(".py"):
        import importlib.util
        import os

        modname = os.path.splitext(os.path.basename(name_or_path))[0]
        spec = importlib.util.spec_from_file_location(modname, name_or_path)
        if spec is None or spec.loader is None:
            raise argparse.ArgumentTypeError(
                f"cannot load '{name_or_path}'")
        mod = importlib.util.module_from_spec(spec)
        try:
            spec.loader.exec_module(mod)
        except (OSError, SyntaxError) as exc:
            raise argparse.ArgumentTypeError(
                f"cannot load '{name_or_path}': {exc}") from exc
        return mod
    try:
        return importlib.import_module(name_or_path)
    except ImportError as exc:
        raise argparse.ArgumentTypeError(
            f"cannot import module '{name_or_path}': {exc}") from exc


def _lint_corpus(args):
    """Collect the KernelIR objects to lint: library or a user module."""
    from repro.frontends.kernel_dsl import KernelFn
    from repro.jit.api import JitKernel

    if args.module:
        mod = _load_user_module(args.module)
        fns = [v for v in vars(mod).values() if isinstance(v, KernelFn)]
        # jit-decorated kernels lint through their compiled KernelFn,
        # so `gpu-compat lint --module` covers @kernel corpora too
        fns += [v.kernelfn for v in vars(mod).values()
                if isinstance(v, JitKernel)]
        if not fns:
            raise argparse.ArgumentTypeError(
                f"module '{args.module}' defines no @kernel functions")
    else:
        from repro.kernels import KERNEL_LIBRARY

        fns = list(KERNEL_LIBRARY.values())
    if args.kernel:
        by_name = {f.ir.name: f for f in fns}
        missing = [n for n in args.kernel if n not in by_name]
        if missing:
            raise argparse.ArgumentTypeError(
                f"unknown kernel(s): {', '.join(missing)}")
        fns = [by_name[n] for n in args.kernel]
    return fns


def _lint_routes(args) -> int:
    """``lint --routes``: static route evidence vs. the paper matrix."""
    from repro.analysis.diagnostics import to_sarif_json
    from repro.analysis.routes_evidence import cross_check

    report = cross_check()
    if args.format == "sarif":
        print(to_sarif_json(report, tool_name="routes-evidence"))
    elif args.format == "json":
        print(report.to_json())
    else:
        for d in report.diagnostics:
            print(d.render())
        print(f"cross-checked 51 cells against the reconstructed paper "
              f"matrix: {report.summary_line()}")
    if report.errors:
        return 2  # registry and paper matrix contradict each other
    return 1 if report.warnings else 0


def _lint_perf(args) -> int:
    """``lint --perf``: static cost-model predictions vs. measurement."""
    from repro.analysis.diagnostics import to_sarif_json
    from repro.analysis.perfstat import lint_perf, perf_agreement_summary
    from repro.perfport import DEFAULT_N, DEFAULT_REPS, PerfParams
    from repro.service import MatrixService

    params = PerfParams(
        n=args.n if args.n is not None else DEFAULT_N,
        reps=args.reps if args.reps is not None else DEFAULT_REPS)
    service = MatrixService(jobs=args.jobs, store=args.store,
                            perf_params=params)
    report = lint_perf(service.perf)
    if args.format == "sarif":
        print(to_sarif_json(report, tool_name="perfstat"))
    elif args.format == "json":
        print(report.to_json())
    else:
        for d in report.diagnostics:
            print(d.render())
        summary = perf_agreement_summary(report)
        print(f"cross-checked 51 cells against the measured perf matrix: "
              f"{report.summary_line()} "
              f"({summary['cells_agreeing']} supported cell(s) agreeing)")
    if report.errors:
        return 2  # the cost model and the interpreter metering disagree
    return 1 if report.warnings else 0


def _lint_traces(args) -> int:
    """``lint --traces``: static translation validation of trace programs."""
    from repro.analysis.diagnostics import to_sarif_json
    from repro.analysis.tracesan import (trace_agreement_summary,
                                         traces_lint_report,
                                         validate_library)

    results = validate_library()
    report = traces_lint_report(results)
    if args.format == "sarif":
        print(to_sarif_json(report, tool_name="tracesan"))
    elif args.format == "json":
        print(report.to_json())
    else:
        for d in report.diagnostics:
            print(d.render())
        summary = trace_agreement_summary(results)
        print(f"statically validated {summary['validated']}/"
              f"{summary['kernels_total']} trace-compiled kernel(s) "
              f"({summary['exact']} exact, {summary['bailed_out']} bailed "
              f"out, 0 kernel executions): {report.summary_line()}")
    if report.errors:
        return 2  # generated trace code provably diverges from the IR
    return 1 if report.warnings else 0


def _kernelsan_report(args):
    """The classic kernelsan sweep: (report, kernel count)."""
    from repro.analysis import AnalysisOptions, LaunchBounds, analyze_module
    from repro.analysis.sanitizer import PASSES
    from repro.isa.module import ModuleIR

    fns = _lint_corpus(args)
    module = ModuleIR(name=args.module or "kernel_library")
    for fn in fns:
        module.add(fn.ir)

    passes = tuple(args.passes) if args.passes else tuple(PASSES)
    unknown = [p for p in passes if p not in PASSES]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown pass(es): {', '.join(unknown)} "
            f"(available: {', '.join(PASSES)})")
    options = AnalysisOptions(
        bounds=LaunchBounds.of(block=args.block, grid=args.grid),
        extents=dict(args.extent) if args.extent else None,
        passes=passes,
    )
    return analyze_module(module, options), len(fns)


def _lint_all(args) -> int:
    """``lint --all``: all five lint families, one merged report.

    Exit code is the worst across the families, each judged by its own
    contract (kernelsan/transval: errors exit 1; routes/perf/traces:
    errors exit 2, warnings exit 1).
    """
    from repro.analysis.diagnostics import LintReport, to_sarif_json
    from repro.analysis.perfstat import lint_perf
    from repro.analysis.routes_evidence import cross_check
    from repro.analysis.tracesan import lint_traces
    from repro.analysis.transval import shipped_translators, validate_all
    from repro.perfport import DEFAULT_N, DEFAULT_REPS, PerfParams
    from repro.service import MatrixService

    kern_report, nkernels = _kernelsan_report(args)
    params = PerfParams(
        n=args.n if args.n is not None else DEFAULT_N,
        reps=args.reps if args.reps is not None else DEFAULT_REPS)
    service = MatrixService(jobs=args.jobs, store=args.store,
                            perf_params=params)
    families = [
        ("kernelsan", kern_report, 1),
        ("routes", cross_check(), 2),
        ("transval", validate_all(shipped_translators()), 1),
        ("perfstat", lint_perf(service.perf), 2),
        ("tracesan", lint_traces(), 2),
    ]
    merged = LintReport()
    status = 0
    for _name, report, error_exit in families:
        merged.extend(report.diagnostics)
        if report.errors:
            status = max(status, error_exit)
        elif report.warnings and error_exit == 2:
            status = max(status, 1)
    if args.format == "sarif":
        print(to_sarif_json(merged, tool_name="gpu-compat-lint"))
    elif args.format == "json":
        print(merged.to_json())
    else:
        for name, report, _error_exit in families:
            for d in report.diagnostics:
                print(d.render())
            print(f"[{name}] {report.summary_line()}")
        print(f"lint --all: {len(families)} families over {nkernels} "
              f"kernel(s): {merged.summary_line()}")
    return status


def cmd_lint(args) -> int:
    picked = [flag for flag, on in (("--routes", args.routes),
                                    ("--perf", args.perf),
                                    ("--traces", args.traces),
                                    ("--all", args.all)) if on]
    if len(picked) > 1:
        raise argparse.ArgumentTypeError(
            f"{' and '.join(picked)} are mutually exclusive")
    if args.routes:
        return _lint_routes(args)
    if args.perf:
        return _lint_perf(args)
    if args.traces:
        return _lint_traces(args)
    if args.all:
        return _lint_all(args)
    report, nkernels = _kernelsan_report(args)
    if args.format == "sarif":
        from repro.analysis.diagnostics import to_sarif_json

        print(to_sarif_json(report))
    elif args.format == "json":
        print(report.to_json())
    else:
        out = report.render()
        if out:
            print(out)
        print(f"linted {nkernels} kernel(s): {report.summary_line()}")
    return 1 if report.errors else 0


def cmd_transval(args) -> int:
    from repro.analysis.transval import shipped_translators, validate_all

    translators = shipped_translators()
    report = validate_all(translators)
    if args.format == "sarif":
        from repro.analysis.diagnostics import to_sarif_json

        print(to_sarif_json(report, tool_name="transval"))
    elif args.format == "json":
        print(report.to_json())
    else:
        for d in report.diagnostics:
            print(d.render())
        names = ", ".join(
            f"{t.NAME}({t.SOURCE_MODEL.value})" for t in translators)
        print(f"validated {len(translators)} translator instance(s) "
              f"[{names}]: {report.summary_line()}")
    return 1 if report.errors else 0


def _resolve_jit_kernel(spec: str):
    """``module_or_path[:func]`` -> one JitKernel from a user module."""
    from repro.jit.api import JitKernel

    target, _, func = spec.partition("::")
    if not func and ":" in spec and not spec.endswith(".py"):
        target, _, func = spec.rpartition(":")
    mod = _load_user_module(target)
    jks = {n: v for n, v in vars(mod).items() if isinstance(v, JitKernel)}
    if not jks:
        raise argparse.ArgumentTypeError(
            f"'{target}' defines no @kernel functions")
    if func:
        if func not in jks:
            raise argparse.ArgumentTypeError(
                f"'{target}' has no @kernel '{func}' "
                f"(found: {', '.join(sorted(jks))})")
        return jks[func]
    if len(jks) > 1:
        raise argparse.ArgumentTypeError(
            f"'{target}' defines {len(jks)} @kernel functions; pick one "
            f"with '{target}:<name>' ({', '.join(sorted(jks))})")
    return next(iter(jks.values()))


def _jit_targets(arg: str):
    from repro.jit.api import TARGET_TOOLCHAINS

    if arg == "all":
        return list(TARGET_TOOLCHAINS)
    for isa in TARGET_TOOLCHAINS:
        if isa.value == arg:
            return [isa]
    raise argparse.ArgumentTypeError(
        f"unknown target '{arg}' (ptx, amdgcn, spirv, or all)")


def cmd_jit(args) -> int:
    """``gpu-compat jit``: compile/inspect/rate a user's @kernel."""
    import json

    jk = _resolve_jit_kernel(args.spec)

    if args.action == "row":
        row = jk.compatibility_row(n=args.n)
        if args.format == "json":
            print(json.dumps(row.to_dict(), indent=1))
        else:
            print(row.render())
        return 1 if row.lint_errors else 0

    targets = _jit_targets(args.target)
    if args.action == "compile":
        results = {}
        for isa in targets:
            res = jk.compile(isa)
            results[isa.value] = {
                "toolchain": res.toolchain,
                "asm_lines": len(res.disassemble().splitlines()),
            }
        if args.format == "json":
            print(json.dumps({
                "kernel": jk.name,
                "signature": jk.signature,
                "fingerprint": jk.fingerprint(),
                "targets": results,
            }, indent=1))
        else:
            print(f"{jk.name} {jk.signature}")
            for isa, info in results.items():
                print(f"  {isa:<8} ok  via {info['toolchain']} "
                      f"({info['asm_lines']} asm lines)")
        return 0

    # inspect: the typing dump plus per-target disassembly
    if args.format == "json":
        print(json.dumps({
            "kernel": jk.name,
            "signature": jk.signature,
            "fingerprint": jk.fingerprint(),
            "types": jk.inspect_types(),
            "asm": {isa.value: jk.inspect_asm(isa) for isa in targets},
        }, indent=1))
    else:
        print(jk.inspect_types())
        for isa in targets:
            print(f"\n--- {isa.value} ---")
            print(jk.inspect_asm(isa))
    return 0


def cmd_eval(args) -> int:
    """Build the matrix through the concurrent scheduler + result store."""
    import json

    from repro.service import build_matrix_concurrent

    report = build_matrix_concurrent(
        args.jobs, execution=args.execution, store=args.store)
    print(f"evaluated {report.summary_line()} "
          f"[{args.execution} backend]")
    if report.store is not None:
        st = report.store.stats.as_dict()
        print(f"store: {st['hits']} hits, {st['misses']} misses, "
              f"{st['writes']} writes ({report.store.root})")
    probes = report.metrics.counter("probes_executed").get()
    print(f"probe executions this run: {probes}")
    if args.metrics_json:
        snapshot = report.metrics.snapshot()
        if report.store is not None:
            snapshot["store"] = report.store.stats.as_dict()
        snapshot["build"] = {
            "jobs": report.jobs,
            "execution": args.execution,
            "elapsed_s": round(report.elapsed_s, 4),
            "cells_from_store": report.cells_from_store,
            "cells_evaluated": report.cells_evaluated,
        }
        with open(args.metrics_json, "w") as f:
            json.dump(snapshot, f, indent=1)
        print(f"metrics written to {args.metrics_json}")
    return 0


def _perf_static(service, client, args) -> int:
    """``perf --static``: the predicted matrix, zero kernel executions."""
    import json

    from repro.enums import VENDOR_ORDER
    from repro.perfport.portability import portability_report
    from repro.workloads.babelstream import stream_totals

    resp = client.perf_static()
    static = service.ensure_static_perf_built()
    rows = portability_report(static)
    if args.format == "json":
        print(json.dumps({
            "schema_version": resp.schema_version,
            "params": resp["params"],
            "cells": resp["cells"],
            "portability": [
                {"model": row.model.value,
                 "language": row.language.value,
                 "metric": row.metric,
                 "supported_everywhere": row.supported_everywhere,
                 "cascade": [{"vendor": e.vendor.value,
                              "efficiency": e.efficiency,
                              "route_id": e.route_id}
                             for e in row.cascade]}
                for row in rows
            ],
        }, indent=1))
        return 0
    if args.format == "csv":
        print("vendor,model,language,supported,efficiency,best_route")
        for c in resp.cells:
            print(f"{c['vendor']},{c['model']},{c['language']},"
                  f"{int(c['supported'])},{c['efficiency']!r},"
                  f"{c['best_route'] or ''}")
        return 0
    totals = stream_totals()
    print(f"predicted {static.n_cells} cells statically; stream kernel "
          f"executions this run: {totals['kernels']}")
    vendors = [v.value for v in VENDOR_ORDER]
    print()
    header = "  ".join(f"{v:>8}" for v in vendors)
    print(f"{'model':<14} {'lang':<8} {'PP':>8}  {header}")
    for row in rows:
        by_vendor = {e.vendor.value: e.efficiency for e in row.cascade}
        cells = "  ".join(f"{by_vendor.get(v, 0.0):>8.4f}" for v in vendors)
        print(f"{row.model.value:<14} {row.language.value:<8} "
              f"{row.metric:>8.4f}  {cells}")
    print("\nPP = Pennycook performance-portability metric, computed here "
          "on perfstat's static cost-model predictions (no kernel ran)")
    return 0


def cmd_perf(args) -> int:
    """Performance-portability matrix over every viable route."""
    import json

    from repro.enums import VENDOR_ORDER
    from repro.perfport import DEFAULT_N, DEFAULT_REPS, PerfParams
    from repro.service import InProcessClient, MatrixService
    from repro.workloads.babelstream import stream_totals

    params = PerfParams(
        n=args.n if args.n is not None else DEFAULT_N,
        reps=args.reps if args.reps is not None else DEFAULT_REPS)
    service = MatrixService(jobs=args.jobs, execution=args.execution,
                            store=args.store, perf_params=params)
    client = InProcessClient(service)
    if args.static:
        return _perf_static(service, client, args)
    matrix_resp = client.perf_matrix()
    port_resp = client.perf_portability()

    if args.format == "json":
        print(json.dumps({
            "schema_version": matrix_resp.schema_version,
            "params": matrix_resp["params"],
            "cells": matrix_resp["cells"],
            "portability": port_resp["rows"],
        }, indent=1))
        return 0
    if args.format == "csv":
        print("vendor,model,language,supported,efficiency,best_route")
        for c in matrix_resp.cells:
            print(f"{c['vendor']},{c['model']},{c['language']},"
                  f"{int(c['supported'])},{c['efficiency']!r},"
                  f"{c['best_route'] or ''}")
        return 0

    report = service.ensure_perf_built()
    print(f"evaluated {report.summary_line()}")
    totals = stream_totals()
    print(f"stream kernel executions this run: {totals['kernels']}")
    vendors = [v.value for v in VENDOR_ORDER]
    print()
    header = "  ".join(f"{v:>8}" for v in vendors)
    print(f"{'model':<14} {'lang':<8} {'PP':>8}  {header}")
    for row in port_resp.rows:
        by_vendor = {e["vendor"]: e["efficiency"] for e in row["cascade"]}
        cells = "  ".join(f"{by_vendor.get(v, 0.0):>8.4f}" for v in vendors)
        print(f"{row['model']:<14} {row['language']:<8} "
              f"{row['metric']:>8.4f}  {cells}")
    print("\nPP = Pennycook performance-portability metric (harmonic mean "
          "of achieved fraction of peak over the vendor set; 0 if any "
          "vendor is unsupported)")
    from repro.data.perfref import PERF_REFERENCES, reference_fraction

    anchors = ", ".join(
        f"{v.value} {reference_fraction(v):.2f} ({PERF_REFERENCES[v].device})"
        for v in VENDOR_ORDER)
    print(f"published BabelStream triad fractions of peak for scale: "
          f"{anchors}")
    return 0


def cmd_serve(args) -> int:
    """Serve the matrix over the loopback JSON API until interrupted."""
    from repro.service import MatrixService, make_server

    service = MatrixService(jobs=args.jobs, execution=args.execution,
                            read_only=args.read_only, store=args.store)
    if not args.lazy:
        report = service.ensure_built()
        print(f"built {report.summary_line()} [{args.execution} backend]")
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address
    mode = " [read-only]" if args.read_only else ""
    print(f"serving the compatibility matrix on http://{host}:{port}{mode} "
          f"(endpoints: /healthz /cell/V/M/L /table /advise /lint/routes "
          f"/lint/perf /metrics /perf/matrix /perf/cell/V/M/L "
          f"/perf/portability /perf/static /admin/stores "
          f"/admin/stores/clear; Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def cmd_changelog(args) -> int:
    from repro.core.evolution import changelog
    from repro.data.snapshots import SNAPSHOT_2022, SNAPSHOT_2023

    print(changelog(SNAPSHOT_2022, SNAPSHOT_2023))
    return 0


def _print_stats() -> None:
    """Compile-cache and interpreter counters accumulated this process."""
    from repro.compilers.toolchain import compile_cache_stats
    from repro.isa.interpreter import snapshot_interpreter_totals

    cc = compile_cache_stats().snapshot()
    total = cc.hits + cc.misses
    rate = f" ({cc.hits / total:.0%} hit rate)" if total else ""
    print(f"[stats] compile cache: {cc.hits} hits, {cc.misses} misses{rate}")
    it = snapshot_interpreter_totals()
    st = it.stats
    print(f"[stats] interpreter: {it.launches} launches, "
          f"{st.batches} batches, {st.threads} threads, "
          f"{st.instructions} instructions, {st.bytes_moved} bytes moved")
    tr = it.trace
    reasons = ", ".join(f"{k}={v}" for k, v in sorted(tr.reasons.items()))
    detail = f" [{reasons}]" if reasons else ""
    print(f"[stats] trace: {tr.hits} hits, {tr.misses} misses, "
          f"{tr.bailouts} bailouts{detail}; "
          f"{tr.traced_launches} of {it.launches} launches fused "
          f"({tr.traced_batches} batches)")


def _positive_int(value: str) -> int:
    """Argparse type for counts that must be >= 1 (exit 2 otherwise)."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value!r}")
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _add_fleet_args(parser: "argparse.ArgumentParser") -> None:
    """The uniform --jobs/--execution pair for eval, perf, and serve."""
    import os

    parser.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help=f"scheduler workers (default: os.cpu_count() = "
             f"{os.cpu_count() or 1}; results are identical at every "
             f"count)")
    parser.add_argument(
        "--execution", choices=("thread", "process"), default="thread",
        help="scheduler backend: 'thread' (GIL-bound pool, the default) "
             "or 'process' (worker-process fleet; byte-identical output)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gpu-compat",
        description="GPU programming model vs. vendor compatibility overview "
                    "(Herten, SC-W 2023) — executable reproduction",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print compile-cache and interpreter batching counters "
             "after the subcommand")
    parser.add_argument(
        "--trace-mode", choices=("on", "off"), default=None,
        help="force the interpreter's trace compiler on or off for this "
             "run (default: on, unless REPRO_TRACE_MODE=off)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="render Figure 1")
    p_table.add_argument("--format", choices=("text", "markdown", "html",
                                              "tex", "yaml"), default="text")
    p_table.add_argument("--source", choices=("paper", "derived"),
                         default="paper")
    p_table.set_defaults(func=cmd_table)

    p_report = sub.add_parser("report", help="derived-vs-paper agreement")
    p_report.set_defaults(func=cmd_report)

    p_desc = sub.add_parser("describe", help="one cell's description")
    p_desc.add_argument("vendor", type=_vendor)
    p_desc.add_argument("model", type=_model)
    p_desc.add_argument("language", type=_language)
    p_desc.set_defaults(func=cmd_describe)

    p_adv = sub.add_parser("advise", help="route recommendations")
    p_adv.add_argument("--vendor", type=_vendor, default=None)
    p_adv.add_argument("--model", type=_model, default=None)
    p_adv.add_argument("--language", type=_language, default=Language.CPP)
    p_adv.set_defaults(func=cmd_advise)

    p_routes = sub.add_parser("routes", help="list the route registry")
    p_routes.set_defaults(func=cmd_routes)

    p_conf = sub.add_parser("conformance",
                            help="V&V-style compiler conformance table")
    p_conf.add_argument("--model", type=_model, default=Model.OPENMP)
    p_conf.add_argument("--language", type=_language, default=Language.CPP)
    p_conf.set_defaults(func=cmd_conformance)

    p_log = sub.add_parser("changelog",
                           help="2022 workshop -> 2023 paper changes")
    p_log.set_defaults(func=cmd_changelog)

    p_eval = sub.add_parser(
        "eval", help="build the matrix concurrently with a result store")
    _add_fleet_args(p_eval)
    p_eval.add_argument("--store", default=None, metavar="DIR",
                        help="persistent result-store directory; a warm "
                             "store re-derives only changed cells")
    p_eval.add_argument("--metrics-json", default=None, metavar="PATH",
                        help="dump the full metrics snapshot as JSON")
    p_eval.set_defaults(func=cmd_eval)

    p_perf = sub.add_parser(
        "perf", help="performance-portability matrix (BabelStream through "
                     "every viable route)")
    _add_fleet_args(p_perf)
    p_perf.add_argument("--store", default=None, metavar="DIR",
                        help="persistent store directory (shared with "
                             "'eval'; a warm store executes zero stream "
                             "kernels)")
    p_perf.add_argument("--n", type=_positive_int, default=None, metavar="ELEMS",
                        help="stream array elements (default 65536)")
    p_perf.add_argument("--reps", type=_positive_int, default=None, metavar="R",
                        help="best-of repetitions per kernel (default 3)")
    p_perf.add_argument("--format", choices=("text", "json", "csv"),
                        default="text",
                        help="output format (default text)")
    p_perf.add_argument("--static", action="store_true",
                        help="report perfstat's statically predicted "
                             "matrix instead of measuring (zero kernel "
                             "executions)")
    p_perf.set_defaults(func=cmd_perf)

    p_serve = sub.add_parser(
        "serve", help="serve the matrix over a loopback JSON API")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default loopback)")
    p_serve.add_argument("--port", type=int, default=8951,
                         help="port (default 8951; 0 = ephemeral)")
    _add_fleet_args(p_serve)
    p_serve.add_argument("--store", default=None, metavar="DIR",
                         help="persistent result-store directory")
    p_serve.add_argument("--lazy", action="store_true",
                         help="defer the matrix build to the first request")
    p_serve.add_argument("--read-only", action="store_true",
                         help="reject mutating /admin endpoints with a "
                              "typed 403 'read_only' error")
    p_serve.set_defaults(func=cmd_serve)

    p_lint = sub.add_parser(
        "lint", help="kernelsan static analyses over kernel IR")
    p_lint.add_argument("--module", default=None,
                        help="importable module whose @kernel functions to "
                             "lint (default: the bundled kernel library)")
    p_lint.add_argument("--kernel", action="append", default=None,
                        metavar="NAME", help="restrict to named kernel(s)")
    p_lint.add_argument("--block", type=_dim3, default=(256, 1, 1),
                        metavar="X,Y,Z", help="assumed block (default 256)")
    p_lint.add_argument("--grid", type=_dim3, default=(64, 1, 1),
                        metavar="X,Y,Z", help="assumed grid (default 64)")
    p_lint.add_argument("--extent", type=_extent, action="append",
                        default=None, metavar="PARAM=COUNT",
                        help="buffer element count for a pointer param "
                             "(count or the name of a scalar param); "
                             "enables the global OOB check")
    p_lint.add_argument("--pass", dest="passes", action="append",
                        default=None, metavar="NAME",
                        help="run only the named analysis pass(es)")
    p_lint.add_argument("--routes", action="store_true",
                        help="statically derive all 51 matrix cells from "
                             "the route registry and cross-check them "
                             "against the paper ratings (RE01-RE03)")
    p_lint.add_argument("--traces", action="store_true",
                        help="statically validate every trace-compiled "
                             "library kernel against its IR (tracesan; "
                             "zero kernel executions)")
    p_lint.add_argument("--all", action="store_true",
                        help="run all five lint families (kernelsan, "
                             "--routes, transval, --perf, --traces) and "
                             "exit with the worst code")
    p_lint.add_argument("--perf", action="store_true",
                        help="cross-check perfstat's static cost-model "
                             "predictions against the measured perf "
                             "matrix (PS01-PS06)")
    p_lint.add_argument("--n", type=_positive_int, default=None, metavar="ELEMS",
                        help="with --perf: stream vector length for the "
                             "measured matrix (default: the perf default)")
    p_lint.add_argument("--reps", type=_positive_int, default=None, metavar="R",
                        help="with --perf: timing repetitions per kernel")
    p_lint.add_argument("--jobs", type=_positive_int, default=4, metavar="N",
                        help="worker threads for the measured half of "
                             "--perf (default 4)")
    p_lint.add_argument("--store", dest="store", default=None, metavar="DIR",
                        help="persistent store for the measured half of "
                             "--perf (shared with 'eval'/'perf')")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="diagnostic output format (default text)")
    p_lint.set_defaults(func=cmd_lint)

    p_tv = sub.add_parser(
        "transval",
        help="validate the source-to-source translators (TV01-TV06)")
    p_tv.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text",
                      help="diagnostic output format (default text)")
    p_tv.set_defaults(func=cmd_transval)

    p_jit = sub.add_parser(
        "jit",
        help="compile/inspect/rate a @kernel-decorated Python function")
    p_jit.add_argument("action", choices=("compile", "inspect", "row"),
                       help="compile: lower to target ISA(s); inspect: "
                            "typing dump + disassembly; row: run across "
                            "every Python-package route per vendor and "
                            "classify (a personal Figure-1 row)")
    p_jit.add_argument("spec", metavar="MODULE[:FUNC]",
                       help="dotted module name or .py path defining the "
                            "@kernel function (':FUNC' picks one when the "
                            "module defines several)")
    p_jit.add_argument("--target", choices=("ptx", "amdgcn", "spirv", "all"),
                       default="all",
                       help="target ISA for compile/inspect (default all)")
    p_jit.add_argument("--n", type=_positive_int, default=2048,
                       metavar="ELEMS",
                       help="with row: array length for the verification "
                            "launches (default 2048)")
    p_jit.add_argument("--format", choices=("text", "json"), default="text",
                       help="output format (default text)")
    p_jit.set_defaults(func=cmd_jit)

    from repro.service.scheduler import SchedulerError

    args = parser.parse_args(argv)
    if args.trace_mode is not None:
        from repro.isa.tracing import set_default_trace_mode

        set_default_trace_mode(args.trace_mode == "on")
    try:
        code = args.func(args)
        if args.stats:
            _print_stats()
        return code
    except SchedulerError as exc:
        # A build job exhausted its retry budget (worker crashes, injected
        # faults, timeouts): the matrix was not produced.  Runtime
        # failure, not usage — exit 1.
        print(f"gpu-compat {args.command}: {exc}", file=sys.stderr)
        return 1
    except (VerificationError, FrontendError, CompileError) as exc:
        # Rejected input (bad kernel source or malformed IR): the
        # requested analysis never ran.  Distinct from exit 1, which
        # means "ran and found problems".
        print(f"gpu-compat {args.command}: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 3
    except argparse.ArgumentTypeError as exc:
        # Late usage errors (e.g. unknown kernel name discovered after
        # parsing); argparse itself exits 2 for syntactic ones.
        print(f"gpu-compat {args.command}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
