"""``gpu-compat`` command-line interface.

Subcommands:

* ``table [--format text|markdown|html|tex|yaml] [--source paper|derived]``
  — render Figure 1.
* ``report`` — derive the matrix empirically and print the agreement
  report against the reconstructed published ratings.
* ``describe VENDOR MODEL LANGUAGE`` — print a cell's §4 description,
  routes, and measured coverage.
* ``advise --vendor V --language L`` / ``--model M --language L`` —
  route recommendations.
* ``routes`` — list the full route registry.
"""

from __future__ import annotations

import argparse
import sys

from repro.enums import Language, Model, SupportCategory, Vendor


def _vendor(text: str) -> Vendor:
    for v in Vendor:
        if v.value.lower() == text.lower():
            return v
    raise argparse.ArgumentTypeError(f"unknown vendor '{text}'")


def _model(text: str) -> Model:
    for m in Model:
        if m.value.lower() == text.lower():
            return m
    raise argparse.ArgumentTypeError(f"unknown model '{text}'")


def _language(text: str) -> Language:
    aliases = {"c++": Language.CPP, "cpp": Language.CPP,
               "fortran": Language.FORTRAN, "f": Language.FORTRAN,
               "python": Language.PYTHON, "py": Language.PYTHON}
    try:
        return aliases[text.lower()]
    except KeyError:
        raise argparse.ArgumentTypeError(f"unknown language '{text}'") from None


def cmd_table(args) -> int:
    from repro.core.render import RENDERERS, matrix_lookup, paper_lookup

    if args.source == "derived":
        from repro.core.matrix import build_matrix

        lookup = matrix_lookup(build_matrix())
        title = "Figure 1 (derived empirically on the simulated system)"
    else:
        lookup = paper_lookup()
        title = "Figure 1 (reconstructed published ratings)"
    renderer = RENDERERS[args.format]
    if args.format in ("text", "markdown", "html", "tex"):
        print(renderer(lookup, title=title))  # type: ignore[call-arg]
    else:
        print(renderer(lookup))
    return 0


def cmd_report(args) -> int:
    from repro.core.matrix import build_matrix
    from repro.core.report import compare

    matrix = build_matrix()
    report = compare(matrix)
    print("\n".join(report.summary_lines()))
    return 0 if report.agreement == 1.0 else 1


def cmd_describe(args) -> int:
    from repro.core.descriptions import describe_cell
    from repro.core.routes import routes_for
    from repro.data.paper_matrix import expected

    desc = describe_cell(args.vendor, args.model, args.language)
    cell = expected(args.vendor, args.model, args.language)
    print(f"[{desc.number}] {desc.title}")
    print(f"rating: {cell.primary.symbol} {cell.primary.label}"
          + (f" (+ {cell.secondary.label})" if cell.secondary else ""))
    print()
    print(desc.text)
    routes = routes_for(args.vendor, args.model, args.language)
    if routes:
        print("\nroutes:")
        for r in routes:
            print(f"  - {r.label}: {r.via} "
                  f"({r.provider.value}, {r.mechanism.value}, {r.maturity.value})")
    else:
        print("\nroutes: none (no support)")
    if desc.references:
        print("\nreferences:", ", ".join(f"[{n}]" for n in desc.references))
    return 0


def cmd_advise(args) -> int:
    from repro.core.advisor import Advisor

    advisor = Advisor(minimum=SupportCategory.LIMITED)
    if args.model is not None:
        print(f"platforms for {args.model.value} / {args.language.value}:")
        for rec in advisor.platforms_for_model(args.model, args.language):
            print(f"  {rec}")
    elif args.vendor is not None:
        print(f"models usable on {args.vendor.value} from {args.language.value}:")
        for rec in advisor.models_for_platform(args.vendor, args.language):
            print(f"  {rec}")
    else:
        print("portable models (usable on all three vendors):")
        for lang in (Language.CPP, Language.FORTRAN):
            models = advisor.portable_models(lang, SupportCategory.LIMITED)
            print(f"  {lang.value}: {', '.join(m.value for m in models)}")
    return 0


def cmd_routes(args) -> int:
    from repro.core.routes import all_routes

    routes = all_routes()
    print(f"{len(routes)} registered routes:")
    for r in routes:
        print(f"  {r.route_id:28s} {r.via}")
    return 0


def cmd_conformance(args) -> int:
    from repro.core.validation import compiler_table, render_compiler_table

    reports = compiler_table(args.model, args.language)
    print(f"{args.model.value} {args.language.value} conformance "
          f"(V&V-suite style):\n")
    print(render_compiler_table(reports))
    return 0


def cmd_changelog(args) -> int:
    from repro.core.evolution import changelog
    from repro.data.snapshots import SNAPSHOT_2022, SNAPSHOT_2023

    print(changelog(SNAPSHOT_2022, SNAPSHOT_2023))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gpu-compat",
        description="GPU programming model vs. vendor compatibility overview "
                    "(Herten, SC-W 2023) — executable reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="render Figure 1")
    p_table.add_argument("--format", choices=("text", "markdown", "html",
                                              "tex", "yaml"), default="text")
    p_table.add_argument("--source", choices=("paper", "derived"),
                         default="paper")
    p_table.set_defaults(func=cmd_table)

    p_report = sub.add_parser("report", help="derived-vs-paper agreement")
    p_report.set_defaults(func=cmd_report)

    p_desc = sub.add_parser("describe", help="one cell's description")
    p_desc.add_argument("vendor", type=_vendor)
    p_desc.add_argument("model", type=_model)
    p_desc.add_argument("language", type=_language)
    p_desc.set_defaults(func=cmd_describe)

    p_adv = sub.add_parser("advise", help="route recommendations")
    p_adv.add_argument("--vendor", type=_vendor, default=None)
    p_adv.add_argument("--model", type=_model, default=None)
    p_adv.add_argument("--language", type=_language, default=Language.CPP)
    p_adv.set_defaults(func=cmd_advise)

    p_routes = sub.add_parser("routes", help="list the route registry")
    p_routes.set_defaults(func=cmd_routes)

    p_conf = sub.add_parser("conformance",
                            help="V&V-style compiler conformance table")
    p_conf.add_argument("--model", type=_model, default=Model.OPENMP)
    p_conf.add_argument("--language", type=_language, default=Language.CPP)
    p_conf.set_defaults(func=cmd_conformance)

    p_log = sub.add_parser("changelog",
                           help="2022 workshop -> 2023 paper changes")
    p_log.set_defaults(func=cmd_changelog)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
