"""Probe suites: the executable basis of the support ratings.

A *probe* is a small, numerically verified program exercising one
capability a §4 description hinges on (async streams, managed memory,
an OpenMP 5.0 metadirective, a Kokkos TeamPolicy...).  Each programming
model defines its probe methods on its runtime (``probe_*``); this
module groups them into per-model suites and runs a route's suite
against a device.

Coverage — the fraction of probes that compile *and* produce correct
results — is what the §3 classifier consumes.  A fresh runtime is
constructed per probe so no state (e.g. accumulated feature tags)
bleeds between measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import ReproError
from repro.gpu.device import Device

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.routes import Route


@dataclass(frozen=True)
class Probe:
    """One capability probe: a label plus the runtime method to call."""

    label: str
    method: str


#: Per-model probe suites.  Order is stable (reports index into it).
PROBE_SUITES: dict[str, tuple[Probe, ...]] = {
    "cuda_cpp": (
        Probe("kernel definition, launch, memcpy", "probe_kernels"),
        Probe("asynchronous streams", "probe_streams"),
        Probe("event timing", "probe_events"),
        Probe("managed (unified) memory", "probe_managed"),
        Probe("vendor BLAS libraries", "probe_libraries"),
        Probe("task graphs", "probe_graphs"),
        Probe("cooperative groups", "probe_cooperative"),
    ),
    "cuda_fortran": (
        Probe("explicit Fortran kernels + memcpy", "probe_kernels"),
        Probe("!$cuf auto-parallelized kernels", "probe_cuf_kernels"),
        Probe("asynchronous streams", "probe_streams"),
        Probe("event timing", "probe_events"),
    ),
    "hip_cpp": (
        Probe("kernel definition, launch, memcpy", "probe_kernels"),
        Probe("asynchronous streams", "probe_streams"),
        Probe("event timing", "probe_events"),
        Probe("hipBLAS libraries", "probe_libraries"),
        Probe("hipGraph capture/replay", "probe_graphs"),
    ),
    "hip_fortran": (
        Probe("kernels via Fortran interfaces", "probe_kernels"),
        Probe("asynchronous streams", "probe_streams"),
        Probe("event timing", "probe_events"),
        Probe("hipBLAS interfaces", "probe_libraries"),
        Probe("hipGraph capture/replay", "probe_graphs"),
    ),
    "sycl_cpp": (
        Probe("queues + USM device memory", "probe_queues"),
        Probe("buffers and accessors", "probe_buffers"),
        Probe("nd_range with local memory", "probe_nd_range"),
        Probe("USM shared allocations", "probe_usm_shared"),
        Probe("sycl::reduction", "probe_reduction"),
        Probe("profiling events", "probe_events"),
    ),
    "openmp": (
        Probe("target teams distribute parallel for + map", "probe_target"),
        Probe("target reductions", "probe_reduction"),
        Probe("collapse(2) loop nests", "probe_collapse"),
        Probe("simd construct", "probe_simd"),
        Probe("loop construct (5.0)", "probe_loop_construct"),
        Probe("metadirective (5.0)", "probe_metadirective"),
        Probe("declare variant (5.0)", "probe_declare_variant"),
        Probe("unified shared memory (5.0)", "probe_usm"),
        Probe("assume (5.1)", "probe_assume"),
        Probe("masked (5.1)", "probe_masked"),
    ),
    "openacc": (
        Probe("parallel loop regions", "probe_parallel"),
        Probe("kernels construct", "probe_kernels_construct"),
        Probe("structured data regions", "probe_data_region"),
        Probe("reductions", "probe_reduction"),
        Probe("gang/worker/vector mapping", "probe_gang_vector"),
        Probe("async queues + wait", "probe_async_wait"),
        Probe("serial construct (3.0)", "probe_serial"),
    ),
    "stdpar_cpp": (
        Probe("for_each(par_unseq)", "probe_for_each"),
        Probe("transform", "probe_transform"),
        Probe("reduce", "probe_reduce"),
        Probe("transform_reduce", "probe_transform_reduce"),
        Probe("inclusive_scan", "probe_scan"),
        Probe("sort", "probe_sort"),
        Probe("algorithms in namespace std::", "probe_std_namespace"),
    ),
    "stdpar_fortran": (
        Probe("do concurrent offload", "probe_do_concurrent"),
        Probe("locality specifiers", "probe_locality"),
        Probe("reduce clauses (F2023)", "probe_reduce"),
    ),
    "kokkos": (
        Probe("parallel_for over RangePolicy", "probe_range_for"),
        Probe("parallel_reduce", "probe_reduce"),
        Probe("views + deep_copy", "probe_views"),
        Probe("MDRangePolicy", "probe_mdrange"),
        Probe("TeamPolicy", "probe_teams"),
        Probe("parallel_scan", "probe_scan"),
    ),
    "alpaka": (
        Probe("kernel execution", "probe_exec"),
        Probe("explicit work divisions", "probe_workdiv"),
        Probe("buffer management", "probe_buffers"),
        Probe("reductions", "probe_reduce"),
    ),
    "python": (
        Probe("NumPy-style ufunc expressions", "probe_ufuncs"),
        Probe("custom kernels from Python", "probe_custom_kernel"),
        Probe("device reductions", "probe_reduction"),
        Probe("streams from Python", "probe_streams"),
        Probe("library (BLAS) bindings", "probe_blas"),
        Probe("NumPy interop", "probe_numpy_interop"),
    ),
}


@dataclass
class ProbeOutcome:
    """Result of one probe on one route."""

    probe: Probe
    passed: bool
    error: str = ""


@dataclass
class SuiteResult:
    """Probe-suite outcome for one route on one device."""

    suite: str
    outcomes: list[ProbeOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def passed(self) -> int:
        return sum(1 for o in self.outcomes if o.passed)

    @property
    def coverage(self) -> float:
        return self.passed / self.total if self.total else 0.0

    @property
    def failures(self) -> list[ProbeOutcome]:
        return [o for o in self.outcomes if not o.passed]


def run_single_probe(route: "Route", device: Device, probe: Probe) -> ProbeOutcome:
    """Run one probe of a route's suite on a device.

    The probe gets a freshly constructed runtime (via the route's
    factory), so outcomes are independent of each other and of probe
    execution order — the property the concurrent scheduler relies on
    to stay bit-identical to the sequential build.  Any
    :class:`~repro.errors.ReproError` — compile rejection, missing
    feature, API gap, wrong numerics — fails the probe; unexpected
    exception types propagate (they indicate simulator bugs, not
    compatibility gaps).
    """
    try:
        runtime = route.runtime_factory(device)
        method: Callable[[], None] = getattr(runtime, probe.method)
        method()
    except ReproError as exc:
        return ProbeOutcome(probe, passed=False, error=f"{type(exc).__name__}: {exc}")
    except AttributeError as exc:
        return ProbeOutcome(probe, passed=False, error=f"not exposed: {exc}")
    return ProbeOutcome(probe, passed=True)


def run_probe_suite(route: "Route", device: Device,
                    probes: tuple[Probe, ...] | None = None) -> SuiteResult:
    """Run a route's probe suite on a device (see :func:`run_single_probe`)."""
    if probes is None:
        probes = PROBE_SUITES[route.probe_suite]
    result = SuiteResult(suite=route.probe_suite)
    for probe in probes:
        result.outcomes.append(run_single_probe(route, device, probe))
    return result
