"""The 44 encyclopedic descriptions of §4.

Each entry condenses one numbered description from the paper, keeps its
bibliography keys, and records which Figure 1 cells it covers (entries
4, 6, 14, and 16 are shared between platforms, which is how 51 cells
map to 44 unique descriptions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.enums import Language, Model, Vendor

CPP, F, PY = Language.CPP, Language.FORTRAN, Language.PYTHON
NV, AMD, INT = Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL


@dataclass(frozen=True)
class Description:
    """One numbered §4 entry."""

    number: int
    cells: tuple[tuple[Vendor, Model, Language], ...]
    title: str
    text: str
    references: tuple[int, ...] = ()


_D = Description

DESCRIPTIONS: dict[int, Description] = {
    d.number: d
    for d in (
        _D(1, ((NV, Model.CUDA, CPP),), "NVIDIA · CUDA · C++",
           "CUDA C/C++ is supported through the CUDA Toolkit (first "
           "released 2007, current version 12.2): API and language "
           "extensions, libraries, profiling/debugging tools, compiler, "
           "management tools. Higher languages are translated to the PTX "
           "virtual ISA, then compiled to SASS. As the reference for the "
           "platform, support is very comprehensive. NVIDIA GPUs can also "
           "be used by Clang via LLVM's PTX backend.", (10,)),
        _D(2, ((NV, Model.CUDA, F),), "NVIDIA · CUDA · Fortran",
           "CUDA Fortran, a proprietary Fortran extension, is supported "
           "via the NVIDIA HPC SDK (-cuda in nvfortran), implementing most "
           "CUDA API features in Fortran, modeled closely after the C++ "
           "definitions. cuf kernels let the compiler generate GPU code "
           "automatically. CUDA Fortran support was recently merged into "
           "LLVM Flang.", (11,)),
        _D(3, ((NV, Model.HIP, CPP),), "NVIDIA · HIP · C++",
           "HIP programs can directly use NVIDIA GPUs via a CUDA backend. "
           "API calls are named similarly (hipMalloc for cudaMalloc), "
           "kernel syntax is identical, and HIP interfaces to CUDA "
           "libraries exist (hipblasSaxpy for cublasSaxpy). Target NVIDIA "
           "with HIP_PLATFORM=nvidia under hipcc; HIPIFY converts CUDA "
           "sources to HIP.", (12,)),
        _D(4, ((NV, Model.HIP, F), (AMD, Model.HIP, F)),
           "NVIDIA, AMD · HIP · Fortran",
           "No Fortran version of HIP exists; HIP is solely a C/C++ "
           "model. AMD offers hipfort (MIT-licensed): ready-made "
           "interfaces to the HIP API and ROCm libraries implementing C "
           "functionality, with CUDA-like Fortran extensions to write "
           "kernels.", (13,)),
        _D(5, ((NV, Model.SYCL, CPP),), "NVIDIA · SYCL · C++",
           "No direct SYCL support by NVIDIA, but several venues exist: "
           "DPC++ (Intel's open-source LLVM project, also a oneAPI "
           "plugin), Open SYCL (previously hipSYCL) via LLVM CUDA or "
           "nvc++, and formerly ComputeCpp (unsupported since September "
           "2023). SYCLomatic translates CUDA code to SYCL.", (14, 15)),
        _D(6, ((NV, Model.SYCL, F), (AMD, Model.SYCL, F), (INT, Model.SYCL, F)),
           "NVIDIA, AMD, Intel · SYCL · Fortran",
           "SYCL is a C++-based programming model (C++17) and by its "
           "nature does not support Fortran; no pre-made bindings are "
           "available.", (16,)),
        _D(7, ((NV, Model.OPENACC, CPP),), "NVIDIA · OpenACC · C++",
           "Most extensive support through the NVIDIA HPC SDK (nvc/nvc++, "
           "-acc -gpu), conforming to OpenACC 2.7 — very comprehensive. "
           "GCC supports OpenACC 2.6 since GCC 5.0 via nvptx "
           "(-fopenacc). Clacc implements OpenACC in LLVM by translating "
           "to OpenMP in the Clang frontend.", (17, 18, 19, 20)),
        _D(8, ((NV, Model.OPENACC, F),), "NVIDIA · OpenACC · Fortran",
           "Similar to C++: NVHPC nvfortran, GCC gfortran (identical "
           "options), LLVM Flang via the Flacc contributions, and the HPE "
           "Cray Programming Environment (ftn -hacc).", (17, 18, 21)),
        _D(9, ((NV, Model.OPENMP, CPP),), "NVIDIA · OpenMP · C++",
           "Offloading supported through multiple venues: NVHPC (nvc/"
           "nvc++, -mp) implements only a subset of OpenMP 5.0; GCC "
           "(-fopenmp, -foffload) has complete 4.5 with 5.x in progress; "
           "Clang implements 4.5 and selected 5.0/5.1; HPE Cray CE a "
           "subset of 5.0/5.1; AMD's AOMP also supports NVIDIA GPUs.",
           (17, 22, 23, 24)),
        _D(10, ((NV, Model.OPENMP, F),), "NVIDIA · OpenMP · Fortran",
           "Nearly identical to C/C++: NVHPC nvfortran, GCC gfortran, "
           "LLVM Flang (-mp), and the HPE Cray Programming Environment.",
           (17, 22, 24, 25)),
        _D(11, ((NV, Model.STANDARD, CPP),), "NVIDIA · Standard · C++",
           "Parallel algorithms of the C++ standard library offload via "
           "nvc++ -stdpar=gpu. Open SYCL is adding pSTL support "
           "(--hipsycl-stdpar), and Intel's oneDPL reaches NVIDIA GPUs "
           "through DPC++'s CUDA support.", (17, 15, 26)),
        _D(12, ((NV, Model.STANDARD, F),), "NVIDIA · Standard · Fortran",
           "Fortran standard parallelism (do concurrent) offloads through "
           "nvfortran -stdpar=gpu.", (17,)),
        _D(13, ((NV, Model.KOKKOS, CPP),), "NVIDIA · Kokkos · C++",
           "Kokkos supports NVIDIA GPUs with multiple backends: native "
           "CUDA (nvcc), NVHPC (nvc++), and Clang (CUDA directly or via "
           "OpenMP offload).", (27,)),
        _D(14, ((NV, Model.KOKKOS, F), (AMD, Model.KOKKOS, F),
                (INT, Model.KOKKOS, F)),
           "NVIDIA, AMD, Intel · Kokkos · Fortran",
           "Kokkos is a C++ model, but the official Fortran Language "
           "Compatibility Layer (FLCL) lets Fortran use GPUs as supported "
           "by Kokkos C++.", (27,)),
        _D(15, ((NV, Model.ALPAKA, CPP),), "NVIDIA · Alpaka · C++",
           "Alpaka supports NVIDIA GPUs in C++17, through nvcc or Clang's "
           "CUDA support.", (28,)),
        _D(16, ((NV, Model.ALPAKA, F), (AMD, Model.ALPAKA, F),
                (INT, Model.ALPAKA, F)),
           "NVIDIA, AMD, Intel · Alpaka · Fortran",
           "Alpaka is a C++ programming model and no ready-made Fortran "
           "support exists.", (28,)),
        _D(17, ((NV, Model.PYTHON, PY),), "NVIDIA · etc · Python",
           "Multiple venues: NVIDIA's CUDA Python low-level bindings "
           "(cuda-python), community PyCUDA, CuPy (NumPy-compatible "
           "arrays, custom kernels, library bindings), Numba (JIT "
           "decorators), and cuNumeric (NumPy API over Legate for "
           "multi-GPU).", (29, 30, 31, 32, 33)),
        _D(18, ((AMD, Model.CUDA, CPP),), "AMD · CUDA · C++",
           "CUDA is not directly supported on AMD GPUs, but AMD's HIPIFY "
           "translates CUDA to HIP; translated code runs under hipcc with "
           "HIP_PLATFORM=amd.", (12,)),
        _D(19, ((AMD, Model.CUDA, F),), "AMD · CUDA · Fortran",
           "No direct CUDA Fortran support; AMD's GPUFORT source-to-source "
           "translator converts some CUDA Fortran to Fortran+OpenMP (AOMP) "
           "or Fortran+hipfort with extracted C kernels. Coverage is "
           "use-case driven; the last commit is two years old.", (34,)),
        _D(20, ((AMD, Model.HIP, CPP),), "AMD · HIP · C++",
           "HIP C++ is the native model for AMD GPUs and fully supports "
           "them, as part of the mostly open-source ROCm platform. hipcc "
           "is a compiler driver around AMD's Clang (AMDGPU backend); use "
           "HIP_PLATFORM=amd and --offload-arch=gfx90a.", (12,)),
        _D(21, ((AMD, Model.SYCL, CPP),), "AMD · SYCL · C++",
           "No direct SYCL support by AMD; Open SYCL supports AMD GPUs via "
           "HIP/ROCm in Clang, and DPC++ (open source or the oneAPI "
           "toolkit's ROCm plugin) also targets AMD. Unlike CUDA, no "
           "SYCLomatic-style conversion exists for HIP.", (15, 14)),
        _D(22, ((AMD, Model.OPENACC, CPP),), "AMD · OpenACC · C++",
           "Not supported by AMD itself; third-party support through GCC "
           "(-fopenacc -foffload=amdgcn-amdhsa) and Clacc (OpenACC-to-"
           "OpenMP in Clang, -fopenmp-targets=amdgcn-amd-amdhsa). Intel's "
           "OpenACC-to-OpenMP translator can also be used.", (18, 19)),
        _D(23, ((AMD, Model.OPENACC, F),), "AMD · OpenACC · Fortran",
           "No native support; AMD's GPUFORT (research, stale) translates "
           "OpenACC Fortran to OpenMP or hipfort. Community support "
           "through GCC gfortran and upcoming in LLVM (Flacc); the HPE "
           "Cray Programming Environment supports OpenACC Fortran on AMD "
           "GPUs; Intel's translator applies too.", (34, 18, 21)),
        _D(24, ((AMD, Model.OPENMP, CPP),), "AMD · OpenMP · C++",
           "AMD offers AOMP, a dedicated Clang-based offload compiler "
           "shipped with ROCm, supporting most OpenMP 4.5 and some 5.0 "
           "features (-fopenmp). The HPE Cray PE also supports OpenMP on "
           "AMD GPUs.", (35, 7, 24)),
        _D(25, ((AMD, Model.OPENMP, F),), "AMD · OpenMP · Fortran",
           "Through AOMP's flang executable with Clang-typical options "
           "(-fopenmp); also supported by the HPE Cray Programming "
           "Environment.", (35, 24)),
        _D(26, ((AMD, Model.STANDARD, CPP),), "AMD · Standard · C++",
           "No production-grade support yet. roc-stdpar (ROCm Standard "
           "Parallelism Runtime, -stdpar) is under development aiming at "
           "upstream LLVM; Open SYCL is adding --hipsycl-stdpar; oneDPL "
           "reaches AMD GPUs through DPC++'s experimental AMD support.",
           (36, 15, 26)),
        _D(27, ((AMD, Model.STANDARD, F),), "AMD · Standard · Fortran",
           "There is no (known) way to launch standard-based parallel "
           "Fortran algorithms on AMD GPUs."),
        _D(28, ((AMD, Model.KOKKOS, CPP),), "AMD · Kokkos · C++",
           "Kokkos supports AMD GPUs mainly through the HIP/ROCm backend; "
           "an OpenMP offloading backend is also available.", (27,)),
        _D(29, ((AMD, Model.ALPAKA, CPP),), "AMD · Alpaka · C++",
           "Alpaka supports AMD GPUs through HIP or through an OpenMP "
           "backend.", (28,)),
        _D(30, ((AMD, Model.PYTHON, PY),), "AMD · etc · Python",
           "AMD does not officially support Python GPU programming; "
           "third-party: CuPy experimentally supports ROCm "
           "(cupy-rocm-5-0), Numba's AMD support is unmaintained, "
           "low-level bindings exist (PyHIP, PyOpenCL).", (29,)),
        _D(31, ((INT, Model.CUDA, CPP),), "Intel · CUDA · C++",
           "Intel does not support CUDA C/C++ on their GPUs but offers "
           "SYCLomatic (open source; commercially the DPC++ Compatibility "
           "Tool) to translate CUDA to SYCL. The community project "
           "chipStar (previously CHIP-SPV, 1.0) targets Intel GPUs from "
           "CUDA via Clang (cuspv); ZLUDA existed but is unmaintained.",
           (37, 38, 39)),
        _D(32, ((INT, Model.CUDA, F),), "Intel · CUDA · Fortran",
           "No direct support. A simple example binds SYCL to a (CUDA) "
           "Fortran program via ISO_C_BINDING."),
        _D(33, ((INT, Model.HIP, CPP),), "Intel · HIP · C++",
           "No native support; chipStar supports HIP on Intel GPUs by "
           "mapping it to OpenCL or Level Zero, via an LLVM-based "
           "toolchain using HIP and SPIR-V functionality.", (38,)),
        _D(34, ((INT, Model.HIP, F),), "Intel · HIP · Fortran",
           "HIP for Fortran does not exist, and there are no translation "
           "efforts for Intel GPUs."),
        _D(35, ((INT, Model.SYCL, CPP),), "Intel · SYCL · C++",
           "SYCL (C++17-based) is Intel's prime programming model for "
           "their GPUs, implemented via DPC++ (LLVM fork being "
           "upstreamed; commercial Intel oneAPI DPC++). Open SYCL also "
           "supports Intel GPUs via SPIR-V or Level Zero; ComputeCpp was "
           "retired in September 2023.", (14, 39, 15)),
        _D(36, ((INT, Model.OPENACC, CPP),), "Intel · OpenACC · C++",
           "No direct support; Intel offers a Python-based source "
           "translator, the Application Migration Tool for OpenACC to "
           "OpenMP API.", (40,)),
        _D(37, ((INT, Model.OPENACC, F),), "Intel · OpenACC · Fortran",
           "No direct support; Intel's OpenACC-to-OpenMP migration tool "
           "also handles Fortran.", (40,)),
        _D(38, ((INT, Model.OPENMP, CPP),), "Intel · OpenMP · C++",
           "OpenMP is a second key model for Intel GPUs, built into Intel "
           "oneAPI DPC++/C++ (icpx -qopenmp -fopenmp-targets=spir64): all "
           "OpenMP 4.5 and most 5.0/5.1 features.", (39,)),
        _D(39, ((INT, Model.OPENMP, F),), "Intel · OpenMP · Fortran",
           "Intel's main route for Fortran applications: OpenMP offload in "
           "the LLVM-based ifx compiler (-qopenmp "
           "-fopenmp-targets=spir64), part of the oneAPI HPC Toolkit.",
           (39,)),
        _D(40, ((INT, Model.STANDARD, CPP),), "Intel · Standard · C++",
           "Intel supports the pSTL through the open-source oneDPL over "
           "DPC++; algorithms and policies live in the oneapi::dpl:: "
           "namespace. Open SYCL is adding --hipsycl-stdpar.", (26,)),
        _D(41, ((INT, Model.STANDARD, F),), "Intel · Standard · Fortran",
           "do concurrent offload is supported through ifx (since oneAPI "
           "2022.1, extended since), enabled via -qopenmp with "
           "-fopenmp-target-do-concurrent and -fopenmp-targets=spir64.",
           (39,)),
        _D(42, ((INT, Model.KOKKOS, CPP),), "Intel · Kokkos · C++",
           "No direct support by Intel; Kokkos targets Intel GPUs through "
           "an experimental SYCL backend.", (27,)),
        _D(43, ((INT, Model.ALPAKA, CPP),), "Intel · Alpaka · C++",
           "Since v0.9.0, Alpaka contains experimental SYCL support "
           "targeting Intel GPUs; an OpenMP fallback exists."),
        _D(44, ((INT, Model.PYTHON, PY),), "Intel · etc · Python",
           "Three notable Intel packages: dpctl (low-level SYCL bindings), "
           "numba-dpex (Numba JIT extension), and dpnp (NumPy API "
           "extension), the latest versions partly GitHub-only.",
           (41, 42, 43)),
    )
}

assert len(DESCRIPTIONS) == 44, f"expected 44 descriptions, got {len(DESCRIPTIONS)}"

#: Cell -> description number (covers all 51 cells).
CELL_TO_DESCRIPTION: dict[tuple[Vendor, Model, Language], int] = {
    cell: d.number for d in DESCRIPTIONS.values() for cell in d.cells
}

assert len(CELL_TO_DESCRIPTION) == 51


def describe_cell(vendor: Vendor, model: Model, language: Language) -> Description:
    """The §4 description covering one Figure 1 cell."""
    return DESCRIPTIONS[CELL_TO_DESCRIPTION[(vendor, model, language)]]
