"""The extended matrix: RAJA and OpenCL columns (beyond Figure 1).

§5 names RAJA and OpenCL as the most notable exclusions from the
paper's model selection and explains both choices.  This module is the
"further models" extension the discussion invites: the same route →
probe → classify machinery applied to two extra columns, with expected
ratings that are **this reproduction's own assessment** (clearly not
from Figure 1), each justified against §5's prose:

* RAJA "is similar in spirit to ... Kokkos" — and measures like it:
  comprehensive community support on NVIDIA/AMD, an experimental SYCL
  backend for Intel;
* OpenCL "never gained much traction ... mostly due to the lukewarm
  support by NVIDIA" — the NVIDIA driver's 1.2-era feature set measures
  *some support*, AMD's 2.0 runtime likewise, Intel's complete runtime
  *full support*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classifier import DEFAULT_THRESHOLDS, Thresholds
from repro.core.matrix import CellResult, CompatibilityMatrix, evaluate_route
from repro.core.probes import PROBE_SUITES, Probe
from repro.core.routes import Route
from repro.enums import (
    EXTENDED_MODEL_ORDER,
    MODEL_LANGUAGES,
    VENDOR_ORDER,
    Language,
    Maturity,
    Mechanism,
    Model,
    Provider,
    SupportCategory,
    Vendor,
)
from repro.gpu.runtime import System

C = SupportCategory
CPP = Language.CPP

# Register the extension probe suites alongside the Figure 1 ones.
PROBE_SUITES.setdefault("raja", (
    Probe("forall over range segments", "probe_forall"),
    Probe("ReduceSum reducers", "probe_reduce"),
    Probe("nested kernel policies", "probe_kernel_nested"),
    Probe("exclusive scan", "probe_scan"),
))
PROBE_SUITES.setdefault("opencl", (
    Probe("kernels, buffers, program build", "probe_kernels"),
    Probe("command queues", "probe_queues"),
    Probe("event profiling", "probe_events"),
    Probe("shared virtual memory (2.0)", "probe_svm"),
    Probe("sub-group operations (2.1)", "probe_subgroups"),
))


def _raja(policy: str):
    def make(device):
        from repro.models.raja import Raja

        return Raja(device, policy=policy)

    return make


def _opencl():
    def make(device):
        from repro.models.opencl import ClContext

        return ClContext(device)

    return make


_R = Route
NV, AMD, INTEL = Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL

#: Extension routes (description_id 0: not a §4 entry).
EXTENDED_ROUTES: tuple[Route, ...] = (
    _R("ext-nv-raja-cpp", NV, Model.RAJA, CPP, Provider.COMMUNITY,
       Mechanism.LAYERED, Maturity.PRODUCTION, "RAJA CUDA backend",
       "RAJA::cuda_exec (nvcc)", "raja", _raja("cuda_exec"), 0),
    _R("ext-amd-raja-cpp", AMD, Model.RAJA, CPP, Provider.COMMUNITY,
       Mechanism.LAYERED, Maturity.PRODUCTION, "RAJA HIP backend",
       "RAJA::hip_exec (hipcc)", "raja", _raja("hip_exec"), 0),
    _R("ext-intel-raja-cpp", INTEL, Model.RAJA, CPP, Provider.COMMUNITY,
       Mechanism.LAYERED, Maturity.EXPERIMENTAL,
       "RAJA SYCL backend (experimental)", "RAJA::sycl_exec (dpcpp)",
       "raja", _raja("sycl_exec"), 0),
    _R("ext-nv-opencl-cpp", NV, Model.OPENCL, CPP, Provider.NVIDIA,
       Mechanism.NATIVE, Maturity.PRODUCTION, "NVIDIA OpenCL driver",
       "libOpenCL (1.2-era)", "opencl", _opencl(), 0),
    _R("ext-amd-opencl-cpp", AMD, Model.OPENCL, CPP, Provider.AMD,
       Mechanism.NATIVE, Maturity.PRODUCTION, "ROCm OpenCL",
       "rocm-opencl-runtime (2.0)", "opencl", _opencl(), 0),
    _R("ext-intel-opencl-cpp", INTEL, Model.OPENCL, CPP, Provider.INTEL,
       Mechanism.NATIVE, Maturity.PRODUCTION, "Intel Compute Runtime",
       "intel-compute-runtime (3.0)", "opencl", _opencl(), 0),
)


@dataclass(frozen=True)
class ExtendedExpectation:
    """Our (non-paper) expected rating, justified against §5 prose."""

    primary: SupportCategory
    rationale: str


EXTENDED_EXPECTED: dict[tuple[Vendor, Model, Language], ExtendedExpectation] = {
    (NV, Model.RAJA, CPP): ExtendedExpectation(
        C.NONVENDOR, "similar in spirit to Kokkos: comprehensive community "
                     "support via the CUDA backend"),
    (AMD, Model.RAJA, CPP): ExtendedExpectation(
        C.NONVENDOR, "comprehensive community support via the HIP backend"),
    (INTEL, Model.RAJA, CPP): ExtendedExpectation(
        C.LIMITED, "SYCL backend experimental, like Kokkos's "
                   "(description 42 analogue)"),
    (NV, Model.OPENCL, CPP): ExtendedExpectation(
        C.SOME, "§5: 'lukewarm support by NVIDIA' — the driver's 1.2-era "
                "feature set (no SVM, no sub-groups)"),
    (AMD, Model.OPENCL, CPP): ExtendedExpectation(
        C.SOME, "ROCm OpenCL stops at 2.0 (no sub-group extensions)"),
    (INTEL, Model.OPENCL, CPP): ExtendedExpectation(
        C.FULL, "Intel's compute runtime is complete (OpenCL is the "
                "sibling of Level Zero)"),
}


def extended_cells() -> list[tuple[Vendor, Model, Language]]:
    """The six extension cells (RAJA/OpenCL are C++-only)."""
    return [
        (vendor, model, language)
        for vendor in VENDOR_ORDER
        for model in EXTENDED_MODEL_ORDER
        for language in MODEL_LANGUAGES[model]
    ]


def build_extended_matrix(system: System | None = None,
                          thresholds: Thresholds = DEFAULT_THRESHOLDS
                          ) -> CompatibilityMatrix:
    """Probe the extension routes and classify, like Figure 1's build."""
    if system is None:
        system = System.default()
    cells: dict = {}
    for key in extended_cells():
        cell = CellResult(*key)
        for route in EXTENDED_ROUTES:
            if (route.vendor, route.model, route.language) == key:
                cell.routes.append(evaluate_route(route, system, thresholds))
        cells[key] = cell
    return CompatibilityMatrix(cells=cells, thresholds=thresholds)


def render_extended_text(matrix: CompatibilityMatrix) -> str:
    """Monospace table of the two extension columns."""
    lines = [
        "Extended columns (this reproduction's assessment, not Figure 1)",
        "",
        " " * 8 + "RAJA   OpenCL",
        " " * 8 + "C++    C++",
        "-" * 24,
    ]
    for vendor in VENDOR_ORDER:
        row = vendor.value.ljust(8)
        for model in EXTENDED_MODEL_ORDER:
            cell = matrix.cell(vendor, model, CPP)
            row += cell.primary.symbol.ljust(7)
        lines.append(row.rstrip())
    return "\n".join(lines)


def compare_extended(matrix: CompatibilityMatrix) -> list[tuple]:
    """Mismatches between derived and expected extension ratings."""
    mismatches = []
    for key, expectation in EXTENDED_EXPECTED.items():
        derived = matrix.cell(*key).primary
        if derived is not expectation.primary:
            mismatches.append((key, expectation.primary, derived))
    return mismatches
