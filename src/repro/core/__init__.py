"""The paper's contribution: the compatibility-rating methodology.

* :mod:`repro.core.probes` — per-model probe suites: small verified
  programs, each exercising one feature the §4 descriptions hinge on.
* :mod:`repro.core.routes` — the registry of support routes (>50), one
  per toolchain/translator/package chain named in §4.
* :mod:`repro.core.classifier` — the §3 rating rules mapping measured
  route coverage to the six support categories.
* :mod:`repro.core.matrix` — builds Figure 1 empirically by running
  every route's probe suite on the simulated devices.
* :mod:`repro.core.descriptions` — the 44 encyclopedic descriptions.
* :mod:`repro.core.render` — text/Markdown/HTML/TeX/YAML renderers.
* :mod:`repro.core.report` — derived-vs-paper agreement reporting.
* :mod:`repro.core.advisor` — the "guide for scientific programmers".
"""

from repro.core.categories import CATEGORY_DETAILS  # noqa: F401
from repro.core.classifier import Thresholds, classify_route  # noqa: F401
from repro.core.matrix import CellResult, CompatibilityMatrix, build_matrix  # noqa: F401
from repro.core.probes import PROBE_SUITES, run_probe_suite  # noqa: F401
from repro.core.routes import Route, all_routes, routes_for  # noqa: F401
