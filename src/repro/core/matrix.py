"""Building the compatibility matrix (Figure 1) empirically.

:func:`build_matrix` walks all 51 (vendor, model, language) cells,
runs every registered route's probe suite on the corresponding
simulated device, classifies each route with the §3 rules, and
aggregates per cell:

* **primary** rating — the best category any route achieves;
* **secondary** rating — the best category achieved by the *other*
  provider class (vendor vs. community), when it differs; this is how
  the paper's dual-rated cells (NVIDIA·Python, Intel·CUDA·C++, §5)
  arise naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.classifier import (
    DEFAULT_THRESHOLDS,
    Thresholds,
    classify_route,
    provider_class,
)
from repro.core.probes import (
    PROBE_SUITES,
    Probe,
    ProbeOutcome,
    SuiteResult,
    run_single_probe,
)
from repro.core.routes import Route, routes_for
from repro.enums import (
    Language,
    Model,
    SupportCategory,
    Vendor,
    all_cells,
)
from repro.gpu.runtime import System


@dataclass
class RouteResult:
    """One route's measured outcome."""

    route: Route
    suite: SuiteResult
    category: SupportCategory

    @property
    def coverage(self) -> float:
        return self.suite.coverage


def aggregate_primary(
    pairs: list[tuple[Route, SupportCategory]],
) -> SupportCategory:
    """Best category any route achieves (NONE when no route supports)."""
    cats = [c for _, c in pairs if c is not SupportCategory.NONE]
    if not cats:
        return SupportCategory.NONE
    return max(cats, key=lambda c: c.rank)


def aggregate_secondary(
    pairs: list[tuple[Route, SupportCategory]],
) -> SupportCategory | None:
    """Best category of the provider class that does not own primary.

    Shared by the empirical matrix (:class:`CellResult`) and the static
    route-evidence analyzer, so both derive dual ratings by the same
    rule.
    """
    primary = aggregate_primary(pairs)
    if primary is SupportCategory.NONE:
        return None
    best_route, _ = max(
        ((r, c) for r, c in pairs if c is not SupportCategory.NONE),
        key=lambda p: p[1].rank,
    )
    own_class = provider_class(best_route)
    other = [
        c for r, c in pairs
        if provider_class(r) != own_class and c is not SupportCategory.NONE
    ]
    if not other:
        return None
    cat = max(other, key=lambda c: c.rank)
    return cat if cat is not primary else None


@dataclass
class CellResult:
    """One Figure 1 cell: ratings plus the evidence behind them."""

    vendor: Vendor
    model: Model
    language: Language
    routes: list[RouteResult] = field(default_factory=list)

    def _pairs(self) -> list[tuple[Route, SupportCategory]]:
        return [(r.route, r.category) for r in self.routes]

    @property
    def primary(self) -> SupportCategory:
        return aggregate_primary(self._pairs())

    @property
    def secondary(self) -> SupportCategory | None:
        """Best category of the provider class that does not own primary."""
        return aggregate_secondary(self._pairs())

    @property
    def categories(self) -> set[SupportCategory]:
        return {r.category for r in self.routes} or {SupportCategory.NONE}

    def best_route(self) -> RouteResult | None:
        usable = [r for r in self.routes if r.category is not SupportCategory.NONE]
        if not usable:
            return None
        return max(usable, key=lambda r: (r.category.rank, r.coverage))


@dataclass
class CompatibilityMatrix:
    """The derived Figure 1."""

    cells: dict[tuple[Vendor, Model, Language], CellResult]
    thresholds: Thresholds

    def cell(self, vendor: Vendor, model: Model, language: Language) -> CellResult:
        return self.cells[(vendor, model, language)]

    def __iter__(self):
        return iter(self.cells.values())

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    def n_routes(self) -> int:
        return sum(len(c.routes) for c in self.cells.values())

    def supported_cells(self) -> list[CellResult]:
        return [c for c in self if c.primary is not SupportCategory.NONE]


# -- enumerable build primitives ---------------------------------------------
#
# The matrix build decomposes into independent per-probe work items plus
# order-fixed assembly steps.  Both the sequential :func:`build_matrix`
# below and the concurrent scheduler (:mod:`repro.service.scheduler`)
# are thin drivers over these same functions, which is what makes
# "bit-identical at every worker count" true by construction rather
# than by luck.


def probes_for_route(route: Route, probe_filter=None) -> tuple[Probe, ...]:
    """The (ordered) probes a route's evaluation runs."""
    probes = PROBE_SUITES[route.probe_suite]
    if probe_filter is not None:
        probes = tuple(p for p in probes if probe_filter(p))
    return probes


def assemble_route_result(route: Route, outcomes: list[ProbeOutcome],
                          thresholds: Thresholds = DEFAULT_THRESHOLDS,
                          ) -> RouteResult:
    """Classify a route from its probe outcomes (suite order preserved)."""
    suite = SuiteResult(suite=route.probe_suite, outcomes=list(outcomes))
    category = classify_route(route, suite.coverage, thresholds)
    return RouteResult(route=route, suite=suite, category=category)


def assemble_cell(vendor: Vendor, model: Model, language: Language,
                  route_results: list[RouteResult]) -> CellResult:
    """Build a cell from its route results (registry order preserved)."""
    return CellResult(vendor=vendor, model=model, language=language,
                      routes=list(route_results))


def evaluate_route(route: Route, system: System,
                   thresholds: Thresholds = DEFAULT_THRESHOLDS,
                   probe_filter=None) -> RouteResult:
    """Probe one route on its vendor's device and classify it."""
    device = system.device(route.vendor)
    outcomes = [
        run_single_probe(route, device, probe)
        for probe in probes_for_route(route, probe_filter)
    ]
    return assemble_route_result(route, outcomes, thresholds)


def build_matrix(system: System | None = None,
                 thresholds: Thresholds = DEFAULT_THRESHOLDS,
                 probe_filter=None) -> CompatibilityMatrix:
    """Derive the full 51-cell matrix by probing every route.

    Args:
        system: Simulated machine (defaults to one flagship per vendor).
        thresholds: Classifier cut-points (ablation hook).
        probe_filter: Optional predicate on :class:`Probe` restricting
            the suites (ablation hook: probe-suite sensitivity).
    """
    if system is None:
        system = System.default()
    cells: dict[tuple[Vendor, Model, Language], CellResult] = {}
    for vendor, model, language in all_cells():
        results = [
            evaluate_route(route, system, thresholds, probe_filter)
            for route in routes_for(vendor, model, language)
        ]
        cells[(vendor, model, language)] = assemble_cell(
            vendor, model, language, results
        )
    return CompatibilityMatrix(cells=cells, thresholds=thresholds)
