"""The route registry: every support route named in §4.

A :class:`Route` is one concrete way to drive one GPU platform from one
(programming model, language) pair — a toolchain, a translator +
toolchain chain, a layered library over a backend, or a Python package.
The paper identifies "more than 50 routes"; this registry enumerates
them with the provenance data (provider, mechanism, maturity) the §3
classifier needs, plus a factory that builds a runnable runtime for the
probe suite.

The registry is *the* executable encoding of §4: each route cites its
description number, and the probe-measured coverage of these routes is
what regenerates Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.enums import Language, Maturity, Mechanism, Model, Provider, Vendor
from repro.gpu.device import Device

CPP = Language.CPP
F = Language.FORTRAN
PY = Language.PYTHON


@dataclass(frozen=True)
class Route:
    """One support route for a (vendor, model, language) cell."""

    route_id: str
    vendor: Vendor
    model: Model
    language: Language
    provider: Provider
    mechanism: Mechanism
    maturity: Maturity
    label: str
    via: str  # the toolchain/translator/package chain, human-readable
    probe_suite: str
    runtime_factory: Callable[[Device], object]
    description_id: int  # the §4 entry this route appears in

    @property
    def is_translation(self) -> bool:
        """True for source-to-source translated routes (hipify,
        SYCLomatic, acc2omp, GPUFORT ...)."""
        return self.mechanism is Mechanism.TRANSLATION

    def chain(self, device: Device):
        """Instantiate the full runtime chain for this route.

        Equivalent to ``runtime_factory(device)``, named for the static
        route-evidence analyzer: constructing the chain wires up the
        toolchain, any source translator, and any layered backend
        without compiling anything, so the analyzer can inspect what the
        route *would* use.
        """
        return self.runtime_factory(device)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Route {self.route_id} via {self.via}>"


# -- runtime factories -------------------------------------------------------
# Imports happen inside the factories so importing the registry stays cheap.


def _cuda(toolchain: str, language: Language = CPP, translator=None):
    def make(device: Device):
        from repro.models.cuda import Cuda

        rt = Cuda(device, toolchain, language=language)
        if translator is not None:
            rt.translator = translator()
        return rt

    return make


def _hip(toolchain: str, language: Language = CPP):
    def make(device: Device):
        from repro.models.hip import Hip

        return Hip(device, toolchain, language=language)

    return make


def _sycl(toolchain: str):
    def make(device: Device):
        from repro.models.sycl import SyclQueue

        return SyclQueue(device, toolchain)

    return make


def _openmp(toolchain: str, language: Language = CPP):
    def make(device: Device):
        from repro.models.openmp import OpenMP

        return OpenMP(device, toolchain, language=language)

    return make


def _openacc(toolchain: str, language: Language = CPP, translator=None):
    def make(device: Device):
        from repro.models.openacc import OpenACC

        rt = OpenACC(device, toolchain, language=language)
        if translator is not None:
            rt.translator = translator()
        return rt

    return make


def _stdpar(toolchain: str):
    def make(device: Device):
        from repro.models.stdpar import StdPar

        return StdPar(device, toolchain)

    return make


def _doconcurrent(toolchain: str):
    def make(device: Device):
        from repro.models.stdpar import DoConcurrent

        return DoConcurrent(device, toolchain)

    return make


def _kokkos(backend: str, toolchain: str | None = None, flcl: bool = False):
    def make(device: Device):
        from repro.models.kokkos import FLCL, Kokkos

        cls = FLCL if flcl else Kokkos
        return cls(device, backend=backend, toolchain=toolchain)

    return make


def _alpaka(accelerator: str):
    def make(device: Device):
        from repro.models.alpaka import Alpaka

        return Alpaka(device, accelerator=accelerator)

    return make


def _pypkg(name: str):
    def make(device: Device):
        from repro.models.pymodels import make_package

        return make_package(name, device)

    return make


def _hipify():
    from repro.translate import Hipify

    return Hipify()


def _syclomatic():
    from repro.translate import Syclomatic

    return Syclomatic()


def _gpufort_cuda():
    from repro.enums import Model as M
    from repro.translate import Gpufort

    return Gpufort(source=M.CUDA)


def _gpufort_acc():
    from repro.enums import Model as M
    from repro.translate import Gpufort

    return Gpufort(source=M.OPENACC)


def _acc2omp():
    from repro.translate import AccToOmp

    return AccToOmp()


def _acc_translated(toolchain: str, language: Language = CPP):
    return _openacc(toolchain, language, translator=_acc2omp)


def _gpufort_acc_runtime(language: Language = F):
    def make(device: Device):
        from repro.models.openacc import OpenACC

        rt = OpenACC(device, "aomp", language=language)
        rt.translator = _gpufort_acc()
        return rt

    return make


# -- the registry ---------------------------------------------------------------

_R = Route
_PROD = Maturity.PRODUCTION
_EXP = Maturity.EXPERIMENTAL
_RES = Maturity.RESEARCH
_DEAD = Maturity.UNMAINTAINED

NV, AMD, INTEL = Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL
P_NV, P_AMD, P_INT = Provider.NVIDIA, Provider.AMD, Provider.INTEL
P_COM, P_HPE = Provider.COMMUNITY, Provider.HPE
NAT, MAP, TRA, LAY, BIN = (
    Mechanism.NATIVE, Mechanism.MAPPING, Mechanism.TRANSLATION,
    Mechanism.LAYERED, Mechanism.BINDINGS,
)


def _build_registry() -> list[Route]:
    routes: list[Route] = []
    add = routes.append

    # ---------------- NVIDIA ----------------
    add(_R("nv-cuda-cpp-nvcc", NV, Model.CUDA, CPP, P_NV, NAT, _PROD,
           "CUDA Toolkit", "nvcc", "cuda_cpp", _cuda("nvcc"), 1))
    add(_R("nv-cuda-cpp-nvhpc", NV, Model.CUDA, CPP, P_NV, NAT, _PROD,
           "NVIDIA HPC SDK", "nvc++ -cuda", "cuda_cpp", _cuda("nvhpc"), 1))
    add(_R("nv-cuda-cpp-clang", NV, Model.CUDA, CPP, P_COM, NAT, _PROD,
           "Clang CUDA support", "clang++ (LLVM PTX)", "cuda_cpp",
           _cuda("clang"), 1))
    add(_R("nv-cuda-f-nvhpc", NV, Model.CUDA, F, P_NV, NAT, _PROD,
           "CUDA Fortran", "nvfortran -cuda", "cuda_fortran",
           _cuda("nvhpc", F), 2))
    add(_R("nv-cuda-f-flang", NV, Model.CUDA, F, P_COM, NAT, _EXP,
           "CUDA Fortran in Flang (recently merged)", "flang (LLVM main)",
           "cuda_fortran", _cuda("flang-cuda", F), 2))
    add(_R("nv-hip-cpp-hipcc", NV, Model.HIP, CPP, P_AMD, MAP, _PROD,
           "HIP CUDA backend", "hipcc, HIP_PLATFORM=nvidia", "hip_cpp",
           _hip("hipcc"), 3))
    add(_R("nv-hip-f-hipfort", NV, Model.HIP, F, P_AMD, BIN, _PROD,
           "hipfort interfaces", "hipfort + gfortran (CUDA backend)",
           "hip_fortran", _hip("hipfort", F), 4))
    add(_R("nv-sycl-cpp-dpcpp", NV, Model.SYCL, CPP, P_INT, NAT, _PROD,
           "DPC++ CUDA plugin", "dpcpp (LLVM PTX)", "sycl_cpp",
           _sycl("dpcpp"), 5))
    add(_R("nv-sycl-cpp-opensycl", NV, Model.SYCL, CPP, P_COM, NAT, _PROD,
           "Open SYCL", "opensycl (CUDA/LLVM or nvc++)", "sycl_cpp",
           _sycl("opensycl"), 5))
    add(_R("nv-sycl-cpp-computecpp", NV, Model.SYCL, CPP, P_COM, NAT, _DEAD,
           "ComputeCpp (retired)", "computecpp", "sycl_cpp",
           _sycl("computecpp"), 5))
    add(_R("nv-acc-cpp-nvhpc", NV, Model.OPENACC, CPP, P_NV, NAT, _PROD,
           "NVHPC OpenACC", "nvc++ -acc -gpu", "openacc",
           _openacc("nvhpc"), 7))
    add(_R("nv-acc-cpp-gcc", NV, Model.OPENACC, CPP, P_COM, NAT, _PROD,
           "GCC OpenACC", "g++ -fopenacc (nvptx)", "openacc",
           _openacc("gcc"), 7))
    add(_R("nv-acc-cpp-clacc", NV, Model.OPENACC, CPP, P_COM, TRA, _PROD,
           "Clacc", "clacc-clang -fopenacc (ACC->OMP)", "openacc",
           _openacc("clacc"), 7))
    add(_R("nv-acc-f-nvhpc", NV, Model.OPENACC, F, P_NV, NAT, _PROD,
           "NVHPC OpenACC Fortran", "nvfortran -acc", "openacc",
           _openacc("nvhpc", F), 8))
    add(_R("nv-acc-f-gcc", NV, Model.OPENACC, F, P_COM, NAT, _PROD,
           "GCC OpenACC Fortran", "gfortran -fopenacc", "openacc",
           _openacc("gcc", F), 8))
    add(_R("nv-acc-f-flacc", NV, Model.OPENACC, F, P_COM, NAT, _EXP,
           "Flacc (in progress)", "flang -fopenacc", "openacc",
           _openacc("flacc", F), 8))
    add(_R("nv-acc-f-cray", NV, Model.OPENACC, F, P_HPE, NAT, _PROD,
           "HPE Cray PE", "ftn -hacc", "openacc", _openacc("cray-ce", F), 8))
    add(_R("nv-omp-cpp-nvhpc", NV, Model.OPENMP, CPP, P_NV, NAT, _PROD,
           "NVHPC OpenMP", "nvc++ -mp=gpu", "openmp", _openmp("nvhpc"), 9))
    add(_R("nv-omp-cpp-gcc", NV, Model.OPENMP, CPP, P_COM, NAT, _PROD,
           "GCC OpenMP offload", "g++ -fopenmp -foffload=nvptx-none",
           "openmp", _openmp("gcc"), 9))
    add(_R("nv-omp-cpp-clang", NV, Model.OPENMP, CPP, P_COM, NAT, _PROD,
           "Clang OpenMP offload", "clang++ -fopenmp -fopenmp-targets=nvptx64",
           "openmp", _openmp("clang"), 9))
    add(_R("nv-omp-cpp-cray", NV, Model.OPENMP, CPP, P_HPE, NAT, _PROD,
           "HPE Cray PE", "CC -fopenmp", "openmp", _openmp("cray-ce"), 9))
    add(_R("nv-omp-cpp-aomp", NV, Model.OPENMP, CPP, P_AMD, NAT, _PROD,
           "AOMP (NVIDIA target)", "aomp-clang -fopenmp", "openmp",
           _openmp("aomp"), 9))
    add(_R("nv-omp-f-nvhpc", NV, Model.OPENMP, F, P_NV, NAT, _PROD,
           "NVHPC OpenMP Fortran", "nvfortran -mp=gpu", "openmp",
           _openmp("nvhpc", F), 10))
    add(_R("nv-omp-f-gcc", NV, Model.OPENMP, F, P_COM, NAT, _PROD,
           "GCC gfortran offload", "gfortran -fopenmp", "openmp",
           _openmp("gcc", F), 10))
    add(_R("nv-omp-f-flang", NV, Model.OPENMP, F, P_COM, NAT, _PROD,
           "LLVM Flang", "flang -mp", "openmp", _openmp("flang", F), 10))
    add(_R("nv-omp-f-cray", NV, Model.OPENMP, F, P_HPE, NAT, _PROD,
           "HPE Cray PE Fortran", "ftn -fopenmp", "openmp",
           _openmp("cray-ce", F), 10))
    add(_R("nv-std-cpp-nvhpc", NV, Model.STANDARD, CPP, P_NV, NAT, _PROD,
           "NVHPC stdpar", "nvc++ -stdpar=gpu", "stdpar_cpp",
           _stdpar("nvhpc"), 11))
    add(_R("nv-std-cpp-onedpl", NV, Model.STANDARD, CPP, P_INT, LAY, _PROD,
           "oneDPL via DPC++ PTX", "onedpl + dpcpp", "stdpar_cpp",
           _stdpar("onedpl"), 11))
    add(_R("nv-std-cpp-opensycl", NV, Model.STANDARD, CPP, P_COM, LAY, _EXP,
           "Open SYCL stdpar", "--hipsycl-stdpar", "stdpar_cpp",
           _stdpar("opensycl-stdpar"), 11))
    add(_R("nv-std-f-nvhpc", NV, Model.STANDARD, F, P_NV, NAT, _PROD,
           "NVHPC do concurrent", "nvfortran -stdpar=gpu", "stdpar_fortran",
           _doconcurrent("nvhpc"), 12))
    add(_R("nv-kokkos-cpp-cuda", NV, Model.KOKKOS, CPP, P_COM, LAY, _PROD,
           "Kokkos CUDA backend", "Kokkos::Cuda (nvcc)", "kokkos",
           _kokkos("cuda"), 13))
    add(_R("nv-kokkos-cpp-omp", NV, Model.KOKKOS, CPP, P_COM, LAY, _PROD,
           "Kokkos OpenMP-offload backend", "Kokkos (clang++ OpenMP)",
           "kokkos", _kokkos("openmp"), 13))
    add(_R("nv-kokkos-f-flcl", NV, Model.KOKKOS, F, P_COM, BIN, _PROD,
           "Kokkos FLCL", "FLCL over Kokkos::Cuda", "kokkos",
           _kokkos("cuda", flcl=True), 14))
    add(_R("nv-alpaka-cpp", NV, Model.ALPAKA, CPP, P_COM, LAY, _PROD,
           "Alpaka CUDA backend", "AccGpuCudaRt (nvcc/clang)", "alpaka",
           _alpaka("AccGpuCudaRt"), 15))
    add(_R("nv-py-cudapython", NV, Model.PYTHON, PY, P_NV, NAT, _PROD,
           "CUDA Python", "cuda-python (PyPI)", "python",
           _pypkg("cuda-python"), 17))
    add(_R("nv-py-cupy", NV, Model.PYTHON, PY, P_COM, LAY, _PROD,
           "CuPy", "cupy-cuda12x (PyPI)", "python", _pypkg("cupy"), 17))
    add(_R("nv-py-pycuda", NV, Model.PYTHON, PY, P_COM, BIN, _PROD,
           "PyCUDA", "pycuda (PyPI)", "python", _pypkg("pycuda"), 17))
    add(_R("nv-py-numba", NV, Model.PYTHON, PY, P_COM, LAY, _PROD,
           "Numba", "numba @cuda.jit (PyPI)", "python", _pypkg("numba"), 17))

    # ---------------- AMD ----------------
    add(_R("amd-cuda-cpp-hipify", AMD, Model.CUDA, CPP, P_AMD, TRA, _PROD,
           "HIPIFY + ROCm", "hipify-clang -> hipcc, HIP_PLATFORM=amd",
           "cuda_cpp", _cuda("hipcc", translator=_hipify), 18))
    add(_R("amd-cuda-f-gpufort", AMD, Model.CUDA, F, P_AMD, TRA, _RES,
           "GPUFORT (research)", "gpufort -> Fortran+OpenMP (AOMP)",
           "cuda_fortran",
           _cuda("aomp", F, translator=_gpufort_cuda), 19))
    add(_R("amd-hip-cpp-hipcc", AMD, Model.HIP, CPP, P_AMD, NAT, _PROD,
           "ROCm HIP", "hipcc --offload-arch=gfx90a", "hip_cpp",
           _hip("hipcc"), 20))
    add(_R("amd-hip-f-hipfort", AMD, Model.HIP, F, P_AMD, BIN, _PROD,
           "hipfort interfaces", "hipfort + gfortran", "hip_fortran",
           _hip("hipfort", F), 4))
    add(_R("amd-sycl-cpp-opensycl", AMD, Model.SYCL, CPP, P_COM, NAT, _PROD,
           "Open SYCL", "opensycl (HIP/ROCm in Clang)", "sycl_cpp",
           _sycl("opensycl"), 21))
    add(_R("amd-sycl-cpp-dpcpp", AMD, Model.SYCL, CPP, P_INT, NAT, _PROD,
           "DPC++ ROCm plugin", "dpcpp (AMD plugin)", "sycl_cpp",
           _sycl("dpcpp"), 21))
    add(_R("amd-acc-cpp-gcc", AMD, Model.OPENACC, CPP, P_COM, NAT, _PROD,
           "GCC OpenACC", "g++ -fopenacc -foffload=amdgcn-amdhsa",
           "openacc", _openacc("gcc"), 22))
    add(_R("amd-acc-cpp-clacc", AMD, Model.OPENACC, CPP, P_COM, TRA, _PROD,
           "Clacc", "clacc-clang -fopenmp-targets=amdgcn-amd-amdhsa",
           "openacc", _openacc("clacc"), 22))
    add(_R("amd-acc-cpp-acc2omp", AMD, Model.OPENACC, CPP, P_INT, TRA, _PROD,
           "Intel ACC->OMP migration tool", "acc2omp -> aomp", "openacc",
           _acc_translated("aomp"), 22))
    add(_R("amd-acc-f-gpufort", AMD, Model.OPENACC, F, P_AMD, TRA, _RES,
           "GPUFORT (research)", "gpufort -> Fortran+OpenMP (AOMP)",
           "openacc", _gpufort_acc_runtime(), 23))
    add(_R("amd-acc-f-gcc", AMD, Model.OPENACC, F, P_COM, NAT, _PROD,
           "GCC gfortran OpenACC", "gfortran -fopenacc", "openacc",
           _openacc("gcc", F), 23))
    add(_R("amd-acc-f-flacc", AMD, Model.OPENACC, F, P_COM, NAT, _EXP,
           "Flacc (in progress)", "flang -fopenacc", "openacc",
           _openacc("flacc", F), 23))
    add(_R("amd-acc-f-cray", AMD, Model.OPENACC, F, P_HPE, NAT, _PROD,
           "HPE Cray PE", "ftn -hacc", "openacc",
           _openacc("cray-ce", F), 23))
    add(_R("amd-omp-cpp-aomp", AMD, Model.OPENMP, CPP, P_AMD, NAT, _PROD,
           "AOMP", "aomp-clang -fopenmp", "openmp", _openmp("aomp"), 24))
    add(_R("amd-omp-cpp-gcc", AMD, Model.OPENMP, CPP, P_COM, NAT, _PROD,
           "GCC OpenMP offload", "g++ -fopenmp -foffload=amdgcn", "openmp",
           _openmp("gcc"), 24))
    add(_R("amd-omp-cpp-clang", AMD, Model.OPENMP, CPP, P_COM, NAT, _PROD,
           "Clang OpenMP offload", "clang++ -fopenmp-targets=amdgcn",
           "openmp", _openmp("clang"), 24))
    add(_R("amd-omp-cpp-cray", AMD, Model.OPENMP, CPP, P_HPE, NAT, _PROD,
           "HPE Cray PE", "CC -fopenmp", "openmp", _openmp("cray-ce"), 24))
    add(_R("amd-omp-f-aomp", AMD, Model.OPENMP, F, P_AMD, NAT, _PROD,
           "AOMP flang", "flang -fopenmp", "openmp", _openmp("aomp", F), 25))
    add(_R("amd-omp-f-gcc", AMD, Model.OPENMP, F, P_COM, NAT, _PROD,
           "GCC gfortran offload", "gfortran -fopenmp", "openmp",
           _openmp("gcc", F), 25))
    add(_R("amd-omp-f-cray", AMD, Model.OPENMP, F, P_HPE, NAT, _PROD,
           "HPE Cray PE Fortran", "ftn -fopenmp", "openmp",
           _openmp("cray-ce", F), 25))
    add(_R("amd-std-cpp-rocstdpar", AMD, Model.STANDARD, CPP, P_AMD, NAT, _EXP,
           "roc-stdpar (in development)", "-stdpar (pre-upstream)",
           "stdpar_cpp", _stdpar("roc-stdpar"), 26))
    add(_R("amd-std-cpp-opensycl", AMD, Model.STANDARD, CPP, P_COM, LAY, _EXP,
           "Open SYCL stdpar", "--hipsycl-stdpar", "stdpar_cpp",
           _stdpar("opensycl-stdpar"), 26))
    add(_R("amd-std-cpp-onedpl", AMD, Model.STANDARD, CPP, P_INT, LAY, _EXP,
           "oneDPL via DPC++ (experimental AMD)", "onedpl + dpcpp ROCm",
           "stdpar_cpp", _stdpar("onedpl"), 26))
    add(_R("amd-kokkos-cpp-hip", AMD, Model.KOKKOS, CPP, P_COM, LAY, _PROD,
           "Kokkos HIP backend", "Kokkos::HIP (hipcc)", "kokkos",
           _kokkos("hip"), 28))
    add(_R("amd-kokkos-cpp-omp", AMD, Model.KOKKOS, CPP, P_COM, LAY, _PROD,
           "Kokkos OpenMP-offload backend", "Kokkos (aomp)", "kokkos",
           _kokkos("openmp", toolchain="aomp"), 28))
    add(_R("amd-kokkos-f-flcl", AMD, Model.KOKKOS, F, P_COM, BIN, _PROD,
           "Kokkos FLCL", "FLCL over Kokkos::HIP", "kokkos",
           _kokkos("hip", flcl=True), 14))
    add(_R("amd-alpaka-cpp", AMD, Model.ALPAKA, CPP, P_COM, LAY, _PROD,
           "Alpaka HIP backend", "AccGpuHipRt (hipcc)", "alpaka",
           _alpaka("AccGpuHipRt"), 29))
    add(_R("amd-py-cupyrocm", AMD, Model.PYTHON, PY, P_COM, LAY, _EXP,
           "CuPy ROCm (experimental)", "cupy-rocm-5-0 (PyPI)", "python",
           _pypkg("cupy-rocm"), 30))
    add(_R("amd-py-pyhip", AMD, Model.PYTHON, PY, P_COM, BIN, _PROD,
           "PyHIP", "pyhip-interface (PyPI)", "python", _pypkg("pyhip"), 30))
    add(_R("amd-py-numba", AMD, Model.PYTHON, PY, P_COM, LAY, _DEAD,
           "Numba ROC (unmaintained)", "numba.roc (removed)", "python",
           _pypkg("numba-amd"), 30))
    add(_R("amd-py-pyopencl", AMD, Model.PYTHON, PY, P_COM, BIN, _PROD,
           "PyOpenCL", "pyopencl (PyPI, via ROCm OpenCL)", "python",
           _pypkg("pyopencl"), 30))

    # ---------------- Intel ----------------
    add(_R("intel-cuda-cpp-syclomatic", INTEL, Model.CUDA, CPP, P_INT, TRA,
           _PROD, "SYCLomatic + DPC++",
           "syclomatic/DPC++ Compatibility Tool -> dpcpp", "cuda_cpp",
           _cuda("dpcpp", translator=_syclomatic), 31))
    add(_R("intel-cuda-cpp-chipstar", INTEL, Model.CUDA, CPP, P_COM, MAP,
           _RES, "chipStar (research)", "cuspv (CUDA via Clang -> SPIR-V)",
           "cuda_cpp", _cuda("chipstar"), 31))
    add(_R("intel-cuda-cpp-zluda", INTEL, Model.CUDA, CPP, P_COM, MAP, _DEAD,
           "ZLUDA (unmaintained)", "zluda", "cuda_cpp", _cuda("zluda"), 31))
    add(_R("intel-hip-cpp-chipstar", INTEL, Model.HIP, CPP, P_COM, MAP, _RES,
           "chipStar (research)", "chipStar (HIP -> OpenCL/Level Zero)",
           "hip_cpp", _hip("chipstar"), 33))
    add(_R("intel-sycl-cpp-dpcpp", INTEL, Model.SYCL, CPP, P_INT, NAT, _PROD,
           "Intel oneAPI DPC++", "icpx -fsycl (SPIR-V/Level Zero)",
           "sycl_cpp", _sycl("dpcpp"), 35))
    add(_R("intel-sycl-cpp-opensycl", INTEL, Model.SYCL, CPP, P_COM, NAT,
           _PROD, "Open SYCL", "opensycl (SPIR-V or Level Zero)", "sycl_cpp",
           _sycl("opensycl"), 35))
    add(_R("intel-sycl-cpp-computecpp", INTEL, Model.SYCL, CPP, P_COM, NAT,
           _DEAD, "ComputeCpp (retired)", "computecpp", "sycl_cpp",
           _sycl("computecpp"), 35))
    add(_R("intel-acc-cpp-acc2omp", INTEL, Model.OPENACC, CPP, P_INT, TRA,
           _PROD, "ACC->OMP migration tool",
           "intel-application-migration-tool -> icpx", "openacc",
           _acc_translated("dpcpp"), 36))
    add(_R("intel-acc-f-acc2omp", INTEL, Model.OPENACC, F, P_INT, TRA, _PROD,
           "ACC->OMP migration tool (Fortran)",
           "intel-application-migration-tool -> ifx", "openacc",
           _acc_translated("ifx", F), 37))
    add(_R("intel-omp-cpp-icpx", INTEL, Model.OPENMP, CPP, P_INT, NAT, _PROD,
           "Intel oneAPI DPC++/C++", "icpx -qopenmp -fopenmp-targets=spir64",
           "openmp", _openmp("dpcpp"), 38))
    add(_R("intel-omp-f-ifx", INTEL, Model.OPENMP, F, P_INT, NAT, _PROD,
           "Intel Fortran (ifx)", "ifx -qopenmp -fopenmp-targets=spir64",
           "openmp", _openmp("ifx", F), 39))
    add(_R("intel-std-cpp-onedpl", INTEL, Model.STANDARD, CPP, P_INT, LAY,
           _PROD, "oneDPL", "oneapi::dpl over DPC++", "stdpar_cpp",
           _stdpar("onedpl"), 40))
    add(_R("intel-std-cpp-opensycl", INTEL, Model.STANDARD, CPP, P_COM, LAY,
           _EXP, "Open SYCL stdpar", "--hipsycl-stdpar", "stdpar_cpp",
           _stdpar("opensycl-stdpar"), 40))
    add(_R("intel-std-f-ifx", INTEL, Model.STANDARD, F, P_INT, NAT, _PROD,
           "ifx do concurrent", "ifx -fopenmp-target-do-concurrent",
           "stdpar_fortran", _doconcurrent("ifx"), 41))
    add(_R("intel-kokkos-cpp-sycl", INTEL, Model.KOKKOS, CPP, P_COM, LAY,
           _EXP, "Kokkos SYCL backend (experimental)",
           "Kokkos::Experimental::SYCL (dpcpp)", "kokkos",
           _kokkos("sycl"), 42))
    add(_R("intel-kokkos-f-flcl", INTEL, Model.KOKKOS, F, P_COM, BIN, _EXP,
           "Kokkos FLCL over SYCL backend", "FLCL + Kokkos SYCL", "kokkos",
           _kokkos("sycl", flcl=True), 14))
    add(_R("intel-alpaka-cpp", INTEL, Model.ALPAKA, CPP, P_COM, LAY, _EXP,
           "Alpaka SYCL backend (experimental, v0.9.0)",
           "AccGpuSyclIntel", "alpaka", _alpaka("AccGpuSyclIntel"), 43))
    add(_R("intel-py-dpctl", INTEL, Model.PYTHON, PY, P_INT, NAT, _PROD,
           "dpctl", "dpctl (PyPI)", "python", _pypkg("dpctl"), 44))
    add(_R("intel-py-dpnp", INTEL, Model.PYTHON, PY, P_INT, LAY, _PROD,
           "dpnp", "dpnp (PyPI/GitHub)", "python", _pypkg("dpnp"), 44))
    add(_R("intel-py-numbadpex", INTEL, Model.PYTHON, PY, P_INT, LAY, _PROD,
           "numba-dpex", "numba-dpex (Anaconda)", "python",
           _pypkg("numba-dpex"), 44))

    ids = [r.route_id for r in routes]
    assert len(ids) == len(set(ids)), "duplicate route ids"
    return routes


@lru_cache(maxsize=1)
def all_routes() -> tuple[Route, ...]:
    """Every registered route (cached)."""
    return tuple(_build_registry())


def routes_for(vendor: Vendor, model: Model, language: Language) -> list[Route]:
    """Routes for one Figure 1 cell (possibly empty — "no support")."""
    return [
        r for r in all_routes()
        if r.vendor is vendor and r.model is model and r.language is language
    ]
