"""Snapshot diffing: tracking the evolving landscape (§5 Topicality).

"Of course, the landscape of Figure 1 evolves swiftly; the progress is
tracked in a GitHub repository, open for suggestions" (§6).  This
module is that tracking machinery: diff two snapshots of the matrix and
produce a changelog of cells whose ratings moved, with direction and
justification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.descriptions import CELL_TO_DESCRIPTION
from repro.data.snapshots import Snapshot, SnapshotCell
from repro.enums import Language, Model, SupportCategory, Vendor, all_cells


@dataclass(frozen=True)
class CellChange:
    """One cell whose rating changed between snapshots."""

    vendor: Vendor
    model: Model
    language: Language
    old: SnapshotCell
    new: SnapshotCell

    @property
    def direction(self) -> str:
        if self.new.primary.rank > self.old.primary.rank:
            return "improved"
        if self.new.primary.rank < self.old.primary.rank:
            return "regressed"
        return "re-rated"

    @property
    def description_number(self) -> int:
        return CELL_TO_DESCRIPTION[(self.vendor, self.model, self.language)]

    def summary(self) -> str:
        def fmt(cell: SnapshotCell) -> str:
            text = cell.primary.label
            if cell.secondary is not None:
                text += f" + {cell.secondary.label}"
            return text

        return (f"{self.vendor.value} · {self.model.value} · "
                f"{self.language.value}: {fmt(self.old)} -> {fmt(self.new)} "
                f"[{self.direction}] (description {self.description_number})")


def diff(old: Snapshot, new: Snapshot) -> list[CellChange]:
    """Cells whose (primary, secondary) rating changed between snapshots."""
    changes: list[CellChange] = []
    for key in all_cells():
        old_cell = old.cells[key]
        new_cell = new.cells[key]
        if (old_cell.primary, old_cell.secondary) != (
                new_cell.primary, new_cell.secondary):
            changes.append(CellChange(*key, old=old_cell, new=new_cell))
    return changes


def changelog(old: Snapshot, new: Snapshot) -> str:
    """Human-readable changelog between two snapshots."""
    changes = diff(old, new)
    lines = [
        f"changes {old.name} ({old.date}) -> {new.name} ({new.date}): "
        f"{len(changes)} of {len(all_cells())} cells",
        "",
    ]
    for change in changes:
        lines.append(change.summary())
        if change.new.note:
            lines.append(f"    why: {change.new.note}")
    improved = sum(1 for c in changes if c.direction == "improved")
    regressed = sum(1 for c in changes if c.direction == "regressed")
    lines += ["", f"improved: {improved}, regressed: {regressed}, "
                  f"re-rated: {len(changes) - improved - regressed}"]
    return "\n".join(lines)


def stability(old: Snapshot, new: Snapshot) -> float:
    """Fraction of cells whose rating did not change."""
    total = len(all_cells())
    return (total - len(diff(old, new))) / total
