"""Derived-vs-paper comparison: the agreement report.

Compares the probe-derived matrix against the reconstructed published
ratings cell by cell, with the §5-flagged ambivalent cells broken out
separately (they are the cells the paper itself says are debatable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.matrix import CompatibilityMatrix
from repro.data.paper_matrix import PAPER_MATRIX, PaperCell
from repro.enums import Language, Model, SupportCategory, Vendor, all_cells

#: The cells §5 discusses as ambivalent ratings.
AMBIVALENT_CELLS: tuple[tuple[Vendor, Model, Language], ...] = (
    (Vendor.NVIDIA, Model.OPENMP, Language.CPP),
    (Vendor.NVIDIA, Model.PYTHON, Language.PYTHON),
    (Vendor.AMD, Model.STANDARD, Language.CPP),
    (Vendor.INTEL, Model.CUDA, Language.CPP),
    (Vendor.INTEL, Model.STANDARD, Language.CPP),
)


@dataclass
class CellComparison:
    """One cell's derived-vs-paper outcome."""

    vendor: Vendor
    model: Model
    language: Language
    expected: PaperCell
    derived_primary: SupportCategory
    derived_secondary: SupportCategory | None

    @property
    def primary_match(self) -> bool:
        return self.derived_primary is self.expected.primary

    @property
    def secondary_match(self) -> bool:
        if self.expected.secondary is None:
            return True
        return self.derived_secondary is self.expected.secondary

    @property
    def match(self) -> bool:
        return self.primary_match and self.secondary_match

    @property
    def is_ambivalent(self) -> bool:
        return (self.vendor, self.model, self.language) in AMBIVALENT_CELLS


@dataclass
class AgreementReport:
    """Full 51-cell agreement summary."""

    comparisons: list[CellComparison] = field(default_factory=list)

    @property
    def n_cells(self) -> int:
        return len(self.comparisons)

    @property
    def n_primary_matches(self) -> int:
        return sum(1 for c in self.comparisons if c.primary_match)

    @property
    def n_full_matches(self) -> int:
        return sum(1 for c in self.comparisons if c.match)

    @property
    def agreement(self) -> float:
        return self.n_primary_matches / self.n_cells if self.n_cells else 0.0

    @property
    def mismatches(self) -> list[CellComparison]:
        return [c for c in self.comparisons if not c.match]

    def ambivalent(self) -> list[CellComparison]:
        return [c for c in self.comparisons if c.is_ambivalent]

    def summary_lines(self) -> list[str]:
        lines = [
            f"cells compared:        {self.n_cells}",
            f"primary matches:       {self.n_primary_matches}/{self.n_cells} "
            f"({self.agreement:.1%})",
            f"primary+dual matches:  {self.n_full_matches}/{self.n_cells}",
            "",
            "ambivalent cells (flagged in the paper's own discussion, §5):",
        ]
        for c in self.ambivalent():
            got = c.derived_primary.label
            if c.derived_secondary:
                got += f" / {c.derived_secondary.label}"
            want = c.expected.primary.label
            if c.expected.secondary:
                want += f" / {c.expected.secondary.label}"
            tick = "ok" if c.match else "MISMATCH"
            lines.append(
                f"  {c.vendor.value:7s} {c.model.value:9s} "
                f"{c.language.value:8s} paper={want:40s} derived={got:40s} {tick}"
            )
        if self.mismatches:
            lines.append("")
            lines.append("mismatching cells:")
            for c in self.mismatches:
                lines.append(
                    f"  {c.vendor.value} · {c.model.value} · {c.language.value}: "
                    f"paper={c.expected.primary.label}, "
                    f"derived={c.derived_primary.label}"
                )
        return lines


def compare(matrix: CompatibilityMatrix) -> AgreementReport:
    """Compare a derived matrix against the reconstructed Figure 1."""
    report = AgreementReport()
    for key in all_cells():
        cell = matrix.cell(*key)
        report.comparisons.append(
            CellComparison(
                vendor=key[0],
                model=key[1],
                language=key[2],
                expected=PAPER_MATRIX[key],
                derived_primary=cell.primary,
                derived_secondary=cell.secondary,
            )
        )
    return report
