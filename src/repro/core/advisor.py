"""The guide: route recommendations for scientific programmers.

The paper's stated purpose is to "give a guide by matching the GPU
platforms with supported programming models" (§1) for programmers who
must navigate "this abundance of choices and limits".  This module
answers those navigation questions programmatically over the matrix:

* which models can my code use on platform X (in language L)?
* which platforms can this (model, language) code target, and how well?
* what are the portable choices across all three vendors?
* what's the migration path for my CUDA code to platform Y?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.descriptions import describe_cell
from repro.core.matrix import CellResult, CompatibilityMatrix
from repro.data.paper_matrix import PAPER_MATRIX
from repro.enums import (
    MODEL_LANGUAGES,
    MODEL_ORDER,
    VENDOR_ORDER,
    Language,
    Model,
    SupportCategory,
    Vendor,
)


@dataclass(frozen=True)
class Recommendation:
    """One recommended (model, vendor) option with its evidence."""

    vendor: Vendor
    model: Model
    language: Language
    category: SupportCategory
    via: str
    description_number: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.model.value} on {self.vendor.value} "
            f"[{self.category.label}] via {self.via}"
        )


class Advisor:
    """Answers portability questions over a matrix.

    Works with either a derived :class:`CompatibilityMatrix` (empirical)
    or, when ``matrix`` is omitted, the reconstructed paper ratings.
    """

    def __init__(self, matrix: CompatibilityMatrix | None = None,
                 minimum: SupportCategory = SupportCategory.NONVENDOR):
        self.matrix = matrix
        self.minimum = minimum

    # -- rating access -----------------------------------------------------------

    def rating(self, vendor: Vendor, model: Model,
               language: Language) -> SupportCategory:
        if self.matrix is not None:
            return self.matrix.cell(vendor, model, language).primary
        return PAPER_MATRIX[(vendor, model, language)].primary

    def _via(self, vendor: Vendor, model: Model, language: Language) -> str:
        if self.matrix is not None:
            cell: CellResult = self.matrix.cell(vendor, model, language)
            best = cell.best_route()
            if best is not None:
                return best.route.via
        return "see description"

    def _recommend(self, vendor: Vendor, model: Model,
                   language: Language) -> Recommendation:
        return Recommendation(
            vendor=vendor,
            model=model,
            language=language,
            category=self.rating(vendor, model, language),
            via=self._via(vendor, model, language),
            description_number=describe_cell(vendor, model, language).number,
        )

    # -- queries ------------------------------------------------------------------

    def models_for_platform(self, vendor: Vendor,
                            language: Language) -> list[Recommendation]:
        """Usable models on one platform in one language, best first."""
        recs = [
            self._recommend(vendor, model, language)
            for model in MODEL_ORDER
            if language in MODEL_LANGUAGES[model]
        ]
        recs = [r for r in recs if r.category.rank >= self.minimum.rank]
        return sorted(recs, key=lambda r: -r.category.rank)

    def platforms_for_model(self, model: Model,
                            language: Language) -> list[Recommendation]:
        """Where code in (model, language) can run, best first."""
        recs = [
            self._recommend(vendor, model, language)
            for vendor in VENDOR_ORDER
        ]
        return sorted(recs, key=lambda r: -r.category.rank)

    def portable_models(self, language: Language,
                        minimum: SupportCategory | None = None) -> list[Model]:
        """Models meeting the bar on *all three* platforms.

        With the default bar this reproduces the paper's conclusion that
        OpenMP is the only natively supported model across all three
        platforms for Fortran, while C++ additionally has SYCL, Kokkos,
        Alpaka, and the native-model translation paths.
        """
        bar = minimum or self.minimum
        out = []
        for model in MODEL_ORDER:
            if language not in MODEL_LANGUAGES[model]:
                continue
            if all(
                self.rating(vendor, model, language).rank >= bar.rank
                for vendor in VENDOR_ORDER
            ):
                out.append(model)
        return out

    def migration_plan(self, source_model: Model, language: Language,
                       target_vendor: Vendor) -> list[str]:
        """Step list for carrying (model, language) code to a platform."""
        rec = self._recommend(target_vendor, source_model, language)
        desc = describe_cell(target_vendor, source_model, language)
        steps = [
            f"goal: run {source_model.value} {language.value} code on "
            f"{target_vendor.value} GPUs",
            f"support level: {rec.category.label} (description {desc.number})",
        ]
        if rec.category is SupportCategory.NONE:
            steps.append("no route exists; port to a supported model:")
            for alt in self.models_for_platform(target_vendor, language)[:3]:
                steps.append(f"  candidate: {alt.model.value} "
                             f"[{alt.category.label}] via {alt.via}")
        else:
            steps.append(f"route: {rec.via}")
            steps.append(f"details: {desc.text}")
        return steps
