"""Standard-conformance validation suites (V&V-style).

The paper grounds several ratings in dedicated validation suites — the
ECP SOLLVE OpenMP V&V suite [8, 51], the OpenACC V&V suite [9, 50] —
and in the per-compiler feature tables of the 2022 ECP Community BoF
[7].  This module reproduces that layer on the simulated ecosystem:

* a **conformance suite** is a list of named, verified test programs,
  each labeled with the standard version that introduced the feature;
* :func:`run_conformance` runs a suite against one (toolchain, device)
  pair and reports per-version conformance ("OpenMP 4.5: full, 5.0:
  2/4, 5.1: none") — the shape of the SOLLVE status tables;
* :func:`compiler_table` sweeps every toolchain that accepts the model
  and renders the BoF-style compiler × version matrix.

The suites deliberately reuse the probe programs (they are the
executable feature definitions); what validation adds is the
version-grouped, per-compiler reporting the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compilers.registry import all_toolchains
from repro.enums import Language, Model
from repro.errors import ReproError
from repro.gpu.device import Device
from repro.gpu.runtime import System


@dataclass(frozen=True)
class ConformanceTest:
    """One V&V test: feature name, introducing version, runner method."""

    name: str
    version: str
    method: str


#: SOLLVE-style OpenMP offloading V&V suite.
OPENMP_VV: tuple[ConformanceTest, ...] = (
    ConformanceTest("target_teams_distribute", "4.5", "probe_target"),
    ConformanceTest("target_reductions", "4.5", "probe_reduction"),
    ConformanceTest("collapse_clauses", "4.5", "probe_collapse"),
    ConformanceTest("simd_construct", "4.5", "probe_simd"),
    ConformanceTest("loop_construct", "5.0", "probe_loop_construct"),
    ConformanceTest("metadirective", "5.0", "probe_metadirective"),
    ConformanceTest("declare_variant", "5.0", "probe_declare_variant"),
    ConformanceTest("unified_shared_memory", "5.0", "probe_usm"),
    ConformanceTest("assume_directive", "5.1", "probe_assume"),
    ConformanceTest("masked_construct", "5.1", "probe_masked"),
)

#: OpenACC V&V suite (Jarmusch et al. cover 3.0 and above).
OPENACC_VV: tuple[ConformanceTest, ...] = (
    ConformanceTest("parallel_construct", "2.6", "probe_parallel"),
    ConformanceTest("kernels_construct", "2.6", "probe_kernels_construct"),
    ConformanceTest("data_regions", "2.6", "probe_data_region"),
    ConformanceTest("reductions", "2.6", "probe_reduction"),
    ConformanceTest("gang_worker_vector", "2.6", "probe_gang_vector"),
    ConformanceTest("async_wait", "2.7", "probe_async_wait"),
    ConformanceTest("serial_construct", "3.0", "probe_serial"),
)

SUITES: dict[Model, tuple[ConformanceTest, ...]] = {
    Model.OPENMP: OPENMP_VV,
    Model.OPENACC: OPENACC_VV,
}


@dataclass
class TestOutcome:
    test: ConformanceTest
    passed: bool
    error: str = ""


@dataclass
class ConformanceReport:
    """Per-version conformance of one toolchain for one model/language."""

    model: Model
    language: Language
    toolchain: str
    device: str
    outcomes: list[TestOutcome] = field(default_factory=list)

    def versions(self) -> list[str]:
        seen: list[str] = []
        for outcome in self.outcomes:
            if outcome.test.version not in seen:
                seen.append(outcome.test.version)
        return seen

    def version_results(self, version: str) -> tuple[int, int]:
        """(passed, total) for tests introduced in ``version``."""
        relevant = [o for o in self.outcomes if o.test.version == version]
        return sum(1 for o in relevant if o.passed), len(relevant)

    def version_verdict(self, version: str) -> str:
        passed, total = self.version_results(version)
        if total == 0:
            return "n/a"
        if passed == total:
            return "full"
        if passed == 0:
            return "none"
        return f"partial ({passed}/{total})"

    def conforms_to(self) -> str | None:
        """Highest version with full conformance (cumulative)."""
        best: str | None = None
        for version in self.versions():
            if self.version_verdict(version) == "full":
                best = version
            else:
                break
        return best

    def summary(self) -> str:
        parts = [f"{v}: {self.version_verdict(v)}" for v in self.versions()]
        return (f"{self.toolchain:12s} {self.model.value}/"
                f"{self.language.value:8s} on {self.device}: "
                + ", ".join(parts))


def _make_runtime(model: Model, language: Language, toolchain: str,
                  device: Device):
    if model is Model.OPENMP:
        from repro.models.openmp import OpenMP

        return OpenMP(device, toolchain, language=language)
    if model is Model.OPENACC:
        from repro.models.openacc import OpenACC

        return OpenACC(device, toolchain, language=language)
    raise KeyError(f"no conformance suite for {model.value}")


def run_conformance(model: Model, language: Language, toolchain: str,
                    device: Device) -> ConformanceReport:
    """Run the model's V&V suite against one toolchain on one device."""
    suite = SUITES[model]
    report = ConformanceReport(
        model=model, language=language, toolchain=toolchain,
        device=device.spec.name,
    )
    for test in suite:
        try:
            runtime = _make_runtime(model, language, toolchain, device)
            getattr(runtime, test.method)()
        except ReproError as exc:
            report.outcomes.append(
                TestOutcome(test, False, f"{type(exc).__name__}: {exc}")
            )
        else:
            report.outcomes.append(TestOutcome(test, True))
    return report


def compiler_table(model: Model, language: Language,
                   system: System | None = None) -> list[ConformanceReport]:
    """The ECP-BoF-style compiler table: every capable toolchain probed.

    A toolchain appears once per vendor platform it can target for this
    (model, language); the result is the familiar "which compiler
    supports which version on which GPU" matrix.
    """
    if system is None:
        system = System.default()
    reports: list[ConformanceReport] = []
    for tc in all_toolchains():
        cap = tc.capability(model, language)
        if cap is None:
            continue
        for device in system:
            if device.isa in cap.targets:
                reports.append(
                    run_conformance(model, language, tc.name, device)
                )
    return reports


def render_compiler_table(reports: list[ConformanceReport]) -> str:
    """Monospace rendering of a compiler table."""
    if not reports:
        return "(no capable toolchains)"
    versions = reports[0].versions()
    header = (f"{'toolchain':14s} {'device':20s} "
              + " ".join(f"{v:>14s}" for v in versions))
    lines = [header, "-" * len(header)]
    for report in reports:
        cells = " ".join(
            f"{report.version_verdict(v):>14s}" for v in versions
        )
        lines.append(f"{report.toolchain:14s} {report.device:20s} {cells}")
    return "\n".join(lines)
