"""The §3 rating rules: measured route coverage → support category.

The paper assesses combinations "by available information"; the
reproduction makes the assessment executable.  A route's category is a
function of four things the registry + probes provide:

1. **coverage** — the fraction of the probe suite that compiles and
   verifies (the "complete implementation" / "some specific features
   are not available" axis);
2. **maturity** — experimental / research / unmaintained routes cap at
   *limited support* regardless of coverage (§4's GPUFORT, chipStar,
   roc-stdpar, ZLUDA, ComputeCpp treatments);
3. **provider class** — device vendor, another GPU vendor, or the
   community/HPE (the vendor vs. non-vendor axis of the categories);
4. **mechanism** — direct implementations vs. mapping/translation/
   binding routes (the *full* vs. *indirect* axis).

Thresholds are explicit (:class:`Thresholds`) so the ablation bench can
measure the sensitivity of Figure 1 to each cut-point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.enums import Maturity, Mechanism, Provider, SupportCategory, Vendor
from repro.core.routes import Route

_DIRECT = (Mechanism.NATIVE, Mechanism.LAYERED)
_VENDORS = (Provider.NVIDIA, Provider.AMD, Provider.INTEL)


@dataclass(frozen=True)
class Thresholds:
    """Coverage cut-points of the classifier.

    Attributes:
        full: Minimum coverage for *full support* (vendor, direct).
        comprehensive: Minimum coverage for *non-vendor good support*
            ("comprehensive" third-party implementations).
        indirect: Minimum coverage for *indirect good support*
            (vendor mapping/translation routes).
        usable: Below this, any route is at most *limited support*.
    """

    full: float = 0.90
    comprehensive: float = 0.85
    indirect: float = 0.70
    usable: float = 0.50


DEFAULT_THRESHOLDS = Thresholds()


def classify_route(route: Route, coverage: float,
                   thresholds: Thresholds = DEFAULT_THRESHOLDS) -> SupportCategory:
    """Category contributed by one route given its measured coverage."""
    if coverage <= 0.0:
        return SupportCategory.NONE
    if not route.maturity.is_dependable:
        return SupportCategory.LIMITED
    if coverage < thresholds.usable:
        return SupportCategory.LIMITED

    is_device_vendor = route.provider.is_device_vendor(route.vendor)
    is_vendor = route.provider in _VENDORS

    if route.mechanism in _DIRECT:
        if is_device_vendor:
            if coverage >= thresholds.full:
                return SupportCategory.FULL
            return SupportCategory.SOME
        if coverage >= thresholds.comprehensive:
            return SupportCategory.NONVENDOR
        return SupportCategory.LIMITED

    # Mapping / translation / bindings routes.
    if is_vendor:
        if coverage >= thresholds.indirect:
            return SupportCategory.INDIRECT
        return SupportCategory.SOME
    if coverage >= thresholds.comprehensive:
        return SupportCategory.NONVENDOR
    return SupportCategory.LIMITED


def provider_class(route: Route) -> str:
    """"vendor" (any GPU vendor) or "community" (incl. HPE)."""
    return "vendor" if route.provider in _VENDORS else "community"
