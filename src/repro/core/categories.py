"""The six support categories of §3, with their defining prose.

The enum itself lives in :mod:`repro.enums` (it is part of the shared
vocabulary); this module carries the paper's definitions and the
helpers the renderers and reports use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.enums import CATEGORY_ORDER, SupportCategory


@dataclass(frozen=True)
class CategoryDetail:
    """One §3 category with its defining text."""

    category: SupportCategory
    definition: str


CATEGORY_DETAILS: dict[SupportCategory, CategoryDetail] = {
    d.category: d
    for d in (
        CategoryDetail(
            SupportCategory.FULL,
            "The programming model for this language is fully supported on "
            "this GPU platform by the vendor: complete implementation, "
            "extensive documentation, regular updates, vendor support in "
            "case of errors.",
        ),
        CategoryDetail(
            SupportCategory.INDIRECT,
            "The combination is indirectly, but comprehensively supported "
            "by the vendor, usually by (semi-)automatically "
            "mapping/translating a foreign model to a native one.",
        ),
        CategoryDetail(
            SupportCategory.SOME,
            "Supported on this GPU device by the vendor, but not (yet) "
            "comprehensively: the model can be used for the majority of "
            "applications, but some specific features are not available.",
        ),
        CategoryDetail(
            SupportCategory.NONVENDOR,
            "Comprehensive support exists, but not by the vendor of the "
            "GPU device: community-driven higher-level models implement "
            "support utilizing vendor-native infrastructure in the "
            "background.",
        ),
        CategoryDetail(
            SupportCategory.LIMITED,
            "Some very limited support: indirect, through extensive effort "
            "by the user, and/or very incomplete.",
        ),
        CategoryDetail(
            SupportCategory.NONE,
            "No direct support for the model/language on the device. "
            "There are certainly ways to still utilize the device, like "
            "creating custom headers and linking to libraries directly, "
            "or utilizing ISO_C_BINDING in Fortran.",
        ),
    )
}


def legend_lines() -> list[str]:
    """The category legend as rendered under Figure 1."""
    return [
        f"  {c.symbol}  {c.label}" for c in CATEGORY_ORDER
    ]


def best(categories) -> SupportCategory:
    """Highest-ranked category of a non-empty iterable."""
    return max(categories, key=lambda c: c.rank)
