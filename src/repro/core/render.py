"""Renderers for the compatibility matrix (Figure 1).

The paper's acknowledgments describe the real pipeline: "source data in
YAML form with conversion to HTML and TeX".  This module reproduces
that: the derived (or reconstructed) matrix renders as a terminal
table, Markdown, HTML, TeX, and the YAML source-data form.

All renderers share one tabular model: vendors as rows, the eight
C++/Fortran model columns plus Python, a symbol per cell (two symbols
for dual-rated cells), and the §3 category legend.
"""

from __future__ import annotations

from typing import Callable

from repro.core.categories import CATEGORY_DETAILS, legend_lines
from repro.core.matrix import CompatibilityMatrix
from repro.data.paper_matrix import PAPER_MATRIX
from repro.enums import (
    MODEL_LANGUAGES,
    MODEL_ORDER,
    VENDOR_ORDER,
    Language,
    Model,
    SupportCategory,
    Vendor,
)

#: (category-primary, category-secondary-or-None) per cell.
CellRating = tuple[SupportCategory, SupportCategory | None]
RatingLookup = Callable[[Vendor, Model, Language], CellRating]


def matrix_lookup(matrix: CompatibilityMatrix) -> RatingLookup:
    """Rating lookup over a derived matrix."""

    def look(vendor: Vendor, model: Model, language: Language) -> CellRating:
        cell = matrix.cell(vendor, model, language)
        return cell.primary, cell.secondary

    return look


def paper_lookup() -> RatingLookup:
    """Rating lookup over the reconstructed published matrix."""

    def look(vendor: Vendor, model: Model, language: Language) -> CellRating:
        cell = PAPER_MATRIX[(vendor, model, language)]
        return cell.primary, cell.secondary

    return look


def _columns() -> list[tuple[Model, Language]]:
    cols: list[tuple[Model, Language]] = []
    for model in MODEL_ORDER:
        for language in MODEL_LANGUAGES[model]:
            cols.append((model, language))
    return cols


def _symbol(rating: CellRating) -> str:
    primary, secondary = rating
    if secondary is not None:
        return f"{primary.symbol}{secondary.symbol}"
    return primary.symbol


# ---------------------------------------------------------------------------
# Terminal / plain text
# ---------------------------------------------------------------------------


def render_text(lookup: RatingLookup, title: str = "Figure 1") -> str:
    """Monospace rendering in the layout of Figure 1."""
    cols = _columns()
    lang_short = {Language.CPP: "C++", Language.FORTRAN: "F", Language.PYTHON: "Py"}
    width = 7

    lines = [title, ""]
    header1 = " " * 8
    prev_model = None
    for model, _lang in cols:
        header1 += (model.value if model is not prev_model else "").ljust(width)
        prev_model = model
    header2 = " " * 8 + "".join(
        lang_short[lang].ljust(width) for _m, lang in cols
    )
    lines += [header1.rstrip(), header2.rstrip()]
    lines.append("-" * (8 + width * len(cols)))
    for vendor in VENDOR_ORDER:
        row = vendor.value.ljust(8)
        for model, lang in cols:
            row += _symbol(lookup(vendor, model, lang)).ljust(width)
        lines.append(row.rstrip())
    lines += ["", "Legend:"] + legend_lines()
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Markdown
# ---------------------------------------------------------------------------


def render_markdown(lookup: RatingLookup, title: str = "Figure 1") -> str:
    cols = _columns()
    lang_short = {Language.CPP: "C++", Language.FORTRAN: "Fortran",
                  Language.PYTHON: "Python"}
    head = "| Vendor | " + " | ".join(
        f"{m.value} {lang_short[l]}" if m is not Model.PYTHON else "Python"
        for m, l in cols
    ) + " |"
    sep = "|" + "---|" * (len(cols) + 1)
    rows = []
    for vendor in VENDOR_ORDER:
        cells = " | ".join(_symbol(lookup(vendor, m, l)) for m, l in cols)
        rows.append(f"| {vendor.value} | {cells} |")
    legend = "\n".join(
        f"- {c.symbol} — {c.label}: {CATEGORY_DETAILS[c].definition}"
        for c in CATEGORY_DETAILS
    )
    return f"## {title}\n\n{head}\n{sep}\n" + "\n".join(rows) + f"\n\n{legend}\n"


# ---------------------------------------------------------------------------
# HTML (the gpu-lang-compat page form)
# ---------------------------------------------------------------------------


def render_html(lookup: RatingLookup, title: str = "Figure 1") -> str:
    cols = _columns()
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{title}</title>",
        "<style>table{border-collapse:collapse}"
        "td,th{border:1px solid #999;padding:4px 8px;text-align:center}"
        "caption{font-weight:bold;padding:6px}</style>",
        "</head><body>",
        f"<table><caption>{title}</caption>",
    ]
    header = "<tr><th></th>" + "".join(
        f"<th>{m.value}<br><small>{l.value}</small></th>" for m, l in cols
    ) + "</tr>"
    parts.append(header)
    for vendor in VENDOR_ORDER:
        cells = "".join(
            f"<td title='{lookup(vendor, m, l)[0].label}'>"
            f"{_symbol(lookup(vendor, m, l))}</td>"
            for m, l in cols
        )
        parts.append(f"<tr><th>{vendor.value}</th>{cells}</tr>")
    parts.append("</table><ul>")
    for cat, detail in CATEGORY_DETAILS.items():
        parts.append(f"<li>{cat.symbol} <b>{cat.label}</b>: {detail.definition}</li>")
    parts.append("</ul></body></html>")
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# TeX
# ---------------------------------------------------------------------------


def render_tex(lookup: RatingLookup, title: str = "Figure 1") -> str:
    cols = _columns()
    colspec = "l" + "c" * len(cols)
    lines = [
        "% generated by repro.core.render",
        "\\begin{table}",
        f"  \\caption{{{title}}}",
        f"  \\begin{{tabular}}{{{colspec}}}",
        "    \\toprule",
    ]
    head = "    Vendor & " + " & ".join(
        f"\\rotatebox{{90}}{{{m.value} {l.value}}}" for m, l in cols
    ) + " \\\\"
    lines += [head, "    \\midrule"]
    macro = {
        SupportCategory.FULL: "\\fullsupport",
        SupportCategory.INDIRECT: "\\indirectsupport",
        SupportCategory.SOME: "\\somesupport",
        SupportCategory.NONVENDOR: "\\nonvendorsupport",
        SupportCategory.LIMITED: "\\limitedsupport",
        SupportCategory.NONE: "\\nosupport",
    }
    for vendor in VENDOR_ORDER:
        cells = []
        for m, l in cols:
            primary, secondary = lookup(vendor, m, l)
            tex = macro[primary]
            if secondary is not None:
                tex += macro[secondary]
            cells.append(tex)
        lines.append(f"    {vendor.value} & " + " & ".join(cells) + " \\\\")
    lines += ["    \\bottomrule", "  \\end{tabular}", "\\end{table}"]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# YAML source data (the author's repository format)
# ---------------------------------------------------------------------------


def render_yaml(lookup: RatingLookup) -> str:
    """Emit the matrix as YAML source data (no external YAML dependency)."""
    lines = ["# GPU vendor / programming model compatibility data",
             "# categories: " + ", ".join(c.label for c in CATEGORY_DETAILS)]
    for vendor in VENDOR_ORDER:
        lines.append(f"{vendor.value}:")
        for model, lang in _columns():
            primary, secondary = lookup(vendor, model, lang)
            key = f"{model.value}-{lang.value}".replace("+", "p").lower()
            entry = f"  {key}: {primary.label}"
            if secondary is not None:
                entry += f" / {secondary.label}"
            lines.append(entry)
    return "\n".join(lines) + "\n"


RENDERERS: dict[str, Callable[[RatingLookup], str]] = {
    "text": render_text,
    "markdown": render_markdown,
    "html": render_html,
    "tex": render_tex,
    "yaml": lambda look: render_yaml(look),
}
