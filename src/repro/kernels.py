"""Shared library of device kernels, written once in the kernel DSL.

Every programming-model runtime lowers to the same abstract IR, so the
actual device code for the common operations (BabelStream kernels,
reductions, histograms, scans, sorts, stencils) lives here and each
model compiles it through *its own* toolchain for *its own* target —
exactly how the same ``saxpy`` loop body ends up in CUDA, HIP, SYCL,
and OpenMP programs in the real world.

Unless noted otherwise, reduction-style kernels assume a block size of
:data:`BLOCK` threads (their shared-memory tiles are sized for it).
"""

from __future__ import annotations

from repro.frontends import f32, f64, i32, i64, kernel, u64  # noqa: F401

#: Default block size; reduction kernels assume exactly this.
BLOCK = 256
_HALF = BLOCK // 2

# ---------------------------------------------------------------------------
# BabelStream kernels (Deakin et al.): Copy, Mul, Add, Triad, Dot
# ---------------------------------------------------------------------------


@kernel
def stream_copy(n: i64, a: f64[:], c: f64[:]):
    """``c[i] = a[i]`` — STREAM Copy."""
    i = gid(0)
    if i < n:
        c[i] = a[i]


@kernel
def stream_mul(n: i64, scalar: f64, b: f64[:], c: f64[:]):
    """``b[i] = scalar * c[i]`` — STREAM Mul."""
    i = gid(0)
    if i < n:
        b[i] = scalar * c[i]


@kernel
def stream_add(n: i64, a: f64[:], b: f64[:], c: f64[:]):
    """``c[i] = a[i] + b[i]`` — STREAM Add."""
    i = gid(0)
    if i < n:
        c[i] = a[i] + b[i]


@kernel
def stream_triad(n: i64, scalar: f64, a: f64[:], b: f64[:], c: f64[:]):
    """``a[i] = b[i] + scalar * c[i]`` — STREAM Triad."""
    i = gid(0)
    if i < n:
        a[i] = b[i] + scalar * c[i]


@kernel
def stream_dot(n: i64, a: f64[:], b: f64[:], out: f64[:]):
    """``out[0] += sum_i a[i]*b[i]`` — grid-stride dot with block tree."""
    tile = shared(f64, 256)
    i = gid(0)
    t = lid(0)
    stride = gsize(0)
    acc = 0.0
    while i < n:
        acc += a[i] * b[i]
        i += stride
    tile[t] = acc
    barrier()
    s = 128
    while s > 0:
        if t < s:
            tile[t] = tile[t] + tile[t + s]
        barrier()
        s = s // 2
    if t == 0:
        atomic_add(out, 0, tile[0])


# ---------------------------------------------------------------------------
# BLAS-style kernels
# ---------------------------------------------------------------------------


@kernel
def axpy(n: i64, alpha: f64, x: f64[:], y: f64[:]):
    """``y[i] = alpha*x[i] + y[i]`` (cublasDaxpy-class)."""
    i = gid(0)
    if i < n:
        y[i] = alpha * x[i] + y[i]


@kernel
def gemv(m: i64, n: i64, alpha: f64, a: f64[:], x: f64[:], beta: f64, y: f64[:]):
    """``y = alpha*A@x + beta*y`` with row-major A, one row per thread."""
    row = gid(0)
    if row < m:
        acc = 0.0
        for j in range(n):
            acc += a[row * n + j] * x[j]
        y[row] = alpha * acc + beta * y[row]


@kernel
def fill(n: i64, value: f64, x: f64[:]):
    """``x[i] = value``."""
    i = gid(0)
    if i < n:
        x[i] = value


@kernel
def scale_inplace(n: i64, alpha: f64, x: f64[:]):
    """``x[i] *= alpha``."""
    i = gid(0)
    if i < n:
        x[i] = alpha * x[i]


# ---------------------------------------------------------------------------
# Elementwise maps (the Python ufunc layer builds on these)
# ---------------------------------------------------------------------------


@kernel
def ew_add(n: i64, a: f64[:], b: f64[:], out: f64[:]):
    i = gid(0)
    if i < n:
        out[i] = a[i] + b[i]


@kernel
def ew_sub(n: i64, a: f64[:], b: f64[:], out: f64[:]):
    i = gid(0)
    if i < n:
        out[i] = a[i] - b[i]


@kernel
def ew_mul(n: i64, a: f64[:], b: f64[:], out: f64[:]):
    i = gid(0)
    if i < n:
        out[i] = a[i] * b[i]


@kernel
def ew_div(n: i64, a: f64[:], b: f64[:], out: f64[:]):
    i = gid(0)
    if i < n:
        out[i] = a[i] / b[i]


@kernel
def ew_scalar_add(n: i64, s: f64, a: f64[:], out: f64[:]):
    i = gid(0)
    if i < n:
        out[i] = a[i] + s


@kernel
def ew_scalar_mul(n: i64, s: f64, a: f64[:], out: f64[:]):
    i = gid(0)
    if i < n:
        out[i] = s * a[i]


@kernel
def ew_sqrt(n: i64, a: f64[:], out: f64[:]):
    i = gid(0)
    if i < n:
        out[i] = sqrt(a[i])


@kernel
def ew_exp(n: i64, a: f64[:], out: f64[:]):
    i = gid(0)
    if i < n:
        out[i] = exp(a[i])


@kernel
def ew_maximum(n: i64, a: f64[:], b: f64[:], out: f64[:]):
    i = gid(0)
    if i < n:
        out[i] = max(a[i], b[i])


# ---------------------------------------------------------------------------
# Reductions beyond dot
# ---------------------------------------------------------------------------


@kernel
def reduce_sum(n: i64, x: f64[:], out: f64[:]):
    """``out[0] += sum_i x[i]`` — grid-stride + block tree + atomic."""
    tile = shared(f64, 256)
    i = gid(0)
    t = lid(0)
    stride = gsize(0)
    acc = 0.0
    while i < n:
        acc += x[i]
        i += stride
    tile[t] = acc
    barrier()
    s = 128
    while s > 0:
        if t < s:
            tile[t] = tile[t] + tile[t + s]
        barrier()
        s = s // 2
    if t == 0:
        atomic_add(out, 0, tile[0])


@kernel
def reduce_max(n: i64, x: f64[:], out: f64[:]):
    """``out[0] = max(out[0], max_i x[i])`` (initialize out beforehand)."""
    tile = shared(f64, 256)
    i = gid(0)
    t = lid(0)
    stride = gsize(0)
    acc = -1.0e308
    while i < n:
        acc = max(acc, x[i])
        i += stride
    tile[t] = acc
    barrier()
    s = 128
    while s > 0:
        if t < s:
            tile[t] = max(tile[t], tile[t + s])
        barrier()
        s = s // 2
    if t == 0:
        atomic_max(out, 0, tile[0])


@kernel
def warp_reduce_sum(n: i64, x: f64[:], out: f64[:]):
    """Sum via cross-lane shuffles: one atomic per warp, no shared memory."""
    i = gid(0)
    stride = gsize(0)
    acc = 0.0
    while i < n:
        acc += x[i]
        i += stride
    w = warpsize()
    offset = w // 2
    while offset > 0:
        acc += shfl_down(acc, offset)
        offset = offset // 2
    if lane() == 0:
        atomic_add(out, 0, acc)


# ---------------------------------------------------------------------------
# Histogram and sort/scan building blocks
# ---------------------------------------------------------------------------


@kernel
def histogram(n: i64, nbins: i64, data: i32[:], bins: i32[:]):
    """``bins[data[i] % nbins] += 1`` with global atomics."""
    i = gid(0)
    if i < n:
        b = i64(data[i]) % nbins
        atomic_add(bins, b, i32(1))


@kernel
def bitonic_step(n: i64, j: i64, k: i64, data: f64[:]):
    """One compare-exchange step of a bitonic sort network."""
    i = gid(0)
    if i < n:
        partner = i ^ j
        if partner > i:
            up = (i & k) == 0
            a = data[i]
            b = data[partner]
            if up and a > b:
                data[i] = b
                data[partner] = a
            if (not up) and a < b:
                data[i] = b
                data[partner] = a


@kernel
def scan_step(n: i64, offset: i64, src: f64[:], dst: f64[:]):
    """One Hillis-Steele pass: ``dst[i] = src[i] + src[i-offset]``."""
    i = gid(0)
    if i < n:
        if i >= offset:
            dst[i] = src[i] + src[i - offset]
        else:
            dst[i] = src[i]


# ---------------------------------------------------------------------------
# Structured-grid kernels
# ---------------------------------------------------------------------------


@kernel
def flops_burner(n: i64, iters: i64, x: f64[:]):
    """Arithmetic-dominated kernel (5 flops x ``iters`` per element).

    Used by the perf-model ablation: with enough iterations the roofline
    classifies it compute/issue-bound, which a bandwidth-only model
    cannot see.
    """
    i = gid(0)
    if i < n:
        v = x[i]
        for _k in range(iters):
            v = v * 1.0000001 + 0.5
            v = (v - 0.5) * 0.9999999
        x[i] = v


@kernel
def jacobi2d(nx: i64, ny: i64, inp: f64[:], out: f64[:]):
    """5-point Jacobi sweep on an ``nx``×``ny`` grid (2-D launch)."""
    x = gid(0)
    y = gid(1)
    if x > 0 and x < nx - 1 and y > 0 and y < ny - 1:
        c = y * nx + x
        out[c] = 0.25 * (inp[c - 1] + inp[c + 1] + inp[c - nx] + inp[c + nx])


@kernel
def nbody_forces(n: i64, softening: f64, pos: f64[:], acc_out: f64[:]):
    """Direct-sum 2-D N-body accelerations (positions packed x,y)."""
    i = gid(0)
    if i < n:
        xi = pos[2 * i]
        yi = pos[2 * i + 1]
        ax = 0.0
        ay = 0.0
        for j in range(n):
            dx = pos[2 * j] - xi
            dy = pos[2 * j + 1] - yi
            inv = 1.0 / sqrt(dx * dx + dy * dy + softening)
            inv3 = inv * inv * inv
            ax += dx * inv3
            ay += dy * inv3
        acc_out[2 * i] = ax
        acc_out[2 * i + 1] = ay


#: All kernels by name, for registries and tests.
KERNEL_LIBRARY = {
    k.name: k
    for k in (
        stream_copy, stream_mul, stream_add, stream_triad, stream_dot,
        axpy, gemv, fill, scale_inplace,
        ew_add, ew_sub, ew_mul, ew_div, ew_scalar_add, ew_scalar_mul,
        ew_sqrt, ew_exp, ew_maximum, flops_burner,
        reduce_sum, reduce_max, warp_reduce_sum,
        histogram, bitonic_step, scan_step,
        jacobi2d, nbody_forces,
    )
}
