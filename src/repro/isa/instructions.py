"""The abstract kernel IR: operands and instructions.

The IR is a register machine with *structured* control flow: ``If`` and
``While`` own nested instruction lists instead of branches to labels.
Structured control flow is what makes the vectorized SIMT interpreter
(:mod:`repro.isa.interpreter`) possible: divergence is handled with lane
masks pushed/popped around the nested bodies, the same way real GPUs
handle reconvergence with hardware stacks.

Registers are virtual and mutable (non-SSA); frontends simply reassign.
All memory operations are byte-addressed into one of two spaces
(:class:`MemSpace`), with the element type taken from the destination /
source register, mirroring PTX's ``ld.global.f64``-style typed accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.isa import dtypes
from repro.isa.dtypes import DType


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Register:
    """A virtual register with a fixed scalar type."""

    name: str
    dtype: DType

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"%{self.name}:{self.dtype.name}"


@dataclass(frozen=True)
class Imm:
    """An immediate (compile-time constant) operand."""

    value: Union[int, float, bool]
    dtype: DType

    def __post_init__(self) -> None:
        # Normalize the Python value through the dtype so that e.g.
        # Imm(3, F64) and Imm(3.0, F64) compare equal and integer overflow
        # wraps exactly like it will at execution time.  (NumPy 2 raises
        # on out-of-range Python ints, so wrap explicitly.)
        if self.dtype.is_integer:
            bits = self.dtype.itemsize * 8
            wrapped = int(self.value) & ((1 << bits) - 1)
            if self.dtype.kind == "int" and wrapped >= 1 << (bits - 1):
                wrapped -= 1 << bits
            object.__setattr__(self, "value", wrapped)
        else:
            coerced = self.dtype.np_dtype.type(self.value)
            object.__setattr__(self, "value", coerced.item())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value}:{self.dtype.name}"


Operand = Union[Register, Imm]


@dataclass(frozen=True)
class Param:
    """A kernel parameter.

    Pointer parameters hold a *byte address* into the device's global
    memory at execution time; ``dtype`` is then the pointee element type.
    """

    name: str
    dtype: DType
    is_pointer: bool = False

    @property
    def reg(self) -> Register:
        """The register through which the kernel body reads this param."""
        return Register(self.name, dtypes.U64 if self.is_pointer else self.dtype)


# ---------------------------------------------------------------------------
# Memory spaces and special registers
# ---------------------------------------------------------------------------


class MemSpace:
    """Address spaces of the simulated devices."""

    GLOBAL = "global"
    SHARED = "shared"

    ALL = (GLOBAL, SHARED)


class SpecialReg:
    """Hardware-provided values readable via :class:`SpecialRead`."""

    TID_X, TID_Y, TID_Z = "tid.x", "tid.y", "tid.z"
    CTAID_X, CTAID_Y, CTAID_Z = "ctaid.x", "ctaid.y", "ctaid.z"
    NTID_X, NTID_Y, NTID_Z = "ntid.x", "ntid.y", "ntid.z"
    NCTAID_X, NCTAID_Y, NCTAID_Z = "nctaid.x", "nctaid.y", "nctaid.z"
    LANEID = "laneid"
    WARPSIZE = "warpsize"

    ALL = (
        TID_X, TID_Y, TID_Z,
        CTAID_X, CTAID_Y, CTAID_Z,
        NTID_X, NTID_Y, NTID_Z,
        NCTAID_X, NCTAID_Y, NCTAID_Z,
        LANEID, WARPSIZE,
    )


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------


class Instruction:
    """Marker base class; concrete instructions are dataclasses below."""

    __slots__ = ()


UNARY_OPS = (
    "neg", "abs", "sqrt", "rsqrt", "exp", "log", "sin", "cos", "tanh",
    "floor", "ceil", "round", "not", "bitnot",
)

BINARY_OPS = (
    "add", "sub", "mul", "div", "rem", "min", "max", "pow",
    "and", "or", "xor", "shl", "shr",
)

CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")

ATOMIC_OPS = ("add", "min", "max", "exch", "cas")

SHUFFLE_MODES = ("idx", "up", "down", "xor")


@dataclass
class Mov(Instruction):
    """``dst = src`` (types must match exactly; use :class:`Cvt` to widen)."""

    dst: Register
    src: Operand


@dataclass
class UnaryOp(Instruction):
    """``dst = op(src)``."""

    op: str
    dst: Register
    src: Operand


@dataclass
class BinOp(Instruction):
    """``dst = a op b``; operand and result types must all match."""

    op: str
    dst: Register
    a: Operand
    b: Operand


@dataclass
class Cmp(Instruction):
    """``dst = a cmp b`` with a predicate destination."""

    op: str
    dst: Register
    a: Operand
    b: Operand


@dataclass
class Select(Instruction):
    """``dst = pred ? a : b`` (branchless select)."""

    dst: Register
    pred: Operand
    a: Operand
    b: Operand


@dataclass
class Cvt(Instruction):
    """``dst = (dst.dtype) src`` — explicit scalar conversion."""

    dst: Register
    src: Operand


@dataclass
class Load(Instruction):
    """``dst = *(dst.dtype*)(space + addr)`` with ``addr`` in bytes."""

    dst: Register
    space: str
    addr: Operand


@dataclass
class Store(Instruction):
    """``*(src.dtype*)(space + addr) = src`` with ``addr`` in bytes."""

    space: str
    addr: Operand
    src: Operand


@dataclass
class SpecialRead(Instruction):
    """Read a hardware special register (thread/block indices etc.)."""

    dst: Register
    which: str


@dataclass
class Barrier(Instruction):
    """Block-level barrier (``__syncthreads`` / ``barrier(CLK_...)``).

    The interpreter raises :class:`repro.errors.DivergentBarrierError`
    when executed under a partial lane mask, mirroring the undefined
    behaviour (usually a hang) on real hardware.
    """


@dataclass
class AtomicOp(Instruction):
    """Atomic read-modify-write on memory; ``dst`` receives the old value.

    ``cas`` additionally uses ``compare``; all other ops ignore it.
    """

    op: str
    dst: Register | None
    space: str
    addr: Operand
    src: Operand
    compare: Operand | None = None


@dataclass
class Shuffle(Instruction):
    """Cross-lane data exchange within a warp/wavefront/sub-group."""

    mode: str
    dst: Register
    src: Operand
    lane: Operand  # target lane (idx), delta (up/down), or mask (xor)


@dataclass
class SharedAlloc(Instruction):
    """Statically allocate ``count`` elements of ``dtype`` in shared memory.

    ``dst`` receives the byte offset of the allocation within the block's
    shared-memory segment.  Must appear at the top level of a kernel body
    (the verifier enforces this), as on real devices where shared memory
    is statically sized per launch.
    """

    dst: Register
    dtype: DType
    count: int


@dataclass
class Exit(Instruction):
    """Retire the executing thread (the ``return`` statement in kernels)."""


@dataclass
class If(Instruction):
    """Structured conditional over nested bodies."""

    cond: Operand
    then_body: list[Instruction] = field(default_factory=list)
    else_body: list[Instruction] = field(default_factory=list)


@dataclass
class While(Instruction):
    """Structured loop: re-evaluate ``cond_body`` then test ``cond``.

    ``cond_body`` computes the loop condition into the predicate register
    ``cond`` before every iteration; ``body`` runs for lanes where the
    predicate holds.  ``For`` loops are desugared to this form by the
    kernel DSL.
    """

    cond_body: list[Instruction]
    cond: Register
    body: list[Instruction] = field(default_factory=list)


def walk(body: list[Instruction]):
    """Yield every instruction in ``body``, recursing into nested blocks."""
    for instr in body:
        yield instr
        if isinstance(instr, If):
            yield from walk(instr.then_body)
            yield from walk(instr.else_body)
        elif isinstance(instr, While):
            yield from walk(instr.cond_body)
            yield from walk(instr.body)
