"""Vectorized SIMT interpreter for target modules.

Execution model
---------------
One NumPy *lane* per GPU thread.  A launch is split into batches of
``blocks_per_batch = max(1, chunk_lanes // block_threads)`` whole thread
blocks — for *every* kernel, including those that use shared memory or
barriers.  Elementwise kernels run as a handful of whole-array NumPy
operations, and barrier/reduction kernels batch just as wide because
block-private state is kept per batched block:

* **shared memory** is a ``(blocks_in_batch, row_stride)`` arena — one
  zero-initialized row per block — and shared ``Load``/``Store``/
  ``AtomicOp`` addresses are offset into the owning block's row;
* **barriers** are checked per block: within each block that has any
  lane at the barrier, the arriving mask must equal that block's live
  (non-exited) mask, so ``DivergentBarrierError`` semantics are exactly
  those of the old one-block-per-batch path;
* **warps** never span blocks (``warp_base``/``warp_len`` are computed
  per block), so cross-lane shuffles are unaffected by batching.

Batch geometry arrays (tid/ctaid/warp tables) are cached per shape and
the shared arena is reused across batches, so repeated launches of the
same grid pay no per-batch setup — the "vectorize the hot loop" rule of
the hpc-parallel guides applied to an interpreter.

Divergence is handled with boolean lane masks, exactly like the
reconvergence stacks in real SIMT hardware:

* ``If`` executes both arms under complementary sub-masks;
* ``While`` keeps a *live* mask that lanes leave as their condition
  fails;
* ``Exit`` (the kernel ``return``) retires lanes for the rest of the
  batch via a shared ``exited`` mask;
* ``Barrier`` under a partial mask raises
  :class:`~repro.errors.DivergentBarrierError` — the simulator's version
  of the hang that divergent ``__syncthreads()`` causes on hardware.

The interpreter also meters work (flops, bytes, atomics) per launch;
:mod:`repro.gpu.perfmodel` turns those counters into simulated time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import (
    DivergentBarrierError,
    IRError,
    LaunchError,
    MemoryFaultError,
)
from repro.isa import dtypes
from repro.isa.instructions import (
    AtomicOp,
    Barrier,
    BinOp,
    Cmp,
    Cvt,
    Exit,
    If,
    Imm,
    Load,
    MemSpace,
    Mov,
    Operand,
    Register,
    Select,
    SharedAlloc,
    Shuffle,
    SpecialRead,
    Store,
    UnaryOp,
    While,
)
from repro.isa.module import KernelIR

#: Signature of the bounds-check hook supplied by the device memory
#: system: ``validator(byte_addrs, itemsize, write)`` raises
#: :class:`MemoryFaultError` for illegal accesses.
AccessValidator = Callable[[np.ndarray, int, bool], None]

_MAX_LOOP_TRIPS = 10_000_000  # runaway-loop guard for buggy frontends

#: Shared-arena rows are padded to this many bytes so every element size
#: divides the row stride (block-row offsets stay exact element counts).
_SHARED_ROW_ALIGN = 16
#: Upper bound on the batched shared arena; kernels with large per-block
#: tiles get their ``blocks_per_batch`` capped instead of a huge arena.
_SHARED_ARENA_BYTES = 32 * 1024 * 1024
#: Entries kept in the per-executor batch-geometry cache (FIFO evicted).
_GEOM_CACHE_ENTRIES = 16


@dataclass
class LaunchStats:
    """Work metered during one kernel launch (inputs to the perf model)."""

    threads: int = 0
    instructions: int = 0
    flops: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    atomic_ops: int = 0
    barriers: int = 0
    batches: int = 0

    @property
    def bytes_moved(self) -> int:
        return self.bytes_loaded + self.bytes_stored

    def merge(self, other: "LaunchStats") -> None:
        self.threads += other.threads
        self.instructions += other.instructions
        self.flops += other.flops
        self.bytes_loaded += other.bytes_loaded
        self.bytes_stored += other.bytes_stored
        self.atomic_ops += other.atomic_ops
        self.barriers += other.barriers
        self.batches += other.batches


@dataclass
class TraceTotals:
    """Process-wide trace-compiler activity (see ``repro.isa.tracing``).

    ``hits``/``misses``/``bailouts`` count trace-cache outcomes per
    launch; ``reasons`` histograms the bailout taxonomy; the
    ``traced_*`` counters record how much execution actually ran fused.
    """

    hits: int = 0
    misses: int = 0
    bailouts: int = 0
    traced_launches: int = 0
    traced_batches: int = 0
    reasons: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "TraceTotals") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.bailouts += other.bailouts
        self.traced_launches += other.traced_launches
        self.traced_batches += other.traced_batches
        for reason, count in other.reasons.items():
            self.reasons[reason] = self.reasons.get(reason, 0) + count


@dataclass
class InterpreterTotals:
    """Process-wide interpreter activity (all executors, all devices).

    Feeds the CLI's ``--stats`` line; cheap to maintain (one merge per
    launch) and independent of how callers construct their systems.
    """

    launches: int = 0
    stats: LaunchStats = field(default_factory=LaunchStats)
    trace: TraceTotals = field(default_factory=TraceTotals)


_TOTALS = InterpreterTotals()

#: Guards the process-wide totals; the service scheduler launches
#: kernels from N worker threads and `threads += other.threads`-style
#: merges are not atomic in CPython.
_TOTALS_LOCK = threading.Lock()


def interpreter_totals() -> InterpreterTotals:
    """The process-wide launch/batch totals (read-only use intended)."""
    return _TOTALS


def snapshot_interpreter_totals() -> InterpreterTotals:
    """Consistent point-in-time copy, safe under concurrent launches."""
    with _TOTALS_LOCK:
        copy = InterpreterTotals(launches=_TOTALS.launches)
        copy.stats.merge(_TOTALS.stats)
        copy.trace.merge(_TOTALS.trace)
        return copy


def reset_interpreter_totals() -> None:
    """Zero the process-wide totals (test isolation)."""
    with _TOTALS_LOCK:
        _TOTALS.launches = 0
        _TOTALS.stats = LaunchStats()
        _TOTALS.trace = TraceTotals()


class _LazyCtaid:
    """Per-component lazy ``(ctaid.x, ctaid.y, ctaid.z)`` tuple.

    Unlike the shape-keyed geometry, ctaid depends on the batch's
    ``first_block``, so it cannot be shared between batches; building it
    lazily per component means kernels that never read a component (or,
    on the traced fast path, never read ctaid at all) skip the cost.
    """

    __slots__ = ("_parts", "_first_block", "_block_row", "_grid")

    def __init__(self, first_block: int, block_row: np.ndarray,
                 grid: tuple[int, int, int]):
        self._parts: list[np.ndarray | None] = [None, None, None]
        self._first_block = first_block
        self._block_row = block_row
        self._grid = grid

    def __getitem__(self, i: int) -> np.ndarray:
        part = self._parts[i]
        if part is None:
            gx, gy, _gz = self._grid
            blk = self._first_block + self._block_row
            if i == 0:
                part = (blk % gx).astype(np.uint32)
            elif i == 1:
                part = ((blk // gx) % gy).astype(np.uint32)
            else:
                part = (blk // (gx * gy)).astype(np.uint32)
            part.flags.writeable = False
            self._parts[i] = part
        return part


@dataclass
class _Batch:
    """Lane geometry of one interpreter batch (``n_blocks`` whole blocks).

    The arrays are cached and shared between batches of the same shape,
    so they are frozen read-only; consumers must copy before mutating.
    """

    lanes: int
    n_blocks: int  # blocks in this batch
    block_threads: int  # threads per block
    first_block: int  # launch-linear id of the batch's first block
    tid: tuple[np.ndarray, np.ndarray, np.ndarray]
    ctaid: _LazyCtaid
    block_linear: np.ndarray  # per-lane linear index within its block
    block_row: np.ndarray  # per-lane index of its block within the batch
    warp_base: np.ndarray  # per-lane: batch index of lane 0 of its warp
    warp_len: np.ndarray  # per-lane: populated width of its warp


def _c_int_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Integer division truncating toward zero (C semantics, not floor)."""
    b_safe = np.where(b == 0, 1, b)
    q = a // b_safe
    r = a - q * b_safe
    fix = (r != 0) & ((a < 0) != (b_safe < 0))
    q = q + fix.astype(q.dtype)
    return np.where(b == 0, 0, q)


def _c_int_rem(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Integer remainder with the sign of the dividend (C semantics)."""
    return a - _c_int_div(a, b) * np.where(b == 0, 1, b)


class KernelExecutor:
    """Executes one kernel on one simulated device's memory.

    Args:
        kernel: Verified kernel IR (typically from a ``TargetModule``).
        warp_size: Execution width baked into the target binary.
        global_memory: The device's global memory as a flat ``uint8``
            array (modified in place by stores/atomics).
        validator: Bounds/liveness hook from the device allocator; may be
            ``None`` for raw (allocator-less) execution in unit tests.
        shared_limit: Per-block shared memory capacity in bytes.
        max_block_threads: Device limit on threads per block.
        chunk_lanes: Upper bound on lanes per batch; every kernel —
            including barrier/shared-memory ones — batches
            ``max(1, chunk_lanes // block_threads)`` blocks at a time.
        max_blocks_per_batch: Optional cap on blocks per batch.  ``1``
            reproduces the historical block-isolated execution exactly;
            the differential tests and benchmarks sweep this knob.
        trace_mode: ``True`` fuses each batch through the trace compiler
            (``repro.isa.tracing``) when the kernel traces cleanly,
            ``False`` forces the batched dispatch loop, ``None`` (the
            default) defers to the process default
            (``tracing.default_trace_mode()``).  Traced execution is
            bit-identical to the interpreted path — results, faults,
            and counters — or the kernel bails out and falls back.
    """

    def __init__(
        self,
        kernel: KernelIR,
        warp_size: int,
        global_memory: np.ndarray,
        validator: AccessValidator | None = None,
        shared_limit: int = 64 * 1024,
        max_block_threads: int = 1024,
        chunk_lanes: int = 1 << 18,
        max_blocks_per_batch: int | None = None,
        trace_mode: bool | None = None,
    ):
        if global_memory.dtype != np.uint8 or global_memory.ndim != 1:
            raise LaunchError("global memory must be a flat uint8 array")
        self.kernel = kernel
        self.warp_size = int(warp_size)
        self.gmem = global_memory
        self.validator = validator
        self.shared_limit = shared_limit
        self.max_block_threads = max_block_threads
        self.chunk_lanes = chunk_lanes
        self.max_blocks_per_batch = max_blocks_per_batch
        self.trace_mode = trace_mode
        # Typed views of global memory, built lazily per element type.
        self._gviews: dict[str, np.ndarray] = {}
        self._uses_shared = kernel.uses_shared()
        # Per-block logical shared size (bounds checks) and the padded
        # row stride that gives each batched block its own arena row.
        self._shared_bytes = max(kernel.shared_bytes, 8)
        self._shared_stride = (
            -(-self._shared_bytes // _SHARED_ROW_ALIGN) * _SHARED_ROW_ALIGN
        )
        self._shared_buf: np.ndarray | None = None
        # Batch-geometry caches: full batches keyed by (first_block,
        # n_blocks, grid, block); the shape-only part (everything except
        # ctaid) keyed by (n_blocks, block) so only ctaid is recomputed
        # when a launch walks the grid.
        self._batch_cache: dict[tuple, _Batch] = {}
        self._shape_cache: dict[tuple, tuple] = {}
        self.geom_cache_hits = 0
        self.geom_cache_misses = 0

    # -- public API -----------------------------------------------------------

    def launch(
        self,
        grid: Sequence[int],
        block: Sequence[int],
        args: Sequence[object],
    ) -> LaunchStats:
        """Run the kernel over ``grid`` × ``block`` threads.

        ``args`` must match the kernel parameters positionally: Python
        numbers for scalars, integer byte addresses for pointers.
        """
        grid = tuple(int(g) for g in grid) + (1,) * (3 - len(grid))
        block = tuple(int(b) for b in block) + (1,) * (3 - len(block))
        if any(g <= 0 for g in grid) or any(b <= 0 for b in block):
            raise LaunchError(f"non-positive launch configuration {grid}x{block}")
        block_threads = block[0] * block[1] * block[2]
        if block_threads > self.max_block_threads:
            raise LaunchError(
                f"block of {block_threads} threads exceeds device limit "
                f"{self.max_block_threads}"
            )
        if self.kernel.shared_bytes > self.shared_limit:
            raise LaunchError(
                f"kernel needs {self.kernel.shared_bytes} B shared memory, "
                f"device provides {self.shared_limit} B"
            )
        if len(args) != len(self.kernel.params):
            raise LaunchError(
                f"kernel '{self.kernel.name}' takes {len(self.kernel.params)} "
                f"arguments, got {len(args)}"
            )

        n_blocks = grid[0] * grid[1] * grid[2]
        total = n_blocks * block_threads
        stats = LaunchStats(threads=total)

        blocks_per_batch = max(1, self.chunk_lanes // block_threads)
        if self._uses_shared:
            # Keep the batched shared arena bounded: kernels with big
            # per-block tiles trade batch width for arena size.
            blocks_per_batch = min(
                blocks_per_batch,
                max(1, _SHARED_ARENA_BYTES // self._shared_stride),
            )
        if self.max_blocks_per_batch is not None:
            blocks_per_batch = min(
                blocks_per_batch, max(1, int(self.max_blocks_per_batch))
            )

        dims = {
            "ntid.x": block[0], "ntid.y": block[1], "ntid.z": block[2],
            "nctaid.x": grid[0], "nctaid.y": grid[1], "nctaid.z": grid[2],
        }
        traced = None
        mode = self.trace_mode
        if mode is None or mode:
            # Import lazily so trace_mode=False never touches (or pays
            # for) the trace layer — the PR 2 path byte-for-byte.
            from repro.isa import tracing

            if mode is None:
                mode = tracing.default_trace_mode()
            if mode:
                traced = tracing.lookup(self, grid, block, blocks_per_batch)
        with np.errstate(all="ignore"):
            for first_block in range(0, n_blocks, blocks_per_batch):
                n = min(blocks_per_batch, n_blocks - first_block)
                batch = self._make_batch(first_block, n, grid, block)
                if traced is not None:
                    traced.fn(self, batch, args, stats)
                else:
                    self._run_batch(batch, args, stats, dims)
                stats.batches += 1
        with _TOTALS_LOCK:
            _TOTALS.launches += 1
            _TOTALS.stats.merge(stats)
            if traced is not None:
                _TOTALS.trace.traced_launches += 1
                _TOTALS.trace.traced_batches += stats.batches
        return stats

    # -- batch construction ------------------------------------------------

    def _make_batch(
        self,
        first_block: int,
        n_blocks: int,
        grid: tuple[int, int, int],
        block: tuple[int, int, int],
    ) -> _Batch:
        key = (first_block, n_blocks, grid, block)
        cached = self._batch_cache.get(key)
        if cached is not None:
            self.geom_cache_hits += 1
            return cached
        self.geom_cache_misses += 1

        bx, by, bz = block
        gx, gy, _gz = grid
        block_threads = bx * by * bz
        lanes = n_blocks * block_threads

        shape_key = (n_blocks, block)
        shape = self._shape_cache.get(shape_key)
        if shape is None:
            lin = np.arange(lanes, dtype=np.int64)
            block_lin = lin % block_threads
            block_row = lin // block_threads
            tid_x = (block_lin % bx).astype(np.uint32)
            tid_y = ((block_lin // bx) % by).astype(np.uint32)
            tid_z = (block_lin // (bx * by)).astype(np.uint32)
            # Warp geometry: warps never span blocks; the last warp of a
            # block may be partial.
            warp_in_block = block_lin // self.warp_size
            warp_start_in_block = warp_in_block * self.warp_size
            batch_block_start = lin - block_lin
            warp_base = batch_block_start + warp_start_in_block
            warp_len = np.minimum(
                self.warp_size, block_threads - warp_start_in_block
            ).astype(np.int64)
            shape = (block_lin, block_row, (tid_x, tid_y, tid_z),
                     warp_base, warp_len)
            for arr in (block_lin, block_row, tid_x, tid_y, tid_z,
                        warp_base, warp_len):
                arr.flags.writeable = False
            if len(self._shape_cache) >= _GEOM_CACHE_ENTRIES:
                self._shape_cache.pop(next(iter(self._shape_cache)))
            self._shape_cache[shape_key] = shape
        block_lin, block_row, tid, warp_base, warp_len = shape

        batch = _Batch(
            lanes=lanes,
            n_blocks=n_blocks,
            block_threads=block_threads,
            first_block=first_block,
            tid=tid,
            ctaid=_LazyCtaid(first_block, block_row, grid),
            block_linear=block_lin,
            block_row=block_row,
            warp_base=warp_base,
            warp_len=warp_len,
        )
        if len(self._batch_cache) >= _GEOM_CACHE_ENTRIES:
            self._batch_cache.pop(next(iter(self._batch_cache)))
        self._batch_cache[key] = batch
        return batch

    # -- batch execution ---------------------------------------------------

    def _run_batch(self, batch: _Batch, args: Sequence[object],
                   stats: LaunchStats, dims: dict[str, int]) -> None:
        env: dict[str, np.ndarray] = {}
        for param, value in zip(self.kernel.params, args):
            dt = dtypes.U64 if param.is_pointer else param.dtype
            env[param.name] = np.full(batch.lanes, value, dtype=dt.np_dtype)

        state = _ExecState(
            executor=self,
            batch=batch,
            env=env,
            exited=np.zeros(batch.lanes, dtype=bool),
            shared=(self._shared_arena(batch.n_blocks)
                    if self._uses_shared else None),
            stats=stats,
            dims=dims,
        )
        mask = np.ones(batch.lanes, dtype=bool)
        state.exec_body(self.kernel.body, mask)

    def _shared_arena(self, n_blocks: int) -> np.ndarray:
        """A zeroed ``(n_blocks, row_stride)`` shared arena, buffer reused."""
        buf = self._shared_buf
        if buf is None or buf.shape[0] < n_blocks:
            buf = np.zeros((n_blocks, self._shared_stride), dtype=np.uint8)
            self._shared_buf = buf
            return buf[:n_blocks]
        arena = buf[:n_blocks]
        arena.fill(0)
        return arena

    def _gview(self, dtype: dtypes.DType) -> np.ndarray:
        view = self._gviews.get(dtype.name)
        if view is None:
            usable = (self.gmem.size // dtype.itemsize) * dtype.itemsize
            view = self.gmem[:usable].view(dtype.np_dtype)
            self._gviews[dtype.name] = view
        return view


class _ExecState:
    """Mutable per-batch interpreter state."""

    def __init__(self, executor: KernelExecutor, batch: _Batch,
                 env: dict[str, np.ndarray], exited: np.ndarray,
                 shared: np.ndarray | None, stats: LaunchStats,
                 dims: dict[str, int]):
        self.x = executor
        self.batch = batch
        self.env = env
        self.exited = exited
        self.shared = shared
        self.stats = stats
        self.dims = dims
        self._special_cache: dict[str, np.ndarray] = {}
        self._shared_views: dict[str, np.ndarray] = {}
        self._shared_cursor = 0

    # -- operand access -------------------------------------------------------

    def read(self, op: Operand):
        if isinstance(op, Imm):
            return op.dtype.np_dtype.type(op.value)
        try:
            return self.env[op.name]
        except KeyError:  # pragma: no cover - verifier prevents this
            raise IRError(f"register '{op.name}' undefined at execution") from None

    def assign(self, reg: Register, values, eff: np.ndarray, copy: bool = False) -> None:
        arr = np.asarray(values)
        if arr.dtype != reg.dtype.np_dtype:
            arr = arr.astype(reg.dtype.np_dtype)
        if arr.ndim == 0:
            arr = np.full(self.batch.lanes, arr)
        elif copy:
            # Callers pass copy=True when `values` may alias long-lived
            # storage (another register, the special-reg cache): without
            # the copy a later in-place masked update would corrupt it.
            arr = arr.copy()
        old = self.env.get(reg.name)
        if old is None or eff.all():
            self.env[reg.name] = arr
        elif old is not arr:
            old[eff] = arr[eff]

    # -- special registers ---------------------------------------------------

    def special(self, which: str) -> np.ndarray:
        cached = self._special_cache.get(which)
        if cached is not None:
            return cached
        b = self.batch
        table = {
            "tid.x": b.tid[0], "tid.y": b.tid[1], "tid.z": b.tid[2],
            "ctaid.x": b.ctaid[0], "ctaid.y": b.ctaid[1], "ctaid.z": b.ctaid[2],
        }
        if which in table:
            arr = table[which]
        elif which == "laneid":
            arr = (b.block_linear % self.x.warp_size).astype(np.uint32)
        elif which == "warpsize":
            arr = np.full(b.lanes, self.x.warp_size, dtype=np.uint32)
        else:
            # ntid.* / nctaid.* are uniform across the launch.
            arr = np.full(self.batch.lanes, self.dims[which], dtype=np.uint32)
        self._special_cache[which] = arr
        return arr

    # -- execution ------------------------------------------------------------

    def exec_body(self, body, mask: np.ndarray) -> None:
        for instr in body:
            eff = mask & ~self.exited
            if not eff.any():
                return
            self.step(instr, eff, mask)

    def step(self, instr, eff: np.ndarray, mask: np.ndarray) -> None:
        st = self.stats
        n_active = int(eff.sum())
        st.instructions += n_active

        if isinstance(instr, Mov):
            self.assign(instr.dst, self.read(instr.src), eff,
                        copy=isinstance(instr.src, Register))

        elif isinstance(instr, BinOp):
            a, b = self.read(instr.a), self.read(instr.b)
            self.assign(instr.dst, self._binop(instr.op, a, b, instr.dst.dtype), eff)
            if instr.dst.dtype.is_float:
                st.flops += n_active

        elif isinstance(instr, UnaryOp):
            src = self.read(instr.src)
            self.assign(instr.dst, self._unary(instr.op, src), eff)
            if instr.dst.dtype.is_float:
                st.flops += n_active

        elif isinstance(instr, Cmp):
            a, b = self.read(instr.a), self.read(instr.b)
            fn = {"eq": np.equal, "ne": np.not_equal, "lt": np.less,
                  "le": np.less_equal, "gt": np.greater, "ge": np.greater_equal}[instr.op]
            self.assign(instr.dst, fn(a, b), eff)

        elif isinstance(instr, Select):
            p = self.read(instr.pred)
            self.assign(instr.dst, np.where(p, self.read(instr.a), self.read(instr.b)), eff)

        elif isinstance(instr, Cvt):
            src = self.read(instr.src)
            self.assign(instr.dst, np.asarray(src).astype(instr.dst.dtype.np_dtype), eff)

        elif isinstance(instr, SpecialRead):
            self.assign(instr.dst, self.special(instr.which), eff, copy=True)

        elif isinstance(instr, Load):
            self._load(instr, eff)
            st.bytes_loaded += n_active * instr.dst.dtype.itemsize

        elif isinstance(instr, Store):
            self._store(instr, eff)
            st.bytes_stored += n_active * _operand_dtype(instr.src).itemsize

        elif isinstance(instr, SharedAlloc):
            nbytes = instr.dtype.itemsize * instr.count
            # Align allocations to the element size.
            align = instr.dtype.itemsize
            self._shared_cursor = -(-self._shared_cursor // align) * align
            base = self._shared_cursor
            self._shared_cursor += nbytes
            self.assign(instr.dst, np.uint64(base), eff)

        elif isinstance(instr, Barrier):
            # Per-block legality: within every block that has a lane at
            # the barrier, the arriving mask must equal the block's live
            # (non-exited) mask.  Blocks with no active lane are not "at"
            # this barrier (their lanes exited or sit in another branch
            # of this batch's control flow) and are skipped, exactly as
            # the old one-block-per-batch path skipped them.
            b = self.batch
            act = eff.reshape(b.n_blocks, b.block_threads)
            live = (~self.exited).reshape(b.n_blocks, b.block_threads)
            arrived = act.any(axis=1)
            partial = arrived & (act != live).any(axis=1)
            if partial.any():
                i = int(np.argmax(partial))
                raise DivergentBarrierError(
                    f"kernel '{self.x.kernel.name}': barrier reached by "
                    f"{int(act[i].sum())} of {int(live[i].sum())} live "
                    f"threads in block {b.first_block + i}"
                )
            st.barriers += int(arrived.sum())

        elif isinstance(instr, AtomicOp):
            self._atomic(instr, eff)
            st.atomic_ops += n_active

        elif isinstance(instr, Shuffle):
            self._shuffle(instr, eff)

        elif isinstance(instr, Exit):
            self.exited |= eff

        elif isinstance(instr, If):
            cond = self.read(instr.cond)
            if np.ndim(cond) == 0:
                cond = np.full(self.batch.lanes, bool(cond))
            then_mask = mask & cond
            if (then_mask & ~self.exited).any():
                self.exec_body(instr.then_body, then_mask)
            else_mask = mask & ~cond
            if instr.else_body and (else_mask & ~self.exited).any():
                self.exec_body(instr.else_body, else_mask)

        elif isinstance(instr, While):
            live = mask.copy()
            trips = 0
            while True:
                live &= ~self.exited
                if not live.any():
                    break
                self.exec_body(instr.cond_body, live)
                cond = self.read(instr.cond)
                if np.ndim(cond) == 0:
                    cond = np.full(self.batch.lanes, bool(cond))
                live = live & cond & ~self.exited
                if not live.any():
                    break
                self.exec_body(instr.body, live)
                trips += 1
                if trips > _MAX_LOOP_TRIPS:
                    raise IRError(
                        f"kernel '{self.x.kernel.name}': loop exceeded "
                        f"{_MAX_LOOP_TRIPS} iterations (runaway loop?)"
                    )
        else:  # pragma: no cover - verifier prevents this
            raise IRError(f"unknown instruction {instr!r}")

    # -- arithmetic helpers ------------------------------------------------

    def _binop(self, op: str, a, b, result: dtypes.DType):
        if op in ("add", "sub", "mul"):
            return {"add": np.add, "sub": np.subtract, "mul": np.multiply}[op](a, b)
        if op == "div":
            if result.is_float:
                return np.divide(a, b)
            return _c_int_div(np.asarray(a), np.asarray(b))
        if op == "rem":
            if result.is_float:
                return np.mod(a, b)
            return _c_int_rem(np.asarray(a), np.asarray(b))
        if op == "min":
            return np.minimum(a, b)
        if op == "max":
            return np.maximum(a, b)
        if op == "pow":
            return np.power(a, b)
        if op == "and":
            return np.logical_and(a, b) if result.is_pred else np.bitwise_and(a, b)
        if op == "or":
            return np.logical_or(a, b) if result.is_pred else np.bitwise_or(a, b)
        if op == "xor":
            return np.logical_xor(a, b) if result.is_pred else np.bitwise_xor(a, b)
        if op == "shl":
            return np.left_shift(a, b)
        if op == "shr":
            return np.right_shift(a, b)
        raise IRError(f"unknown binary op '{op}'")  # pragma: no cover

    def _unary(self, op: str, src):
        fns = {
            "neg": np.negative, "abs": np.abs, "sqrt": np.sqrt,
            "exp": np.exp, "log": np.log, "sin": np.sin, "cos": np.cos,
            "tanh": np.tanh, "floor": np.floor, "ceil": np.ceil,
            "round": np.rint, "not": np.logical_not,
            "bitnot": np.bitwise_not,
        }
        if op == "rsqrt":
            return 1.0 / np.sqrt(src)
        return fns[op](src)

    # -- memory helpers ---------------------------------------------------------

    def _resolve(self, instr, dtype: dtypes.DType, eff: np.ndarray, write: bool):
        """Validate addresses and return (typed_view, element_indices)."""
        addr = self.read(instr.addr)
        if np.ndim(addr) == 0:
            addr = np.full(self.batch.lanes, addr, dtype=np.uint64)
        active_addr = addr[eff]
        if ((active_addr % dtype.itemsize) != 0).any():
            raise MemoryFaultError(
                f"kernel '{self.x.kernel.name}': misaligned {dtype.name} access"
            )
        idx = (addr // dtype.itemsize).astype(np.int64)
        if instr.space == MemSpace.GLOBAL:
            if self.x.validator is not None:
                self.x.validator(active_addr, dtype.itemsize, write)
            elif (active_addr.astype(np.int64) + dtype.itemsize > self.x.gmem.size).any():
                raise MemoryFaultError("global access out of device memory")
            view = self.x._gview(dtype)
        else:
            limit = self.x._shared_bytes
            if (active_addr.astype(np.int64) + dtype.itemsize > limit).any():
                raise MemoryFaultError(
                    f"kernel '{self.x.kernel.name}': shared access beyond "
                    f"{limit} allocated bytes"
                )
            view = self._shared_view(dtype)
            # Kernel addresses are block-local; offset each lane into its
            # own block's arena row.  The row stride is 16-byte aligned,
            # so the per-row element count is exact for every dtype.
            idx += self.batch.block_row * (
                self.x._shared_stride // dtype.itemsize
            )
        # Park inactive lanes on element 0 so gathers cannot fault.
        np.copyto(idx, 0, where=~eff)
        return view, idx

    def _shared_view(self, dtype: dtypes.DType) -> np.ndarray:
        view = self._shared_views.get(dtype.name)
        if view is None:
            if self.shared is None:  # pragma: no cover - uses_shared gate
                self.shared = self.x._shared_arena(self.batch.n_blocks)
            view = self.shared.reshape(-1).view(dtype.np_dtype)
            self._shared_views[dtype.name] = view
        return view

    def _load(self, instr: Load, eff: np.ndarray) -> None:
        view, idx = self._resolve(instr, instr.dst.dtype, eff, write=False)
        self.assign(instr.dst, view[idx], eff)

    def _store(self, instr: Store, eff: np.ndarray) -> None:
        dtype = _operand_dtype(instr.src)
        view, idx = self._resolve(instr, dtype, eff, write=True)
        src = self.read(instr.src)
        if np.ndim(src) == 0:
            view[idx[eff]] = src
        else:
            view[idx[eff]] = src[eff]

    def _atomic(self, instr: AtomicOp, eff: np.ndarray) -> None:
        dtype = _operand_dtype(instr.src)
        view, idx = self._resolve(instr, dtype, eff, write=True)
        src = self.read(instr.src)
        if np.ndim(src) == 0:
            src = np.full(self.batch.lanes, src, dtype=dtype.np_dtype)
        sel = idx[eff]
        vals = src[eff]

        if instr.op == "add":
            old = None
            if instr.dst is not None:
                old = self._prefix_old(view, sel, vals)
            np.add.at(view, sel, vals)
        elif instr.op == "min":
            old = view[sel].copy() if instr.dst is not None else None
            np.minimum.at(view, sel, vals)
        elif instr.op == "max":
            old = view[sel].copy() if instr.dst is not None else None
            np.maximum.at(view, sel, vals)
        elif instr.op == "exch":
            old = view[sel].copy() if instr.dst is not None else None
            view[sel] = vals
        elif instr.op == "cas":
            compare = self.read(instr.compare)
            if np.ndim(compare) == 0:
                compare = np.full(self.batch.lanes, compare, dtype=dtype.np_dtype)
            old = view[sel].copy()
            # Within one batch step, only the first lane touching each
            # address may win its CAS; later lanes observe the post-CAS
            # value (and, in a CAS loop, retry next trip) — the legal
            # schedule where the first lane serializes before the rest.
            _uniq, first = np.unique(sel, return_index=True)
            winner = np.zeros(sel.size, dtype=bool)
            winner[first] = True
            success = winner & (old == compare[eff])
            view[sel[success]] = vals[success]
            old = np.where(winner, old, view[sel])
        else:  # pragma: no cover - verifier prevents this
            raise IRError(f"unknown atomic '{instr.op}'")

        if instr.dst is not None and old is not None:
            full_old = np.zeros(self.batch.lanes, dtype=dtype.np_dtype)
            full_old[eff] = old
            self.assign(instr.dst, full_old, eff)

    @staticmethod
    def _prefix_old(view: np.ndarray, sel: np.ndarray, vals: np.ndarray) -> np.ndarray:
        """Old values for atomic-add with duplicate addresses.

        Simulates the schedule where lanes hit each address in batch-lane
        order: lane k's old value is the base plus the sum of earlier
        lanes' contributions to the same address.
        """
        order = np.argsort(sel, kind="stable")
        sorted_sel = sel[order]
        sorted_vals = vals[order]
        csum = np.cumsum(sorted_vals)
        excl = csum - sorted_vals  # exclusive prefix over the whole batch
        group_start = np.concatenate(([True], sorted_sel[1:] != sorted_sel[:-1]))
        group_first = np.maximum.accumulate(
            np.where(group_start, np.arange(sel.size), 0)
        )
        prefix = excl - excl[group_first]  # exclusive prefix within each address
        old_sorted = view[sorted_sel] + prefix.astype(view.dtype, copy=False)
        old = np.empty_like(old_sorted)
        old[order] = old_sorted
        return old

    # -- cross-lane ---------------------------------------------------------

    def _shuffle(self, instr: Shuffle, eff: np.ndarray) -> None:
        src = self.read(instr.src)
        if np.ndim(src) == 0:
            src = np.full(self.batch.lanes, src)
        lane = self.read(instr.lane)
        if np.ndim(lane) == 0:
            lane = np.full(self.batch.lanes, lane, dtype=np.uint32)
        b = self.batch
        my = np.arange(b.lanes, dtype=np.int64)
        in_warp = my - b.warp_base
        w = self.x.warp_size
        if instr.mode == "idx":
            target = lane.astype(np.int64) % w
        elif instr.mode == "up":
            target = in_warp - lane.astype(np.int64)
        elif instr.mode == "down":
            target = in_warp + lane.astype(np.int64)
        else:  # xor
            target = in_warp ^ lane.astype(np.int64)
        # Out-of-range targets (or lanes beyond the populated warp width)
        # keep their own value, matching __shfl_*_sync clamping behaviour.
        valid = (target >= 0) & (target < b.warp_len)
        source_lane = np.where(valid, b.warp_base + target, my)
        self.assign(instr.dst, src[source_lane], eff)


def _operand_dtype(op: Operand) -> dtypes.DType:
    return op.dtype
