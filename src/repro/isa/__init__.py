"""Virtual instruction sets and the abstract kernel IR.

This package provides the lowest layer of the simulated GPU ecosystem:

* :mod:`repro.isa.dtypes` — scalar value types shared by IR and devices.
* :mod:`repro.isa.instructions` — the abstract kernel IR: a register
  machine with structured control flow (``If``/``While``), typed
  memory operations, barriers, atomics, and cross-lane shuffles.
* :mod:`repro.isa.module` — kernels, modules, and ISA-targeted binaries.
* :mod:`repro.isa.builder` — convenience builder used by all frontends.
* :mod:`repro.isa.verifier` — structural/type verification of kernels.
* :mod:`repro.isa.targets` — lowering ("legalization") of abstract
  modules to the three vendor ISAs (PTX, AMDGCN, SPIR-V).
* :mod:`repro.isa.interpreter` — the vectorized SIMT executor: one NumPy
  lane per thread, mask-based divergence, per-block shared memory.
* :mod:`repro.isa.assembly` — textual disassembly in per-ISA syntax.
"""

from repro.isa.dtypes import (  # noqa: F401
    DType,
    F32,
    F64,
    I32,
    I64,
    PRED,
    U8,
    U32,
    U64,
    SCALAR_TYPES,
)
from repro.isa.instructions import (  # noqa: F401
    AtomicOp,
    Barrier,
    BinOp,
    Cmp,
    Cvt,
    Exit,
    If,
    Imm,
    Load,
    MemSpace,
    Mov,
    Param,
    Register,
    Select,
    SharedAlloc,
    Shuffle,
    SpecialRead,
    SpecialReg,
    Store,
    UnaryOp,
    While,
)
from repro.isa.module import KernelIR, ModuleIR, TargetModule  # noqa: F401
from repro.isa.builder import IRBuilder  # noqa: F401
from repro.isa.verifier import verify_kernel, verify_module  # noqa: F401
from repro.isa.targets import get_target, legalize  # noqa: F401
from repro.isa.interpreter import KernelExecutor, LaunchStats  # noqa: F401
