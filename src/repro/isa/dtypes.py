"""Scalar value types shared by the IR, the devices, and the frontends.

Each :class:`DType` wraps an explicit NumPy dtype, following the
hpc-parallel guideline of pinning dtypes rather than relying on Python
number semantics.  The set matches what HPC kernels actually use: 32/64-bit
signed/unsigned integers, single/double floats, predicates, and raw bytes
(for the byte-addressable memory model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class DType:
    """A scalar type usable in registers and memory.

    Attributes:
        name: Short mnemonic used in assembly output (``f64``, ``u32``...).
        np_dtype: The backing NumPy dtype (always an exact-width type).
        kind: One of ``"float"``, ``"int"``, ``"uint"``, ``"pred"``.
    """

    name: str
    np_dtype: np.dtype = field(compare=False)
    kind: str = field(compare=False)

    @property
    def itemsize(self) -> int:
        """Width in bytes (predicates are stored as one byte)."""
        return int(self.np_dtype.itemsize)

    @property
    def is_float(self) -> bool:
        return self.kind == "float"

    @property
    def is_integer(self) -> bool:
        return self.kind in ("int", "uint")

    @property
    def is_pred(self) -> bool:
        return self.kind == "pred"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


PRED = DType("pred", np.dtype(np.bool_), "pred")
U8 = DType("u8", np.dtype(np.uint8), "uint")
I32 = DType("i32", np.dtype(np.int32), "int")
I64 = DType("i64", np.dtype(np.int64), "int")
U32 = DType("u32", np.dtype(np.uint32), "uint")
U64 = DType("u64", np.dtype(np.uint64), "uint")
F32 = DType("f32", np.dtype(np.float32), "float")
F64 = DType("f64", np.dtype(np.float64), "float")

#: All scalar types by name, for lookup from annotations/assembly.
SCALAR_TYPES: dict[str, DType] = {
    t.name: t for t in (PRED, U8, I32, I64, U32, U64, F32, F64)
}


def from_name(name: str) -> DType:
    """Look up a dtype by mnemonic, raising ``KeyError`` with context."""
    try:
        return SCALAR_TYPES[name]
    except KeyError:
        raise KeyError(
            f"unknown scalar type '{name}'; expected one of {sorted(SCALAR_TYPES)}"
        ) from None


def from_numpy(np_dtype: np.dtype) -> DType:
    """Map a NumPy dtype to the corresponding :class:`DType`."""
    np_dtype = np.dtype(np_dtype)
    for t in SCALAR_TYPES.values():
        if t.np_dtype == np_dtype:
            return t
    raise KeyError(f"no scalar type for numpy dtype {np_dtype}")


def promote(a: DType, b: DType) -> DType:
    """Binary-operation result type, mirroring C-like promotion.

    Floats dominate integers, wider dominates narrower, and mixing signed
    with unsigned of the same width yields the unsigned type (as in C).
    Predicates never participate in arithmetic promotion.
    """
    if a.is_pred or b.is_pred:
        if a == b:
            return a
        raise TypeError("cannot promote predicate with non-predicate")
    if a == b:
        return a
    if a.is_float or b.is_float:
        if a.is_float and b.is_float:
            return a if a.itemsize >= b.itemsize else b
        return a if a.is_float else b
    # both integers
    if a.itemsize != b.itemsize:
        return a if a.itemsize > b.itemsize else b
    return a if a.kind == "uint" else b
