"""Kernels, modules, and ISA-targeted binaries."""

from __future__ import annotations

import copy
import pickle
from dataclasses import dataclass, field

from repro.enums import ISA
from repro.isa.instructions import (
    AtomicOp,
    Instruction,
    Load,
    Param,
    SharedAlloc,
    Store,
    walk,
)
from repro.isa.instructions import MemSpace


def clone_ir(obj):
    """Structural clone of an IR tree (kernel, body, module).

    The optimization and legalization pipelines each clone every kernel
    before mutating it; with ~500 compiles per matrix build the generic
    ``copy.deepcopy`` recursion was ~a third of the cold build.  A
    pickle round-trip builds the identical object graph in C (~2.5x
    faster); ``deepcopy`` stays as the fallback for exotic payloads.
    """
    try:
        return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return copy.deepcopy(obj)


@dataclass
class KernelIR:
    """A single device kernel in the abstract IR.

    Attributes:
        name: Kernel symbol name (must be unique within a module).
        params: Ordered kernel parameters.
        body: Top-level instruction list (structured control flow nests).
        features: Free-form feature tags attached by the producing
            frontend (e.g. ``"reduction"``, ``"shuffle"``); toolchains use
            these to reject kernels they cannot lower.
    """

    name: str
    params: list[Param] = field(default_factory=list)
    body: list[Instruction] = field(default_factory=list)
    features: frozenset[str] = frozenset()

    @property
    def shared_bytes(self) -> int:
        """Total statically-allocated shared memory, in bytes."""
        total = 0
        for instr in self.body:
            if isinstance(instr, SharedAlloc):
                total += instr.dtype.itemsize * instr.count
        return total

    def uses_shared(self) -> bool:
        """Whether any instruction touches the shared address space."""
        for instr in walk(self.body):
            if isinstance(instr, SharedAlloc):
                return True
            if (isinstance(instr, (Load, Store, AtomicOp))
                    and instr.space == MemSpace.SHARED):
                return True
        return False

    def instruction_count(self) -> int:
        """Total instructions, including nested bodies."""
        return sum(1 for _ in walk(self.body))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sig = ", ".join(
            f"{p.name}:{'*' if p.is_pointer else ''}{p.dtype.name}" for p in self.params
        )
        return f"<kernel {self.name}({sig}) {self.instruction_count()} instrs>"


@dataclass
class ModuleIR:
    """A collection of kernels in the abstract (target-independent) IR."""

    name: str
    kernels: dict[str, KernelIR] = field(default_factory=dict)

    def add(self, kernel: KernelIR) -> KernelIR:
        if kernel.name in self.kernels:
            raise ValueError(f"duplicate kernel '{kernel.name}' in module '{self.name}'")
        self.kernels[kernel.name] = kernel
        return kernel

    def __getitem__(self, name: str) -> KernelIR:
        return self.kernels[name]

    def __contains__(self, name: str) -> bool:
        return name in self.kernels

    def __iter__(self):
        return iter(self.kernels.values())


@dataclass
class TargetModule:
    """A module legalized for one concrete ISA ("device binary").

    Produced by :func:`repro.isa.targets.legalize`; the only artifact a
    simulated device will load.  ``warp_size`` is baked in at legalization
    time (PTX: 32, AMDGCN: 64, SPIR-V: configurable sub-group, default 16),
    matching how real binaries encode their execution width.
    """

    module: ModuleIR
    isa: ISA
    warp_size: int
    producer: str = "unknown"  # toolchain identifier, for provenance

    @property
    def name(self) -> str:
        return self.module.name

    def kernel(self, name: str):
        return self.module.kernels[name]

    def __contains__(self, name: str) -> bool:
        return name in self.module.kernels

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<binary {self.module.name} isa={self.isa.value} "
            f"warp={self.warp_size} kernels={sorted(self.module.kernels)} "
            f"by {self.producer}>"
        )
