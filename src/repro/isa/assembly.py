"""Textual disassembly of kernels in per-ISA syntax.

Purely for inspection and provenance: compile results carry a
human-readable listing in the flavour of the real ISA (PTX mnemonics,
GCN-style ``v_``/``s_`` ops, SPIR-V ``Op*`` instructions), the way
``cuobjdump``/``roc-obj``/``spirv-dis`` would show them.  There is no
parser; the :class:`~repro.isa.module.TargetModule` object remains the
executable artifact.
"""

from __future__ import annotations

from repro.enums import ISA
from repro.isa.instructions import (
    AtomicOp,
    Barrier,
    BinOp,
    Cmp,
    Cvt,
    Exit,
    If,
    Imm,
    Load,
    Mov,
    Operand,
    Select,
    SharedAlloc,
    Shuffle,
    SpecialRead,
    Store,
    UnaryOp,
    While,
)
from repro.isa.module import KernelIR, TargetModule

_PTX_BIN = {
    "add": "add", "sub": "sub", "mul": "mul", "div": "div", "rem": "rem",
    "min": "min", "max": "max", "pow": "pow", "and": "and", "or": "or",
    "xor": "xor", "shl": "shl", "shr": "shr",
}

_GCN_BIN = {
    "add": "v_add", "sub": "v_sub", "mul": "v_mul", "div": "v_div",
    "rem": "v_rem", "min": "v_min", "max": "v_max", "pow": "v_pow",
    "and": "v_and", "or": "v_or", "xor": "v_xor", "shl": "v_lshl",
    "shr": "v_lshr",
}

_SPV_BIN = {
    "add": "OpIAdd", "sub": "OpISub", "mul": "OpIMul", "div": "OpSDiv",
    "rem": "OpSRem", "min": "OpExtInst_min", "max": "OpExtInst_max",
    "pow": "OpExtInst_pow", "and": "OpBitwiseAnd", "or": "OpBitwiseOr",
    "xor": "OpBitwiseXor", "shl": "OpShiftLeftLogical",
    "shr": "OpShiftRightLogical",
}

_SPV_FLOAT_BIN = {"add": "OpFAdd", "sub": "OpFSub", "mul": "OpFMul", "div": "OpFDiv"}


def _op(o: Operand) -> str:
    if isinstance(o, Imm):
        return repr(o.value)
    return f"%{o.name}"


class _Emitter:
    def __init__(self, isa: ISA):
        self.isa = isa
        self.lines: list[str] = []
        self.depth = 1

    def put(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def emit_body(self, body) -> None:
        for instr in body:
            self.emit(instr)

    # One flavour function per ISA keeps the mnemonic tables honest.
    def emit(self, instr) -> None:
        isa = self.isa
        if isinstance(instr, Mov):
            if isa is ISA.SPIRV:
                self.put(f"{_op(instr.dst)} = OpCopyObject {_op(instr.src)}")
            else:
                mn = "mov" if isa is ISA.PTX else "v_mov_b32"
                self.put(f"{mn}.{instr.dst.dtype.name} {_op(instr.dst)}, {_op(instr.src)};")
        elif isinstance(instr, BinOp):
            t = instr.dst.dtype
            if isa is ISA.PTX:
                self.put(f"{_PTX_BIN[instr.op]}.{t.name} {_op(instr.dst)}, {_op(instr.a)}, {_op(instr.b)};")
            elif isa is ISA.AMDGCN:
                self.put(f"{_GCN_BIN[instr.op]}_{t.name} {_op(instr.dst)}, {_op(instr.a)}, {_op(instr.b)}")
            else:
                mn = _SPV_FLOAT_BIN.get(instr.op, _SPV_BIN[instr.op]) if t.is_float else _SPV_BIN[instr.op]
                self.put(f"{_op(instr.dst)} = {mn} {_op(instr.a)} {_op(instr.b)}")
        elif isinstance(instr, UnaryOp):
            if isa is ISA.PTX:
                self.put(f"{instr.op}.{instr.dst.dtype.name} {_op(instr.dst)}, {_op(instr.src)};")
            elif isa is ISA.AMDGCN:
                self.put(f"v_{instr.op}_{instr.dst.dtype.name} {_op(instr.dst)}, {_op(instr.src)}")
            else:
                self.put(f"{_op(instr.dst)} = OpExtInst_{instr.op} {_op(instr.src)}")
        elif isinstance(instr, Cmp):
            if isa is ISA.PTX:
                self.put(f"setp.{instr.op}.{instr.a.dtype.name} {_op(instr.dst)}, {_op(instr.a)}, {_op(instr.b)};")
            elif isa is ISA.AMDGCN:
                self.put(f"v_cmp_{instr.op}_{instr.a.dtype.name} {_op(instr.dst)}, {_op(instr.a)}, {_op(instr.b)}")
            else:
                kind = "OpFOrd" if instr.a.dtype.is_float else "OpI"
                self.put(f"{_op(instr.dst)} = {kind}{instr.op.capitalize()} {_op(instr.a)} {_op(instr.b)}")
        elif isinstance(instr, Select):
            mn = {"ptx": "selp", "amdgcn": "v_cndmask_b32", "spirv": "OpSelect"}[self.isa.value]
            self.put(f"{mn} {_op(instr.dst)}, {_op(instr.a)}, {_op(instr.b)}, {_op(instr.pred)};")
        elif isinstance(instr, Cvt):
            if isa is ISA.SPIRV:
                self.put(f"{_op(instr.dst)} = OpConvert {_op(instr.src)}")
            else:
                mn = "cvt" if isa is ISA.PTX else "v_cvt"
                self.put(f"{mn}.{instr.dst.dtype.name}.{instr.src.dtype.name} {_op(instr.dst)}, {_op(instr.src)};")
        elif isinstance(instr, Load):
            t = instr.dst.dtype.name
            if isa is ISA.PTX:
                self.put(f"ld.{instr.space}.{t} {_op(instr.dst)}, [{_op(instr.addr)}];")
            elif isa is ISA.AMDGCN:
                mn = "global_load" if instr.space == "global" else "ds_read"
                self.put(f"{mn}_{t} {_op(instr.dst)}, {_op(instr.addr)}")
            else:
                self.put(f"{_op(instr.dst)} = OpLoad[{instr.space}] {_op(instr.addr)}")
        elif isinstance(instr, Store):
            t = instr.src.dtype.name
            if isa is ISA.PTX:
                self.put(f"st.{instr.space}.{t} [{_op(instr.addr)}], {_op(instr.src)};")
            elif isa is ISA.AMDGCN:
                mn = "global_store" if instr.space == "global" else "ds_write"
                self.put(f"{mn}_{t} {_op(instr.addr)}, {_op(instr.src)}")
            else:
                self.put(f"OpStore[{instr.space}] {_op(instr.addr)} {_op(instr.src)}")
        elif isinstance(instr, SpecialRead):
            if isa is ISA.PTX:
                self.put(f"mov.u32 {_op(instr.dst)}, %{instr.which};")
            elif isa is ISA.AMDGCN:
                self.put(f"s_get_{instr.which.replace('.', '_')} {_op(instr.dst)}")
            else:
                self.put(f"{_op(instr.dst)} = OpBuiltin {instr.which}")
        elif isinstance(instr, Barrier):
            mn = {"ptx": "bar.sync 0;", "amdgcn": "s_barrier",
                  "spirv": "OpControlBarrier Workgroup"}[self.isa.value]
            self.put(mn)
        elif isinstance(instr, AtomicOp):
            if isa is ISA.PTX:
                self.put(f"atom.{instr.space}.{instr.op}.{instr.src.dtype.name} "
                         f"{_op(instr.dst) if instr.dst else '_'}, [{_op(instr.addr)}], {_op(instr.src)};")
            elif isa is ISA.AMDGCN:
                self.put(f"global_atomic_{instr.op} {_op(instr.addr)}, {_op(instr.src)}")
            else:
                self.put(f"OpAtomic{instr.op.capitalize()} {_op(instr.addr)} {_op(instr.src)}")
        elif isinstance(instr, Shuffle):
            if isa is ISA.PTX:
                self.put(f"shfl.sync.{instr.mode}.b32 {_op(instr.dst)}, {_op(instr.src)}, {_op(instr.lane)};")
            elif isa is ISA.AMDGCN:
                self.put(f"ds_permute_{instr.mode} {_op(instr.dst)}, {_op(instr.src)}, {_op(instr.lane)}")
            else:
                self.put(f"{_op(instr.dst)} = OpGroupNonUniformShuffle[{instr.mode}] {_op(instr.src)} {_op(instr.lane)}")
        elif isinstance(instr, SharedAlloc):
            self.put(f"// .shared .align {instr.dtype.itemsize} "
                     f".b8 [{instr.count * instr.dtype.itemsize}] -> {_op(instr.dst)}")
        elif isinstance(instr, Exit):
            mn = {"ptx": "ret;", "amdgcn": "s_endpgm", "spirv": "OpReturn"}[self.isa.value]
            self.put(mn)
        elif isinstance(instr, If):
            self.put(f"@!{_op(instr.cond)} {{  // if")
            self.depth += 1
            self.emit_body(instr.then_body)
            self.depth -= 1
            if instr.else_body:
                self.put("} else {")
                self.depth += 1
                self.emit_body(instr.else_body)
                self.depth -= 1
            self.put("}")
        elif isinstance(instr, While):
            self.put("loop {  // while")
            self.depth += 1
            self.emit_body(instr.cond_body)
            self.put(f"@!{_op(instr.cond)} break;")
            self.emit_body(instr.body)
            self.depth -= 1
            self.put("}")
        else:  # pragma: no cover
            self.put(f"// <unknown {type(instr).__name__}>")


def disassemble_kernel(kernel: KernelIR, isa: ISA) -> str:
    """Render one kernel in the assembly flavour of ``isa``."""
    em = _Emitter(isa)
    if isa is ISA.PTX:
        header = f".visible .entry {kernel.name}("
        params = ", ".join(f".param .{p.dtype.name} {p.name}" for p in kernel.params)
        em.lines.append(header + params + ")")
        em.lines.append("{")
        em.emit_body(kernel.body)
        em.lines.append("}")
    elif isa is ISA.AMDGCN:
        em.lines.append(f".amdgcn_kernel {kernel.name}")
        for p in kernel.params:
            em.lines.append(f"    ; arg {p.name}: {p.dtype.name}{'*' if p.is_pointer else ''}")
        em.emit_body(kernel.body)
        em.lines.append("    s_endpgm")
    else:
        em.lines.append(f"OpEntryPoint Kernel %{kernel.name}")
        for p in kernel.params:
            em.lines.append(f"OpFunctionParameter %{p.name} ; {p.dtype.name}")
        em.emit_body(kernel.body)
        em.lines.append("OpFunctionEnd")
    return "\n".join(em.lines)


def disassemble(binary: TargetModule) -> str:
    """Render every kernel of a target module."""
    parts = [f"// module {binary.name}  isa={binary.isa.value}  "
             f"warp={binary.warp_size}  producer={binary.producer}"]
    for kernel in binary.module:
        parts.append(disassemble_kernel(kernel, binary.isa))
    return "\n\n".join(parts)
